/**
 * @file
 * DVFS operating-point sweep: measures a mixed compute/memory
 * corpus (the six Section-4.1.3 extreme cases plus SPEC proxies)
 * across a frequency axis, reports EPI/EDP per operating point and
 * the energy-optimal point per workload, and quantifies how badly
 * a top-down power model trained at the nominal clock mispredicts
 * at the other operating points. The headline shape: compute-bound
 * workloads select the highest frequency (static power dominates,
 * so finishing instructions faster is cheaper per instruction)
 * while memory-bound workloads select the lowest (DRAM pins the
 * instruction rate while power still grows with V and f).
 */

#include <algorithm>

#include "bench/common.hh"
#include "campaign/campaign.hh"
#include "dvfs/sweep.hh"
#include "util/table.hh"
#include "workloads/extremes.hh"
#include "workloads/spec_proxies.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("DVFS sweep: energy-optimal operating points per "
           "workload");

    BenchContext ctx(false);
    const size_t body = fastMode() ? 1024 : 4096;
    const std::vector<double> freqs =
        fastMode() ? std::vector<double>{2.0, 3.0, 3.5}
                   : std::vector<double>{2.0, 2.5, 3.0, 3.5};
    const std::vector<ChipConfig> configs =
        fastMode() ? std::vector<ChipConfig>{{1, 1}, {2, 2}}
                   : std::vector<ChipConfig>{{1, 1}, {4, 2},
                                             {8, 4}};

    std::vector<Program> corpus;
    for (auto &c : generateExtremeCases(ctx.arch, body))
        corpus.push_back(std::move(c.program));
    const size_t proxies = fastMode() ? 6 : 12;
    size_t taken = 0;
    for (auto &p : generateSpecProxies(ctx.arch, body)) {
        if (taken++ >= proxies)
            break;
        corpus.push_back(std::move(p));
    }

    CampaignSpec spec = benchCampaignSpec();
    spec.freqs = freqs;
    Campaign campaign(ctx.machine, spec);
    auto samples = campaign.measure(corpus, configs);

    SweepAnalysis sweep = analyzeSweep(samples);

    // Per-workload optima at the single-core configuration (the
    // cleanest view of the compute-vs-memory divergence).
    std::vector<std::string> headers = {"Workload", "Config"};
    for (double f : sweep.freqs)
        headers.push_back(cat("EPI nJ @", f, "GHz"));
    headers.push_back("Best EPI");
    headers.push_back("Best EDP");
    TextTable t(headers);
    for (const auto &series : sweep.series) {
        if (series.config.cores != 1 || series.config.smt != 1)
            continue;
        std::vector<std::string> row = {series.workload,
                                        series.config.label()};
        for (const auto &p : series.points)
            row.push_back(TextTable::num(p.epiJ * 1e9, 2));
        row.push_back(
            cat(series.points[series.bestEpi].freqGhz, " GHz"));
        row.push_back(
            cat(series.points[series.bestEdp].freqGhz, " GHz"));
        t.addRow(row);
    }
    t.print(std::cout);

    // The headline divergence: the compute-bound and memory-bound
    // extreme cases select opposite ends of the frequency range.
    auto optimum_of = [&](const std::string &workload) {
        for (const auto &series : sweep.series)
            if (series.workload == workload &&
                series.config.cores == 1 &&
                series.config.smt == 1)
                return series.points[series.bestEpi].freqGhz;
        fatal(cat("bench_dvfs_sweep: no sweep series for '",
                  workload, "'"));
    };
    double fxu_opt = optimum_of("FXU-High");
    double mem_opt = optimum_of("Main-memory");
    std::cout << "\nEnergy-optimal operating point (EPI, 1-1): "
              << "FXU-High (compute-bound) at " << fxu_opt
              << " GHz vs Main-memory (memory-bound) at "
              << mem_opt << " GHz"
              << (fxu_opt > mem_opt
                      ? " — the expected compute/memory split.\n"
                      : " — UNEXPECTED: no divergence.\n");

    // Cross-frequency model error: a top-down model trained at the
    // nominal clock, validated at every swept operating point, next
    // to a per-point-trained reference.
    CrossFreqReport report =
        crossFrequencyError(samples, ctx.machine.clockGhz());
    TextTable ct({"Freq", "Samples", "PAAE train@nominal",
                  "PAAE at-point"});
    for (const auto &e : report.entries)
        ct.addRow({cat(e.freqGhz, " GHz"),
                   std::to_string(e.count),
                   TextTable::num(e.paaeCross, 2),
                   TextTable::num(e.paaeAtPoint, 2)});
    std::cout << "\nTop-down model PAAE across the sweep (trained "
                 "at "
              << report.trainFreqGhz << " GHz):\n";
    ct.print(std::cout);
    std::cout << "Expected shape: the nominal-trained model "
                 "degrades away from its training frequency; the "
                 "per-point models stay flat — per-operating-point "
                 "training is what makes DVFS power models "
                 "trustworthy.\n";
    return 0;
}
