/**
 * @file
 * Validates paper Figure 3 / Section 2.1.3: the analytical
 * set-associative cache model's static hit-level guarantees, and the
 * design-choice ablation called out in DESIGN.md — analytical
 * construction vs a DSE over stride patterns for reaching a target
 * hit distribution (generation cost in evaluations).
 */

#include <chrono>

#include "bench/common.hh"
#include "campaign/campaign.hh"
#include "microprobe/cache_model.hh"
#include "microprobe/dse.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

namespace
{

/** Measure the hit distribution a program achieves at 1-1. */
std::array<double, 4>
measure(Machine &m, const Program &p)
{
    RunResult r = m.run(p, ChipConfig{1, 1});
    double tot = r.chip.l1Hits + r.chip.l2Hits + r.chip.l3Hits +
                 r.chip.memAcc;
    if (tot <= 0)
        return {0, 0, 0, 0};
    return {r.chip.l1Hits / tot, r.chip.l2Hits / tot,
            r.chip.l3Hits / tot, r.chip.memAcc / tot};
}

Program
buildWith(Architecture &arch, const MemDistribution &d,
          uint64_t seed)
{
    Synthesizer s(arch, seed);
    s.addPass<SkeletonPass>(2048);
    s.addPass<InstructionMixPass>(arch.isa().loads());
    s.addPass<MemoryModelPass>(d);
    s.addPass<RegisterInitPass>(DataPattern::Random);
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(4, 16)));
    return s.synthesize("fig3");
}

/**
 * The prior-work alternative: a stride-pattern DSE (Joshi et al.
 * HPCA'08 style). One stride stream walks memory with a given step
 * and footprint; a GA searches (stride, footprint) until the
 * distribution matches.
 */
Program
buildStrideBench(Architecture &arch, int stride_lines,
                 int footprint_lines)
{
    Program p;
    p.isa = &arch.isa();
    p.name = "stride-dse";
    MemStream s;
    uint64_t addr = 16ull << 20;
    for (int i = 0; i < footprint_lines; ++i) {
        s.lines.push_back(addr);
        addr += static_cast<uint64_t>(stride_lines) * 128;
    }
    p.streams.push_back(std::move(s));
    Isa::OpIndex ld = arch.isa().find("ld");
    for (int i = 0; i < 2047; ++i)
        p.body.push_back({ld, 6, 0, 1.0f, 1.0f});
    p.body.push_back(
        {arch.isa().find("bdnz"), 0, -1, 1.0f, 1.0f});
    return p;
}

} // namespace

int
main()
{
    banner("Figure 3 validation: analytical cache model "
           "guarantees + DSE-vs-analytical ablation");

    BenchContext ctx(false);

    // Part 1: guarantee grid — target vs measured for a sweep of
    // distributions.
    const MemDistribution targets[] = {
        {1.00, 0.00, 0.00, 0.00}, {0.00, 1.00, 0.00, 0.00},
        {0.00, 0.00, 1.00, 0.00}, {0.00, 0.00, 0.00, 1.00},
        {0.75, 0.25, 0.00, 0.00}, {0.50, 0.50, 0.00, 0.00},
        {0.25, 0.75, 0.00, 0.00}, {0.75, 0.00, 0.25, 0.00},
        {0.50, 0.00, 0.50, 0.00}, {0.25, 0.00, 0.75, 0.00},
        {0.00, 0.75, 0.25, 0.00}, {0.00, 0.50, 0.50, 0.00},
        {0.00, 0.25, 0.75, 0.00}, {0.33, 0.33, 0.34, 0.00},
        {0.25, 0.25, 0.25, 0.25}, {0.10, 0.20, 0.30, 0.40},
    };
    // One campaign batch measures the whole grid (pool + shared
    // result cache); the hit shares come from the samples'
    // L1/L2/L3/MEM activity rates.
    std::vector<Program> grid;
    uint64_t seed = 1;
    for (const auto &d : targets)
        grid.push_back(buildWith(ctx.arch, d, seed++));
    Campaign campaign(ctx.machine, benchCampaignSpec());
    auto grid_samples =
        campaign.measure(grid, {ChipConfig{1, 1}});

    TextTable t({"target L1/L2/L3/MEM", "measured L1", "L2", "L3",
                 "MEM", "max err"});
    double worst = 0.0;
    for (size_t gi = 0; gi < grid.size(); ++gi) {
        const MemDistribution &d = targets[gi];
        // rates order: FXU, VSU, LSU, L1, L2, L3, MEM.
        const auto &r = grid_samples[gi].rates;
        double tot = r[3] + r[4] + r[5] + r[6];
        std::array<double, 4> got =
            tot > 0 ? std::array<double, 4>{r[3] / tot, r[4] / tot,
                                            r[5] / tot, r[6] / tot}
                    : std::array<double, 4>{0, 0, 0, 0};
        double err = std::max(
            std::max(std::abs(got[0] - d.l1),
                     std::abs(got[1] - d.l2)),
            std::max(std::abs(got[2] - d.l3),
                     std::abs(got[3] - d.mem)));
        worst = std::max(worst, err);
        t.addRow({TextTable::num(d.l1, 2) + "/" +
                      TextTable::num(d.l2, 2) + "/" +
                      TextTable::num(d.l3, 2) + "/" +
                      TextTable::num(d.mem, 2),
                  TextTable::num(got[0], 3),
                  TextTable::num(got[1], 3),
                  TextTable::num(got[2], 3),
                  TextTable::num(got[3], 3),
                  TextTable::num(err, 4)});
    }
    t.print(std::cout);
    std::cout << "\nWorst-case distribution error: "
              << TextTable::num(worst * 100, 2)
              << "% (static guarantee, zero search "
                 "evaluations)\n";

    // Part 2: ablation — evaluations needed by a stride-pattern DSE
    // to approximate one mixed target, vs 0 for the analytical
    // model.
    std::cout << "\nAblation: stride-pattern DSE (prior work) "
                 "searching for L1=50%/L2=50%:\n";
    MemDistribution goal{0.5, 0.5, 0, 0};
    // This eval deliberately measures via raw Machine::run, not
    // Campaign::measure: it is generation-search feedback (like the
    // suite's IPC-target searches), and the reported search time is
    // the ablation's cost claim — a warm result cache would
    // short-circuit exactly what is being costed.
    auto eval = [&](const DesignPoint &pt) {
        Program p = buildStrideBench(ctx.arch, pt[0] + 1,
                                     (pt[1] + 1) * 4);
        auto got = measure(ctx.machine, p);
        double err = std::abs(got[0] - goal.l1) +
                     std::abs(got[1] - goal.l2) +
                     std::abs(got[2] - goal.l3) + got[3];
        return -err;
    };
    GaOptions ga;
    ga.population = fastMode() ? 8 : 16;
    ga.generations = fastMode() ? 4 : 10;
    GeneticSearch search(ga);
    auto t0 = std::chrono::steady_clock::now();
    Evaluated best = search.search(
        {{"stride-lines", 0, 63}, {"footprint/4", 0, 63}}, eval);
    auto t1 = std::chrono::steady_clock::now();
    std::cout << "  evaluations: " << search.history().size()
              << ", best |error|: "
              << TextTable::num(-best.fitness, 3)
              << ", search time: "
              << std::chrono::duration_cast<
                     std::chrono::milliseconds>(t1 - t0)
                     .count()
              << " ms\n"
              << "  analytical model: 0 evaluations, exact by "
                 "construction.\n";
    return 0;
}
