/**
 * @file
 * Regenerates paper Figure 5a: per-benchmark processor power
 * breakdown (real vs predicted) for the SPEC proxies on the 4-core,
 * 4-way-SMT configuration, using the bottom-up model's
 * decomposition. Powers are normalized to the maximum real power in
 * the series, as the paper normalizes all absolute values.
 */

#include "bench/common.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Figure 5a: SPEC power breakdown, real vs predicted "
           "(CMP-SMT 4-4)");

    BenchContext ctx;
    ModelExperiment ex = runModelPipeline(ctx.arch, ctx.machine,
                                          paperPipelineOptions());

    ChipConfig cfg{4, 4};
    auto samples = ex.specAt(cfg);

    double norm = 0.0;
    for (const auto &s : samples)
        norm = std::max(norm, s.powerWatts);

    TextTable t({"Benchmark", "Real", "Predicted", "WI", "Uncore",
                 "CMP_eff", "SMT_eff", "Dynamic", "err%"});
    double err_sum = 0.0;
    for (const auto &s : samples) {
        PowerBreakdown b = ex.bu.breakdown(s);
        double err = pctAbsError(b.total(), s.powerWatts);
        err_sum += err;
        t.addRow({s.workload,
                  TextTable::num(s.powerWatts / norm, 3),
                  TextTable::num(b.total() / norm, 3),
                  TextTable::num(b.workloadIndependent / norm, 3),
                  TextTable::num(b.uncore / norm, 3),
                  TextTable::num(b.cmpEffect / norm, 3),
                  TextTable::num(b.smtEffect / norm, 3),
                  TextTable::num(b.dynamic / norm, 3),
                  TextTable::num(err, 2)});
    }
    t.print(std::cout);
    std::cout << "\nMean abs error on this configuration: "
              << TextTable::num(err_sum / samples.size(), 2)
              << "% (paper: ~2.3% overall mean)\n"
              << "The non-dynamic components are constant across "
                 "benchmarks (they depend only on the "
                 "configuration), matching the figure.\n";
    return 0;
}
