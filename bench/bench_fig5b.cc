/**
 * @file
 * Regenerates paper Figure 5b: percentage average absolute
 * prediction error (PAAE) of the bottom-up model on the SPEC
 * proxies, for all 24 CMP-SMT configurations plus the mean.
 */

#include "bench/common.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Figure 5b: bottom-up model PAAE per CMP-SMT "
           "configuration");

    BenchContext ctx;
    ModelExperiment ex = runModelPipeline(ctx.arch, ctx.machine,
                                          paperPipelineOptions());

    TextTable t({"Config", "PAAE %"});
    double sum = 0.0;
    double worst = 0.0;
    size_t n = 0;
    for (const auto &cfg : ChipConfig::all()) {
        auto ss = ex.specAt(cfg);
        if (ss.empty())
            continue;
        double e = ex.paaeOf(ex.bu, ss);
        sum += e;
        worst = std::max(worst, e);
        ++n;
        t.addRow({cfg.label(), TextTable::num(e, 2)});
    }
    t.addRow({"Mean", TextTable::num(sum / n, 2)});
    t.print(std::cout);
    std::cout << "\nMean PAAE: " << TextTable::num(sum / n, 2)
              << "% (paper: ~2.3%), max "
              << TextTable::num(worst, 2)
              << "% (paper: ~4%).\n"
              << "The linear CMP/SMT approximation of a convex "
                 "reality produces the rise-then-fall error trend "
                 "over core count discussed in Section 4.1.1.\n";
    return 0;
}
