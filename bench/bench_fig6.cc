/**
 * @file
 * Regenerates paper Figure 6: PAAE of the four models (TD_Micro,
 * TD_Random, TD_SPEC, BU) on the SPEC proxies per configuration,
 * plus the ablation DESIGN.md calls out — a top-down model without
 * the #cores/SMT input variables.
 */

#include "bench/common.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Figure 6: PAAE of TD_Micro / TD_Random / TD_SPEC / BU "
           "per configuration");

    BenchContext ctx;
    ModelExperiment ex = runModelPipeline(ctx.arch, ctx.machine,
                                          paperPipelineOptions());

    // Ablation model: no SMT/CMP input variables (Section 4.1:
    // "models without these two input variables exhibit large
    // errors").
    TopDownOptions no_vars;
    no_vars.useCores = false;
    no_vars.useSmt = false;
    TopDownModel td_novars = TopDownModel::train(
        ex.microAllConfigs, "TD_NoVars", no_vars);

    TextTable t({"Config", "TD_Micro", "TD_Random", "TD_SPEC",
                 "BU", "TD_NoVars(abl)"});
    double sums[5] = {0, 0, 0, 0, 0};
    size_t n = 0;
    for (const auto &cfg : ChipConfig::all()) {
        auto ss = ex.specAt(cfg);
        if (ss.empty())
            continue;
        double e[5] = {
            ex.paaeOf(ex.tdMicro, ss), ex.paaeOf(ex.tdRandom, ss),
            ex.paaeOf(ex.tdSpec, ss), ex.paaeOf(ex.bu, ss),
            ex.paaeOf(td_novars, ss),
        };
        for (int i = 0; i < 5; ++i)
            sums[i] += e[i];
        ++n;
        t.addRow({cfg.label(), TextTable::num(e[0], 2),
                  TextTable::num(e[1], 2), TextTable::num(e[2], 2),
                  TextTable::num(e[3], 2),
                  TextTable::num(e[4], 2)});
    }
    std::vector<std::string> mean_row = {"Mean"};
    for (double s : sums)
        mean_row.push_back(TextTable::num(s / n, 2));
    t.addRow(mean_row);
    t.print(std::cout);

    std::cout << "\nExpected shape: all four models land in the "
                 "paper's 2-4% band and stay within ~2 points of "
                 "the optimistic TD_SPEC (trained on the "
                 "validation set itself); the ablation without "
                 "the #cores/SMT variables degrades steadily with "
                 "core count, which is the paper's argument for "
                 "adding them. (On this substrate TD_Random "
                 "slightly outperforms BU on plain SPEC -- see "
                 "Figure 7 for where it falls apart.)\n";
    return 0;
}
