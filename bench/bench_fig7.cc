/**
 * @file
 * Regenerates paper Figure 7: PAAE of the four models on the
 * extreme activity cases (FXU High/Low, L1 Loads, Main memory, VSU
 * High/Low), across all configurations — the experiment that shows
 * workload-trained models extrapolate badly while
 * micro-benchmark-trained models stay accurate.
 */

#include "bench/common.hh"
#include "campaign/campaign.hh"
#include "power/area_model.hh"
#include "util/table.hh"
#include "workloads/extremes.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Figure 7: model PAAE on extreme activity cases");

    BenchContext ctx;
    PipelineOptions po = paperPipelineOptions();
    ModelExperiment ex =
        runModelPipeline(ctx.arch, ctx.machine, po);

    auto cases =
        generateExtremeCases(ctx.arch, po.suite.bodySize);

    // Extension: the Isci-style area-heuristic model (ref. [27])
    // calibrated on the hottest micro-benchmark of the suite.
    const Sample *hottest = nullptr;
    for (const auto &s : ex.buSet.microSmt1)
        if (!hottest || s.powerWatts > hottest->powerWatts)
            hottest = &s;
    AreaHeuristicModel area = AreaHeuristicModel::calibrate(
        ctx.arch.uarch(), *hottest,
        ctx.machine.idleWatts(ChipConfig{1, 1}));

    // One campaign pass measures every (case, configuration) point
    // on the pool, sharing the benches' result cache.
    std::vector<Program> case_progs;
    for (const auto &c : cases)
        case_progs.push_back(c.program);
    Campaign campaign(ctx.machine, benchCampaignSpec());
    auto case_samples = campaign.measure(case_progs, po.configs);

    TextTable t({"Extreme benchmark", "TD_Micro", "TD_Random",
                 "TD_SPEC", "BU", "Area[27]"});
    double sums[5] = {0, 0, 0, 0, 0};
    for (size_t ci = 0; ci < cases.size(); ++ci) {
        const auto &c = cases[ci];
        std::vector<Sample> ss(
            case_samples.begin() +
                static_cast<long>(ci * po.configs.size()),
            case_samples.begin() +
                static_cast<long>((ci + 1) * po.configs.size()));
        double e[5] = {
            ex.paaeOf(ex.tdMicro, ss),
            ex.paaeOf(ex.tdRandom, ss),
            ex.paaeOf(ex.tdSpec, ss),
            ex.paaeOf(ex.bu, ss),
            ex.paaeOf(area, ss),
        };
        for (int i = 0; i < 5; ++i)
            sums[i] += e[i];
        t.addRow({c.name, TextTable::num(e[0], 2),
                  TextTable::num(e[1], 2), TextTable::num(e[2], 2),
                  TextTable::num(e[3], 2),
                  TextTable::num(e[4], 2)});
    }
    t.addRow({"Mean", TextTable::num(sums[0] / 6, 2),
              TextTable::num(sums[1] / 6, 2),
              TextTable::num(sums[2] / 6, 2),
              TextTable::num(sums[3] / 6, 2),
              TextTable::num(sums[4] / 6, 2)});
    t.print(std::cout);

    std::cout << "\nExpected shape: the micro-benchmark-trained "
                 "models (TD_Micro, BU) stay accurate; the "
                 "workload-trained TD_Random/TD_SPEC degrade "
                 "badly on at least one case (the paper reports "
                 "62% for TD_Random on FXU High).\n";
    return 0;
}
