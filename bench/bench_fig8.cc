/**
 * @file
 * Regenerates paper Figure 8: the average per-component power
 * breakdown (percent) of the SPEC proxies for every CMP-SMT
 * configuration, from the bottom-up model's decomposition.
 */

#include "bench/common.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Figure 8: average power breakdown (%) per "
           "configuration");

    BenchContext ctx;
    ModelExperiment ex = runModelPipeline(ctx.arch, ctx.machine,
                                          paperPipelineOptions());

    TextTable t({"Config", "WI%", "Uncore%", "CMP_eff%",
                 "SMT_eff%", "Dynamic%"});
    double share_11 = 0.0, share_84 = 0.0;
    for (const auto &cfg : ChipConfig::all()) {
        auto ss = ex.specAt(cfg);
        if (ss.empty())
            continue;
        PowerBreakdown acc;
        for (const auto &s : ss) {
            PowerBreakdown b = ex.bu.breakdown(s);
            acc.dynamic += b.dynamic;
            acc.smtEffect += b.smtEffect;
            acc.cmpEffect += b.cmpEffect;
            acc.uncore += b.uncore;
            acc.workloadIndependent += b.workloadIndependent;
        }
        double tot = acc.total();
        double wi = acc.workloadIndependent / tot * 100;
        double un = acc.uncore / tot * 100;
        t.addRow({cfg.label(), TextTable::num(wi, 1),
                  TextTable::num(un, 1),
                  TextTable::num(acc.cmpEffect / tot * 100, 1),
                  TextTable::num(acc.smtEffect / tot * 100, 1),
                  TextTable::num(acc.dynamic / tot * 100, 1)});
        if (cfg.cores == 1 && cfg.smt == 1)
            share_11 = wi + un;
        if (cfg.cores == 8 && cfg.smt == 4)
            share_84 = wi + un;
    }
    t.print(std::cout);

    std::cout << "\nWI+Uncore share: "
              << TextTable::num(share_11, 1) << "% at 1-1 -> "
              << TextTable::num(share_84, 1)
              << "% at 8-4 (paper: ~85% -> ~50%).\n"
              << "Enabling SMT raises the dynamic share while the "
                 "SMT-enable overhead itself stays small (<3%).\n";
    return 0;
}
