/**
 * @file
 * Regenerates paper Figure 9: max/mean/min power of the stressmark
 * sets (DAXPY, Expert manual, Expert DSE, MicroProbe), normalized
 * to the maximum power observed across the whole SPEC proxy suite —
 * plus the heuristic-vs-naive search-space ablation from DESIGN.md.
 */

#include <algorithm>
#include <cmath>

#include "bench/common.hh"
#include "campaign/campaign.hh"
#include "util/table.hh"
#include "workloads/daxpy.hh"
#include "workloads/spec_proxies.hh"
#include "workloads/stressmarks.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Figure 9: max-power stressmark results (normalized to "
           "the SPEC maximum)");

    BenchContext ctx; // bootstraps: the MicroProbe picks need EPIs

    const size_t body = fastMode() ? 1024 : 4096;
    const std::vector<ChipConfig> smt_configs = {
        {8, 1}, {8, 2}, {8, 4}};

    // Fixed benchmark sets (SPEC baseline, DAXPY, Expert manual)
    // deploy through the campaign engine: one parallel cached pass
    // instead of hand-rolled run loops.
    Campaign campaign(ctx.machine, benchCampaignSpec());
    auto powers_of = [&](const std::vector<Program> &progs) {
        std::vector<double> powers;
        for (const auto &s : campaign.measure(progs, smt_configs))
            powers.push_back(s.powerWatts);
        return powers;
    };

    // Baseline: maximum power over the whole SPEC proxy suite in
    // every SMT mode at 8 cores ("the maximum power seen during
    // the full-suite SPEC 2006 execution").
    double spec_max =
        maxOf(powers_of(generateSpecProxies(ctx.arch, body)));

    struct SetResult
    {
        std::string name;
        std::vector<double> powers;
        std::vector<double> ipcs;
        size_t evals = 0;
        bool truncated = false;
    };
    std::vector<SetResult> sets;

    // DAXPY kernels.
    sets.push_back({"DAXPY",
                    powers_of(generateDaxpySet(ctx.arch, body)),
                    {},
                    0,
                    false});

    // Expert manual orderings.
    sets.push_back({"Expert manual",
                    powers_of(expertManualSet(ctx.arch, body)),
                    {},
                    0,
                    false});

    // Expert DSE: exhaustive 540-point exploration per SMT mode,
    // every sequence measured through the campaign engine (pool +
    // cache). A truncated enumeration is propagated so the report
    // can mark partial explorations.
    auto explore = [&](const std::vector<Isa::OpIndex> &triple,
                       const std::string &name) {
        SetResult r{name, {}, {}, 0, false};
        for (const ChipConfig &cfg : smt_configs) {
            StressmarkExploration ex = exploreSequences(
                ctx.arch, campaign, triple, cfg, 6, body);
            r.powers.insert(r.powers.end(), ex.powers.begin(),
                            ex.powers.end());
            r.ipcs.insert(r.ipcs.end(), ex.ipcs.begin(),
                          ex.ipcs.end());
            r.evals += ex.evaluations;
            r.truncated |= ex.truncated;
        }
        return r;
    };
    sets.push_back(explore(expertPicks(ctx.arch), "Expert DSE"));

    // MicroProbe: candidates selected by the IPC*EPI heuristic
    // from the bootstrapped characterization — no expert needed.
    auto mp_picks = microprobePicks(ctx.arch);
    std::cout << "MicroProbe-selected candidates (top IPC*EPI per "
                 "unit): ";
    for (auto op : mp_picks)
        std::cout << ctx.arch.isa().at(op).name << " ";
    std::cout << "\n\n";
    sets.push_back(explore(mp_picks, "MicroProbe"));

    TextTable t({"Benchmark set", "Min", "Mean", "Max",
                 "evaluations"});
    for (const auto &r : sets) {
        t.addRow({r.name,
                  TextTable::num(minOf(r.powers) / spec_max, 3),
                  TextTable::num(mean(r.powers) / spec_max, 3),
                  TextTable::num(maxOf(r.powers) / spec_max, 3),
                  std::to_string(r.evals) +
                      (r.truncated ? " (partial)" : "")});
    }
    t.print(std::cout);
    for (const auto &r : sets)
        if (r.truncated)
            std::cout << "WARNING: the " << r.name
                      << " exploration was truncated before "
                         "covering its whole space; its min/mean/"
                         "max are over a prefix only.\n";

    double expert_max = maxOf(sets[2].powers) / spec_max;
    double mp_max = maxOf(sets[3].powers) / spec_max;

    // The paper's order-sensitivity analysis: among the Expert-DSE
    // sequences that reach the maximum core IPC (181 in the paper),
    // same mix and same activity, the power still spreads widely.
    const SetResult &dse = sets[2];
    double ipc_max = maxOf(dse.ipcs);
    std::vector<double> same_ipc_powers;
    for (size_t i = 0; i < dse.powers.size(); ++i)
        if (dse.ipcs[i] >= ipc_max - 0.02)
            same_ipc_powers.push_back(dse.powers[i]);
    double order_spread =
        (maxOf(same_ipc_powers) - minOf(same_ipc_powers)) /
        maxOf(same_ipc_powers) * 100.0;

    std::cout << "\nMicroProbe stressmark exceeds the SPEC "
                 "maximum by "
              << TextTable::num((mp_max - 1.0) * 100, 1)
              << "% (paper: 10.7%) and the Expert DSE best by "
              << TextTable::num((mp_max - expert_max) * 100, 1)
              << " points (paper: ~1 point).\n"
              << same_ipc_powers.size()
              << " Expert-DSE stressmarks reach the maximum core "
                 "IPC (paper: 181); their instruction-order power "
                 "spread is "
              << TextTable::num(order_spread, 1)
              << "% (paper: up to 17%).\n";

    // Extension (the paper's stated future work, after MAMPO):
    // heterogeneous SMT deployments — different single-unit
    // stressmarks on sibling threads vs the homogeneous best.
    {
        Program fxu = buildStressmark(
            ctx.arch, {mp_picks[0]}, "het-fxu", body);
        Program lsu = buildStressmark(
            ctx.arch, {mp_picks[1]}, "het-lsu", body);
        Program vsu = buildStressmark(
            ctx.arch, {mp_picks[2]}, "het-vsu", body);
        Program best =
            buildStressmark(ctx.arch, mp_picks, "hom-best", body);
        ExecModel exec(ctx.arch.isa());
        CoreSimOptions so = ctx.machine.simOptions();
        CoreResult hom = simulateCoreHetero(
            exec, {&best, &best, &best, &best}, so);
        CoreResult het = simulateCoreHetero(
            exec, {&fxu, &lsu, &vsu, &best}, so);
        double hom_w = hom.window.energyNj / hom.window.cycles;
        double het_w = het.window.energyNj / het.window.cycles;
        std::cout << "\nHeterogeneous-SMT extension (future work "
                     "in the paper): per-core dynamic energy/cycle "
                  << TextTable::num(het_w, 2)
                  << " nJ heterogeneous vs "
                  << TextTable::num(hom_w, 2)
                  << " nJ homogeneous-best — on this machine the "
                     "balanced homogeneous sequence already "
                     "saturates all units, so heterogeneity "
                  << (het_w > hom_w ? "wins" : "does not win")
                  << ".\n";
    }

    // Ablation: heuristic-constrained vs naive search-space size.
    size_t isa_n = 0;
    for (const auto &d : ctx.arch.isa().all())
        isa_n += !d.privileged && !d.isBranch();
    double naive = std::pow(static_cast<double>(isa_n), 6.0);
    std::cout << "\nSearch-space ablation: naive sequences of 6 "
                 "over the whole ISA = "
              << naive
              << " points; EPI/IPC/unit heuristic reduces this to "
                 "540 per SMT mode.\n";
    return 0;
}
