/**
 * @file
 * google-benchmark microbenchmarks of the framework itself: the
 * cost of synthesis, the analytical cache model, simulation, and
 * the bootstrap — quantifying the paper's productivity claim that
 * suites which take an expert days to hand-craft are generated "in
 * a few hours without any human intervention" (here: milliseconds
 * per micro-benchmark on the simulated platform).
 *
 * Unlike the figure/table benches, the Machine::run calls here are
 * deliberately NOT routed through Campaign::measure: raw simulation
 * cost is the quantity under measurement, and the campaign's result
 * cache would short-circuit exactly the code being timed.
 */

#include <benchmark/benchmark.h>

#include "microprobe/bootstrap.hh"
#include "util/logging.hh"
#include "microprobe/cache_model.hh"
#include "microprobe/emitter.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "sim/machine.hh"

using namespace mprobe;

namespace
{

Architecture &
arch()
{
    static Architecture a = Architecture::get("POWER7");
    return a;
}

Machine &
machine()
{
    static Machine m(arch().isa());
    return m;
}

} // namespace

static void
BM_SynthesizeLoadLoop(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    Synthesizer s(arch(), 1);
    s.addPass<SkeletonPass>(static_cast<size_t>(state.range(0)));
    s.addPass<InstructionMixPass>(arch().isa().loads());
    s.addPass<MemoryModelPass>(
        MemDistribution{0.33, 0.33, 0.34, 0});
    s.addPass<RegisterInitPass>(DataPattern::Random);
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 32)));
    for (auto _ : state) {
        Program p = s.synthesize();
        benchmark::DoNotOptimize(p.body.data());
    }
}
BENCHMARK(BM_SynthesizeLoadLoop)->Arg(1024)->Arg(4096);

static void
BM_AnalyticalStream(benchmark::State &state)
{
    AnalyticalCacheModel m(arch().uarch());
    int i = 0;
    for (auto _ : state) {
        auto ts = m.makeStream(
            static_cast<HitLevel>(i % 4), i % 8);
        ++i;
        benchmark::DoNotOptimize(ts.stream.lines.data());
    }
}
BENCHMARK(BM_AnalyticalStream);

static void
BM_SimulateCompute(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    Synthesizer s(arch(), 2);
    s.addPass<SkeletonPass>(4096);
    s.addPass<InstructionMixPass>(arch().isa().integerOps());
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 16)));
    Program p = s.synthesize("bm-sim");
    ChipConfig cfg{1, static_cast<int>(state.range(0))};
    for (auto _ : state) {
        RunResult r = machine().run(p, cfg);
        benchmark::DoNotOptimize(r.sensorWatts);
    }
}
BENCHMARK(BM_SimulateCompute)->Arg(1)->Arg(4);

static void
BM_SimulateMemoryBound(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    Synthesizer s(arch(), 3);
    s.addPass<SkeletonPass>(4096);
    s.addPass<InstructionMixPass>(arch().isa().loads());
    s.addPass<MemoryModelPass>(MemDistribution{0, 0, 0, 1});
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(4, 16)));
    Program p = s.synthesize("bm-mem");
    for (auto _ : state) {
        RunResult r = machine().run(p, ChipConfig{8, 1});
        benchmark::DoNotOptimize(r.sensorWatts);
    }
}
BENCHMARK(BM_SimulateMemoryBound);

static void
BM_BootstrapOneInstruction(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    Architecture a = Architecture::get("POWER7");
    BootstrapOptions bo;
    bo.bodySize = 1024;
    Isa::OpIndex op = a.isa().find("xvmaddadp");
    for (auto _ : state) {
        auto e = bootstrapInstruction(a, machine(), op, bo);
        benchmark::DoNotOptimize(e.epiNj);
    }
}
BENCHMARK(BM_BootstrapOneInstruction);

static void
BM_EmitC(benchmark::State &state)
{
    setLogLevel(LogLevel::Quiet);
    Synthesizer s(arch(), 4);
    s.addPass<SkeletonPass>(4096);
    s.addPass<InstructionMixPass>(arch().isa().loads());
    s.addPass<MemoryModelPass>(MemDistribution{1, 0, 0, 0});
    Program p = s.synthesize("bm-emit");
    for (auto _ : state) {
        std::string c = emitC(p);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_EmitC);

BENCHMARK_MAIN();
