/**
 * @file
 * Regenerates paper Table 2: the automatically generated
 * micro-benchmark training suite — category, units stressed, count,
 * and the achieved IPC/hit-distribution properties that the
 * generation policies target.
 */

#include <map>

#include "bench/common.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Table 2: micro-benchmarks automatically generated "
           "using MicroProbe");

    BenchContext ctx;
    SuiteOptions so = paperPipelineOptions().suite;
    auto suite = generateTable2Suite(ctx.arch, ctx.machine, so);

    struct Group
    {
        std::string units;
        int count = 0;
        double ipc_lo = 1e9, ipc_hi = -1e9;
        double ipc_err = 0.0;
        int targeted = 0;
    };
    std::map<std::string, Group> groups;
    std::vector<std::string> order;

    for (const auto &gb : suite) {
        std::string key =
            gb.category == BenchCategory::MemoryGroup
                ? gb.group
                : benchCategoryName(gb.category);
        if (!groups.count(key))
            order.push_back(key);
        Group &g = groups[key];
        g.units = gb.unitsStressed;
        ++g.count;
        if (gb.targetIpc > 0) {
            g.ipc_lo = std::min(g.ipc_lo, gb.targetIpc);
            g.ipc_hi = std::max(g.ipc_hi, gb.targetIpc);
            g.ipc_err +=
                std::abs(gb.achievedIpc - gb.targetIpc);
            ++g.targeted;
        }
    }

    TextTable t({"Name", "Units stressed", "#", "IPC range",
                 "mean |IPC err|"});
    size_t total = 0;
    for (const auto &key : order) {
        const Group &g = groups[key];
        total += static_cast<size_t>(g.count);
        std::string range =
            g.targeted
                ? TextTable::num(g.ipc_lo, 1) + " - " +
                      TextTable::num(g.ipc_hi, 1)
                : "-";
        std::string err =
            g.targeted
                ? TextTable::num(g.ipc_err / g.targeted, 3)
                : "-";
        t.addRow({key, g.units, std::to_string(g.count), range,
                  err});
    }
    t.print(std::cout);
    std::cout << "\nTotal micro-benchmarks generated: " << total
              << " (paper: ~583 across the same categories)\n";

    // Verify the memory groups deliver their hit distributions on
    // the machine (spot checks, one per group).
    std::cout << "\nMemory-group hit distributions "
                 "(measured on the machine, 1-1 config):\n";
    TextTable v({"Group", "L1", "L2", "L3", "MEM"});
    std::string last;
    for (const auto &gb : suite) {
        if (gb.category != BenchCategory::MemoryGroup ||
            gb.group == last)
            continue;
        last = gb.group;
        RunResult r =
            ctx.machine.run(gb.program, ChipConfig{1, 1});
        double tot = r.chip.l1Hits + r.chip.l2Hits +
                     r.chip.l3Hits + r.chip.memAcc;
        v.addRow({gb.group,
                  TextTable::num(r.chip.l1Hits / tot, 3),
                  TextTable::num(r.chip.l2Hits / tot, 3),
                  TextTable::num(r.chip.l3Hits / tot, 3),
                  TextTable::num(r.chip.memAcc / tot, 3)});
    }
    v.print(std::cout);
    return 0;
}
