/**
 * @file
 * Regenerates paper Table 2: the automatically generated
 * micro-benchmark training suite — category, units stressed, count,
 * and the achieved IPC/hit-distribution properties that the
 * generation policies target.
 */

#include <map>

#include "bench/common.hh"
#include "campaign/campaign.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Table 2: micro-benchmarks automatically generated "
           "using MicroProbe");

    BenchContext ctx;
    SuiteOptions so = paperPipelineOptions().suite;
    auto suite = generateTable2Suite(ctx.arch, ctx.machine, so);

    struct Group
    {
        std::string units;
        int count = 0;
        double ipc_lo = 1e9, ipc_hi = -1e9;
        double ipc_err = 0.0;
        int targeted = 0;
    };
    std::map<std::string, Group> groups;
    std::vector<std::string> order;

    for (const auto &gb : suite) {
        std::string key =
            gb.category == BenchCategory::MemoryGroup
                ? gb.group
                : benchCategoryName(gb.category);
        if (!groups.count(key))
            order.push_back(key);
        Group &g = groups[key];
        g.units = gb.unitsStressed;
        ++g.count;
        if (gb.targetIpc > 0) {
            g.ipc_lo = std::min(g.ipc_lo, gb.targetIpc);
            g.ipc_hi = std::max(g.ipc_hi, gb.targetIpc);
            g.ipc_err +=
                std::abs(gb.achievedIpc - gb.targetIpc);
            ++g.targeted;
        }
    }

    TextTable t({"Name", "Units stressed", "#", "IPC range",
                 "mean |IPC err|"});
    size_t total = 0;
    for (const auto &key : order) {
        const Group &g = groups[key];
        total += static_cast<size_t>(g.count);
        std::string range =
            g.targeted
                ? TextTable::num(g.ipc_lo, 1) + " - " +
                      TextTable::num(g.ipc_hi, 1)
                : "-";
        std::string err =
            g.targeted
                ? TextTable::num(g.ipc_err / g.targeted, 3)
                : "-";
        t.addRow({key, g.units, std::to_string(g.count), range,
                  err});
    }
    t.print(std::cout);
    std::cout << "\nTotal micro-benchmarks generated: " << total
              << " (paper: ~583 across the same categories)\n";

    // Verify the memory groups deliver their hit distributions on
    // the machine (spot checks, one per group), measured through
    // the campaign engine in one cached batch. The hit shares come
    // from the sample's L1/L2/L3/MEM activity rates — identical to
    // the counter ratios since both divide by the window length.
    std::cout << "\nMemory-group hit distributions "
                 "(measured on the machine, 1-1 config):\n";
    std::vector<Program> checks;
    std::vector<std::string> check_groups;
    std::string last;
    for (const auto &gb : suite) {
        if (gb.category != BenchCategory::MemoryGroup ||
            gb.group == last)
            continue;
        last = gb.group;
        checks.push_back(gb.program);
        check_groups.push_back(gb.group);
    }
    Campaign campaign(ctx.machine, benchCampaignSpec());
    auto samples = campaign.measure(checks, {ChipConfig{1, 1}});
    TextTable v({"Group", "L1", "L2", "L3", "MEM"});
    for (size_t i = 0; i < samples.size(); ++i) {
        // rates order: FXU, VSU, LSU, L1, L2, L3, MEM.
        const auto &r = samples[i].rates;
        double tot = r[3] + r[4] + r[5] + r[6];
        v.addRow({check_groups[i], TextTable::num(r[3] / tot, 3),
                  TextTable::num(r[4] / tot, 3),
                  TextTable::num(r[5] / tot, 3),
                  TextTable::num(r[6] / tot, 3)});
    }
    v.print(std::cout);
    return 0;
}
