/**
 * @file
 * Regenerates paper Table 3: the energy-per-instruction taxonomy of
 * the (simulated) POWER7 instructions — per category: core IPC,
 * global-normalized EPI and category-normalized EPI, with the top
 * instruction by IPC*EPI product first.
 */

#include <algorithm>
#include <map>

#include "bench/common.hh"
#include "campaign/campaign.hh"
#include "util/table.hh"

using namespace mprobe;
using namespace mprobe::bench;

namespace
{

/**
 * Category label from the bootstrapped unit/rate lists (compute
 * units only; cache levels are dropped). Units whose rates split
 * one operation between them (each below ~0.8 per instruction) are
 * alternatives — "FXU or LSU" — while full-rate units are joint
 * contributors — "LSU and FXU" — matching the paper's naming.
 */
std::string
categoryOf(const BootstrapEntry &e)
{
    std::vector<std::pair<std::string, double>> cu;
    for (size_t i = 0; i < e.units.size(); ++i) {
        const std::string &u = e.units[i];
        if (u == "L1" || u == "L2" || u == "L3" || u == "MEM")
            continue;
        cu.push_back({u, e.unitRates[i]});
    }
    std::sort(cu.begin(), cu.end());
    bool all_split = cu.size() >= 2;
    for (const auto &[u, r] : cu)
        all_split &= r < 0.8;
    std::string key;
    const char *sep = all_split ? " or " : " and ";
    for (const auto &[u, r] : cu)
        key += (key.empty() ? "" : sep) + u;
    return key.empty() ? "none" : key;
}

} // namespace

int
main()
{
    banner("Table 3: EPI-based taxonomy of instructions "
           "(8-core SMT-1, random data)");

    BenchContext ctx(false);
    BootstrapOptions bo;
    bo.bodySize = fastMode() ? 512 : 4096;
    auto entries =
        bootstrapArchitecture(ctx.arch, ctx.machine, bo);

    // Group by category; normalize EPIs.
    std::map<std::string, std::vector<BootstrapEntry>> cats;
    for (const auto &e : entries) {
        // Barriers / SPR moves / cache management are not part of
        // the paper's taxonomy.
        if (ctx.arch.isa()
                .byName(e.mnemonic)
                .cls == InstrClass::System)
            continue;
        cats[categoryOf(e)].push_back(e);
    }

    // Global normalization to addic (the paper's reference row).
    double addic_epi = 0.0;
    for (const auto &e : entries)
        if (e.mnemonic == "addic")
            addic_epi = e.epiNj;
    if (addic_epi <= 0)
        fatal("bench_table3: addic was not characterized");

    TextTable t({"Category", "Instr", "Core IPC", "EPI global",
                 "EPI category"});
    for (auto &[cat_name, list] : cats) {
        if (list.size() < 2)
            continue;
        // Top = max IPC*EPI; then up to 2 more with the same IPC
        // but differing EPI (the paper's selection), falling back
        // to the next-highest EPIs.
        std::sort(list.begin(), list.end(),
                  [](const BootstrapEntry &a,
                     const BootstrapEntry &b) {
                      return a.throughput * a.epiNj >
                             b.throughput * b.epiNj;
                  });
        const BootstrapEntry &top = list.front();
        std::vector<const BootstrapEntry *> rows = {&top};
        // The paper's other two rows share one IPC but differ most
        // in EPI: pick the same-IPC pair with the widest spread.
        const BootstrapEntry *hi = nullptr;
        const BootstrapEntry *lo = nullptr;
        double best_spread = -1.0;
        for (const auto &a : list) {
            for (const auto &b : list) {
                if (&a == &b || &a == &top || &b == &top)
                    continue;
                if (std::abs(a.throughput - b.throughput) > 0.12)
                    continue;
                if (a.throughput < 0.5 * top.throughput)
                    continue;
                double spread = a.epiNj - b.epiNj;
                if (spread > best_spread) {
                    best_spread = spread;
                    hi = &a;
                    lo = &b;
                }
            }
        }
        if (hi && lo) {
            rows.push_back(hi);
            rows.push_back(lo);
        } else {
            for (const auto &e : list) {
                if (rows.size() >= 3)
                    break;
                if (&e != &top)
                    rows.push_back(&e);
            }
        }
        double cat_min = 1e300;
        for (const auto *e : rows)
            cat_min = std::min(cat_min, e->epiNj);
        bool first = true;
        for (const auto *e : rows) {
            t.addRow({first ? cat_name : "",
                      e->mnemonic,
                      TextTable::num(e->throughput, 2),
                      TextTable::num(e->epiNj / addic_epi, 2),
                      TextTable::num(e->epiNj / cat_min, 2)});
            first = false;
        }
    }
    t.print(std::cout);

    // Headline claim: EPI variation between instructions that
    // stress the same unit *at the same rate* (same IPC).
    double max_var = 0.0;
    std::string max_pair;
    for (auto &[cat_name, list] : cats) {
        for (const auto &a : list) {
            for (const auto &b : list) {
                if (std::abs(a.throughput - b.throughput) > 0.12)
                    continue;
                if (b.epiNj <= 0)
                    continue;
                double var = (a.epiNj - b.epiNj) / b.epiNj * 100.0;
                if (var > max_var) {
                    max_var = var;
                    max_pair = a.mnemonic + " vs " + b.mnemonic +
                               " (" + cat_name + ")";
                }
            }
        }
    }
    std::cout << "\nLargest same-IPC within-category EPI "
                 "variation: "
              << TextTable::num(max_var, 0) << "% (" << max_pair
              << "); paper reports up to 78%.\n";

    // Zero-data effect (Section 5: up to 40% EPI reduction).
    {
        Isa::OpIndex op = ctx.arch.isa().find("xvmaddadp");
        BootstrapEntry rnd =
            bootstrapInstruction(ctx.arch, ctx.machine, op, bo);
        // Zero-toggle variant of the same probe benchmark,
        // deployed through the campaign engine.
        Program p;
        p.isa = &ctx.arch.isa();
        p.name = "zero-data-xvmaddadp";
        for (int i = 0; i < 4095; ++i)
            p.body.push_back({op, 0, -1, 0.0f, 1.0f});
        p.body.push_back({ctx.arch.isa().find("bdnz"), 0, -1,
                          0.0f, 1.0f});
        Campaign campaign(ctx.machine, benchCampaignSpec());
        Sample s = campaign.measure({p}, {ChipConfig{8, 1}}).at(0);
        double idle = ctx.machine.idleWatts(ChipConfig{8, 1});
        // W / (Ginstr/s) = nJ per instruction.
        double epi_zero = (s.powerWatts - idle) / s.instrGips;
        std::cout << "Zero-input-data EPI reduction for "
                     "xvmaddadp: "
                  << TextTable::num(
                         (1.0 - epi_zero / rnd.epiNj) * 100, 0)
                  << "% (paper: up to 40%).\n";
    }
    return 0;
}
