/**
 * @file
 * Undervolting margins and per-phase DVFS schedules: the two
 * analyses the `vdds` campaign axis exists for. First a voltage
 * sweep below the V/f curve discovers, per workload, the lowest
 * voltage that still measures reliably and the power reclaimed
 * there (points under the hidden Vmin come back flagged
 * unreliable, exactly like a margin-compromised real part). Then a
 * phased compute/memory workload is traced, segmented, and given a
 * per-phase operating-point assignment whose whole-run EDP beats
 * every static point of the same sweep — the governor-style
 * closing move of the DVFS study.
 */

#include <algorithm>

#include "bench/common.hh"
#include "campaign/campaign.hh"
#include "dvfs/schedule.hh"
#include "dvfs/undervolt.hh"
#include "util/table.hh"
#include "workloads/extremes.hh"

using namespace mprobe;
using namespace mprobe::bench;

int
main()
{
    banner("Undervolting margins and per-phase DVFS schedules");

    BenchContext ctx(false);
    const size_t body = fastMode() ? 1024 : 4096;
    // Probe from well under the worst-case Vmin up to the nominal
    // curve voltage, fine enough to localize the margin.
    const std::vector<double> vdds =
        fastMode()
            ? std::vector<double>{0.70, 0.80, 0.90, 1.00}
            : std::vector<double>{0.70, 0.75, 0.80, 0.85,
                                  0.90, 0.95, 1.00};

    std::vector<Program> corpus;
    for (auto &c : generateExtremeCases(ctx.arch, body))
        corpus.push_back(std::move(c.program));

    CampaignSpec spec = benchCampaignSpec();
    spec.vdds = vdds;
    Campaign campaign(ctx.machine, spec);
    auto samples =
        campaign.measure(corpus, {ChipConfig{1, 1}});

    auto margins = findUndervoltMargin(samples);
    TextTable t({"Workload", "Freq", "Nominal V", "Safe V",
                 "Nominal W", "Safe W", "Power saved",
                 "Unreliable pts"});
    double worst_saved = 1.0;
    for (const auto &m : margins) {
        t.addRow({m.workload, cat(m.freqGhz, " GHz"),
                  TextTable::num(m.nominalVdd, 3),
                  TextTable::num(m.safeVdd, 3),
                  TextTable::num(m.nominalPowerWatts, 2),
                  TextTable::num(m.safePowerWatts, 2),
                  cat(TextTable::num(m.powerSavedFrac * 100, 1),
                      "%"),
                  cat(m.unreliablePoints, "/", m.pointsProbed)});
        worst_saved = std::min(worst_saved, m.powerSavedFrac);
    }
    t.print(std::cout);
    std::cout << "\nEvery series keeps a reliable point and "
                 "reclaims power at its safe margin (worst case "
              << TextTable::num(worst_saved * 100, 1)
              << "%); high-activity kernels stop higher — their "
                 "Vmin grows with switching activity.\n";

    // Per-phase schedule: a compute/memory/compute phased run on a
    // lean-static machine (one core keeps the memory phase
    // latency-bound, so its time barely moves with f while its
    // power still falls).
    GroundTruthParams gt;
    gt.idleWatts = 5.0;
    Machine lean(ctx.arch.isa(), gt);
    Program compute;
    Program memory;
    for (auto &c : generateExtremeCases(ctx.arch, body)) {
        if (c.name == "FXU High")
            compute = std::move(c.program);
        if (c.name == "Main memory")
            memory = std::move(c.program);
    }
    PhasedWorkload phased;
    phased.name = "compute/memory/compute";
    phased.phases = {{&compute, 40.0}, {&memory, 40.0},
                     {&compute, 40.0}};
    const std::vector<double> freqs =
        fastMode() ? std::vector<double>{2.0, 3.0, 3.5}
                   : std::vector<double>{2.0, 2.5, 3.0, 3.5};
    DvfsSchedule sched = scheduleFromPhases(
        lean, phased, ChipConfig{1, 1}, freqs);

    TextTable st({"Point", "Time s", "Energy J", "EDP"});
    for (size_t k = 0; k < sched.staticPoints.size(); ++k) {
        const auto &r = sched.staticPoints[k];
        st.addRow({cat("static @", r.op.freqGhz, " GHz",
                       k == sched.bestStatic ? " (best)" : ""),
                   TextTable::num(r.seconds, 4),
                   TextTable::num(r.energyJ, 3),
                   TextTable::num(r.edp, 4)});
    }
    st.addRow({"per-phase schedule",
               TextTable::num(sched.seconds, 4),
               TextTable::num(sched.energyJ, 3),
               TextTable::num(sched.edp, 4)});
    std::cout << "\n";
    st.print(std::cout);

    TextTable pt({"Phase", "Kernel", "Assigned f", "Time s",
                  "Energy J"});
    for (const auto &p : sched.phases)
        pt.addRow({std::to_string(p.phase),
                   phased.phases[p.program].program->name,
                   cat(p.op.freqGhz, " GHz"),
                   TextTable::num(p.seconds, 4),
                   TextTable::num(p.energyJ, 3)});
    pt.print(std::cout);

    std::cout << "\nPer-phase schedule EDP gain vs best static: "
              << TextTable::num(sched.edpGainVsBestStatic * 100, 1)
              << "%"
              << (sched.edpGainVsBestStatic > 0.0
                      ? " — phase-aware DVFS beats every static "
                        "point.\n"
                      : " — UNEXPECTED: no gain over static.\n");
    return 0;
}
