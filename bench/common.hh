/**
 * @file
 * Shared setup for the figure/table regeneration benches.
 *
 * Every bench binary regenerates one table or figure of the paper's
 * evaluation: it builds the architecture, bootstraps it, runs the
 * workloads it needs on the simulated machine, and prints the same
 * rows/series the paper reports. Set MPROBE_FAST=1 in the
 * environment for a reduced (quick smoke) corpus.
 */

#ifndef BENCH_COMMON_HH
#define BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "campaign/campaign.hh"
#include "microprobe/bootstrap.hh"
#include "util/logging.hh"
#include "workloads/pipeline.hh"

namespace mprobe::bench
{

/** True when MPROBE_FAST=1: smaller corpora for smoke runs. */
inline bool
fastMode()
{
    const char *v = std::getenv("MPROBE_FAST");
    return v != nullptr && v[0] == '1';
}

/** Architecture + machine + bootstrap, shared by all benches. */
struct BenchContext
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};

    explicit BenchContext(bool bootstrap = true)
    {
        setLogLevel(LogLevel::Quiet);
        if (bootstrap) {
            BootstrapOptions bo;
            bo.bodySize = fastMode() ? 512 : 2048;
            bootstrapArchitecture(arch, machine, bo);
        }
    }
};

/** Result-cache directory benches share (MPROBE_CACHE_DIR). */
inline std::string
envCacheDir()
{
    const char *d = std::getenv("MPROBE_CACHE_DIR");
    return d != nullptr ? d : "";
}

/**
 * Shard selector benches honour (MPROBE_SHARD=i/n, needs
 * MPROBE_CACHE_DIR): a sharded bench run measures only its slice
 * of the corpus into the shared cache — its printed figures are
 * partial — and the final unsharded run regenerates the figure
 * from all cache hits. Slices are cost-weighted (LPT striping over
 * estimated job cost, see campaign/cost.hh), so a mixed-config
 * corpus splits into shards of near-equal wall time, not just
 * equal job counts.
 */
inline void
envShard(int &index, int &count)
{
    index = 0;
    count = 1;
    const char *s = std::getenv("MPROBE_SHARD");
    if (s != nullptr && s[0] != '\0')
        parseShard(s, "MPROBE_SHARD", index, count);
}

/** Pipeline options at paper scale (or reduced in fast mode). */
inline PipelineOptions
paperPipelineOptions()
{
    PipelineOptions po;
    // All measurement flows through the campaign engine: auto
    // worker count, result cache from MPROBE_CACHE_DIR so
    // re-generating a figure reuses every already-measured point,
    // optional shard slice from MPROBE_SHARD.
    po.threads = 0;
    po.cacheDir = envCacheDir();
    envShard(po.shardIndex, po.shardCount);
    if (fastMode()) {
        po.suite.bodySize = 1024;
        po.suite.perMemoryGroup = 2;
        po.suite.memoryCount = 4;
        po.suite.randomCount = 40;
        po.suite.ipcSearchBudget = 3;
        po.suite.gaPopulation = 4;
        po.suite.gaGenerations = 1;
        po.randomCrossConfig = 16;
        po.specCount = 10;
        po.bodySize = 1024;
    } else {
        po.suite.bodySize = 4096;
        po.suite.perMemoryGroup = 10;
        po.suite.memoryCount = 20;
        po.suite.randomCount = 331;
        po.suite.ipcSearchBudget = 6;
        po.suite.gaPopulation = 12;
        po.suite.gaGenerations = 5;
        po.randomCrossConfig = 48;
        po.specCount = 0; // all 28
        po.bodySize = 4096;
    }
    return po;
}

/**
 * Measurement-only campaign spec for the benches: auto worker
 * count, result cache from MPROBE_CACHE_DIR (so re-generating a
 * figure reuses every already-measured point), shard slice from
 * MPROBE_SHARD, no suite generation.
 */
inline CampaignSpec
benchCampaignSpec()
{
    CampaignSpec spec = measurementSpec(0, envCacheDir());
    envShard(spec.shardIndex, spec.shardCount);
    // Fast-mode benches measure a different (smaller) corpus than
    // full-size ones; tag the manifest so the two never accumulate
    // into one in a shared cache directory.
    spec.corpusTag = fastMode() ? 0xfa57ull : 0x1ull;
    return spec;
}

/** Print the bench banner. */
inline void
banner(const std::string &what)
{
    std::cout << "=================================================="
                 "====\n"
              << what << "\n"
              << "(simulated POWER7-like machine; power in "
                 "normalized units where noted)\n"
              << "=================================================="
                 "====\n";
}

} // namespace mprobe::bench

#endif // BENCH_COMMON_HH
