/**
 * @file
 * Example: automatic EPI characterization of a handful of
 * instructions (paper Section 5, condensed) — the bootstrap
 * discovers latency, throughput, stressed units and
 * energy-per-instruction purely from counter and sensor readings.
 *
 *   $ ./examples/epi_taxonomy
 */

#include <iostream>

#include "microprobe/bootstrap.hh"
#include "util/table.hh"

using namespace mprobe;

int
main()
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa());

    const char *instrs[] = {
        "addic", "subf", "mulldo",            // FXU
        "lbz", "lvewx", "lxvw4x",             // LSU loads
        "xstsqrtdp", "xvmaddadp", "xvnmsubmdp", // VSU
        "and", "nor", "add",                  // FXU or LSU
        "lfsu", "lwax", "ldux",               // LSU + FXU
        "stfd", "stxsdx", "stxvw4x",          // LSU + VSU
    };

    BootstrapOptions bo;
    bo.bodySize = 2048;

    TextTable t({"Instr", "Latency", "Core IPC", "EPI (nJ)",
                 "EPI vs addic", "Units"});
    double addic = 0.0;
    std::vector<BootstrapEntry> entries;
    for (const char *name : instrs) {
        auto e = bootstrapInstruction(arch, machine,
                                      arch.isa().find(name), bo);
        if (e.mnemonic == "addic")
            addic = e.epiNj;
        entries.push_back(std::move(e));
    }
    for (const auto &e : entries) {
        std::string units;
        for (const auto &u : e.units)
            units += (units.empty() ? "" : ",") + u;
        t.addRow({e.mnemonic, TextTable::num(e.latency, 1),
                  TextTable::num(e.throughput, 2),
                  TextTable::num(e.epiNj, 2),
                  TextTable::num(e.epiNj / addic, 2), units});
    }
    t.print(std::cout);

    std::cout << "\nNote the EPI spread between instructions with "
                 "identical IPC within one category — the "
                 "taxonomy's headline observation.\n";
    return 0;
}
