/**
 * @file
 * Example: phase-specific power projection (the abstract's query
 * (a): "application-specific (and if needed, phase-specific) power
 * consumption with component-wise breakdowns").
 *
 * A three-phase application (vector compute, memory streaming,
 * pointer-chasing integer) is traced at 1 ms granularity, the trace
 * is segmented back into phases, and a bottom-up model trained on
 * generated micro-benchmarks decomposes each detected phase's power
 * into components.
 *
 *   $ ./examples/phase_analysis
 */

#include <iostream>

#include "microprobe/bootstrap.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "potra/analysis.hh"
#include "potra/trace.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/pipeline.hh"

using namespace mprobe;

int
main()
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa());

    std::cout << "training a reduced bottom-up model...\n";
    BootstrapOptions bo;
    bo.bodySize = 512;
    bootstrapArchitecture(arch, machine, bo);
    PipelineOptions po;
    po.suite.bodySize = 1024;
    po.suite.perMemoryGroup = 2;
    po.suite.memoryCount = 4;
    po.suite.randomCount = 40;
    po.suite.ipcSearchBudget = 3;
    po.suite.gaPopulation = 4;
    po.suite.gaGenerations = 1;
    po.configs = {{1, 1}, {1, 2}, {1, 4}, {4, 2}, {8, 1}, {8, 4}};
    po.randomCrossConfig = 16;
    po.specCount = 6;
    po.bodySize = 1024;
    ModelExperiment ex = runModelPipeline(arch, machine, po);

    // The application: three phases with distinct behaviour.
    auto kernel = [&](std::vector<Isa::OpIndex> cands, int dep,
                      const MemDistribution *mem,
                      const char *name) {
        Synthesizer s(arch, 0xa9a);
        s.addPass<SkeletonPass>(2048);
        s.addPass<InstructionMixPass>(std::move(cands));
        if (mem)
            s.addPass<MemoryModelPass>(*mem);
        s.addPass<RegisterInitPass>(DataPattern::Random);
        s.add(std::make_unique<DependencyDistancePass>(
            dep ? DependencyDistancePass::fixed(dep)
                : DependencyDistancePass::none()));
        return s.synthesize(name);
    };
    MemDistribution mem_all{0, 0, 0, 1};
    MemDistribution l2_mix{0.5, 0.5, 0, 0};
    Program compute = kernel(arch.isa().fpVectorOps(), 8, nullptr,
                             "vector-compute");
    Program stream = kernel(arch.isa().loads(), 6, &mem_all,
                            "memory-stream");
    Program chase = kernel(arch.isa().loads(), 1, &l2_mix,
                           "pointer-chase");

    PhasedWorkload app;
    app.name = "three-phase-app";
    app.phases = {{&compute, 40.0}, {&stream, 35.0},
                  {&chase, 30.0}};

    ChipConfig cfg{8, 2};
    PowerTrace trace = tracePhased(machine, app, cfg);

    std::vector<double> watts;
    for (const auto &s : trace.samples)
        watts.push_back(s.watts);
    std::cout << "\npower trace (" << trace.samples.size()
              << " samples @ 1 ms, " << cfg.label() << "):\n  ["
              << sparkline(watts) << "]\n\n";

    auto phases = segmentPhases(trace);
    std::cout << "detected " << phases.size() << " phases:\n\n";
    TextTable t({"Phase", "ms", "Watts", "IPC", "pred W",
                 "Dynamic", "SMT", "CMP", "Uncore", "WI"});
    int idx = 0;
    for (const auto &ph : phases) {
        Sample s;
        s.workload = cat("phase-", idx);
        s.config = cfg;
        s.rates = ph.meanRates;
        s.powerWatts = ph.meanWatts;
        PowerBreakdown b = ex.bu.breakdown(s);
        t.addRow({cat("phase-", idx++),
                  TextTable::num(ph.durationMs(trace), 0),
                  TextTable::num(ph.meanWatts, 1),
                  TextTable::num(ph.meanIpc, 2),
                  TextTable::num(b.total(), 1),
                  TextTable::num(b.dynamic, 1),
                  TextTable::num(b.smtEffect, 1),
                  TextTable::num(b.cmpEffect, 1),
                  TextTable::num(b.uncore, 1),
                  TextTable::num(b.workloadIndependent, 1)});
    }
    t.print(std::cout);
    std::cout << "\nPer-phase projection errors stay within a few "
                 "percent — the phase-specific decomposition the "
                 "paper's abstract promises.\n";
    return 0;
}
