/**
 * @file
 * Example: build a bottom-up CMP/SMT power model from generated
 * micro-benchmarks and use it to decompose the power of a workload
 * it has never seen (paper Section 4, condensed).
 *
 *   $ ./examples/power_model_study
 */

#include <iostream>

#include "microprobe/bootstrap.hh"
#include "workloads/pipeline.hh"
#include "workloads/spec_proxies.hh"

using namespace mprobe;

int
main()
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa());

    std::cout << "bootstrapping the architecture "
                 "(latency/throughput/EPI per instruction)...\n";
    BootstrapOptions bo;
    bo.bodySize = 1024;
    bootstrapArchitecture(arch, machine, bo);

    std::cout << "generating + measuring a reduced training "
                 "corpus and fitting the models...\n";
    PipelineOptions po;
    po.suite.bodySize = 1024;
    po.suite.perMemoryGroup = 3;
    po.suite.memoryCount = 6;
    po.suite.randomCount = 60;
    po.suite.ipcSearchBudget = 4;
    po.suite.gaPopulation = 6;
    po.suite.gaGenerations = 2;
    po.randomCrossConfig = 20;
    po.specCount = 12;
    po.bodySize = 1024;
    ModelExperiment ex = runModelPipeline(arch, machine, po);

    std::cout << "\nfitted bottom-up model:\n  weights (W per "
                 "Gev/s):";
    for (size_t i = 0; i < dynamicFeatureNames().size(); ++i)
        std::cout << " " << dynamicFeatureNames()[i] << "="
                  << ex.bu.weights()[i];
    std::cout << "\n  SMT effect  " << ex.bu.smtEffect()
              << " W/core\n  CMP effect  " << ex.bu.cmpEffect()
              << " W/core\n  uncore      " << ex.bu.uncore()
              << " W\n  workload-independent "
              << ex.bu.workloadIndependent() << " W\n";

    std::cout << "\nvalidation PAAE on the SPEC proxies: "
              << ex.paaeOf(ex.bu, ex.spec) << "% (BU) vs "
              << ex.paaeOf(ex.tdRandom, ex.spec)
              << "% (TD_Random)\n";

    // Decompose a workload the training never saw.
    Program lbm;
    for (const auto &r : specRecipes())
        if (r.name == "lbm")
            lbm = generateSpecProxy(arch, r, 1024, 0xfeed);
    RunResult run = machine.run(lbm, ChipConfig{8, 2});
    Sample s = makeSample("lbm", run);
    PowerBreakdown b = ex.bu.breakdown(s);
    std::cout << "\nlbm proxy at 8 cores / SMT-2:\n"
              << "  measured             " << s.powerWatts
              << " W\n"
              << "  predicted            " << b.total() << " W\n"
              << "  - dynamic            " << b.dynamic << " W\n"
              << "  - SMT effect         " << b.smtEffect << " W\n"
              << "  - CMP effect         " << b.cmpEffect << " W\n"
              << "  - uncore             " << b.uncore << " W\n"
              << "  - workload-independent "
              << b.workloadIndependent << " W\n";
    return 0;
}
