/**
 * @file
 * Quickstart: the paper's Figure-2 script, in C++.
 *
 * Generates 10 micro-benchmarks, each an endless loop of 4K vector
 * load instructions hitting the L1/L2/L3 caches equally, with
 * constant-pattern data and random dependency distances; runs the
 * first one on the simulated machine and saves all ten as C files.
 *
 *   $ ./examples/quickstart [output-dir]
 */

#include <iostream>

#include "microprobe/bootstrap.hh"
#include "microprobe/emitter.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "sim/machine.hh"

using namespace mprobe;

int
main(int argc, char **argv)
{
    std::string outdir = argc > 1 ? argv[1] : ".";

    // Get the architecture object (Figure 2, lines 2-3).
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa());

    // The unit-stressing query needs the micro-architecture
    // properties; bootstrap just the load instructions we care
    // about (the full sweep is bootstrapArchitecture()).
    BootstrapOptions bo;
    bo.bodySize = 1024;
    for (auto op : arch.isa().loads())
        bootstrapInstruction(arch, machine, op, bo);

    // Select the loads from the ISA (line 13)...
    auto loads = arch.isa().loads();
    // ...then the loads that stress the VSU unit (lines 15-16).
    auto loads_vsu = arch.stressing(loads, "VSU");
    if (loads_vsu.empty()) {
        // On this machine float/vector loads park their data in
        // the register file without VSU compute; fall back to the
        // vector-data loads.
        loads_vsu = arch.isa().select([](const InstrDef &d) {
            return d.isLoad() && d.vectorData;
        });
    }
    std::cout << "candidate loads: " << loads_vsu.size() << " of "
              << loads.size() << " load instructions\n";

    // Create the micro-benchmark synthesizer and add the passes
    // (lines 4-29).
    Synthesizer synth(arch);
    // Pass 1: program skeleton - single endless loop of 4096
    // instructions.
    synth.addPass<SkeletonPass>(4096);
    // Pass 2: instruction distribution over the selected loads.
    synth.addPass<InstructionMixPass>(loads_vsu);
    // Pass 3: memory model - L1 = 33%, L2 = 33%, L3 = 34%.
    synth.addPass<MemoryModelPass>(
        MemDistribution{0.33, 0.33, 0.34, 0.0});
    // Pass 4: init registers to 0b01010101.
    synth.addPass<RegisterInitPass>(DataPattern::Alt01);
    // Pass 5: init immediates to 0b01010101.
    synth.addPass<ImmediateInitPass>(DataPattern::Alt01);
    // Pass 6: set instruction dependency distance randomly.
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 32)));

    std::cout << "\nsynthesizer pipeline:\n";
    for (const auto &n : synth.passNames())
        std::cout << "  - " << n << "\n";

    // Generate the 10 micro-benchmarks and save them (lines
    // 31-33).
    for (int idx = 1; idx <= 10; ++idx) {
        Program ubench = synth.synthesize();
        std::string path =
            outdir + "/example-" + std::to_string(idx) + ".c";
        saveC(ubench, path);
        if (idx == 1) {
            RunResult r = machine.run(ubench, ChipConfig{1, 1});
            double tot = r.chip.l1Hits + r.chip.l2Hits +
                         r.chip.l3Hits + r.chip.memAcc;
            std::cout << "\nfirst benchmark on the machine "
                         "(1 core, SMT-1):\n"
                      << "  core IPC    " << r.coreIpc << "\n"
                      << "  L1/L2/L3    "
                      << r.chip.l1Hits / tot * 100 << "% / "
                      << r.chip.l2Hits / tot * 100 << "% / "
                      << r.chip.l3Hits / tot * 100 << "%\n"
                      << "  power       " << r.sensorWatts
                      << " W (sensor)\n\n";
        }
        std::cout << "saved " << path << "\n";
    }
    return 0;
}
