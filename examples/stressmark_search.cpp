/**
 * @file
 * Example: fully automated max-power stressmark generation (paper
 * Section 6, condensed). MicroProbe selects the highest-IPC*EPI
 * instruction per functional unit from its own characterization,
 * then exhaustively explores the 540 admissible 6-instruction
 * sequences and reports the hottest one.
 *
 *   $ ./examples/stressmark_search
 */

#include <iostream>

#include "microprobe/bootstrap.hh"
#include "microprobe/emitter.hh"
#include "util/stats.hh"
#include "workloads/stressmarks.hh"

using namespace mprobe;

int
main()
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa());

    std::cout << "characterizing the ISA (bootstrap)...\n";
    BootstrapOptions bo;
    bo.bodySize = 1024;
    bootstrapArchitecture(arch, machine, bo);

    auto picks = microprobePicks(arch);
    std::cout << "heuristic candidates (max IPC*EPI per unit): ";
    for (auto op : picks)
        std::cout << arch.isa().at(op).name << " ";
    std::cout << "\n\nexploring 540 sequences at 8 cores / SMT-4 "
                 "...\n";

    StressmarkExploration ex = exploreSequences(
        arch, machine, picks, ChipConfig{8, 4}, 6, 2048);

    std::cout << "evaluated " << ex.evaluations
              << " candidates\n"
              << "power min/mean/max: " << minOf(ex.powers) << " / "
              << mean(ex.powers) << " / " << maxOf(ex.powers)
              << " W\n"
              << "order-induced spread: "
              << (maxOf(ex.powers) - minOf(ex.powers)) /
                     maxOf(ex.powers) * 100.0
              << "% at identical instruction mix\n\nbest "
                 "sequence: ";
    for (auto op : ex.bestSeq)
        std::cout << arch.isa().at(op).name << " ";

    Program best =
        buildStressmark(arch, ex.bestSeq, "max-power", 2048);
    std::cout << "\n\nfirst lines of the emitted stressmark:\n";
    std::string asm_text = emitAsm(best);
    size_t pos = 0;
    for (int i = 0; i < 8; ++i) {
        size_t nl = asm_text.find('\n', pos);
        std::cout << asm_text.substr(pos, nl - pos + 1);
        pos = nl + 1;
    }
    std::cout << "  ...\n";
    return 0;
}
