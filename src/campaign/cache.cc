/**
 * @file
 * Result-cache implementation.
 */

#include "campaign/cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/fileio.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

namespace fs = std::filesystem;

std::string
sampleToText(const Sample &s)
{
    std::ostringstream os;
    os.precision(17);
    os << "workload " << s.workload << "\n"
       << "config " << s.config.cores << "-" << s.config.smt << "\n"
       // freq precedes the required tail fields deliberately: a
       // file truncated anywhere after it is missing one of them
       // and parses as corrupt, so a swept entry can never tear
       // into a "valid" nominal-frequency hit.
       << "freq " << s.freqGhz << "\n"
       // vdd and reliable sit before the required tail for the same
       // tear-safety reason as freq.
       << "vdd " << s.vddVolts << "\n"
       << "reliable " << (s.reliable ? 1 : 0) << "\n"
       << "rates";
    for (double r : s.rates)
        os << " " << r;
    os << "\n"
       << "power " << s.powerWatts << "\n"
       << "gips " << s.instrGips << "\n"
       << "ipc " << s.coreIpc << "\n";
    return os.str();
}

bool
sampleFromText(const std::string &text, Sample &out)
{
    std::istringstream in(text);
    std::string line;
    bool saw_workload = false, saw_config = false, saw_power = false;
    bool saw_gips = false, saw_ipc = false;
    // Pre-DVFS entries carry no frequency field: they were measured
    // at the nominal clock, so they load as that default instead of
    // missing — upgrading a cache directory re-runs nothing.
    out.freqGhz = kNominalFreqGhz;
    // Pre-undervolting entries carry no vdd field: they were
    // measured on-curve, so after the parse loop (once freq is
    // known) the voltage is reconstructed from the default curve.
    bool saw_vdd = false;
    out.reliable = true;
    while (std::getline(in, line)) {
        std::string s = trim(line);
        if (s.empty())
            continue;
        auto sp = s.find(' ');
        std::string key = s.substr(0, sp);
        std::string val =
            sp == std::string::npos ? "" : trim(s.substr(sp + 1));
        try {
            if (key == "workload") {
                out.workload = val;
                saw_workload = true;
            } else if (key == "config") {
                auto parts = split(val, '-');
                if (parts.size() != 2)
                    return false;
                out.config.cores = std::stoi(parts[0]);
                out.config.smt = std::stoi(parts[1]);
                // A configuration without at least one core and one
                // SMT thread cannot have been measured: such an
                // entry (e.g. a torn "config 0-0") is corrupt, not
                // a hit that feeds ChipConfig{0,0} downstream.
                if (out.config.cores < 1 || out.config.smt < 1)
                    return false;
                saw_config = true;
            } else if (key == "rates") {
                out.rates.clear();
                for (const auto &r : splitWs(val))
                    out.rates.push_back(std::stod(r));
            } else if (key == "power") {
                out.powerWatts = std::stod(val);
                saw_power = true;
            } else if (key == "gips") {
                out.instrGips = std::stod(val);
                saw_gips = true;
            } else if (key == "ipc") {
                out.coreIpc = std::stod(val);
                saw_ipc = true;
            } else if (key == "freq") {
                out.freqGhz = std::stod(val);
                // No measurement happens at a non-positive clock:
                // such an entry is corrupt, not a 0-GHz hit.
                if (out.freqGhz <= 0.0)
                    return false;
            } else if (key == "vdd") {
                out.vddVolts = std::stod(val);
                // No measurement happens at a non-positive supply
                // voltage: such an entry is corrupt.
                if (out.vddVolts <= 0.0)
                    return false;
                saw_vdd = true;
            } else if (key == "reliable") {
                // Exactly "0" or "1"; anything else is a torn or
                // foreign line, not a boolean to coerce.
                if (val == "1")
                    out.reliable = true;
                else if (val == "0")
                    out.reliable = false;
                else
                    return false;
            } else {
                return false;
            }
        } catch (const std::exception &) {
            return false;
        }
    }
    if (!saw_vdd)
        out.vddVolts = nominalCurveVoltage(out.freqGhz);
    // Every field is required: a file truncated mid-write must
    // parse as corrupt (-> cache miss), not as a zero-filled hit.
    return saw_workload && saw_config && saw_power && saw_gips &&
           saw_ipc &&
           out.rates.size() == dynamicFeatureNames().size();
}

ResultCache::ResultCache(std::string d) : dir(std::move(d))
{
    if (dir.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal(cat("cannot create cache directory '", dir, "': ",
                  ec.message()));
}

std::string
ResultCache::pathOf(uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.sample",
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

bool
ResultCache::contains(uint64_t key) const
{
    if (!enabled())
        return false;
    std::error_code ec;
    return fs::exists(pathOf(key), ec);
}

bool
ResultCache::lookup(uint64_t key, Sample &out)
{
    if (!enabled()) {
        ++nMisses;
        return false;
    }
    if (peek(key, out)) {
        ++nHits;
        return true;
    }
    // An entry that exists but failed to parse deserves a warning
    // (a plainly absent one does not).
    std::error_code ec;
    if (fs::exists(pathOf(key), ec)) {
        ++nCorrupt;
        warn(cat("result cache: corrupt entry ", pathOf(key),
                 " ignored"));
    }
    ++nMisses;
    return false;
}

bool
ResultCache::peek(uint64_t key, Sample &out) const
{
    if (!enabled())
        return false;
    std::ifstream f(pathOf(key));
    if (!f)
        return false;
    std::ostringstream os;
    os << f.rdbuf();
    Sample s;
    if (!sampleFromText(os.str(), s))
        return false;
    out = std::move(s);
    return true;
}

bool
ResultCache::store(uint64_t key, const Sample &s) const
{
    if (!enabled())
        return true;
    // Atomic write-then-rename: racing writers of one key write
    // identical content, so last-rename-wins is harmless.
    if (!atomicWriteFile(pathOf(key), sampleToText(s),
                         "result cache")) {
        warn(cat("result cache: entry ", pathOf(key),
                 " not persisted; this job will re-measure on "
                 "resume/merge"));
        return false;
    }
    return true;
}

} // namespace mprobe
