/**
 * @file
 * Content-hash-keyed on-disk result cache.
 *
 * Every campaign job is identified by a 64-bit content hash of
 * everything that determines its measurement: the full program
 * content (instructions, dependencies, streams, data patterns,
 * name), the chip configuration, the machine fingerprint and the
 * campaign salt. A completed job stores its Sample under that key;
 * re-runs and resumed campaigns look the key up first and skip the
 * simulation on a hit — the measured point is, by construction, the
 * one the simulation would reproduce.
 *
 * The store is a flat directory of small text files (one per
 * sample, named <key>.sample, written atomically via rename), so it
 * is safe for concurrent writers and survives interrupted runs.
 */

#ifndef CAMPAIGN_CACHE_HH
#define CAMPAIGN_CACHE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "power/sample.hh"

namespace mprobe
{

/**
 * Cache schema/semantics version, mixed into every job key. Bump it
 * whenever the sample format or anything the simulator computes
 * changes in a way the machine fingerprint cannot observe (e.g. the
 * hidden energy tables in exec_model.cc), so stale caches miss
 * instead of replaying outdated results.
 */
constexpr uint64_t kCacheSchemaVersion = 1;

/** Serialize a sample to the cache's text representation. */
std::string sampleToText(const Sample &s);

/**
 * Parse a serialized sample. Returns false (leaving @p out
 * partially filled) on malformed input — callers treat that as a
 * cache miss rather than an error.
 */
bool sampleFromText(const std::string &text, Sample &out);

/** Thread-safe directory-backed sample cache. */
class ResultCache
{
  public:
    /**
     * Open (creating if needed) the cache at @p dir. An empty dir
     * disables the cache: lookups miss, stores are dropped.
     */
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir.empty(); }

    /**
     * Look up @p key; fills @p out and returns true on a hit.
     * Counts toward hits()/misses().
     */
    bool lookup(uint64_t key, Sample &out);

    /**
     * Whether an entry for @p key exists on disk, without reading
     * or statistics. Used by resume reporting to list the remaining
     * jobs of an interrupted campaign; a corrupt entry counts as
     * present here but still re-measures as a miss at run time.
     */
    bool contains(uint64_t key) const;

    /**
     * Read the entry for @p key without touching hits()/misses().
     * Sharded measure() uses this to fill off-shard slots from
     * whatever other shards already measured, without distorting
     * this run's cache statistics.
     */
    bool peek(uint64_t key, Sample &out) const;

    /**
     * Store a completed measurement under @p key. Returns false
     * (after warning) when the entry could not be persisted — the
     * result is still valid in memory, but resumed/sharded runs
     * will re-measure this job.
     */
    bool store(uint64_t key, const Sample &s) const;

    /** @name Statistics (since construction) */
    /**@{*/
    size_t hits() const { return nHits.load(); }
    size_t misses() const { return nMisses.load(); }
    /** Entries that existed on disk but failed to parse (each also
     * counted as a miss). */
    size_t corrupt() const { return nCorrupt.load(); }
    /**@}*/

    /** Path of a key's sample file (tests/debugging). */
    std::string pathOf(uint64_t key) const;

  private:
    std::string dir;
    std::atomic<size_t> nHits{0};
    std::atomic<size_t> nMisses{0};
    std::atomic<size_t> nCorrupt{0};
};

} // namespace mprobe

#endif // CAMPAIGN_CACHE_HH
