/**
 * @file
 * Campaign engine implementation.
 */

#include "campaign/campaign.hh"

#include <algorithm>
#include <thread>

#include "campaign/queue.hh"
#include "microprobe/bootstrap.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "workloads/daxpy.hh"
#include "workloads/extremes.hh"
#include "workloads/spec_proxies.hh"

namespace mprobe
{

uint64_t
campaignJobKey(const Program &prog, const ChipConfig &cfg,
               uint64_t machine_fingerprint, uint64_t salt)
{
    Hasher h;
    h.add(kCacheSchemaVersion);
    h.add(machine_fingerprint).add(salt);
    h.add(cfg.cores).add(cfg.smt);
    // The sensor-noise seed hashes the program name, so the name is
    // result-relevant and must be part of the key.
    h.add(prog.name);
    h.add(prog.body.size());
    for (const auto &pi : prog.body) {
        h.add(pi.op).add(pi.depDist).add(pi.stream);
        h.add(static_cast<double>(pi.toggle));
        h.add(static_cast<double>(pi.takenRate));
    }
    h.add(prog.streams.size());
    for (const auto &st : prog.streams) {
        h.add(st.lines.size());
        for (uint64_t line : st.lines)
            h.add(line);
    }
    return h.digest();
}

Campaign::Campaign(const Machine &m, CampaignSpec s)
    : machine(m), spec(std::move(s)), cache(spec.cacheDir),
      machineFp(m.fingerprint())
{
    if (spec.threads < 0)
        fatal("campaign: threads must be >= 0 (0 = auto)");
    if (spec.threads == 0)
        spec.threads = static_cast<int>(std::max(
            1u, std::thread::hardware_concurrency()));
    if (spec.configs.empty())
        fatal("campaign: no configurations to deploy on");
    // A restriction set on spec.categories reaches the suite
    // generator without the caller having to mirror it into
    // suite.categories; one set directly on SuiteOptions is left
    // alone.
    if (!spec.categories.empty())
        spec.suite.categories = spec.categories;
}

std::vector<CampaignWorkload>
Campaign::expandWorkloads(Architecture &arch)
{
    std::vector<CampaignWorkload> out;

    if (spec.suiteEnabled) {
        if (spec.bootstrap) {
            inform("campaign: bootstrapping the architecture");
            BootstrapOptions bo;
            bo.bodySize = spec.suite.bodySize;
            bo.seed = spec.suite.seed ^ 0xb007ull;
            bootstrapArchitecture(arch, machine, bo);
        }
        inform("campaign: generating suite workloads");
        for (auto &gb : generateTable2Suite(arch, machine,
                                            spec.suite)) {
            CampaignWorkload w;
            w.source = benchCategoryName(gb.category);
            w.group = gb.group;
            w.program = std::move(gb.program);
            out.push_back(std::move(w));
        }
    }
    if (spec.specProxies) {
        inform("campaign: generating SPEC proxies");
        for (auto &p : generateSpecProxies(arch, spec.suite.bodySize,
                                           spec.suite.seed)) {
            CampaignWorkload w;
            w.source = "SPEC";
            w.program = std::move(p);
            out.push_back(std::move(w));
        }
    }
    if (spec.daxpy) {
        inform("campaign: generating DAXPY kernels");
        for (auto &p : generateDaxpySet(arch, spec.suite.bodySize)) {
            CampaignWorkload w;
            w.source = "DAXPY";
            w.program = std::move(p);
            out.push_back(std::move(w));
        }
    }
    if (spec.extremes) {
        inform("campaign: generating extreme cases");
        for (auto &e : generateExtremeCases(arch,
                                            spec.suite.bodySize,
                                            spec.suite.seed)) {
            CampaignWorkload w;
            w.source = "Extreme";
            w.group = e.name;
            w.program = std::move(e.program);
            out.push_back(std::move(w));
        }
    }
    if (out.empty())
        fatal("campaign: spec expanded to no workloads");
    return out;
}

std::vector<Sample>
Campaign::measureJobs(const std::vector<CampaignWorkload> &workloads,
                      const std::vector<ChipConfig> &configs,
                      std::vector<CampaignJob> &jobs)
{
    if (configs.empty())
        fatal("campaign: no configurations to deploy on");
    jobs.clear();
    jobs.reserve(workloads.size() * configs.size());
    for (size_t w = 0; w < workloads.size(); ++w)
        for (const auto &cfg : configs)
            jobs.push_back(
                {w, cfg,
                 campaignJobKey(workloads[w].program, cfg,
                                machineFp, spec.salt)});

    inform(cat("campaign: measuring ", jobs.size(), " jobs (",
               workloads.size(), " workloads x ",
               configs.size(), " configs) on ", spec.threads,
               spec.threads == 1 ? " thread" : " threads"));

    // Each job writes only its own slot: no result synchronization,
    // and sample order is scheduling-independent by construction.
    std::vector<Sample> samples(jobs.size());
    parallelFor(spec.threads, jobs.size(), [&](size_t i) {
        const CampaignJob &job = jobs[i];
        Sample s;
        if (cache.lookup(job.key, s)) {
            samples[i] = std::move(s);
            return;
        }
        const Program &prog =
            workloads[job.workload].program;
        // The measurement salt derives from the job's content hash,
        // never from scheduling, so repeated sensor noise matches
        // the serial reference run and the cache exactly.
        uint64_t salt = hashCombine(job.key, 0x5a17ull);
        samples[i] =
            makeSample(prog.name,
                       machine.run(prog, job.config, salt));
        cache.store(job.key, samples[i]);
    });
    return samples;
}

CampaignResult
Campaign::run(Architecture &arch)
{
    CampaignResult res;
    res.workloads = expandWorkloads(arch);
    size_t hits0 = cache.hits(), misses0 = cache.misses();
    res.samples = measureJobs(res.workloads, spec.configs, res.jobs);
    res.cacheHits = cache.hits() - hits0;
    res.cacheMisses = cache.misses() - misses0;
    inform(cat("campaign: done; cache ", res.cacheHits, " hits / ",
               res.cacheMisses, " misses"));
    return res;
}

std::vector<Sample>
Campaign::measure(const std::vector<Program> &programs,
                  const std::vector<ChipConfig> &configs)
{
    std::vector<CampaignWorkload> workloads;
    workloads.reserve(programs.size());
    for (const auto &p : programs) {
        CampaignWorkload w;
        w.program = p;
        w.source = "adhoc";
        workloads.push_back(std::move(w));
    }
    std::vector<CampaignJob> jobs;
    return measureJobs(workloads, configs, jobs);
}

} // namespace mprobe
