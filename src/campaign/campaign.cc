/**
 * @file
 * Campaign engine implementation.
 */

#include "campaign/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <numeric>
#include <thread>

#include "campaign/claims.hh"
#include "campaign/manifest.hh"
#include "campaign/queue.hh"
#include "microprobe/bootstrap.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "workloads/daxpy.hh"
#include "workloads/extremes.hh"
#include "workloads/spec_proxies.hh"

namespace mprobe
{

uint64_t
campaignJobKey(const Program &prog, const ChipConfig &cfg,
               uint64_t machine_fingerprint, uint64_t salt,
               double freq_ghz, double vdd_volts)
{
    Hasher h;
    h.add(kCacheSchemaVersion);
    h.add(machine_fingerprint).add(salt);
    h.add(cfg.cores).add(cfg.smt);
    // The nominal operating point (freq_ghz == 0) hashes exactly
    // like a pre-DVFS job, so old cache entries keep hitting.
    if (freq_ghz > 0.0)
        h.add(freq_ghz);
    // An on-curve voltage (vdd_volts == 0) hashes exactly like a
    // pre-undervolting job. The tag domain-separates the axes:
    // without it, (freq X, on-curve) and (nominal, vdd X) would
    // collide.
    if (vdd_volts > 0.0) {
        h.add(static_cast<uint64_t>(0x7dd0));
        h.add(vdd_volts);
    }
    // The sensor-noise seed hashes the program name, so the name is
    // result-relevant and must be part of the key.
    h.add(prog.name);
    h.add(prog.body.size());
    for (const auto &pi : prog.body) {
        h.add(pi.op).add(pi.depDist).add(pi.stream);
        h.add(static_cast<double>(pi.toggle));
        h.add(static_cast<double>(pi.takenRate));
    }
    h.add(prog.streams.size());
    for (const auto &st : prog.streams) {
        h.add(st.lines.size());
        for (uint64_t line : st.lines)
            h.add(line);
    }
    return h.digest();
}

uint64_t
campaignFingerprint(const CampaignSpec &spec,
                    uint64_t machine_fingerprint)
{
    Hasher h;
    h.add(machine_fingerprint).add(spec.salt);
    h.add(spec.configs.size());
    for (const auto &cfg : spec.configs)
        h.add(cfg.cores).add(cfg.smt);
    // The frequency axis joins the fingerprint only when present:
    // axis-free campaigns keep the exact pre-DVFS fingerprint, so
    // their existing manifests stay resumable.
    if (!spec.freqs.empty()) {
        h.add(spec.freqs.size());
        for (double f : spec.freqs)
            h.add(f);
    }
    // Same for the voltage axis, tagged so a vdds-only spec cannot
    // collide with a freqs-only one.
    if (!spec.vdds.empty()) {
        h.add(static_cast<uint64_t>(0x7dd5));
        h.add(spec.vdds.size());
        for (double v : spec.vdds)
            h.add(v);
    }
    h.add(spec.suiteEnabled).add(spec.specProxies);
    h.add(spec.daxpy).add(spec.extremes);
    // Effective category restriction: the Campaign constructor
    // syncs spec.categories into suite.categories, so hash the one
    // that wins regardless of whether the sync ran yet.
    const auto &cats = spec.categories.empty()
                           ? spec.suite.categories
                           : spec.categories;
    h.add(cats.size());
    for (BenchCategory c : cats)
        h.add(static_cast<int>(c));
    const SuiteOptions &so = spec.suite;
    h.add(so.bodySize).add(so.perMemoryGroup).add(so.memoryCount);
    h.add(so.randomCount).add(so.ipcSearchBudget);
    h.add(so.gaPopulation).add(so.gaGenerations);
    h.add(so.extendUnitMix).add(so.seed);
    h.add(spec.bootstrap);
    h.add(spec.corpusTag);
    return h.digest();
}

std::vector<size_t>
shardIndices(size_t n, int index, int count)
{
    std::vector<size_t> out;
    if (count < 1 || index < 0 || index >= count)
        fatal(cat("campaign: bad shard ", index, "/", count));
    out.reserve(n / static_cast<size_t>(count) + 1);
    for (size_t i = static_cast<size_t>(index); i < n;
         i += static_cast<size_t>(count))
        out.push_back(i);
    return out;
}

namespace
{

/** The estimated costs of @p jobs, in job order. */
std::vector<double>
jobCosts(const std::vector<CampaignJob> &jobs)
{
    std::vector<double> costs;
    costs.reserve(jobs.size());
    for (const auto &job : jobs)
        costs.push_back(job.cost);
    return costs;
}

/** The operating point a job measures at: the machine's curve
 * point at the job's frequency, with the voltage overridden when
 * the job sweeps an off-curve vdd. */
OperatingPoint
jobPoint(const Machine &machine, const CampaignJob &job)
{
    OperatingPoint op = machine.operatingPoint(job.freqGhz);
    if (job.vdd > 0.0)
        op.voltage = job.vdd;
    return op;
}

/** The jobs at @p indices, in index order. */
std::vector<CampaignJob>
jobsAt(const std::vector<CampaignJob> &jobs,
       const std::vector<size_t> &indices)
{
    std::vector<CampaignJob> out;
    out.reserve(indices.size());
    for (size_t i : indices)
        out.push_back(jobs[i]);
    return out;
}

/** Per-job wall-seconds histogram, registered once (the registry
 * lookup locks; the hot loop must only touch atomics). Buckets span
 * cache hits (µs) through heavy cold simulations. */
obs::Histogram &
jobHistogram()
{
    static obs::Histogram &h = obs::histogram(
        "job_seconds", {0.0001, 0.001, 0.01, 0.1, 1.0, 10.0});
    return h;
}

} // namespace

std::vector<size_t>
costAwareShardIndices(const std::vector<CampaignJob> &jobs,
                      int index, int count)
{
    if (count < 1 || index < 0 || index >= count)
        fatal(cat("campaign: bad shard ", index, "/", count));
    return costStripedShard(jobCosts(jobs), index, count);
}

Campaign::Campaign(const Machine &m, CampaignSpec s)
    : machine(m), spec(std::move(s)), cache(spec.cacheDir),
      machineFp(m.fingerprint())
{
    spec.threads = resolveThreads(spec.threads, "campaign");
    if (spec.configs.empty())
        fatal("campaign: no configurations to deploy on");
    if (spec.shardCount < 1 || spec.shardIndex < 0 ||
        spec.shardIndex >= spec.shardCount)
        fatal(cat("campaign: bad shard ", spec.shardIndex, "/",
                  spec.shardCount,
                  " (want 0 <= index < count)"));
    if (spec.sharded() && !cache.enabled())
        fatal("campaign: sharded execution needs a cache "
              "directory shared by all shards (results live "
              "there; --merge assembles them)");
    if (spec.serve && spec.sharded())
        fatal("campaign: --serve replaces --shard (claim-based "
              "workers partition the pool dynamically); use one "
              "or the other");
    if (spec.serve && !cache.enabled())
        fatal("campaign: --serve needs a cache directory shared "
              "by the worker fleet (claims and results live "
              "there)");
    if (spec.serve && spec.claimTtlSeconds <= 0.0)
        fatal("campaign: claim TTL must be > 0 seconds");
    if (spec.serve && spec.claimPollSeconds <= 0.0)
        fatal("campaign: claim poll interval must be > 0 seconds");
    // A restriction set on spec.categories reaches the suite
    // generator without the caller having to mirror it into
    // suite.categories; one set directly on SuiteOptions is left
    // alone.
    if (!spec.categories.empty())
        spec.suite.categories = spec.categories;
}

std::vector<CampaignWorkload>
Campaign::expandWorkloads(Architecture &arch)
{
    std::vector<CampaignWorkload> out;

    if (spec.suiteEnabled) {
        if (spec.bootstrap) {
            inform("campaign: bootstrapping the architecture");
            BootstrapOptions bo;
            bo.bodySize = spec.suite.bodySize;
            bo.seed = spec.suite.seed ^ 0xb007ull;
            bootstrapArchitecture(arch, machine, bo);
        }
        inform("campaign: generating suite workloads");
        for (auto &gb : generateTable2Suite(arch, machine,
                                            spec.suite)) {
            CampaignWorkload w;
            w.source = benchCategoryName(gb.category);
            w.group = gb.group;
            w.program = std::move(gb.program);
            out.push_back(std::move(w));
        }
    }
    if (spec.specProxies) {
        inform("campaign: generating SPEC proxies");
        for (auto &p : generateSpecProxies(arch, spec.suite.bodySize,
                                           spec.suite.seed)) {
            CampaignWorkload w;
            w.source = "SPEC";
            w.program = std::move(p);
            out.push_back(std::move(w));
        }
    }
    if (spec.daxpy) {
        inform("campaign: generating DAXPY kernels");
        for (auto &p : generateDaxpySet(arch, spec.suite.bodySize)) {
            CampaignWorkload w;
            w.source = "DAXPY";
            w.program = std::move(p);
            out.push_back(std::move(w));
        }
    }
    if (spec.extremes) {
        inform("campaign: generating extreme cases");
        for (auto &e : generateExtremeCases(arch,
                                            spec.suite.bodySize,
                                            spec.suite.seed)) {
            CampaignWorkload w;
            w.source = "Extreme";
            w.group = e.name;
            w.program = std::move(e.program);
            out.push_back(std::move(w));
        }
    }
    if (out.empty())
        fatal("campaign: spec expanded to no workloads");
    return out;
}

std::vector<CampaignJob>
Campaign::expandJobs(
    const std::vector<CampaignWorkload> &workloads,
    const std::vector<std::vector<ChipConfig>> &configs_per) const
{
    if (configs_per.size() != workloads.size())
        fatal("campaign: one config list per workload required");
    // The frequency axis, normalized to job form: an empty axis is
    // the nominal point alone, and a swept frequency equal to the
    // machine's nominal clock collapses to the legacy
    // frequency-free key (0) so it shares pre-DVFS cache entries.
    std::vector<double> freq_axis;
    if (spec.freqs.empty()) {
        freq_axis.push_back(0.0);
    } else {
        for (double f : spec.freqs)
            freq_axis.push_back(f == machine.clockGhz() ? 0.0 : f);
    }
    // The voltage axis cross-products with the frequency axis. A
    // swept voltage equal to the curve's voltage at the job's
    // effective frequency collapses to the on-curve vdd-free key
    // (0) so it shares pre-undervolting cache entries.
    std::vector<double> vdd_axis;
    if (spec.vdds.empty())
        vdd_axis.push_back(0.0);
    else
        vdd_axis = spec.vdds;
    std::vector<CampaignJob> jobs;
    for (size_t w = 0; w < workloads.size(); ++w) {
        if (configs_per[w].empty())
            fatal(cat("campaign: workload '",
                      workloads[w].program.name,
                      "' has no configurations to deploy on"));
        for (const auto &cfg : configs_per[w])
            for (double f : freq_axis)
                for (double v : vdd_axis) {
                    double f_eff =
                        f > 0.0 ? f : machine.clockGhz();
                    double v_eff =
                        v > 0.0 &&
                                v != machine.voltageAt(f_eff)
                            ? v
                            : 0.0;
                    jobs.push_back(
                        {w, cfg,
                         campaignJobKey(workloads[w].program, cfg,
                                        machineFp, spec.salt, f,
                                        v_eff),
                         costModel.estimate(
                             cfg,
                             workloads[w].program.body.size()),
                         f, v_eff});
                }
    }
    return jobs;
}

void
Campaign::writeManifest(
    const std::vector<CampaignWorkload> &workloads,
    const std::vector<CampaignJob> &jobs) const
{
    if (!cache.enabled() && spec.manifestDir.empty())
        return;
    CampaignManifest m;
    m.spec = spec.contentSummary();
    m.fingerprint = campaignFingerprint(spec, machineFp);
    m.entries.reserve(jobs.size());
    for (const auto &job : jobs) {
        const CampaignWorkload &w = workloads[job.workload];
        m.entries.push_back(
            {job.key, job.config,
             w.source.empty() ? "adhoc" : w.source,
             w.program.name, job.freqGhz, job.vdd});
    }
    // Merge-accumulate: repeated measure() calls (the model
    // pipeline issues several) grow one manifest, and every shard
    // of one campaign persists the identical full job list. The
    // service points manifestDir at a per-campaign directory so
    // many concurrent campaigns can share one cache.
    const std::string &mdir = spec.manifestDir.empty()
                                  ? spec.cacheDir
                                  : spec.manifestDir;
    std::error_code ec;
    std::filesystem::create_directories(mdir, ec);
    mergeSaveManifest(manifestPath(mdir), m);
}

Campaign::JobRunOutcome
Campaign::runJobs(const std::vector<CampaignWorkload> &workloads,
                  const std::vector<CampaignJob> &jobs,
                  size_t campaign_total)
{
    std::string shard_tag =
        spec.sharded() ? cat(" [shard ", spec.shardIndex, "/",
                             spec.shardCount, " of ",
                             campaign_total, " campaign jobs]")
                       : std::string();
    inform(cat("campaign: measuring ", jobs.size(), " jobs (",
               workloads.size(), " workloads) on ", spec.threads,
               spec.threads == 1 ? " thread" : " threads",
               shard_tag));

    // Progress reporting: an atomic completion counter plus a
    // time-throttled reporter election (compare-exchange on the
    // next report deadline, so exactly one worker prints each
    // line). The denominator is this call's job count; under a
    // shard the campaign-wide total gives context.
    // lint: wallclock-ok(progress/ETA and claim heartbeats only)
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const int64_t every_ms =
        spec.progressSeconds > 0
            ? static_cast<int64_t>(spec.progressSeconds * 1000.0)
            : 0;
    std::atomic<size_t> done{0};
    std::atomic<size_t> cached{0};
    std::atomic<int64_t> next_report_ms{every_ms};
    // Cost-weighted ETA: cold estimated cost retired over elapsed
    // time gives the observed cost/sec; remaining cost divided by
    // it is the estimate. Cache hits retire their cost in
    // microseconds, so they are tracked separately — counting them
    // as work done would inflate the rate and report "~0s left"
    // on a half-warm resume. Accumulated in milli-cost units
    // because C++17 std::atomic<double> has no fetch_add.
    double total_cost = 0.0;
    for (const auto &job : jobs)
        total_cost += job.cost;
    std::atomic<int64_t> cold_cost_milli{0};
    std::atomic<int64_t> cached_cost_milli{0};

    // Batched execution: jobs sharing a workload and SMT mode form
    // one group served by a decode-once Machine::Batch, whose
    // core-simulation memo is shared across the group's core
    // counts and frequencies (the core-level simulation depends
    // only on the SMT mode and the effective memory latency; core
    // count enters through counter scaling and the contention
    // latency). Groups never span SMT modes because the memo
    // cannot share across them. With the fast path disabled
    // (MPROBE_NO_BATCH=1) every job forms its own group and runs
    // the legacy engine — the batched-identity reference.
    std::map<std::pair<size_t, int>, size_t> group_of;
    std::vector<std::vector<size_t>> groups;
    if (simFastPathEnabled()) {
        for (size_t i = 0; i < jobs.size(); ++i) {
            auto key = std::make_pair(jobs[i].workload,
                                      jobs[i].config.smt);
            auto it = group_of.find(key);
            if (it == group_of.end()) {
                group_of.emplace(key, groups.size());
                groups.push_back({i});
            } else {
                groups[it->second].push_back(i);
            }
        }
    } else {
        groups.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i)
            groups.push_back({i});
    }

    // Longest-first draining at both levels: the costliest groups
    // start first so the pool drains without a long-tail straggler
    // holding the last worker, and each group retires its own
    // costliest members first. Only the *execution* order changes
    // — each job still writes its own slot, so samples stay in job
    // order and results are identical to a serial in-order run.
    std::vector<double> group_cost(groups.size(), 0.0);
    for (size_t g = 0; g < groups.size(); ++g) {
        for (size_t i : groups[g])
            group_cost[g] += jobs[i].cost;
        std::stable_sort(groups[g].begin(), groups[g].end(),
                         [&](size_t a, size_t b) {
                             return jobs[a].cost > jobs[b].cost;
                         });
    }
    std::vector<size_t> exec_order(groups.size());
    std::iota(exec_order.begin(), exec_order.end(), 0);
    std::stable_sort(exec_order.begin(), exec_order.end(),
                     [&](size_t a, size_t b) {
                         return group_cost[a] > group_cost[b];
                     });

    // Each job writes only its own slot: no result synchronization,
    // and sample order is scheduling-independent by construction.
    JobRunOutcome out;
    out.samples.resize(jobs.size());
    out.seconds.assign(jobs.size(), 0.0);
    out.cached.assign(jobs.size(), 0);
    parallelFor(spec.threads, groups.size(), [&](size_t q) {
        // One decode per group, deferred until a member misses the
        // cache: an all-hit group never decodes or simulates.
        std::unique_ptr<Machine::Batch> batch;
        for (size_t i : groups[exec_order[q]]) {
            const CampaignJob &job = jobs[i];
            const auto jt0 = clock::now();
            {
                obs::TraceSpan jspan("campaign.job");
                Sample s;
                if (cache.lookup(job.key, s)) {
                    obs::counter("cache_hits").add();
                    out.samples[i] = std::move(s);
                    out.cached[i] = 1;
                    ++cached;
                } else {
                    obs::counter("cache_misses").add();
                    const Program &prog =
                        workloads[job.workload].program;
                    // The measurement salt derives from the job's
                    // content hash, never from scheduling, so
                    // repeated sensor noise matches the serial
                    // reference run and the cache exactly.
                    uint64_t salt = hashCombine(job.key, 0x5a17ull);
                    if (!batch)
                        batch.reset(
                            new Machine::Batch(machine, prog));
                    out.samples[i] = makeSample(
                        prog.name,
                        batch->run(job.config,
                                   jobPoint(machine, job), salt));
                    cache.store(job.key, out.samples[i]);
                }
                out.seconds[i] =
                    std::chrono::duration<double>(clock::now() -
                                                  jt0)
                        .count();
                jobHistogram().observe(out.seconds[i]);
                jspan.note("cached", out.cached[i]);
                jspan.note("cost_est", job.cost);
                jspan.note("seconds", out.seconds[i]);
            }
            (out.cached[i] ? cached_cost_milli : cold_cost_milli)
                .fetch_add(static_cast<int64_t>(
                    std::llround(job.cost * 1000.0)));
            size_t k = ++done;
            if (every_ms <= 0 || k == jobs.size())
                continue;
            int64_t elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    clock::now() - t0)
                    .count();
            int64_t deadline = next_report_ms.load();
            if (elapsed >= deadline &&
                next_report_ms.compare_exchange_strong(
                    deadline, elapsed + every_ms)) {
                // ETA from the cold cost actually retired so far, not
                // from job counts: with mixed configs the heavy jobs
                // run first, so count-based estimates would overshoot
                // (and cache hits would make everything look free).
                double cold_cost = static_cast<double>(
                                       cold_cost_milli.load()) /
                                   1000.0;
                double remaining =
                    total_cost - cold_cost -
                    static_cast<double>(cached_cost_milli.load()) /
                        1000.0;
                // A degenerate observed rate — an all-cached or
                // instant-job prefix has retired no cold cost yet, or
                // the clock has not advanced — cannot support an
                // estimate; say so instead of printing a nonsense
                // number (a 0-cost rate would divide to inf; a
                // negative remainder would print "-3s left").
                std::string eta = ", warming up";
                if (cold_cost > 0.0 && elapsed > 0) {
                    double rate =
                        cold_cost /
                        (static_cast<double>(elapsed) / 1000.0);
                    if (rate > 0.0 && std::isfinite(rate))
                        eta = cat(", ~",
                                  std::lround(
                                      std::max(0.0, remaining) /
                                      rate),
                                  "s left");
                }
                inform(cat("campaign: ", k, " of ", jobs.size(),
                           " jobs done, ", cached.load(), " cached",
                           eta, shard_tag));
            }
        }
    }, "campaign measure");
    return out;
}

Campaign::JobRunOutcome
Campaign::runClaimed(
    const std::vector<CampaignWorkload> &workloads,
    const std::vector<CampaignJob> &jobs)
{
    ClaimDir claimdir(spec.cacheDir, spec.workerId,
                      spec.claimTtlSeconds);
    std::vector<PoolJob> pool;
    pool.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        pool.push_back({jobs[i].key, i, jobs[i].cost});
    ClaimedQueue queue(cache, claimdir, std::move(pool));

    inform(cat("campaign: serving ", jobs.size(),
               " pool jobs as worker ", claimdir.workerId(),
               " (claim TTL ", spec.claimTtlSeconds, "s) on ",
               spec.threads,
               spec.threads == 1 ? " thread" : " threads"));

    // lint: wallclock-ok(progress/ETA and claim heartbeats only)
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const int64_t every_ms =
        spec.progressSeconds > 0
            ? static_cast<int64_t>(spec.progressSeconds * 1000.0)
            : 0;
    std::atomic<size_t> ran{0};
    std::atomic<int64_t> next_report_ms{every_ms};

    JobRunOutcome out;
    out.samples.resize(jobs.size());
    out.seconds.assign(jobs.size(), 0.0);
    out.cached.assign(jobs.size(), 0);

    // Fleet telemetry: this worker's live snapshot, published
    // atomically next to its claim files so peers and status
    // observers can aggregate the fleet without talking to it.
    // Strictly observability — nothing reads it back into job
    // selection or results.
    auto publishTelemetry = [&](const ClaimDir &cd,
                                double elapsed_s,
                                size_t jobs_run) {
        obs::WorkerTelemetry t;
        t.worker = cd.workerId();
        t.jobs = jobs_run;
        t.hits = cache.hits();
        t.acquired = cd.acquired();
        t.stolen = cd.stolen();
        t.seconds = elapsed_s;
        t.jobsPerSecond = elapsed_s > 0.0
                              ? static_cast<double>(jobs_run) /
                                    elapsed_s
                              : 0.0;
        size_t looked = cache.hits() + cache.misses();
        t.hitRate = looked > 0 ? static_cast<double>(cache.hits()) /
                                     static_cast<double>(looked)
                               : 0.0;
        obs::writeWorkerTelemetry(spec.cacheDir, t);
    };

    // Every worker thread loops pull -> run -> complete until the
    // pool is drained; parallelFor's index is just a worker id.
    // Unlike runJobs there is no per-index slot discipline — a
    // thread may run any job — but each pulled index is handed to
    // exactly one thread process-wide (ClaimedQueue::running) and
    // fleet-wide (the claim file), so slot writes never race.
    auto drain = [&](size_t) {
        for (;;) {
            size_t i = 0;
            ClaimedQueue::Pull pull = queue.next(i);
            if (pull == ClaimedQueue::Pull::Drained)
                return;
            if (pull == ClaimedQueue::Pull::Wait) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        spec.claimPollSeconds));
                continue;
            }
            const CampaignJob &job = jobs[i];
            const auto jt0 = clock::now();
            {
                obs::TraceSpan jspan("campaign.job");
                Sample s;
                if (cache.lookup(job.key, s)) {
                    // Rare but possible: a peer cached the job
                    // between our queue scan and the claim
                    // acquisition.
                    obs::counter("cache_hits").add();
                    out.samples[i] = std::move(s);
                    out.cached[i] = 1;
                } else {
                    obs::counter("cache_misses").add();
                    const Program &prog =
                        workloads[job.workload].program;
                    uint64_t salt = hashCombine(job.key, 0x5a17ull);
                    out.samples[i] = makeSample(
                        prog.name,
                        machine.run(prog, job.config,
                                    jobPoint(machine, job), salt));
                    cache.store(job.key, out.samples[i]);
                }
                out.seconds[i] =
                    std::chrono::duration<double>(clock::now() -
                                                  jt0)
                        .count();
                jobHistogram().observe(out.seconds[i]);
                jspan.note("cached", out.cached[i]);
                jspan.note("cost_est", job.cost);
                jspan.note("seconds", out.seconds[i]);
            }
            // Store first, release second: once the claim is gone
            // the job must already be skippable via the cache.
            queue.complete(i);
            size_t k = ++ran;
            if (every_ms <= 0)
                continue;
            int64_t elapsed =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(clock::now() - t0)
                    .count();
            int64_t deadline = next_report_ms.load();
            if (elapsed >= deadline &&
                next_report_ms.compare_exchange_strong(
                    deadline, elapsed + every_ms)) {
                inform(cat("campaign: serve: ", k,
                           " jobs run by this worker, ",
                           queue.completedByPeers(),
                           " taken by peers, ", queue.pending(),
                           " of ", jobs.size(), " pool jobs open ",
                           "(", claimdir.stolen(), " stolen)"));
                // The progress reporter doubles as the telemetry
                // heartbeat: the CAS elected exactly one thread,
                // and atomicWriteFile keeps readers tear-free.
                publishTelemetry(claimdir,
                                 static_cast<double>(elapsed) /
                                     1000.0,
                                 k);
            }
        }
    };
    parallelFor(spec.threads,
                static_cast<size_t>(spec.threads), drain,
                "campaign serve");

    // The pool is drained: every job of the campaign is in the
    // cache. Load the peer-measured slots so this worker returns
    // the complete sample set in job order — its export is
    // byte-identical to an unsharded run's.
    size_t holes = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (!out.samples[i].rates.empty())
            continue;
        if (cache.peek(jobs[i].key, out.samples[i])) {
            out.cached[i] = 1;
            continue;
        }
        // A cached result that vanished or went corrupt between
        // drain and collection; re-measure it locally rather than
        // exporting a hole.
        const CampaignJob &job = jobs[i];
        const Program &prog = workloads[job.workload].program;
        uint64_t salt = hashCombine(job.key, 0x5a17ull);
        out.samples[i] = makeSample(
            prog.name,
            machine.run(prog, job.config,
                        jobPoint(machine, job), salt));
        cache.store(job.key, out.samples[i]);
        ++holes;
    }
    if (holes > 0)
        warn(cat("campaign: serve: ", holes,
                 " cached results vanished before collection and "
                 "were re-measured"));
    inform(cat("campaign: serve: pool drained; this worker ran ",
               ran.load(), " of ", jobs.size(), " jobs (",
               claimdir.stolen(), " stolen from expired claims, ",
               queue.completedByPeers(), " measured by peers)"));
    // Final telemetry snapshot: the worker's last word stays on
    // disk (age tells observers it has finished or died).
    publishTelemetry(claimdir,
                     std::chrono::duration<double>(clock::now() -
                                                   t0)
                         .count(),
                     ran.load());
    out.claimsAcquired = claimdir.acquired();
    out.claimsStolen = claimdir.stolen();
    return out;
}

CampaignExpansion
Campaign::expand(Architecture &arch)
{
    CampaignExpansion out;
    out.workloads = expandWorkloads(arch);
    out.jobs = expandJobs(
        out.workloads,
        std::vector<std::vector<ChipConfig>>(out.workloads.size(),
                                             spec.configs));
    // The manifest is persisted before any measurement — the full
    // job list, so interrupted/sharded/served runs can always
    // report what is left and --merge sees every job.
    writeManifest(out.workloads, out.jobs);
    return out;
}

CampaignResult
Campaign::run(Architecture &arch)
{
    // lint: wallclock-ok(progress/ETA and claim heartbeats only)
    using clock = std::chrono::steady_clock;
    CampaignResult res;
    auto t0 = clock::now();
    {
        obs::TraceSpan span("campaign.generate");
        res.workloads = expandWorkloads(arch);
        span.note("workloads",
                  static_cast<double>(res.workloads.size()));
    }
    auto t1 = clock::now();
    std::vector<CampaignJob> all_jobs;
    {
        obs::TraceSpan span("campaign.expand");
        all_jobs = expandJobs(
            res.workloads,
            std::vector<std::vector<ChipConfig>>(
                res.workloads.size(), spec.configs));
        span.note("jobs", static_cast<double>(all_jobs.size()));
    }
    res.totalJobs = all_jobs.size();
    // The manifest is persisted before measurement starts — always
    // the *full* job list, so an interrupted or sharded run can
    // always report what is left and --merge sees every job.
    writeManifest(res.workloads, all_jobs);
    if (spec.sharded())
        res.jobs = jobsAt(all_jobs,
                          costAwareShardIndices(all_jobs,
                                                spec.shardIndex,
                                                spec.shardCount));
    else
        res.jobs = std::move(all_jobs);
    size_t hits0 = cache.hits(), misses0 = cache.misses();
    size_t corrupt0 = cache.corrupt();
    JobRunOutcome outcome;
    {
        obs::TraceSpan span("campaign.measure");
        outcome = spec.serve
                      ? runClaimed(res.workloads, res.jobs)
                      : runJobs(res.workloads, res.jobs,
                                res.totalJobs);
        span.note("jobs", static_cast<double>(res.jobs.size()));
    }
    res.samples = std::move(outcome.samples);
    res.jobSeconds = std::move(outcome.seconds);
    res.jobCached = std::move(outcome.cached);
    auto t2 = clock::now();
    res.cacheHits = cache.hits() - hits0;
    res.cacheMisses = cache.misses() - misses0;
    res.cacheCorrupt = cache.corrupt() - corrupt0;
    res.claimsAcquired = outcome.claimsAcquired;
    res.claimsStolen = outcome.claimsStolen;
    // The cache cannot count corrupt entries into the registry
    // itself (cache.cc is inside the obs-isolation boundary), so
    // the engine syncs the delta here.
    if (res.cacheCorrupt > 0)
        obs::counter("cache_corrupt").add(res.cacheCorrupt);
    res.generationSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.measureSeconds =
        std::chrono::duration<double>(t2 - t1).count();
    obs::gauge("generation_seconds").set(res.generationSeconds);
    obs::gauge("measure_seconds").set(res.measureSeconds);
    inform(cat("campaign: done; cache ", res.cacheHits, " hits / ",
               res.cacheMisses, " misses"));
    return res;
}

CampaignPlan
Campaign::plan(Architecture &arch, int shard_count)
{
    if (shard_count == 0)
        shard_count = spec.shardCount;
    if (shard_count < 1)
        fatal(cat("campaign: bad plan shard count ", shard_count));

    CampaignPlan out;
    out.workloads = expandWorkloads(arch);
    out.jobList = expandJobs(
        out.workloads,
        std::vector<std::vector<ChipConfig>>(out.workloads.size(),
                                             spec.configs));
    out.totalJobs = out.jobList.size();

    std::vector<double> costs = jobCosts(out.jobList);
    for (double c : costs)
        out.totalCost += c;

    std::vector<std::vector<size_t>> striped =
        costStripedPartition(costs, shard_count);
    std::vector<std::vector<size_t>> rr;
    rr.reserve(static_cast<size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s)
        rr.push_back(
            shardIndices(out.totalJobs, s, shard_count));
    out.stripedImbalance = costImbalance(costs, striped);
    out.roundRobinImbalance = costImbalance(costs, rr);
    for (int s = 0; s < shard_count; ++s) {
        out.shards.push_back(
            {striped[static_cast<size_t>(s)],
             summedCost(costs, striped[static_cast<size_t>(s)])});
        out.roundRobin.push_back(
            {rr[static_cast<size_t>(s)],
             summedCost(costs, rr[static_cast<size_t>(s)])});
    }
    return out;
}

namespace
{

std::vector<CampaignWorkload>
adhocWorkloads(const std::vector<Program> &programs)
{
    std::vector<CampaignWorkload> workloads;
    workloads.reserve(programs.size());
    for (const auto &p : programs) {
        CampaignWorkload w;
        w.program = p;
        w.source = "adhoc";
        workloads.push_back(std::move(w));
    }
    return workloads;
}

} // namespace

std::vector<Sample>
Campaign::measure(const std::vector<Program> &programs,
                  const std::vector<ChipConfig> &configs)
{
    if (configs.empty())
        fatal("campaign: no configurations to deploy on");
    return measure(programs,
                   std::vector<std::vector<ChipConfig>>(
                       programs.size(), configs));
}

std::vector<Sample>
Campaign::measure(
    const std::vector<Program> &programs,
    const std::vector<std::vector<ChipConfig>> &configs_per)
{
    auto workloads = adhocWorkloads(programs);
    auto jobs = expandJobs(workloads, configs_per);
    // measure() campaigns are manifest-covered too: benches and
    // the model pipeline accumulate their job lists next to the
    // shared cache, which is what makes --resume and --merge (and
    // therefore sharding) work for them.
    writeManifest(workloads, jobs);
    if (!spec.sharded())
        return runJobs(workloads, jobs, jobs.size()).samples;

    // Sharded measure(): run this shard's slice, then fill
    // off-shard slots from the shared cache. Slots no other shard
    // has measured yet stay placeholders (correct workload/config,
    // zeroed measurements): a sharded bench run warms the cache,
    // the final unsharded all-hit run computes the figures.
    std::vector<size_t> mine = costAwareShardIndices(
        jobs, spec.shardIndex, spec.shardCount);
    std::vector<Sample> measured =
        runJobs(workloads, jobsAt(jobs, mine), jobs.size())
            .samples;

    std::vector<Sample> out(jobs.size());
    std::vector<char> filled(jobs.size(), 0);
    for (size_t k = 0; k < mine.size(); ++k) {
        out[mine[k]] = std::move(measured[k]);
        filled[mine[k]] = 1;
    }
    size_t holes = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (filled[i])
            continue;
        if (cache.peek(jobs[i].key, out[i]))
            continue;
        Sample &s = out[i];
        s.workload = workloads[jobs[i].workload].program.name;
        s.config = jobs[i].config;
        s.freqGhz = jobs[i].freqGhz > 0.0 ? jobs[i].freqGhz
                                          : machine.clockGhz();
        s.vddVolts = jobs[i].vdd > 0.0
                         ? jobs[i].vdd
                         : machine.voltageAt(s.freqGhz);
        s.rates.assign(dynamicFeatureNames().size(), 0.0);
        ++holes;
    }
    if (holes > 0)
        warn(cat("campaign: shard ", spec.shardIndex, "/",
                 spec.shardCount, ": ", holes, " of ",
                 jobs.size(), " jobs not yet in the shared "
                 "cache; their samples are zero placeholders — "
                 "run the remaining shards, then re-run unsharded "
                 "(all cache hits) before consuming results"));
    return out;
}

CampaignSpec
measurementSpec(int threads, std::string cache_dir, uint64_t salt)
{
    CampaignSpec spec;
    spec.suiteEnabled = false;
    spec.bootstrap = false;
    spec.threads = threads;
    spec.cacheDir = std::move(cache_dir);
    spec.salt = salt;
    return spec;
}

} // namespace mprobe
