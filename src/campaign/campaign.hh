/**
 * @file
 * Parallel experiment-campaign engine.
 *
 * The paper's methodology is a campaign: generate a micro-benchmark
 * corpus, deploy every benchmark on every CMP/SMT configuration,
 * collect (activity rates, power) samples, feed them to the models.
 * This module runs that campaign as a unit of its own: a
 * CampaignSpec expands into independent (workload, configuration)
 * jobs which execute on a work-queue thread pool, with every
 * completed measurement stored in a content-hash-keyed on-disk
 * cache so re-runs and resumed campaigns skip already-measured
 * points.
 *
 * Determinism: each job derives its measurement salt from its own
 * content hash, never from execution order, so a campaign produces
 * bit-identical samples at any worker count — and a cached sample
 * is exactly what re-simulation would yield.
 */

#ifndef CAMPAIGN_CAMPAIGN_HH
#define CAMPAIGN_CAMPAIGN_HH

#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/cost.hh"
#include "campaign/spec.hh"
#include "microprobe/arch.hh"
#include "power/sample.hh"

namespace mprobe
{

/** One expanded measurement point. */
struct CampaignJob
{
    /** Index into the campaign's workload list. */
    size_t workload = 0;
    ChipConfig config;
    /** Content hash: program + config + operating point + machine
     * + salt. */
    uint64_t key = 0;
    /** Estimated relative cost (JobCostModel), for cost-striped
     * sharding and longest-first pool draining. Execution detail:
     * never part of the key or the manifest. */
    double cost = 0.0;
    /**
     * Swept core frequency in GHz; 0 selects the machine's nominal
     * operating point *and* the legacy (frequency-free) job key, so
     * campaigns without a `freqs` axis — and sweep points that
     * coincide with the nominal clock — replay pre-DVFS cache
     * entries.
     */
    double freqGhz = 0.0;
    /**
     * Swept supply voltage in volts; 0 selects the on-curve voltage
     * at the job's frequency *and* the vdd-free job key, so
     * campaigns without a `vdds` axis — and sweep voltages that
     * coincide with the V/f curve — replay pre-undervolting cache
     * entries.
     */
    double vdd = 0.0;
};

/** A generated workload with its provenance. */
struct CampaignWorkload
{
    Program program;
    /** Source label: a Table-2 category name, "SPEC", "DAXPY" or
     * "Extreme". */
    std::string source;
    /** Sub-group within the source (e.g. "L1L2a"), if any. */
    std::string group;
};

/** Everything a campaign run produces. */
struct CampaignResult
{
    /** One sample per executed job, in job order (workload-major).
     * Under a shard spec this covers only this shard's slice. */
    std::vector<Sample> samples;
    /** The generated corpus the samples cover. */
    std::vector<CampaignWorkload> workloads;
    /** Executed jobs (parallel to samples; the shard slice when
     * sharded). */
    std::vector<CampaignJob> jobs;
    /** Full campaign job count before shard slicing (equals
     * jobs.size() for an unsharded run). */
    size_t totalJobs = 0;
    /** Cache statistics of this run. */
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
    /** Cache entries that existed but failed to parse (each also a
     * miss) — the post-hoc fleet-incident signal --metrics-json
     * reports. */
    size_t cacheCorrupt = 0;
    /** Claim-pool statistics of this run (zero outside --serve). */
    size_t claimsAcquired = 0;
    size_t claimsStolen = 0;
    /** Measured wall seconds per executed job (parallel to jobs;
     * near-zero for cache hits) and whether each was a hit — the
     * raw material `mprobe_campaign --calibrate` refits the
     * JobCostModel from. */
    std::vector<double> jobSeconds;
    std::vector<char> jobCached;
    /** @name Phase wall times (perf trajectory tracking) */
    /**@{*/
    double generationSeconds = 0.0;
    double measureSeconds = 0.0;
    /**@}*/
};

/**
 * Content hash of one measurement point. Covers every Program field
 * the simulator reads plus the configuration, the machine
 * fingerprint and the campaign salt. @p freq_ghz joins the hash
 * only when positive (a swept non-nominal operating point): the
 * nominal point keeps the exact pre-DVFS key, so existing cache
 * directories upgrade miss-free. @p vdd_volts likewise joins only
 * when positive (an off-curve voltage), under a domain-separation
 * tag so a vdd-only sweep can never collide with a freq-only one.
 */
uint64_t campaignJobKey(const Program &prog, const ChipConfig &cfg,
                        uint64_t machine_fingerprint,
                        uint64_t salt, double freq_ghz = 0.0,
                        double vdd_volts = 0.0);

/**
 * Fingerprint of everything in (@p spec, machine) that determines a
 * campaign's job keys: workload sources and generation knobs,
 * configurations, salt and the machine fingerprint — but not
 * execution detail (threads, cache directory). The manifest stores
 * it so --resume can tell "same campaign, different worker count"
 * from "stale manifest of a different campaign".
 */
uint64_t campaignFingerprint(const CampaignSpec &spec,
                             uint64_t machine_fingerprint);

/**
 * Count-balanced round-robin shard partition: the indices i in
 * [0, n) with i % count == index. Superseded by cost-aware striping
 * (costAwareShardIndices) for the engine's own shard selection —
 * round-robin balances job counts, not job costs — but kept as the
 * deterministic baseline the cost-striped schedule is measured
 * against (tests, the --plan dry run and the shard-balance CI
 * smoke report both).
 */
std::vector<size_t> shardIndices(size_t n, int index, int count);

/**
 * The engine's shard partition: deterministic cost-weighted
 * striping (LPT greedy over job.cost, see campaign/cost.hh) of the
 * expanded job list. Like the round-robin partition it is a pure
 * function of the (ordered) job list — never of scheduling or
 * cache state — so every shard of one campaign computes the
 * identical partition on its own, the union over all shards is
 * exactly the unsharded job list, and --merge exports stay
 * byte-identical to an unsharded run. Unlike round-robin, the
 * summed estimated cost per shard is near-balanced even when the
 * config mix is skewed (an 8-4 job costs ~32x a 1-1 job).
 */
std::vector<size_t>
costAwareShardIndices(const std::vector<CampaignJob> &jobs,
                      int index, int count);

/** Per-shard slice of a campaign plan (--plan dry run). */
struct CampaignShardPlan
{
    /** Expansion indices of this shard's jobs, ascending. */
    std::vector<size_t> jobs;
    /** Summed estimated cost of those jobs. */
    double cost = 0.0;
};

/** What Campaign::plan computes: the cost-striped schedule of a
 * campaign, next to the round-robin baseline it replaces. */
struct CampaignPlan
{
    /** Full expanded job count. */
    size_t totalJobs = 0;
    /** Summed estimated cost of every job. */
    double totalCost = 0.0;
    /** Cost-striped shard slices (what the engine executes). */
    std::vector<CampaignShardPlan> shards;
    /** Round-robin slices of the same jobs (comparison baseline). */
    std::vector<CampaignShardPlan> roundRobin;
    /** max/min summed shard cost, both schemes (1 = perfect). */
    double stripedImbalance = 1.0;
    double roundRobinImbalance = 1.0;
    /** The generated corpus behind the jobs (label lookups). */
    std::vector<CampaignWorkload> workloads;
    /** The expanded jobs the indices refer to. */
    std::vector<CampaignJob> jobList;
};

/** A campaign expanded but not yet measured: what the service's
 * ingest step produces and its shared pool consumes. */
struct CampaignExpansion
{
    std::vector<CampaignWorkload> workloads;
    std::vector<CampaignJob> jobs;
};

/** The engine: expansion, scheduling, caching, collection. */
class Campaign
{
  public:
    /**
     * Bind the engine to a machine and a spec. The machine must
     * outlive the campaign; its simOptions() must not be mutated
     * while run()/measure() execute (worker threads read them).
     */
    Campaign(const Machine &machine, CampaignSpec spec);

    /**
     * Run the full campaign: generate the spec's workloads (suite
     * generation bootstraps @p arch first when the spec says so),
     * expand jobs, measure them on the pool, export-ready samples
     * out. Generation is serial and deterministic; only the
     * embarrassingly parallel measurement phase fans out.
     *
     * Under a shard spec, the full job list is still expanded and
     * persisted to the manifest, but only this shard's slice is
     * measured and returned (result.totalJobs keeps the full
     * count); once every shard has run against the shared cache
     * directory, `mprobe_campaign --merge` assembles the complete
     * export from the manifest and the cache.
     */
    CampaignResult run(Architecture &arch);

    /**
     * Generation + expansion only: produce the campaign's
     * workloads and full job list and persist the manifest, without
     * measuring anything. The drop-directory service ingests new
     * campaigns through this entry and feeds the jobs into its
     * shared claim pool; run() is exactly expand() + the
     * measurement phase.
     */
    CampaignExpansion expand(Architecture &arch);

    /**
     * Dry run (--plan): generate the spec's workloads and expand
     * its jobs exactly like run(), but partition instead of
     * measuring — no manifest write, no cache traffic, no samples.
     * @p shard_count overrides the spec's shard count (0 keeps it);
     * an unsharded plan is one shard holding every job. Generation
     * still runs (job costs need the generated body sizes), so a
     * plan of an expensive spec costs its generation phase.
     */
    CampaignPlan plan(Architecture &arch, int shard_count = 0);

    /**
     * Lower-level entry: measure an explicit workload list across
     * @p configs with the engine's pool and cache, in deterministic
     * (workload-major) order. Figure/table benches and the model
     * pipeline route all of their measurement through here.
     */
    std::vector<Sample>
    measure(const std::vector<Program> &programs,
            const std::vector<ChipConfig> &configs);

    /**
     * Like measure() but with one config list per program
     * (configs_per[i] deploys programs[i]): the shape of the model
     * pipeline's corpus, where micro-benchmarks and random/SPEC
     * workloads are measured on different configuration subsets.
     * Samples come back program-major, each program's configs in
     * the order listed.
     *
     * Both overloads persist (merge-accumulate) their expanded job
     * list into the cache directory's manifest, so --resume and
     * --merge cover bench/pipeline measurements too. Under a shard
     * spec only the shard's slice is measured; off-shard slots are
     * filled from the shared cache when another shard already
     * measured them, and otherwise left as placeholder samples
     * (correct workload/config, zeroed measurements) with a
     * warning — a sharded bench run warms the cache, the final
     * unsharded (all-hit) run computes the figures.
     */
    std::vector<Sample>
    measure(const std::vector<Program> &programs,
            const std::vector<std::vector<ChipConfig>> &configs_per);

    /** Cache statistics accumulated across run()/measure() calls. */
    size_t cacheHits() const { return cache.hits(); }
    size_t cacheMisses() const { return cache.misses(); }
    size_t cacheCorrupt() const { return cache.corrupt(); }

    const CampaignSpec &specRef() const { return spec; }

  private:
    const Machine &machine;
    CampaignSpec spec;
    ResultCache cache;
    uint64_t machineFp;
    /** Relative-cost estimator behind cost-striped sharding and
     * longest-first local ordering. */
    JobCostModel costModel;

    /** Expand spec workloads (generation phase). */
    std::vector<CampaignWorkload> expandWorkloads(Architecture &arch);

    /** Build one job per (workload, config) pair, workload-major. */
    std::vector<CampaignJob>
    expandJobs(const std::vector<CampaignWorkload> &workloads,
               const std::vector<std::vector<ChipConfig>> &configs_per)
        const;

    /** What one runJobs call produced (samples plus the per-job
     * timing/caching record --calibrate consumes). */
    struct JobRunOutcome
    {
        std::vector<Sample> samples;
        std::vector<double> seconds;
        std::vector<char> cached;
        /** Claim-pool statistics (runClaimed only). */
        size_t claimsAcquired = 0;
        size_t claimsStolen = 0;
    };

    /**
     * Execute pre-expanded jobs on the pool; the parallel phase.
     * @p campaign_total is the full campaign's job count (the
     * progress-line denominator context when @p jobs is a shard
     * slice of it).
     */
    JobRunOutcome
    runJobs(const std::vector<CampaignWorkload> &workloads,
            const std::vector<CampaignJob> &jobs,
            size_t campaign_total);

    /**
     * Claim-based execution (--serve): this worker's threads pull
     * jobs from the full campaign pool through per-job claim files
     * in the shared cache directory, stealing from dead peers once
     * their claims pass the TTL. Returns only when every job of
     * the campaign is in the cache — the outcome covers all @p
     * jobs (peer-measured ones loaded from the cache), so a serve
     * worker's export is byte-identical to an unsharded run's.
     */
    JobRunOutcome
    runClaimed(const std::vector<CampaignWorkload> &workloads,
               const std::vector<CampaignJob> &jobs);

    /** Persist the job manifest next to the cache (resume). */
    void
    writeManifest(const std::vector<CampaignWorkload> &workloads,
                  const std::vector<CampaignJob> &jobs) const;
};

/**
 * A measurement-only spec (no suite generation, no bootstrap) with
 * the given execution knobs — what figure benches and the model
 * pipeline construct internally before calling Campaign::measure.
 */
CampaignSpec measurementSpec(int threads = 0,
                             std::string cache_dir = "",
                             uint64_t salt = 0);

} // namespace mprobe

#endif // CAMPAIGN_CAMPAIGN_HH
