/**
 * @file
 * Claim-file registry and shared-pool queue implementation.
 */

#include "campaign/claims.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

namespace fs = std::filesystem;

std::string
defaultWorkerId()
{
    char host[256] = "unknown";
    // gethostname may leave the buffer unterminated on truncation.
    if (::gethostname(host, sizeof host - 1) != 0)
        std::snprintf(host, sizeof host, "unknown");
    host[sizeof host - 1] = '\0';
    return cat(host, ":", ::getpid());
}

ClaimDir::ClaimDir(std::string d, std::string worker_id,
                   double ttl_seconds)
    : dir(std::move(d)), worker(std::move(worker_id)),
      ttl(ttl_seconds)
{
    if (worker.empty())
        worker = defaultWorkerId();
    if (ttl <= 0.0)
        fatal(cat("claims: TTL must be > 0 seconds, got ", ttl));
    if (dir.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal(cat("claims: cannot create claim directory '", dir,
                  "': ", ec.message()));
}

std::string
ClaimDir::pathOf(uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.claim",
                  static_cast<unsigned long long>(key));
    return dir + "/" + name;
}

double
ClaimDir::claimAge(const std::string &path) const
{
    std::error_code ec;
    auto mtime = fs::last_write_time(path, ec);
    if (ec)
        return -1.0;
    auto now = fs::file_time_type::clock::now();
    return std::chrono::duration<double>(now - mtime).count();
}

bool
ClaimDir::createClaim(const std::string &path) const
{
    // O_EXCL is the atom: exactly one creator wins, on local
    // filesystems and (unlike lockfiles relying on advisory locks)
    // on the network filesystems a fleet shares.
    int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY,
                    0644);
    if (fd < 0)
        return false;
    std::string content = cat("claim v1\nworker ", worker, "\n");
    // A short write leaves a claim whose worker line is truncated;
    // observers only print that id, so it degrades a log line, not
    // correctness (the mtime heartbeat is metadata, not content).
    ssize_t n =
        ::write(fd, content.data(), content.size());
    (void)n;
    ::close(fd);
    return true;
}

bool
ClaimDir::tryAcquire(uint64_t key)
{
    if (!enabled())
        return true;
    std::string path = pathOf(key);
    bool stole = false;
    if (!createClaim(path)) {
        double age = claimAge(path);
        // age < 0: the claim vanished between create and stat (its
        // holder released); retry once like a steal, without
        // unlinking anything.
        if (age >= 0.0 && age <= ttl)
            return false; // fresh claim: a live peer owns the job
        if (age > ttl) {
            // Stale: the holder is presumed dead. Unlink-then-
            // create races with other stealers; exactly one wins
            // the O_EXCL retry. (A loser observing this *new*
            // claim sees a fresh mtime and backs off.)
            std::error_code ec;
            fs::remove(path, ec);
            stole = true;
        }
        if (!createClaim(path))
            return false;
    }
    ++nAcquired;
    obs::counter("claims_acquired").add();
    obs::traceInstant(stole ? "claim.steal" : "claim.acquire");
    if (stole) {
        ++nStolen;
        obs::counter("claims_stolen").add();
    }
    {
        MutexLock lock(heldMutex);
        held.insert(key);
    }
    return true;
}

void
ClaimDir::release(uint64_t key)
{
    if (!enabled())
        return;
    {
        MutexLock lock(heldMutex);
        held.erase(key);
    }
    std::error_code ec;
    fs::remove(pathOf(key), ec);
    if (ec)
        warn(cat("claims: cannot release ", pathOf(key), ": ",
                 ec.message(),
                 " — peers will treat the job as in-flight until "
                 "the claim expires"));
}

void
ClaimDir::heartbeatHeld()
{
    if (!enabled())
        return;
    std::vector<uint64_t> keys;
    {
        MutexLock lock(heldMutex);
        keys.assign(held.begin(), held.end());
    }
    if (!keys.empty())
        obs::traceInstant("claim.heartbeat", "held",
                          static_cast<double>(keys.size()));
    for (uint64_t key : keys) {
        std::error_code ec;
        fs::last_write_time(pathOf(key),
                            fs::file_time_type::clock::now(), ec);
        // A failed heartbeat (claim stolen after a long stall, or
        // dir trouble) is not fatal here: the job's eventual cache
        // store is still valid, identical to the thief's.
    }
}

bool
ClaimDir::info(uint64_t key, ClaimInfo &out) const
{
    if (!enabled())
        return false;
    std::string path = pathOf(key);
    double age = claimAge(path);
    if (age < 0.0)
        return false;
    out.ageSeconds = age;
    out.worker.clear();
    std::ifstream f(path);
    std::string line;
    while (std::getline(f, line)) {
        std::string s = trim(line);
        if (s.rfind("worker ", 0) == 0) {
            out.worker = trim(s.substr(7));
            break;
        }
    }
    return true;
}

bool
ClaimDir::sweepIfStale(uint64_t key)
{
    if (!enabled())
        return false;
    std::string path = pathOf(key);
    double age = claimAge(path);
    if (age <= ttl)
        return false;
    std::error_code ec;
    return fs::remove(path, ec) && !ec;
}

// ----------------------------------------------------------------
// ClaimedQueue

ClaimedQueue::ClaimedQueue(const ResultCache &c, ClaimDir &cl,
                           std::vector<PoolJob> jobs)
    : cache(c), claims(cl)
{
    push(jobs);
}

void
ClaimedQueue::push(const std::vector<PoolJob> &jobs)
{
    MutexLock lock(mutex);
    for (const PoolJob &j : jobs)
        entries.push_back({j, false, false});
    // Descending cost, ties by ascending key for a stable pull
    // order no matter how campaigns were ingested interleaved.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         if (a.job.cost != b.job.cost)
                             return a.job.cost > b.job.cost;
                         return a.job.key < b.job.key;
                     });
}

ClaimedQueue::Pull
ClaimedQueue::next(size_t &out_index)
{
    // One live pulling thread keeps every in-flight claim of this
    // process fresh, so siblings running jobs longer than the scan
    // interval are not stolen from.
    claims.heartbeatHeld();
    MutexLock lock(mutex);
    bool any_open = false;
    for (Entry &e : entries) {
        if (e.done)
            continue;
        if (e.running) {
            any_open = true;
            continue;
        }
        if (cache.contains(e.job.key)) {
            // A peer finished this job. A stale claim left on a
            // cached job (its worker died between store and
            // release) would otherwise linger forever: nothing
            // re-runs a cached job, so nothing would release it.
            e.done = true;
            ++nPeer;
            claims.sweepIfStale(e.job.key);
            continue;
        }
        if (claims.tryAcquire(e.job.key)) {
            e.running = true;
            out_index = e.job.index;
            return Pull::Job;
        }
        any_open = true; // claimed by a live peer; revisit later
    }
    return any_open ? Pull::Wait : Pull::Drained;
}

void
ClaimedQueue::complete(size_t index)
{
    MutexLock lock(mutex);
    for (Entry &e : entries) {
        if (e.job.index != index || !e.running)
            continue;
        e.running = false;
        e.done = true;
        claims.release(e.job.key);
        return;
    }
    panic(cat("claims: complete(", index,
              ") without a matching running pool job"));
}

size_t
ClaimedQueue::pending() const
{
    MutexLock lock(mutex);
    size_t n = 0;
    for (const Entry &e : entries)
        if (!e.done)
            ++n;
    return n;
}

} // namespace mprobe
