/**
 * @file
 * Atomic per-job claim files: work stealing over a shared cache
 * directory.
 *
 * Static sharding (campaign/cost.hh) balances *estimated* cost
 * across a fixed worker set decided up front. A fleet of
 * heterogeneous, killable workers needs dynamic balance instead:
 * every worker pulls the next unfinished job from one shared pool,
 * and a job whose worker died is eventually re-run by a survivor.
 *
 * The coordination primitive is a claim file per job key inside the
 * shared cache directory: `<key>.claim`, created with O_CREAT|O_EXCL
 * (atomic on every filesystem the cache already relies on) and
 * carrying the claiming worker's id. The file's mtime is the
 * claim's heartbeat; a claim whose mtime is older than the
 * configured TTL is *stale* — its worker is presumed dead and any
 * other worker may steal the job (unlink + re-create). Because job
 * execution is deterministic and cache stores are atomic
 * last-rename-wins with identical content, the worst case of the
 * unlink/re-create race window (two workers briefly running the
 * same job) wastes cycles but can never corrupt or duplicate
 * results: the cache ends up with the one sample either would have
 * written, and exports are manifest-ordered.
 *
 * ClaimedQueue layers pool semantics on top: any number of
 * `mprobe_campaign --serve` workers (and the drop-directory service
 * of src/service/) pull jobs from the manifest-defined pool in
 * cost order, skip jobs whose results are already cached, wait on
 * jobs freshly claimed by live peers, and steal them once the
 * claim expires. A pool is drained exactly when every job's result
 * is in the cache — at which point any worker can assemble the
 * complete, byte-identical export.
 */

#ifndef CAMPAIGN_CLAIMS_HH
#define CAMPAIGN_CLAIMS_HH

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "util/thread_annotations.hh"

namespace mprobe
{

/**
 * Default stale-claim TTL. A claim is heartbeaten every time its
 * worker pulls from the queue (between jobs) and whenever a worker
 * thread waits on peers, so in a live worker the mtime stays far
 * younger than this. Raise it when individual jobs can run longer
 * than this on the slowest fleet host (a claim is only refreshed
 * between jobs), or when cache-directory clocks (e.g. NFS server
 * vs client) may disagree by a sizable fraction of it.
 */
constexpr double kDefaultClaimTtlSeconds = 60.0;

/** What an existing claim file says about its holder. */
struct ClaimInfo
{
    /** Claiming worker's id ("host:pid" by default). */
    std::string worker;
    /** Seconds since the claim's last heartbeat (mtime). */
    double ageSeconds = 0.0;
};

/** "host:pid" identity of this worker process. */
std::string defaultWorkerId();

/**
 * The claim-file registry of one shared cache directory. Safe for
 * concurrent use by many threads of one worker process and by any
 * number of worker processes on the directory.
 */
class ClaimDir
{
  public:
    /**
     * Bind to @p dir (the campaign's shared cache directory; empty
     * disables claiming — tryAcquire always succeeds without
     * touching disk, for cache-less single-process runs). An empty
     * @p worker_id resolves to defaultWorkerId().
     */
    explicit ClaimDir(std::string dir, std::string worker_id = "",
                      double ttl_seconds = kDefaultClaimTtlSeconds);

    bool enabled() const { return !dir.empty(); }
    const std::string &workerId() const { return worker; }
    double ttlSeconds() const { return ttl; }

    /** Path of a key's claim file (`<dir>/<key>.claim`). */
    std::string pathOf(uint64_t key) const;

    /**
     * Try to take the claim on @p key: O_EXCL-create the claim file
     * carrying this worker's id. When the file already exists but
     * its heartbeat is older than the TTL, the claim is stolen
     * (unlink, then one O_EXCL retry — losing the retry to another
     * stealer returns false). Returns true iff this worker now
     * holds the claim.
     */
    bool tryAcquire(uint64_t key);

    /**
     * Drop a claim this worker holds. Call after the job's result
     * is safely in the cache (store-then-release order is what
     * makes a completed job's claim irrelevant: the pool skips
     * cached jobs before ever looking at claims).
     */
    void release(uint64_t key);

    /**
     * Refresh the heartbeat (mtime) of every claim this worker
     * currently holds. Pulling threads call this on each queue
     * scan, so one live thread keeps the whole process's in-flight
     * claims fresh while siblings run long jobs.
     */
    void heartbeatHeld();

    /**
     * Read the claim on @p key, if any. Returns false when no
     * claim file exists (or it vanishes mid-read — releases race
     * with observers by design).
     */
    bool info(uint64_t key, ClaimInfo &out) const;

    /**
     * Remove a *stale* claim on @p key without taking it — cleanup
     * for claims orphaned by a worker that died after caching its
     * result but before releasing (the pool never re-runs such a
     * job, so nobody would ever steal-and-release it). Fresh
     * claims are left alone. Returns true when a stale claim was
     * removed.
     */
    bool sweepIfStale(uint64_t key);

    /** @name Statistics (since construction) */
    /**@{*/
    size_t acquired() const { return nAcquired.load(); }
    size_t stolen() const { return nStolen.load(); }
    /**@}*/

  private:
    std::string dir;
    std::string worker;
    double ttl;
    std::atomic<size_t> nAcquired{0};
    std::atomic<size_t> nStolen{0};
    mutable Mutex heldMutex;
    /** Keys this worker currently holds (heartbeat targets). */
    std::set<uint64_t> held GUARDED_BY(heldMutex);

    /** Age in seconds of the claim file at @p path; negative when
     * the file does not exist. */
    double claimAge(const std::string &path) const;
    /** Plain O_EXCL create attempt (no steal logic). */
    bool createClaim(const std::string &path) const;
};

/** One pool entry a ClaimedQueue schedules. */
struct PoolJob
{
    /** Cache/claim key of the job. */
    uint64_t key = 0;
    /** Caller's index for the job (position in its own job list). */
    size_t index = 0;
    /** Estimated relative cost (JobCostModel units); the queue
     * hands out claimable jobs in descending cost order so the
     * fleet drains without a long-tail straggler. */
    double cost = 0.0;
};

/**
 * The shared-pool scheduler of a worker process: pulls the next
 * runnable job of the pool, coordinating with peer processes
 * through the cache (completed jobs) and the ClaimDir (in-flight
 * jobs). Thread-safe; all worker threads of one process share one
 * queue.
 */
class ClaimedQueue
{
  public:
    /** What a pull produced. */
    enum class Pull
    {
        Job,     //!< @p index is yours to run: claim held
        Wait,    //!< live peers hold every remaining job; retry
        Drained, //!< every pool job's result is in the cache
    };

    /**
     * Build over @p cache and @p claims (both outlive the queue).
     * @p jobs is the pool; it is scheduled in descending cost
     * order regardless of input order.
     */
    ClaimedQueue(const ResultCache &cache, ClaimDir &claims,
                 std::vector<PoolJob> jobs = {});

    /** Append more pool jobs (the service ingests new campaigns
     * while workers pull; cost order is maintained). */
    void push(const std::vector<PoolJob> &jobs);

    /**
     * Pull the next runnable job. On Pull::Job, @p out_index is
     * the caller-side index of a job this worker now holds the
     * claim for: run it, store the result in the cache, then call
     * complete(). On Pull::Wait, sleep briefly and pull again — a
     * peer death turns Wait into Job once its claim passes the
     * TTL. Heartbeats all claims held by this process.
     */
    Pull next(size_t &out_index);

    /**
     * Mark the job pulled as @p index done: releases its claim.
     * The result must already be in the cache (store first,
     * release second).
     */
    void complete(size_t index);

    /** Pool jobs not yet observed cached by this queue (includes
     * jobs currently running anywhere). */
    size_t pending() const;

    /** Jobs this queue observed leaving the pool because a peer
     * cached their result (vs ran locally). */
    size_t completedByPeers() const { return nPeer.load(); }

  private:
    const ResultCache &cache;
    ClaimDir &claims;
    /** Pool entries in descending cost order, with bookkeeping. */
    struct Entry
    {
        PoolJob job;
        /** Result observed in the cache (done, whoever ran it). */
        bool done = false;
        /** Pulled by a thread of this process and not completed
         * yet (never handed out twice locally). */
        bool running = false;
    };
    mutable Mutex mutex;
    /** The pool, kept in descending cost order by push(). */
    std::vector<Entry> entries GUARDED_BY(mutex);
    std::atomic<size_t> nPeer{0};
};

} // namespace mprobe

#endif // CAMPAIGN_CLAIMS_HH
