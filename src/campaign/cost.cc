/**
 * @file
 * Cost-weighted shard partitioning.
 */

#include "campaign/cost.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.hh"

namespace mprobe
{

std::vector<std::vector<size_t>>
costStripedPartition(const std::vector<double> &costs, int count)
{
    if (count < 1)
        fatal(cat("costStripedPartition: bad shard count ", count));
    std::vector<std::vector<size_t>> shards(
        static_cast<size_t>(count));

    // Descending cost, ties broken by ascending index: the order is
    // a pure function of the costs, never of scheduling, so every
    // shard computes the identical partition independently.
    std::vector<size_t> order(costs.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return costs[a] > costs[b];
                     });

    // LPT greedy: each job to the currently lightest shard (ties to
    // the lowest shard number, which std::min_element guarantees).
    std::vector<double> load(static_cast<size_t>(count), 0.0);
    for (size_t i : order) {
        size_t s = static_cast<size_t>(
            std::min_element(load.begin(), load.end()) -
            load.begin());
        shards[s].push_back(i);
        load[s] += costs[i];
    }

    // Ascending index order within each shard keeps job/sample
    // listings in natural campaign order; runJobs re-sorts its
    // local execution queue longest-first separately.
    for (auto &s : shards)
        std::sort(s.begin(), s.end());
    return shards;
}

std::vector<size_t>
costStripedShard(const std::vector<double> &costs, int index,
                 int count)
{
    if (index < 0 || index >= count)
        fatal(cat("costStripedShard: bad shard ", index, "/",
                  count));
    return costStripedPartition(costs,
                                count)[static_cast<size_t>(index)];
}

double
summedCost(const std::vector<double> &costs,
           const std::vector<size_t> &indices)
{
    double total = 0.0;
    for (size_t i : indices)
        total += costs[i];
    return total;
}

CostCalibration
calibrateJobCostModel(const std::vector<JobTiming> &timings)
{
    CostCalibration out;
    // x = deployed hardware threads x body size (what the simulator
    // actually scales with), y = measured wall seconds.
    std::vector<double> xs, ys;
    for (const auto &t : timings) {
        if (t.cached || t.seconds <= 0.0)
            continue;
        xs.push_back(static_cast<double>(t.config.threads()) *
                     static_cast<double>(t.bodySize));
        ys.push_back(t.seconds);
    }
    out.used = xs.size();
    if (xs.size() < 2)
        return out;

    double xm = 0.0, ym = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        xm += xs[i];
        ym += ys[i];
    }
    xm /= static_cast<double>(xs.size());
    ym /= static_cast<double>(ys.size());
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - xm) * (xs[i] - xm);
        sxy += (xs[i] - xm) * (ys[i] - ym);
        syy += (ys[i] - ym) * (ys[i] - ym);
    }
    // All jobs the same size (sxx == 0) or wall time shrinking with
    // work (slope <= 0, pure noise): no usable fit.
    if (sxx <= 0.0)
        return out;
    double slope = sxy / sxx;
    if (slope <= 0.0)
        return out;
    double intercept = ym - slope * xm;

    out.ok = true;
    out.perSlotThreadSeconds = slope;
    out.perJobSeconds = intercept;
    out.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
    out.fitted.perSlotThread = 1.0;
    // A negative intercept (tiny jobs dominated by noise) would
    // make small jobs "free"; clamp to the meaningful range.
    out.fitted.perJob = std::max(0.0, intercept / slope);
    return out;
}

double
costImbalance(const std::vector<double> &costs,
              const std::vector<std::vector<size_t>> &shards)
{
    if (shards.empty())
        return 1.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    for (const auto &s : shards) {
        double c = summedCost(costs, s);
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    if (hi == 0.0)
        return 1.0;
    if (lo == 0.0)
        return std::numeric_limits<double>::infinity();
    return hi / lo;
}

} // namespace mprobe
