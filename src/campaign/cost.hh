/**
 * @file
 * Per-job cost estimation and cost-weighted shard scheduling.
 *
 * Round-robin sharding by expansion index balances job *counts*,
 * but campaign jobs are far from uniform: simulating a workload on
 * an 8-core SMT-4 configuration walks 32 hardware-thread contexts
 * over the loop body, while the 1-1 configuration walks one. A
 * mixed-config campaign round-robined across shards can leave one
 * shard with several times the wall time of another.
 *
 * The JobCostModel estimates the relative cost of one (workload,
 * configuration) job from what the simulator actually scales with —
 * deployed hardware threads x loop body size — and the partition
 * functions below turn those estimates into a deterministic
 * LPT-style (longest processing time first) greedy striping:
 * jobs are taken in descending cost order and each is assigned to
 * the currently lightest shard. For a fixed job list the partition
 * is a pure function of the costs, so every shard of one campaign
 * computes the identical partition independently, the union over
 * all shards is exactly the unsharded job list, and `--merge` stays
 * byte-identical to an unsharded run (the manifest, not the
 * partition, dictates export order).
 */

#ifndef CAMPAIGN_COST_HH
#define CAMPAIGN_COST_HH

#include <cstddef>
#include <vector>

#include "sim/machine.hh"

namespace mprobe
{

/**
 * Relative cost of one measurement job. Units are arbitrary (only
 * ratios matter for scheduling); the default weights make one
 * simulated body slot on one hardware thread cost 1.
 */
struct JobCostModel
{
    /** Fixed per-job overhead (dispatch, cache probe, sample I/O),
     * in body-slot units. */
    double perJob = 64.0;
    /** Cost per (body instruction x deployed hardware thread). */
    double perSlotThread = 1.0;

    /** Estimated cost of deploying a @p body_size-instruction loop
     * on @p cfg. */
    double
    estimate(const ChipConfig &cfg, size_t body_size) const
    {
        return perJob + perSlotThread *
                            static_cast<double>(cfg.threads()) *
                            static_cast<double>(body_size);
    }
};

/**
 * Deterministic LPT greedy partition of jobs with the given
 * @p costs into @p count shards. Jobs are visited in descending
 * cost order (ties by ascending index) and each is assigned to the
 * shard with the smallest accumulated cost (ties by ascending shard
 * number); each shard's index list comes back sorted ascending.
 * The shards are disjoint and cover [0, costs.size()) exactly.
 */
std::vector<std::vector<size_t>>
costStripedPartition(const std::vector<double> &costs, int count);

/** Shard @p index of costStripedPartition(costs, count). */
std::vector<size_t>
costStripedShard(const std::vector<double> &costs, int index,
                 int count);

/** Total cost of the jobs at @p indices. */
double summedCost(const std::vector<double> &costs,
                  const std::vector<size_t> &indices);

/**
 * Imbalance of a partition: max over min summed shard cost (>= 1;
 * 1 is perfect balance). An empty shard yields +inf unless every
 * shard is empty (ratio 1). The shard-balance CI smoke and the
 * --plan dry run report this number for the cost-striped schedule
 * next to the round-robin baseline.
 */
double costImbalance(const std::vector<double> &costs,
                     const std::vector<std::vector<size_t>> &shards);

/** One measured job wall time, as recorded in the campaign's
 * --metrics-json (cache hits are excluded from calibration: they
 * measure the filesystem, not the simulator). */
struct JobTiming
{
    ChipConfig config;
    size_t bodySize = 0;
    double seconds = 0.0;
    bool cached = false;
};

/** What calibrateJobCostModel fitted. */
struct CostCalibration
{
    /** False when the timings cannot support a fit (fewer than two
     * distinct non-cached sizes, or a non-positive slope). */
    bool ok = false;
    /** Non-cached timings the fit used. */
    size_t used = 0;
    /** Fixed per-job overhead in seconds (the intercept). */
    double perJobSeconds = 0.0;
    /** Seconds per (body instruction x deployed hardware thread)
     * (the slope). */
    double perSlotThreadSeconds = 0.0;
    /** Coefficient of determination of the fit. */
    double r2 = 0.0;
    /** The refitted model, normalized like the default (one
     * slot-thread unit costs 1): perJob = intercept / slope. */
    JobCostModel fitted;
};

/**
 * Refit the JobCostModel constants from measured per-job wall
 * times: ordinary least squares of seconds against
 * threads x body_size over the non-cached timings — the ROADMAP's
 * "calibrate the cost model from measured wall times" step,
 * surfaced as `mprobe_campaign --calibrate`. Only the
 * perJob/perSlotThread *ratio* matters for scheduling, so the
 * fitted model is normalized to perSlotThread = 1.
 */
CostCalibration
calibrateJobCostModel(const std::vector<JobTiming> &timings);

} // namespace mprobe

#endif // CAMPAIGN_COST_HH
