/**
 * @file
 * Per-job cost estimation and cost-weighted shard scheduling.
 *
 * Round-robin sharding by expansion index balances job *counts*,
 * but campaign jobs are far from uniform: simulating a workload on
 * an 8-core SMT-4 configuration walks 32 hardware-thread contexts
 * over the loop body, while the 1-1 configuration walks one. A
 * mixed-config campaign round-robined across shards can leave one
 * shard with several times the wall time of another.
 *
 * The JobCostModel estimates the relative cost of one (workload,
 * configuration) job from what the simulator actually scales with —
 * deployed hardware threads x loop body size — and the partition
 * functions below turn those estimates into a deterministic
 * LPT-style (longest processing time first) greedy striping:
 * jobs are taken in descending cost order and each is assigned to
 * the currently lightest shard. For a fixed job list the partition
 * is a pure function of the costs, so every shard of one campaign
 * computes the identical partition independently, the union over
 * all shards is exactly the unsharded job list, and `--merge` stays
 * byte-identical to an unsharded run (the manifest, not the
 * partition, dictates export order).
 */

#ifndef CAMPAIGN_COST_HH
#define CAMPAIGN_COST_HH

#include <cstddef>
#include <vector>

#include "sim/machine.hh"

namespace mprobe
{

/**
 * Relative cost of one measurement job. Units are arbitrary (only
 * ratios matter for scheduling); the default weights make one
 * simulated body slot on one hardware thread cost 1.
 */
struct JobCostModel
{
    /** Fixed per-job overhead (dispatch, cache probe, sample I/O),
     * in body-slot units. */
    double perJob = 64.0;
    /** Cost per (body instruction x deployed hardware thread). */
    double perSlotThread = 1.0;

    /** Estimated cost of deploying a @p body_size-instruction loop
     * on @p cfg. */
    double
    estimate(const ChipConfig &cfg, size_t body_size) const
    {
        return perJob + perSlotThread *
                            static_cast<double>(cfg.threads()) *
                            static_cast<double>(body_size);
    }
};

/**
 * Deterministic LPT greedy partition of jobs with the given
 * @p costs into @p count shards. Jobs are visited in descending
 * cost order (ties by ascending index) and each is assigned to the
 * shard with the smallest accumulated cost (ties by ascending shard
 * number); each shard's index list comes back sorted ascending.
 * The shards are disjoint and cover [0, costs.size()) exactly.
 */
std::vector<std::vector<size_t>>
costStripedPartition(const std::vector<double> &costs, int count);

/** Shard @p index of costStripedPartition(costs, count). */
std::vector<size_t>
costStripedShard(const std::vector<double> &costs, int index,
                 int count);

/** Total cost of the jobs at @p indices. */
double summedCost(const std::vector<double> &costs,
                  const std::vector<size_t> &indices);

/**
 * Imbalance of a partition: max over min summed shard cost (>= 1;
 * 1 is perfect balance). An empty shard yields +inf unless every
 * shard is empty (ratio 1). The shard-balance CI smoke and the
 * --plan dry run report this number for the cost-striped schedule
 * next to the round-robin baseline.
 */
double costImbalance(const std::vector<double> &costs,
                     const std::vector<std::vector<size_t>> &shards);

} // namespace mprobe

#endif // CAMPAIGN_COST_HH
