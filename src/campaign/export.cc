/**
 * @file
 * Sample exporters.
 */

#include "campaign/export.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "dvfs/sweep.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

namespace
{

/** Shortest round-trippable formatting for doubles. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** CSV quoting per RFC 4180 (only when needed). */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
exportSamplesCsv(std::ostream &os,
                 const std::vector<Sample> &samples)
{
    os << "workload,cores,smt";
    for (const auto &name : dynamicFeatureNames())
        os << "," << toLower(name) << "_gevps";
    os << ",power_watts,instr_gips,core_ipc"
          ",freq_ghz,epi_j,edp,vdd_volts,reliable\n";
    for (const auto &s : samples) {
        os << csvField(s.workload) << "," << s.config.cores << ","
           << s.config.smt;
        for (double r : s.rates)
            os << "," << num(r);
        os << "," << num(s.powerWatts) << "," << num(s.instrGips)
           << "," << num(s.coreIpc) << "," << num(s.freqGhz)
           << "," << num(sampleEpiJoules(s)) << ","
           << num(sampleEdp(s)) << "," << num(s.vddVolts) << ","
           << (s.reliable ? 1 : 0) << "\n";
    }
}

void
exportSamplesJson(std::ostream &os,
                  const std::vector<Sample> &samples)
{
    os << "[\n";
    for (size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        os << "  {\"workload\": \"" << jsonEscape(s.workload)
           << "\", \"cores\": " << s.config.cores
           << ", \"smt\": " << s.config.smt << ", \"rates\": {";
        const auto &names = dynamicFeatureNames();
        for (size_t j = 0; j < s.rates.size(); ++j) {
            os << (j ? ", " : "") << "\""
               << (j < names.size() ? names[j]
                                    : cat("rate", j))
               << "\": " << num(s.rates[j]);
        }
        os << "}, \"power_watts\": " << num(s.powerWatts)
           << ", \"instr_gips\": " << num(s.instrGips)
           << ", \"core_ipc\": " << num(s.coreIpc)
           << ", \"freq_ghz\": " << num(s.freqGhz)
           << ", \"epi_j\": " << num(sampleEpiJoules(s))
           << ", \"edp\": " << num(sampleEdp(s))
           << ", \"vdd_volts\": " << num(s.vddVolts)
           << ", \"reliable\": " << (s.reliable ? "true" : "false")
           << "}"
           << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

void
exportSamples(const std::string &path,
              const std::vector<Sample> &samples,
              SampleFormat format)
{
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot write samples to '", path, "'"));
    bool json = format == SampleFormat::Json ||
                (format == SampleFormat::Auto &&
                 path.size() >= 5 &&
                 path.compare(path.size() - 5, 5, ".json") == 0);
    if (json)
        exportSamplesJson(f, samples);
    else
        exportSamplesCsv(f, samples);
    if (!f)
        fatal(cat("error while writing '", path, "'"));
}

} // namespace mprobe
