/**
 * @file
 * Structured sample export.
 *
 * Campaign results feed two consumers: the power models (in
 * process, as std::vector<Sample>) and figure/analysis scripts (out
 * of process). For the latter, samples export to CSV (one row per
 * sample, spreadsheet/pandas-ready) and JSON (an array of objects,
 * with the activity rates keyed by the paper's component names).
 */

#ifndef CAMPAIGN_EXPORT_HH
#define CAMPAIGN_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "power/sample.hh"

namespace mprobe
{

/** Write samples as CSV with a header row. */
void exportSamplesCsv(std::ostream &os,
                      const std::vector<Sample> &samples);

/** Write samples as a JSON array of objects. */
void exportSamplesJson(std::ostream &os,
                       const std::vector<Sample> &samples);

/** Export file format. */
enum class SampleFormat
{
    Auto, //!< by extension: ".json" is JSON, anything else CSV
    Csv,
    Json
};

/**
 * Write samples to @p path in @p format. Fatal on I/O errors.
 */
void exportSamples(const std::string &path,
                   const std::vector<Sample> &samples,
                   SampleFormat format = SampleFormat::Auto);

/** JSON string escaping (exposed for tests). */
std::string jsonEscape(const std::string &s);

} // namespace mprobe

#endif // CAMPAIGN_EXPORT_HH
