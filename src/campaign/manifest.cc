/**
 * @file
 * Campaign manifest serialization.
 */

#include "campaign/manifest.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/fileio.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

std::string
manifestPath(const std::string &cacheDir)
{
    return cacheDir + "/campaign.manifest";
}

std::string
manifestToText(const CampaignManifest &m)
{
    std::ostringstream os;
    char key[24];
    std::snprintf(key, sizeof key, "%016" PRIx64, m.fingerprint);
    os << "manifest v1\n"
       << "spec " << m.spec << "\n"
       << "fingerprint " << key << "\n"
       << "jobs " << m.entries.size() << "\n";
    for (const auto &e : m.entries) {
        std::snprintf(key, sizeof key, "%016" PRIx64, e.key);
        // The workload name goes last: it is the only field that
        // may contain spaces. Swept jobs append "@freq" to the
        // config token; nominal-point jobs keep the pre-DVFS form.
        os << "job " << key << " " << e.config.cores << "-"
           << e.config.smt;
        if (e.freqGhz > 0.0) {
            char freq[40];
            std::snprintf(freq, sizeof freq, "%.17g", e.freqGhz);
            os << "@" << freq;
        }
        // Off-curve jobs append a V-terminated "@vddV" segment; the
        // trailing V disambiguates a lone vdd segment from a freq.
        if (e.vdd > 0.0) {
            char vdd[40];
            std::snprintf(vdd, sizeof vdd, "%.17g", e.vdd);
            os << "@" << vdd << "V";
        }
        os << " " << e.source << "\t" << e.workload << "\n";
    }
    return os.str();
}

bool
manifestFromText(const std::string &text, CampaignManifest &out)
{
    std::istringstream in(text);
    std::string line;
    size_t declared = 0;
    bool saw_header = false, saw_jobs = false;
    while (std::getline(in, line)) {
        if (trim(line).empty())
            continue;
        if (!saw_header) {
            if (trim(line) != "manifest v1")
                return false;
            saw_header = true;
            continue;
        }
        auto sp = line.find(' ');
        if (sp == std::string::npos)
            return false;
        std::string key = line.substr(0, sp);
        std::string val = line.substr(sp + 1);
        if (key == "spec") {
            out.spec = trim(val);
        } else if (key == "fingerprint") {
            try {
                out.fingerprint =
                    std::stoull(trim(val), nullptr, 16);
            } catch (const std::exception &) {
                return false;
            }
        } else if (key == "jobs") {
            try {
                declared = std::stoul(trim(val));
            } catch (const std::exception &) {
                return false;
            }
            saw_jobs = true;
        } else if (key == "job") {
            // "<key> <cores>-<smt> <source>\t<workload>"
            auto tab = val.find('\t');
            if (tab == std::string::npos)
                return false;
            ManifestEntry e;
            e.workload = val.substr(tab + 1);
            auto head = splitWs(val.substr(0, tab));
            if (head.size() < 3)
                return false;
            // Config token: "cores-smt" plus up to two "@" sweep
            // segments — "@freq" (swept clock), "@vddV" (off-curve
            // voltage, V-terminated) or "@freq@vddV" (both). With
            // one segment, the trailing V decides which axis it is;
            // with two, the order is fixed and the second must end
            // in V.
            auto seg = split(head[1], '@');
            if (seg.size() < 1 || seg.size() > 3)
                return false;
            std::string freq_tok, vdd_tok;
            auto take_vdd = [&](const std::string &s) {
                if (s.size() < 2 || s.back() != 'V')
                    return false;
                vdd_tok = s.substr(0, s.size() - 1);
                return true;
            };
            if (seg.size() == 2) {
                if (seg[1].empty())
                    return false;
                if (!take_vdd(seg[1]))
                    freq_tok = seg[1];
            } else if (seg.size() == 3) {
                freq_tok = seg[1];
                if (!take_vdd(seg[2]))
                    return false;
            }
            auto cfg = split(seg[0], '-');
            if (cfg.size() != 2)
                return false;
            try {
                e.key = std::stoull(head[0], nullptr, 16);
                e.config.cores = std::stoi(cfg[0]);
                e.config.smt = std::stoi(cfg[1]);
                if (!freq_tok.empty())
                    e.freqGhz = std::stod(freq_tok);
                if (!vdd_tok.empty())
                    e.vdd = std::stod(vdd_tok);
            } catch (const std::exception &) {
                return false;
            }
            // A sweep suffix promises a swept operating point; no
            // campaign sweeps a non-positive clock or voltage, so
            // such an entry is corrupt (an absent suffix is the
            // on-curve nominal point, not corruption).
            if (!freq_tok.empty() && e.freqGhz <= 0.0)
                return false;
            if (!vdd_tok.empty() && e.vdd <= 0.0)
                return false;
            // No campaign ever plans a job on fewer than one core
            // or SMT thread; such an entry (e.g. a corrupt "0-0")
            // is a parse failure, not a ChipConfig{0,0} job.
            if (e.config.cores < 1 || e.config.smt < 1)
                return false;
            // The source may itself contain spaces ("Simple
            // Integer"): everything between the config and the tab.
            auto src_at = val.find(head[1]) + head[1].size();
            e.source = trim(val.substr(src_at, tab - src_at));
            out.entries.push_back(std::move(e));
        } else {
            return false;
        }
    }
    // A torn manifest (interrupt mid-write, pre-rename this cannot
    // happen, but belt and braces) must not pass as complete.
    return saw_header && saw_jobs && out.entries.size() == declared;
}

void
saveManifest(const std::string &path, const CampaignManifest &m)
{
    atomicWriteFile(path, manifestToText(m), "manifest");
}

void
mergeSaveManifest(const std::string &path,
                  const CampaignManifest &m)
{
    CampaignManifest existing;
    if (!loadManifest(path, existing) ||
        existing.fingerprint != m.fingerprint) {
        saveManifest(path, m);
        return;
    }
    std::set<uint64_t> seen;
    for (const auto &e : existing.entries)
        seen.insert(e.key);
    bool grew = false;
    for (const auto &e : m.entries)
        if (seen.insert(e.key).second) {
            existing.entries.push_back(e);
            grew = true;
        }
    if (grew)
        saveManifest(path, existing);
}

bool
loadManifest(const std::string &path, CampaignManifest &out)
{
    std::ifstream f(path);
    if (!f)
        return false;
    std::ostringstream os;
    os << f.rdbuf();
    CampaignManifest m;
    if (!manifestFromText(os.str(), m))
        return false;
    out = std::move(m);
    return true;
}

std::vector<ManifestEntry>
remainingJobs(const CampaignManifest &m, const ResultCache &cache)
{
    std::vector<ManifestEntry> out;
    for (const auto &e : m.entries)
        if (!cache.contains(e.key))
            out.push_back(e);
    return out;
}

ManifestCollection
collectManifestSamples(const CampaignManifest &m,
                       const ResultCache &cache)
{
    ManifestCollection out;
    out.samples.reserve(m.entries.size());
    for (const auto &e : m.entries) {
        Sample s;
        if (cache.peek(e.key, s))
            out.samples.push_back(std::move(s));
        else
            out.missing.push_back(e);
    }
    return out;
}

} // namespace mprobe
