/**
 * @file
 * Campaign job manifest: resume reporting for interrupted runs.
 *
 * A campaign's measurement phase is restartable by construction —
 * every completed job lives in the content-hash result cache — but
 * the cache alone cannot answer "what is left?": it only knows the
 * keys it holds, not the keys the campaign wanted. The manifest
 * closes that gap. Right before measurement starts, the engine
 * persists the full expanded job list (key, workload, source,
 * configuration) next to the cache; after an interrupt, the
 * manifest minus the cache contents is exactly the remaining work,
 * which `mprobe_campaign --resume` lists and completes.
 *
 * The manifest is written atomically (write-then-rename, like cache
 * entries), so a run interrupted mid-write never leaves a torn
 * manifest behind.
 */

#ifndef CAMPAIGN_MANIFEST_HH
#define CAMPAIGN_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "sim/machine.hh"

namespace mprobe
{

/** One planned measurement of a campaign run. */
struct ManifestEntry
{
    /** Content hash of the job (the cache key). */
    uint64_t key = 0;
    ChipConfig config;
    /** Workload source label ("Random", "SPEC", "adhoc", ...). */
    std::string source;
    /** Program name (may contain spaces; serialized last). */
    std::string workload;
    /**
     * Swept core frequency in GHz; 0 = the machine's nominal
     * operating point. Serialized as a "@freq" suffix on the
     * config token only when non-zero, so pre-DVFS manifests (no
     * suffix anywhere) parse unchanged as nominal-point jobs.
     */
    double freqGhz = 0.0;
    /**
     * Swept supply voltage in volts; 0 = on-curve. Serialized as a
     * V-terminated "@vddV" suffix on the config token only when
     * non-zero ("8-4@2.5@0.92V" for both axes, "8-4@0.92V" for vdd
     * alone), so pre-undervolting manifests parse unchanged as
     * on-curve jobs.
     */
    double vdd = 0.0;
};

/** The persisted job list of one campaign run. */
struct CampaignManifest
{
    /** Human-readable spec summary, for mismatch messages. */
    std::string spec;
    /**
     * Content fingerprint of (spec, machine) — everything that
     * determines the job keys (workload sources and knobs, configs,
     * salt, machine; never threads or cache location). Resume
     * compares this, not the summary string: a different worker
     * count is the same campaign, a different body size is not.
     */
    uint64_t fingerprint = 0;
    std::vector<ManifestEntry> entries;
};

/** Manifest location inside a cache directory. */
std::string manifestPath(const std::string &cacheDir);

/** Serialize a manifest to its text representation. */
std::string manifestToText(const CampaignManifest &m);

/**
 * Parse a serialized manifest. Returns false (leaving @p out
 * partially filled) on malformed input.
 */
bool manifestFromText(const std::string &text, CampaignManifest &out);

/** Atomically write @p m to @p path (warn-and-drop on I/O errors). */
void saveManifest(const std::string &path, const CampaignManifest &m);

/**
 * Save @p m, merging with an existing manifest at @p path when that
 * manifest carries the same fingerprint: existing entries keep
 * their order, entries of @p m with unseen keys are appended. A
 * missing or different-fingerprint manifest is overwritten. This
 * lets the measure() overloads accumulate one manifest across many
 * calls (the model pipeline issues several per run) and lets every
 * shard of one campaign persist the identical full job list.
 * Concurrent same-fingerprint writers with *different* entry sets
 * can lose each other's additions (load-merge-store is not
 * transactional); shards of one campaign write identical content,
 * so the race is harmless there.
 */
void mergeSaveManifest(const std::string &path,
                       const CampaignManifest &m);

/** Load a manifest; returns false if missing or malformed. */
bool loadManifest(const std::string &path, CampaignManifest &out);

/** What collectManifestSamples found in the cache. */
struct ManifestCollection
{
    /** One sample per covered entry, in manifest order. */
    std::vector<Sample> samples;
    /** Entries whose cache files are missing or corrupt. */
    std::vector<ManifestEntry> missing;
};

/**
 * Resolve every manifest entry against the cache, in manifest
 * order — the merge step of a sharded campaign. When missing comes
 * back empty, samples is the complete campaign: exporting it is
 * bit-identical to the export of an unsharded run, because the
 * manifest preserves job order and cached samples round-trip
 * exactly. Does not touch @p cache statistics.
 */
ManifestCollection
collectManifestSamples(const CampaignManifest &m,
                       const ResultCache &cache);

/**
 * Entries of @p m whose results are not yet in @p cache — the jobs
 * an interrupted campaign still has to run. Presence is judged by
 * cache-entry existence; a corrupt entry is re-measured at run time
 * anyway.
 */
std::vector<ManifestEntry>
remainingJobs(const CampaignManifest &m, const ResultCache &cache);

} // namespace mprobe

#endif // CAMPAIGN_MANIFEST_HH
