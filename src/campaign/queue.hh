/**
 * @file
 * Work-queue parallel-for for campaign jobs.
 *
 * The minimal primitive the campaign engine needs: N workers pull
 * indices off a shared atomic counter until the range is drained.
 * Callers own all synchronization of the work itself; the intended
 * pattern is "each index writes only its own pre-allocated result
 * slot", which needs no locking and keeps output order (and thus
 * campaign results) independent of scheduling.
 */

#ifndef CAMPAIGN_QUEUE_HH
#define CAMPAIGN_QUEUE_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_annotations.hh"

namespace mprobe
{

/**
 * Resolve a worker-count knob: negative is a caller error (fatal,
 * tagged with @p what), 0 means one worker per hardware thread,
 * anything else passes through. Campaign measurement and suite
 * generation share this policy.
 */
inline int
resolveThreads(int threads, const char *what)
{
    if (threads < 0)
        fatal(cat(what, ": threads must be >= 0 (0 = auto)"));
    if (threads == 0)
        threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    return threads;
}

/**
 * Run fn(0) .. fn(n-1) across @p threads workers; returns when all
 * indices are done. threads <= 1 runs inline on the caller's thread
 * (no pool), which is also the reference behaviour parallel runs
 * must reproduce bit-for-bit.
 *
 * An exception thrown by @p fn on a worker is captured and rethrown
 * on the calling thread after all workers have joined (an uncaught
 * exception inside std::thread would std::terminate the process).
 * Only the first exception survives; once one is captured, workers
 * stop pulling new indices, so some indices may never run. Callers
 * must not assume partial results are complete on that path.
 *
 * @p what labels the work for the abandonment warning emitted
 * before the rethrow ("k of n indices completed, m abandoned").
 * Callers whose indices *build* state that outlives the call —
 * program construction, suite generation — must pass it: without
 * the warning, a caller that swallows the exception upstream could
 * mistake the partially-built state for a complete result. nullptr
 * (pure measurement into discarded state, tests) logs nothing.
 */
inline void
parallelFor(int threads, size_t n,
            const std::function<void(size_t)> &fn,
            const char *what = nullptr)
{
    // Task slices share one literal name per call site ("task" when
    // unlabeled): the trace viewer groups them; the span arg holds
    // the index.
    const char *slice = what ? what : "task";
    if (threads <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i) {
            try {
                obs::TraceSpan span(slice);
                span.note("index", static_cast<double>(i));
                fn(i);
            } catch (...) {
                // The serial path abandons indices i+1..n-1 the
                // same way the pool does: say so before the
                // exception propagates.
                if (what && n > 0)
                    warn(cat(what, ": index ", i, " failed; ", i,
                             " of ", n, " indices completed, ",
                             n - i - 1,
                             " abandoned — partial results are "
                             "incomplete"));
                throw;
            }
        }
        return;
    }
    if (static_cast<size_t>(threads) > n)
        threads = static_cast<int>(n);

    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::atomic<size_t> thrown{0};
    /** First-failure capture shared by all workers. */
    struct Failure
    {
        /** Raised (relaxed) once any exception is captured; the
         * stop signal workers poll between indices. */
        std::atomic<bool> raised{false};
        Mutex mutex;
        /** The first exception captured, rethrown after join. */
        std::exception_ptr first GUARDED_BY(mutex);
    } failure;
    auto worker = [&]() {
        while (!failure.raised.load(std::memory_order_relaxed)) {
            size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                {
                    obs::TraceSpan span(slice);
                    span.note("index", static_cast<double>(i));
                    fn(i);
                }
                completed.fetch_add(1);
            } catch (...) {
                thrown.fetch_add(1);
                MutexLock lock(failure.mutex);
                if (!failure.first)
                    failure.first = std::current_exception();
                failure.raised.store(true);
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    std::exception_ptr first;
    {
        // All workers joined; the lock is uncontended and keeps
        // the guarded read visible to the thread-safety analysis.
        MutexLock lock(failure.mutex);
        first = failure.first;
    }
    if (first) {
        if (what) {
            // Abandoned = never ran at all: indices that ran and
            // failed are counted separately, matching the serial
            // path's report of the same failure.
            size_t done = completed.load();
            size_t died = thrown.load();
            warn(cat(what, ": ", died,
                     died == 1 ? " index" : " indices",
                     " failed; ", done, " of ", n,
                     " indices completed, ", n - done - died,
                     " abandoned — partial results are "
                     "incomplete"));
        }
        std::rethrow_exception(first);
    }
}

} // namespace mprobe

#endif // CAMPAIGN_QUEUE_HH
