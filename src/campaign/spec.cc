/**
 * @file
 * Campaign spec parsing.
 */

#include "campaign/spec.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

std::string
CampaignSpec::contentSummary() const
{
    std::ostringstream os;
    os << "campaign: ";
    bool any = false;
    auto sep = [&]() { return any ? " + " : (any = true, ""); };
    if (suiteEnabled) {
        os << sep();
        if (categories.empty()) {
            os << "full Table-2 suite";
        } else {
            os << "suite[";
            for (size_t i = 0; i < categories.size(); ++i)
                os << (i ? "," : "")
                   << benchCategoryName(categories[i]);
            os << "]";
        }
    }
    if (specProxies)
        os << sep() << "SPEC proxies";
    if (daxpy)
        os << sep() << "DAXPY";
    if (extremes)
        os << sep() << "extremes";
    // Measurement-only specs (benches, the model pipeline) select
    // no generated source; their workloads arrive via measure().
    if (!any)
        os << "adhoc measurement";
    os << " x " << configs.size() << " configs";
    if (!freqs.empty())
        os << " x " << freqs.size()
           << (freqs.size() == 1 ? " freq" : " freqs");
    if (!vdds.empty())
        os << " x " << vdds.size()
           << (vdds.size() == 1 ? " vdd" : " vdds");
    return os.str();
}

std::string
CampaignSpec::summary() const
{
    std::ostringstream os;
    os << contentSummary() << ", ";
    if (threads == 0)
        os << "auto threads";
    else
        os << threads << (threads == 1 ? " thread" : " threads");
    if (!cacheDir.empty())
        os << ", cache " << cacheDir;
    if (sharded())
        os << ", shard " << shardIndex << "/" << shardCount;
    if (serve)
        os << ", serve (claim TTL " << claimTtlSeconds << "s)";
    return os.str();
}

std::vector<ChipConfig>
parseConfigList(const std::string &s, const std::string &context)
{
    if (toLower(trim(s)) == "all")
        return ChipConfig::all();
    std::vector<ChipConfig> out;
    for (const auto &c : split(s, ',')) {
        auto parts = split(trim(c), '-');
        if (parts.size() != 2)
            fatal(cat("bad config '", trim(c),
                      "' (want cores-smt) in ", context));
        out.push_back(
            {static_cast<int>(parseInt(parts[0], context)),
             static_cast<int>(parseInt(parts[1], context))});
    }
    if (out.empty())
        fatal(cat("empty config list in ", context));
    return out;
}

std::vector<double>
parseFreqList(const std::string &s, const std::string &context)
{
    std::vector<double> out;
    for (const auto &f : split(s, ',')) {
        double ghz = parseDouble(trim(f), context);
        if (ghz <= 0.0)
            fatal(cat("frequency must be > 0 GHz, got '", trim(f),
                      "' in ", context));
        for (double seen : out)
            if (seen == ghz)
                fatal(cat("duplicate frequency ", trim(f), " in ",
                          context));
        out.push_back(ghz);
    }
    if (out.empty())
        fatal(cat("empty frequency list in ", context));
    return out;
}

std::vector<double>
parseVddList(const std::string &s, const std::string &context)
{
    std::vector<double> out;
    for (const auto &v : split(s, ',')) {
        double volts = parseDouble(trim(v), context);
        if (volts <= 0.0)
            fatal(cat("voltage must be > 0 V, got '", trim(v),
                      "' in ", context));
        for (double seen : out)
            if (seen == volts)
                fatal(cat("duplicate voltage ", trim(v), " in ",
                          context));
        out.push_back(volts);
    }
    if (out.empty())
        fatal(cat("empty voltage list in ", context));
    return out;
}

void
parseShard(const std::string &s, const std::string &context,
           int &index, int &count)
{
    auto parts = split(trim(s), '/');
    if (parts.size() != 2)
        fatal(cat("bad shard '", trim(s),
                  "' (want index/count, e.g. 0/4) in ", context));
    index = static_cast<int>(parseInt(parts[0], context));
    count = static_cast<int>(parseInt(parts[1], context));
    if (count < 1)
        fatal(cat("shard count must be >= 1 in ", context));
    if (index < 0 || index >= count)
        fatal(cat("shard index ", index, " out of range [0, ",
                  count, ") in ", context));
}

BenchCategory
parseBenchCategory(const std::string &s, const std::string &context)
{
    std::string t = toLower(trim(s));
    if (t == "simpleint" || t == "simple_integer")
        return BenchCategory::SimpleInteger;
    if (t == "complexint" || t == "complex_integer")
        return BenchCategory::ComplexInteger;
    if (t == "integer")
        return BenchCategory::Integer;
    if (t == "floatvector" || t == "float_vector" || t == "fpvector")
        return BenchCategory::FloatVector;
    if (t == "unitmix" || t == "unit_mix")
        return BenchCategory::UnitMix;
    if (t == "memory" || t == "memory_group")
        return BenchCategory::MemoryGroup;
    if (t == "random")
        return BenchCategory::Random;
    fatal(cat("unknown suite category '", trim(s), "' in ",
              context));
}

CampaignSpec
parseCampaignSpecText(const std::string &text,
                      const std::string &origin)
{
    CampaignSpec spec;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    bool saw_source = false;

    while (std::getline(in, line)) {
        ++lineno;
        std::string context = cat(origin, ":", lineno);
        std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        // Split on the first '=' only: values may contain '='
        // (e.g. cache_dir paths).
        auto eq = s.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal(cat("expected 'key = value', got '", s, "' in ",
                      context));
        std::string key = toLower(trim(s.substr(0, eq)));
        std::string val = trim(s.substr(eq + 1));

        if (key == "categories") {
            saw_source = true;
            spec.suiteEnabled = false;
            spec.categories.clear();
            for (const auto &c : split(val, ',')) {
                std::string t = toLower(trim(c));
                if (t == "none")
                    continue;
                spec.suiteEnabled = true;
                if (t == "all") {
                    spec.categories.clear();
                    break;
                }
                spec.categories.push_back(
                    parseBenchCategory(t, context));
            }
        } else if (key == "spec_proxies") {
            saw_source = true;
            spec.specProxies = parseInt(val, context) != 0;
        } else if (key == "daxpy") {
            saw_source = true;
            spec.daxpy = parseInt(val, context) != 0;
        } else if (key == "extremes") {
            saw_source = true;
            spec.extremes = parseInt(val, context) != 0;
        } else if (key == "configs") {
            spec.configs = parseConfigList(val, context);
        } else if (key == "freqs") {
            spec.freqs = parseFreqList(val, context);
        } else if (key == "vdds") {
            spec.vdds = parseVddList(val, context);
        } else if (key == "threads") {
            spec.threads =
                static_cast<int>(parseInt(val, context));
            if (spec.threads < 0)
                fatal(cat("threads must be >= 0 (0 = auto) in ",
                          context));
        } else if (key == "cache_dir") {
            spec.cacheDir = val;
        } else if (key == "salt") {
            spec.salt =
                static_cast<uint64_t>(parseInt(val, context));
        } else if (key == "bootstrap") {
            spec.bootstrap = parseInt(val, context) != 0;
        } else if (key == "shard") {
            parseShard(val, context, spec.shardIndex,
                       spec.shardCount);
        } else if (key == "progress_seconds") {
            spec.progressSeconds = parseDouble(val, context);
            if (spec.progressSeconds < 0)
                fatal(cat("progress_seconds must be >= 0 "
                          "(0 = disabled) in ",
                          context));
        } else if (key == "serve") {
            spec.serve = parseInt(val, context) != 0;
        } else if (key == "claim_ttl_seconds") {
            spec.claimTtlSeconds = parseDouble(val, context);
            if (spec.claimTtlSeconds <= 0)
                fatal(cat("claim_ttl_seconds must be > 0 in ",
                          context));
        } else if (key == "seed") {
            spec.suite.seed =
                static_cast<uint64_t>(parseInt(val, context));
        } else if (key == "body_size") {
            spec.suite.bodySize =
                static_cast<size_t>(parseInt(val, context));
        } else if (key == "per_memory_group") {
            spec.suite.perMemoryGroup =
                static_cast<int>(parseInt(val, context));
        } else if (key == "memory_count") {
            spec.suite.memoryCount =
                static_cast<int>(parseInt(val, context));
        } else if (key == "random_count") {
            spec.suite.randomCount =
                static_cast<int>(parseInt(val, context));
        } else if (key == "ipc_search_budget") {
            spec.suite.ipcSearchBudget =
                static_cast<int>(parseInt(val, context));
        } else if (key == "ga_population") {
            spec.suite.gaPopulation =
                static_cast<int>(parseInt(val, context));
        } else if (key == "ga_generations") {
            spec.suite.gaGenerations =
                static_cast<int>(parseInt(val, context));
        } else if (key == "extend_unit_mix") {
            spec.suite.extendUnitMix = parseInt(val, context) != 0;
        } else {
            fatal(cat("unknown campaign key '", key, "' in ",
                      context));
        }
    }

    if (saw_source && !spec.suiteEnabled && !spec.specProxies &&
        !spec.daxpy && !spec.extremes)
        fatal(cat(origin, ": campaign spec selects no workloads"));

    // spec.categories reaches the suite generator via the Campaign
    // constructor (the single owner of that sync).
    return spec;
}

CampaignSpec
loadCampaignSpec(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(cat("cannot open campaign spec '", path, "'"));
    std::ostringstream os;
    os << f.rdbuf();
    return parseCampaignSpecText(os.str(), path);
}

} // namespace mprobe
