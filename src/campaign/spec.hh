/**
 * @file
 * Declarative experiment-campaign specification.
 *
 * A CampaignSpec describes a whole characterization campaign the way
 * the paper describes its methodology: which micro-benchmark sources
 * to generate (Table-2 suite categories, SPEC proxies, DAXPY
 * kernels, extreme cases), which CMP/SMT configurations to deploy
 * them on, and how to execute (worker threads, result cache). The
 * campaign engine expands it into independent (workload, config)
 * jobs.
 *
 * Specs can be built programmatically or parsed from a small
 * line-based file format:
 *
 *     # train.spec — memory + random training corpus
 *     categories  = memory, random
 *     configs     = all
 *     random_count = 40
 *     body_size   = 1024
 *     threads     = 4
 *     cache_dir   = .mprobe-cache
 */

#ifndef CAMPAIGN_SPEC_HH
#define CAMPAIGN_SPEC_HH

#include <string>
#include <vector>

#include "workloads/suite.hh"

namespace mprobe
{

/** What to generate, where to run it, how to execute. */
struct CampaignSpec
{
    /** @name Workload sources */
    /**@{*/
    /** Table-2 categories to generate (empty + suiteEnabled =
     * the whole suite). */
    std::vector<BenchCategory> categories;
    /** Generate Table-2 suite workloads at all. */
    bool suiteEnabled = true;
    /** Append the 28 SPEC CPU2006 proxies. */
    bool specProxies = false;
    /** Append the Section-6 DAXPY kernels. */
    bool daxpy = false;
    /** Append the six extreme-activity cases. */
    bool extremes = false;
    /** Suite generation knobs (counts, body size, budgets). */
    SuiteOptions suite;
    /**@}*/

    /** @name Deployment */
    /**@{*/
    /** Configurations each workload is measured on (default: the
     * paper's 24). */
    std::vector<ChipConfig> configs = ChipConfig::all();
    /**
     * DVFS frequency axis in GHz ("freqs = 2.0,2.5,3.0,3.5"):
     * every (workload, config) pair is measured at every listed
     * operating point (voltage follows the machine's V/f curve).
     * Empty (the default) measures at the machine's nominal clock
     * only, with job keys identical to pre-DVFS campaigns — a
     * sweep that includes the nominal frequency reuses those cache
     * entries too.
     */
    std::vector<double> freqs;
    /**
     * Undervolting axis in volts ("vdds = 0.85,0.90,0.95,1.0"):
     * cross-producted with the frequency axis — every (workload,
     * config, freq) point is measured at every listed supply
     * voltage. A listed voltage that equals the V/f curve's voltage
     * at that frequency collapses to the on-curve job (same key as
     * a freqs-only campaign, so existing cache entries stay hits).
     * Empty (the default) measures on-curve only. Points below the
     * workload's hidden Vmin come back flagged unreliable.
     */
    std::vector<double> vdds;
    /**@}*/

    /** @name Execution */
    /**@{*/
    /** Worker threads measuring jobs: 0 = one per hardware thread
     * (resolved when the engine starts), 1 = serial reference. */
    int threads = 0; // lint: fingerprint-exempt(execution detail)
    /** On-disk result cache directory; empty disables caching. */
    std::string cacheDir; // lint: fingerprint-exempt(cache location, not content)
    /** Extra salt mixed into each job's measurement seed. */
    uint64_t salt = 0;
    /** Bootstrap the architecture before generation (IPC-targeted
     * categories need measured latencies). */
    bool bootstrap = true;
    /**
     * Shard selection ("shard = i/n"): this process measures only
     * its slice of the expanded job list under the deterministic
     * cost-weighted striping of campaign/cost.hh (LPT greedy over
     * estimated per-job cost — a pure function of the job list, so
     * every shard computes the identical partition independently).
     * The union over all shards is exactly the unsharded campaign;
     * the manifest always lists the full job list, so any shard's
     * cache directory can answer --resume and --merge for the
     * whole campaign. Execution detail: never part of job keys or
     * the campaign fingerprint.
     */
    int shardIndex = 0;  // lint: fingerprint-exempt(slice selection only)
    int shardCount = 1;  // lint: fingerprint-exempt(slice selection only)
    /** Seconds between "k of n jobs done" progress lines while
     * measuring (0 disables). */
    double progressSeconds = 10.0; // lint: fingerprint-exempt(reporting cadence)
    /**
     * Claim-based service execution ("serve = 1", `--serve`): this
     * worker pulls jobs from the campaign's shared pool through
     * per-job claim files in the cache directory instead of
     * measuring a statically-assigned slice. Any number of --serve
     * workers drain one pool: each claims the next unfinished job
     * (cost order), jobs of a dead worker are stolen once their
     * claim outlives claimTtlSeconds, and every worker finishes
     * with the complete sample set (all results are in the shared
     * cache when the pool drains). Mutually exclusive with
     * sharding; --merge semantics are unchanged.
     */
    bool serve = false; // lint: fingerprint-exempt(execution mode, same job set)
    /** Stale-claim TTL in seconds ("claim_ttl_seconds",
     * `--claim-ttl`): a claim not heartbeaten for longer than this
     * marks its worker dead and the job stealable. */
    double claimTtlSeconds = 60.0; // lint: fingerprint-exempt(liveness tuning)
    /** Seconds a serve worker sleeps between pool scans while
     * peers hold every remaining job (`--claim-poll`). */
    double claimPollSeconds = 0.5; // lint: fingerprint-exempt(liveness tuning)
    /** Claim-file identity of this worker; empty resolves to
     * "host:pid" (`--worker-id`, mostly for tests/logs). */
    std::string workerId; // lint: fingerprint-exempt(worker identity, not results)
    /**
     * Directory the job manifest is written to/read from; empty
     * (the default) keeps it next to the cache. The drop-directory
     * service sets this per campaign: many concurrent campaigns
     * share one cache directory (sample files are content-keyed,
     * so they never clash) but need separate manifests (one
     * manifest file per cache dir would thrash between
     * fingerprints). Execution detail: never part of job keys or
     * the campaign fingerprint.
     */
    std::string manifestDir; // lint: fingerprint-exempt(manifest location, not content)
    /**
     * Identity of a measure()-provided corpus, mixed into the
     * campaign fingerprint (manifest identity) but never into job
     * keys. Spec-driven campaigns leave it 0 — their corpus is
     * described by the generation knobs the fingerprint already
     * hashes — but measure() callers (benches, the model pipeline)
     * supply workloads the fingerprint cannot see; tagging the
     * knobs that shaped them keeps e.g. a fast-mode corpus's
     * manifest from accumulating into a full-size one in the same
     * cache directory (shared cache *entries* are always fine:
     * job keys hash content).
     */
    uint64_t corpusTag = 0;
    /**@}*/

    /** Whether this spec selects a strict subset of the jobs. */
    bool sharded() const { return shardCount > 1; }

    /** Workloads per config is not knowable before generation, but
     * configs-per-workload is: */
    size_t configCount() const { return configs.size(); }

    /** Human-readable one-line summary for banners/logs. */
    std::string summary() const;

    /**
     * Summary of what the campaign measures (sources x configs),
     * without execution detail (threads, cache). The manifest
     * stores this one: resuming with a different worker count is
     * the same campaign; resuming with different sources is not.
     */
    std::string contentSummary() const;
};

/**
 * Parse a spec from the file format above. Unknown keys, bad
 * values and malformed configs are fatal() with file:line context.
 */
CampaignSpec parseCampaignSpecText(const std::string &text,
                                   const std::string &origin);

/** Load and parse a spec file. */
CampaignSpec loadCampaignSpec(const std::string &path);

/** Parse "all" or a comma-separated "cores-smt" list. */
std::vector<ChipConfig> parseConfigList(const std::string &s,
                                        const std::string &context);

/**
 * Parse a comma-separated GHz list ("2.0,2.5,3.0,3.5") as accepted
 * by the `freqs` spec key and `mprobe_campaign --freqs`. Duplicate
 * or non-positive frequencies are fatal() with @p context.
 */
std::vector<double> parseFreqList(const std::string &s,
                                  const std::string &context);

/**
 * Parse a comma-separated volt list ("0.85,0.9,0.95,1.0") as
 * accepted by the `vdds` spec key and `mprobe_campaign --vdds`.
 * Duplicate or non-positive voltages are fatal() with @p context.
 */
std::vector<double> parseVddList(const std::string &s,
                                 const std::string &context);

/**
 * Parse a shard selector "i/n" (0 <= i < n, n >= 1) as accepted by
 * the `shard` spec key and `mprobe_campaign --shard`. fatal() with
 * @p context on malformed input.
 */
void parseShard(const std::string &s, const std::string &context,
                int &index, int &count);

/** Parse a category name as used in spec files (e.g. "memory"). */
BenchCategory parseBenchCategory(const std::string &s,
                                 const std::string &context);

} // namespace mprobe

#endif // CAMPAIGN_SPEC_HH
