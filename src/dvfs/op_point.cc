/**
 * @file
 * Operating-point labels.
 */

#include "dvfs/op_point.hh"

#include <cstdio>

namespace mprobe
{

std::string
OperatingPoint::label() const
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3gGHz@%.3gV", freqGhz,
                  voltage);
    return buf;
}

} // namespace mprobe
