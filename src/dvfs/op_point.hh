/**
 * @file
 * DVFS operating points.
 *
 * The paper characterizes its machine at one fixed clock, but the
 * largest energy knob on real hardware is the (voltage, frequency)
 * operating point: dynamic power scales as V^2*f, static power
 * roughly with V, and memory-bound workloads speed up sublinearly
 * with frequency because main-memory latency in nanoseconds does
 * not follow the core clock. This module makes that axis a
 * first-class citizen: an OperatingPoint names one (f, V) pair, the
 * machine model exposes its hidden V/f curve through
 * Machine::operatingPoint, and the campaign engine sweeps a
 * `freqs` axis the same way it sweeps CMP/SMT configurations.
 */

#ifndef DVFS_OP_POINT_HH
#define DVFS_OP_POINT_HH

#include <algorithm>
#include <string>

namespace mprobe
{

/**
 * Reference clock of the paper's machine in GHz, and the frequency
 * every pre-DVFS measurement implicitly ran at: cache entries and
 * manifest rows serialized without a frequency field load as this
 * value, so upgrading a cache directory is miss-free.
 */
constexpr double kNominalFreqGhz = 3.0;

/**
 * @name Default V/f-curve constants
 * The hidden curve of the default machine: V(f) =
 * max(kNominalVddFloor, kNominalVdd + kNominalVddSlopePerGhz *
 * (f - kNominalFreqGhz)). GroundTruthParams defaults to exactly
 * these values (one definition, no drift), and cache entries
 * serialized before the vdd axis existed reconstruct their supply
 * voltage from this curve on load — exact for every default-curve
 * machine, best-effort for custom-curve machines (whose entries
 * live under a different machine fingerprint anyway).
 */
/**@{*/
constexpr double kNominalVdd = 1.00;
constexpr double kNominalVddSlopePerGhz = 0.16;
constexpr double kNominalVddFloor = 0.85;
/**@}*/

/** The default curve's supply voltage at @p freq_ghz. */
inline double
nominalCurveVoltage(double freq_ghz)
{
    return std::max(kNominalVddFloor,
                    kNominalVdd + kNominalVddSlopePerGhz *
                                      (freq_ghz - kNominalFreqGhz));
}

/**
 * One DVFS operating point: a core frequency and the supply voltage
 * the machine's V/f curve assigns to it. Construct through
 * Machine::operatingPoint so the voltage matches the machine's
 * hidden curve; a hand-built point with an off-curve voltage is an
 * undervolting (or overvolting) experiment, which Machine::run
 * happily simulates — below the workload's hidden Vmin the result
 * comes back flagged unreliable, mimicking real margin loss. The
 * full power-model and margin equations live in docs/MODEL.md.
 */
struct OperatingPoint
{
    double freqGhz = kNominalFreqGhz;
    double voltage = kNominalVdd;

    /** "2.5GHz@0.92V" label used in sweep reports. */
    std::string label() const;
};

} // namespace mprobe

#endif // DVFS_OP_POINT_HH
