/**
 * @file
 * Per-phase DVFS schedule construction.
 */

#include "dvfs/schedule.hh"

#include <cmath>
#include <utility>

#include "potra/analysis.hh"
#include "power/sample.hh"
#include "util/logging.hh"

namespace mprobe
{

namespace
{

/** Steady-state measurement of one kernel at one point. */
struct SteadyPoint
{
    double gips = 0.0;
    double watts = 0.0;
};

SteadyPoint
steadyAt(const Machine &machine, const Program &prog,
         const ChipConfig &cfg, const OperatingPoint &op,
         uint64_t salt)
{
    Sample s = makeSample(prog.name,
                          machine.run(prog, cfg, op, salt));
    return {s.instrGips, s.powerWatts};
}

} // namespace

DvfsSchedule
scheduleFromPhases(const Machine &machine,
                   const PhasedWorkload &workload,
                   const ChipConfig &cfg,
                   const std::vector<double> &freqs,
                   double sample_ms, uint64_t salt)
{
    if (freqs.size() < 2)
        fatal(cat("scheduleFromPhases: need >= 2 swept "
                  "frequencies, got ",
                  freqs.size(),
                  " (one point admits no schedule)"));
    if (workload.phases.empty())
        fatal(cat("scheduleFromPhases: workload '", workload.name,
                  "' has no phases"));
    for (const auto &wp : workload.phases)
        if (!wp.program)
            fatal(cat("scheduleFromPhases: workload '",
                      workload.name, "' has a null-program phase"));

    DvfsSchedule out;
    out.workload = workload.name;
    out.config = cfg;

    // 1. Trace at the nominal point and recover the phases from
    // the power series alone — the governor's view.
    PowerTrace trace =
        tracePhased(machine, workload, cfg, sample_ms, salt);
    std::vector<DetectedPhase> detected = segmentPhases(trace);
    if (detected.empty())
        fatal(cat("scheduleFromPhases: no phases detected in "
                  "workload '",
                  workload.name, "'"));

    // 2. Steady nominal measurement per kernel (memoized across
    // phase entries that reuse one program), for attribution and
    // for the phases' instruction-work estimates.
    size_t n_kernels = workload.phases.size();
    std::vector<SteadyPoint> nominal(n_kernels);
    for (size_t i = 0; i < n_kernels; ++i) {
        const Program *prog = workload.phases[i].program;
        bool found = false;
        for (size_t j = 0; j < i && !found; ++j)
            if (workload.phases[j].program == prog) {
                nominal[i] = nominal[j];
                found = true;
            }
        if (!found)
            nominal[i] = steadyAt(machine, *prog, cfg,
                                  machine.operatingPoint(), salt);
    }

    // 3. Attribute each detected phase to the kernel whose steady
    // nominal power is nearest its traced mean (first index wins
    // ties), and size its work in giga-instructions from the
    // attributed kernel's nominal rate over the traced duration.
    size_t n_phases = detected.size();
    std::vector<size_t> kernel_of(n_phases, 0);
    std::vector<double> work_gi(n_phases, 0.0);
    for (size_t p = 0; p < n_phases; ++p) {
        double best = -1.0;
        for (size_t i = 0; i < n_kernels; ++i) {
            double d = std::fabs(detected[p].meanWatts -
                                 nominal[i].watts);
            if (best < 0.0 || d < best) {
                best = d;
                kernel_of[p] = i;
            }
        }
        work_gi[p] = nominal[kernel_of[p]].gips *
                     detected[p].durationMs(trace) / 1000.0;
    }

    // 4. Per-kernel steady measurements across the sweep, then the
    // per-(phase, frequency) time/energy tables every candidate
    // assignment is evaluated against.
    size_t n_freqs = freqs.size();
    std::vector<std::vector<SteadyPoint>> steady(
        n_kernels, std::vector<SteadyPoint>(n_freqs));
    for (size_t i = 0; i < n_kernels; ++i) {
        const Program *prog = workload.phases[i].program;
        bool found = false;
        for (size_t j = 0; j < i && !found; ++j)
            if (workload.phases[j].program == prog) {
                steady[i] = steady[j];
                found = true;
            }
        if (found)
            continue;
        for (size_t k = 0; k < n_freqs; ++k)
            steady[i][k] =
                steadyAt(machine, *prog, cfg,
                         machine.operatingPoint(freqs[k]), salt);
    }
    std::vector<std::vector<double>> time_s(
        n_phases, std::vector<double>(n_freqs));
    std::vector<std::vector<double>> energy_j(
        n_phases, std::vector<double>(n_freqs));
    for (size_t p = 0; p < n_phases; ++p)
        for (size_t k = 0; k < n_freqs; ++k) {
            const SteadyPoint &sp = steady[kernel_of[p]][k];
            if (sp.gips <= 0.0)
                fatal(cat("scheduleFromPhases: kernel '",
                          workload.phases[kernel_of[p]]
                              .program->name,
                          "' retired no instructions at ",
                          freqs[k], " GHz"));
            time_s[p][k] = work_gi[p] / sp.gips;
            energy_j[p][k] = sp.watts * time_s[p][k];
        }

    // 5. Static baselines: the whole run pinned at each point.
    for (size_t k = 0; k < n_freqs; ++k) {
        StaticPointReport r;
        r.op = machine.operatingPoint(freqs[k]);
        for (size_t p = 0; p < n_phases; ++p) {
            r.seconds += time_s[p][k];
            r.energyJ += energy_j[p][k];
        }
        r.edp = r.energyJ * r.seconds;
        out.staticPoints.push_back(r);
        if (r.edp < out.staticPoints[out.bestStatic].edp)
            out.bestStatic = k;
    }

    // 6. Whole-run EDP = (sum E) * (sum T) couples the phases, so
    // optimize the assignment by coordinate descent seeded at the
    // best static point: the result can only improve on that seed,
    // which makes "schedule <= best static" a construction
    // invariant rather than a hope.
    std::vector<size_t> assign(n_phases, out.bestStatic);
    auto edp_of = [&](const std::vector<size_t> &a) {
        double t = 0.0, e = 0.0;
        for (size_t p = 0; p < n_phases; ++p) {
            t += time_s[p][a[p]];
            e += energy_j[p][a[p]];
        }
        return e * t;
    };
    double cur = edp_of(assign);
    bool changed = true;
    for (int pass = 0; changed && pass < 64; ++pass) {
        changed = false;
        for (size_t p = 0; p < n_phases; ++p) {
            size_t keep = assign[p];
            size_t best_k = keep;
            double best_edp = cur;
            for (size_t k = 0; k < n_freqs; ++k) {
                if (k == keep)
                    continue;
                assign[p] = k;
                double e = edp_of(assign);
                // Strict improvement only: ties keep the current
                // choice, so the descent terminates.
                if (e < best_edp) {
                    best_edp = e;
                    best_k = k;
                }
            }
            assign[p] = best_k;
            if (best_k != keep) {
                cur = best_edp;
                changed = true;
            }
        }
    }

    for (size_t p = 0; p < n_phases; ++p) {
        SchedulePhase sp;
        sp.phase = p;
        sp.durationMs = detected[p].durationMs(trace);
        sp.meanWatts = detected[p].meanWatts;
        sp.program = kernel_of[p];
        sp.op = machine.operatingPoint(freqs[assign[p]]);
        sp.seconds = time_s[p][assign[p]];
        sp.energyJ = energy_j[p][assign[p]];
        out.seconds += sp.seconds;
        out.energyJ += sp.energyJ;
        out.phases.push_back(std::move(sp));
    }
    out.edp = out.energyJ * out.seconds;
    double base = out.staticPoints[out.bestStatic].edp;
    out.edpGainVsBestStatic =
        base > 0.0 ? 1.0 - out.edp / base : 0.0;
    return out;
}

} // namespace mprobe
