/**
 * @file
 * Per-phase energy-optimal DVFS schedules.
 *
 * The closing move of the DVFS work: instead of one static
 * operating point per application, pick a point per *phase*. A
 * phased workload is traced at the nominal point, potra's
 * segmentPhases recovers its phases from the power trace alone
 * (exactly what a real DVFS governor would see), each phase is
 * attributed to the kernel whose steady power it matches, and a
 * per-phase operating-point assignment is optimized for whole-run
 * EDP. Compute-bound phases keep high frequency (their time — and
 * the EDP delay term — would balloon at low f for little energy
 * gain); memory-bound phases drop to low frequency (DRAM latency in
 * ns pins their rate while power still falls with V^2 f). The
 * schedule is reported next to every static point of the same
 * sweep; because the optimizer starts from the best static
 * assignment, the schedule's EDP is never worse than the best
 * static point's, and strictly better whenever the workload mixes
 * compute- and memory-bound phases.
 */

#ifndef DVFS_SCHEDULE_HH
#define DVFS_SCHEDULE_HH

#include <string>
#include <vector>

#include "dvfs/op_point.hh"
#include "potra/trace.hh"
#include "sim/machine.hh"

namespace mprobe
{

/** One phase of a computed schedule. */
struct SchedulePhase
{
    /** Index of the detected phase (trace order). */
    size_t phase = 0;
    /** Phase duration in the nominal-point trace, ms. */
    double durationMs = 0.0;
    /** Mean traced power over the phase at the nominal point. */
    double meanWatts = 0.0;
    /** Index into the workload's phase list of the kernel this
     * detected phase was attributed to (by nearest steady power). */
    size_t program = 0;
    /** The operating point the schedule assigns to this phase. */
    OperatingPoint op;
    /** Projected time and energy of the phase's work at op. */
    double seconds = 0.0;
    double energyJ = 0.0;
};

/** One static operating point's whole-run projection. */
struct StaticPointReport
{
    OperatingPoint op;
    double seconds = 0.0;
    double energyJ = 0.0;
    double edp = 0.0;
};

/** The computed schedule and its static baselines. */
struct DvfsSchedule
{
    std::string workload;
    ChipConfig config;
    std::vector<SchedulePhase> phases;
    /** Whole-run totals under the schedule. */
    double seconds = 0.0;
    double energyJ = 0.0;
    double edp = 0.0;
    /** Every static point of the sweep, in freqs order. */
    std::vector<StaticPointReport> staticPoints;
    /** Index of the static point with the lowest EDP. */
    size_t bestStatic = 0;
    /** EDP saved vs the best static point: 1 - edp/staticEdp
     * (>= 0 by construction). */
    double edpGainVsBestStatic = 0.0;
};

/**
 * Compute the per-phase energy-optimal (minimum whole-run EDP)
 * DVFS schedule of @p workload on @p cfg over the on-curve
 * operating points at @p freqs (>= 2 required — a one-point
 * "sweep" admits no schedule; fatal() otherwise). Deterministic for
 * fixed inputs and @p salt, like every measurement path.
 */
DvfsSchedule scheduleFromPhases(const Machine &machine,
                                const PhasedWorkload &workload,
                                const ChipConfig &cfg,
                                const std::vector<double> &freqs,
                                double sample_ms = 1.0,
                                uint64_t salt = 0);

} // namespace mprobe

#endif // DVFS_SCHEDULE_HH
