/**
 * @file
 * DVFS sweep analysis implementation.
 */

#include "dvfs/sweep.hh"

#include <algorithm>
#include <map>

#include "power/topdown.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace mprobe
{

double
sampleEpiJoules(const Sample &s)
{
    double rate = s.instrGips * 1e9;
    return rate > 0.0 ? s.powerWatts / rate : 0.0;
}

double
sampleEdp(const Sample &s)
{
    double rate = s.instrGips * 1e9;
    return rate > 0.0 ? s.powerWatts / (rate * rate) : 0.0;
}

double
sampleEd2p(const Sample &s)
{
    double rate = s.instrGips * 1e9;
    return rate > 0.0 ? s.powerWatts / (rate * rate * rate) : 0.0;
}

namespace
{

SweepPoint
pointOf(const Sample &s)
{
    SweepPoint p;
    p.freqGhz = s.freqGhz;
    p.powerWatts = s.powerWatts;
    p.instrGips = s.instrGips;
    p.epiJ = sampleEpiJoules(s);
    p.edp = sampleEdp(s);
    p.ed2p = sampleEd2p(s);
    return p;
}

/** Index of the minimum of @p metric over @p points; ties resolve
 * to the earlier (lower-frequency) point. */
size_t
argminPoint(const std::vector<SweepPoint> &points,
            double SweepPoint::*metric)
{
    size_t best = 0;
    for (size_t i = 1; i < points.size(); ++i)
        if (points[i].*metric < points[best].*metric)
            best = i;
    return best;
}

} // namespace

SweepAnalysis
analyzeSweep(const std::vector<Sample> &samples)
{
    SweepAnalysis out;
    // Group by (workload, config) preserving first-appearance
    // order — the campaign's workload-major sample order makes that
    // the natural report order.
    std::map<std::pair<std::string, std::string>, size_t> index;
    for (const auto &s : samples) {
        if (s.instrGips <= 0.0)
            continue; // placeholder (e.g. off-shard slot)
        if (!s.reliable)
            continue; // below Vmin: must not win an optimum
        auto key = std::make_pair(s.workload, s.config.label());
        auto it = index.find(key);
        if (it == index.end()) {
            it = index.emplace(key, out.series.size()).first;
            SweepSeries series;
            series.workload = s.workload;
            series.config = s.config;
            out.series.push_back(std::move(series));
        }
        out.series[it->second].points.push_back(pointOf(s));
        if (std::find(out.freqs.begin(), out.freqs.end(),
                      s.freqGhz) == out.freqs.end())
            out.freqs.push_back(s.freqGhz);
    }
    std::sort(out.freqs.begin(), out.freqs.end());
    // A sweep needs at least two operating points: a "sweep" of one
    // frequency would report that frequency as the triple optimum
    // of every series — a degenerate table that reads like a
    // result. Refusing beats mis-reporting.
    if (out.freqs.size() < 2)
        fatal(cat("analyzeSweep: need samples at >= 2 distinct "
                  "frequencies, got ",
                  out.freqs.size(),
                  " (sweep a freqs axis, e.g. --freqs)"));
    for (auto &series : out.series) {
        std::stable_sort(series.points.begin(),
                         series.points.end(),
                         [](const SweepPoint &a,
                            const SweepPoint &b) {
                             return a.freqGhz < b.freqGhz;
                         });
        series.bestEpi =
            argminPoint(series.points, &SweepPoint::epiJ);
        series.bestEdp =
            argminPoint(series.points, &SweepPoint::edp);
        series.bestEd2p =
            argminPoint(series.points, &SweepPoint::ed2p);
    }
    return out;
}

std::vector<Sample>
samplesAtFreq(const std::vector<Sample> &all, double freq_ghz)
{
    std::vector<Sample> out;
    for (const auto &s : all)
        if (s.freqGhz == freq_ghz)
            out.push_back(s);
    return out;
}

namespace
{

double
paaeOf(const TopDownModel &m, const std::vector<Sample> &samples)
{
    std::vector<double> pred, real;
    pred.reserve(samples.size());
    real.reserve(samples.size());
    for (const auto &s : samples) {
        pred.push_back(m.predict(s));
        real.push_back(s.powerWatts);
    }
    return paae(pred, real);
}

} // namespace

CrossFreqReport
crossFrequencyError(const std::vector<Sample> &samples,
                    double train_freq)
{
    // Placeholder samples would train the models on zeros.
    std::vector<Sample> live;
    std::vector<double> freqs;
    for (const auto &s : samples) {
        if (s.instrGips <= 0.0)
            continue;
        if (!s.reliable)
            continue; // below Vmin: must not train models
        live.push_back(s);
        if (std::find(freqs.begin(), freqs.end(), s.freqGhz) ==
            freqs.end())
            freqs.push_back(s.freqGhz);
    }
    std::sort(freqs.begin(), freqs.end());
    // Cross-frequency validation of a single frequency would
    // compare a model against itself and report a spurious 0-gap.
    if (freqs.size() < 2)
        fatal(cat("crossFrequencyError: need samples at >= 2 "
                  "distinct frequencies, got ",
                  freqs.size(),
                  " (sweep a freqs axis, e.g. --freqs)"));

    std::vector<Sample> train = samplesAtFreq(live, train_freq);
    if (train.empty())
        fatal(cat("crossFrequencyError: no samples at the ",
                  train_freq, " GHz training frequency"));
    TopDownModel cross =
        TopDownModel::train(train, "TD_CrossFreq");

    CrossFreqReport out;
    out.trainFreqGhz = train_freq;
    for (double f : freqs) {
        std::vector<Sample> at = samplesAtFreq(live, f);
        TopDownModel local =
            TopDownModel::train(at, "TD_AtPoint");
        out.entries.push_back(
            {f, at.size(), paaeOf(cross, at), paaeOf(local, at)});
    }
    return out;
}

} // namespace mprobe
