/**
 * @file
 * DVFS sweep analysis: energy metrics across operating points.
 *
 * Given campaign samples measured along a `freqs` axis, this module
 * answers the questions the voltage/frequency-scaling literature
 * asks of real machines: what are energy-per-instruction (EPI),
 * energy-delay product (EDP) and ED^2P at each operating point,
 * which point is energy-optimal per (workload, configuration), and
 * how badly does a counter-based power model trained at one
 * frequency mispredict at another? Compute-bound workloads (rate
 * scales with f while static power dominates) select high
 * frequencies; memory-bound workloads (rate pinned by DRAM latency
 * while power still grows with V and f) select low ones — the
 * compute-vs-memory divergence the roofline literature predicts.
 */

#ifndef DVFS_SWEEP_HH
#define DVFS_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "power/sample.hh"

namespace mprobe
{

/** @name Per-sample energy metrics
 * EPI is joules per committed instruction (power over instruction
 * rate); EDP multiplies EPI by the time per instruction (P/R^2) and
 * ED^2P by its square (P/R^3) — the standard family of
 * energy-efficiency objectives, increasingly biased toward
 * performance. All three are 0 for placeholder samples (no
 * instruction rate), never infinite.
 */
/**@{*/
double sampleEpiJoules(const Sample &s);
double sampleEdp(const Sample &s);
double sampleEd2p(const Sample &s);
/**@}*/

/** Metrics of one (workload, config) at one operating point. */
struct SweepPoint
{
    double freqGhz = 0.0;
    double powerWatts = 0.0;
    double instrGips = 0.0;
    double epiJ = 0.0;
    double edp = 0.0;
    double ed2p = 0.0;
};

/** One (workload, config) series across the swept frequencies. */
struct SweepSeries
{
    std::string workload;
    ChipConfig config;
    /** Operating points, ascending frequency. */
    std::vector<SweepPoint> points;
    /** Indices into points of the optimum under each objective
     * (minimum metric; ties resolve to the lower frequency). */
    size_t bestEpi = 0;
    size_t bestEdp = 0;
    size_t bestEd2p = 0;
};

/** The analyzed sweep. */
struct SweepAnalysis
{
    /** Distinct frequencies seen, ascending. */
    std::vector<double> freqs;
    /** One series per (workload, config), in first-appearance
     * order of the sample stream. */
    std::vector<SweepSeries> series;
};

/**
 * Group samples by (workload, configuration), order each group's
 * points by frequency and select the energy-optimal operating point
 * under EPI, EDP and ED^2P. Placeholder samples (no instruction
 * rate, e.g. off-shard slots of a sharded bench run) and unreliable
 * samples (below-Vmin undervolted points) are skipped. fatal() when
 * the remaining samples span fewer than two distinct frequencies:
 * a single-point "sweep" would report that point as every optimum.
 */
SweepAnalysis analyzeSweep(const std::vector<Sample> &samples);

/** The samples of @p all measured at frequency @p freq_ghz. */
std::vector<Sample> samplesAtFreq(const std::vector<Sample> &all,
                                  double freq_ghz);

/**
 * Cross-frequency model validation: train the top-down model on the
 * samples at @p train_freq, then report its PAAE at every swept
 * frequency next to the PAAE of a model trained at that frequency
 * itself. The gap between the two columns is the cost of assuming
 * one frequency's power model generalizes across the DVFS range.
 */
struct CrossFreqReport
{
    double trainFreqGhz = 0.0;
    struct Entry
    {
        double freqGhz = 0.0;
        size_t count = 0;
        /** PAAE of the model trained at trainFreqGhz. */
        double paaeCross = 0.0;
        /** PAAE of a model trained at this frequency (reference). */
        double paaeAtPoint = 0.0;
    };
    std::vector<Entry> entries;
};

/**
 * fatal() when @p samples holds no points at @p train_freq, or when
 * the live (non-placeholder, reliable) samples span fewer than two
 * distinct frequencies — validating a model against its own
 * training frequency alone would report a spurious 0-gap.
 */
CrossFreqReport
crossFrequencyError(const std::vector<Sample> &samples,
                    double train_freq);

} // namespace mprobe

#endif // DVFS_SWEEP_HH
