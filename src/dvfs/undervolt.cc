/**
 * @file
 * Undervolt-margin analysis implementation.
 */

#include "dvfs/undervolt.hh"

#include <map>
#include <tuple>

namespace mprobe
{

std::vector<UndervoltMargin>
findUndervoltMargin(const std::vector<Sample> &samples)
{
    // Group by (workload, config, freq) preserving first-appearance
    // order, like analyzeSweep: the campaign's workload-major
    // sample order makes that the natural report order.
    std::vector<UndervoltMargin> out;
    std::map<std::tuple<std::string, std::string, double>, size_t>
        index;
    // Per-series extremes over *reliable* points only.
    struct Extremes
    {
        double loVdd = 0.0, loWatts = 0.0;
        double hiVdd = 0.0, hiWatts = 0.0;
        bool any = false;
    };
    std::vector<Extremes> ext;
    for (const auto &s : samples) {
        if (s.instrGips <= 0.0)
            continue; // placeholder (e.g. off-shard slot)
        auto key = std::make_tuple(s.workload, s.config.label(),
                                   s.freqGhz);
        auto it = index.find(key);
        if (it == index.end()) {
            it = index.emplace(key, out.size()).first;
            UndervoltMargin m;
            m.workload = s.workload;
            m.config = s.config;
            m.freqGhz = s.freqGhz;
            out.push_back(std::move(m));
            ext.push_back({});
        }
        UndervoltMargin &m = out[it->second];
        Extremes &e = ext[it->second];
        ++m.pointsProbed;
        if (!s.reliable) {
            ++m.unreliablePoints;
            continue;
        }
        if (!e.any || s.vddVolts < e.loVdd) {
            e.loVdd = s.vddVolts;
            e.loWatts = s.powerWatts;
        }
        if (!e.any || s.vddVolts > e.hiVdd) {
            e.hiVdd = s.vddVolts;
            e.hiWatts = s.powerWatts;
        }
        e.any = true;
    }
    // A series with no reliable point discovered no safe voltage:
    // drop it rather than reporting a margin of nothing.
    std::vector<UndervoltMargin> kept;
    kept.reserve(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
        if (!ext[i].any)
            continue;
        UndervoltMargin m = out[i];
        m.nominalVdd = ext[i].hiVdd;
        m.nominalPowerWatts = ext[i].hiWatts;
        m.safeVdd = ext[i].loVdd;
        m.safePowerWatts = ext[i].loWatts;
        m.powerSavedFrac =
            m.nominalPowerWatts > 0.0
                ? 1.0 - m.safePowerWatts / m.nominalPowerWatts
                : 0.0;
        kept.push_back(std::move(m));
    }
    return kept;
}

} // namespace mprobe
