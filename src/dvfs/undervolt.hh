/**
 * @file
 * Undervolt-margin analysis: safe Vmin discovery per series.
 *
 * A `vdds` campaign axis probes operating points below the V/f
 * curve; the machine flags every point under the workload's hidden
 * Vmin as unreliable (power numbers still come back, as they do on
 * real margin-compromised parts, but must not be trusted). This
 * module turns such a sweep into the system-level undervolting
 * result the V/f-scaling literature reports: for each (workload,
 * config, frequency) series, the lowest *reliable* voltage probed —
 * the discovered safe margin — and the power reclaimed there
 * relative to the highest reliable (nominal-most) voltage. At a
 * fixed frequency the voltage does not change timing, so the power
 * ratio is exactly the energy ratio.
 */

#ifndef DVFS_UNDERVOLT_HH
#define DVFS_UNDERVOLT_HH

#include <string>
#include <vector>

#include "power/sample.hh"

namespace mprobe
{

/** The discovered margin of one (workload, config, freq) series. */
struct UndervoltMargin
{
    std::string workload;
    ChipConfig config;
    double freqGhz = 0.0;
    /** Highest reliable voltage probed (the nominal-most point). */
    double nominalVdd = 0.0;
    double nominalPowerWatts = 0.0;
    /** Lowest reliable voltage probed (the discovered safe Vmin
     * margin; equals nominalVdd when nothing below it survived). */
    double safeVdd = 0.0;
    double safePowerWatts = 0.0;
    /** Power (== energy, at fixed frequency) saved at the safe
     * point vs the nominal-most one: 1 - safeP/nominalP. */
    double powerSavedFrac = 0.0;
    /** Voltages probed in this series, and how many of them came
     * back flagged unreliable (below the hidden Vmin). */
    size_t pointsProbed = 0;
    size_t unreliablePoints = 0;
};

/**
 * Group samples by (workload, config, frequency) in
 * first-appearance order and report each group's discovered
 * undervolt margin. Placeholder samples (no instruction rate) are
 * skipped; a series whose every point is unreliable is dropped —
 * it probed no safe voltage at all.
 */
std::vector<UndervoltMargin>
findUndervoltMargin(const std::vector<Sample> &samples);

} // namespace mprobe

#endif // DVFS_UNDERVOLT_HH
