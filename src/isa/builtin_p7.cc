/**
 * @file
 * Built-in P7-like ISA definition.
 *
 * A faithful subset of Power ISA v2.06B sufficient for all of the
 * paper's case studies: every instruction the paper names appears
 * here, surrounded by the natural families (byte/half/word/double
 * variants, indexed and update forms, VMX/VSX compute, decimal
 * floating point, branches and system operations).
 *
 * The definition is kept as text and routed through Isa::fromText so
 * the exact same parser exercised by user-supplied files also loads
 * the built-in ISA.
 */

#include "isa/isa.hh"

namespace mprobe
{

namespace
{

const char builtin_text[] = R"ISA(
# P7-like ISA definition (Power ISA v2.06B subset).
isa POWER7-like
version 2.06B

# --- Fixed point: simple arithmetic and logical -------------------
instr add      type=int width=64 srcs=2 dsts=1
instr add.     type=int width=64 srcs=2 dsts=1
instr addc     type=int width=64 srcs=2 dsts=1
instr adde     type=int width=64 srcs=2 dsts=1
instr addi     type=int width=64 srcs=1 dsts=1 imm=1
instr addis    type=int width=64 srcs=1 dsts=1 imm=1
instr addic    type=int width=64 srcs=1 dsts=1 imm=1
instr subf     type=int width=64 srcs=2 dsts=1
instr subfc    type=int width=64 srcs=2 dsts=1
instr subfe    type=int width=64 srcs=2 dsts=1
instr subfic   type=int width=64 srcs=1 dsts=1 imm=1
instr neg      type=int width=64 srcs=1 dsts=1
instr and      type=int width=64 srcs=2 dsts=1
instr andc     type=int width=64 srcs=2 dsts=1
instr andi.    type=int width=64 srcs=1 dsts=1 imm=1
instr or       type=int width=64 srcs=2 dsts=1
instr orc      type=int width=64 srcs=2 dsts=1
instr ori      type=int width=64 srcs=1 dsts=1 imm=1
instr oris     type=int width=64 srcs=1 dsts=1 imm=1
instr xor      type=int width=64 srcs=2 dsts=1
instr xori     type=int width=64 srcs=1 dsts=1 imm=1
instr nand     type=int width=64 srcs=2 dsts=1
instr nor      type=int width=64 srcs=2 dsts=1
instr eqv      type=int width=64 srcs=2 dsts=1
instr extsb    type=int width=8  srcs=1 dsts=1
instr extsh    type=int width=16 srcs=1 dsts=1
instr extsw    type=int width=32 srcs=1 dsts=1
instr rlwinm   type=int width=32 srcs=1 dsts=1 imm=1
instr rldicl   type=int width=64 srcs=1 dsts=1 imm=1
instr rldicr   type=int width=64 srcs=1 dsts=1 imm=1
instr slw      type=int width=32 srcs=2 dsts=1
instr srw      type=int width=32 srcs=2 dsts=1
instr sld      type=int width=64 srcs=2 dsts=1
instr srd      type=int width=64 srcs=2 dsts=1
instr sraw     type=int width=32 srcs=2 dsts=1
instr srad     type=int width=64 srcs=2 dsts=1
instr srawi    type=int width=32 srcs=1 dsts=1 imm=1
instr sradi    type=int width=64 srcs=1 dsts=1 imm=1
instr cmpw     type=int width=32 srcs=2 dsts=1
instr cmpd     type=int width=64 srcs=2 dsts=1
instr cmpwi    type=int width=32 srcs=1 dsts=1 imm=1
instr cmpdi    type=int width=64 srcs=1 dsts=1 imm=1
instr cmplw    type=int width=32 srcs=2 dsts=1
instr cmpld    type=int width=64 srcs=2 dsts=1
instr isel     type=int width=64 srcs=3 dsts=1 flags=cond

# --- Fixed point: complex (multiply/divide/bit count) -------------
instr mullw    type=int_complex width=32 srcs=2 dsts=1
instr mulld    type=int_complex width=64 srcs=2 dsts=1
instr mulldo   type=int_complex width=64 srcs=2 dsts=1
instr mullwo   type=int_complex width=32 srcs=2 dsts=1
instr mulhw    type=int_complex width=32 srcs=2 dsts=1
instr mulhd    type=int_complex width=64 srcs=2 dsts=1
instr mulhwu   type=int_complex width=32 srcs=2 dsts=1
instr mulhdu   type=int_complex width=64 srcs=2 dsts=1
instr mulli    type=int_complex width=64 srcs=1 dsts=1 imm=1
instr divw     type=int_complex width=32 srcs=2 dsts=1
instr divd     type=int_complex width=64 srcs=2 dsts=1
instr divwu    type=int_complex width=32 srcs=2 dsts=1
instr divdu    type=int_complex width=64 srcs=2 dsts=1
instr popcntw  type=int_complex width=32 srcs=1 dsts=1
instr popcntd  type=int_complex width=64 srcs=1 dsts=1
instr cntlzw   type=int_complex width=32 srcs=1 dsts=1
instr cntlzd   type=int_complex width=64 srcs=1 dsts=1

# --- Fixed point loads ---------------------------------------------
instr lbz      type=load width=8  srcs=1 dsts=1 imm=1
instr lhz      type=load width=16 srcs=1 dsts=1 imm=1
instr lwz      type=load width=32 srcs=1 dsts=1 imm=1
instr ld       type=load width=64 srcs=1 dsts=1 imm=1
instr lha      type=load width=16 srcs=1 dsts=1 imm=1 flags=algebraic
instr lwa      type=load width=32 srcs=1 dsts=1 imm=1 flags=algebraic
instr lbzx     type=load width=8  srcs=2 dsts=1 flags=indexed
instr lhzx     type=load width=16 srcs=2 dsts=1 flags=indexed
instr lwzx     type=load width=32 srcs=2 dsts=1 flags=indexed
instr ldx      type=load width=64 srcs=2 dsts=1 flags=indexed
instr lhax     type=load width=16 srcs=2 dsts=1 flags=algebraic,indexed
instr lwax     type=load width=32 srcs=2 dsts=1 flags=algebraic,indexed
instr lbzu     type=load width=8  srcs=1 dsts=2 imm=1 flags=update
instr lhzu     type=load width=16 srcs=1 dsts=2 imm=1 flags=update
instr lwzu     type=load width=32 srcs=1 dsts=2 imm=1 flags=update
instr ldu      type=load width=64 srcs=1 dsts=2 imm=1 flags=update
instr lhau     type=load width=16 srcs=1 dsts=2 imm=1 flags=algebraic,update
instr lbzux    type=load width=8  srcs=2 dsts=2 flags=update,indexed
instr lhzux    type=load width=16 srcs=2 dsts=2 flags=update,indexed
instr lwzux    type=load width=32 srcs=2 dsts=2 flags=update,indexed
instr ldux     type=load width=64 srcs=2 dsts=2 flags=update,indexed
instr lhaux    type=load width=16 srcs=2 dsts=2 flags=algebraic,update,indexed
instr lwaux    type=load width=32 srcs=2 dsts=2 flags=algebraic,update,indexed

# --- Fixed point stores --------------------------------------------
instr stb      type=store width=8  srcs=2 dsts=0 imm=1
instr sth      type=store width=16 srcs=2 dsts=0 imm=1
instr stw      type=store width=32 srcs=2 dsts=0 imm=1
instr std      type=store width=64 srcs=2 dsts=0 imm=1
instr stbx     type=store width=8  srcs=3 dsts=0 flags=indexed
instr sthx     type=store width=16 srcs=3 dsts=0 flags=indexed
instr stwx     type=store width=32 srcs=3 dsts=0 flags=indexed
instr stdx     type=store width=64 srcs=3 dsts=0 flags=indexed
instr stbu     type=store width=8  srcs=2 dsts=1 imm=1 flags=update
instr sthu     type=store width=16 srcs=2 dsts=1 imm=1 flags=update
instr stwu     type=store width=32 srcs=2 dsts=1 imm=1 flags=update
instr stdu     type=store width=64 srcs=2 dsts=1 imm=1 flags=update
instr stbux    type=store width=8  srcs=3 dsts=1 flags=update,indexed
instr sthux    type=store width=16 srcs=3 dsts=1 flags=update,indexed
instr stwux    type=store width=32 srcs=3 dsts=1 flags=update,indexed
instr stdux    type=store width=64 srcs=3 dsts=1 flags=update,indexed

# --- Floating point loads/stores ------------------------------------
instr lfs      type=load width=32 srcs=1 dsts=1 imm=1 flags=float
instr lfd      type=load width=64 srcs=1 dsts=1 imm=1 flags=float
instr lfsx     type=load width=32 srcs=2 dsts=1 flags=float,indexed
instr lfdx     type=load width=64 srcs=2 dsts=1 flags=float,indexed
instr lfsu     type=load width=32 srcs=1 dsts=2 imm=1 flags=float,update
instr lfdu     type=load width=64 srcs=1 dsts=2 imm=1 flags=float,update
instr lfsux    type=load width=32 srcs=2 dsts=2 flags=float,update,indexed
instr lfdux    type=load width=64 srcs=2 dsts=2 flags=float,update,indexed
instr stfs     type=store width=32 srcs=2 dsts=0 imm=1 flags=float
instr stfd     type=store width=64 srcs=2 dsts=0 imm=1 flags=float
instr stfsx    type=store width=32 srcs=3 dsts=0 flags=float,indexed
instr stfdx    type=store width=64 srcs=3 dsts=0 flags=float,indexed
instr stfsu    type=store width=32 srcs=2 dsts=1 imm=1 flags=float,update
instr stfdu    type=store width=64 srcs=2 dsts=1 imm=1 flags=float,update
instr stfsux   type=store width=32 srcs=3 dsts=1 flags=float,update,indexed
instr stfdux   type=store width=64 srcs=3 dsts=1 flags=float,update,indexed
instr stfiwx   type=store width=32 srcs=3 dsts=0 flags=float,indexed

# --- Vector (VMX) loads/stores --------------------------------------
instr lvx      type=load width=128 srcs=2 dsts=1 flags=vector,indexed
instr lvxl     type=load width=128 srcs=2 dsts=1 flags=vector,indexed
instr lvebx    type=load width=8   srcs=2 dsts=1 flags=vector,indexed
instr lvehx    type=load width=16  srcs=2 dsts=1 flags=vector,indexed
instr lvewx    type=load width=32  srcs=2 dsts=1 flags=vector,indexed
instr stvx     type=store width=128 srcs=3 dsts=0 flags=vector,indexed
instr stvxl    type=store width=128 srcs=3 dsts=0 flags=vector,indexed
instr stvebx   type=store width=8   srcs=3 dsts=0 flags=vector,indexed
instr stvehx   type=store width=16  srcs=3 dsts=0 flags=vector,indexed
instr stvewx   type=store width=32  srcs=3 dsts=0 flags=vector,indexed

# --- VSX loads/stores -------------------------------------------------
instr lxvd2x   type=load width=128 srcs=2 dsts=1 flags=vector,indexed
instr lxvw4x   type=load width=128 srcs=2 dsts=1 flags=vector,indexed
instr lxvdsx   type=load width=64  srcs=2 dsts=1 flags=vector,indexed
instr lxsdx    type=load width=64  srcs=2 dsts=1 flags=vector,indexed
instr stxvd2x  type=store width=128 srcs=3 dsts=0 flags=vector,indexed
instr stxvw4x  type=store width=128 srcs=3 dsts=0 flags=vector,indexed
instr stxsdx   type=store width=64  srcs=3 dsts=0 flags=vector,indexed

# --- Scalar floating point compute -----------------------------------
instr fadd     type=float width=64 srcs=2 dsts=1
instr fadds    type=float width=32 srcs=2 dsts=1
instr fsub     type=float width=64 srcs=2 dsts=1
instr fsubs    type=float width=32 srcs=2 dsts=1
instr fmul     type=float width=64 srcs=2 dsts=1
instr fmuls    type=float width=32 srcs=2 dsts=1
instr fdiv     type=float width=64 srcs=2 dsts=1
instr fdivs    type=float width=32 srcs=2 dsts=1
instr fmadd    type=float width=64 srcs=3 dsts=1
instr fmsub    type=float width=64 srcs=3 dsts=1
instr fnmadd   type=float width=64 srcs=3 dsts=1
instr fnmsub   type=float width=64 srcs=3 dsts=1
instr fsqrt    type=float width=64 srcs=1 dsts=1
instr fres     type=float width=32 srcs=1 dsts=1
instr frsqrte  type=float width=64 srcs=1 dsts=1
instr fabs     type=float width=64 srcs=1 dsts=1
instr fneg     type=float width=64 srcs=1 dsts=1
instr fmr      type=float width=64 srcs=1 dsts=1
instr fcfid    type=float width=64 srcs=1 dsts=1
instr fctid    type=float width=64 srcs=1 dsts=1
instr fcmpu    type=float width=64 srcs=2 dsts=1

# --- VSX scalar compute ------------------------------------------------
instr xsadddp   type=float width=64 srcs=2 dsts=1
instr xssubdp   type=float width=64 srcs=2 dsts=1
instr xsmuldp   type=float width=64 srcs=2 dsts=1
instr xsdivdp   type=float width=64 srcs=2 dsts=1
instr xsmaddadp type=float width=64 srcs=3 dsts=1
instr xsmsubadp type=float width=64 srcs=3 dsts=1
instr xssqrtdp  type=float width=64 srcs=1 dsts=1
instr xstsqrtdp type=float width=64 srcs=1 dsts=1
instr xsredp    type=float width=64 srcs=1 dsts=1

# --- VSX vector compute -------------------------------------------------
instr xvadddp    type=vector width=128 srcs=2 dsts=1
instr xvsubdp    type=vector width=128 srcs=2 dsts=1
instr xvmuldp    type=vector width=128 srcs=2 dsts=1
instr xvdivdp    type=vector width=128 srcs=2 dsts=1
instr xvmaddadp  type=vector width=128 srcs=3 dsts=1
instr xvmaddmdp  type=vector width=128 srcs=3 dsts=1
instr xvmsubadp  type=vector width=128 srcs=3 dsts=1
instr xvnmsubadp type=vector width=128 srcs=3 dsts=1
instr xvnmsubmdp type=vector width=128 srcs=3 dsts=1
instr xvsqrtdp   type=vector width=128 srcs=1 dsts=1
instr xvredp     type=vector width=128 srcs=1 dsts=1
instr xvaddsp    type=vector width=128 srcs=2 dsts=1
instr xvsubsp    type=vector width=128 srcs=2 dsts=1
instr xvmulsp    type=vector width=128 srcs=2 dsts=1
instr xvmaddasp  type=vector width=128 srcs=3 dsts=1
instr xvnmsubasp type=vector width=128 srcs=3 dsts=1

# --- Vector (VMX) integer/permute compute --------------------------------
instr vaddubm  type=vector width=128 srcs=2 dsts=1
instr vadduhm  type=vector width=128 srcs=2 dsts=1
instr vadduwm  type=vector width=128 srcs=2 dsts=1
instr vsububm  type=vector width=128 srcs=2 dsts=1
instr vmuloub  type=vector width=128 srcs=2 dsts=1
instr vmulouh  type=vector width=128 srcs=2 dsts=1
instr vmsumubm type=vector width=128 srcs=3 dsts=1
instr vand     type=vector width=128 srcs=2 dsts=1
instr vor      type=vector width=128 srcs=2 dsts=1
instr vxor     type=vector width=128 srcs=2 dsts=1
instr vnor     type=vector width=128 srcs=2 dsts=1
instr vperm    type=vector width=128 srcs=3 dsts=1
instr vsplth   type=vector width=128 srcs=1 dsts=1 imm=1
instr vspltw   type=vector width=128 srcs=1 dsts=1 imm=1
instr vsl      type=vector width=128 srcs=2 dsts=1
instr vsr      type=vector width=128 srcs=2 dsts=1

# --- Decimal floating point ------------------------------------------------
instr dadd     type=decimal width=64 srcs=2 dsts=1
instr dsub     type=decimal width=64 srcs=2 dsts=1
instr dmul     type=decimal width=64 srcs=2 dsts=1
instr ddiv     type=decimal width=64 srcs=2 dsts=1
instr dquai    type=decimal width=64 srcs=1 dsts=1 imm=1
instr drintn   type=decimal width=64 srcs=1 dsts=1
instr dcmpu    type=decimal width=64 srcs=2 dsts=1

# --- Branches -----------------------------------------------------------
instr b        type=branch width=64 srcs=0 dsts=0 imm=1
instr bl       type=branch width=64 srcs=0 dsts=1 imm=1
instr bc       type=branch width=64 srcs=1 dsts=0 imm=1 flags=cond
instr bcl      type=branch width=64 srcs=1 dsts=1 imm=1 flags=cond
instr blr      type=branch width=64 srcs=1 dsts=0
instr bctr     type=branch width=64 srcs=1 dsts=0
instr bdnz     type=branch width=64 srcs=1 dsts=1 imm=1 flags=cond

# --- Condition register logical ------------------------------------------
instr crand    type=condreg width=4 srcs=2 dsts=1
instr cror     type=condreg width=4 srcs=2 dsts=1
instr crxor    type=condreg width=4 srcs=2 dsts=1
instr crnand   type=condreg width=4 srcs=2 dsts=1
instr mcrf     type=condreg width=4 srcs=1 dsts=1
instr mtcrf    type=condreg width=32 srcs=1 dsts=1

# --- System / SPR / cache management --------------------------------------
instr mtctr    type=system width=64 srcs=1 dsts=1
instr mfctr    type=system width=64 srcs=1 dsts=1
instr mtlr     type=system width=64 srcs=1 dsts=1
instr mflr     type=system width=64 srcs=1 dsts=1
instr isync    type=system width=64 srcs=0 dsts=0
instr sync     type=system width=64 srcs=0 dsts=0
instr lwsync   type=system width=64 srcs=0 dsts=0
instr eieio    type=system width=64 srcs=0 dsts=0
instr dcbt     type=system width=64 srcs=2 dsts=0 flags=prefetch
instr dcbtst   type=system width=64 srcs=2 dsts=0 flags=prefetch
instr dcbz     type=system width=64 srcs=2 dsts=0
instr icbi     type=system width=64 srcs=2 dsts=0
instr tlbie    type=system width=64 srcs=1 dsts=0 flags=priv
instr mtmsr    type=system width=64 srcs=1 dsts=0 flags=priv
instr mfmsr    type=system width=64 srcs=0 dsts=1 flags=priv
)ISA";

} // namespace

const std::string &
builtinP7IsaText()
{
    static const std::string text(builtin_text);
    return text;
}

const Isa &
builtinP7Isa()
{
    static const Isa isa =
        Isa::fromText(builtinP7IsaText(), "<builtin-p7>");
    return isa;
}

} // namespace mprobe
