/**
 * @file
 * Per-instruction semantic metadata.
 *
 * The ISA definition module (paper Section 2.1.1) captures "the
 * format and the valid operands for each instruction of the ISA plus
 * a rich set of semantic information": instruction type, operand
 * length, conditional execution, privilege level, pre-fetch
 * semantics, registers used/defined and encoding. The attributes here
 * mirror that list. Micro-architectural properties (latency,
 * throughput, units stressed, EPI) deliberately live in the
 * micro-architecture definition module instead, exactly as the paper
 * separates them.
 */

#ifndef ISA_INSTR_DEF_HH
#define ISA_INSTR_DEF_HH

#include <cstdint>
#include <string>

namespace mprobe
{

/** Base class of an instruction, the primary semantic type. */
enum class InstrClass
{
    IntSimple,  //!< single-cycle fixed point (add, logical, shift)
    IntComplex, //!< multi-cycle fixed point (multiply, divide, popcount)
    Load,       //!< memory read (any register file destination)
    Store,      //!< memory write
    Float,      //!< scalar floating point compute
    Vector,     //!< SIMD compute (VMX/VSX)
    Decimal,    //!< decimal floating point compute
    Branch,     //!< control transfer
    CondReg,    //!< condition-register logical operation
    System      //!< barriers, cache management, SPR moves
};

/** Render an InstrClass for messages and definition files. */
const char *instrClassName(InstrClass cls);

/** Parse an InstrClass keyword; fatal() on unknown keywords. */
InstrClass parseInstrClass(const std::string &s);

/**
 * Semantic description of one instruction of the ISA.
 *
 * Loaded from readable text definition files (see Isa::fromText) so
 * that a user can add or remove instructions without touching the
 * framework internals, as emphasized in the paper.
 */
struct InstrDef
{
    /** Mnemonic, e.g. "xvmaddadp". */
    std::string name;
    /** Base semantic class. */
    InstrClass cls = InstrClass::IntSimple;
    /** Operand datapath width in bits (8..128). */
    int width = 64;
    /** Number of source register operands. */
    int srcs = 2;
    /** Number of destination register operands. */
    int dsts = 1;
    /** Carries an immediate operand. */
    bool hasImm = false;

    /**
     * @name Modifier flags
     * Orthogonal attributes combined with the base class, e.g. a
     * vector load is cls=Load with vectorData=true.
     */
    /**@{*/
    /** Memory op moving vector (VMX/VSX) data. */
    bool vectorData = false;
    /** Memory op moving scalar floating point data. */
    bool floatData = false;
    /** Memory op moving decimal floating point data. */
    bool decimalData = false;
    /** Address-update form (writes the base register back). */
    bool update = false;
    /** Algebraic (sign-extending) load. */
    bool algebraic = false;
    /** Indexed addressing form (reg + reg). */
    bool indexed = false;
    /** Conditionally executed. */
    bool conditional = false;
    /** Requires supervisor privilege. */
    bool privileged = false;
    /** Data pre-fetch hint. */
    bool prefetch = false;
    /**@}*/

    /** Synthetic 32-bit encoding (primary opcode in the top bits). */
    uint32_t encoding = 0;

    /** @name Convenience queries (used by generation policies) */
    /**@{*/
    bool isLoad() const { return cls == InstrClass::Load; }
    bool isStore() const { return cls == InstrClass::Store; }
    bool isMemory() const { return isLoad() || isStore(); }
    bool isBranch() const { return cls == InstrClass::Branch; }

    /** Any fixed-point compute class. */
    bool
    isInteger() const
    {
        return cls == InstrClass::IntSimple ||
               cls == InstrClass::IntComplex;
    }

    /** Any floating point / vector / decimal compute class. */
    bool
    isFpVector() const
    {
        return cls == InstrClass::Float ||
               cls == InstrClass::Vector ||
               cls == InstrClass::Decimal;
    }

    /** Memory op whose data belongs to the vector-scalar domain. */
    bool
    movesVsuData() const
    {
        return isMemory() &&
               (vectorData || floatData || decimalData);
    }
    /**@}*/
};

} // namespace mprobe

#endif // ISA_INSTR_DEF_HH
