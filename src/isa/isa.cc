/**
 * @file
 * ISA registry implementation and definition-file parser.
 */

#include "isa/isa.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

const char *
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::IntSimple:  return "int";
      case InstrClass::IntComplex: return "int_complex";
      case InstrClass::Load:       return "load";
      case InstrClass::Store:      return "store";
      case InstrClass::Float:      return "float";
      case InstrClass::Vector:     return "vector";
      case InstrClass::Decimal:    return "decimal";
      case InstrClass::Branch:     return "branch";
      case InstrClass::CondReg:    return "condreg";
      case InstrClass::System:     return "system";
    }
    panic("instrClassName: bad class");
}

InstrClass
parseInstrClass(const std::string &s)
{
    std::string t = toLower(trim(s));
    if (t == "int")         return InstrClass::IntSimple;
    if (t == "int_complex") return InstrClass::IntComplex;
    if (t == "load")        return InstrClass::Load;
    if (t == "store")       return InstrClass::Store;
    if (t == "float")       return InstrClass::Float;
    if (t == "vector")      return InstrClass::Vector;
    if (t == "decimal")     return InstrClass::Decimal;
    if (t == "branch")      return InstrClass::Branch;
    if (t == "condreg")     return InstrClass::CondReg;
    if (t == "system")      return InstrClass::System;
    fatal(cat("unknown instruction class '", s, "'"));
}

Isa::Isa(std::string name) : isaName(std::move(name)) {}

namespace
{

void
applyFlag(InstrDef &def, const std::string &flag,
          const std::string &context)
{
    std::string f = toLower(trim(flag));
    if (f == "vector")         def.vectorData = true;
    else if (f == "float")     def.floatData = true;
    else if (f == "decimal")   def.decimalData = true;
    else if (f == "update")    def.update = true;
    else if (f == "algebraic") def.algebraic = true;
    else if (f == "indexed")   def.indexed = true;
    else if (f == "cond")      def.conditional = true;
    else if (f == "priv")      def.privileged = true;
    else if (f == "prefetch")  def.prefetch = true;
    else if (f == "-" || f.empty()) { /* no flags */ }
    else
        fatal(cat("unknown instruction flag '", flag, "' in ",
                  context));
}

} // namespace

Isa
Isa::fromText(const std::string &text, const std::string &origin)
{
    Isa isa;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    uint32_t next_enc = 1;
    while (std::getline(in, line)) {
        ++lineno;
        std::string context = cat(origin, ":", lineno);
        std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        auto fields = splitWs(s);
        const std::string &kw = fields[0];
        if (kw == "isa") {
            if (fields.size() < 2)
                fatal(cat("missing ISA name in ", context));
            isa.isaName = fields[1];
            continue;
        }
        if (kw == "version") {
            if (fields.size() < 2)
                fatal(cat("missing version in ", context));
            isa.isaVersion = fields[1];
            continue;
        }
        if (kw != "instr")
            fatal(cat("unknown directive '", kw, "' in ", context));
        if (fields.size() < 2)
            fatal(cat("instr with no mnemonic in ", context));

        InstrDef def;
        def.name = fields[1];
        def.encoding = (next_enc++ << 16);
        for (size_t i = 2; i < fields.size(); ++i) {
            auto kv = split(fields[i], '=');
            if (kv.size() != 2)
                fatal(cat("expected key=value, got '", fields[i],
                          "' in ", context));
            const std::string &key = kv[0];
            const std::string &val = kv[1];
            if (key == "type") {
                def.cls = parseInstrClass(val);
            } else if (key == "width") {
                def.width = static_cast<int>(parseInt(val, context));
            } else if (key == "srcs") {
                def.srcs = static_cast<int>(parseInt(val, context));
            } else if (key == "dsts") {
                def.dsts = static_cast<int>(parseInt(val, context));
            } else if (key == "imm") {
                def.hasImm = parseInt(val, context) != 0;
            } else if (key == "enc") {
                def.encoding = static_cast<uint32_t>(
                    parseInt(val, context));
            } else if (key == "flags") {
                for (const auto &f : split(val, ','))
                    applyFlag(def, f, context);
            } else {
                fatal(cat("unknown instr key '", key, "' in ",
                          context));
            }
        }
        if (def.width <= 0 || def.width > 128)
            fatal(cat("bad width ", def.width, " in ", context));
        if (isa.find(def.name) >= 0)
            fatal(cat("duplicate instruction '", def.name, "' in ",
                      context));
        isa.add(def);
    }
    return isa;
}

Isa
Isa::fromFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(cat("cannot open ISA definition '", path, "'"));
    std::ostringstream os;
    os << f.rdbuf();
    return fromText(os.str(), path);
}

Isa::OpIndex
Isa::add(const InstrDef &def)
{
    if (find(def.name) >= 0)
        fatal(cat("duplicate instruction '", def.name, "'"));
    defs.push_back(def);
    return static_cast<OpIndex>(defs.size()) - 1;
}

const InstrDef &
Isa::at(OpIndex idx) const
{
    if (idx < 0 || static_cast<size_t>(idx) >= defs.size())
        panic(cat("Isa::at: bad opcode index ", idx));
    return defs[static_cast<size_t>(idx)];
}

Isa::OpIndex
Isa::find(const std::string &mnemonic) const
{
    for (size_t i = 0; i < defs.size(); ++i)
        if (defs[i].name == mnemonic)
            return static_cast<OpIndex>(i);
    return -1;
}

const InstrDef &
Isa::byName(const std::string &mnemonic) const
{
    OpIndex idx = find(mnemonic);
    if (idx < 0)
        fatal(cat("unknown instruction '", mnemonic, "' in ISA ",
                  isaName));
    return at(idx);
}

std::vector<Isa::OpIndex>
Isa::select(const std::function<bool(const InstrDef &)> &pred) const
{
    std::vector<OpIndex> out;
    for (size_t i = 0; i < defs.size(); ++i)
        if (pred(defs[i]))
            out.push_back(static_cast<OpIndex>(i));
    return out;
}

std::vector<Isa::OpIndex>
Isa::loads() const
{
    return select([](const InstrDef &d) { return d.isLoad(); });
}

std::vector<Isa::OpIndex>
Isa::stores() const
{
    return select([](const InstrDef &d) { return d.isStore(); });
}

std::vector<Isa::OpIndex>
Isa::memoryOps() const
{
    return select([](const InstrDef &d) { return d.isMemory(); });
}

std::vector<Isa::OpIndex>
Isa::branches() const
{
    return select([](const InstrDef &d) { return d.isBranch(); });
}

std::vector<Isa::OpIndex>
Isa::integerOps() const
{
    return select([](const InstrDef &d) { return d.isInteger(); });
}

std::vector<Isa::OpIndex>
Isa::fpVectorOps() const
{
    return select([](const InstrDef &d) { return d.isFpVector(); });
}

std::string
Isa::toText() const
{
    std::ostringstream os;
    os << "isa " << isaName << "\n";
    if (!isaVersion.empty())
        os << "version " << isaVersion << "\n";
    for (const auto &d : defs) {
        os << "instr " << d.name << " type=" << instrClassName(d.cls)
           << " width=" << d.width << " srcs=" << d.srcs
           << " dsts=" << d.dsts;
        if (d.hasImm)
            os << " imm=1";
        std::string flags;
        auto addf = [&](bool on, const char *f) {
            if (on)
                flags += (flags.empty() ? "" : ",") + std::string(f);
        };
        addf(d.vectorData, "vector");
        addf(d.floatData, "float");
        addf(d.decimalData, "decimal");
        addf(d.update, "update");
        addf(d.algebraic, "algebraic");
        addf(d.indexed, "indexed");
        addf(d.conditional, "cond");
        addf(d.privileged, "priv");
        addf(d.prefetch, "prefetch");
        if (!flags.empty())
            os << " flags=" << flags;
        os << "\n";
    }
    return os.str();
}

} // namespace mprobe
