/**
 * @file
 * ISA registry: parsing, lookup and query interface.
 *
 * Definitions are supplied "using readable text files ... constructed
 * using the information from ISA definition manuals" (paper Section
 * 2.1.1). The format is line oriented:
 *
 *     isa POWER7-like
 *     version 2.06B
 *     # mnemonic then key=value attributes; unset keys take defaults
 *     instr add   type=int    width=64 srcs=2 dsts=1
 *     instr lbz   type=load   width=8  srcs=1 dsts=1 imm=1
 *     instr stfdu type=store  width=64 flags=float,update
 *
 * Recognised keys: type, width, srcs, dsts, imm, flags, enc.
 * Recognised flags: vector, float, decimal, update, algebraic,
 * indexed, cond, priv, prefetch.
 */

#ifndef ISA_ISA_HH
#define ISA_ISA_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/instr_def.hh"

namespace mprobe
{

/**
 * An instruction-set architecture: a named collection of InstrDef
 * records with query helpers used by generation policies
 * (e.g. "select the loads", Figure 2 line 13).
 */
class Isa
{
  public:
    /** Opcode index: position of an instruction within the ISA. */
    using OpIndex = int;

    /** An empty ISA with the given name. */
    explicit Isa(std::string name = "anonymous");

    /** Parse a definition from text; fatal() on malformed input. */
    static Isa fromText(const std::string &text,
                        const std::string &origin = "<string>");

    /** Parse a definition file; fatal() if unreadable/malformed. */
    static Isa fromFile(const std::string &path);

    /** ISA name from the `isa` directive. */
    const std::string &name() const { return isaName; }

    /** Version string from the `version` directive (may be empty). */
    const std::string &version() const { return isaVersion; }

    /** Add one instruction; fatal() on duplicate mnemonics. */
    OpIndex add(const InstrDef &def);

    /** Number of instructions. */
    size_t size() const { return defs.size(); }

    /** Instruction record by opcode index; panics when out of range. */
    const InstrDef &at(OpIndex idx) const;

    /** All instruction records. */
    const std::vector<InstrDef> &all() const { return defs; }

    /** Opcode index by mnemonic, or -1 when absent. */
    OpIndex find(const std::string &mnemonic) const;

    /** Instruction record by mnemonic; fatal() when absent. */
    const InstrDef &byName(const std::string &mnemonic) const;

    /**
     * Generic query: opcode indices of instructions satisfying the
     * predicate, e.g. `isa.select([](auto &i){ return i.isLoad(); })`.
     */
    std::vector<OpIndex>
    select(const std::function<bool(const InstrDef &)> &pred) const;

    /** @name Common pre-canned queries */
    /**@{*/
    std::vector<OpIndex> loads() const;
    std::vector<OpIndex> stores() const;
    std::vector<OpIndex> memoryOps() const;
    std::vector<OpIndex> branches() const;
    std::vector<OpIndex> integerOps() const;
    std::vector<OpIndex> fpVectorOps() const;
    /**@}*/

    /** Render the ISA back to definition-file text. */
    std::string toText() const;

  private:
    std::string isaName;
    std::string isaVersion;
    std::vector<InstrDef> defs;
};

/**
 * The built-in P7-like ISA definition used throughout the case
 * studies. Contains every instruction named in the paper plus a broad
 * complement of fixed point, memory, floating point, vector, decimal,
 * branch and system instructions (~190 total).
 */
const Isa &builtinP7Isa();

/** The raw definition text behind builtinP7Isa() (for tests/tools). */
const std::string &builtinP7IsaText();

} // namespace mprobe

#endif // ISA_ISA_HH
