/**
 * @file
 * Invariant-linter rules and tree driver.
 */

#include "lint/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "lint/tokenize.hh"
#include "util/logging.hh"

namespace mprobe
{

namespace fs = std::filesystem;

std::string
LintFinding::format() const
{
    return cat(file, ":", line, ": [", rule, "] ", message);
}

namespace
{

bool
pathStartsWith(const std::string &path, const std::string &prefix)
{
    return path.rfind(prefix, 0) == 0;
}

// ----------------------------------------------------------------
// Rule: nondeterminism — no wall clocks / ambient RNG in
// result-feeding code.

/** Identifiers forbidden wherever they appear (clock/RNG types). */
const char *const kForbiddenTypes[] = {
    "random_device",
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
};

/** Identifiers forbidden when called (next token is "("). */
const char *const kForbiddenCalls[] = {
    "rand",          "srand",   "drand48", "lrand48",
    "mrand48",       "random",  "time",    "clock",
    "gettimeofday",  "clock_gettime", "timespec_get",
};

/**
 * Keywords that can directly precede a call expression. Any other
 * identifier in front of `name(` means a declaration
 * (`Type name(...)`) rather than a call.
 */
bool
exprKeyword(const std::string &s)
{
    return s == "return" || s == "throw" || s == "sizeof" ||
           s == "else" || s == "do" || s == "co_return" ||
           s == "co_await" || s == "co_yield" || s == "not" ||
           s == "and" || s == "or" || s == "xor";
}

/**
 * True when token @p i looks like a call of the libc/std function
 * spelled toks[i]: followed by "(", not a member access
 * (obj.time()), not qualified by a project scope
 * (DependencyDistancePass::random(...)), and not a declaration
 * (`static Pass random(int, int);`). `std::`-qualified and bare
 * calls both count.
 */
bool
freeCallContext(const std::vector<LintToken> &toks, size_t i)
{
    if (i + 1 >= toks.size() ||
        toks[i + 1].kind != LintToken::Kind::Punct ||
        toks[i + 1].text != "(")
        return false;
    if (i == 0)
        return true;
    const LintToken &prev = toks[i - 1];
    if (prev.kind == LintToken::Kind::Identifier)
        return exprKeyword(prev.text);
    if (prev.kind != LintToken::Kind::Punct)
        return true;
    if (prev.text == "." || prev.text == ">")
        return false; // member access (">" closes "->")
    if (prev.text == ":" && i >= 2 &&
        toks[i - 2].kind == LintToken::Kind::Punct &&
        toks[i - 2].text == ":") {
        // Qualified: only std:: (or global ::) stays forbidden.
        if (i >= 3 &&
            toks[i - 3].kind == LintToken::Kind::Identifier)
            return toks[i - 3].text == "std";
    }
    return true;
}

bool
nondeterminismScope(const std::string &path)
{
    // Library code and the CLI tools feed results; benches time
    // their own wall-clock cost and tests may construct clocks for
    // TTL fixtures, so both stay out of scope.
    return pathStartsWith(path, "src/") ||
           pathStartsWith(path, "tools/");
}

void
nondeterminismRule(const std::string &path, const LintSource &src,
                   std::vector<LintFinding> &out)
{
    if (!nondeterminismScope(path))
        return;
    const auto &toks = src.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const LintToken &t = toks[i];
        if (t.kind != LintToken::Kind::Identifier)
            continue;
        bool hit = false;
        for (const char *name : kForbiddenTypes)
            if (t.text == name)
                hit = true;
        if (!hit && freeCallContext(toks, i))
            for (const char *name : kForbiddenCalls)
                if (t.text == name)
                    hit = true;
        if (!hit)
            continue;
        if (src.exempt("wallclock-ok", t.line) ||
            src.exempt("nondeterminism-ok", t.line))
            continue;
        out.push_back(
            {path, t.line, "nondeterminism",
             cat("'", t.text,
                 "' is a nondeterminism source; results must "
                 "depend only on (program, config, salt). If this "
                 "is progress/ETA/heartbeat-only code, annotate "
                 "the line '// lint: wallclock-ok(<reason>)'")});
    }
}

// ----------------------------------------------------------------
// Rule: unordered-iteration — no hash-ordered containers in the
// byte-identity file set.

const char *const kUnorderedTypes[] = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

bool
unorderedScope(const std::string &path)
{
    // Everything whose output is byte-compared across runs, shards
    // and workers: exports, cache serialization, manifests, the
    // spec/campaign fingerprints, machine fingerprint, the hasher
    // itself, and the service's streamed status/exports.
    static const char *const files[] = {
        "src/campaign/export.",   "src/campaign/cache.",
        "src/campaign/manifest.", "src/campaign/spec.",
        "src/campaign/campaign.", "src/sim/machine.",
        "src/util/hash.",         "src/service/service.",
    };
    for (const char *f : files)
        if (pathStartsWith(path, f))
            return true;
    return false;
}

void
unorderedRule(const std::string &path, const LintSource &src,
              std::vector<LintFinding> &out)
{
    if (!unorderedScope(path))
        return;
    for (const LintToken &t : src.tokens) {
        if (t.kind != LintToken::Kind::Identifier)
            continue;
        bool hit = false;
        for (const char *name : kUnorderedTypes)
            if (t.text == name)
                hit = true;
        if (!hit || src.exempt("unordered-ok", t.line))
            continue;
        out.push_back(
            {path, t.line, "unordered-iteration",
             cat("'", t.text,
                 "' in byte-identity code: hash-table iteration "
                 "order leaks into exports/fingerprints and "
                 "breaks bit-identical merges. Use std::map/"
                 "std::set or sort explicitly; if the container "
                 "is provably never iterated for output, annotate "
                 "'// lint: unordered-ok(<reason>)'")});
    }
}

// ----------------------------------------------------------------
// Rule: obs-isolation — telemetry can never leak into results.

bool
obsIsolationScope(const std::string &path)
{
    // The byte-identity file set proper: serialization, exports,
    // manifests, specs and the hasher. Engine/orchestration files
    // (campaign.cc, claims, service, machine) MAY instrument with
    // obs:: — their obs calls are off the result path by the obs
    // API contract — but the files that *format result bytes* must
    // not even reference the namespace, so a trace or metric value
    // cannot possibly reach an export, cache entry or key.
    static const char *const files[] = {
        "src/campaign/export.", "src/campaign/cache.",
        "src/campaign/manifest.", "src/campaign/spec.",
        "src/util/hash.",
    };
    for (const char *f : files)
        if (pathStartsWith(path, f))
            return true;
    return false;
}

void
obsIsolationRule(const std::string &path, const LintSource &src,
                 std::vector<LintFinding> &out)
{
    if (!obsIsolationScope(path))
        return;
    const auto &toks = src.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind != LintToken::Kind::Identifier ||
            toks[i].text != "obs")
            continue;
        if (toks[i + 1].kind != LintToken::Kind::Punct ||
            toks[i + 1].text != ":" ||
            toks[i + 2].kind != LintToken::Kind::Punct ||
            toks[i + 2].text != ":")
            continue;
        // Deliberately no exemption tag: unlike wall clocks (which
        // have legitimate progress-only uses in these files),
        // there is no valid reason for serialization code to touch
        // the observability layer.
        out.push_back(
            {path, toks[i].line, "obs-isolation",
             "'obs::' in the byte-identity file set: "
             "serialization, exports and hashing must not "
             "reference the observability layer, so telemetry can "
             "never leak into results. Record the plain count "
             "here and sync it into the registry from the engine "
             "(see ResultCache::corrupt())"});
    }
}

// ----------------------------------------------------------------
// Rule: hot-path-alloc — arena discipline inside
// simulateCoreDecoded.

/** Heap-allocating names forbidden in the hot path when called. */
const char *const kAllocCalls[] = {
    "malloc",       "calloc",  "realloc",       "strdup",
    "make_unique",  "make_shared", "push_back", "emplace_back",
    "emplace",      "resize",  "reserve",       "shrink_to_fit",
    "insert",       "append",  "to_string",
};

/**
 * Locate the brace-balanced body of function @p name: the token
 * index range (begin, end) covering everything between its braces.
 * Returns false when no definition is found.
 */
bool
findFunctionBody(const std::vector<LintToken> &toks,
                 const std::string &name, size_t &begin,
                 size_t &end)
{
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != LintToken::Kind::Identifier ||
            toks[i].text != name)
            continue;
        if (toks[i + 1].kind != LintToken::Kind::Punct ||
            toks[i + 1].text != "(")
            continue;
        // Skip the balanced parameter list.
        size_t j = i + 1;
        int pdepth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].kind != LintToken::Kind::Punct)
                continue;
            if (toks[j].text == "(")
                ++pdepth;
            else if (toks[j].text == ")" && --pdepth == 0)
                break;
        }
        if (j >= toks.size())
            return false;
        // Scan the post-parameter tokens (const, noexcept, trailing
        // return pieces) up to the body; a ';' or '=' means this
        // occurrence was a declaration or a call site.
        ++j;
        bool body = false;
        for (; j < toks.size(); ++j) {
            if (toks[j].kind == LintToken::Kind::Punct &&
                toks[j].text == "{") {
                body = true;
                break;
            }
            if (toks[j].kind == LintToken::Kind::Punct &&
                (toks[j].text == ";" || toks[j].text == "=" ||
                 toks[j].text == "(" || toks[j].text == "}"))
                break;
        }
        if (!body)
            continue;
        begin = j + 1;
        int bdepth = 1;
        for (++j; j < toks.size(); ++j) {
            if (toks[j].kind != LintToken::Kind::Punct)
                continue;
            if (toks[j].text == "{")
                ++bdepth;
            else if (toks[j].text == "}" && --bdepth == 0) {
                end = j;
                return true;
            }
        }
        return false;
    }
    return false;
}

void
hotPathRule(const std::string &path, const LintSource &src,
            std::vector<LintFinding> &out)
{
    if (path != "src/sim/core.cc")
        return;
    const std::string fn = "simulateCoreDecoded";
    size_t begin = 0, end = 0;
    if (!findFunctionBody(src.tokens, fn, begin, end)) {
        // A renamed/moved hot path must not silently disable its
        // allocation discipline: make the hole visible.
        out.push_back({path, 1, "hot-path-alloc",
                       cat("hot-path function '", fn,
                           "' not found; update the rule scope in "
                           "src/lint/lint.cc alongside the "
                           "rename")});
        return;
    }
    const auto &toks = src.tokens;
    for (size_t i = begin; i < end; ++i) {
        const LintToken &t = toks[i];
        if (t.kind != LintToken::Kind::Identifier)
            continue;
        bool hit = t.text == "new" || t.text == "delete";
        if (!hit && i + 1 < toks.size() &&
            toks[i + 1].kind == LintToken::Kind::Punct &&
            toks[i + 1].text == "(")
            for (const char *name : kAllocCalls)
                if (t.text == name)
                    hit = true;
        if (!hit || src.exempt("hotpath-alloc-ok", t.line))
            continue;
        out.push_back(
            {path, t.line, "hot-path-alloc",
             cat("'", t.text, "' inside ", fn,
                 ": the decoded hot path is arena-only (PR 7); "
                 "allocate through SimScratch/SimArena or hoist "
                 "the allocation out of the per-run path. "
                 "Cold abort paths can annotate "
                 "'// lint: hotpath-alloc-ok(<reason>)'")});
    }
}

// ----------------------------------------------------------------
// Rule: fingerprint-coverage.

struct MemberField
{
    std::string name;
    int line = 0;
};

/**
 * Extract the instance data members of struct/class @p name from a
 * tokenized header: depth-1 declaration statements, skipping member
 * functions (a '(' before any initializer), access specifiers,
 * using/typedef/friend declarations, static/constexpr members and
 * nested type definitions without declarators.
 */
bool
parseStructMembers(const std::vector<LintToken> &toks,
                   const std::string &name,
                   std::vector<MemberField> &out)
{
    size_t i = 0;
    size_t body = toks.size();
    for (; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != LintToken::Kind::Identifier ||
            (toks[i].text != "struct" && toks[i].text != "class"))
            continue;
        if (toks[i + 1].kind != LintToken::Kind::Identifier ||
            toks[i + 1].text != name)
            continue;
        // The definition's '{' must come before any ';' (otherwise
        // this was a forward declaration).
        for (size_t j = i + 2; j < toks.size(); ++j) {
            if (toks[j].kind != LintToken::Kind::Punct)
                continue;
            if (toks[j].text == "{") {
                body = j + 1;
                break;
            }
            if (toks[j].text == ";")
                break;
        }
        if (body != toks.size())
            break;
    }
    if (body == toks.size())
        return false;

    std::vector<const LintToken *> stmt;
    auto classify = [&]() {
        if (stmt.empty())
            return;
        std::vector<const LintToken *> s = stmt;
        stmt.clear();
        const std::string &first = s[0]->text;
        if (first == "public" || first == "private" ||
            first == "protected" || first == "using" ||
            first == "typedef" || first == "friend" ||
            first == "template")
            return;
        bool skip = false;
        for (const LintToken *t : s)
            if (t->kind == LintToken::Kind::Identifier &&
                (t->text == "static" || t->text == "constexpr"))
                skip = true;
        if (skip)
            return;
        // Declarator prefix: everything before the initializer or
        // array/brace-init suffix.
        std::vector<const LintToken *> prefix;
        for (const LintToken *t : s) {
            if (t->kind == LintToken::Kind::Punct &&
                (t->text == "=" || t->text == "[" ||
                 t->text == "{"))
                break;
            prefix.push_back(t);
        }
        for (const LintToken *t : prefix)
            if (t->kind == LintToken::Kind::Punct &&
                t->text == "(")
                return; // member function / constructor
        // Nested type definition without a declarator ("struct
        // Entry { ... };"): nothing to cover.
        const LintToken *last = nullptr;
        size_t ids = 0;
        for (const LintToken *t : prefix)
            if (t->kind == LintToken::Kind::Identifier) {
                last = t;
                ++ids;
            }
        if (!last)
            return;
        if ((first == "struct" || first == "class" ||
             first == "enum" || first == "union") &&
            ids < 3)
            return;
        out.push_back({last->text, last->line});
    };

    int depth = 1;
    for (size_t j = body; j < toks.size() && depth > 0; ++j) {
        const LintToken &t = toks[j];
        if (t.kind == LintToken::Kind::Punct) {
            if (t.text == "{") {
                ++depth;
                continue;
            }
            if (t.text == "}") {
                if (--depth == 0)
                    break;
                if (depth == 1) {
                    // End of a member-function body or nested type:
                    // a following ';' or a non-identifier starts a
                    // fresh statement; an identifier is a
                    // declarator for the braced type ("} entries;")
                    // and keeps the statement open.
                    if (j + 1 < toks.size() &&
                        toks[j + 1].kind ==
                            LintToken::Kind::Identifier)
                        continue;
                    classify();
                }
                continue;
            }
            if (t.text == ";" && depth == 1) {
                classify();
                continue;
            }
        }
        if (depth == 1)
            stmt.push_back(&t);
    }
    return true;
}

} // namespace

std::vector<LintFinding>
lintFingerprintCoverage(const std::string &struct_file,
                        const std::string &struct_text,
                        const std::string &struct_name,
                        const std::string &fn_file,
                        const std::string &fn_text,
                        const std::string &fn_name)
{
    std::vector<LintFinding> out;
    LintSource sdecl = lintTokenize(struct_text);
    LintSource simpl = lintTokenize(fn_text);

    std::vector<MemberField> fields;
    if (!parseStructMembers(sdecl.tokens, struct_name, fields)) {
        out.push_back({struct_file, 1, "fingerprint-coverage",
                       cat("struct '", struct_name,
                           "' not found; update the coverage "
                           "pair in src/lint/lint.cc alongside "
                           "the rename")});
        return out;
    }
    size_t begin = 0, end = 0;
    if (!findFunctionBody(simpl.tokens, fn_name, begin, end)) {
        out.push_back({fn_file, 1, "fingerprint-coverage",
                       cat("fingerprint function '", fn_name,
                           "' not found; update the coverage "
                           "pair in src/lint/lint.cc alongside "
                           "the rename")});
        return out;
    }
    std::set<std::string> referenced;
    for (size_t i = begin; i < end; ++i)
        if (simpl.tokens[i].kind == LintToken::Kind::Identifier)
            referenced.insert(simpl.tokens[i].text);

    for (const MemberField &f : fields) {
        if (referenced.count(f.name))
            continue;
        if (sdecl.exempt("fingerprint-exempt", f.line))
            continue;
        out.push_back(
            {struct_file, f.line, "fingerprint-coverage",
             cat("field '", struct_name, "::", f.name,
                 "' is not referenced by ", fn_name,
                 "(): hash it there, or annotate the declaration "
                 "'// lint: fingerprint-exempt(<reason>)' if it "
                 "can never change results")});
    }
    return out;
}

std::vector<LintFinding>
lintSourceText(const std::string &path, const std::string &text)
{
    std::vector<LintFinding> out;
    LintSource src = lintTokenize(text);
    nondeterminismRule(path, src, out);
    unorderedRule(path, src, out);
    obsIsolationRule(path, src, out);
    hotPathRule(path, src, out);
    return out;
}

namespace
{

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream os;
    os << f.rdbuf();
    out = os.str();
    return true;
}

/** One struct-vs-fingerprint pair lintTree() cross-references. */
struct CoveragePair
{
    const char *structFile;
    const char *structName;
    const char *fnFile;
    const char *fnName;
};

const CoveragePair kCoveragePairs[] = {
    {"src/sim/machine.hh", "GroundTruthParams",
     "src/sim/machine.cc", "fingerprint"},
    {"src/campaign/spec.hh", "CampaignSpec",
     "src/campaign/campaign.cc", "campaignFingerprint"},
};

} // namespace

std::vector<LintFinding>
lintTree(const std::string &root)
{
    std::vector<LintFinding> out;
    std::vector<std::string> files;
    for (const char *top : {"src", "bench", "tests", "tools"}) {
        fs::path dir = fs::path(root) / top;
        std::error_code ec;
        for (fs::recursive_directory_iterator
                 it(dir, ec),
             end;
             it != end; it.increment(ec)) {
            if (ec)
                break;
            if (!it->is_regular_file())
                continue;
            fs::path p = it->path();
            if (p.extension() != ".cc" && p.extension() != ".hh")
                continue;
            files.push_back(
                fs::relative(p, root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    for (const std::string &rel : files) {
        std::string text;
        if (!readFile((fs::path(root) / rel).string(), text)) {
            out.push_back({rel, 0, "io", "cannot read file"});
            continue;
        }
        auto found = lintSourceText(rel, text);
        out.insert(out.end(), found.begin(), found.end());
    }

    for (const CoveragePair &cp : kCoveragePairs) {
        std::string sdecl, simpl;
        if (!readFile((fs::path(root) / cp.structFile).string(),
                      sdecl)) {
            out.push_back({cp.structFile, 0, "io",
                           "cannot read coverage-pair file"});
            continue;
        }
        if (!readFile((fs::path(root) / cp.fnFile).string(),
                      simpl)) {
            out.push_back({cp.fnFile, 0, "io",
                           "cannot read coverage-pair file"});
            continue;
        }
        auto found = lintFingerprintCoverage(
            cp.structFile, sdecl, cp.structName, cp.fnFile, simpl,
            cp.fnName);
        out.insert(out.end(), found.begin(), found.end());
    }

    std::sort(out.begin(), out.end(),
              [](const LintFinding &a, const LintFinding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return out;
}

} // namespace mprobe
