/**
 * @file
 * Project-specific static analysis: the mprobe invariant linter.
 *
 * The reproduction's load-bearing guarantees are invisible to the
 * compiler: campaigns must be bit-identical at any worker/shard
 * count, exports and manifests must be byte-stable, cache keys and
 * fingerprints must cover every result-relevant parameter, and the
 * decoded simulator hot path must never touch the heap. Each rule
 * here mechanically checks one of those invariants over the source
 * tree, so the next subsystem (new campaign axes, new models, new
 * parallelism) cannot silently break them:
 *
 *  - `nondeterminism`: no wall clocks or ambient RNG
 *    (rand()/std::random_device/time()/system_clock/steady_clock
 *    ...) in result-feeding code (src/ and tools/). Progress, ETA
 *    and heartbeat code declares itself with
 *    `// lint: wallclock-ok(<reason>)`.
 *  - `unordered-iteration`: no std::unordered_map/set in the
 *    export/cache/manifest/fingerprint file set — hash-table
 *    iteration order would leak into byte-compared artifacts.
 *    Escape hatch: `// lint: unordered-ok(<reason>)`.
 *  - `obs-isolation`: no `obs::` reference in the byte-identity
 *    file set (export/cache/manifest/spec/hash) — the
 *    observability layer (src/obs/: traces, metrics, telemetry)
 *    must never be able to leak into results. No escape hatch;
 *    count plainly in place and sync from the engine instead.
 *  - `hot-path-alloc`: no heap allocation (new/make_unique/malloc/
 *    growing containers) inside simulateCoreDecoded in
 *    src/sim/core.cc — the PR-7 arena discipline. Escape hatch:
 *    `// lint: hotpath-alloc-ok(<reason>)`.
 *  - `fingerprint-coverage`: every field of GroundTruthParams must
 *    be referenced by Machine::fingerprint(), and every field of
 *    CampaignSpec by campaignFingerprint(), unless its declaration
 *    carries `// lint: fingerprint-exempt(<reason>)`. Adding a
 *    result-relevant knob without hashing it is the bug class that
 *    silently replays stale cached samples.
 *
 * The per-rule entry points take source text, not paths, so tests
 * drive them with inline fixture snippets; lintTree() is what the
 * CLI and CI run over the real tree.
 */

#ifndef LINT_LINT_HH
#define LINT_LINT_HH

#include <string>
#include <vector>

namespace mprobe
{

/** One rule violation. */
struct LintFinding
{
    /** Repo-relative path of the offending file. */
    std::string file;
    /** 1-based line of the offending token/field. */
    int line = 0;
    /** Rule identifier (e.g. "nondeterminism"). */
    std::string rule;
    std::string message;

    /** "file:line: [rule] message" as printed by mprobe_lint. */
    std::string format() const;
};

/**
 * Run every token-level rule whose scope covers @p path (a
 * repo-relative path like "src/campaign/export.cc") over @p text.
 * Scope decisions live with the rules, so a test can present any
 * snippet as any path.
 */
std::vector<LintFinding> lintSourceText(const std::string &path,
                                        const std::string &text);

/**
 * Fingerprint-coverage check: every data member of
 * @p struct_name declared in @p struct_text must appear as an
 * identifier inside the body of @p fn_name defined in @p fn_text,
 * or carry a `// lint: fingerprint-exempt(<reason>)` annotation on
 * its declaration (same line or the line above). A missing struct
 * or function is itself a finding — a renamed hot spot must not
 * silently disable its checks.
 */
std::vector<LintFinding>
lintFingerprintCoverage(const std::string &struct_file,
                        const std::string &struct_text,
                        const std::string &struct_name,
                        const std::string &fn_file,
                        const std::string &fn_text,
                        const std::string &fn_name);

/**
 * Lint the whole tree under @p root (the repo checkout): every
 * .cc/.hh file beneath src/, bench/, tests/ and tools/ goes through
 * lintSourceText, then the configured fingerprint-coverage pairs
 * (GroundTruthParams vs Machine::fingerprint, CampaignSpec vs
 * campaignFingerprint) are cross-referenced. Findings come back in
 * deterministic (path, line) order.
 */
std::vector<LintFinding> lintTree(const std::string &root);

} // namespace mprobe

#endif // LINT_LINT_HH
