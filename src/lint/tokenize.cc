/**
 * @file
 * Linter tokenizer implementation.
 */

#include "lint/tokenize.hh"

#include <cctype>

#include "util/str.hh"

namespace mprobe
{

namespace
{

inline bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

inline bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Parse `lint: <tag>(<reason>)` occurrences out of one comment's
 * text and append them to @p out. Tolerates leading comment
 * furniture (`//`, `*`); a tag without a parenthesized reason is
 * ignored — the reason is what makes an exemption reviewable.
 */
void
parseAnnotations(const std::string &comment, int line,
                 std::vector<LintAnnotation> &out)
{
    const std::string marker = "lint:";
    size_t pos = 0;
    while ((pos = comment.find(marker, pos)) != std::string::npos) {
        size_t p = pos + marker.size();
        while (p < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[p])))
            ++p;
        size_t tag_begin = p;
        while (p < comment.size() &&
               (identChar(comment[p]) || comment[p] == '-'))
            ++p;
        std::string tag =
            comment.substr(tag_begin, p - tag_begin);
        if (tag.empty() || p >= comment.size() ||
            comment[p] != '(') {
            pos = p;
            continue;
        }
        size_t close = comment.find(')', p + 1);
        if (close == std::string::npos) {
            pos = p;
            continue;
        }
        std::string reason =
            trim(comment.substr(p + 1, close - p - 1));
        if (!reason.empty())
            out.push_back({tag, reason, line});
        pos = close + 1;
    }
}

} // namespace

bool
LintSource::exempt(const std::string &tag, int line) const
{
    for (const LintAnnotation &a : annotations)
        if (a.tag == tag && (a.line == line || a.line == line - 1))
            return true;
    return false;
}

LintSource
lintTokenize(const std::string &text)
{
    LintSource out;
    const size_t n = text.size();
    size_t i = 0;
    int line = 1;

    auto advance = [&](size_t count) {
        for (size_t k = 0; k < count && i < n; ++k, ++i)
            if (text[i] == '\n')
                ++line;
    };

    while (i < n) {
        char c = text[i];
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            advance(1);
            continue;
        }
        // Line comment (annotations live here).
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            size_t end = text.find('\n', i);
            if (end == std::string::npos)
                end = n;
            parseAnnotations(text.substr(i, end - i), line,
                             out.annotations);
            advance(end - i);
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            int start_line = line;
            size_t end = text.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            parseAnnotations(text.substr(i, end - i), start_line,
                             out.annotations);
            advance(end - i);
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
            size_t p = i + 2;
            std::string delim;
            while (p < n && text[p] != '(')
                delim += text[p++];
            std::string closer = ")" + delim + "\"";
            size_t end = text.find(closer, p);
            end = end == std::string::npos ? n
                                           : end + closer.size();
            out.tokens.push_back(
                {LintToken::Kind::String, "", line});
            advance(end - i);
            continue;
        }
        // String / character literal (escape-aware).
        if (c == '"' || c == '\'') {
            int start_line = line;
            size_t p = i + 1;
            while (p < n && text[p] != c) {
                if (text[p] == '\\' && p + 1 < n)
                    ++p;
                ++p;
            }
            if (p < n)
                ++p; // closing quote
            out.tokens.push_back({c == '"' ? LintToken::Kind::String
                                           : LintToken::Kind::Char,
                                  "", start_line});
            advance(p - i);
            continue;
        }
        // Identifier / keyword.
        if (identStart(c)) {
            size_t p = i + 1;
            while (p < n && identChar(text[p]))
                ++p;
            out.tokens.push_back({LintToken::Kind::Identifier,
                                  text.substr(i, p - i), line});
            advance(p - i);
            continue;
        }
        // Numeric literal (incl. hex/floats; exact value is
        // irrelevant to every rule, so a permissive scan is fine).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t p = i + 1;
            while (p < n &&
                   (identChar(text[p]) || text[p] == '.' ||
                    ((text[p] == '+' || text[p] == '-') &&
                     (text[p - 1] == 'e' || text[p - 1] == 'E' ||
                      text[p - 1] == 'p' || text[p - 1] == 'P'))))
                ++p;
            out.tokens.push_back(
                {LintToken::Kind::Number, "", line});
            advance(p - i);
            continue;
        }
        // Everything else: single punctuation characters. Rules
        // match "::" and "->" as two consecutive tokens.
        out.tokens.push_back(
            {LintToken::Kind::Punct, std::string(1, c), line});
        advance(1);
    }
    return out;
}

} // namespace mprobe
