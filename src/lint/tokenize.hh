/**
 * @file
 * Minimal C++ tokenizer for the project linter.
 *
 * mprobe_lint enforces invariants the compiler cannot see (no
 * nondeterminism sources in result-feeding code, no unordered
 * iteration in byte-identity code, arena discipline in the
 * simulator hot path, fingerprint coverage). Those rules only need
 * to see identifiers and punctuation with line numbers — not types,
 * not scopes — so this tokenizer is deliberately tiny: it strips
 * comments and string/character literals (a forbidden name inside a
 * log message must never trip a rule), tracks line numbers, and
 * surfaces `// lint: <tag>(<reason>)` annotations so code can
 * declare reviewed exemptions in place.
 *
 * No libclang dependency on purpose: the linter builds with the
 * project, runs in milliseconds over the whole tree, and gates
 * every PR from the same job that runs clang-format.
 */

#ifndef LINT_TOKENIZE_HH
#define LINT_TOKENIZE_HH

#include <string>
#include <vector>

namespace mprobe
{

/** One lexical token of a linted source file. */
struct LintToken
{
    enum class Kind
    {
        Identifier, //!< identifier or keyword
        Number,     //!< numeric literal (value not parsed)
        String,     //!< string literal (content stripped)
        Char,       //!< character literal (content stripped)
        Punct,      //!< one operator/punctuation character
    };

    Kind kind = Kind::Punct;
    /** Identifier/punctuation spelling; empty for literals. */
    std::string text;
    /** 1-based source line the token starts on. */
    int line = 0;
};

/**
 * An in-source lint exemption: `// lint: <tag>(<reason>)` (the
 * reason is mandatory — an exemption nobody can justify is a
 * finding, not an exemption). Rules honour an annotation on the
 * offending line or on the line directly above it, so both styles
 * work:
 *
 *     using clock = std::chrono::steady_clock; // lint: wallclock-ok(ETA only)
 *
 *     // lint: fingerprint-exempt(execution detail, results invariant)
 *     int threads = 0;
 */
struct LintAnnotation
{
    std::string tag;
    std::string reason;
    /** 1-based line the annotation's comment starts on. */
    int line = 0;
};

/** A tokenized source file. */
struct LintSource
{
    std::vector<LintToken> tokens;
    std::vector<LintAnnotation> annotations;

    /** True when an annotation with @p tag covers @p line (i.e.
     * sits on that line or the one above it). */
    bool exempt(const std::string &tag, int line) const;
};

/**
 * Tokenize C++ source text. Handles //- and block comments, string
 * and character literals with escapes, and raw string literals;
 * preprocessor directives are tokenized like ordinary code (an
 * `#include <unordered_map>` is visible to rules as the identifier
 * `unordered_map`).
 */
LintSource lintTokenize(const std::string &text);

} // namespace mprobe

#endif // LINT_TOKENIZE_HH
