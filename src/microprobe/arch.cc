/**
 * @file
 * Architecture facade implementation.
 */

#include "microprobe/arch.hh"

#include "util/logging.hh"

namespace mprobe
{

Architecture::Architecture(const Isa &isa, UarchDef uarch)
    : isaPtr(&isa), uarchDef(std::move(uarch))
{
}

Architecture
Architecture::get(const std::string &name)
{
    if (name == "POWER7" || name == "POWER7-like")
        return Architecture(builtinP7Isa(), builtinP7Uarch());
    if (name == "POWER7+" || name == "POWER7+-like")
        return Architecture(builtinP7Isa(), builtinP7PlusUarch());
    fatal(cat("unknown architecture '", name,
              "'; available: POWER7, POWER7+"));
}

std::vector<Isa::OpIndex>
Architecture::stressing(const std::vector<Isa::OpIndex> &candidates,
                        const std::string &unit) const
{
    std::vector<Isa::OpIndex> out;
    for (auto idx : candidates)
        if (uarchDef.stresses(isaPtr->at(idx).name, unit))
            out.push_back(idx);
    return out;
}

std::vector<Isa::OpIndex>
Architecture::characterized() const
{
    std::vector<Isa::OpIndex> out;
    for (size_t i = 0; i < isaPtr->size(); ++i) {
        if (uarchDef
                .props(isaPtr->at(static_cast<Isa::OpIndex>(i)).name)
                .complete())
            out.push_back(static_cast<Isa::OpIndex>(i));
    }
    return out;
}

} // namespace mprobe
