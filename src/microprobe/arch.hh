/**
 * @file
 * The Architecture module (paper Figure 1, Section 2.1).
 *
 * Bundles the ISA definition and the micro-architecture definition
 * behind one queryable facade, so generation policies can write the
 * equivalent of the paper's Figure-2 script:
 *
 *     Architecture arch = Architecture::get("POWER7");
 *     auto loads = arch.isa().loads();
 *     auto loads_vsu = arch.stressing(loads, "VSU");
 */

#ifndef MICROPROBE_ARCH_HH
#define MICROPROBE_ARCH_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "uarch/uarch.hh"

namespace mprobe
{

/** ISA + micro-architecture, the target of generation policies. */
class Architecture
{
  public:
    /** Assemble from an ISA and a (possibly partial) uarch def. */
    Architecture(const Isa &isa, UarchDef uarch);

    /**
     * Named registry lookup mirroring
     * `MP.arch.get_architecture("POWER7")` in the paper's script.
     * "POWER7" (or "POWER7-like") returns the builtin definitions;
     * anything else is fatal().
     */
    static Architecture get(const std::string &name);

    const Isa &isa() const { return *isaPtr; }
    const UarchDef &uarch() const { return uarchDef; }
    UarchDef &uarchMut() { return uarchDef; }

    /**
     * Filter @p candidates down to the instructions whose
     * (bootstrapped) unit mapping includes @p unit — the query used
     * in Figure 2 lines 14-16.
     */
    std::vector<Isa::OpIndex>
    stressing(const std::vector<Isa::OpIndex> &candidates,
              const std::string &unit) const;

    /** Instructions with complete bootstrapped properties. */
    std::vector<Isa::OpIndex> characterized() const;

  private:
    const Isa *isaPtr;
    UarchDef uarchDef;
};

} // namespace mprobe

#endif // MICROPROBE_ARCH_HH
