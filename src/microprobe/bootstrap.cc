/**
 * @file
 * Bootstrap implementation.
 */

#include "microprobe/bootstrap.hh"

#include <cmath>

#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "util/logging.hh"

namespace mprobe
{

namespace
{

/** Build the probing micro-benchmark for one instruction. */
Program
probeBench(Architecture &arch, Isa::OpIndex op, bool chained,
           const BootstrapOptions &opts)
{
    const InstrDef &d = arch.isa().at(op);
    Synthesizer synth(arch, opts.seed ^ static_cast<uint64_t>(op));
    synth.addPass<SkeletonPass>(opts.bodySize);
    synth.addPass<SequencePass>(std::vector<Isa::OpIndex>{op});
    if (d.isMemory() || d.prefetch) {
        // Probe benchmarks keep all accesses in the L1 so timing
        // and energy reflect the instruction, not the hierarchy.
        synth.addPass<MemoryModelPass>(MemDistribution{1, 0, 0, 0});
    }
    // Random data minimizes data-switching bias, "allowing fair
    // comparison between instructions" (Section 2.1.2).
    synth.addPass<RegisterInitPass>(DataPattern::Random);
    synth.addPass<ImmediateInitPass>(DataPattern::Random);
    if (chained)
        synth.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::chain()));
    else
        synth.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::none()));
    return synth.synthesize(
        cat("bootstrap-", d.name, chained ? "-chain" : "-free"));
}

} // namespace

BootstrapEntry
bootstrapInstruction(Architecture &arch, const Machine &machine,
                     Isa::OpIndex op, const BootstrapOptions &opts)
{
    const InstrDef &d = arch.isa().at(op);

    Program chain = probeBench(arch, op, true, opts);
    Program free = probeBench(arch, op, false, opts);

    RunResult r_chain = machine.run(chain, opts.config);
    RunResult r_free = machine.run(free, opts.config);
    double idle = machine.idleWatts(opts.config);

    BootstrapEntry e;
    e.mnemonic = d.name;

    // Chained consecutive instances expose the result latency.
    double ipc_chain = r_chain.coreIpc;
    e.latency = ipc_chain > 1e-9 ? 1.0 / ipc_chain : 0.0;
    // Independent instances expose the sustained throughput.
    e.throughput = r_free.coreIpc;

    // Units stressed: per-unit finish rate per instruction.
    double instrs = std::max(r_free.chip.instrs, 1.0);
    auto rate = [&](double ops) { return ops / instrs; };
    struct UnitRate
    {
        const char *name;
        double r;
    };
    const UnitRate unit_rates[] = {
        {"FXU", rate(r_free.chip.fxuOps)},
        {"LSU", rate(r_free.chip.lsuOps)},
        {"VSU", rate(r_free.chip.vsuOps)},
        {"BRU", rate(r_free.chip.bruOps)},
        {"CRU", rate(r_free.chip.cruOps)},
    };
    for (const auto &ur : unit_rates) {
        if (ur.r < opts.unitThreshold)
            continue;
        long mult = std::lround(ur.r);
        if (mult >= 2)
            e.units.push_back(cat(mult, ur.name));
        else
            e.units.push_back(ur.name);
        e.unitRates.push_back(ur.r);
    }
    const UnitRate level_rates[] = {
        {"L1", rate(r_free.chip.l1Hits)},
        {"L2", rate(r_free.chip.l2Hits)},
        {"L3", rate(r_free.chip.l3Hits)},
        {"MEM", rate(r_free.chip.memAcc)},
    };
    for (const auto &lr : level_rates) {
        if (lr.r >= opts.unitThreshold) {
            e.units.push_back(lr.name);
            e.unitRates.push_back(lr.r);
        }
    }

    // EPI and sustained power from the sensor (dynamic = above
    // idle), using the dependency-free version (Section 2.1.2).
    e.powerWatts = std::max(r_free.sensorWatts - idle, 0.0);
    double instr_rate = r_free.rate(r_free.chip.instrs);
    e.epiNj =
        instr_rate > 0 ? e.powerWatts / instr_rate * 1e9 : 0.0;

    // Record into the micro-architecture definition.
    InstrProps &p = arch.uarchMut().propsMut(d.name);
    p.latency = e.latency;
    p.throughput = e.throughput;
    p.epi = e.epiNj;
    p.avgPower = e.powerWatts;
    p.units = e.units;
    return e;
}

std::vector<BootstrapEntry>
bootstrapArchitecture(Architecture &arch, const Machine &machine,
                      const BootstrapOptions &opts)
{
    std::vector<BootstrapEntry> out;
    for (size_t i = 0; i < arch.isa().size(); ++i) {
        auto op = static_cast<Isa::OpIndex>(i);
        const InstrDef &d = arch.isa().at(op);
        if (opts.skipPrivileged && d.privileged)
            continue;
        out.push_back(
            bootstrapInstruction(arch, machine, op, opts));
    }
    inform(cat("bootstrap: characterized ", out.size(), " of ",
               arch.isa().size(), " instructions"));
    return out;
}

} // namespace mprobe
