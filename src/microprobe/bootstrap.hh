/**
 * @file
 * Automatic micro-architecture bootstrap (paper Section 2.1.2).
 *
 * Completes a partial micro-architecture definition by measurement.
 * For every instruction of the ISA, two micro-benchmarks are
 * generated: an endless loop of 4K instances with a dependency chain
 * between consecutive instructions, and the same loop with no
 * dependencies. Running both and reading the per-unit counters, IPC
 * and the power sensor yields the instruction's latency (from the
 * chained IPC), throughput (from the independent IPC), the units it
 * stresses (from the unit counters) and its EPI and average
 * sustained power (from the sensor, with random data to make
 * comparisons fair, after Tiwari et al.).
 */

#ifndef MICROPROBE_BOOTSTRAP_HH
#define MICROPROBE_BOOTSTRAP_HH

#include <string>
#include <vector>

#include "microprobe/arch.hh"
#include "sim/machine.hh"

namespace mprobe
{

/** Bootstrap controls. */
struct BootstrapOptions
{
    /** Loop body size of the probing micro-benchmarks. */
    size_t bodySize = 4096;
    /** Configuration to measure on (the paper's Section-5 results
     * are for the 8-core SMT-1 configuration). */
    ChipConfig config{8, 1};
    /** Unit-counter rate per instruction above which the unit is
     * considered stressed (0.35 so dual-issue simple integers
     * report both FXU and LSU). */
    double unitThreshold = 0.35;
    /** Skip privileged instructions (not runnable in user mode). */
    bool skipPrivileged = true;
    /** RNG seed for the probing benchmarks. */
    uint64_t seed = 0xb0075ull;
};

/** Per-instruction bootstrap record (also written into the uarch). */
struct BootstrapEntry
{
    std::string mnemonic;
    double latency = 0.0;
    double throughput = 0.0;   //!< sustained core IPC, no deps
    double epiNj = 0.0;        //!< measured energy per instruction
    double powerWatts = 0.0;   //!< dynamic (above idle) power
    std::vector<std::string> units;
    /** Per-unit finish rate per instruction for every stressed
     * unit, parallel to units (distinguishes "FXU or LSU" ops,
     * whose rates split below 1, from "LSU and FXU" ops). */
    std::vector<double> unitRates;
};

/**
 * Run the bootstrap over every ISA instruction and fill the
 * architecture's per-instruction properties.
 *
 * @return one entry per characterized instruction.
 */
std::vector<BootstrapEntry>
bootstrapArchitecture(Architecture &arch, const Machine &machine,
                      const BootstrapOptions &opts =
                          BootstrapOptions());

/**
 * Characterize a single instruction (used by tests and by targeted
 * re-probing).
 */
BootstrapEntry bootstrapInstruction(
    Architecture &arch, const Machine &machine, Isa::OpIndex op,
    const BootstrapOptions &opts = BootstrapOptions());

} // namespace mprobe

#endif // MICROPROBE_BOOTSTRAP_HH
