/**
 * @file
 * Analytical cache model implementation.
 */

#include "microprobe/cache_model.hh"

#include "util/logging.hh"

namespace mprobe
{

namespace
{

int
log2i(uint64_t v)
{
    int s = 0;
    while ((1ull << s) < v)
        ++s;
    if ((1ull << s) != v)
        fatal(cat("analytical cache model requires power-of-two "
                  "geometry, got ", v));
    return s;
}

/**
 * Two L1 sets are reserved per target level; the low bit of the
 * stream index alternates between them.
 */
int
partitionBase(HitLevel level)
{
    return static_cast<int>(level) * 2;
}

} // namespace

AnalyticalCacheModel::AnalyticalCacheModel(const UarchDef &uarch)
{
    auto geoms = uarch.cacheGeometries();
    if (geoms.size() != 3)
        fatal(cat("analytical cache model expects 3 cache levels, "
                  "got ", geoms.size()));
    for (size_t i = 0; i < 3; ++i)
        geom[i] = geoms[i];
    line_shift = log2i(static_cast<uint64_t>(geom[0].lineBytes));
    for (size_t i = 0; i < 3; ++i) {
        if (geom[i].lineBytes != geom[0].lineBytes)
            fatal("cache model: levels must share one line size");
        index_bits[i] = log2i(geom[i].sets());
        if (i > 0 && index_bits[i] <= index_bits[i - 1])
            fatal("cache model: set counts must grow per level");
    }
    // Partitioning uses 3 low index bits (4 targets x 2 sets) and
    // thread striping uses the next 2; the L1 must have at least 32
    // sets.
    if (index_bits[0] < 5)
        fatal("cache model: L1 needs at least 32 sets");
    tag_shift = line_shift + index_bits[2];
}

int
AnalyticalCacheModel::linesFor(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1:
        // Half the L1 ways: guaranteed resident.
        return geom[0].assoc / 2;
      case HitLevel::L2:
      case HitLevel::L3:
        // One more line than the ways of every level to defeat.
        return geom[0].assoc + 1;
      case HitLevel::Mem:
        return geom[2].assoc + 1;
    }
    panic("linesFor: bad level");
}

std::pair<int, int>
AnalyticalCacheModel::setField(int level) const
{
    if (level < 0 || level > 2)
        panic(cat("setField: bad level ", level));
    return {line_shift, index_bits[static_cast<size_t>(level)]};
}

TargetedStream
AnalyticalCacheModel::makeStream(HitLevel level, int idx) const
{
    TargetedStream out;
    out.target = level;

    const int k = linesFor(level);
    const uint64_t l1set =
        static_cast<uint64_t>(partitionBase(level) + (idx & 1));
    const int ext2_shift = line_shift + index_bits[0];
    const int ext2_bits = index_bits[1] - index_bits[0];
    const int ext3_shift = line_shift + index_bits[1];
    const int ext3_bits = index_bits[2] - index_bits[1];
    const uint64_t base = l1set << line_shift;
    const uint64_t tag_base =
        (static_cast<uint64_t>(idx) >> 1) * 64;

    std::vector<uint64_t> lines;
    lines.reserve(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) {
        uint64_t addr = base;
        switch (level) {
          case HitLevel::L1:
            // Same set everywhere; <= ways lines: always resident.
            addr |= (tag_base + static_cast<uint64_t>(i))
                    << tag_shift;
            break;
          case HitLevel::L2: {
            // Alias in L1 (k > L1 ways), spread over the L2 index
            // extension bits so at most ceil(k/2^ext2) lines share
            // an L2 set.
            uint64_t b = static_cast<uint64_t>(i) &
                         ((1ull << ext2_bits) - 1);
            uint64_t t = tag_base +
                         (static_cast<uint64_t>(i) >> ext2_bits);
            addr |= (b << ext2_shift) | (t << tag_shift);
            break;
          }
          case HitLevel::L3: {
            // Alias in L1 and L2, spread over the L3 extension bits.
            uint64_t c = static_cast<uint64_t>(i) &
                         ((1ull << ext3_bits) - 1);
            uint64_t t = tag_base +
                         (static_cast<uint64_t>(i) >> ext3_bits);
            addr |= (c << ext3_shift) | (t << tag_shift);
            break;
          }
          case HitLevel::Mem:
            // Alias in every level with more lines than L3 ways.
            addr |= (tag_base + static_cast<uint64_t>(i))
                    << tag_shift;
            break;
        }
        lines.push_back(addr);
    }

    // Scatter the visit order with a stride coprime to k so
    // consecutive accesses are never adjacent lines (defeats the
    // next-line prefetcher, per the paper's randomization note).
    int stride = 1;
    for (int cand : {5, 4, 3, 2}) {
        if (k > cand && k % cand != 0) {
            stride = cand;
            break;
        }
    }
    out.stream.lines.reserve(lines.size());
    for (int i = 0; i < k; ++i)
        out.stream.lines.push_back(
            lines[static_cast<size_t>((i * stride) % k)]);
    return out;
}

} // namespace mprobe
