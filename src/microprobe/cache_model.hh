/**
 * @file
 * Analytical set-associative cache model (paper Section 2.1.3).
 *
 * Statically constructs memory-access streams whose steady-state hit
 * level is *guaranteed*, removing the need for a design space
 * exploration per target memory activity. The construction follows
 * the paper's two observations:
 *
 *  1. With the set fields of every cache level known (Figure 3b), the
 *     generator controls which set an access lands in at each level.
 *  2. Accessing more distinct lines than the associativity of a set
 *     inside an endless loop guarantees steady-state misses in that
 *     set; accessing at most the associativity guarantees hits.
 *
 * A stream targeting level T therefore uses K lines that all alias in
 * every level below T (forcing misses) while spreading across sets —
 * or fitting within one set's ways — at level T (guaranteeing hits).
 * Disjoint set partitions per target level keep streams from
 * interfering, and line order within a stream is scattered so the
 * next-line hardware prefetcher cannot help (the paper's
 * randomization requirement).
 */

#ifndef MICROPROBE_CACHE_MODEL_HH
#define MICROPROBE_CACHE_MODEL_HH

#include <array>
#include <vector>

#include "sim/cache.hh"
#include "sim/program.hh"
#include "uarch/uarch.hh"

namespace mprobe
{

/** Target hit distribution over {L1, L2, L3, MEM}; sums to ~1. */
struct MemDistribution
{
    double l1 = 1.0;
    double l2 = 0.0;
    double l3 = 0.0;
    double mem = 0.0;

    double
    at(int level) const
    {
        switch (level) {
          case 0: return l1;
          case 1: return l2;
          case 2: return l3;
          default: return mem;
        }
    }
};

/** A generated stream plus its guaranteed target level. */
struct TargetedStream
{
    MemStream stream;
    HitLevel target = HitLevel::L1;
};

/** Builds guaranteed-hit-level streams for a cache hierarchy. */
class AnalyticalCacheModel
{
  public:
    /** Construct from the uarch definition's cache geometry. */
    explicit AnalyticalCacheModel(const UarchDef &uarch);

    /**
     * Build the @p idx'th stream targeting @p level. Streams with
     * different indices use disjoint tag ranges; all streams use
     * set partitions disjoint from other target levels.
     */
    TargetedStream makeStream(HitLevel level, int idx = 0) const;

    /** Lines per stream for a target level. */
    int linesFor(HitLevel level) const;

    /**
     * Bits of the address that select the set at cache level
     * @p level (0-based), as (shift, width) — the Figure 3b fields.
     */
    std::pair<int, int> setField(int level) const;

    /** First address bit above every set field (tag-only stride). */
    int tagShift() const { return tag_shift; }

  private:
    std::array<CacheGeometry, 3> geom;
    int line_shift;
    std::array<int, 3> index_bits; // set-field width per level
    int tag_shift;
};

} // namespace mprobe

#endif // MICROPROBE_CACHE_MODEL_HH
