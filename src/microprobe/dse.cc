/**
 * @file
 * Search driver implementations.
 */

#include "microprobe/dse.hh"

#include <algorithm>

#include "campaign/queue.hh"
#include "util/logging.hh"

namespace mprobe
{

std::vector<double>
SearchDriver::fitnessValues() const
{
    std::vector<double> out;
    out.reserve(hist.size());
    for (const auto &e : hist)
        out.push_back(e.fitness);
    return out;
}

Evaluated &
SearchDriver::record(DesignPoint p, double fitness)
{
    hist.push_back({std::move(p), fitness});
    return hist.back();
}

namespace
{

void
validateSpace(const std::vector<ParamDomain> &space)
{
    if (space.empty())
        fatal("DSE: empty design space");
    for (const auto &d : space)
        if (d.hi < d.lo)
            fatal(cat("DSE: empty domain '", d.name, "'"));
}

Evaluated
bestOf(const std::vector<Evaluated> &hist)
{
    if (hist.empty())
        fatal("DSE: search evaluated no points");
    return *std::max_element(
        hist.begin(), hist.end(),
        [](const Evaluated &a, const Evaluated &b) {
            return a.fitness < b.fitness;
        });
}

} // namespace

// ---------------------------------------------------------------
// ExhaustiveSearch

ExhaustiveSearch::ExhaustiveSearch(FilterFn f, size_t max_points,
                                   int threads_)
    : filter(std::move(f)), maxPoints(max_points),
      threads(threads_)
{
}

std::vector<DesignPoint>
ExhaustiveSearch::enumerate(const std::vector<ParamDomain> &space)
{
    validateSpace(space);
    wasTruncated = false;

    double total = 1.0;
    for (const auto &d : space)
        total *= static_cast<double>(d.size());
    if (total > static_cast<double>(maxPoints) * 64.0)
        fatal(cat("DSE: exhaustive space of ", total,
                  " points is impractical; use the GA driver"));

    DesignPoint p;
    p.reserve(space.size());
    for (const auto &d : space)
        p.push_back(d.lo);

    std::vector<DesignPoint> points;
    for (;;) {
        if (!filter || filter(p)) {
            if (points.size() == maxPoints) {
                // Never return a silently partial exploration:
                // flag it and tell the user.
                wasTruncated = true;
                warn(cat("DSE: exhaustive search truncated at ",
                         maxPoints, " evaluations; the remaining "
                         "admissible points were not visited"));
                break;
            }
            points.push_back(p);
        }
        // Odometer increment.
        size_t i = 0;
        for (; i < space.size(); ++i) {
            if (p[i] < space[i].hi) {
                ++p[i];
                break;
            }
            p[i] = space[i].lo;
        }
        if (i == space.size())
            break;
    }
    return points;
}

Evaluated
ExhaustiveSearch::search(const std::vector<ParamDomain> &space,
                         const EvalFn &eval)
{
    std::vector<DesignPoint> points = enumerate(space);
    hist.assign(points.size(), Evaluated{});
    // Admissible points are independent: evaluate them on the work
    // queue, each writing its own slot so the history matches the
    // serial odometer order at any worker count.
    parallelFor(
        threads, points.size(),
        [&](size_t i) {
            double f = eval(points[i]);
            hist[i] = {std::move(points[i]), f};
        },
        "exhaustive evaluation");
    return bestOf(hist);
}

// ---------------------------------------------------------------
// GeneticSearch

GeneticSearch::GeneticSearch(GaOptions o) : opts(o)
{
    if (opts.population < 2 || opts.generations < 1)
        fatal("DSE: GA needs population >= 2 and generations >= 1");
    if (opts.elites >= opts.population)
        fatal("DSE: GA elites must be below the population size");
    opts.threads = resolveThreads(opts.threads, "DSE: GA");
}

Evaluated
GeneticSearch::search(const std::vector<ParamDomain> &space,
                      const EvalFn &eval)
{
    validateSpace(space);
    hist.clear();
    Rng rng(opts.seed);

    auto randomPoint = [&]() {
        DesignPoint p(space.size());
        for (size_t i = 0; i < space.size(); ++i)
            p[i] = static_cast<int>(
                rng.range(space[i].lo, space[i].hi));
        return p;
    };

    struct Member
    {
        DesignPoint p;
        double fit;
    };

    // One population build: the candidates of a batch are drawn
    // serially (the RNG stream never sees scheduling), then
    // evaluated in parallel on the campaign work queue, each
    // writing only its own fitness slot, and finally recorded in
    // batch order. History order and content are identical to a
    // serial in-place evaluation at any worker count.
    auto evalBatch = [&](std::vector<DesignPoint> pts) {
        std::vector<double> fits(pts.size());
        parallelFor(
            opts.threads, pts.size(),
            [&](size_t i) { fits[i] = eval(pts[i]); },
            "GA population build");
        std::vector<Member> members;
        members.reserve(pts.size());
        for (size_t i = 0; i < pts.size(); ++i) {
            record(pts[i], fits[i]);
            members.push_back({std::move(pts[i]), fits[i]});
        }
        return members;
    };

    std::vector<DesignPoint> seed_pts;
    seed_pts.reserve(static_cast<size_t>(opts.population));
    for (int i = 0; i < opts.population; ++i)
        seed_pts.push_back(randomPoint());
    std::vector<Member> pop = evalBatch(std::move(seed_pts));

    auto tournamentPick = [&]() -> const Member & {
        const Member *best = nullptr;
        for (int t = 0; t < opts.tournament; ++t) {
            const Member &m = pop[rng.pick(pop.size())];
            if (!best || m.fit > best->fit)
                best = &m;
        }
        return *best;
    };

    for (int g = 0; g < opts.generations; ++g) {
        std::sort(pop.begin(), pop.end(),
                  [](const Member &a, const Member &b) {
                      return a.fit > b.fit;
                  });
        std::vector<Member> next(
            pop.begin(), pop.begin() + opts.elites);
        // Offspring selection reads only the previous generation's
        // fitness (pop is fixed until the batch completes), so
        // every draw for the batch can happen up front.
        std::vector<DesignPoint> children;
        children.reserve(static_cast<size_t>(
            opts.population - opts.elites));
        while (static_cast<int>(next.size() + children.size()) <
               opts.population) {
            DesignPoint child = tournamentPick().p;
            if (rng.chance(opts.crossoverRate)) {
                const DesignPoint &other = tournamentPick().p;
                for (size_t i = 0; i < child.size(); ++i)
                    if (rng.chance(0.5))
                        child[i] = other[i];
            }
            for (size_t i = 0; i < child.size(); ++i)
                if (rng.chance(opts.mutationRate))
                    child[i] = static_cast<int>(
                        rng.range(space[i].lo, space[i].hi));
            children.push_back(std::move(child));
        }
        for (auto &m : evalBatch(std::move(children)))
            next.push_back(std::move(m));
        pop = std::move(next);
    }
    return bestOf(hist);
}

// ---------------------------------------------------------------
// RandomSearch

RandomSearch::RandomSearch(size_t b, uint64_t s)
    : budget(b), seed(s)
{
    if (b == 0)
        fatal("DSE: random search needs a positive budget");
}

Evaluated
RandomSearch::search(const std::vector<ParamDomain> &space,
                     const EvalFn &eval)
{
    validateSpace(space);
    hist.clear();
    Rng rng(seed);
    for (size_t i = 0; i < budget; ++i) {
        DesignPoint p(space.size());
        for (size_t j = 0; j < space.size(); ++j)
            p[j] = static_cast<int>(
                rng.range(space[j].lo, space[j].hi));
        record(p, eval(p));
    }
    return bestOf(hist);
}

// ---------------------------------------------------------------
// UserGuidedSearch

UserGuidedSearch::UserGuidedSearch(ProposeFn p, size_t max_points)
    : propose(std::move(p)), maxPoints(max_points)
{
    if (!propose)
        fatal("DSE: user-guided search needs a proposal callback");
}

Evaluated
UserGuidedSearch::search(const std::vector<ParamDomain> &space,
                         const EvalFn &eval)
{
    validateSpace(space);
    hist.clear();
    DesignPoint p(space.size());
    while (hist.size() < maxPoints && propose(hist, p)) {
        for (size_t i = 0; i < space.size(); ++i)
            if (p[i] < space[i].lo || p[i] > space[i].hi)
                fatal(cat("DSE: proposed value ", p[i],
                          " outside domain '", space[i].name, "'"));
        record(p, eval(p));
    }
    return bestOf(hist);
}

} // namespace mprobe
