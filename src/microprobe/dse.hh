/**
 * @file
 * Integrated design-space exploration (paper Section 2.3).
 *
 * A design space is a vector of integer parameter domains; a point
 * (genome) is one value per parameter. The user supplies an
 * evaluation function mapping a point to a fitness (e.g. "generate
 * the micro-benchmark this point encodes, run it, return measured
 * power"). Three search drivers are provided — exhaustive, genetic
 * and user-guided — all recording every evaluated point so benches
 * can report min/mean/max over a whole set (Figure 9).
 */

#ifndef MICROPROBE_DSE_HH
#define MICROPROBE_DSE_HH

#include <functional>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace mprobe
{

/** One integer-valued search dimension. */
struct ParamDomain
{
    std::string name;
    int lo = 0;
    int hi = 0; //!< inclusive

    int size() const { return hi - lo + 1; }
};

/** A point in the design space: one value per domain. */
using DesignPoint = std::vector<int>;

/** Fitness callback; larger is better. */
using EvalFn = std::function<double(const DesignPoint &)>;

/** Optional admissibility predicate over points. */
using FilterFn = std::function<bool(const DesignPoint &)>;

/** One evaluated point. */
struct Evaluated
{
    DesignPoint point;
    double fitness = 0.0;
};

/** Common driver interface. */
class SearchDriver
{
  public:
    virtual ~SearchDriver() = default;

    /** Driver name for reports. */
    virtual std::string name() const = 0;

    /**
     * Explore @p space, evaluating candidates with @p eval.
     * @return the best point found.
     */
    virtual Evaluated search(const std::vector<ParamDomain> &space,
                             const EvalFn &eval) = 0;

    /** Every point evaluated during the last search, in order. */
    const std::vector<Evaluated> &history() const { return hist; }

    /** Fitness values of the history (for min/mean/max reports). */
    std::vector<double> fitnessValues() const;

  protected:
    Evaluated &record(DesignPoint p, double fitness);

    std::vector<Evaluated> hist;
};

/**
 * Exhaustive enumeration of the whole space, optionally restricted
 * by an admissibility filter (e.g. "the sequence must use all three
 * candidate instructions", which yields the paper's 540 points for
 * sequences of 6 over 3 instructions).
 */
class ExhaustiveSearch : public SearchDriver
{
  public:
    explicit ExhaustiveSearch(FilterFn filter = nullptr,
                              size_t max_points = 2'000'000,
                              int threads = 1);

    std::string name() const override { return "exhaustive"; }

    /**
     * Enumerate the admissible points of @p space in odometer
     * order, capped at max_points (sets truncated()). Callers that
     * batch-evaluate elsewhere — e.g. stressmark exploration
     * measuring every sequence through the campaign engine — use
     * this directly instead of search().
     */
    std::vector<DesignPoint>
    enumerate(const std::vector<ParamDomain> &space);

    /**
     * Enumerate, then evaluate every admissible point. With
     * threads != 1 the evaluations fan out on the campaign work
     * queue (each point writes only its own history slot, so the
     * history order stays the serial odometer order); @p eval must
     * then be thread-safe and depend only on the point, not on
     * evaluation order. The genetic and user-guided drivers stay
     * serial by nature — their next point depends on previous
     * results.
     */
    Evaluated search(const std::vector<ParamDomain> &space,
                     const EvalFn &eval) override;

    /**
     * True when the last search()/enumerate() stopped at max_points
     * with admissible points still unvisited: the history covers
     * only a prefix of the space and min/mean/max reports over it
     * are not exhaustive. A warning is also emitted when this
     * happens; exploration results carry the flag so figure reports
     * can mark partial explorations.
     */
    bool truncated() const { return wasTruncated; }

  private:
    FilterFn filter;
    size_t maxPoints;
    int threads;
    bool wasTruncated = false;
};

/** Genetic-algorithm knobs. */
struct GaOptions
{
    int population = 24;
    int generations = 20;
    double mutationRate = 0.15;
    double crossoverRate = 0.9;
    int tournament = 3;
    int elites = 2;
    uint64_t seed = 0xd5e5eedull;
    /**
     * Worker threads for population evaluation (1 = serial
     * reference, 0 = one per hardware thread). The GA's walk is
     * sequential across generations, but *within* one population
     * build every candidate is independent: all random draws for a
     * batch happen serially before any evaluation runs, then the
     * evaluations fan out on the campaign work queue, each writing
     * its own slot. The history (order and content) is therefore
     * bit-identical at any worker count — provided @p eval is
     * thread-safe and depends only on the point (callers with
     * stateful evaluation closures must stay at 1).
     */
    int threads = 1;
};

/** Steady generational GA with tournament selection and elitism. */
class GeneticSearch : public SearchDriver
{
  public:
    explicit GeneticSearch(GaOptions opts = GaOptions());

    std::string name() const override { return "genetic"; }
    Evaluated search(const std::vector<ParamDomain> &space,
                     const EvalFn &eval) override;

  private:
    GaOptions opts;
};

/**
 * Uniform random sampling of the design space — the baseline any
 * smarter driver must beat; also useful for quick space surveys.
 */
class RandomSearch : public SearchDriver
{
  public:
    explicit RandomSearch(size_t budget,
                          uint64_t seed = 0x4a4d5eedull);

    std::string name() const override { return "random"; }
    Evaluated search(const std::vector<ParamDomain> &space,
                     const EvalFn &eval) override;

  private:
    size_t budget;
    uint64_t seed;
};

/**
 * User-guided search: the driver repeatedly asks a user callback for
 * the next candidate (given the history so far), enabling policies
 * that query micro-architecture information to steer the walk — the
 * synergy the paper highlights for the integrated design.
 */
class UserGuidedSearch : public SearchDriver
{
  public:
    /** Returns false to stop; otherwise writes the next point. */
    using ProposeFn = std::function<bool(
        const std::vector<Evaluated> &, DesignPoint &)>;

    explicit UserGuidedSearch(ProposeFn propose,
                              size_t max_points = 100'000);

    std::string name() const override { return "user-guided"; }
    Evaluated search(const std::vector<ParamDomain> &space,
                     const EvalFn &eval) override;

  private:
    ProposeFn propose;
    size_t maxPoints;
};

} // namespace mprobe

#endif // MICROPROBE_DSE_HH
