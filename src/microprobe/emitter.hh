/**
 * @file
 * Code emitter: renders a generated Program as a self-contained C
 * file with inline assembly, the artifact format the paper's script
 * saves ("./example-1.c"). The emitted file is documentation of the
 * micro-benchmark; the simulator executes the Program directly.
 */

#ifndef MICROPROBE_EMITTER_HH
#define MICROPROBE_EMITTER_HH

#include <string>

#include "sim/program.hh"

namespace mprobe
{

/** Render @p prog as a C file with an inline-assembly endless loop. */
std::string emitC(const Program &prog);

/** Render only the assembly body (one line per instruction). */
std::string emitAsm(const Program &prog);

/** Write emitC() output to @p path; fatal() when unwritable. */
void saveC(const Program &prog, const std::string &path);

} // namespace mprobe

#endif // MICROPROBE_EMITTER_HH
