/**
 * @file
 * Transformation-pass interface of the micro-benchmark synthesizer.
 *
 * The synthesizer works "in a compiler-like fashion" (paper Section
 * 2.2): the user composes an ordered sequence of passes, each
 * transforming the program's internal representation. New passes can
 * be added and sorted at will; the repository in passes.hh covers the
 * minimum set previous work identified (skeleton, instruction
 * distribution, memory behaviour, branch behaviour, ILP) plus
 * initialization passes.
 */

#ifndef MICROPROBE_PASS_HH
#define MICROPROBE_PASS_HH

#include <string>

#include "sim/program.hh"
#include "util/rng.hh"

namespace mprobe
{

class Architecture;

/** One transformation over the program representation. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Human-readable pass name for logs and synthesizer traces. */
    virtual std::string name() const = 0;

    /**
     * Transform @p prog in place. @p arch provides the ISA and
     * micro-architecture queries; @p rng is the synthesizer's seeded
     * generator so pass randomness is reproducible.
     */
    virtual void apply(Program &prog, const Architecture &arch,
                       Rng &rng) const = 0;
};

} // namespace mprobe

#endif // MICROPROBE_PASS_HH
