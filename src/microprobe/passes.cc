/**
 * @file
 * Standard pass implementations.
 */

#include "microprobe/passes.hh"

#include <algorithm>
#include <cmath>

#include "microprobe/arch.hh"
#include "util/logging.hh"

namespace mprobe
{

// ---------------------------------------------------------------
// SkeletonPass

SkeletonPass::SkeletonPass(size_t body_size,
                           const std::string &loop_branch)
    : bodySize(body_size), loopBranch(loop_branch)
{
    if (body_size < 2)
        fatal("SkeletonPass: body must have at least 2 slots");
}

std::string
SkeletonPass::name() const
{
    return cat("skeleton(endless loop of ", bodySize,
               " instructions)");
}

void
SkeletonPass::apply(Program &prog, const Architecture &arch,
                    Rng &) const
{
    prog.isa = &arch.isa();
    prog.body.clear();
    prog.streams.clear();
    Isa::OpIndex filler = arch.isa().find("ori");
    if (filler < 0)
        filler = 0;
    Isa::OpIndex branch = arch.isa().find(loopBranch);
    if (branch < 0)
        fatal(cat("SkeletonPass: loop branch '", loopBranch,
                  "' not in ISA"));
    prog.body.assign(bodySize, ProgInst{filler, 0, -1, 1.0f, 1.0f});
    // Closing count-down branch: always taken (endless loop).
    prog.body.back() = ProgInst{branch, 0, -1, 1.0f, 1.0f};
}

// ---------------------------------------------------------------
// InstructionMixPass

InstructionMixPass::InstructionMixPass(
    std::vector<Isa::OpIndex> candidates, std::vector<double> weights)
    : cands(std::move(candidates)), wts(std::move(weights))
{
    if (cands.empty())
        fatal("InstructionMixPass: empty candidate set");
    if (!wts.empty() && wts.size() != cands.size())
        fatal(cat("InstructionMixPass: ", wts.size(),
                  " weights for ", cands.size(), " candidates"));
}

std::string
InstructionMixPass::name() const
{
    return cat("distribution(", cands.size(), " candidates)");
}

void
InstructionMixPass::apply(Program &prog, const Architecture &,
                          Rng &rng) const
{
    if (prog.body.empty())
        fatal("InstructionMixPass: run SkeletonPass first");
    double total = 0.0;
    for (size_t i = 0; i < cands.size(); ++i)
        total += wts.empty() ? 1.0 : wts[i];
    if (total <= 0.0)
        fatal("InstructionMixPass: weights sum to zero");

    // All slots except the closing branch.
    for (size_t s = 0; s + 1 < prog.body.size(); ++s) {
        double r = rng.uniform() * total;
        size_t pick = 0;
        double acc = 0.0;
        for (size_t i = 0; i < cands.size(); ++i) {
            acc += wts.empty() ? 1.0 : wts[i];
            if (r < acc) {
                pick = i;
                break;
            }
        }
        prog.body[s].op = cands[pick];
    }
}

// ---------------------------------------------------------------
// SequencePass

SequencePass::SequencePass(std::vector<Isa::OpIndex> sequence)
    : seq(std::move(sequence))
{
    if (seq.empty())
        fatal("SequencePass: empty sequence");
}

std::string
SequencePass::name() const
{
    return cat("sequence(", seq.size(), " instructions replicated)");
}

void
SequencePass::apply(Program &prog, const Architecture &, Rng &) const
{
    if (prog.body.empty())
        fatal("SequencePass: run SkeletonPass first");
    for (size_t s = 0; s + 1 < prog.body.size(); ++s)
        prog.body[s].op = seq[s % seq.size()];
}

// ---------------------------------------------------------------
// MemoryModelPass

MemoryModelPass::MemoryModelPass(MemDistribution d,
                                 int streams_per_level)
    : dist(d), streamsPerLevel(streams_per_level)
{
    double sum = d.l1 + d.l2 + d.l3 + d.mem;
    if (sum < 0.999 || sum > 1.001)
        fatal(cat("MemoryModelPass: distribution sums to ", sum));
    if (streams_per_level < 1 || streams_per_level > 2)
        fatal("MemoryModelPass: 1 or 2 streams per level");
}

std::string
MemoryModelPass::name() const
{
    return cat("memory(L1=", dist.l1, " L2=", dist.l2, " L3=",
               dist.l3, " MEM=", dist.mem, ")");
}

void
MemoryModelPass::apply(Program &prog, const Architecture &arch,
                       Rng &) const
{
    if (!prog.isa)
        fatal("MemoryModelPass: run SkeletonPass first");
    AnalyticalCacheModel model(arch.uarch());

    // Collect memory slots (loads, stores, prefetch touches).
    std::vector<size_t> mem_slots;
    for (size_t s = 0; s + 1 < prog.body.size(); ++s) {
        const InstrDef &d = prog.isa->at(prog.body[s].op);
        if (d.isMemory() || d.prefetch)
            mem_slots.push_back(s);
    }
    if (mem_slots.empty())
        return;

    // Streams per level actually needed.
    int stream_ids[4] = {-1, -1, -1, -1};
    auto ensure_stream = [&](int level) {
        if (stream_ids[level] >= 0)
            return;
        stream_ids[level] = static_cast<int>(prog.streams.size());
        for (int k = 0; k < streamsPerLevel; ++k) {
            TargetedStream ts = model.makeStream(
                static_cast<HitLevel>(level), k);
            prog.streams.push_back(std::move(ts.stream));
        }
    };

    // Largest-remainder apportionment of slots to levels, then
    // spread assignments evenly through the body (interleaving the
    // levels rather than clustering them).
    size_t n = mem_slots.size();
    size_t counts[4];
    size_t assigned = 0;
    double rema[4];
    for (int l = 0; l < 4; ++l) {
        double want = dist.at(l) * static_cast<double>(n);
        counts[l] = static_cast<size_t>(want);
        rema[l] = want - static_cast<double>(counts[l]);
        assigned += counts[l];
    }
    while (assigned < n) {
        int best = 0;
        for (int l = 1; l < 4; ++l)
            if (rema[l] > rema[best])
                best = l;
        ++counts[best];
        rema[best] = -1.0;
        ++assigned;
    }

    size_t done[4] = {0, 0, 0, 0};
    int rr = 0;
    for (size_t i = 0; i < n; ++i) {
        // Pick the level furthest behind its quota.
        int pick = -1;
        double worst = -1e300;
        for (int l = 0; l < 4; ++l) {
            if (done[l] >= counts[l])
                continue;
            double deficit =
                static_cast<double>(counts[l]) *
                    static_cast<double>(i + 1) /
                    static_cast<double>(n) -
                static_cast<double>(done[l]);
            if (deficit > worst) {
                worst = deficit;
                pick = l;
            }
        }
        if (pick < 0)
            panic("MemoryModelPass: apportionment underflow");
        ensure_stream(pick);
        int sid = stream_ids[pick];
        if (streamsPerLevel > 1)
            sid += rr++ % streamsPerLevel;
        prog.body[mem_slots[i]].stream = sid;
        ++done[pick];
    }
}

// ---------------------------------------------------------------
// Register / immediate initialization

float
RegisterInitPass::toggleOf(DataPattern p)
{
    switch (p) {
      case DataPattern::Zero:   return 0.02f;
      case DataPattern::Alt01:  return 0.55f;
      case DataPattern::Random: return 1.00f;
    }
    panic("toggleOf: bad pattern");
}

RegisterInitPass::RegisterInitPass(DataPattern pattern) : pat(pattern)
{
}

std::string
RegisterInitPass::name() const
{
    return "init-registers";
}

void
RegisterInitPass::apply(Program &prog, const Architecture &,
                        Rng &) const
{
    float t = toggleOf(pat);
    for (auto &pi : prog.body)
        pi.toggle = t;
}

ImmediateInitPass::ImmediateInitPass(DataPattern pattern)
    : pat(pattern)
{
}

std::string
ImmediateInitPass::name() const
{
    return "init-immediates";
}

void
ImmediateInitPass::apply(Program &prog, const Architecture &,
                         Rng &) const
{
    if (!prog.isa)
        fatal("ImmediateInitPass: run SkeletonPass first");
    float t = RegisterInitPass::toggleOf(pat);
    for (auto &pi : prog.body) {
        if (prog.isa->at(pi.op).hasImm) {
            // Immediates feed one operand: average with the
            // register-side activity.
            pi.toggle = 0.5f * pi.toggle + 0.5f * t;
        }
    }
}

// ---------------------------------------------------------------
// DependencyDistancePass

DependencyDistancePass::DependencyDistancePass(int l, int h)
    : lo(l), hi(h)
{
    if (l < 0 || h < l)
        fatal(cat("DependencyDistancePass: bad range [", l, ",", h,
                  "]"));
}

DependencyDistancePass
DependencyDistancePass::chain()
{
    return DependencyDistancePass(1, 1);
}

DependencyDistancePass
DependencyDistancePass::none()
{
    return DependencyDistancePass(0, 0);
}

DependencyDistancePass
DependencyDistancePass::fixed(int d)
{
    return DependencyDistancePass(d, d);
}

DependencyDistancePass
DependencyDistancePass::random(int l, int h)
{
    return DependencyDistancePass(l, h);
}

std::string
DependencyDistancePass::name() const
{
    if (lo == hi)
        return cat("dependency-distance(", lo, ")");
    return cat("dependency-distance(random ", lo, "..", hi, ")");
}

void
DependencyDistancePass::apply(Program &prog, const Architecture &,
                              Rng &rng) const
{
    if (!prog.isa)
        fatal("DependencyDistancePass: run SkeletonPass first");
    for (auto &pi : prog.body) {
        const InstrDef &d = prog.isa->at(pi.op);
        if (d.isBranch()) {
            pi.depDist = 0;
            continue;
        }
        pi.depDist = lo == hi
                         ? lo
                         : static_cast<int>(rng.range(lo, hi));
    }
}

// ---------------------------------------------------------------
// UnrollPass

UnrollPass::UnrollPass(int f) : factor(f)
{
    if (f < 2)
        fatal("UnrollPass: factor must be >= 2");
}

std::string
UnrollPass::name() const
{
    return cat("unroll(x", factor, ")");
}

void
UnrollPass::apply(Program &prog, const Architecture &, Rng &) const
{
    if (!prog.isa || prog.body.empty())
        fatal("UnrollPass: run SkeletonPass first");
    // Body without the closing branch, replicated; one branch back.
    std::vector<ProgInst> inner(prog.body.begin(),
                                prog.body.end() - 1);
    ProgInst branch = prog.body.back();
    std::vector<ProgInst> out;
    out.reserve(inner.size() * static_cast<size_t>(factor) + 1);
    for (int k = 0; k < factor; ++k)
        out.insert(out.end(), inner.begin(), inner.end());
    out.push_back(branch);
    prog.body = std::move(out);
}

// ---------------------------------------------------------------
// SubstitutionPass

SubstitutionPass::SubstitutionPass(std::string from,
                                   std::vector<std::string> to)
    : fromName(std::move(from)), toNames(std::move(to))
{
    if (toNames.empty())
        fatal("SubstitutionPass: empty replacement sequence");
}

std::string
SubstitutionPass::name() const
{
    std::string seq;
    for (const auto &n : toNames)
        seq += (seq.empty() ? "" : "+") + n;
    return cat("substitute(", fromName, " -> ", seq, ")");
}

void
SubstitutionPass::apply(Program &prog, const Architecture &arch,
                        Rng &) const
{
    if (!prog.isa)
        fatal("SubstitutionPass: run SkeletonPass first");
    Isa::OpIndex from = arch.isa().find(fromName);
    if (from < 0)
        fatal(cat("SubstitutionPass: unknown instruction '",
                  fromName, "'"));
    std::vector<Isa::OpIndex> to;
    for (const auto &n : toNames) {
        Isa::OpIndex op = arch.isa().find(n);
        if (op < 0)
            fatal(cat("SubstitutionPass: unknown instruction '", n,
                      "'"));
        to.push_back(op);
    }
    std::vector<ProgInst> out;
    out.reserve(prog.body.size());
    for (const auto &pi : prog.body) {
        if (pi.op != from) {
            out.push_back(pi);
            continue;
        }
        for (size_t k = 0; k < to.size(); ++k) {
            ProgInst np = pi;
            np.op = to[k];
            if (k > 0) {
                // Later replacement instructions chain on the
                // first and carry no memory binding.
                np.depDist = 1;
                np.stream = -1;
            }
            const InstrDef &nd = arch.isa().at(np.op);
            if (!nd.isMemory() && !nd.prefetch)
                np.stream = -1;
            out.push_back(np);
        }
    }
    prog.body = std::move(out);
}

// ---------------------------------------------------------------
// BranchModelPass

BranchModelPass::BranchModelPass(size_t p, float taken_rate,
                                 const std::string &branch)
    : period(p), takenRate(taken_rate), branchName(branch)
{
    if (p < 2)
        fatal("BranchModelPass: period must be >= 2");
    if (taken_rate < 0.0f || taken_rate > 1.0f)
        fatal("BranchModelPass: taken rate out of [0,1]");
}

std::string
BranchModelPass::name() const
{
    return cat("branch(every ", period, ", taken ", takenRate, ")");
}

void
BranchModelPass::apply(Program &prog, const Architecture &arch,
                       Rng &) const
{
    if (prog.body.empty())
        fatal("BranchModelPass: run SkeletonPass first");
    Isa::OpIndex br = arch.isa().find(branchName);
    if (br < 0)
        fatal(cat("BranchModelPass: branch '", branchName,
                  "' not in ISA"));
    for (size_t s = period - 1; s + 1 < prog.body.size();
         s += period) {
        prog.body[s] =
            ProgInst{br, 0, -1, prog.body[s].toggle, takenRate};
    }
}

} // namespace mprobe
