/**
 * @file
 * Repository of standard synthesizer passes.
 *
 * These are the configurable building blocks of generation policies:
 * program skeleton, instruction distribution (weighted mix or exact
 * sequence), memory behaviour through the analytical cache model,
 * branch behaviour, data initialization, and ILP via dependency
 * distances.
 */

#ifndef MICROPROBE_PASSES_HH
#define MICROPROBE_PASSES_HH

#include <map>
#include <memory>
#include <vector>

#include "microprobe/cache_model.hh"
#include "microprobe/pass.hh"

namespace mprobe
{

/**
 * Pass 1: define the program skeleton — a single endless loop of
 * @p bodySize instructions (filler + closing branch), the common
 * shape of every micro-benchmark in the paper (Table 2).
 */
class SkeletonPass : public Pass
{
  public:
    explicit SkeletonPass(size_t body_size = 4096,
                          const std::string &loop_branch = "bdnz");

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    size_t bodySize;
    std::string loopBranch;
};

/**
 * Pass 2 (mix form): fill the non-branch slots with instructions
 * drawn from weighted candidates. Equal weights when none given.
 */
class InstructionMixPass : public Pass
{
  public:
    explicit InstructionMixPass(std::vector<Isa::OpIndex> candidates,
                                std::vector<double> weights = {});

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    std::vector<Isa::OpIndex> cands;
    std::vector<double> wts;
};

/**
 * Pass 2 (sequence form): replicate an exact instruction sequence
 * across the body — the shape used for the max-power stressmarks
 * (Section 6: "the sequence of 6 instructions that when replicated
 * within an endless loop of 4K instructions ... maximizes power").
 */
class SequencePass : public Pass
{
  public:
    explicit SequencePass(std::vector<Isa::OpIndex> sequence);

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    std::vector<Isa::OpIndex> seq;
};

/**
 * Pass 3: model the memory behaviour. Assigns every memory
 * instruction to a guaranteed-hit-level stream so the program's
 * accesses follow the requested distribution across the hierarchy
 * (e.g. "L1 = 33%, L2 = 33%, L3 = 34%" in Figure 2).
 */
class MemoryModelPass : public Pass
{
  public:
    explicit MemoryModelPass(MemDistribution dist,
                             int streams_per_level = 1);

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

    const MemDistribution &distribution() const { return dist; }

  private:
    MemDistribution dist;
    int streamsPerLevel;
};

/** Data initialization patterns for registers and immediates. */
enum class DataPattern
{
    Zero,    //!< all zeroes: minimal switching
    Alt01,   //!< 0b01010101... constant pattern
    Random   //!< random values: maximal fair switching (default for
             //!< EPI comparisons, after Tiwari et al.)
};

/** Pass 4: initialize register contents (sets data activity). */
class RegisterInitPass : public Pass
{
  public:
    explicit RegisterInitPass(DataPattern pattern);

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

    /** Toggle factor a pattern induces. */
    static float toggleOf(DataPattern p);

  private:
    DataPattern pat;
};

/** Pass 5: initialize immediate operands (immediates only). */
class ImmediateInitPass : public Pass
{
  public:
    explicit ImmediateInitPass(DataPattern pattern);

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    DataPattern pat;
};

/**
 * Pass 6: model instruction-level parallelism via register
 * allocation — assigns the dependency distance of every instruction.
 */
class DependencyDistancePass : public Pass
{
  public:
    /** Serial chain: every instruction depends on its predecessor. */
    static DependencyDistancePass chain();
    /** Independent instructions (max ILP). */
    static DependencyDistancePass none();
    /** Fixed distance @p d. */
    static DependencyDistancePass fixed(int d);
    /** Uniformly random distance in [lo, hi] ("randomly", Fig. 2). */
    static DependencyDistancePass random(int lo, int hi);

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    DependencyDistancePass(int lo, int hi);
    int lo;
    int hi;
};

/**
 * Loop-unrolling pass (the Section-2.2 worked example: "evaluate
 * the effect on performance of unrolling the loop"). Replicates the
 * loop body @p factor times, preserving relative dependency
 * distances and keeping a single closing branch.
 */
class UnrollPass : public Pass
{
  public:
    explicit UnrollPass(int factor);

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    int factor;
};

/**
 * Instruction-substitution pass (the Section-2.2 worked example:
 * "the effect on power of using a load immediate and an add
 * instruction instead of two add immediate instructions").
 * Replaces every occurrence of one mnemonic with a replacement
 * sequence; the first replacement instruction inherits the
 * original's dependency distance and stream binding.
 */
class SubstitutionPass : public Pass
{
  public:
    SubstitutionPass(std::string from,
                     std::vector<std::string> to);

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    std::string fromName;
    std::vector<std::string> toNames;
};

/**
 * Branch-behaviour pass: convert every @p period'th body slot into a
 * conditional branch with the given taken rate, controlling the
 * level of (mis)speculation.
 */
class BranchModelPass : public Pass
{
  public:
    BranchModelPass(size_t period, float taken_rate,
                    const std::string &branch = "bc");

    std::string name() const override;
    void apply(Program &prog, const Architecture &arch,
               Rng &rng) const override;

  private:
    size_t period;
    float takenRate;
    std::string branchName;
};

} // namespace mprobe

#endif // MICROPROBE_PASSES_HH
