/**
 * @file
 * Synthesizer implementation.
 */

#include "microprobe/synthesizer.hh"

#include "util/logging.hh"

namespace mprobe
{

Synthesizer::Synthesizer(const Architecture &arch, uint64_t seed)
    : archPtr(&arch), rng(seed)
{
}

void
Synthesizer::add(std::unique_ptr<Pass> pass)
{
    if (!pass)
        panic("Synthesizer::add: null pass");
    passes.push_back(std::move(pass));
}

std::vector<std::string>
Synthesizer::passNames() const
{
    std::vector<std::string> out;
    for (const auto &p : passes)
        out.push_back(p->name());
    return out;
}

Program
Synthesizer::synthesize(const std::string &name)
{
    if (passes.empty())
        fatal("Synthesizer: no passes configured");
    Program prog;
    prog.name = name.empty() ? cat("ubench-", ++counter) : name;
    for (const auto &p : passes) {
        debugTrace(cat("pass: ", p->name()));
        p->apply(prog, *archPtr, rng);
    }
    if (!prog.isa || prog.body.empty())
        fatal(cat("synthesis of '", prog.name,
                  "' produced no code; a skeleton pass must run "
                  "first"));
    return prog;
}

} // namespace mprobe
