/**
 * @file
 * The micro-benchmark synthesizer (paper Section 2.2).
 *
 * Drives code generation by applying a user-ordered sequence of
 * passes over the internal representation, mirroring the Figure-2
 * script:
 *
 *     Architecture arch = Architecture::get("POWER7");
 *     Synthesizer synth(arch);
 *     synth.add(std::make_unique<SkeletonPass>(4096));
 *     synth.add(std::make_unique<InstructionMixPass>(loads_vsu));
 *     ...
 *     Program ubench = synth.synthesize();
 */

#ifndef MICROPROBE_SYNTHESIZER_HH
#define MICROPROBE_SYNTHESIZER_HH

#include <memory>
#include <string>
#include <vector>

#include "microprobe/arch.hh"
#include "microprobe/pass.hh"

namespace mprobe
{

/** Applies an ordered pass pipeline to produce micro-benchmarks. */
class Synthesizer
{
  public:
    /**
     * @param arch target architecture (kept by reference; must
     *             outlive the synthesizer)
     * @param seed reproducible randomness for all passes
     */
    explicit Synthesizer(const Architecture &arch,
                         uint64_t seed = 0x51c0b35eedull);

    /** Append a pass to the pipeline (applied in insertion order). */
    void add(std::unique_ptr<Pass> pass);

    /** Convenience: emplace a pass of type P. */
    template <typename P, typename... Args>
    void
    addPass(Args &&...args)
    {
        add(std::make_unique<P>(std::forward<Args>(args)...));
    }

    /** Number of passes in the pipeline. */
    size_t passCount() const { return passes.size(); }

    /** Pass names in application order (for tracing). */
    std::vector<std::string> passNames() const;

    /**
     * Apply the pipeline and return the generated micro-benchmark.
     * Each call draws fresh randomness, so repeated calls generate
     * *different* benchmarks under the same policy (Figure 2 lines
     * 31-33).
     */
    Program synthesize(const std::string &name = "");

  private:
    const Architecture *archPtr;
    std::vector<std::unique_ptr<Pass>> passes;
    Rng rng;
    int counter = 0;
};

} // namespace mprobe

#endif // MICROPROBE_SYNTHESIZER_HH
