/**
 * @file
 * Metrics-registry implementation.
 */

#include "obs/metrics.hh"

#include <map>
#include <ostream>

#include "util/logging.hh"
#include "util/thread_annotations.hh"

namespace mprobe
{
namespace obs
{

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)),
      counts(new std::atomic<uint64_t>[bounds.size() + 1])
{
    for (size_t i = 0; i + 1 < bounds.size(); ++i)
        if (!(bounds[i] < bounds[i + 1]))
            fatal("obs: histogram bucket bounds must ascend");
    for (size_t i = 0; i <= bounds.size(); ++i)
        counts[i].store(0);
}

void
Histogram::observe(double value)
{
    size_t b = 0;
    while (b < bounds.size() && value > bounds[b])
        ++b;
    counts[b].fetch_add(1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    double cur = total.load();
    while (!total.compare_exchange_weak(cur, cur + value)) {
    }
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(bounds.size() + 1);
    for (size_t i = 0; i <= bounds.size(); ++i)
        out[i] = counts[i].load();
    return out;
}

void
Histogram::reset()
{
    for (size_t i = 0; i <= bounds.size(); ++i)
        counts[i].store(0);
    n.store(0);
    total.store(0.0);
}

namespace
{

/** The process-wide registry. std::map keeps export order
 * deterministic; the lock covers registration only — recorded
 * values live in the metrics' own atomics. */
struct MetricsRegistry
{
    Mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters
        GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>> gauges
        GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>> histograms
        GUARDED_BY(mutex);
};

MetricsRegistry &
metricsRegistry()
{
    static MetricsRegistry *r = new MetricsRegistry;
    return *r;
}

} // namespace

Counter &
counter(const std::string &name)
{
    MetricsRegistry &reg = metricsRegistry();
    MutexLock lock(reg.mutex);
    auto &slot = reg.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    MetricsRegistry &reg = metricsRegistry();
    MutexLock lock(reg.mutex);
    auto &slot = reg.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name,
          std::vector<double> bucket_bounds)
{
    MetricsRegistry &reg = metricsRegistry();
    MutexLock lock(reg.mutex);
    auto &slot = reg.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(
            std::move(bucket_bounds));
    return *slot;
}

void
metricsWriteJson(std::ostream &os, const std::string &indent)
{
    MetricsRegistry &reg = metricsRegistry();
    MutexLock lock(reg.mutex);
    os << "{\n" << indent << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : reg.counters) {
        os << (first ? "\n" : ",\n") << indent << "    \"" << name
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "" : cat("\n", indent, "  ").c_str()) << "},\n"
       << indent << "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : reg.gauges) {
        os << (first ? "\n" : ",\n") << indent << "    \"" << name
           << "\": " << g->value();
        first = false;
    }
    os << (first ? "" : cat("\n", indent, "  ").c_str()) << "},\n"
       << indent << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : reg.histograms) {
        os << (first ? "\n" : ",\n") << indent << "    \"" << name
           << "\": {\"bounds\": [";
        const auto &bounds = h->bucketBounds();
        for (size_t i = 0; i < bounds.size(); ++i)
            os << (i ? ", " : "") << bounds[i];
        os << "], \"counts\": [";
        std::vector<uint64_t> counts = h->bucketCounts();
        for (size_t i = 0; i < counts.size(); ++i)
            os << (i ? ", " : "") << counts[i];
        os << "], \"count\": " << h->count()
           << ", \"sum\": " << h->sum() << "}";
        first = false;
    }
    os << (first ? "" : cat("\n", indent, "  ").c_str()) << "}\n"
       << indent << "}";
}

void
metricsReset()
{
    MetricsRegistry &reg = metricsRegistry();
    MutexLock lock(reg.mutex);
    for (auto &[name, c] : reg.counters) {
        (void)name;
        c->reset();
    }
    for (auto &[name, g] : reg.gauges) {
        (void)name;
        g->set(0.0);
    }
    for (auto &[name, h] : reg.histograms) {
        (void)name;
        h->reset();
    }
}

} // namespace obs
} // namespace mprobe
