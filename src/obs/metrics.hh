/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket
 * histograms, exported deterministically ordered.
 *
 * The trace recorder (obs/trace.hh) answers "where did this run's
 * wall time go"; the registry answers "how did the machinery behave
 * in aggregate" — cache hit/miss/corrupt counts, batch-memo reuse,
 * claim steals, arena high-water bytes, per-stage wall seconds —
 * and exports them into the extended `--metrics-json` and the
 * service's per-campaign status.json.
 *
 * Hot-path discipline: instruments register their metric once
 * (function-local `static Counter &c = obs::counter("...")`;
 * registration takes a lock and may allocate) and then touch only
 * lock-free atomics. Histograms fix their bucket bounds at
 * registration, so observation never allocates either.
 *
 * Export order is deterministic (name-sorted per section), so two
 * runs of the same build produce structurally identical JSON —
 * only the measured values differ. Like all of obs/, none of this
 * may be referenced from the byte-identity file set; the
 * `obs-isolation` lint rule enforces it.
 */

#ifndef OBS_METRICS_HH
#define OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace mprobe
{
namespace obs
{

/** Monotone event count. */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        v.fetch_add(delta, std::memory_order_relaxed);
    }
    uint64_t value() const { return v.load(); }
    void reset() { v.store(0); }

  private:
    std::atomic<uint64_t> v{0};
};

/** Last-write-wins level; max() ratchets (high-water marks). */
class Gauge
{
  public:
    void set(double value) { v.store(value); }
    /** Raise to @p value when it exceeds the current level. */
    void
    max(double value)
    {
        double cur = v.load();
        while (value > cur &&
               !v.compare_exchange_weak(cur, value)) {
        }
    }
    double value() const { return v.load(); }

  private:
    std::atomic<double> v{0.0};
};

/**
 * Fixed-bucket histogram: counts[i] holds observations <=
 * bounds[i], the final slot the overflow. Bounds are fixed at
 * registration; observe() is a linear scan plus one atomic add.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bucket_bounds);

    void observe(double value);

    const std::vector<double> &bucketBounds() const
    {
        return bounds;
    }
    /** Bucket counts, bounds.size() + 1 entries. */
    std::vector<uint64_t> bucketCounts() const;
    uint64_t count() const { return n.load(); }
    double sum() const { return total.load(); }
    /** Zero every bucket/count/sum (bounds persist). */
    void reset();

  private:
    std::vector<double> bounds;
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> n{0};
    std::atomic<double> total{0.0};
};

/** Look up (registering on first use) the named metric. References
 * stay valid for the process lifetime. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
/** @p bucket_bounds must be ascending; a re-registration under the
 * same name returns the existing histogram (bounds unchanged). */
Histogram &histogram(const std::string &name,
                     std::vector<double> bucket_bounds);

/**
 * Write the whole registry as one JSON object with "counters",
 * "gauges" and "histograms" sections, every section name-sorted.
 * @p indent prefixes each emitted line, so the object embeds
 * cleanly into an enclosing JSON document. The leading "{" is
 * written un-indented (callers place it); the closing "}" gets
 * @p indent.
 */
void metricsWriteJson(std::ostream &os,
                      const std::string &indent = "");

/** Test support: zero every registered metric's values (the
 * registrations themselves persist). */
void metricsReset();

} // namespace obs
} // namespace mprobe

#endif // OBS_METRICS_HH
