/**
 * @file
 * Worker-telemetry file implementation.
 */

#include "obs/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/fileio.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{
namespace obs
{

namespace fs = std::filesystem;

std::string
telemetryToText(const WorkerTelemetry &t)
{
    std::ostringstream os;
    os << "mprobe-telemetry v1\n"
       << "worker " << t.worker << "\n"
       << "jobs " << t.jobs << "\n"
       << "hits " << t.hits << "\n"
       << "acquired " << t.acquired << "\n"
       << "stolen " << t.stolen << "\n"
       << "seconds " << t.seconds << "\n"
       << "jobs_per_second " << t.jobsPerSecond << "\n"
       << "hit_rate " << t.hitRate << "\n";
    return os.str();
}

namespace
{

bool
parseUintField(const std::string &value, uint64_t &out)
{
    std::istringstream is(value);
    uint64_t v = 0;
    if (!(is >> v))
        return false;
    out = v;
    return true;
}

bool
parseDoubleField(const std::string &value, double &out)
{
    std::istringstream is(value);
    double v = 0.0;
    if (!(is >> v))
        return false;
    out = v;
    return true;
}

} // namespace

bool
telemetryFromText(const std::string &text, WorkerTelemetry &out)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) ||
        trim(line) != "mprobe-telemetry v1")
        return false;
    bool have_worker = false;
    bool ok = true;
    while (std::getline(is, line)) {
        std::string s = trim(line);
        if (s.empty())
            continue;
        size_t sp = s.find(' ');
        if (sp == std::string::npos)
            continue; // unknown bare token: ignore
        std::string key = s.substr(0, sp);
        std::string value = trim(s.substr(sp + 1));
        if (key == "worker") {
            out.worker = value;
            have_worker = !value.empty();
        } else if (key == "jobs") {
            ok = parseUintField(value, out.jobs) && ok;
        } else if (key == "hits") {
            ok = parseUintField(value, out.hits) && ok;
        } else if (key == "acquired") {
            ok = parseUintField(value, out.acquired) && ok;
        } else if (key == "stolen") {
            ok = parseUintField(value, out.stolen) && ok;
        } else if (key == "seconds") {
            ok = parseDoubleField(value, out.seconds) && ok;
        } else if (key == "jobs_per_second") {
            ok = parseDoubleField(value, out.jobsPerSecond) && ok;
        } else if (key == "hit_rate") {
            ok = parseDoubleField(value, out.hitRate) && ok;
        }
        // Unknown keys: ignored for forward compatibility.
    }
    return ok && have_worker;
}

std::string
telemetryPath(const std::string &dir, const std::string &worker)
{
    // Worker ids default to host:pid; ':' (and anything else odd a
    // user-supplied --worker-id may contain) is not portable in
    // file names. Collisions after sanitizing only make two workers
    // share a telemetry slot — last writer wins a status line.
    std::string name;
    name.reserve(worker.size());
    for (char c : worker) {
        bool safe = (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' ||
                    c == '_' || c == '.';
        name.push_back(safe ? c : '_');
    }
    if (name.empty())
        name = "worker";
    return dir + "/" + name + ".telemetry";
}

bool
writeWorkerTelemetry(const std::string &dir,
                     const WorkerTelemetry &t)
{
    if (dir.empty())
        return false;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn(cat("telemetry: cannot create directory '", dir,
                 "': ", ec.message()));
        return false;
    }
    return atomicWriteFile(telemetryPath(dir, t.worker),
                           telemetryToText(t), "worker telemetry");
}

std::vector<WorkerTelemetry>
readFleetTelemetry(const std::string &dir)
{
    std::vector<WorkerTelemetry> fleet;
    if (dir.empty())
        return fleet;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return fleet; // no directory: an empty fleet
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const fs::path &p = entry.path();
        if (p.extension() != ".telemetry")
            continue;
        std::ifstream f(p);
        if (!f)
            continue;
        std::ostringstream content;
        content << f.rdbuf();
        WorkerTelemetry t;
        if (!telemetryFromText(content.str(), t))
            continue; // torn/foreign file: skip, not fatal
        auto mtime = fs::last_write_time(p, ec);
        if (!ec) {
            auto now = fs::file_time_type::clock::now();
            t.ageSeconds =
                std::chrono::duration<double>(now - mtime).count();
            if (t.ageSeconds < 0.0)
                t.ageSeconds = 0.0; // clock skew on shared dirs
        }
        fleet.push_back(std::move(t));
    }
    std::sort(fleet.begin(), fleet.end(),
              [](const WorkerTelemetry &a,
                 const WorkerTelemetry &b) {
                  return a.worker < b.worker;
              });
    return fleet;
}

} // namespace obs
} // namespace mprobe
