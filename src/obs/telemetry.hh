/**
 * @file
 * Fleet worker telemetry: each `--serve` worker periodically
 * publishes one small `<worker-id>.telemetry` file next to its
 * claim files; any observer (`mprobe_campaign --fleet-status`, the
 * service's status.json) reads the whole directory back into a live
 * per-worker table.
 *
 * The same shared-directory contract as claims applies: files are
 * published with atomicWriteFile (readers never see a torn file),
 * the file's mtime is the heartbeat (readers derive staleness from
 * it, exactly like ClaimDir::claimAge), and a missing or malformed
 * file degrades a status line, never correctness. Telemetry is
 * observability-only — nothing here feeds back into job selection
 * or results, and the `obs-isolation` lint rule keeps it out of the
 * byte-identity file set.
 *
 * File grammar (line-oriented, like claim files):
 *
 *     mprobe-telemetry v1
 *     worker <id>
 *     jobs <uint>
 *     hits <uint>
 *     acquired <uint>
 *     stolen <uint>
 *     seconds <double>
 *     jobs_per_second <double>
 *     hit_rate <double>
 *
 * Unknown keys are ignored (forward compatibility); the header line
 * and `worker` are required.
 */

#ifndef OBS_TELEMETRY_HH
#define OBS_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mprobe
{
namespace obs
{

/** One worker's published snapshot. */
struct WorkerTelemetry
{
    std::string worker;        ///< worker id (host:pid by default)
    uint64_t jobs = 0;         ///< jobs measured so far
    uint64_t hits = 0;         ///< cache hits observed so far
    uint64_t acquired = 0;     ///< claims acquired
    uint64_t stolen = 0;       ///< claims stolen from dead peers
    double seconds = 0.0;      ///< wall seconds since worker start
    double jobsPerSecond = 0.0; ///< throughput over `seconds`
    double hitRate = 0.0;      ///< hits / (hits + jobs measured)
    /** Seconds since the file was last published (reader-side, from
     * mtime; -1 when unknown). Not serialized. */
    double ageSeconds = -1.0;
};

/** Serialize to the telemetry file grammar. */
std::string telemetryToText(const WorkerTelemetry &t);

/** Parse the grammar; false on a missing header or worker line
 * (malformed numbers also fail, without touching @p out's fields
 * that already parsed). */
bool telemetryFromText(const std::string &text, WorkerTelemetry &out);

/** The file a worker id publishes under inside @p dir (the id is
 * sanitized to filesystem-safe characters; the authoritative id is
 * the `worker` line inside the file). */
std::string telemetryPath(const std::string &dir,
                          const std::string &worker);

/** Atomically publish @p t under telemetryPath(dir, t.worker).
 * Warns and returns false on I/O failure (best-effort, like every
 * shared-directory write). */
bool writeWorkerTelemetry(const std::string &dir,
                          const WorkerTelemetry &t);

/** Read every parseable `*.telemetry` file in @p dir, fill each
 * entry's ageSeconds from the file mtime, and return them sorted by
 * worker id (deterministic table order). A missing directory is an
 * empty fleet, not an error. */
std::vector<WorkerTelemetry>
readFleetTelemetry(const std::string &dir);

} // namespace obs
} // namespace mprobe

#endif // OBS_TELEMETRY_HH
