/**
 * @file
 * Trace-recorder implementation.
 */

#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "util/fileio.hh"
#include "util/thread_annotations.hh"

namespace mprobe
{
namespace obs
{

namespace detail
{
std::atomic<bool> traceOn{false};
} // namespace detail

namespace
{

// Trace timestamps are observability metadata: they annotate where
// wall time went, and are never read back into any result, export
// or cache key. The obs-isolation lint rule keeps obs:: out of the
// byte-identity file set entirely.
// lint: wallclock-ok(trace timestamps are observability-only)
using clock = std::chrono::steady_clock;

std::atomic<bool> everOn{false};
/** Epoch of the current enable (event ts are µs since this). */
std::atomic<int64_t> epochNs{0};

/** One buffered event. Name/arg-key pointers must outlive the
 * flush (string literals at every call site). */
struct Event
{
    const char *name;
    uint64_t tsMicros;
    char phase; // 'B', 'E' or 'i'
    int nargs;
    const char *argKeys[kTraceMaxArgs];
    double argVals[kTraceMaxArgs];
};

/**
 * A thread's ring. Written only by its owner thread; read by the
 * flusher at quiescent points. `total` is atomic so a racy flush
 * (caller bug) reads a torn ring, not undefined behaviour.
 */
struct ThreadRing
{
    int tid = 0;
    std::vector<Event> slots;
    std::atomic<size_t> total{0};

    void
    push(const Event &e)
    {
        if (slots.empty())
            slots.resize(kTraceRingCapacity);
        size_t t = total.load(std::memory_order_relaxed);
        slots[t % kTraceRingCapacity] = e;
        total.store(t + 1, std::memory_order_release);
    }
};

/** Registry of every thread's ring; rings are never freed, so
 * thread-local pointers stay valid across traceReset(). */
struct Registry
{
    Mutex mutex;
    std::vector<std::unique_ptr<ThreadRing>> rings
        GUARDED_BY(mutex);
};

Registry &
registry()
{
    static Registry *r = new Registry; // never destroyed: threads
                                       // may outlive static dtors
    return *r;
}

ThreadRing &
threadRing()
{
    static thread_local ThreadRing *ring = nullptr;
    if (!ring) {
        auto owned = std::make_unique<ThreadRing>();
        ring = owned.get();
        Registry &reg = registry();
        MutexLock lock(reg.mutex);
        ring->tid = static_cast<int>(reg.rings.size()) + 1;
        reg.rings.push_back(std::move(owned));
    }
    return *ring;
}

uint64_t
nowMicros()
{
    // lint: wallclock-ok(trace timestamps are observability-only)
    int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     clock::now().time_since_epoch())
                     .count();
    int64_t delta = ns - epochNs.load(std::memory_order_relaxed);
    return delta > 0 ? static_cast<uint64_t>(delta) / 1000u : 0u;
}

void
record(const char *name, char phase, int nargs,
       const char *const *keys, const double *vals)
{
    Event e;
    e.name = name;
    e.tsMicros = nowMicros();
    e.phase = phase;
    e.nargs = nargs;
    for (int i = 0; i < nargs; ++i) {
        e.argKeys[i] = keys[i];
        e.argVals[i] = vals[i];
    }
    threadRing().push(e);
}

/** Integral arg values print as integers ("cached": 1), others as
 * plain doubles — stable to grep and valid JSON either way. */
void
writeArgValue(std::ostream &os, double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 9.0e15)
        os << static_cast<long long>(v);
    else if (std::isfinite(v))
        os << v;
    else
        os << "null";
}

} // namespace

void
traceEnable()
{
    // lint: wallclock-ok(trace timestamps are observability-only)
    epochNs.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
    everOn.store(true);
    detail::traceOn.store(true, std::memory_order_relaxed);
}

void
traceDisable()
{
    detail::traceOn.store(false, std::memory_order_relaxed);
}

bool
traceEverEnabled()
{
    return everOn.load();
}

void
traceReset()
{
    detail::traceOn.store(false, std::memory_order_relaxed);
    everOn.store(false);
    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    for (auto &ring : reg.rings)
        ring->total.store(0);
}

void
traceInstant(const char *name)
{
    if (!traceEnabled())
        return;
    record(name, 'i', 0, nullptr, nullptr);
}

void
traceInstant(const char *name, const char *key, double value)
{
    if (!traceEnabled())
        return;
    record(name, 'i', 1, &key, &value);
}

size_t
traceDroppedEvents()
{
    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    size_t dropped = 0;
    for (const auto &ring : reg.rings) {
        size_t total = ring->total.load(std::memory_order_acquire);
        if (total > kTraceRingCapacity)
            dropped += total - kTraceRingCapacity;
    }
    return dropped;
}

TraceSpan::TraceSpan(const char *n) : name(n), live(traceEnabled())
{
    if (live)
        record(name, 'B', 0, nullptr, nullptr);
}

TraceSpan::~TraceSpan()
{
    // The end event pairs the begin even if recording was disabled
    // mid-span: an unbalanced "B" would render as an open slice.
    if (live)
        record(name, 'E', nargs, argKeys, argVals);
}

void
TraceSpan::note(const char *key, double value)
{
    if (!live || nargs >= kTraceMaxArgs)
        return;
    argKeys[nargs] = key;
    argVals[nargs] = value;
    ++nargs;
}

void
traceWriteJson(std::ostream &os)
{
    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    os << "{\n  \"traceEvents\": [";
    bool first = true;
    size_t dropped = 0;
    for (const auto &ring : reg.rings) {
        size_t total = ring->total.load(std::memory_order_acquire);
        size_t kept = std::min(total, kTraceRingCapacity);
        if (total > kept)
            dropped += total - kept;
        for (size_t i = total - kept; i < total; ++i) {
            const Event &e =
                ring->slots[i % kTraceRingCapacity];
            os << (first ? "\n" : ",\n") << "    {\"name\": \""
               << e.name << "\", \"cat\": \"mprobe\", \"ph\": \""
               << e.phase << "\", \"ts\": " << e.tsMicros
               << ", \"pid\": 1, \"tid\": " << ring->tid;
            if (e.nargs > 0) {
                os << ", \"args\": {";
                for (int a = 0; a < e.nargs; ++a) {
                    os << (a ? ", " : "") << "\"" << e.argKeys[a]
                       << "\": ";
                    writeArgValue(os, e.argVals[a]);
                }
                os << "}";
            }
            os << "}";
            first = false;
        }
    }
    os << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n"
       << "  \"otherData\": {\"dropped_events\": " << dropped
       << "}\n}\n";
}

bool
traceFlush(const std::string &path)
{
    std::ostringstream os;
    traceWriteJson(os);
    return atomicWriteFile(path, os.str(), "trace flush");
}

} // namespace obs
} // namespace mprobe
