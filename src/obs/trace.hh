/**
 * @file
 * Trace recorder: per-thread ring buffers of begin/end/instant
 * events, flushed on demand to Chrome trace-event JSON.
 *
 * The campaign engine and the fleet service are multi-threaded,
 * cache-coupled and claim-coordinated; "k of n jobs done" progress
 * lines cannot show *where* wall time goes — decode vs core-sim vs
 * cache I/O vs claim contention. This recorder makes one run's
 * timeline loadable in chrome://tracing / Perfetto: callers wrap
 * phases in TraceSpan (RAII begin/end pairs) or drop traceInstant
 * markers, and `--trace <file>` on the tools flushes everything at
 * exit.
 *
 * Design constraints (observability must never cost the result
 * path anything):
 *
 *  - disabled is the default and costs exactly one relaxed atomic
 *    load per call site — no allocation, no locking, no clock read;
 *  - recording is lock-free: each thread owns a fixed-capacity ring
 *    buffer (registered once under a mutex, then written only by
 *    its owner thread) and overflow drops the *oldest* events,
 *    counted, never blocking or reallocating;
 *  - event names and argument keys must be string literals (or
 *    otherwise outlive the flush): the recorder stores pointers,
 *    never copies;
 *  - nothing here may be referenced from the byte-identity file
 *    set (export/cache/manifest/spec/hash) — the `obs-isolation`
 *    lint rule enforces that, so a trace can never leak into
 *    results.
 *
 * traceWriteJson/traceFlush must run at a quiescent point — after
 * every traced worker thread has been joined (parallelFor joins;
 * the tools flush at exit). Flushing while another thread records
 * would read its ring mid-write.
 */

#ifndef OBS_TRACE_HH
#define OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace mprobe
{
namespace obs
{

/** Events retained per thread; older ones are dropped (counted). */
constexpr size_t kTraceRingCapacity = 16384;

/** Maximum key/value annotations one event can carry. */
constexpr int kTraceMaxArgs = 4;

namespace detail
{
extern std::atomic<bool> traceOn;
} // namespace detail

/** Whether recording is currently enabled (one relaxed load — the
 * entire disabled-path cost of every trace call site). */
inline bool
traceEnabled()
{
    return detail::traceOn.load(std::memory_order_relaxed);
}

/** Start recording: timestamps are microseconds since this call. */
void traceEnable();

/** Stop recording; already-buffered events remain flushable. */
void traceDisable();

/** Whether traceEnable() was ever called in this process — what
 * `trace_active` in the metrics JSON reports, so a perf baseline
 * measured with tracing on can be refused post-hoc. */
bool traceEverEnabled();

/**
 * Test support: disable recording, clear every thread's buffered
 * events and the drop/ever-enabled records. Buffers themselves are
 * retained (thread-local pointers into them stay valid); call only
 * at a quiescent point.
 */
void traceReset();

/** Drop an instant marker (phase "i"). */
void traceInstant(const char *name);
void traceInstant(const char *name, const char *key, double value);

/** Total events dropped to ring-buffer overflow, all threads. */
size_t traceDroppedEvents();

/**
 * Scoped begin/end span. Constructing records the "B" event (when
 * enabled); destruction records the matching "E". note() attaches
 * up to kTraceMaxArgs numeric annotations to the end event — cache
 * hit flags, cost estimates, measured seconds — where the Chrome
 * viewer shows them on the slice.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name);
    ~TraceSpan();
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Annotate the span (silently ignored beyond kTraceMaxArgs or
     * when the span started disabled). */
    void note(const char *key, double value);

  private:
    const char *name;
    bool live;
    int nargs = 0;
    const char *argKeys[kTraceMaxArgs];
    double argVals[kTraceMaxArgs];
};

/**
 * Write every buffered event as Chrome trace-event JSON
 * (chrome://tracing and https://ui.perfetto.dev load it directly).
 * Events are ordered deterministically by (tid, record order);
 * per-thread drop counts land in "otherData". Quiescent points
 * only — see the file comment.
 */
void traceWriteJson(std::ostream &os);

/** traceWriteJson to @p path (atomic write; warns and returns
 * false on I/O failure). */
bool traceFlush(const std::string &path);

} // namespace obs
} // namespace mprobe

#endif // OBS_TRACE_HH
