/**
 * @file
 * Trace analysis implementation.
 */

#include "potra/analysis.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mprobe
{

double
DetectedPhase::durationMs(const PowerTrace &t) const
{
    return (static_cast<double>(lastSample - firstSample) + 1.0) *
           t.sampleMs;
}

std::vector<double>
smoothPower(const PowerTrace &trace, size_t w)
{
    if (w == 0)
        fatal("smoothPower: zero window");
    std::vector<double> out;
    out.reserve(trace.samples.size());
    double acc = 0.0;
    std::vector<double> win;
    for (size_t i = 0; i < trace.samples.size(); ++i) {
        win.push_back(trace.samples[i].watts);
        acc += trace.samples[i].watts;
        if (win.size() > w) {
            acc -= win.front();
            win.erase(win.begin());
        }
        out.push_back(acc / static_cast<double>(win.size()));
    }
    return out;
}

std::vector<DetectedPhase>
segmentPhases(const PowerTrace &trace, double threshold_frac,
              size_t min_samples, size_t smooth_window)
{
    std::vector<DetectedPhase> out;
    const auto &ss = trace.samples;
    if (ss.empty())
        return out;
    std::vector<double> sm = smoothPower(trace, smooth_window);

    size_t start = 0;
    double mean = sm[0];
    size_t departed = 0;
    auto close_phase = [&](size_t end) {
        DetectedPhase ph;
        ph.firstSample = start;
        ph.lastSample = end;
        double pw = 0.0, ipc = 0.0;
        std::vector<double> rates;
        for (size_t i = start; i <= end; ++i) {
            pw += ss[i].watts;
            ipc += ss[i].ipc;
            if (rates.empty())
                rates.assign(ss[i].rates.size(), 0.0);
            for (size_t r = 0; r < ss[i].rates.size(); ++r)
                rates[r] += ss[i].rates[r];
        }
        double n = static_cast<double>(end - start + 1);
        ph.meanWatts = pw / n;
        ph.meanIpc = ipc / n;
        for (auto &r : rates)
            r /= n;
        ph.meanRates = std::move(rates);
        out.push_back(std::move(ph));
    };

    for (size_t i = 1; i < ss.size(); ++i) {
        double dev = std::abs(sm[i] - mean) /
                     std::max(std::abs(mean), 1e-9);
        if (dev > threshold_frac) {
            ++departed;
            if (departed >= min_samples) {
                // The departure began min_samples ago.
                size_t boundary = i - departed + 1;
                if (boundary > start) {
                    close_phase(boundary - 1);
                    start = boundary;
                }
                mean = sm[i];
                departed = 0;
            }
        } else {
            departed = 0;
            // Track the running mean of the current phase.
            double n = static_cast<double>(i - start + 1);
            mean += (sm[i] - mean) / n;
        }
    }
    close_phase(ss.size() - 1);
    return out;
}

std::string
sparkline(const std::vector<double> &series, size_t buckets)
{
    if (series.empty() || buckets == 0)
        return "";
    static const char *const levels[] = {" ", ".", ":", "-", "=",
                                         "+", "*", "#"};
    double lo = *std::min_element(series.begin(), series.end());
    double hi = *std::max_element(series.begin(), series.end());
    double span = std::max(hi - lo, 1e-12);

    buckets = std::min(buckets, series.size());
    std::string out;
    for (size_t b = 0; b < buckets; ++b) {
        size_t from = b * series.size() / buckets;
        size_t to = (b + 1) * series.size() / buckets;
        double acc = 0.0;
        for (size_t i = from; i < to; ++i)
            acc += series[i];
        double v = acc / static_cast<double>(to - from);
        int idx = static_cast<int>((v - lo) / span * 7.999);
        out += levels[std::clamp(idx, 0, 7)];
    }
    return out;
}

} // namespace mprobe
