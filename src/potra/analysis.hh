/**
 * @file
 * Trace analysis: smoothing, phase segmentation and text plotting
 * (the analysis/plotting half of the POTRA role).
 */

#ifndef POTRA_ANALYSIS_HH
#define POTRA_ANALYSIS_HH

#include <string>
#include <vector>

#include "potra/trace.hh"

namespace mprobe
{

/** Moving average of the power series with window @p w samples. */
std::vector<double> smoothPower(const PowerTrace &trace, size_t w);

/** One detected phase of a trace. */
struct DetectedPhase
{
    size_t firstSample = 0;
    size_t lastSample = 0; //!< inclusive
    double meanWatts = 0.0;
    double meanIpc = 0.0;
    /** Mean activity rates over the phase. */
    std::vector<double> meanRates;

    double durationMs(const PowerTrace &t) const;
};

/**
 * Segment a trace into phases by detecting sustained shifts of the
 * smoothed power series: a new phase starts when the smoothed power
 * departs from the running phase mean by more than
 * @p threshold_frac for at least @p min_samples samples.
 */
std::vector<DetectedPhase>
segmentPhases(const PowerTrace &trace, double threshold_frac = 0.05,
              size_t min_samples = 4, size_t smooth_window = 3);

/**
 * Render the power series as a row of text sparkline blocks
 * (one character per bucket), for terminal inspection.
 */
std::string sparkline(const std::vector<double> &series,
                      size_t buckets = 64);

} // namespace mprobe

#endif // POTRA_ANALYSIS_HH
