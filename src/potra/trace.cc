/**
 * @file
 * Trace collection implementation.
 */

#include "potra/trace.hh"

#include <cmath>

#include "power/sample.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mprobe
{

double
PhasedWorkload::totalMs() const
{
    double t = 0.0;
    for (const auto &p : phases)
        t += p.milliseconds;
    return t;
}

PowerTrace
tracePhased(const Machine &machine, const PhasedWorkload &workload,
            const ChipConfig &cfg, double sample_ms, uint64_t salt)
{
    if (workload.phases.empty())
        fatal(cat("tracePhased: workload '", workload.name,
                  "' has no phases"));
    if (sample_ms <= 0.0)
        fatal("tracePhased: non-positive sampling period");

    PowerTrace trace;
    trace.workload = workload.name;
    trace.config = cfg;
    trace.sampleMs = sample_ms;

    Rng rng(0x707124ull ^ salt);
    double clock = 0.0;
    for (const auto &phase : workload.phases) {
        if (!phase.program)
            fatal("tracePhased: phase without a program");
        // Steady-state measurement of the phase (one deployment).
        RunResult r = machine.run(*phase.program, cfg, salt);
        Sample s = makeSample(phase.program->name, r);

        long count = std::lround(phase.milliseconds / sample_ms);
        for (long i = 0; i < count; ++i) {
            TraceSample ts;
            ts.timeMs = clock;
            clock += sample_ms;
            // Per-sample sensor noise + mW quantization on top of
            // the phase's true power.
            double noisy =
                r.sensorWatts *
                (1.0 + machine.groundTruth().sensorNoiseFrac *
                           rng.gaussian());
            ts.watts = std::round(noisy * 1000.0) / 1000.0;
            ts.ipc = r.coreIpc;
            ts.rates = s.rates;
            trace.samples.push_back(std::move(ts));
        }
    }
    return trace;
}

} // namespace mprobe
