/**
 * @file
 * Power/performance trace collection (the POTRA role).
 *
 * The paper's measurement stack samples the TPMD power sensors at
 * 1 ms granularity and gathers PMC traces alongside; the POTRA
 * framework then analyses and plots them (Section 3). This module
 * reproduces that role over the simulated machine: a *phased
 * workload* (a sequence of micro-benchmarks with durations, standing
 * in for an application's phases) is traced into a time series of
 * power and counter-rate samples, which the analysis half
 * (potra/analysis.hh) segments back into phases — enabling the
 * abstract's "application-specific (and if needed, phase-specific)
 * power projection".
 */

#ifndef POTRA_TRACE_HH
#define POTRA_TRACE_HH

#include <string>
#include <vector>

#include "sim/machine.hh"

namespace mprobe
{

/** One phase of an application: a kernel and how long it runs. */
struct WorkloadPhase
{
    const Program *program = nullptr;
    double milliseconds = 0.0;
};

/** An application modeled as a sequence of phases. */
struct PhasedWorkload
{
    std::string name;
    std::vector<WorkloadPhase> phases;

    double totalMs() const;
};

/** One trace sample (1 ms granularity by default). */
struct TraceSample
{
    double timeMs = 0.0;
    double watts = 0.0;     //!< sensor reading
    double ipc = 0.0;       //!< per-core IPC over the sample
    /** Chip-wide activity rates (Gev/s), ordered as
     * dynamicFeatureNames(). */
    std::vector<double> rates;
};

/** A collected power/PMC trace. */
struct PowerTrace
{
    std::string workload;
    ChipConfig config;
    double sampleMs = 1.0;
    std::vector<TraceSample> samples;
};

/**
 * Trace @p workload on @p cfg: each phase runs at its steady state
 * (measured once) and is sampled every @p sample_ms with fresh
 * sensor noise per sample, as the real 1 ms TPMD sampling would
 * observe.
 */
PowerTrace tracePhased(const Machine &machine,
                       const PhasedWorkload &workload,
                       const ChipConfig &cfg,
                       double sample_ms = 1.0,
                       uint64_t salt = 0);

} // namespace mprobe

#endif // POTRA_TRACE_HH
