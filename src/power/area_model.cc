/**
 * @file
 * Area-heuristic model implementation.
 */

#include "power/area_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace mprobe
{

AreaHeuristicModel
AreaHeuristicModel::calibrate(const UarchDef &uarch,
                              const Sample &hot, double idle_watts)
{
    if (hot.rates.size() != dynamicFeatureNames().size())
        fatal("AreaHeuristicModel: bad calibration sample");

    AreaHeuristicModel m;
    m.base = idle_watts;

    // Heuristic shares: units by floorplan area, cache levels by a
    // sub-linear function of capacity (bigger arrays burn more per
    // access, but not proportionally), memory accesses by the
    // off-chip interface share.
    double a_fxu = uarch.unit("FXU").areaMm2;
    double a_vsu = uarch.unit("VSU").areaMm2;
    double a_lsu = uarch.unit("LSU").areaMm2;
    auto cache_share = [&](const char *name) {
        return std::sqrt(static_cast<double>(
                   uarch.cache(name).geom.sizeBytes) /
               (32.0 * 1024.0));
    };
    std::vector<double> share = {
        a_fxu, a_vsu, a_lsu,
        cache_share("L1"), cache_share("L2"), cache_share("L3"),
        3.0 * cache_share("L3"), // off-chip accesses
    };

    // The calibration run's dynamic power is apportioned over the
    // shares weighted by its own activity; weight_i then converts
    // the feature rate to watts.
    double dyn = std::max(hot.powerWatts - idle_watts, 1e-6);
    double denom = 0.0;
    for (size_t i = 0; i < share.size(); ++i)
        denom += share[i] * hot.rates[i];
    if (denom <= 0.0)
        fatal("AreaHeuristicModel: calibration sample shows no "
              "activity");
    m.w.resize(share.size());
    for (size_t i = 0; i < share.size(); ++i)
        m.w[i] = dyn * share[i] / denom;
    return m;
}

double
AreaHeuristicModel::predict(const Sample &s) const
{
    if (s.rates.size() != w.size())
        panic("AreaHeuristicModel: predictor arity mismatch");
    double p = base;
    for (size_t i = 0; i < w.size(); ++i)
        p += w[i] * s.rates[i];
    return p;
}

} // namespace mprobe
