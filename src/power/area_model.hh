/**
 * @file
 * Area-heuristic bottom-up power model (Isci & Martonosi,
 * MICRO'03 — the paper's reference [27]).
 *
 * The earliest bottom-up counter models apportioned the measured
 * power over micro-architecture components using *floorplan areas*
 * as the heuristic weights: a component's maximum power is assumed
 * proportional to its area, and its runtime contribution scales with
 * its access rate. The micro-architecture definition's layout
 * information (UnitInfo::areaMm2) supplies the areas.
 *
 * Included as a comparison point: it needs almost no training (one
 * high-activity calibration run plus idle), but its accuracy is far
 * below the regression-based bottom-up model — quantifying what the
 * micro-benchmark-trained methodology buys.
 */

#ifndef POWER_AREA_MODEL_HH
#define POWER_AREA_MODEL_HH

#include "power/sample.hh"
#include "uarch/uarch.hh"

namespace mprobe
{

/** Area-apportioned counter model. */
class AreaHeuristicModel
{
  public:
    /**
     * Calibrate: distribute the dynamic power of the calibration
     * sample (typically the hottest micro-benchmark available) over
     * the FXU/VSU/LSU units by area, and over the cache levels by
     * capacity; the idle reading anchors the constant term.
     */
    static AreaHeuristicModel calibrate(const UarchDef &uarch,
                                        const Sample &hot,
                                        double idle_watts);

    /** Predict total processor power. */
    double predict(const Sample &s) const;

    /** Per-rate weights (W per Gev/s), for inspection. */
    const std::vector<double> &weights() const { return w; }

  private:
    std::vector<double> w; //!< per dynamic feature
    double base = 0.0;
};

} // namespace mprobe

#endif // POWER_AREA_MODEL_HH
