/**
 * @file
 * Bottom-up model training (the Figure-4 methodology).
 */

#include "power/bottomup.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/regression.hh"

namespace mprobe
{

namespace
{

/** Rates below this (Gev/s) count as "component not exercised". */
constexpr double kQuietRate = 1e-3;

/** Indices into Sample::rates. */
enum RateIx
{
    kFxu = 0,
    kVsu = 1,
    kLsu = 2,
    kL1 = 3,
    kL2 = 4,
    kL3 = 5,
    kMem = 6,
    kNumRates = 7
};

} // namespace

double
BottomUpModel::dynamicPower(const Sample &s) const
{
    if (s.rates.size() != w.size())
        panic(cat("BottomUpModel: sample with ", s.rates.size(),
                  " rates, model has ", w.size()));
    double p = 0.0;
    for (size_t i = 0; i < w.size(); ++i)
        p += w[i] * s.rates[i];
    return p;
}

BottomUpModel
BottomUpModel::train(const BottomUpTrainingSet &data)
{
    if (data.microSmt1.empty() || data.microSmtOn.empty() ||
        data.randomAllConfigs.empty())
        fatal("BottomUpModel: incomplete training set");

    BottomUpModel m;
    m.w.assign(kNumRates, 0.0);

    // ---- Step 1a: core-component weights from the compute-bound
    // micro-benchmarks (a sequence of regressions: units first,
    // memory hierarchy second, following Bertran et al.).
    std::vector<std::vector<double>> xa;
    std::vector<double> ya;
    for (const auto &s : data.microSmt1) {
        if (s.rates[kL2] > kQuietRate || s.rates[kL3] > kQuietRate ||
            s.rates[kMem] > kQuietRate)
            continue;
        xa.push_back({s.rates[kFxu], s.rates[kVsu], s.rates[kLsu],
                      s.rates[kL1]});
        ya.push_back(s.powerWatts);
    }
    if (xa.size() < 8)
        fatal("BottomUpModel: too few compute-bound SMT-1 samples");
    RegressionOptions nn;
    nn.nonNegative = true;
    RegressionResult unit_fit = fitLeastSquares(xa, ya, nn);
    m.w[kFxu] = unit_fit.coeffs[0];
    m.w[kVsu] = unit_fit.coeffs[1];
    m.w[kLsu] = unit_fit.coeffs[2];
    m.w[kL1] = unit_fit.coeffs[3];

    // ---- Step 1b: memory-hierarchy weights from the residual power
    // of the memory-exercising micro-benchmarks.
    std::vector<std::vector<double>> xb;
    std::vector<double> yb;
    for (const auto &s : data.microSmt1) {
        if (s.rates[kL2] <= kQuietRate &&
            s.rates[kL3] <= kQuietRate && s.rates[kMem] <= kQuietRate)
            continue;
        double known = m.w[kFxu] * s.rates[kFxu] +
                       m.w[kVsu] * s.rates[kVsu] +
                       m.w[kLsu] * s.rates[kLsu] +
                       m.w[kL1] * s.rates[kL1] + unit_fit.intercept;
        xb.push_back({s.rates[kL2], s.rates[kL3], s.rates[kMem]});
        yb.push_back(s.powerWatts - known);
    }
    if (xb.size() >= 6) {
        RegressionOptions nnni = nn;
        nnni.fitIntercept = false;
        RegressionResult mem_fit = fitLeastSquares(xb, yb, nnni);
        m.w[kL2] = mem_fit.coeffs[0];
        m.w[kL3] = mem_fit.coeffs[1];
        m.w[kMem] = mem_fit.coeffs[2];
    } else {
        warn("BottomUpModel: no memory-exercising samples; "
             "hierarchy weights default to zero");
    }

    // ---- Step 1c: intercept calibration on the random
    // micro-benchmarks ("to avoid under-estimating the power when
    // only particular units are stressed").
    double intercept_smt1 = unit_fit.intercept;
    if (!data.randomSmt1.empty()) {
        double acc = 0.0;
        for (const auto &s : data.randomSmt1)
            acc += s.powerWatts - m.dynamicPower(s);
        intercept_smt1 = acc /
                         static_cast<double>(data.randomSmt1.size());
    }

    // ---- Step 2: SMT effect = intercept(SMT-2/4) - intercept(SMT-1).
    double acc_on = 0.0;
    for (const auto &s : data.microSmtOn)
        acc_on += s.powerWatts - m.dynamicPower(s);
    double intercept_smton =
        acc_on / static_cast<double>(data.microSmtOn.size());
    m.smtEff = intercept_smton - intercept_smt1;

    // ---- Step 3: CMP effect and uncore power from residuals of the
    // random micro-benchmarks across every configuration.
    std::vector<std::vector<double>> xc;
    std::vector<double> yc;
    for (const auto &s : data.randomAllConfigs) {
        double pred = m.dynamicPower(s) +
                      m.smtEff * s.smtVar() * s.coresVar();
        xc.push_back({s.coresVar()});
        yc.push_back(s.powerWatts - pred);
    }
    RegressionResult cmp_fit = fitLeastSquares(xc, yc);
    m.cmpEff = cmp_fit.coeffs[0];
    double b = cmp_fit.intercept;

    // Reported split of the constant term: the measured idle power
    // is the workload-independent component; the remainder is
    // uncore.
    m.wiW = data.idleWatts;
    m.uncoreW = b - data.idleWatts;
    return m;
}

double
BottomUpModel::predict(const Sample &s) const
{
    return breakdown(s).total();
}

PowerBreakdown
BottomUpModel::breakdown(const Sample &s) const
{
    PowerBreakdown pb;
    pb.dynamic = dynamicPower(s);
    pb.smtEffect = smtEff * s.smtVar() * s.coresVar();
    pb.cmpEffect = cmpEff * s.coresVar();
    pb.uncore = uncoreW;
    pb.workloadIndependent = wiW;
    return pb;
}

} // namespace mprobe
