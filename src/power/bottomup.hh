/**
 * @file
 * SMT/CMP-aware bottom-up counter-based power model (paper
 * Section 4.1).
 *
 * The four-step methodology of Figure 4:
 *
 *  1. model a single hardware context: non-negative per-component
 *     regression of power against the seven activity rates on
 *     single-core SMT-1 training data, intercept calibrated on the
 *     random micro-benchmarks;
 *  2. model the SMT effect as the intercept difference between the
 *     SMT-enabled and SMT-disabled fits;
 *  3. apply the dynamic + SMT models to the random micro-benchmarks
 *     in every configuration and regress the residuals against the
 *     number of cores: slope = CMP effect, intercept = uncore power;
 *  4. combine:  P = sum_k Pdyn_k + SMT_eff*#smt_cores
 *                 + CMP_eff*#cores + P_uncore.
 *
 * The model's decomposability yields per-component breakdowns
 * (Figures 5a and 8).
 */

#ifndef POWER_BOTTOMUP_HH
#define POWER_BOTTOMUP_HH

#include <vector>

#include "power/sample.hh"

namespace mprobe
{

/** Training input of the bottom-up methodology. */
struct BottomUpTrainingSet
{
    /** Micro-architecture-aware samples at 1 core, SMT-1. */
    std::vector<Sample> microSmt1;
    /** Micro-architecture-aware samples at 1 core, SMT-2/4. */
    std::vector<Sample> microSmtOn;
    /** Random micro-benchmarks at 1 core, SMT-1 (intercept
     * calibration). */
    std::vector<Sample> randomSmt1;
    /** Random micro-benchmarks across all configurations
     * (CMP-effect / uncore regression). */
    std::vector<Sample> randomAllConfigs;
    /** Measured idle power (workload-independent component used
     * only for reporting breakdowns, as the paper plots it). */
    double idleWatts = 0.0;
};

/** Per-component power breakdown of one prediction (Figure 5a). */
struct PowerBreakdown
{
    double dynamic = 0.0;
    double smtEffect = 0.0;
    double cmpEffect = 0.0;
    double uncore = 0.0;
    double workloadIndependent = 0.0;

    double
    total() const
    {
        return dynamic + smtEffect + cmpEffect + uncore +
               workloadIndependent;
    }
};

/** The trained bottom-up model. */
class BottomUpModel
{
  public:
    /** Fit the four-step methodology on @p data. */
    static BottomUpModel train(const BottomUpTrainingSet &data);

    /** Predict total processor power for a sample. */
    double predict(const Sample &s) const;

    /** Predict with the per-component decomposition. */
    PowerBreakdown breakdown(const Sample &s) const;

    /** @name Fitted parameters (inspection / reporting) */
    /**@{*/
    const std::vector<double> &weights() const { return w; }
    double smtEffect() const { return smtEff; }
    double cmpEffect() const { return cmpEff; }
    double uncore() const { return uncoreW; }
    double workloadIndependent() const { return wiW; }
    /**@}*/

  private:
    std::vector<double> w;  //!< per-rate dynamic weights (W per Gev/s)
    double smtEff = 0.0;    //!< watts per SMT-enabled core
    double cmpEff = 0.0;    //!< watts per enabled core
    double uncoreW = 0.0;   //!< constant uncore power
    double wiW = 0.0;       //!< reported workload-independent power

    double dynamicPower(const Sample &s) const;
};

} // namespace mprobe

#endif // POWER_BOTTOMUP_HH
