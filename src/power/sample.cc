/**
 * @file
 * Sample construction.
 */

#include "power/sample.hh"

namespace mprobe
{

Sample
makeSample(const std::string &workload, const RunResult &r)
{
    Sample s;
    s.workload = workload;
    s.config = r.config;
    constexpr double kGiga = 1e-9;
    s.rates = {
        r.rate(r.chip.fxuOps) * kGiga,
        r.rate(r.chip.vsuOps) * kGiga,
        r.rate(r.chip.lsuOps) * kGiga,
        r.rate(r.chip.l1Hits) * kGiga,
        r.rate(r.chip.l2Hits) * kGiga,
        r.rate(r.chip.l3Hits) * kGiga,
        r.rate(r.chip.memAcc) * kGiga,
    };
    s.powerWatts = r.sensorWatts;
    s.instrGips = r.rate(r.chip.instrs) * kGiga;
    s.coreIpc = r.coreIpc;
    s.freqGhz = r.freqGhz > 0.0 ? r.freqGhz : kNominalFreqGhz;
    s.vddVolts = r.voltage > 0.0 ? r.voltage : kNominalVdd;
    s.reliable = r.reliable;
    return s;
}

} // namespace mprobe
