/**
 * @file
 * Model training/validation samples.
 *
 * A Sample is exactly what the measurement stack yields for one
 * (workload, configuration) run: the activity rates of the seven
 * power components of the paper's dynamic model (FXU, VSU, LSU, L1,
 * L2, L3, MEM), the configuration variables (#cores, SMT enabled)
 * and the measured processor power. The power models see nothing
 * else.
 */

#ifndef POWER_SAMPLE_HH
#define POWER_SAMPLE_HH

#include <string>
#include <vector>

#include "dvfs/op_point.hh"
#include "sim/machine.hh"

namespace mprobe
{

/** Feature names of the dynamic power components, in order. */
inline const std::vector<std::string> &
dynamicFeatureNames()
{
    static const std::vector<std::string> names = {
        "FXU", "VSU", "LSU", "L1", "L2", "L3", "MEM",
    };
    return names;
}

/** One measured (workload, configuration) point. */
struct Sample
{
    std::string workload;
    ChipConfig config;
    /**
     * Chip-wide activity rates in giga-events per second, ordered
     * as dynamicFeatureNames(): FXU, VSU, LSU, L1, L2, L3, MEM.
     */
    std::vector<double> rates;
    /** Measured processor power (sensor), watts. */
    double powerWatts = 0.0;
    /** Chip-wide committed instruction rate, giga-instr/s (not a
     * model input; carried for exports and EPI computations). */
    double instrGips = 0.0;
    /** Per-core IPC over the window (not a model input). */
    double coreIpc = 0.0;
    /** Core frequency the point was measured at, GHz (not a model
     * input; the DVFS sweep axis). Pre-DVFS cache entries without
     * the field load as the nominal kNominalFreqGhz. */
    double freqGhz = kNominalFreqGhz;
    /** Supply voltage the point was measured at, volts (not a
     * model input; the undervolting sweep axis). Cache entries
     * without the field load as the default curve's voltage at
     * freqGhz, i.e. on-curve. */
    double vddVolts = kNominalVdd;
    /** False when the point was measured below the workload's
     * hidden Vmin: the numbers are margin-compromised and must not
     * feed models or optimum tables. */
    bool reliable = true;

    /** Number of cores as a model input. */
    double coresVar() const { return config.cores; }
    /** SMT-enabled indicator as a model input. */
    double smtVar() const { return config.smt > 1 ? 1.0 : 0.0; }
};

/** Build a sample from a measurement. */
Sample makeSample(const std::string &workload, const RunResult &r);

} // namespace mprobe

#endif // POWER_SAMPLE_HH
