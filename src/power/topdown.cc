/**
 * @file
 * Top-down model training with forward stepwise selection.
 */

#include "power/topdown.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/regression.hh"

namespace mprobe
{

std::vector<double>
TopDownModel::predictors(const Sample &s, const TopDownOptions &o)
{
    std::vector<double> x = s.rates;
    if (o.useCores)
        x.push_back(s.coresVar());
    if (o.useSmt)
        x.push_back(s.smtVar());
    return x;
}

std::vector<std::string>
TopDownModel::predictorNames(const TopDownOptions &o)
{
    std::vector<std::string> names = dynamicFeatureNames();
    if (o.useCores)
        names.push_back("#cores");
    if (o.useSmt)
        names.push_back("SMT");
    return names;
}

namespace
{

double
adjustedR2(double r2, size_t n, size_t p)
{
    if (n <= p + 1)
        return -1e300;
    return 1.0 - (1.0 - r2) * static_cast<double>(n - 1) /
                     static_cast<double>(n - p - 1);
}

} // namespace

TopDownModel
TopDownModel::train(const std::vector<Sample> &samples,
                    const std::string &name,
                    const TopDownOptions &opts)
{
    if (samples.size() < 10)
        fatal(cat("TopDownModel '", name,
                  "': too few training samples (",
                  samples.size(), ")"));

    TopDownModel m;
    m.modelName = name;
    m.opts = opts;

    std::vector<std::vector<double>> x;
    std::vector<double> y;
    x.reserve(samples.size());
    for (const auto &s : samples) {
        x.push_back(predictors(s, opts));
        y.push_back(s.powerWatts);
    }
    const size_t p_all = x[0].size();
    const auto names = predictorNames(opts);

    // Forward stepwise selection by adjusted R^2.
    std::vector<size_t> chosen;
    std::vector<bool> in(p_all, false);
    double best_adj = -1e300;
    if (opts.stepwiseMinGain >= 0.0) {
        for (;;) {
            size_t best_j = p_all;
            double best_gain_adj = best_adj;
            for (size_t j = 0; j < p_all; ++j) {
                if (in[j])
                    continue;
                std::vector<std::vector<double>> xs;
                xs.reserve(x.size());
                for (const auto &row : x) {
                    std::vector<double> r;
                    for (size_t c : chosen)
                        r.push_back(row[c]);
                    r.push_back(row[j]);
                    xs.push_back(std::move(r));
                }
                RegressionResult fit = fitLeastSquares(xs, y);
                double adj =
                    adjustedR2(fit.r2, y.size(), chosen.size() + 1);
                if (adj > best_gain_adj) {
                    best_gain_adj = adj;
                    best_j = j;
                }
            }
            if (best_j == p_all ||
                best_gain_adj - best_adj < opts.stepwiseMinGain)
                break;
            chosen.push_back(best_j);
            in[best_j] = true;
            best_adj = best_gain_adj;
            if (chosen.size() == p_all)
                break;
        }
    }
    if (chosen.empty())
        for (size_t j = 0; j < p_all; ++j)
            chosen.push_back(j);

    // Final single multiple-linear regression on the selection.
    std::vector<std::vector<double>> xs;
    xs.reserve(x.size());
    for (const auto &row : x) {
        std::vector<double> r;
        for (size_t c : chosen)
            r.push_back(row[c]);
        xs.push_back(std::move(r));
    }
    RegressionResult fit = fitLeastSquares(xs, y);

    m.coeffs.assign(p_all, 0.0);
    for (size_t k = 0; k < chosen.size(); ++k) {
        m.coeffs[chosen[k]] = fit.coeffs[k];
        m.selectedNames.push_back(names[chosen[k]]);
    }
    m.intercept = fit.intercept;
    return m;
}

double
TopDownModel::predict(const Sample &s) const
{
    std::vector<double> x = predictors(s, opts);
    if (x.size() != coeffs.size())
        panic(cat("TopDownModel '", modelName,
                  "': predictor arity mismatch"));
    double p = intercept;
    for (size_t i = 0; i < x.size(); ++i)
        p += coeffs[i] * x[i];
    return p;
}

} // namespace mprobe
