/**
 * @file
 * Top-down counter-based power models (paper Section 4.1.2).
 *
 * The comparison baseline: "TD modeling methodologies use parameter
 * selection techniques to select the model inputs and then they
 * apply a single multiple linear regression to model the entire
 * processor." For fairness the inputs are the same as the bottom-up
 * model's: the seven activity rates plus the number of cores enabled
 * and the SMT mode. Three instances are trained, named after their
 * training sets — TD_Micro, TD_Random and TD_SPEC (the latter is the
 * optimistic model trained on the validation suite itself).
 */

#ifndef POWER_TOPDOWN_HH
#define POWER_TOPDOWN_HH

#include <string>
#include <vector>

#include "power/sample.hh"

namespace mprobe
{

/** Options for top-down training. */
struct TopDownOptions
{
    /** Use the #cores input variable. */
    bool useCores = true;
    /** Use the SMT-enabled input variable. */
    bool useSmt = true;
    /**
     * Forward stepwise parameter selection: add predictors while
     * the adjusted R^2 improves by at least this much. Set to a
     * negative value to keep all predictors.
     */
    double stepwiseMinGain = 1e-4;
};

/** A single-regression whole-processor model. */
class TopDownModel
{
  public:
    /** Fit on @p samples (any mixture of configurations). */
    static TopDownModel train(const std::vector<Sample> &samples,
                              const std::string &name,
                              const TopDownOptions &opts =
                                  TopDownOptions());

    /** Predict total processor power. */
    double predict(const Sample &s) const;

    /** Model name, e.g. "TD_Micro". */
    const std::string &name() const { return modelName; }

    /** Names of the predictors the stepwise selection kept. */
    const std::vector<std::string> &selected() const
    {
        return selectedNames;
    }

  private:
    std::string modelName;
    TopDownOptions opts;
    /** Coefficients over the full predictor vector (zeros for
     * predictors the selection dropped). */
    std::vector<double> coeffs;
    double intercept = 0.0;

    std::vector<std::string> selectedNames;

    static std::vector<double> predictors(const Sample &s,
                                          const TopDownOptions &o);
    static std::vector<std::string>
    predictorNames(const TopDownOptions &o);
};

} // namespace mprobe

#endif // POWER_TOPDOWN_HH
