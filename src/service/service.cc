/**
 * @file
 * Drop-directory campaign service implementation.
 */

#include "service/service.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#include "campaign/export.hh"
#include "campaign/queue.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/fileio.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace mprobe
{

namespace fs = std::filesystem;

CampaignService::ActiveCampaign::ActiveCampaign(std::string name_,
                                                CampaignSpec spec_,
                                                Architecture arch_)
    : name(std::move(name_)), spec(std::move(spec_)),
      arch(std::move(arch_)),
      machine(arch.isa(), arch.uarch().cacheGeometries(),
              arch.uarch().clockGhz())
{
}

CampaignService::CampaignService(ServiceOptions o)
    : opts(std::move(o)), cache(opts.cacheDir),
      claims(opts.cacheDir, opts.workerId, opts.claimTtlSeconds),
      queue(cache, claims)
{
    if (opts.dropDir.empty() || opts.cacheDir.empty() ||
        opts.resultsDir.empty())
        fatal("service: --drop-dir, --cache-dir and --results-dir "
              "are all required (specs arrive in the first, the "
              "fleet's pool lives in the second, per-campaign "
              "results stream into the third)");
    if (opts.pollSeconds <= 0.0 || opts.statusSeconds <= 0.0)
        fatal("service: poll/status periods must be > 0 seconds");
    std::error_code ec;
    fs::create_directories(opts.dropDir, ec);
    if (ec)
        fatal(cat("service: cannot create drop directory '",
                  opts.dropDir, "': ", ec.message()));
    fs::create_directories(opts.resultsDir, ec);
    if (ec)
        fatal(cat("service: cannot create results directory '",
                  opts.resultsDir, "': ", ec.message()));
}

CampaignService::~CampaignService()
{
    stopRequested.store(true);
    for (auto &w : workers)
        if (w.joinable())
            w.join();
}

std::string
CampaignService::campaignDir(const std::string &name) const
{
    return opts.resultsDir + "/" + name;
}

bool
CampaignService::ingestSpec(const std::string &path)
{
    std::string name = fs::path(path).stem().string();
    // The guard turns the parser's / expander's fatal() calls into
    // exceptions: one malformed dropped spec must not take down a
    // fleet serving other campaigns.
    try {
        ScopedFatalThrows guard;
        obs::TraceSpan span("service.ingest");
        CampaignSpec spec = loadCampaignSpec(path);
        if (spec.sharded() || spec.serve)
            warn(cat("service: campaign '", name,
                     "': shard/serve keys are meaningless under "
                     "the service (the pool is dynamic) and were "
                     "ignored"));
        // The service owns execution: one shared cache + claim
        // pool, a per-campaign manifest directory, and serial
        // generation (the guard above is thread-local, so fatal()
        // on a generation worker thread would still exit).
        spec.cacheDir = opts.cacheDir;
        spec.manifestDir = campaignDir(name);
        spec.serve = false;
        spec.shardIndex = 0;
        spec.shardCount = 1;
        spec.threads = 1;
        spec.suite.threads = 1;

        auto c = std::make_unique<ActiveCampaign>(
            name, std::move(spec),
            Architecture::get(opts.archName));
        inform(cat("service: ingesting campaign '", name, "' (",
                   c->spec.contentSummary(), ")"));
        Campaign campaign(c->machine, c->spec);
        CampaignExpansion ex = campaign.expand(c->arch);
        c->workloads = std::move(ex.workloads);
        c->jobs = std::move(ex.jobs);
        c->done.assign(c->jobs.size(), 0);

        std::vector<PoolJob> pjobs;
        pjobs.reserve(c->jobs.size());
        {
            MutexLock lock(mutex);
            for (size_t j = 0; j < c->jobs.size(); ++j) {
                pjobs.push_back({c->jobs[j].key, pool.size(),
                                 c->jobs[j].cost});
                pool.push_back({c.get(), j});
            }
            campaigns.push_back(std::move(c));
        }
        queue.push(pjobs);
        obs::counter("specs_ingested").add();
        inform(cat("service: campaign '", name, "' queued (",
                   pjobs.size(), " jobs in the shared pool)"));
        return true;
    } catch (const FatalError &e) {
        warn(cat("service: dropped spec '", path,
                 "' rejected: ", e.what()));
        return false;
    }
}

size_t
CampaignService::ingestScan()
{
    std::vector<std::string> fresh;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(opts.dropDir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file())
            continue;
        std::string p = entry.path().string();
        if (entry.path().extension() != ".spec")
            continue;
        if (ingestedFiles.count(p))
            continue;
        fresh.push_back(p);
    }
    // Deterministic ingest order when several specs land between
    // scans (directory iteration order is unspecified).
    std::sort(fresh.begin(), fresh.end());
    size_t ingested = 0;
    for (const std::string &p : fresh) {
        // Rejected specs are remembered too: re-parsing the same
        // broken file every scan would spam the log. Clients
        // resubmit under a new name.
        ingestedFiles.insert(p);
        if (ingestSpec(p))
            ++ingested;
    }
    return ingested;
}

void
CampaignService::writeStatusJson(
    const ActiveCampaign &c, size_t claimed,
    const std::vector<obs::WorkerTelemetry> &fleet) const
{
    std::ostringstream os;
    os << "{\n"
       << "  \"schema_version\": 2,\n"
       << "  \"campaign\": \"" << jsonEscape(c.name) << "\",\n"
       << "  \"spec\": \"" << jsonEscape(c.spec.contentSummary())
       << "\",\n"
       << "  \"state\": \""
       << (c.complete ? "complete" : "running") << "\",\n"
       << "  \"total_jobs\": " << c.jobs.size() << ",\n"
       << "  \"done_jobs\": " << c.doneCount << ",\n"
       << "  \"claimed_jobs\": " << claimed << ",\n"
       << "  \"metrics\": ";
    obs::metricsWriteJson(os, "  ");
    os << ",\n  \"workers\": [";
    bool first = true;
    for (const obs::WorkerTelemetry &w : fleet) {
        os << (first ? "\n" : ",\n") << "    {\"worker\": \""
           << jsonEscape(w.worker) << "\", \"jobs\": " << w.jobs
           << ", \"hits\": " << w.hits
           << ", \"acquired\": " << w.acquired
           << ", \"stolen\": " << w.stolen
           << ", \"seconds\": " << w.seconds
           << ", \"jobs_per_second\": " << w.jobsPerSecond
           << ", \"hit_rate\": " << w.hitRate
           << ", \"age_seconds\": " << w.ageSeconds << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n"
       << "}\n";
    atomicWriteFile(campaignDir(c.name) + "/status.json",
                    os.str(), "service status");
}

void
CampaignService::updateStatus()
{
    // One directory read serves every campaign's workers table
    // this pass (the table is fleet-wide, not per-campaign).
    std::vector<obs::WorkerTelemetry> fleet =
        obs::readFleetTelemetry(opts.cacheDir);
    MutexLock lock(mutex);
    for (auto &cp : campaigns) {
        ActiveCampaign &c = *cp;
        if (c.complete)
            continue;
        // Fold in peer progress: jobs this process never ran but
        // whose results appeared in the shared cache.
        size_t claimed = 0;
        for (size_t j = 0; j < c.jobs.size(); ++j) {
            if (!c.done[j]) {
                if (cache.contains(c.jobs[j].key)) {
                    c.done[j] = 1;
                    ++c.doneCount;
                } else {
                    ClaimInfo info;
                    if (claims.info(c.jobs[j].key, info) &&
                        info.ageSeconds <= claims.ttlSeconds())
                        ++claimed;
                }
            }
        }
        bool finished = c.doneCount == c.jobs.size();
        if (finished) {
            // Final export: every job, manifest (= job) order —
            // byte-identical to a standalone run of the spec. A
            // cached entry gone corrupt since the drain is
            // re-measured here rather than exported as a hole.
            std::vector<Sample> samples(c.jobs.size());
            for (size_t j = 0; j < c.jobs.size(); ++j) {
                const CampaignJob &job = c.jobs[j];
                if (cache.peek(job.key, samples[j]))
                    continue;
                warn(cat("service: campaign '", c.name, "': job ",
                         j, " vanished from the cache; "
                         "re-measuring"));
                const Program &prog =
                    c.workloads[job.workload].program;
                uint64_t salt = hashCombine(job.key, 0x5a17ull);
                samples[j] = makeSample(
                    prog.name,
                    c.machine.run(
                        prog, job.config,
                        c.machine.operatingPoint(job.freqGhz),
                        salt));
                cache.store(job.key, samples[j]);
            }
            std::ostringstream csv, json;
            exportSamplesCsv(csv, samples);
            exportSamplesJson(json, samples);
            atomicWriteFile(campaignDir(c.name) + "/samples.csv",
                            csv.str(), "service export");
            atomicWriteFile(campaignDir(c.name) + "/samples.json",
                            json.str(), "service export");
            c.complete = true;
            writeStatusJson(c, 0, fleet);
            inform(cat("service: campaign '", c.name,
                       "' complete (", c.jobs.size(),
                       " samples exported)"));
            continue;
        }
        if (c.doneCount != c.exportedDone) {
            // Incremental results: the samples measured so far, in
            // manifest order with open jobs skipped — consumers
            // can start model fitting before the campaign ends.
            std::vector<Sample> partial;
            partial.reserve(c.doneCount);
            for (size_t j = 0; j < c.jobs.size(); ++j) {
                Sample s;
                if (c.done[j] && cache.peek(c.jobs[j].key, s))
                    partial.push_back(std::move(s));
            }
            std::ostringstream csv, json;
            exportSamplesCsv(csv, partial);
            exportSamplesJson(json, partial);
            atomicWriteFile(campaignDir(c.name) + "/partial.csv",
                            csv.str(), "service export");
            atomicWriteFile(campaignDir(c.name) + "/partial.json",
                            json.str(), "service export");
            c.exportedDone = c.doneCount;
        }
        writeStatusJson(c, claimed, fleet);
    }
}

void
CampaignService::drainLoop()
{
    while (!stopRequested.load()) {
        size_t gi = 0;
        ClaimedQueue::Pull pull = queue.next(gi);
        if (pull != ClaimedQueue::Pull::Job) {
            // Wait: live peers hold everything open. Drained: the
            // pool is momentarily empty, but the watcher may
            // ingest more work — only stopRequested ends a
            // worker.
            std::this_thread::sleep_for(
                std::chrono::duration<double>(opts.pollSeconds));
            continue;
        }
        PoolRef ref;
        {
            MutexLock lock(mutex);
            ref = pool[gi];
        }
        ActiveCampaign &c = *ref.campaign;
        const CampaignJob &job = c.jobs[ref.job];
        {
            obs::TraceSpan jspan("service.job");
            Sample s;
            if (cache.lookup(job.key, s)) {
                obs::counter("cache_hits").add();
                jspan.note("cached", 1);
            } else {
                obs::counter("cache_misses").add();
                jspan.note("cached", 0);
                const Program &prog =
                    c.workloads[job.workload].program;
                uint64_t salt = hashCombine(job.key, 0x5a17ull);
                s = makeSample(
                    prog.name,
                    c.machine.run(
                        prog, job.config,
                        c.machine.operatingPoint(job.freqGhz),
                        salt));
                cache.store(job.key, s);
            }
            jspan.note("cost_est", job.cost);
        }
        jobsRun.fetch_add(1);
        queue.complete(gi);
        {
            MutexLock lock(mutex);
            if (!c.done[ref.job]) {
                c.done[ref.job] = 1;
                ++c.doneCount;
            }
        }
    }
}

std::vector<ServiceCampaignStatus>
CampaignService::statuses() const
{
    MutexLock lock(mutex);
    std::vector<ServiceCampaignStatus> out;
    out.reserve(campaigns.size());
    for (const auto &cp : campaigns)
        out.push_back({cp->name, cp->jobs.size(), cp->doneCount, 0,
                       cp->complete});
    return out;
}

size_t
CampaignService::run()
{
    int threads = resolveThreads(opts.threads, "service");
    inform(cat("service: watching ", opts.dropDir, " (pool ",
               opts.cacheDir, ", results ", opts.resultsDir,
               ") as worker ", claims.workerId(), " with ",
               threads, threads == 1 ? " thread" : " threads"));
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([this]() { drainLoop(); });

    // lint: wallclock-ok(worker-telemetry heartbeat only)
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    // This worker's fleet-telemetry heartbeat: published every
    // watcher pass, read back (with every peer's) by updateStatus
    // into the status.json workers table.
    auto publishTelemetry = [&]() {
        obs::WorkerTelemetry t;
        t.worker = claims.workerId();
        t.jobs = jobsRun.load();
        t.hits = cache.hits();
        t.acquired = claims.acquired();
        t.stolen = claims.stolen();
        t.seconds =
            std::chrono::duration<double>(clock::now() - t0)
                .count();
        t.jobsPerSecond =
            t.seconds > 0.0
                ? static_cast<double>(t.jobs) / t.seconds
                : 0.0;
        size_t looked = cache.hits() + cache.misses();
        t.hitRate = looked > 0
                        ? static_cast<double>(cache.hits()) /
                              static_cast<double>(looked)
                        : 0.0;
        obs::writeWorkerTelemetry(opts.cacheDir, t);
    };

    while (!stopRequested.load()) {
        size_t ingested = ingestScan();
        // One live thread refreshing every held claim keeps
        // single-worker fleets from stealing their own long jobs.
        claims.heartbeatHeld();
        publishTelemetry();
        updateStatus();
        bool idle;
        {
            MutexLock lock(mutex);
            idle = std::all_of(campaigns.begin(), campaigns.end(),
                               [](const auto &c) {
                                   return c->complete;
                               });
        }
        if (opts.exitWhenIdle && idle && ingested == 0)
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts.pollSeconds));
    }

    stopRequested.store(true);
    for (auto &w : workers)
        w.join();
    workers.clear();
    // A final fold so completions that raced the loop exit still
    // land in status.json / samples.csv — with this worker's last
    // telemetry snapshot folded into the workers table first.
    publishTelemetry();
    updateStatus();

    MutexLock lock(mutex);
    size_t completed = 0;
    for (const auto &c : campaigns)
        if (c->complete)
            ++completed;
    inform(cat("service: exiting; ", completed, " of ",
               campaigns.size(), " ingested campaigns complete"));
    return completed;
}

} // namespace mprobe
