/**
 * @file
 * Long-lived campaign service: async spec ingestion over a shared
 * claim pool.
 *
 * The fleet shape the north star names — N clients submitting
 * characterization sweeps against one warm worker fleet — needs
 * more than one-shot `mprobe_campaign` invocations: campaigns must
 * be *submitted* while others run, and their jobs must share one
 * worker pool and one result cache. This subsystem provides that as
 * a drop-directory service:
 *
 *   - clients submit a campaign by dropping a `<name>.spec` file
 *     (the campaign/spec.hh format) into the watched drop
 *     directory;
 *   - the service ingests each new spec while its workers run:
 *     generates the workloads, expands the job list, persists a
 *     per-campaign manifest under `<results>/<name>/`, and feeds
 *     the jobs into one shared claim pool (campaign/claims.hh),
 *     cost-ordered across *all* active campaigns via the
 *     JobCostModel estimates the jobs carry;
 *   - worker threads drain the pool through per-job claim files in
 *     the shared cache directory, so any number of service
 *     processes (and plain `mprobe_campaign --serve` workers on
 *     the same spec) cooperate, steal from dead peers, and never
 *     duplicate results;
 *   - results stream incrementally: every status period each
 *     active campaign gets a fresh `status.json` plus partial
 *     CSV/JSON exports of the samples measured so far, and on
 *     completion the final `samples.csv`/`samples.json` — byte
 *     identical to the export of a standalone run of the same
 *     spec, because exports are manifest-ordered cached samples
 *     either way.
 */

#ifndef SERVICE_SERVICE_HH
#define SERVICE_SERVICE_HH

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/claims.hh"
#include "obs/telemetry.hh"
#include "util/thread_annotations.hh"

namespace mprobe
{

/** Service configuration (the mprobe_service CLI mirrors this). */
struct ServiceOptions
{
    /** Directory watched for dropped `<name>.spec` files. */
    std::string dropDir;
    /** Shared sample cache + claim directory (the fleet's pool). */
    std::string cacheDir;
    /** Per-campaign output root: `<resultsDir>/<name>/` holds the
     * manifest, status.json and the sample exports. */
    std::string resultsDir;
    /** Worker threads draining the pool (0 = one per hardware
     * thread). */
    int threads = 0;
    /** Seconds between drop-directory scans, and a worker's sleep
     * when live peers hold every remaining job. */
    double pollSeconds = 1.0;
    /** Seconds between status.json/partial-export refreshes. */
    double statusSeconds = 5.0;
    /** Stale-claim TTL (campaign/claims.hh semantics). */
    double claimTtlSeconds = kDefaultClaimTtlSeconds;
    /** Claim-file worker identity; empty = "host:pid". */
    std::string workerId;
    /** Architecture the campaigns run on. */
    std::string archName = "POWER7";
    /**
     * Exit once every ingested campaign is complete and a
     * drop-directory scan finds nothing new (CI/tests). False runs
     * until requestStop().
     */
    bool exitWhenIdle = false;
};

/** One ingested campaign's public progress snapshot. */
struct ServiceCampaignStatus
{
    std::string name;
    size_t totalJobs = 0;
    size_t doneJobs = 0;
    /** Undone jobs currently claimed (by any worker process). */
    size_t claimedJobs = 0;
    bool complete = false;
};

/** The drop-directory campaign service. */
class CampaignService
{
  public:
    explicit CampaignService(ServiceOptions opts);
    ~CampaignService();

    /**
     * Run the service: spawn the worker pool, then loop scanning
     * the drop directory, ingesting new specs and streaming
     * per-campaign status/partial results, until idle
     * (opts.exitWhenIdle) or requestStop(). Returns the number of
     * campaigns that reached completion.
     */
    size_t run();

    /** Ask a running run() to wind down (thread-safe; returns
     * immediately). */
    void requestStop() { stopRequested.store(true); }

    /** Snapshot of every ingested campaign's progress. */
    std::vector<ServiceCampaignStatus> statuses() const;

  private:
    /** One ingested campaign: its own architecture/machine (the
     * bootstrap mutates the arch) plus expansion and progress. */
    struct ActiveCampaign
    {
        std::string name;
        CampaignSpec spec;
        Architecture arch;
        Machine machine;
        std::vector<CampaignWorkload> workloads;
        std::vector<CampaignJob> jobs;
        /** Per-job completion (run locally or observed cached). */
        std::vector<char> done;
        size_t doneCount = 0;
        bool complete = false;
        /** Done count at the last partial export (skip rewriting
         * identical partials). */
        size_t exportedDone = static_cast<size_t>(-1);

        ActiveCampaign(std::string name_, CampaignSpec spec_,
                       Architecture arch_);
    };

    /** Pool-index -> (campaign, job) mapping for worker pulls. */
    struct PoolRef
    {
        ActiveCampaign *campaign = nullptr;
        size_t job = 0;
    };

    ServiceOptions opts;
    ResultCache cache;
    ClaimDir claims;
    ClaimedQueue queue;
    /** Guards campaigns and pool: the watcher thread appends
     * while workers resolve pool indices and the status writer
     * reads progress. ActiveCampaign fields count as guarded too —
     * every access path goes through these containers. */
    mutable Mutex mutex;
    std::vector<std::unique_ptr<ActiveCampaign>> campaigns
        GUARDED_BY(mutex);
    std::vector<PoolRef> pool GUARDED_BY(mutex);
    /** Touched only by the run() watcher thread (ingestScan);
     * needs no lock. */
    std::set<std::string> ingestedFiles;
    std::atomic<bool> stopRequested{false};
    std::vector<std::thread> workers;
    /** Jobs this process measured (worker-telemetry throughput). */
    std::atomic<uint64_t> jobsRun{0};

    /** Scan the drop directory; ingest every new spec. Returns the
     * number of campaigns ingested this scan. */
    size_t ingestScan();
    /** Ingest one dropped spec file; false (with a warning) when
     * it cannot be parsed or expanded. */
    bool ingestSpec(const std::string &path);
    /** Refresh done counts from the cache, write status.json and
     * partial/final exports for campaigns that progressed. */
    void updateStatus();
    /** Worker-thread body: drain the shared pool until stop. */
    void drainLoop();
    /** Directory of one campaign's outputs. */
    std::string campaignDir(const std::string &name) const;
    /** Write one campaign's status.json; @p fleet is the worker
     * telemetry read from the shared cache directory (one read per
     * updateStatus pass, shared by every campaign's file). */
    void writeStatusJson(
        const ActiveCampaign &c, size_t claimed,
        const std::vector<obs::WorkerTelemetry> &fleet) const
        REQUIRES(mutex);
};

} // namespace mprobe

#endif // SERVICE_SERVICE_HH
