/**
 * @file
 * Bump allocator for per-simulation scratch state.
 *
 * One core simulation needs a handful of short-lived arrays
 * (per-slot scoreboard, per-stream cursors, per-thread state) whose
 * sizes depend on the program. Allocating them from the heap on
 * every simulation dominates the allocator profile of a cold
 * campaign; a SimArena instead hands out pointers from retained
 * chunks and recycles the whole lot with a cursor reset between
 * jobs, so steady-state simulation performs no heap traffic at all.
 *
 * Allocations are uninitialized (callers fill their arrays anyway)
 * and never individually freed; only trivially destructible types
 * are allowed. Pointers stay valid until the next reset() — growth
 * appends new chunks and never moves existing ones.
 */

#ifndef SIM_ARENA_HH
#define SIM_ARENA_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace mprobe
{

/** Chunked bump allocator; reset() recycles all memory at once. */
class SimArena
{
  public:
    /**
     * Allocate an uninitialized array of @p n elements. Alignment
     * follows the element type; the memory lives until reset().
     */
    template <typename T>
    T *
    alloc(size_t n)
    {
        static_assert(std::is_trivially_destructible<T>::value,
                      "arena memory is never destructed");
        return static_cast<T *>(
            allocBytes(n * sizeof(T), alignof(T)));
    }

    /** Recycle every allocation; chunk memory is retained. */
    void
    reset()
    {
        for (Chunk &c : chunks)
            c.used = 0;
        cur = 0;
    }

    /** Bytes currently owned across all chunks (tests/stats). */
    size_t
    capacityBytes() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks)
            total += c.size;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> mem;
        size_t size = 0;
        size_t used = 0;
    };

    static constexpr size_t kMinChunkBytes = 64 * 1024;

    void *
    allocBytes(size_t bytes, size_t align)
    {
        while (cur < chunks.size()) {
            Chunk &c = chunks[cur];
            size_t at = (c.used + align - 1) & ~(align - 1);
            if (at + bytes <= c.size) {
                c.used = at + bytes;
                return c.mem.get() + at;
            }
            ++cur;
        }
        // operator new[] memory is max-aligned, so a fresh chunk
        // satisfies any fundamental alignment from offset 0.
        Chunk c;
        c.size = bytes + align > kMinChunkBytes ? bytes + align
                                                : kMinChunkBytes;
        c.mem.reset(new unsigned char[c.size]);
        c.used = bytes;
        chunks.push_back(std::move(c));
        cur = chunks.size() - 1;
        return chunks.back().mem.get();
    }

    std::vector<Chunk> chunks;
    size_t cur = 0;
};

} // namespace mprobe

#endif // SIM_ARENA_HH
