/**
 * @file
 * Cache hierarchy implementation.
 */

#include "sim/cache.hh"

#include "util/logging.hh"

namespace mprobe
{

namespace
{

int
log2i(uint64_t v)
{
    int s = 0;
    while ((1ull << s) < v)
        ++s;
    if ((1ull << s) != v)
        panic(cat("value ", v, " is not a power of two"));
    return s;
}

} // namespace

CacheLevel::CacheLevel(const CacheGeometry &g) : geom(g)
{
    if (geom.sizeBytes == 0 || geom.assoc <= 0 ||
        geom.lineBytes <= 0)
        fatal("cache level with zero geometry");
    numSets = geom.sets();
    if (numSets == 0 ||
        numSets * geom.assoc * geom.lineBytes != geom.sizeBytes)
        fatal(cat("inconsistent cache geometry: size ",
                  geom.sizeBytes, " assoc ", geom.assoc, " line ",
                  geom.lineBytes));
    lineShift = log2i(static_cast<uint64_t>(geom.lineBytes));
    log2i(numSets); // validate power of two
    tags.assign(numSets * geom.assoc, 0);
    valid.assign(numSets * geom.assoc, 0);
    lruTick.assign(numSets * geom.assoc, 0);
}

uint64_t
CacheLevel::setIndex(uint64_t addr) const
{
    return (addr >> lineShift) & (numSets - 1);
}

bool
CacheLevel::probe(uint64_t addr) const
{
    uint64_t line = addr >> lineShift;
    uint64_t set = line & (numSets - 1);
    size_t base = set * geom.assoc;
    for (int w = 0; w < geom.assoc; ++w)
        if (valid[base + w] && tags[base + w] == line)
            return true;
    return false;
}

bool
CacheLevel::access(uint64_t addr)
{
    uint64_t line = addr >> lineShift;
    uint64_t set = line & (numSets - 1);
    size_t base = set * geom.assoc;
    ++tick;
    int victim = 0;
    uint64_t oldest = ~0ull;
    for (int w = 0; w < geom.assoc; ++w) {
        size_t i = base + w;
        if (valid[i] && tags[i] == line) {
            lruTick[i] = tick;
            return true;
        }
        if (!valid[i]) {
            // Prefer an invalid way as the victim.
            if (oldest != 0) {
                oldest = 0;
                victim = w;
            }
        } else if (lruTick[i] < oldest) {
            oldest = lruTick[i];
            victim = w;
        }
    }
    size_t vi = base + victim;
    tags[vi] = line;
    valid[vi] = 1;
    lruTick[vi] = tick;
    return false;
}

void
CacheLevel::reset()
{
    // Clearing the valid bits is enough: an invalid way's lruTick
    // is never read (the victim scan prefers invalid ways through
    // the oldest==0 sentinel, and a valid way's tick is always
    // >= 1), and it is overwritten on the fill that revalidates
    // the way. Skipping the lruTick refill makes reuse of a
    // retained hierarchy between batched jobs an order of
    // magnitude cheaper than reconstruction.
    std::fill(valid.begin(), valid.end(), 0);
    tick = 0;
}

std::vector<CacheGeometry>
CacheHierarchy::p7Geometry()
{
    return {
        {32 * 1024, 8, 128},        // L1D
        {256 * 1024, 8, 128},       // L2
        {4 * 1024 * 1024, 8, 128},  // local L3 slice
    };
}

CacheHierarchy::CacheHierarchy(
    const std::vector<CacheGeometry> &geoms, bool enable_prefetch)
    : prefetchEnabled(enable_prefetch)
{
    if (geoms.size() != 3)
        fatal(cat("CacheHierarchy needs 3 levels, got ",
                  geoms.size()));
    for (const auto &g : geoms)
        levels.emplace_back(g);
    lineBytes = geoms[0].lineBytes;
    for (const auto &g : geoms)
        if (g.lineBytes != lineBytes)
            fatal("all cache levels must share one line size");
}

HitLevel
CacheHierarchy::access(uint64_t addr)
{
    HitLevel served = HitLevel::Mem;
    // Inclusive: look up and fill every level top-down; the first
    // hitting level serves the access.
    for (size_t i = 0; i < levels.size(); ++i) {
        if (levels[i].access(addr) &&
            served == HitLevel::Mem) {
            served = static_cast<HitLevel>(i);
        }
    }

    if (prefetchEnabled) {
        // Next-line stream prefetcher: once two consecutive lines
        // are touched, keep pulling the following line into the
        // whole hierarchy. Tracking all accesses (not only misses)
        // lets an established stream stay ahead of the demand.
        uint64_t line = addr / static_cast<uint64_t>(lineBytes);
        if (lastLine + 1 == line) {
            uint64_t pf = (line + 1) *
                          static_cast<uint64_t>(lineBytes);
            for (auto &lvl : levels)
                lvl.access(pf);
            ++prefetches;
        }
        lastLine = line;
    }
    return served;
}

void
CacheHierarchy::reset()
{
    for (auto &lvl : levels)
        lvl.reset();
    lastLine = ~0ull;
    prefetches = 0;
}

const CacheLevel &
CacheHierarchy::level(int idx) const
{
    if (idx < 0 || static_cast<size_t>(idx) >= levels.size())
        panic(cat("bad cache level ", idx));
    return levels[static_cast<size_t>(idx)];
}

CacheLevel &
CacheHierarchy::level(int idx)
{
    if (idx < 0 || static_cast<size_t>(idx) >= levels.size())
        panic(cat("bad cache level ", idx));
    return levels[static_cast<size_t>(idx)];
}

} // namespace mprobe
