/**
 * @file
 * Set-associative cache hierarchy simulator.
 *
 * Models the private per-core slice of the POWER7-like hierarchy: a
 * 32 KB L1, 256 KB L2 and 4 MB local L3, all 8-way with 128 B lines,
 * with true LRU replacement and an optional next-line prefetcher
 * (the paper's analytical model randomizes request order precisely
 * "to minimize the interferences of the hardware pre-fetchers").
 */

#ifndef SIM_CACHE_HH
#define SIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace mprobe
{

/** Where an access was served from. */
enum class HitLevel : int
{
    L1 = 0,
    L2 = 1,
    L3 = 2,
    Mem = 3
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    uint64_t sizeBytes = 0;
    int assoc = 0;
    int lineBytes = 128;

    /** Number of sets. */
    uint64_t
    sets() const
    {
        return sizeBytes /
               (static_cast<uint64_t>(assoc) * lineBytes);
    }
};

/** One level of the hierarchy with true-LRU set-associative arrays. */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheGeometry &geom);

    /** True when the line containing @p addr is resident (no fill). */
    bool probe(uint64_t addr) const;

    /**
     * Look up the line containing @p addr; fills it on a miss,
     * updating LRU state either way. @return true on hit.
     */
    bool access(uint64_t addr);

    /** Invalidate everything (between benchmark deployments). */
    void reset();

    /** Set index for an address (exposed for the Figure-3 bench). */
    uint64_t setIndex(uint64_t addr) const;

    const CacheGeometry &geometry() const { return geom; }

  private:
    CacheGeometry geom;
    uint64_t numSets;
    int lineShift;
    std::vector<uint64_t> tags;    //!< numSets * assoc entries
    std::vector<uint8_t> valid;
    std::vector<uint64_t> lruTick;
    uint64_t tick = 0;
};

/** Three-level private hierarchy with an optional L1 prefetcher. */
class CacheHierarchy
{
  public:
    /**
     * Build with the given geometries (index 0 = L1). Exactly three
     * levels are required.
     */
    explicit CacheHierarchy(const std::vector<CacheGeometry> &geoms,
                            bool enable_prefetch = true);

    /** Default POWER7-like geometry (32K/256K/4M, 8-way, 128 B). */
    static std::vector<CacheGeometry> p7Geometry();

    /**
     * Perform one demand access; fills every level on the way
     * (inclusive hierarchy) and runs the next-line prefetcher.
     * @return the level that served the access.
     */
    HitLevel access(uint64_t addr);

    /** Invalidate all levels and prefetcher state. */
    void reset();

    /** Level object (0..2) for probing in tests and benches. */
    const CacheLevel &level(int idx) const;
    CacheLevel &level(int idx);

    /** Number of prefetch fills issued so far. */
    uint64_t prefetchFills() const { return prefetches; }

  private:
    std::vector<CacheLevel> levels;
    bool prefetchEnabled;
    uint64_t lastLine = ~0ull;
    uint64_t prefetches = 0;
    int lineBytes;
};

} // namespace mprobe

#endif // SIM_CACHE_HH
