/**
 * @file
 * SMT core simulation loop.
 */

#include "sim/core.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mprobe
{

namespace
{

constexpr double kEps = 1e-9;

/** Extra energy per access served beyond the L1 (ground truth). */
constexpr double kCacheEnergyNj[4] = {0.0, 1.1, 3.0, 7.5};

/** Hard cap so a malformed program cannot hang the simulator. */
constexpr double kMaxCycles = 200e6;

struct ThreadState
{
    const Program *prog = nullptr;
    size_t pc = 0;
    long iter = 0;
    int lastUnit = -1;
    double lastEnergyNj = 0.0;
    double blockUntil = 0.0;
    double mispredictDebt = 0.0;
    std::vector<double> readyAt;    // per body slot
    std::vector<size_t> cursors;    // per stream
};

/** Address transform giving each hardware thread disjoint lines. */
inline uint64_t
threadAddr(uint64_t addr, int tid)
{
    return addr + (static_cast<uint64_t>(tid) << 10) +
           (static_cast<uint64_t>(tid) << 40);
}

} // namespace

CoreResult
simulateCoreHetero(const ExecModel &exec,
                   const std::vector<const Program *> &thread_progs,
                   const CoreSimOptions &opts)
{
    const int threads = static_cast<int>(thread_progs.size());
    if (threads != 1 && threads != 2 && threads != 4)
        fatal(cat("simulateCore: bad SMT thread count ", threads));
    const Isa *isa = nullptr;
    for (const Program *p : thread_progs) {
        if (!p || p->body.empty())
            fatal("simulateCore: empty program");
        if (!p->isa)
            panic("simulateCore: program without ISA");
        if (isa && p->isa != isa)
            fatal("simulateCore: heterogeneous deployment must "
                  "share one ISA");
        isa = p->isa;
    }

    const int lat_mem = opts.memLatency;

    CacheHierarchy cache(opts.cacheGeoms.empty()
                             ? CacheHierarchy::p7Geometry()
                             : opts.cacheGeoms,
                         opts.prefetch);

    std::vector<ThreadState> ts(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
        ThreadState &t = ts[static_cast<size_t>(i)];
        t.prog = thread_progs[static_cast<size_t>(i)];
        t.readyAt.assign(t.prog->body.size(), 0.0);
        t.cursors.assign(t.prog->streams.size(), 0);
    }

    // Per-unit pipe tokens: nextFree time per pipe.
    std::vector<double> pipe[kNumUnits];
    for (int u = 0; u < kNumUnits; ++u)
        pipe[u].assign(
            static_cast<size_t>(ExecModel::pipes(
                static_cast<Unit>(u))),
            -1.0);

    RunCounters live;        // running totals since t=0
    RunCounters snapshot;    // totals at end of warm-up
    double snapshot_time = 0.0;
    bool measuring = false;

    const long warm = opts.warmupIters;
    const long target = warm + opts.measureIters;

    double now = 0.0;
    uint64_t cycle_count = 0;

    auto allReached = [&](long it) {
        for (const auto &t : ts)
            if (t.iter < it)
                return false;
        return true;
    };

    for (;;) {
        int dispatch_left = ExecModel::dispatchWidth;
        uint32_t issued_units = 0;
        bool any_issued = false;
        double min_blocker = 1e300;

        int start = static_cast<int>(cycle_count %
                                     static_cast<uint64_t>(threads));
        for (int k = 0; k < threads && dispatch_left > 0; ++k) {
            int tid = (start + k) % threads;
            ThreadState &t = ts[static_cast<size_t>(tid)];
            const Program &prog = *t.prog;
            const size_t n = prog.body.size();
            while (dispatch_left > 0) {
                if (t.blockUntil > now + kEps) {
                    min_blocker = std::min(min_blocker, t.blockUntil);
                    break;
                }
                const ProgInst &pi = prog.body[t.pc];
                const ExecInfo &ei = exec.info(pi.op);

                if (pi.depDist > 0) {
                    size_t src =
                        (t.pc + n -
                         static_cast<size_t>(pi.depDist) % n) % n;
                    if (t.readyAt[src] > now + kEps) {
                        min_blocker =
                            std::min(min_blocker, t.readyAt[src]);
                        break;
                    }
                }

                // Pick an execution unit with enough free pipes.
                int chosen = -1;
                for (int u = 0; u < kNumUnits; ++u) {
                    if (!ei.allows(static_cast<Unit>(u)))
                        continue;
                    int free_pipes = 0;
                    for (double nf : pipe[u])
                        if (nf <= now + kEps)
                            ++free_pipes;
                    if (free_pipes >= ei.pipesNeeded) {
                        chosen = u;
                        break;
                    }
                }
                if (chosen < 0) {
                    // Structural stall: track the earliest pipe on
                    // any allowed unit.
                    for (int u = 0; u < kNumUnits; ++u) {
                        if (!ei.allows(static_cast<Unit>(u)))
                            continue;
                        for (double nf : pipe[u])
                            min_blocker = std::min(min_blocker, nf);
                    }
                    break;
                }

                // Occupy the pipes (token scheme preserves
                // fractional issue intervals under an integer clock).
                double ii = ei.issueInterval;
                if (chosen == static_cast<int>(Unit::LSU) &&
                    !ei.isMem) {
                    // Simple integer ops borrow LSU address-gen
                    // slots at reduced bandwidth.
                    ii = 4.0 / 3.0;
                }
                int occupied = 0;
                for (double &nf : pipe[chosen]) {
                    if (occupied == ei.pipesNeeded)
                        break;
                    if (nf <= now + kEps) {
                        nf = std::max(nf, now - 1.0 + kEps) + ii;
                        ++occupied;
                    }
                }

                // Execute.
                double lat = ei.latency;
                if (ei.isMem) {
                    HitLevel lvl = HitLevel::L1;
                    if (pi.stream >= 0) {
                        MemStream const &ms = prog.streams[
                            static_cast<size_t>(pi.stream)];
                        size_t &cur = t.cursors[
                            static_cast<size_t>(pi.stream)];
                        uint64_t addr = threadAddr(
                            ms.lines[cur % ms.lines.size()], tid);
                        cur = (cur + 1) % ms.lines.size();
                        lvl = cache.access(addr);
                    }
                    int l = static_cast<int>(lvl);
                    switch (lvl) {
                      case HitLevel::L1: live.l1Hits += 1; break;
                      case HitLevel::L2: live.l2Hits += 1; break;
                      case HitLevel::L3: live.l3Hits += 1; break;
                      case HitLevel::Mem: live.memAcc += 1; break;
                    }
                    double mem_lat =
                        l < 3 ? ExecModel::loadToUse[l] : lat_mem;
                    if (ei.isStore) {
                        lat = 1.0;
                        // Store-queue back-pressure: deep misses
                        // hold the pipe longer.
                        pipe[chosen][0] += mem_lat * 0.125;
                    } else {
                        lat = mem_lat;
                    }
                    live.energyNj += kCacheEnergyNj[l];
                }
                t.readyAt[t.pc] = now + lat;

                // Secondary micro-ops (address update / sign
                // extension on the FXU; store data steering on the
                // VSU). Best effort: they consume bandwidth but do
                // not gate issue.
                int fxu = static_cast<int>(Unit::FXU);
                for (int xo = 0; xo < ei.extraFxuOps; ++xo) {
                    auto it = std::min_element(pipe[fxu].begin(),
                                               pipe[fxu].end());
                    *it = std::max(*it, now - 1.0 + kEps) + 1.0;
                    live.fxuOps += 1;
                }
                if (ei.usesVsuSteering) {
                    int vsu = static_cast<int>(Unit::VSU);
                    auto it = std::min_element(pipe[vsu].begin(),
                                               pipe[vsu].end());
                    *it = std::max(*it, now - 1.0 + kEps) + 1.0;
                    live.vsuOps += 1;
                }

                // Counters.
                live.instrs += 1;
                switch (static_cast<Unit>(chosen)) {
                  case Unit::FXU: live.fxuOps += 1; break;
                  case Unit::LSU: live.lsuOps += 1; break;
                  case Unit::VSU: live.vsuOps += 1; break;
                  case Unit::BRU: live.bruOps += 1; break;
                  case Unit::CRU: live.cruOps += 1; break;
                  default: break;
                }
                if (ei.isMem) {
                    if (ei.isStore)
                        live.stores += 1;
                    else
                        live.loads += 1;
                }

                // Data-dependent dynamic energy.
                double act = 1.0 - ei.toggleSens +
                             ei.toggleSens * pi.toggle;
                live.energyNj += ei.energyNj * act;

                if (chosen <= static_cast<int>(Unit::VSU)) {
                    issued_units |= 1u << chosen;
                    if (t.lastUnit >= 0 && t.lastUnit != chosen &&
                        t.lastEnergyNj >= opts.transitionGateNj &&
                        ei.energyNj >= opts.transitionGateNj) {
                        live.energyNj += opts.transitionNjPerInstr;
                        live.transitionNj +=
                            opts.transitionNjPerInstr;
                    }
                    t.lastUnit = chosen;
                    t.lastEnergyNj = ei.energyNj;
                }
                any_issued = true;
                --dispatch_left;

                // Conditional-branch mispredictions (deterministic
                // fractional accounting of the expected penalty).
                const InstrDef &idef = isa->at(pi.op);
                if (idef.isBranch() && pi.takenRate > 0.0f &&
                    pi.takenRate < 1.0f) {
                    double p = pi.takenRate;
                    t.mispredictDebt +=
                        opts.mispredictPenalty * 2.0 * p * (1.0 - p);
                    double whole = std::floor(t.mispredictDebt);
                    if (whole >= 1.0) {
                        t.blockUntil = now + whole;
                        t.mispredictDebt -= whole;
                    }
                }

                // Advance, wrapping at the loop end.
                ++t.pc;
                if (t.pc == n) {
                    t.pc = 0;
                    ++t.iter;
                }
            }
        }

        // Hidden unit-overlap power: cycles in which several
        // different units fire cost extra (simultaneous switching on
        // shared dispatch/bypass resources). This is what makes
        // instruction *order* matter for power (Section 6).
        int u_cnt = __builtin_popcount(issued_units);
        if (u_cnt >= 2) {
            double e = opts.overlapNjPerCycle *
                       std::pow(u_cnt - 1.0, 1.5);
            live.energyNj += e;
            live.overlapNj += e;
        }

        ++cycle_count;
        if (any_issued || min_blocker <= now + 1.0 + kEps) {
            now += 1.0;
        } else if (min_blocker > 1e299) {
            panic(cat("deadlocked simulation in ",
                      thread_progs[0]->name));
        } else {
            now = std::ceil(min_blocker - kEps);
        }

        if (!measuring && allReached(warm)) {
            measuring = true;
            snapshot = live;
            snapshot_time = now;
        }
        if (measuring && allReached(target))
            break;
        if (now > kMaxCycles)
            panic(cat("simulation of ", thread_progs[0]->name,
                      " exceeded cycle cap"));
    }

    CoreResult res;
    res.window = live - snapshot;
    res.window.cycles = now - snapshot_time;
    res.iterations = static_cast<int>(target - warm);
    res.threads = threads;
    return res;
}

CoreResult
simulateCore(const ExecModel &exec, const Program &prog, int threads,
             const CoreSimOptions &opts)
{
    if (threads != 1 && threads != 2 && threads != 4)
        fatal(cat("simulateCore: bad SMT thread count ", threads));
    std::vector<const Program *> progs(
        static_cast<size_t>(threads), &prog);
    return simulateCoreHetero(exec, progs, opts);
}

} // namespace mprobe
