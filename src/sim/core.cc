/**
 * @file
 * SMT core simulation loop.
 */

#include "sim/core.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mprobe
{

namespace
{

constexpr double kEps = 1e-9;

/** Extra energy per access served beyond the L1 (ground truth). */
constexpr double kCacheEnergyNj[4] = {0.0, 1.1, 3.0, 7.5};

/** Hard cap so a malformed program cannot hang the simulator. */
constexpr double kMaxCycles = 200e6;

struct ThreadState
{
    const Program *prog = nullptr;
    size_t pc = 0;
    long iter = 0;
    int lastUnit = -1;
    double lastEnergyNj = 0.0;
    double blockUntil = 0.0;
    double mispredictDebt = 0.0;
    std::vector<double> readyAt;    // per body slot
    std::vector<size_t> cursors;    // per stream
};

/** Address transform giving each hardware thread disjoint lines. */
inline uint64_t
threadAddr(uint64_t addr, int tid)
{
    return addr + (static_cast<uint64_t>(tid) << 10) +
           (static_cast<uint64_t>(tid) << 40);
}

} // namespace

CoreResult
simulateCoreHetero(const ExecModel &exec,
                   const std::vector<const Program *> &thread_progs,
                   const CoreSimOptions &opts)
{
    const int threads = static_cast<int>(thread_progs.size());
    if (threads != 1 && threads != 2 && threads != 4)
        fatal(cat("simulateCore: bad SMT thread count ", threads));
    const Isa *isa = nullptr;
    for (const Program *p : thread_progs) {
        if (!p || p->body.empty())
            fatal("simulateCore: empty program");
        if (!p->isa)
            panic("simulateCore: program without ISA");
        if (isa && p->isa != isa)
            fatal("simulateCore: heterogeneous deployment must "
                  "share one ISA");
        isa = p->isa;
    }

    const int lat_mem = opts.memLatency;

    CacheHierarchy cache(opts.cacheGeoms.empty()
                             ? CacheHierarchy::p7Geometry()
                             : opts.cacheGeoms,
                         opts.prefetch);

    std::vector<ThreadState> ts(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
        ThreadState &t = ts[static_cast<size_t>(i)];
        t.prog = thread_progs[static_cast<size_t>(i)];
        t.readyAt.assign(t.prog->body.size(), 0.0);
        t.cursors.assign(t.prog->streams.size(), 0);
    }

    // Per-unit pipe tokens: nextFree time per pipe.
    std::vector<double> pipe[kNumUnits];
    for (int u = 0; u < kNumUnits; ++u)
        pipe[u].assign(
            static_cast<size_t>(ExecModel::pipes(
                static_cast<Unit>(u))),
            -1.0);

    RunCounters live;        // running totals since t=0
    RunCounters snapshot;    // totals at end of warm-up
    double snapshot_time = 0.0;
    bool measuring = false;

    const long warm = opts.warmupIters;
    const long target = warm + opts.measureIters;

    double now = 0.0;
    uint64_t cycle_count = 0;

    auto allReached = [&](long it) {
        for (const auto &t : ts)
            if (t.iter < it)
                return false;
        return true;
    };

    for (;;) {
        int dispatch_left = ExecModel::dispatchWidth;
        uint32_t issued_units = 0;
        bool any_issued = false;
        double min_blocker = 1e300;

        int start = static_cast<int>(cycle_count %
                                     static_cast<uint64_t>(threads));
        for (int k = 0; k < threads && dispatch_left > 0; ++k) {
            int tid = (start + k) % threads;
            ThreadState &t = ts[static_cast<size_t>(tid)];
            const Program &prog = *t.prog;
            const size_t n = prog.body.size();
            while (dispatch_left > 0) {
                if (t.blockUntil > now + kEps) {
                    min_blocker = std::min(min_blocker, t.blockUntil);
                    break;
                }
                const ProgInst &pi = prog.body[t.pc];
                const ExecInfo &ei = exec.info(pi.op);

                if (pi.depDist > 0) {
                    size_t src =
                        (t.pc + n -
                         static_cast<size_t>(pi.depDist) % n) % n;
                    if (t.readyAt[src] > now + kEps) {
                        min_blocker =
                            std::min(min_blocker, t.readyAt[src]);
                        break;
                    }
                }

                // Pick an execution unit with enough free pipes.
                int chosen = -1;
                for (int u = 0; u < kNumUnits; ++u) {
                    if (!ei.allows(static_cast<Unit>(u)))
                        continue;
                    int free_pipes = 0;
                    for (double nf : pipe[u])
                        if (nf <= now + kEps)
                            ++free_pipes;
                    if (free_pipes >= ei.pipesNeeded) {
                        chosen = u;
                        break;
                    }
                }
                if (chosen < 0) {
                    // Structural stall: track the earliest pipe on
                    // any allowed unit.
                    for (int u = 0; u < kNumUnits; ++u) {
                        if (!ei.allows(static_cast<Unit>(u)))
                            continue;
                        for (double nf : pipe[u])
                            min_blocker = std::min(min_blocker, nf);
                    }
                    break;
                }

                // Occupy the pipes (token scheme preserves
                // fractional issue intervals under an integer clock).
                double ii = ei.issueInterval;
                if (chosen == static_cast<int>(Unit::LSU) &&
                    !ei.isMem) {
                    // Simple integer ops borrow LSU address-gen
                    // slots at reduced bandwidth.
                    ii = 4.0 / 3.0;
                }
                int occupied = 0;
                for (double &nf : pipe[chosen]) {
                    if (occupied == ei.pipesNeeded)
                        break;
                    if (nf <= now + kEps) {
                        nf = std::max(nf, now - 1.0 + kEps) + ii;
                        ++occupied;
                    }
                }

                // Execute.
                double lat = ei.latency;
                if (ei.isMem) {
                    HitLevel lvl = HitLevel::L1;
                    if (pi.stream >= 0) {
                        MemStream const &ms = prog.streams[
                            static_cast<size_t>(pi.stream)];
                        size_t &cur = t.cursors[
                            static_cast<size_t>(pi.stream)];
                        uint64_t addr = threadAddr(
                            ms.lines[cur % ms.lines.size()], tid);
                        cur = (cur + 1) % ms.lines.size();
                        lvl = cache.access(addr);
                    }
                    int l = static_cast<int>(lvl);
                    switch (lvl) {
                      case HitLevel::L1: live.l1Hits += 1; break;
                      case HitLevel::L2: live.l2Hits += 1; break;
                      case HitLevel::L3: live.l3Hits += 1; break;
                      case HitLevel::Mem: live.memAcc += 1; break;
                    }
                    double mem_lat =
                        l < 3 ? ExecModel::loadToUse[l] : lat_mem;
                    if (ei.isStore) {
                        lat = 1.0;
                        // Store-queue back-pressure: deep misses
                        // hold the pipe longer.
                        pipe[chosen][0] += mem_lat * 0.125;
                    } else {
                        lat = mem_lat;
                    }
                    live.energyNj += kCacheEnergyNj[l];
                }
                t.readyAt[t.pc] = now + lat;

                // Secondary micro-ops (address update / sign
                // extension on the FXU; store data steering on the
                // VSU). Best effort: they consume bandwidth but do
                // not gate issue.
                int fxu = static_cast<int>(Unit::FXU);
                for (int xo = 0; xo < ei.extraFxuOps; ++xo) {
                    auto it = std::min_element(pipe[fxu].begin(),
                                               pipe[fxu].end());
                    *it = std::max(*it, now - 1.0 + kEps) + 1.0;
                    live.fxuOps += 1;
                }
                if (ei.usesVsuSteering) {
                    int vsu = static_cast<int>(Unit::VSU);
                    auto it = std::min_element(pipe[vsu].begin(),
                                               pipe[vsu].end());
                    *it = std::max(*it, now - 1.0 + kEps) + 1.0;
                    live.vsuOps += 1;
                }

                // Counters.
                live.instrs += 1;
                switch (static_cast<Unit>(chosen)) {
                  case Unit::FXU: live.fxuOps += 1; break;
                  case Unit::LSU: live.lsuOps += 1; break;
                  case Unit::VSU: live.vsuOps += 1; break;
                  case Unit::BRU: live.bruOps += 1; break;
                  case Unit::CRU: live.cruOps += 1; break;
                  default: break;
                }
                if (ei.isMem) {
                    if (ei.isStore)
                        live.stores += 1;
                    else
                        live.loads += 1;
                }

                // Data-dependent dynamic energy.
                double act = 1.0 - ei.toggleSens +
                             ei.toggleSens * pi.toggle;
                live.energyNj += ei.energyNj * act;

                if (chosen <= static_cast<int>(Unit::VSU)) {
                    issued_units |= 1u << chosen;
                    if (t.lastUnit >= 0 && t.lastUnit != chosen &&
                        t.lastEnergyNj >= opts.transitionGateNj &&
                        ei.energyNj >= opts.transitionGateNj) {
                        live.energyNj += opts.transitionNjPerInstr;
                        live.transitionNj +=
                            opts.transitionNjPerInstr;
                    }
                    t.lastUnit = chosen;
                    t.lastEnergyNj = ei.energyNj;
                }
                any_issued = true;
                --dispatch_left;

                // Conditional-branch mispredictions (deterministic
                // fractional accounting of the expected penalty).
                const InstrDef &idef = isa->at(pi.op);
                if (idef.isBranch() && pi.takenRate > 0.0f &&
                    pi.takenRate < 1.0f) {
                    double p = pi.takenRate;
                    t.mispredictDebt +=
                        opts.mispredictPenalty * 2.0 * p * (1.0 - p);
                    double whole = std::floor(t.mispredictDebt);
                    if (whole >= 1.0) {
                        t.blockUntil = now + whole;
                        t.mispredictDebt -= whole;
                    }
                }

                // Advance, wrapping at the loop end.
                ++t.pc;
                if (t.pc == n) {
                    t.pc = 0;
                    ++t.iter;
                }
            }
        }

        // Hidden unit-overlap power: cycles in which several
        // different units fire cost extra (simultaneous switching on
        // shared dispatch/bypass resources). This is what makes
        // instruction *order* matter for power (Section 6).
        int u_cnt = __builtin_popcount(issued_units);
        if (u_cnt >= 2) {
            double e = opts.overlapNjPerCycle *
                       std::pow(u_cnt - 1.0, 1.5);
            live.energyNj += e;
            live.overlapNj += e;
        }

        ++cycle_count;
        if (any_issued || min_blocker <= now + 1.0 + kEps) {
            now += 1.0;
        } else if (min_blocker > 1e299) {
            panic(cat("deadlocked simulation in ",
                      thread_progs[0]->name));
        } else {
            now = std::ceil(min_blocker - kEps);
        }

        if (!measuring && allReached(warm)) {
            measuring = true;
            snapshot = live;
            snapshot_time = now;
        }
        if (measuring && allReached(target))
            break;
        if (now > kMaxCycles)
            panic(cat("simulation of ", thread_progs[0]->name,
                      " exceeded cycle cap"));
    }

    CoreResult res;
    res.window = live - snapshot;
    res.window.cycles = now - snapshot_time;
    res.iterations = static_cast<int>(target - warm);
    res.threads = threads;
    return res;
}

CoreResult
simulateCore(const ExecModel &exec, const Program &prog, int threads,
             const CoreSimOptions &opts)
{
    if (threads != 1 && threads != 2 && threads != 4)
        fatal(cat("simulateCore: bad SMT thread count ", threads));
    std::vector<const Program *> progs(
        static_cast<size_t>(threads), &prog);
    return simulateCoreHetero(exec, progs, opts);
}

CacheHierarchy &
SimScratch::cache(const std::vector<CacheGeometry> &geoms,
                  bool prefetch)
{
    bool same = hier && hierPrefetch == prefetch &&
                hierGeoms.size() == geoms.size();
    if (same) {
        for (size_t i = 0; i < geoms.size(); ++i)
            if (hierGeoms[i].sizeBytes != geoms[i].sizeBytes ||
                hierGeoms[i].assoc != geoms[i].assoc ||
                hierGeoms[i].lineBytes != geoms[i].lineBytes) {
                same = false;
                break;
            }
    }
    if (!same) {
        hier.reset(new CacheHierarchy(geoms, prefetch));
        hierGeoms = geoms;
        hierPrefetch = prefetch;
    } else {
        hier->reset();
    }
    return *hier;
}

namespace
{

/** Per-thread state of the decoded simulator (arena-backed). */
struct DecodedThread
{
    size_t pc = 0;
    long iter = 0;
    int lastUnit = -1;
    bool lastHigh = false;
    double blockUntil = 0.0;
    double mispredictDebt = 0.0;
    double *readyAt = nullptr;    // per body slot
    uint32_t *cursors = nullptr;  // per stream
};

} // namespace

CoreResult
simulateCoreDecoded(const DecodedProgram &dec, int threads,
                    const CoreSimOptions &opts, SimScratch &scratch)
{
    if (threads != 1 && threads != 2 && threads != 4)
        fatal(cat("simulateCore: bad SMT thread count ", threads));
    if (dec.bodySize == 0)
        fatal("simulateCore: empty program");
    if (opts.mispredictPenalty != dec.mispredictPenalty ||
        opts.transitionGateNj != dec.transitionGateNj)
        panic(cat("simulateCoreDecoded: options drifted from the "
                  "decode of ",
                  dec.name));

    const int lat_mem = opts.memLatency;
    CacheHierarchy &cache =
        opts.cacheGeoms.empty()
            ? scratch.cache(CacheHierarchy::p7Geometry(),
                            opts.prefetch)
            : scratch.cache(opts.cacheGeoms, opts.prefetch);

    scratch.arena.reset();
    const size_t n = dec.bodySize;
    const size_t n_streams = dec.streamLen.size();
    DecodedThread ts[4];
    for (int i = 0; i < threads; ++i) {
        DecodedThread &t = ts[i];
        t = DecodedThread();
        t.lastHigh = 0.0 >= dec.transitionGateNj;
        t.readyAt = scratch.arena.alloc<double>(n);
        std::fill(t.readyAt, t.readyAt + n, 0.0);
        t.cursors = scratch.arena.alloc<uint32_t>(n_streams);
        std::fill(t.cursors, t.cursors + n_streams, 0u);
    }

    // Flattened per-unit pipe tokens; offsets/counts mirror
    // ExecModel::pipes (FXU 2, LSU 2, VSU 4, BRU 1, CRU 1).
    constexpr int off[kNumUnits] = {0, 2, 4, 8, 9};
    constexpr int cnt[kNumUnits] = {2, 2, 4, 1, 1};
    double pipes[10];
    for (double &nf : pipes)
        nf = -1.0;

    const int32_t *dep_src = dec.depSrc.data();
    const int32_t *stream_id = dec.stream.data();
    const int8_t *unit_first = dec.unitFirst.data();
    const int8_t *unit_second = dec.unitSecond.data();
    const int8_t *pipes_needed = dec.pipesNeeded.data();
    const int8_t *extra_fxu = dec.extraFxuOps.data();
    const uint8_t *flags = dec.flags.data();
    const uint8_t *high_energy = dec.highEnergy.data();
    const double *issue_interval = dec.issueInterval.data();
    const double *latency = dec.latency.data();
    const double *act_energy = dec.actEnergyNj.data();
    const double *mispredict_inc = dec.mispredictInc.data();
    const uint64_t *stream_lines = dec.streamLines.data();
    const uint32_t *stream_off = dec.streamOffset.data();
    const uint32_t *stream_len = dec.streamLen.data();

    RunCounters live;
    RunCounters snapshot;
    double snapshot_time = 0.0;
    bool measuring = false;

    const long warm = opts.warmupIters;
    const long target = warm + opts.measureIters;

    double now = 0.0;
    uint64_t cycle_count = 0;

    auto allReached = [&](long it) {
        for (int i = 0; i < threads; ++i)
            if (ts[i].iter < it)
                return false;
        return true;
    };

    for (;;) {
        int dispatch_left = ExecModel::dispatchWidth;
        uint32_t issued_units = 0;
        bool any_issued = false;
        double min_blocker = 1e300;

        int start = static_cast<int>(cycle_count %
                                     static_cast<uint64_t>(threads));
        for (int k = 0; k < threads && dispatch_left > 0; ++k) {
            int tid = (start + k) % threads;
            DecodedThread &t = ts[tid];
            while (dispatch_left > 0) {
                if (t.blockUntil > now + kEps) {
                    min_blocker = std::min(min_blocker, t.blockUntil);
                    break;
                }
                const size_t pc = t.pc;

                int32_t src = dep_src[pc];
                if (src >= 0 && t.readyAt[src] > now + kEps) {
                    min_blocker =
                        std::min(min_blocker, t.readyAt[src]);
                    break;
                }

                // Pick an execution unit with enough free pipes
                // (ascending unit order, as in the reference scan).
                const int need = pipes_needed[pc];
                const int u0 = unit_first[pc];
                const int u1 = unit_second[pc];
                int chosen = -1;
                {
                    const double *p = pipes + off[u0];
                    int free_pipes = 0;
                    for (int w = 0; w < cnt[u0]; ++w)
                        if (p[w] <= now + kEps)
                            ++free_pipes;
                    if (free_pipes >= need)
                        chosen = u0;
                }
                if (chosen < 0 && u1 >= 0) {
                    const double *p = pipes + off[u1];
                    int free_pipes = 0;
                    for (int w = 0; w < cnt[u1]; ++w)
                        if (p[w] <= now + kEps)
                            ++free_pipes;
                    if (free_pipes >= need)
                        chosen = u1;
                }
                if (chosen < 0) {
                    // Structural stall: track the earliest pipe on
                    // any allowed unit.
                    for (int w = 0; w < cnt[u0]; ++w)
                        min_blocker = std::min(min_blocker,
                                               pipes[off[u0] + w]);
                    if (u1 >= 0)
                        for (int w = 0; w < cnt[u1]; ++w)
                            min_blocker =
                                std::min(min_blocker,
                                         pipes[off[u1] + w]);
                    break;
                }

                // Occupy the pipes (token scheme preserves
                // fractional issue intervals under an integer clock).
                const uint8_t fl = flags[pc];
                double ii = issue_interval[pc];
                if (chosen == static_cast<int>(Unit::LSU) &&
                    !(fl & DecodedProgram::kMem)) {
                    // Simple integer ops borrow LSU address-gen
                    // slots at reduced bandwidth.
                    ii = 4.0 / 3.0;
                }
                double *cp = pipes + off[chosen];
                int occupied = 0;
                for (int w = 0; w < cnt[chosen]; ++w) {
                    if (occupied == need)
                        break;
                    if (cp[w] <= now + kEps) {
                        cp[w] =
                            std::max(cp[w], now - 1.0 + kEps) + ii;
                        ++occupied;
                    }
                }

                // Execute.
                double lat = latency[pc];
                if (fl & DecodedProgram::kMem) {
                    int l = 0;
                    const int32_t sid = stream_id[pc];
                    if (sid >= 0) {
                        const uint32_t len = stream_len[sid];
                        uint32_t &cur = t.cursors[sid];
                        uint64_t addr = threadAddr(
                            stream_lines[stream_off[sid] +
                                         cur % len],
                            tid);
                        cur = (cur + 1) % len;
                        l = static_cast<int>(cache.access(addr));
                    }
                    switch (l) {
                      case 0: live.l1Hits += 1; break;
                      case 1: live.l2Hits += 1; break;
                      case 2: live.l3Hits += 1; break;
                      default: live.memAcc += 1; break;
                    }
                    double mem_lat =
                        l < 3 ? ExecModel::loadToUse[l] : lat_mem;
                    if (fl & DecodedProgram::kStore) {
                        lat = 1.0;
                        // Store-queue back-pressure: deep misses
                        // hold the pipe longer.
                        cp[0] += mem_lat * 0.125;
                    } else {
                        lat = mem_lat;
                    }
                    live.energyNj += kCacheEnergyNj[l];
                }
                t.readyAt[pc] = now + lat;

                // Secondary micro-ops (see simulateCoreHetero).
                for (int xo = 0; xo < extra_fxu[pc]; ++xo) {
                    double *fp =
                        pipes + off[static_cast<int>(Unit::FXU)];
                    int best = 0;
                    for (int w = 1;
                         w < cnt[static_cast<int>(Unit::FXU)]; ++w)
                        if (fp[w] < fp[best])
                            best = w;
                    fp[best] =
                        std::max(fp[best], now - 1.0 + kEps) + 1.0;
                    live.fxuOps += 1;
                }
                if (fl & DecodedProgram::kVsuSteer) {
                    double *vp =
                        pipes + off[static_cast<int>(Unit::VSU)];
                    int best = 0;
                    for (int w = 1;
                         w < cnt[static_cast<int>(Unit::VSU)]; ++w)
                        if (vp[w] < vp[best])
                            best = w;
                    vp[best] =
                        std::max(vp[best], now - 1.0 + kEps) + 1.0;
                    live.vsuOps += 1;
                }

                // Counters.
                live.instrs += 1;
                switch (static_cast<Unit>(chosen)) {
                  case Unit::FXU: live.fxuOps += 1; break;
                  case Unit::LSU: live.lsuOps += 1; break;
                  case Unit::VSU: live.vsuOps += 1; break;
                  case Unit::BRU: live.bruOps += 1; break;
                  case Unit::CRU: live.cruOps += 1; break;
                  default: break;
                }
                if (fl & DecodedProgram::kMem) {
                    if (fl & DecodedProgram::kStore)
                        live.stores += 1;
                    else
                        live.loads += 1;
                }

                // Data-dependent dynamic energy (pre-multiplied at
                // decode).
                live.energyNj += act_energy[pc];

                if (chosen <= static_cast<int>(Unit::VSU)) {
                    issued_units |= 1u << chosen;
                    if (t.lastUnit >= 0 && t.lastUnit != chosen &&
                        t.lastHigh && high_energy[pc]) {
                        live.energyNj += opts.transitionNjPerInstr;
                        live.transitionNj +=
                            opts.transitionNjPerInstr;
                    }
                    t.lastUnit = chosen;
                    t.lastHigh = high_energy[pc];
                }
                any_issued = true;
                --dispatch_left;

                // Conditional-branch mispredictions (deterministic
                // fractional accounting of the expected penalty).
                if (fl & DecodedProgram::kCondBranch) {
                    t.mispredictDebt += mispredict_inc[pc];
                    double whole = std::floor(t.mispredictDebt);
                    if (whole >= 1.0) {
                        t.blockUntil = now + whole;
                        t.mispredictDebt -= whole;
                    }
                }

                // Advance, wrapping at the loop end.
                ++t.pc;
                if (t.pc == n) {
                    t.pc = 0;
                    ++t.iter;
                }
            }
        }

        // Hidden unit-overlap power (see simulateCoreHetero).
        int u_cnt = __builtin_popcount(issued_units);
        if (u_cnt >= 2) {
            double e = opts.overlapNjPerCycle *
                       std::pow(u_cnt - 1.0, 1.5);
            live.energyNj += e;
            live.overlapNj += e;
        }

        ++cycle_count;
        if (any_issued || min_blocker <= now + 1.0 + kEps) {
            now += 1.0;
        } else if (min_blocker > 1e299) {
            panic(cat("deadlocked simulation in ", dec.name));
        } else {
            now = std::ceil(min_blocker - kEps);
        }

        if (!measuring && allReached(warm)) {
            measuring = true;
            snapshot = live;
            snapshot_time = now;
        }
        if (measuring && allReached(target))
            break;
        if (now > kMaxCycles)
            panic(cat("simulation of ", dec.name,
                      " exceeded cycle cap"));
    }

    CoreResult res;
    res.window = live - snapshot;
    res.window.cycles = now - snapshot_time;
    res.iterations = static_cast<int>(target - warm);
    res.threads = threads;
    return res;
}

} // namespace mprobe
