/**
 * @file
 * Cycle-level SMT core model.
 *
 * An in-order, multi-issue core: up to dispatchWidth instructions
 * issue per cycle across the active hardware threads, constrained by
 * register dependencies (scoreboard), functional-unit pipe
 * availability (fractional issue intervals via a token scheme), and
 * the cache hierarchy for memory operations. All SMT threads of the
 * paper's deployments run the same micro-benchmark, one copy pinned
 * per hardware thread, so the core executes nThreads copies of one
 * Program against a shared cache hierarchy.
 *
 * Because every micro-benchmark is an endless loop, the core reaches
 * a periodic steady state; the simulator warms up for a few
 * iterations and then measures a window of whole iterations, which is
 * what a 10-second wall-clock measurement of the real machine
 * observes (Section 3).
 */

#ifndef SIM_CORE_HH
#define SIM_CORE_HH

#include <memory>

#include "sim/arena.hh"
#include "sim/cache.hh"
#include "sim/counters.hh"
#include "sim/exec_model.hh"
#include "sim/program.hh"

namespace mprobe
{

/** Steady-state result of running a program on one core. */
struct CoreResult
{
    /** Counter deltas over the measurement window (all threads). */
    RunCounters window;
    /** Loop iterations measured per thread. */
    int iterations = 0;
    /** Hardware threads that ran. */
    int threads = 0;
};

/** Tunable knobs of a core simulation. */
struct CoreSimOptions
{
    /** Main-memory latency in cycles (contention-adjusted). */
    int memLatency = ExecModel::memLatencyBase;
    /** Cache geometries (L1, L2, L3); empty selects the default
     * POWER7-like hierarchy. */
    std::vector<CacheGeometry> cacheGeoms;
    /** Warm-up loop iterations per thread before measuring. */
    int warmupIters = 3;
    /** Measured loop iterations per thread. */
    int measureIters = 6;
    /** Enable the next-line hardware prefetcher. */
    bool prefetch = true;
    /** Mispredict penalty in cycles for conditional branches. */
    int mispredictPenalty = 12;
    /** Per-cycle unit-overlap energy coefficient (nJ), hidden. */
    double overlapNjPerCycle = 0.30;
    /** Per-instruction unit-transition energy (nJ), hidden: the
     * bypass network toggles when consecutive instructions of a
     * thread execute on different units. Only *high-energy* pairs
     * (both above transitionGateNj) pay it — wide operands through
     * long cross-unit bypass wires — which is why instruction
     * order matters most for stressmark-class code built from the
     * hottest instructions (Section 6's 17% spread) while ordinary
     * mixed workloads barely expose it. */
    double transitionNjPerInstr = 0.85;
    /** Both instructions of a transition must exceed this energy
     * for the transition cost to apply (hidden). */
    double transitionGateNj = 1.60;
};

/**
 * Simulate @p threads copies of @p prog on one core.
 *
 * @param exec ground-truth timing/energy tables for prog's ISA
 * @param prog the micro-benchmark loop
 * @param threads SMT ways running copies (1, 2 or 4)
 * @param opts simulation knobs
 */
CoreResult simulateCore(const ExecModel &exec, const Program &prog,
                        int threads,
                        const CoreSimOptions &opts = CoreSimOptions());

/**
 * Simulate a *heterogeneous* SMT deployment: one (possibly
 * different) program per hardware thread — the multi-threaded
 * stressmark exploration the paper leaves as future work (Section
 * 6, after Ganesan et al.'s MAMPO). All programs must share one
 * ISA; 1, 2 or 4 threads.
 */
CoreResult simulateCoreHetero(
    const ExecModel &exec,
    const std::vector<const Program *> &thread_progs,
    const CoreSimOptions &opts = CoreSimOptions());

/**
 * Reusable per-thread scratch state of the decoded simulator: the
 * bump arena behind all per-simulation arrays and a retained cache
 * hierarchy that is reset (not reconstructed) between simulations
 * sharing one geometry. One SimScratch must not be used from two
 * threads at once; campaign workers and Machine::run keep one per
 * thread.
 */
class SimScratch
{
  public:
    /**
     * The retained hierarchy for (@p geoms, @p prefetch), reset
     * and ready for a fresh simulation. A geometry change rebuilds
     * it; the steady state of a campaign (one machine, one
     * geometry) never does.
     */
    CacheHierarchy &cache(const std::vector<CacheGeometry> &geoms,
                          bool prefetch);

    /** Arena for the per-simulation arrays. */
    SimArena arena;

  private:
    std::unique_ptr<CacheHierarchy> hier;
    std::vector<CacheGeometry> hierGeoms;
    bool hierPrefetch = true;
};

/**
 * Simulate @p threads copies of a decoded program on one core:
 * the batched-evaluation twin of simulateCore. Bit-identical to
 * simulateCore on the program the decode came from — same cycle
 * walk, same counter arithmetic in the same order — while touching
 * no ExecModel, Isa or heap state in its inner loop. @p opts must
 * carry the same mispredict penalty and transition gate the decode
 * baked in (checked).
 */
CoreResult simulateCoreDecoded(const DecodedProgram &dec,
                               int threads,
                               const CoreSimOptions &opts,
                               SimScratch &scratch);

} // namespace mprobe

#endif // SIM_CORE_HH
