/**
 * @file
 * Performance-counter record produced by the simulator.
 *
 * These are the PMCs a real measurement stack (the paper uses the
 * Linux PCL API) would expose. The energy fields at the bottom are
 * ground-truth bookkeeping visible only to the machine model, never
 * to MicroProbe or the power models.
 */

#ifndef SIM_COUNTERS_HH
#define SIM_COUNTERS_HH

namespace mprobe
{

/** Event counts accumulated over a simulation window. */
struct RunCounters
{
    double cycles = 0;  //!< PM_RUN_CYC
    double instrs = 0;  //!< PM_RUN_INST_CMPL
    double fxuOps = 0;  //!< PM_FXU_FIN
    double lsuOps = 0;  //!< PM_LSU_FIN
    double vsuOps = 0;  //!< PM_VSU_FIN
    double bruOps = 0;  //!< PM_BRU_FIN
    double cruOps = 0;  //!< PM_CRU_FIN
    double loads = 0;   //!< PM_LD_CMPL
    double stores = 0;  //!< PM_ST_CMPL
    double l1Hits = 0;  //!< PM_DATA_FROM_L1
    double l2Hits = 0;  //!< PM_DATA_FROM_L2
    double l3Hits = 0;  //!< PM_DATA_FROM_L3
    double memAcc = 0;  //!< PM_DATA_FROM_MEM

    /** @name Ground-truth-only fields (hidden from estimators) */
    /**@{*/
    double energyNj = 0;     //!< dynamic energy, incl. order terms
    double overlapNj = 0;    //!< unit-overlap share of energyNj
    double transitionNj = 0; //!< unit-transition share of energyNj
    /**@}*/

    RunCounters &
    operator+=(const RunCounters &o)
    {
        cycles += o.cycles;
        instrs += o.instrs;
        fxuOps += o.fxuOps;
        lsuOps += o.lsuOps;
        vsuOps += o.vsuOps;
        bruOps += o.bruOps;
        cruOps += o.cruOps;
        loads += o.loads;
        stores += o.stores;
        l1Hits += o.l1Hits;
        l2Hits += o.l2Hits;
        l3Hits += o.l3Hits;
        memAcc += o.memAcc;
        energyNj += o.energyNj;
        overlapNj += o.overlapNj;
        transitionNj += o.transitionNj;
        return *this;
    }

    RunCounters
    operator-(const RunCounters &o) const
    {
        RunCounters r = *this;
        r.cycles -= o.cycles;
        r.instrs -= o.instrs;
        r.fxuOps -= o.fxuOps;
        r.lsuOps -= o.lsuOps;
        r.vsuOps -= o.vsuOps;
        r.bruOps -= o.bruOps;
        r.cruOps -= o.cruOps;
        r.loads -= o.loads;
        r.stores -= o.stores;
        r.l1Hits -= o.l1Hits;
        r.l2Hits -= o.l2Hits;
        r.l3Hits -= o.l3Hits;
        r.memAcc -= o.memAcc;
        r.energyNj -= o.energyNj;
        r.overlapNj -= o.overlapNj;
        r.transitionNj -= o.transitionNj;
        return r;
    }

    RunCounters &
    operator*=(double k)
    {
        cycles *= k;
        instrs *= k;
        fxuOps *= k;
        lsuOps *= k;
        vsuOps *= k;
        bruOps *= k;
        cruOps *= k;
        loads *= k;
        stores *= k;
        l1Hits *= k;
        l2Hits *= k;
        l3Hits *= k;
        memAcc *= k;
        energyNj *= k;
        overlapNj *= k;
        transitionNj *= k;
        return *this;
    }

    /** Committed instructions per cycle. */
    double
    ipc() const
    {
        return cycles > 0 ? instrs / cycles : 0.0;
    }
};

} // namespace mprobe

#endif // SIM_COUNTERS_HH
