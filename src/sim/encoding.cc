/**
 * @file
 * Binary codification implementation.
 */

#include "sim/encoding.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mprobe
{

namespace
{

uint32_t
activityClass(float toggle)
{
    if (toggle < 0.1f)
        return 0; // zero data
    if (toggle < 0.9f)
        return 1; // constant pattern
    return 2;     // random data
}

float
activityToggle(uint32_t cls)
{
    switch (cls) {
      case 0: return 0.02f;
      case 1: return 0.55f;
      default: return 1.0f;
    }
}

} // namespace

uint32_t
encodeInstruction(const Isa &isa, const ProgInst &pi)
{
    const InstrDef &d = isa.at(pi.op);
    uint32_t word = d.encoding & 0xffff0000u;
    uint32_t dep = static_cast<uint32_t>(
        std::clamp(pi.depDist, 0, 255));
    uint32_t stream =
        pi.stream < 0
            ? 0u
            : static_cast<uint32_t>(std::min(pi.stream, 61) + 1);
    word |= dep << 8;
    word |= stream << 2;
    word |= activityClass(pi.toggle);
    return word;
}

ProgInst
decodeInstruction(const Isa &isa, uint32_t word)
{
    uint32_t enc = word & 0xffff0000u;
    Isa::OpIndex op = -1;
    for (size_t i = 0; i < isa.size(); ++i) {
        if ((isa.at(static_cast<Isa::OpIndex>(i)).encoding &
             0xffff0000u) == enc) {
            op = static_cast<Isa::OpIndex>(i);
            break;
        }
    }
    if (op < 0)
        fatal(cat("decodeInstruction: unknown opcode field 0x",
                  enc >> 16));
    ProgInst pi;
    pi.op = op;
    pi.depDist = static_cast<int>((word >> 8) & 0xffu);
    uint32_t stream = (word >> 2) & 0x3fu;
    pi.stream = stream == 0 ? -1 : static_cast<int>(stream) - 1;
    pi.toggle = activityToggle(word & 3u);
    pi.takenRate = 1.0f;
    return pi;
}

std::vector<uint32_t>
encodeProgram(const Program &prog)
{
    if (!prog.isa)
        fatal("encodeProgram: program without ISA");
    std::vector<uint32_t> out;
    out.reserve(prog.body.size());
    for (const auto &pi : prog.body)
        out.push_back(encodeInstruction(*prog.isa, pi));
    return out;
}

Program
decodeProgram(const Isa &isa, const std::vector<uint32_t> &words,
              const std::string &name)
{
    Program p;
    p.isa = &isa;
    p.name = name;
    int max_stream = -1;
    for (uint32_t w : words) {
        p.body.push_back(decodeInstruction(isa, w));
        max_stream = std::max(max_stream, p.body.back().stream);
    }
    p.streams.resize(static_cast<size_t>(max_stream + 1));
    return p;
}

} // namespace mprobe
