/**
 * @file
 * Binary codification of generated programs.
 *
 * The ISA definition carries "the binary codification of the
 * instruction" (Section 2.1.1); this module uses it to assemble a
 * Program into 32-bit instruction words and to disassemble words
 * back, so generated micro-benchmarks can be exchanged as binary
 * images. The word layout packs the synthesizer-level operands:
 *
 *   [31:16] primary opcode (InstrDef::encoding >> 16)
 *   [15:8]  dependency distance (saturated at 255)
 *   [7:2]   memory stream id + 1 (0 = none, saturated at 62)
 *   [1:0]   data-activity class (0 zero / 1 pattern / 2 random)
 */

#ifndef SIM_ENCODING_HH
#define SIM_ENCODING_HH

#include <cstdint>
#include <vector>

#include "sim/program.hh"

namespace mprobe
{

/** Assemble one instruction into its 32-bit word. */
uint32_t encodeInstruction(const Isa &isa, const ProgInst &pi);

/** Disassemble one word (fatal() on an unknown opcode field). */
ProgInst decodeInstruction(const Isa &isa, uint32_t word);

/** Assemble the whole loop body. */
std::vector<uint32_t> encodeProgram(const Program &prog);

/**
 * Disassemble a body. Stream bindings and activity classes are
 * recovered; the stream *contents* live outside the text section,
 * so the caller re-attaches MemStream data.
 */
Program decodeProgram(const Isa &isa,
                      const std::vector<uint32_t> &words,
                      const std::string &name = "decoded");

} // namespace mprobe

#endif // SIM_ENCODING_HH
