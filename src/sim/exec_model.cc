/**
 * @file
 * Ground-truth table construction.
 */

#include "sim/exec_model.hh"

#include <map>
#include <string>

#include "util/logging.hh"

namespace mprobe
{

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::FXU: return "FXU";
      case Unit::LSU: return "LSU";
      case Unit::VSU: return "VSU";
      case Unit::BRU: return "BRU";
      case Unit::CRU: return "CRU";
      default: panic("unitName: bad unit");
    }
}

int
ExecModel::pipes(Unit u)
{
    switch (u) {
      case Unit::FXU: return 2;
      case Unit::LSU: return 2;
      case Unit::VSU: return 4;
      case Unit::BRU: return 1;
      case Unit::CRU: return 1;
      default: panic("ExecModel::pipes: bad unit");
    }
}

namespace
{

constexpr uint32_t
mask(Unit u)
{
    return 1u << static_cast<int>(u);
}

/**
 * Energy of the reference instruction (addic) in nanojoules; all
 * per-instruction energies are expressed as multiples of this.
 */
constexpr double kEpiUnitNj = 0.55;

/**
 * Curated per-mnemonic energies (multiples of kEpiUnitNj) for the
 * instructions named in the paper's Table 3 and Section 6, chosen so
 * the measured global-EPI ratios land near the published ones.
 */
const std::map<std::string, double> &
namedEnergies()
{
    // Values calibrated so the *measured* global EPI ratios (which
    // include cache, overlap and static-per-rate contributions on
    // top of these raw energies) land on the paper's Table-3
    // normalized values.
    static const std::map<std::string, double> table = {
        // FXU category
        {"mulldo", 3.46}, {"subf", 2.21}, {"addic", 1.00},
        // LSU category (loads)
        {"lxvw4x", 4.11}, {"lvewx", 3.99}, {"lbz", 2.84},
        // VSU category
        {"xvnmsubmdp", 3.35}, {"xvmaddadp", 3.28},
        // Simple integer (FXU or LSU)
        {"add", 2.34}, {"nor", 2.09}, {"and", 1.36},
        // Integer memory, LSU + 1 FXU
        {"ldux", 7.41}, {"lwax", 7.23}, {"lfsu", 5.89},
        // Integer memory, LSU + 2 FXU
        {"lhaux", 8.11}, {"lwaux", 7.71}, {"lhau", 6.86},
        // Vector/float stores, LSU + VSU
        {"stxvw4x", 11.29}, {"stxsdx", 9.23}, {"stfd", 7.13},
        // Vector/float stores with update, LSU + VSU + FXU
        {"stfsux", 14.14}, {"stfdux", 13.23}, {"stfdu", 11.34},
        // Section 6 expert picks (tracking the calibrated peaks)
        {"mullw", 3.20}, {"lxvd2x", 4.05}, {"xvmaddmdp", 3.18},
        // Remaining multiply/bit-count family
        {"mulld", 2.52}, {"mullwo", 2.45}, {"mulhw", 2.30},
        {"mulhd", 2.42}, {"mulhwu", 2.28}, {"mulhdu", 2.40},
        {"mulli", 2.20}, {"popcntw", 1.45}, {"popcntd", 1.50},
        {"cntlzw", 1.30}, {"cntlzd", 1.35},
        // Vector/float loads (lxvw4x stays the category peak)
        {"lvx", 3.85}, {"lvxl", 3.80}, {"lvebx", 3.20},
        {"lvehx", 3.30}, {"lxvdsx", 3.50}, {"lxsdx", 3.40},
        {"lfd", 3.10}, {"lfs", 2.90}, {"lfdx", 3.15},
        {"lfsx", 3.00},
        // Plain fixed-point loads (keeps same-IPC spreads within
        // the paper's <=78% envelope)
        {"lhz", 2.60}, {"lwz", 2.70}, {"ld", 2.90},
        {"lbzx", 2.55}, {"lhzx", 2.65}, {"lwzx", 2.75},
        {"ldx", 2.95},
        // Update/algebraic loads not in Table 3
        {"lbzu", 4.40}, {"lhzu", 4.50}, {"lwzu", 4.70},
        {"ldu", 5.00}, {"lbzux", 4.60}, {"lhzux", 4.70},
        {"lwzux", 4.90}, {"lha", 4.30}, {"lwa", 4.60},
        {"lhax", 4.50},
        // Float update loads not in Table 3
        {"lfdu", 6.10}, {"lfsux", 6.30}, {"lfdux", 6.50},
        // Vector/float stores not in Table 3
        {"stvx", 9.80}, {"stvxl", 9.70}, {"stvebx", 6.20},
        {"stvehx", 6.40}, {"stvewx", 6.60}, {"stxvd2x", 11.00},
        {"stfs", 6.80}, {"stfsu", 10.90}, {"stfsx", 6.90},
        {"stfdx", 7.20}, {"stfiwx", 6.90},
        // Fixed-point store update forms
        {"stbu", 4.60}, {"sthu", 4.70}, {"stwu", 4.90},
        {"stdu", 5.10}, {"stbux", 4.80}, {"sthux", 4.90},
        {"stwux", 5.10}, {"stdux", 5.30},
        // Scalar FP / VSX scalar compute (below xvnmsubmdp)
        {"fadd", 1.85}, {"fsub", 1.84}, {"fmul", 2.05},
        {"fmadd", 2.28}, {"fmsub", 2.26}, {"fnmadd", 2.30},
        {"fnmsub", 2.31}, {"fadds", 1.75}, {"fsubs", 1.74},
        {"fmuls", 1.95}, {"xsadddp", 1.88}, {"xssubdp", 1.87},
        {"xsmuldp", 2.08}, {"xsmaddadp", 2.27}, {"xsmsubadp", 2.25},
        {"fabs", 1.66}, {"fneg", 1.66}, {"fmr", 1.62},
        {"fcfid", 1.90}, {"fctid", 1.90},
        {"xsredp", 1.80}, {"xvredp", 2.20}, {"fres", 1.60},
        {"frsqrte", 1.85}, {"fcmpu", 1.58}, {"dcmpu", 1.70},
        {"xstsqrtdp", 1.55}, {"srawi", 1.45}, {"sradi", 1.50},
        // VSX vector compute (xvnmsubmdp stays the category peak)
        {"xvadddp", 2.10}, {"xvsubdp", 2.08}, {"xvmuldp", 2.18},
        {"xvmsubadp", 2.26}, {"xvnmsubadp", 2.30},
        {"xvaddsp", 1.95}, {"xvsubsp", 1.93}, {"xvmulsp", 2.00},
        {"xvmaddasp", 2.12}, {"xvnmsubasp", 2.15},
        // VMX compute: high IPC, so per-op energy is modest —
        // keeps IPC*EPI below the VSX FMA family.
        {"vand", 1.05}, {"vor", 1.08}, {"vxor", 1.10},
        {"vnor", 1.12}, {"vaddubm", 1.15}, {"vadduhm", 1.15},
        {"vadduwm", 1.16}, {"vsububm", 1.14}, {"vsl", 1.10},
        {"vsr", 1.10}, {"vsplth", 1.00}, {"vspltw", 1.00},
        {"vperm", 1.16}, {"vmuloub", 1.12}, {"vmulouh", 1.12},
        {"vmsumubm", 1.12},
    };
    return table;
}

/** Deterministic per-name jitter in [-spread, +spread]. */
double
nameJitter(const std::string &name, double spread)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    double u = static_cast<double>(h >> 11) * 0x1.0p-53; // [0,1)
    return (2.0 * u - 1.0) * spread;
}

/**
 * Simple integer instructions that the LSU pipes can also execute
 * (the paper's "FXU or LSU" category). Carry/record/compare forms
 * need the FXU's XER/CR logic and stay FXU-only.
 */
bool
dualIssueInt(const InstrDef &d)
{
    if (d.cls != InstrClass::IntSimple)
        return false;
    static const char *const fxu_only[] = {
        "addic", "addc", "adde", "subf", "subfc", "subfe",
        "subfic", "add.", "andi.", "cmpw", "cmpd", "cmpwi",
        "cmpdi", "cmplw", "cmpld", "isel",
    };
    for (const char *n : fxu_only)
        if (d.name == n)
            return false;
    return true;
}

bool
isDivide(const std::string &name)
{
    return name.rfind("div", 0) == 0 ||
           name.find("div") != std::string::npos;
}

bool
isSqrtLike(const std::string &name)
{
    // Full square roots and divides are unpipelined; test/estimate
    // forms (xstsqrtdp, fres, frsqrte, xvredp, xsredp) are cheap.
    if (name.find("tsqrt") != std::string::npos)
        return false;
    return name.find("sqrt") != std::string::npos &&
           name.find("rsqrte") == std::string::npos;
}

ExecInfo
buildInfo(const InstrDef &d)
{
    ExecInfo e;
    switch (d.cls) {
      case InstrClass::IntSimple:
        e.allowedUnits = mask(Unit::FXU);
        if (dualIssueInt(d))
            e.allowedUnits |= mask(Unit::LSU);
        e.latency = 1;
        // Record/carry/compare forms forward through the CR/XER a
        // cycle later.
        if (!d.name.empty() && (d.name.back() == '.' ||
                                d.name.rfind("cmp", 0) == 0 ||
                                d.name == "isel"))
            e.latency = 2;
        e.issueInterval = 1.0;
        e.energyNj = 1.50;
        e.toggleSens = 0.35;
        break;

      case InstrClass::IntComplex:
        e.allowedUnits = mask(Unit::FXU);
        if (isDivide(d.name)) {
            e.latency = 38;
            e.issueInterval = 36.0;
            e.energyNj = 3.60;
        } else if (d.name.rfind("mul", 0) == 0) {
            e.latency = 4;
            e.issueInterval = 10.0 / 7.0; // sustained IPC ~1.4
            e.energyNj = 2.40;
        } else {
            // popcount / count-leading-zeros style
            e.latency = 2;
            e.issueInterval = 1.0;
            e.energyNj = 1.60;
        }
        e.toggleSens = 0.35;
        break;

      case InstrClass::Load:
        e.allowedUnits = mask(Unit::LSU);
        e.isMem = true;
        e.latency = ExecModel::loadToUse[0];
        e.issueInterval = 1.19; // sustained IPC ~1.68 on 2 pipes
        e.energyNj = 2.10;
        if (d.update || d.algebraic) {
            e.issueInterval = 2.0; // sustained IPC ~1.0
            e.extraFxuOps = (d.update ? 1 : 0) +
                            (d.algebraic ? 1 : 0);
        }
        e.energyNj += 1.40 * (d.update ? 1 : 0) +
                      1.30 * (d.algebraic ? 1 : 0);
        if (d.vectorData || d.floatData || d.decimalData)
            e.energyNj += 0.45;
        e.toggleSens = 0.25;
        break;

      case InstrClass::Store:
        e.allowedUnits = mask(Unit::LSU);
        e.isMem = true;
        e.isStore = true;
        e.latency = 1;
        if (d.movesVsuData()) {
            e.issueInterval = 25.0 / 6.0; // sustained IPC ~0.48
            e.usesVsuSteering = true;
            e.energyNj = 6.00;
        } else {
            e.issueInterval = 2.0; // sustained IPC ~1.0
            e.energyNj = 3.00;
        }
        if (d.update) {
            e.extraFxuOps = 1;
            e.energyNj += 1.20;
        }
        e.toggleSens = 0.25;
        break;

      case InstrClass::Float:
      case InstrClass::Vector:
        e.allowedUnits = mask(Unit::VSU);
        e.toggleSens = 0.40;
        if (isDivide(d.name)) {
            e.latency = 28;
            e.issueInterval = 27.0;
            e.pipesNeeded = 2;
            e.energyNj = 7.00;
        } else if (isSqrtLike(d.name)) {
            e.latency = 32;
            e.issueInterval = 31.0;
            e.pipesNeeded = 2;
            e.energyNj = 7.40;
        } else if (d.cls == InstrClass::Float) {
            // Scalar FP: two VSU pipes per op, fully pipelined.
            e.latency = 6;
            e.issueInterval = 1.0;
            e.pipesNeeded = 2;
            e.energyNj = d.srcs >= 3 ? 2.30 : 1.90;
        } else if (d.width == 128 &&
                   (d.name.rfind("xv", 0) == 0)) {
            // VSX double/single vector compute.
            e.latency = 6;
            e.issueInterval = 1.0;
            e.pipesNeeded = 2;
            e.energyNj = d.srcs >= 3 ? 2.30 : 2.05;
        } else {
            // VMX integer / logical / permute: one pipe, short.
            e.latency = 2;
            e.issueInterval = 1.0;
            e.pipesNeeded = 1;
            e.energyNj = d.srcs >= 3 ? 1.70 : 1.40;
        }
        break;

      case InstrClass::Decimal:
        e.allowedUnits = mask(Unit::VSU);
        e.latency = 15;
        e.issueInterval = 13.0;
        e.pipesNeeded = 1;
        e.energyNj = 3.20;
        e.toggleSens = 0.40;
        break;

      case InstrClass::Branch:
        e.allowedUnits = mask(Unit::BRU);
        e.latency = 1;
        e.issueInterval = 1.0;
        e.energyNj = 0.90;
        e.toggleSens = 0.10;
        break;

      case InstrClass::CondReg:
        e.allowedUnits = mask(Unit::CRU);
        e.latency = 2;
        e.issueInterval = 1.0;
        e.energyNj = 0.70;
        e.toggleSens = 0.10;
        break;

      case InstrClass::System:
        if (d.prefetch) {
            e.allowedUnits = mask(Unit::LSU);
            e.isMem = true;
            e.latency = 1;
            e.issueInterval = 1.0;
            e.energyNj = 1.50;
        } else if (d.name == "sync" || d.name == "lwsync" ||
                   d.name == "eieio" || d.name == "isync") {
            e.allowedUnits = mask(Unit::FXU);
            e.latency = 24;
            e.issueInterval = 20.0;
            e.energyNj = 1.80;
        } else if (d.name == "dcbz" || d.name == "icbi") {
            e.allowedUnits = mask(Unit::LSU);
            e.isMem = true;
            e.isStore = (d.name == "dcbz");
            e.latency = 2;
            e.issueInterval = 2.0;
            e.energyNj = 2.20;
        } else if (d.privileged) {
            e.allowedUnits = mask(Unit::FXU);
            e.latency = 30;
            e.issueInterval = 30.0;
            e.energyNj = 2.50;
        } else {
            // SPR moves.
            e.allowedUnits = mask(Unit::FXU);
            e.latency = 3;
            e.issueInterval = 1.0;
            e.energyNj = 1.10;
        }
        e.toggleSens = 0.15;
        break;
    }

    // Width scaling of the default energies: wider datapaths toggle
    // more capacitance.
    double width_scale = 0.80 + 0.20 * (d.width / 64.0);
    e.energyNj *= width_scale;

    const auto &named = namedEnergies();
    auto it = named.find(d.name);
    if (it != named.end()) {
        // Curated value replaces class default (already includes any
        // width effect in the published ratio).
        e.energyNj = it->second;
    } else {
        // Idiosyncratic silicon-level variation: +-28%.
        e.energyNj *= 1.0 + nameJitter(d.name, 0.15);
    }
    e.energyNj *= kEpiUnitNj;
    return e;
}

} // namespace

ExecModel::ExecModel(const Isa &isa)
{
    table.reserve(isa.size());
    for (const auto &d : isa.all())
        table.push_back(buildInfo(d));
}

const ExecInfo &
ExecModel::info(int op) const
{
    if (op < 0 || static_cast<size_t>(op) >= table.size())
        panic(cat("ExecModel::info: bad opcode ", op));
    return table[static_cast<size_t>(op)];
}

void
ExecModel::decode(const Program &prog, int mispredict_penalty,
                  double transition_gate_nj,
                  DecodedProgram &out) const
{
    if (!prog.isa)
        panic("simulateCore: program without ISA");
    const size_t n = prog.body.size();
    out.name = prog.name;
    out.bodySize = n;
    out.mispredictPenalty = mispredict_penalty;
    out.transitionGateNj = transition_gate_nj;

    out.depSrc.resize(n);
    out.stream.resize(n);
    out.unitFirst.resize(n);
    out.unitSecond.resize(n);
    out.pipesNeeded.resize(n);
    out.extraFxuOps.resize(n);
    out.flags.resize(n);
    out.highEnergy.resize(n);
    out.issueInterval.resize(n);
    out.latency.resize(n);
    out.actEnergyNj.resize(n);
    out.mispredictInc.resize(n);

    for (size_t s = 0; s < n; ++s) {
        const ProgInst &pi = prog.body[s];
        const ExecInfo &ei = info(pi.op);
        const InstrDef &idef = prog.isa->at(pi.op);

        out.depSrc[s] =
            pi.depDist > 0
                ? static_cast<int32_t>(
                      (s + n - static_cast<size_t>(pi.depDist) % n)
                      % n)
                : -1;
        out.stream[s] = pi.stream;

        // Allowed units in ascending order, matching the unit scan
        // of the reference simulator (at most two: the dual-issue
        // integer category).
        int8_t first = -1, second = -1;
        for (int u = 0; u < kNumUnits; ++u) {
            if (!ei.allows(static_cast<Unit>(u)))
                continue;
            if (first < 0)
                first = static_cast<int8_t>(u);
            else
                second = static_cast<int8_t>(u);
        }
        out.unitFirst[s] = first;
        out.unitSecond[s] = second;
        out.pipesNeeded[s] = static_cast<int8_t>(ei.pipesNeeded);
        out.extraFxuOps[s] = static_cast<int8_t>(ei.extraFxuOps);

        uint8_t fl = 0;
        if (ei.isMem)
            fl |= DecodedProgram::kMem;
        if (ei.isStore)
            fl |= DecodedProgram::kStore;
        if (ei.usesVsuSteering)
            fl |= DecodedProgram::kVsuSteer;
        if (idef.isBranch() && pi.takenRate > 0.0f &&
            pi.takenRate < 1.0f)
            fl |= DecodedProgram::kCondBranch;
        out.flags[s] = fl;

        out.highEnergy[s] = ei.energyNj >= transition_gate_nj;
        out.issueInterval[s] = ei.issueInterval;
        out.latency[s] = ei.latency;
        // Exactly the reference simulator's expression, so the
        // precomputed product is the bit-identical double.
        double act =
            1.0 - ei.toggleSens + ei.toggleSens * pi.toggle;
        out.actEnergyNj[s] = ei.energyNj * act;
        if (fl & DecodedProgram::kCondBranch) {
            double p = pi.takenRate;
            out.mispredictInc[s] =
                mispredict_penalty * 2.0 * p * (1.0 - p);
        } else {
            out.mispredictInc[s] = 0.0;
        }
    }

    out.streamLines.clear();
    out.streamOffset.resize(prog.streams.size());
    out.streamLen.resize(prog.streams.size());
    for (size_t i = 0; i < prog.streams.size(); ++i) {
        const MemStream &ms = prog.streams[i];
        out.streamOffset[i] =
            static_cast<uint32_t>(out.streamLines.size());
        out.streamLen[i] = static_cast<uint32_t>(ms.lines.size());
        out.streamLines.insert(out.streamLines.end(),
                               ms.lines.begin(), ms.lines.end());
    }
}

} // namespace mprobe
