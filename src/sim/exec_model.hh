/**
 * @file
 * Ground-truth execution and energy model of the simulated machine.
 *
 * This is the "silicon": per-instruction timing (latency, issue
 * interval, pipe usage) and per-instruction energy, including effects
 * that the counter-based estimators cannot observe directly —
 * per-instruction energy idiosyncrasies within a unit category and
 * data-dependent switching energy. MicroProbe never reads this
 * module; it can only discover its behaviour through performance
 * counters and the power sensor, exactly as the paper's framework
 * can only measure a real POWER7.
 */

#ifndef SIM_EXEC_MODEL_HH
#define SIM_EXEC_MODEL_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"
#include "sim/program.hh"

namespace mprobe
{

/** Functional units of the simulated core. */
enum class Unit : int
{
    FXU = 0, //!< fixed point unit
    LSU = 1, //!< load/store unit
    VSU = 2, //!< vector-scalar unit
    BRU = 3, //!< branch unit
    CRU = 4, //!< condition register unit
    NumUnits = 5
};

constexpr int kNumUnits = static_cast<int>(Unit::NumUnits);

/** Unit name for messages and counter mapping. */
const char *unitName(Unit u);

/** Resolved ground-truth execution properties of one opcode. */
struct ExecInfo
{
    /** Bitmask of units whose pipes may execute the primary op. */
    uint32_t allowedUnits = 0;
    /** Pipes simultaneously occupied on the chosen unit. */
    int pipesNeeded = 1;
    /** Cycles a pipe stays occupied per op (may be fractional). */
    double issueInterval = 1.0;
    /** Result latency in cycles (memory ops override per level). */
    int latency = 1;
    /**
     * Extra fixed-point micro-operations (address update and/or sign
     * extension) issued alongside a memory op. They occupy FXU pipe
     * bandwidth and count toward the FXU activity counter.
     */
    int extraFxuOps = 0;
    /** Memory op moving VSU-domain data (occupies one VSU pipe). */
    bool usesVsuSteering = false;
    /** Performs a data-cache access. */
    bool isMem = false;
    /** Memory write (no result latency). */
    bool isStore = false;
    /** Base dynamic energy per op in nanojoules (hidden). */
    double energyNj = 0.0;
    /** Fraction of energyNj that scales with data activity. */
    double toggleSens = 0.3;

    /** True when @p u may execute the primary op. */
    bool
    allows(Unit u) const
    {
        return allowedUnits & (1u << static_cast<int>(u));
    }
};

/**
 * Precomputed ExecInfo for every opcode of an ISA.
 *
 * Built from class rules plus a curated per-mnemonic table for the
 * instructions the paper names, plus a deterministic per-mnemonic
 * energy jitter for everything else (real silicon shows large EPI
 * spreads within a category; Section 5 reports up to 78%).
 */
class ExecModel
{
  public:
    explicit ExecModel(const Isa &isa);

    /** Ground truth record for an opcode index. */
    const ExecInfo &info(int op) const;

    /**
     * Decode @p prog into its structure-of-arrays form for
     * simulateCoreDecoded, baking the two CoreSimOptions knobs
     * that enter per-instruction constants. @p out is reused (its
     * vectors keep their capacity), so a caller decoding many
     * programs through one DecodedProgram performs no steady-state
     * allocation.
     */
    void decode(const Program &prog, int mispredict_penalty,
                double transition_gate_nj,
                DecodedProgram &out) const;

    /** Number of pipes of each unit on one core. */
    static int pipes(Unit u);

    /** Core dispatch width (instructions per cycle, all threads). */
    static constexpr int dispatchWidth = 6;

    /** Load-to-use latency per hit level (L1, L2, L3; memory is
     * configuration dependent and supplied by the machine). */
    static constexpr int loadToUse[3] = {2, 8, 26};

    /** Baseline main-memory latency in cycles (no contention). */
    static constexpr int memLatencyBase = 220;

  private:
    std::vector<ExecInfo> table;
};

} // namespace mprobe

#endif // SIM_EXEC_MODEL_HH
