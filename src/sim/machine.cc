/**
 * @file
 * Machine model implementation.
 */

#include "sim/machine.hh"

#include <algorithm>
#include <cmath>

#include "util/hash.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mprobe
{

std::vector<ChipConfig>
ChipConfig::all()
{
    std::vector<ChipConfig> out;
    for (int c = 1; c <= 8; ++c)
        for (int s : {1, 2, 4})
            out.push_back({c, s});
    return out;
}

std::string
ChipConfig::label() const
{
    return cat(cores, "-", smt);
}

Machine::Machine(const Isa &isa, const GroundTruthParams &p)
    : isaPtr(&isa), exec(isa), params(p)
{
}

Machine::Machine(const Isa &isa,
                 const std::vector<CacheGeometry> &geoms,
                 double clock_ghz, const GroundTruthParams &p)
    : isaPtr(&isa), exec(isa), params(p)
{
    params.clockGhz = clock_ghz;
    simOpts.cacheGeoms = geoms;
}

double
Machine::staticCmpWatts(int cores) const
{
    return params.cmpLin * cores +
           params.cmpCurve * std::pow(cores, params.cmpPow);
}

double
Machine::sensorize(double watts, uint64_t seed) const
{
    Rng rng(seed);
    double noisy =
        watts * (1.0 + params.sensorNoiseFrac * rng.gaussian());
    // TPMD readings have milliwatt granularity (Section 3).
    return std::round(noisy * 1000.0) / 1000.0;
}

double
Machine::voltageAt(double freq_ghz) const
{
    return std::max(params.vddFloor,
                    params.vddNominal +
                        params.vddSlopePerGhz *
                            (freq_ghz - params.clockGhz));
}

OperatingPoint
Machine::operatingPoint(double freq_ghz) const
{
    if (freq_ghz <= 0.0)
        freq_ghz = params.clockGhz;
    return {freq_ghz, voltageAt(freq_ghz)};
}

namespace
{

/**
 * Mix a swept frequency into a sensor seed. The nominal point
 * leaves the seed untouched so every pre-DVFS measurement (and its
 * cache entry) stays bit-identical.
 */
uint64_t
mixFreqSeed(uint64_t seed, double freq_ghz, double nominal_ghz)
{
    if (freq_ghz == nominal_ghz)
        return seed;
    return hashCombine(
        seed, static_cast<uint64_t>(std::llround(freq_ghz * 1e6)));
}

} // namespace

double
Machine::idleWatts(const ChipConfig &cfg, uint64_t salt) const
{
    return idleWatts(cfg, operatingPoint(), salt);
}

double
Machine::idleWatts(const ChipConfig &cfg, const OperatingPoint &op,
                   uint64_t salt) const
{
    uint64_t seed = 0x1d1efeedull ^
                    (static_cast<uint64_t>(cfg.cores) << 8) ^
                    (static_cast<uint64_t>(cfg.smt) << 16) ^ salt;
    seed = mixFreqSeed(seed, op.freqGhz, params.clockGhz);
    double vr = op.voltage / voltageAt(params.clockGhz);
    return sensorize(params.idleWatts * vr, seed);
}

RunResult
Machine::run(const Program &prog, const ChipConfig &cfg,
             uint64_t salt) const
{
    return run(prog, cfg, operatingPoint(), salt);
}

RunResult
Machine::run(const Program &prog, const ChipConfig &cfg,
             const OperatingPoint &op, uint64_t salt) const
{
    if (cfg.cores < 1 || cfg.cores > 8)
        fatal(cat("bad core count ", cfg.cores));
    if (cfg.smt != 1 && cfg.smt != 2 && cfg.smt != 4)
        fatal(cat("bad SMT mode ", cfg.smt));
    if (op.freqGhz <= 0.0 || op.voltage <= 0.0)
        fatal(cat("bad operating point ", op.freqGhz, " GHz @ ",
                  op.voltage, " V"));
    if (prog.isa != isaPtr)
        fatal(cat("program '", prog.name,
                  "' was generated for a different ISA"));

    // Main-memory latency is fixed in nanoseconds; its cycle count
    // follows the core clock. Core/cache latencies are clock-domain
    // cycles and stay put. lat_scale is exactly 1.0 at the nominal
    // point, so the legacy path is reproduced bit for bit.
    double lat_scale = op.freqGhz / params.clockGhz;

    // First pass at the uncontended memory latency.
    CoreSimOptions opts = simOpts;
    opts.memLatency = std::max(
        1, static_cast<int>(
               std::lround(simOpts.memLatency * lat_scale)));
    CoreResult core = simulateCore(exec, prog, cfg.smt, opts);

    // Shared-memory contention: when several cores stream from
    // memory, the effective latency grows with aggregate demand.
    double mem_per_cycle =
        core.window.cycles > 0
            ? core.window.memAcc / core.window.cycles
            : 0.0;
    if (cfg.cores > 1 && mem_per_cycle > 1e-3) {
        double factor = 1.0 + params.memContentionK *
                                  mem_per_cycle * (cfg.cores - 1);
        opts.memLatency = std::max(
            1, static_cast<int>(std::lround(
                   ExecModel::memLatencyBase * lat_scale *
                   factor)));
        core = simulateCore(exec, prog, cfg.smt, opts);
    }

    RunResult res;
    res.config = cfg;
    res.chip = core.window;
    res.chip *= static_cast<double>(cfg.cores);
    // Cycles are per core, not summed across cores.
    res.chip.cycles = core.window.cycles;
    res.coreIpc = core.window.ipc();
    res.seconds =
        core.window.cycles / (op.freqGhz * 1e9);
    res.freqGhz = op.freqGhz;
    res.voltage = op.voltage;

    // Hidden chip power composition. Dynamic energy per op scales
    // with V^2 (vr is 1.0 at the nominal point); every static term
    // scales with V.
    double vr = op.voltage / voltageAt(params.clockGhz);
    double dyn = vr * vr * cfg.cores * core.window.energyNj *
                 1e-9 / std::max(res.seconds, 1e-15);
    double smt_w =
        cfg.smt > 1
            ? vr * cfg.cores *
                  (params.smtEffectWatts +
                   (cfg.smt == 4 ? params.smt4ExtraWatts : 0.0))
            : 0.0;
    double cmp_w = vr * staticCmpWatts(cfg.cores);
    double total = dyn + smt_w + cmp_w +
                   vr * params.uncoreActiveWatts +
                   vr * params.idleWatts;

    uint64_t seed = hashStr(prog.name) ^
                    (static_cast<uint64_t>(cfg.cores) << 32) ^
                    (static_cast<uint64_t>(cfg.smt) << 40) ^ salt;
    seed = mixFreqSeed(seed, op.freqGhz, params.clockGhz);
    res.sensorWatts = sensorize(total, seed);

    res.gtDynamicWatts = dyn;
    res.gtSmtWatts = smt_w;
    res.gtCmpWatts = cmp_w;
    res.gtUncoreWatts = vr * params.uncoreActiveWatts;
    res.gtIdleWatts = vr * params.idleWatts;
    return res;
}

uint64_t
Machine::fingerprint() const
{
    Hasher h;
    // The full instruction definitions, not just the ISA name: a
    // definition-file variant with the same name and opcode count
    // must not replay another ISA's cached samples.
    h.add(isaPtr->name()).add(isaPtr->size());
    for (size_t i = 0; i < isaPtr->size(); ++i) {
        const InstrDef &d =
            isaPtr->at(static_cast<Isa::OpIndex>(i));
        h.add(d.name).add(static_cast<int>(d.cls)).add(d.width);
        h.add(d.srcs).add(d.dsts).add(d.hasImm);
        h.add(d.vectorData).add(d.floatData).add(d.decimalData);
        h.add(d.update).add(d.algebraic).add(d.indexed);
        h.add(d.conditional).add(d.privileged).add(d.prefetch);
    }
    h.add(params.clockGhz)
        .add(params.idleWatts)
        .add(params.uncoreActiveWatts)
        .add(params.cmpLin)
        .add(params.cmpCurve)
        .add(params.cmpPow)
        .add(params.smtEffectWatts)
        .add(params.smt4ExtraWatts)
        .add(params.sensorNoiseFrac)
        .add(params.memContentionK);
    // The V/f-curve parameters are hashed only when they deviate
    // from the defaults: default-curve machines keep the exact
    // pre-DVFS fingerprint, so existing cache directories upgrade
    // miss-free (job keys already distinguish swept frequencies).
    GroundTruthParams defaults;
    if (params.vddNominal != defaults.vddNominal ||
        params.vddSlopePerGhz != defaults.vddSlopePerGhz ||
        params.vddFloor != defaults.vddFloor)
        h.add(params.vddNominal)
            .add(params.vddSlopePerGhz)
            .add(params.vddFloor);
    h.add(simOpts.memLatency)
        .add(simOpts.warmupIters)
        .add(simOpts.measureIters)
        .add(simOpts.prefetch)
        .add(simOpts.mispredictPenalty)
        .add(simOpts.overlapNjPerCycle)
        .add(simOpts.transitionNjPerInstr)
        .add(simOpts.transitionGateNj);
    for (const auto &g : simOpts.cacheGeoms)
        h.add(g.sizeBytes).add(g.assoc).add(g.lineBytes);
    return h.digest();
}

} // namespace mprobe
