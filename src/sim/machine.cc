/**
 * @file
 * Machine model implementation.
 */

#include "sim/machine.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace mprobe
{

namespace
{

/** -1 = follow MPROBE_NO_BATCH, 0/1 = forced by setSimFastPath. */
std::atomic<int> fastPathOverride{-1};

bool
envDisablesFastPath()
{
    static const bool disabled = [] {
        const char *v = std::getenv("MPROBE_NO_BATCH");
        return v && *v && std::strcmp(v, "0") != 0;
    }();
    return disabled;
}

} // namespace

bool
simFastPathEnabled()
{
    int forced = fastPathOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    return !envDisablesFastPath();
}

void
setSimFastPath(bool enabled)
{
    fastPathOverride.store(enabled ? 1 : 0,
                           std::memory_order_relaxed);
}

std::vector<ChipConfig>
ChipConfig::all()
{
    std::vector<ChipConfig> out;
    for (int c = 1; c <= 8; ++c)
        for (int s : {1, 2, 4})
            out.push_back({c, s});
    return out;
}

std::string
ChipConfig::label() const
{
    return cat(cores, "-", smt);
}

Machine::Machine(const Isa &isa, const GroundTruthParams &p)
    : isaPtr(&isa), exec(isa), params(p)
{
}

Machine::Machine(const Isa &isa,
                 const std::vector<CacheGeometry> &geoms,
                 double clock_ghz, const GroundTruthParams &p)
    : isaPtr(&isa), exec(isa), params(p)
{
    params.clockGhz = clock_ghz;
    simOpts.cacheGeoms = geoms;
}

double
Machine::staticCmpWatts(int cores) const
{
    return params.cmpLin * cores +
           params.cmpCurve * std::pow(cores, params.cmpPow);
}

double
Machine::sensorize(double watts, uint64_t seed) const
{
    Rng rng(seed);
    double noisy =
        watts * (1.0 + params.sensorNoiseFrac * rng.gaussian());
    // TPMD readings have milliwatt granularity (Section 3).
    return std::round(noisy * 1000.0) / 1000.0;
}

double
Machine::voltageAt(double freq_ghz) const
{
    return std::max(params.vddFloor,
                    params.vddNominal +
                        params.vddSlopePerGhz *
                            (freq_ghz - params.clockGhz));
}

OperatingPoint
Machine::operatingPoint(double freq_ghz) const
{
    if (freq_ghz <= 0.0)
        freq_ghz = params.clockGhz;
    return {freq_ghz, voltageAt(freq_ghz)};
}

double
Machine::vminAt(double freq_ghz, double core_ipc) const
{
    return params.vminBase + params.vminPerGhz * freq_ghz +
           params.vminPerIpc * core_ipc;
}

namespace
{

/**
 * Mix a swept frequency into a sensor seed. The nominal point
 * leaves the seed untouched so every pre-DVFS measurement (and its
 * cache entry) stays bit-identical.
 */
uint64_t
mixFreqSeed(uint64_t seed, double freq_ghz, double nominal_ghz)
{
    if (freq_ghz == nominal_ghz)
        return seed;
    return hashCombine(
        seed, static_cast<uint64_t>(std::llround(freq_ghz * 1e6)));
}

} // namespace

double
Machine::idleWatts(const ChipConfig &cfg, uint64_t salt) const
{
    return idleWatts(cfg, operatingPoint(), salt);
}

double
Machine::idleWatts(const ChipConfig &cfg, const OperatingPoint &op,
                   uint64_t salt) const
{
    uint64_t seed = 0x1d1efeedull ^
                    (static_cast<uint64_t>(cfg.cores) << 8) ^
                    (static_cast<uint64_t>(cfg.smt) << 16) ^ salt;
    seed = mixFreqSeed(seed, op.freqGhz, params.clockGhz);
    double vr = op.voltage / voltageAt(params.clockGhz);
    return sensorize(params.idleWatts * vr, seed);
}

RunResult
Machine::run(const Program &prog, const ChipConfig &cfg,
             uint64_t salt) const
{
    return run(prog, cfg, operatingPoint(), salt);
}

void
Machine::validateRun(const Program &prog, const ChipConfig &cfg,
                     const OperatingPoint &op) const
{
    if (cfg.cores < 1 || cfg.cores > 8)
        fatal(cat("bad core count ", cfg.cores));
    if (cfg.smt != 1 && cfg.smt != 2 && cfg.smt != 4)
        fatal(cat("bad SMT mode ", cfg.smt));
    if (op.freqGhz <= 0.0 || op.voltage <= 0.0)
        fatal(cat("bad operating point ", op.freqGhz, " GHz @ ",
                  op.voltage, " V"));
    if (prog.isa != isaPtr)
        fatal(cat("program '", prog.name,
                  "' was generated for a different ISA"));
}

int
Machine::firstPassMemLatency(double lat_scale) const
{
    return std::max(
        1, static_cast<int>(
               std::lround(simOpts.memLatency * lat_scale)));
}

int
Machine::contendedMemLatency(const CoreResult &core,
                             const ChipConfig &cfg,
                             double lat_scale) const
{
    // Shared-memory contention: when several cores stream from
    // memory, the effective latency grows with aggregate demand.
    double mem_per_cycle =
        core.window.cycles > 0
            ? core.window.memAcc / core.window.cycles
            : 0.0;
    if (cfg.cores <= 1 || mem_per_cycle <= 1e-3)
        return 0;
    double factor = 1.0 + params.memContentionK * mem_per_cycle *
                              (cfg.cores - 1);
    return std::max(
        1, static_cast<int>(std::lround(
               ExecModel::memLatencyBase * lat_scale * factor)));
}

RunResult
Machine::run(const Program &prog, const ChipConfig &cfg,
             const OperatingPoint &op, uint64_t salt) const
{
    return simFastPathEnabled() ? runDecoded(prog, cfg, op, salt)
                                : runLegacy(prog, cfg, op, salt);
}

RunResult
Machine::runLegacy(const Program &prog, const ChipConfig &cfg,
                   const OperatingPoint &op, uint64_t salt) const
{
    validateRun(prog, cfg, op);

    // Main-memory latency is fixed in nanoseconds; its cycle count
    // follows the core clock. Core/cache latencies are clock-domain
    // cycles and stay put. lat_scale is exactly 1.0 at the nominal
    // point, so the pre-DVFS path is reproduced bit for bit.
    double lat_scale = op.freqGhz / params.clockGhz;

    // First pass at the uncontended memory latency.
    CoreSimOptions opts = simOpts;
    opts.memLatency = firstPassMemLatency(lat_scale);
    CoreResult core = simulateCore(exec, prog, cfg.smt, opts);

    int contended = contendedMemLatency(core, cfg, lat_scale);
    if (contended > 0) {
        opts.memLatency = contended;
        core = simulateCore(exec, prog, cfg.smt, opts);
    }
    return finishRun(prog, cfg, op, salt, core);
}

RunResult
Machine::runDecoded(const Program &prog, const ChipConfig &cfg,
                    const OperatingPoint &op, uint64_t salt) const
{
    validateRun(prog, cfg, op);

    // Decoding a ~1 K-instruction body is noise next to the
    // millions of simulated cycles it feeds, so a single run
    // decodes fresh every time (only Batch assumes a stable
    // program identity); the thread-local scratch still removes
    // all steady-state allocation and cache-array construction.
    thread_local DecodedProgram decoded;
    thread_local SimScratch scratch;
    exec.decode(prog, simOpts.mispredictPenalty,
                simOpts.transitionGateNj, decoded);

    double lat_scale = op.freqGhz / params.clockGhz;
    CoreSimOptions opts = simOpts;
    opts.memLatency = firstPassMemLatency(lat_scale);
    CoreResult core =
        simulateCoreDecoded(decoded, cfg.smt, opts, scratch);

    int contended = contendedMemLatency(core, cfg, lat_scale);
    if (contended > 0) {
        opts.memLatency = contended;
        core = simulateCoreDecoded(decoded, cfg.smt, opts, scratch);
    }
    return finishRun(prog, cfg, op, salt, core);
}

RunResult
Machine::finishRun(const Program &prog, const ChipConfig &cfg,
                   const OperatingPoint &op, uint64_t salt,
                   const CoreResult &core) const
{
    obs::TraceSpan span("sim.power");
    RunResult res;
    res.config = cfg;
    res.chip = core.window;
    res.chip *= static_cast<double>(cfg.cores);
    // Cycles are per core, not summed across cores.
    res.chip.cycles = core.window.cycles;
    res.coreIpc = core.window.ipc();
    res.seconds =
        core.window.cycles / (op.freqGhz * 1e9);
    res.freqGhz = op.freqGhz;
    res.voltage = op.voltage;
    res.offCurve = op.voltage != voltageAt(op.freqGhz);

    // The hidden margin model: at or above Vmin the measurement is
    // clean; below it the numbers still come back (real undervolted
    // parts keep running for a while) but flagged unreliable.
    res.gtVminVolts = vminAt(op.freqGhz, res.coreIpc);
    res.reliable = op.voltage >= res.gtVminVolts;

    // Hidden chip power composition. Dynamic energy per op scales
    // with V^2 (vr is 1.0 at the nominal point); every static term
    // scales with V.
    double vr = op.voltage / voltageAt(params.clockGhz);
    double dyn = vr * vr * cfg.cores * core.window.energyNj *
                 1e-9 / std::max(res.seconds, 1e-15);
    double smt_w =
        cfg.smt > 1
            ? vr * cfg.cores *
                  (params.smtEffectWatts +
                   (cfg.smt == 4 ? params.smt4ExtraWatts : 0.0))
            : 0.0;
    double cmp_w = vr * staticCmpWatts(cfg.cores);
    double total = dyn + smt_w + cmp_w +
                   vr * params.uncoreActiveWatts +
                   vr * params.idleWatts;

    uint64_t seed = hashStr(prog.name) ^
                    (static_cast<uint64_t>(cfg.cores) << 32) ^
                    (static_cast<uint64_t>(cfg.smt) << 40) ^ salt;
    seed = mixFreqSeed(seed, op.freqGhz, params.clockGhz);
    res.sensorWatts = sensorize(total, seed);

    res.gtDynamicWatts = dyn;
    res.gtSmtWatts = smt_w;
    res.gtCmpWatts = cmp_w;
    res.gtUncoreWatts = vr * params.uncoreActiveWatts;
    res.gtIdleWatts = vr * params.idleWatts;
    return res;
}

Machine::Batch::Batch(const Machine &machine, const Program &p)
    : m(machine), prog(p)
{
    // Decoded even when the fast path is currently disabled: the
    // toggle is dynamic (tests flip it), so run() must never see a
    // stale decode.
    obs::TraceSpan span("sim.decode");
    span.note("instructions", static_cast<double>(p.size()));
    m.exec.decode(p, m.simOpts.mispredictPenalty,
                  m.simOpts.transitionGateNj, decoded);
}

const CoreResult &
Machine::Batch::simAt(int smt, int lat_mem)
{
    // A batch visits only a handful of distinct (smt, latency)
    // pairs (three SMT modes at nominal frequency, plus one entry
    // per distinct swept/contended latency), so a linear scan
    // beats any map.
    for (const MemoEntry &e : memo)
        if (e.smt == smt && e.latMem == lat_mem) {
            obs::counter("batch_memo_hits").add();
            return e.core;
        }
    obs::counter("batch_core_sims").add();
    CoreSimOptions opts = m.simOpts;
    opts.memLatency = lat_mem;
    {
        obs::TraceSpan span("sim.core");
        span.note("smt", smt);
        span.note("lat_mem", lat_mem);
        memo.push_back(
            {smt, lat_mem,
             simulateCoreDecoded(decoded, smt, opts, scratch)});
    }
    obs::gauge("arena_high_water_bytes")
        .max(static_cast<double>(scratch.arena.capacityBytes()));
    return memo.back().core;
}

RunResult
Machine::Batch::run(const ChipConfig &cfg, const OperatingPoint &op,
                    uint64_t salt)
{
    if (!simFastPathEnabled())
        return m.runLegacy(prog, cfg, op, salt);
    m.validateRun(prog, cfg, op);

    double lat_scale = op.freqGhz / m.params.clockGhz;
    const CoreResult *core =
        &simAt(cfg.smt, m.firstPassMemLatency(lat_scale));
    int contended = m.contendedMemLatency(*core, cfg, lat_scale);
    if (contended > 0)
        core = &simAt(cfg.smt, contended);
    return m.finishRun(prog, cfg, op, salt, *core);
}

std::vector<RunResult>
Machine::runBatch(const Program &p,
                  const std::vector<RunRequest> &points) const
{
    Batch batch(*this, p);
    std::vector<RunResult> out;
    out.reserve(points.size());
    for (const RunRequest &pt : points)
        out.push_back(batch.run(pt.config, pt.op, pt.salt));
    return out;
}

uint64_t
Machine::fingerprint() const
{
    Hasher h;
    // The full instruction definitions, not just the ISA name: a
    // definition-file variant with the same name and opcode count
    // must not replay another ISA's cached samples.
    h.add(isaPtr->name()).add(isaPtr->size());
    for (size_t i = 0; i < isaPtr->size(); ++i) {
        const InstrDef &d =
            isaPtr->at(static_cast<Isa::OpIndex>(i));
        h.add(d.name).add(static_cast<int>(d.cls)).add(d.width);
        h.add(d.srcs).add(d.dsts).add(d.hasImm);
        h.add(d.vectorData).add(d.floatData).add(d.decimalData);
        h.add(d.update).add(d.algebraic).add(d.indexed);
        h.add(d.conditional).add(d.privileged).add(d.prefetch);
    }
    h.add(params.clockGhz)
        .add(params.idleWatts)
        .add(params.uncoreActiveWatts)
        .add(params.cmpLin)
        .add(params.cmpCurve)
        .add(params.cmpPow)
        .add(params.smtEffectWatts)
        .add(params.smt4ExtraWatts)
        .add(params.sensorNoiseFrac)
        .add(params.memContentionK);
    // The V/f-curve parameters are hashed only when they deviate
    // from the defaults: default-curve machines keep the exact
    // pre-DVFS fingerprint, so existing cache directories upgrade
    // miss-free (job keys already distinguish swept frequencies).
    GroundTruthParams defaults;
    if (params.vddNominal != defaults.vddNominal ||
        params.vddSlopePerGhz != defaults.vddSlopePerGhz ||
        params.vddFloor != defaults.vddFloor)
        h.add(params.vddNominal)
            .add(params.vddSlopePerGhz)
            .add(params.vddFloor);
    // Same discipline for the Vmin margin model: default-margin
    // machines keep the pre-undervolting fingerprint.
    if (params.vminBase != defaults.vminBase ||
        params.vminPerGhz != defaults.vminPerGhz ||
        params.vminPerIpc != defaults.vminPerIpc)
        h.add(params.vminBase)
            .add(params.vminPerGhz)
            .add(params.vminPerIpc);
    h.add(simOpts.memLatency)
        .add(simOpts.warmupIters)
        .add(simOpts.measureIters)
        .add(simOpts.prefetch)
        .add(simOpts.mispredictPenalty)
        .add(simOpts.overlapNjPerCycle)
        .add(simOpts.transitionNjPerInstr)
        .add(simOpts.transitionGateNj);
    for (const auto &g : simOpts.cacheGeoms)
        h.add(g.sizeBytes).add(g.assoc).add(g.lineBytes);
    return h.digest();
}

} // namespace mprobe
