/**
 * @file
 * Chip-level machine model and power sensor.
 *
 * Plays the role of the paper's measurement platform (Section 3): an
 * 8-core, 4-way-SMT POWER7-like system whose processor power is read
 * through a TPMD-like sensor with milliwatt granularity. Deployment
 * follows the paper exactly: one copy of the micro-benchmark per
 * available hardware thread, pinned, run to a steady state.
 *
 * The chip power composes per-core dynamic energy (from the cycle
 * level core model) with hidden static terms: workload-independent
 * idle power, uncore power when active, a *convex* CMP term (the
 * linear-CMP assumption of the estimated models is an approximation,
 * mirroring the paper's Section 4.1.1 discussion), and a per-core SMT
 * enable effect.
 */

#ifndef SIM_MACHINE_HH
#define SIM_MACHINE_HH

#include <string>

#include "dvfs/op_point.hh"
#include "sim/core.hh"

namespace mprobe
{

/** A CMP/SMT configuration, e.g. "4-2" = 4 cores, 2-way SMT. */
struct ChipConfig
{
    int cores = 8;
    int smt = 1;

    /** All 24 configurations studied in the paper. */
    static std::vector<ChipConfig> all();

    /** "cores-smt" label used across the paper's figures. */
    std::string label() const;

    /** Total hardware threads. */
    int threads() const { return cores * smt; }
};

/** Hidden chip-level ground-truth parameters. */
struct GroundTruthParams
{
    double clockGhz = 3.0;
    /** Workload-independent power (chip idle). */
    double idleWatts = 55.0;
    /** Constant uncore power once anything runs. */
    double uncoreActiveWatts = 6.0;
    /** CMP term: cmpLin*n + cmpCurve*n^cmpPow (convex in n). */
    double cmpLin = 0.90;
    double cmpCurve = 0.28;
    double cmpPow = 1.55;
    /** Extra power per core with SMT enabled ... */
    double smtEffectWatts = 0.50;
    /** ... nearly independent of 2-way vs 4-way (Section 4.1). */
    double smt4ExtraWatts = 0.05;
    /** Sensor noise (fraction of reading). */
    double sensorNoiseFrac = 0.0015;
    /** Shared-memory-bandwidth contention strength. */
    double memContentionK = 6.0;
    /**
     * @name Hidden V/f operating-point curve (DVFS ground truth)
     * The supply voltage at frequency f is
     *     V(f) = max(vddFloor, vddNominal + vddSlopePerGhz*(f - clockGhz)),
     * i.e. linear in f with a floor below which the silicon cannot
     * be undervolted further — the shape Papadimitriou et al.
     * characterize on real server parts. Dynamic power scales with
     * V^2*f, static power with V.
     */
    /**@{*/
    double vddNominal = kNominalVdd;
    double vddSlopePerGhz = kNominalVddSlopePerGhz;
    double vddFloor = kNominalVddFloor;
    /**@}*/
    /**
     * @name Hidden workload-dependent Vmin margin model
     * The minimum safe supply voltage at an operating point is
     *     Vmin(f, ipc) = vminBase + vminPerGhz*f + vminPerIpc*ipc,
     * growing with frequency (timing paths tighten) and with core
     * activity (voltage droop under load) — the workload-dependent
     * margin shape Papadimitriou et al. measure on real server
     * parts. A run at op.voltage < Vmin is marked unreliable
     * (RunResult::reliable / Sample::reliable) instead of returning
     * clean numbers; exactly at Vmin it is still reliable. The
     * defaults keep every on-curve point reliable: the curve's
     * floor (0.85 V) sits above Vmin for any reachable IPC.
     */
    /**@{*/
    double vminBase = 0.60;
    double vminPerGhz = 0.04;
    double vminPerIpc = 0.02;
    /**@}*/
};

/**
 * One point of a batched evaluation: a CMP/SMT configuration, an
 * operating point and the per-measurement salt. Campaigns derive
 * the salt from each job's content hash, so a batch carries it per
 * point rather than sharing one.
 */
struct RunRequest
{
    ChipConfig config;
    OperatingPoint op;
    uint64_t salt = 0;
};

/** Everything one deployment/measurement produces. */
struct RunResult
{
    ChipConfig config;
    /** Chip-wide counter deltas over the measurement window. */
    RunCounters chip;
    /** Window duration in seconds. */
    double seconds = 0.0;
    /** Sensor reading: average chip power in watts (noisy,
     * quantized to milliwatts). */
    double sensorWatts = 0.0;
    /** Per-core IPC over the window. */
    double coreIpc = 0.0;
    /** Operating point this run executed at (the machine's nominal
     * clock unless the caller swept it). */
    double freqGhz = 0.0;
    double voltage = 0.0;
    /**
     * False when the run's supply voltage sat below the workload's
     * hidden Vmin (see GroundTruthParams): the numbers are what a
     * margin-violating machine would report, not trustworthy
     * measurements. On-curve and at-Vmin runs are reliable.
     */
    bool reliable = true;
    /** Whether the operating point's voltage deviates from the
     * machine's V/f curve at its frequency (an undervolt/overvolt
     * experiment rather than a plain DVFS point). */
    bool offCurve = false;

    /**
     * @name Ground-truth oracle (tests and EXPERIMENTS.md only)
     * Never read by MicroProbe or by the power models.
     */
    /**@{*/
    double gtDynamicWatts = 0.0;
    double gtSmtWatts = 0.0;
    double gtCmpWatts = 0.0;
    double gtUncoreWatts = 0.0;
    double gtIdleWatts = 0.0;
    /** The workload's minimum safe voltage at this run's operating
     * point (the boundary `reliable` was judged against). */
    double gtVminVolts = 0.0;
    /**@}*/

    /** Chip-wide event rate (events/second) for a counter value. */
    double
    rate(double counter_value) const
    {
        return seconds > 0 ? counter_value / seconds : 0.0;
    }
};

/**
 * The simulated machine: deploy a micro-benchmark on a CMP/SMT
 * configuration and measure counters and power.
 *
 * Thread safety: run() and idleWatts() are const and touch only
 * local state — concurrent calls on one Machine from campaign
 * worker threads are safe as long as nobody mutates simOptions()
 * concurrently. Results depend only on (program, config, salt), so
 * a parallel campaign reproduces a serial one exactly.
 */
class Machine
{
  public:
    /** Build a machine executing programs over @p isa. */
    explicit Machine(const Isa &isa,
                     const GroundTruthParams &params =
                         GroundTruthParams());

    /**
     * Build a machine whose cache geometry and clock follow a
     * micro-architecture definition (for retargeting the framework
     * to e.g. the POWER7+-like chip with its larger L3).
     */
    Machine(const Isa &isa, const std::vector<CacheGeometry> &geoms,
            double clock_ghz,
            const GroundTruthParams &params = GroundTruthParams());

    /**
     * Deploy one copy of @p prog per hardware thread of @p cfg, warm
     * up, and measure a steady-state window at the nominal
     * operating point.
     *
     * @param salt extra seed material for the sensor noise so
     *             repeated measurements differ slightly, as on real
     *             hardware.
     */
    RunResult run(const Program &prog, const ChipConfig &cfg,
                  uint64_t salt = 0) const;

    /**
     * Deploy at an explicit DVFS operating point. Core and cache
     * latencies are clock-domain cycles and keep their cycle
     * counts; main-memory latency is fixed in nanoseconds, so its
     * cycle count scales with frequency — which is what makes
     * memory-bound workloads speed up sublinearly with f. Dynamic
     * power scales as V^2*f (energy per op scales with V^2, ops per
     * second with f), every static term as V. At the nominal point
     * this is bit-identical to the two-argument overload.
     */
    RunResult run(const Program &prog, const ChipConfig &cfg,
                  const OperatingPoint &op, uint64_t salt = 0) const;

    /**
     * Decode-once batched evaluator: decodes one program on
     * construction and serves run() calls for any number of
     * CMP/SMT x operating-point requests over the decoded form,
     * memoizing core simulations that only differ in core count
     * (the core-level simulation depends on the SMT mode and the
     * effective memory latency alone — core count enters through
     * counter scaling and the contention latency). Results are
     * bit-identical to per-job Machine::run. Not thread-safe; one
     * Batch per worker thread. When the fast path is disabled
     * (MPROBE_NO_BATCH / setSimFastPath) every request falls back
     * to the legacy per-run engine.
     */
    class Batch
    {
      public:
        Batch(const Machine &machine, const Program &prog);

        /** Evaluate one request over the decoded program. */
        RunResult run(const ChipConfig &cfg,
                      const OperatingPoint &op, uint64_t salt = 0);

        /** Distinct core simulations performed so far (tests). */
        size_t simCount() const { return memo.size(); }

      private:
        const Machine &m;
        const Program &prog;
        DecodedProgram decoded;
        SimScratch scratch;
        struct MemoEntry
        {
            int smt;
            int latMem;
            CoreResult core;
        };
        std::vector<MemoEntry> memo;

        const CoreResult &simAt(int smt, int lat_mem);
    };

    /**
     * Evaluate every request of @p points against @p prog through
     * one Batch, in order. points[i] yields exactly what
     * run(prog, points[i].config, points[i].op, points[i].salt)
     * yields, decode and core simulations shared across points.
     */
    std::vector<RunResult>
    runBatch(const Program &prog,
             const std::vector<RunRequest> &points) const;

    /** Sensor reading with no workload: workload-independent power. */
    double idleWatts(const ChipConfig &cfg, uint64_t salt = 0) const;

    /** Idle power at an explicit operating point (scales with V). */
    double idleWatts(const ChipConfig &cfg, const OperatingPoint &op,
                     uint64_t salt = 0) const;

    /** Supply voltage of the hidden V/f curve at @p freq_ghz. */
    double voltageAt(double freq_ghz) const;

    /**
     * The operating point at @p freq_ghz (voltage from the V/f
     * curve); non-positive frequencies select the nominal clock.
     */
    OperatingPoint operatingPoint(double freq_ghz = 0.0) const;

    /** Nominal core clock in GHz (public knowledge, as on real
     * hardware; not an oracle). */
    double clockGhz() const { return params.clockGhz; }

    /** Simulation knobs (iterations, prefetcher, ...). */
    CoreSimOptions &simOptions() { return simOpts; }
    const CoreSimOptions &simOptions() const { return simOpts; }

    /** Ground-truth parameters (oracle; tests only). */
    const GroundTruthParams &groundTruth() const { return params; }

    /**
     * Stable identity of everything that determines measurement
     * results on this machine (ISA, ground-truth parameters,
     * simulation knobs). Campaign result-cache keys incorporate it
     * so cached samples are never replayed on a different machine.
     */
    uint64_t fingerprint() const;

    const Isa &isa() const { return *isaPtr; }

  private:
    const Isa *isaPtr;
    ExecModel exec;
    GroundTruthParams params;
    CoreSimOptions simOpts;

    double staticCmpWatts(int cores) const;
    double sensorize(double watts, uint64_t seed) const;
    /** The hidden workload-dependent minimum safe voltage at
     * @p freq_ghz for a workload running at @p core_ipc. */
    double vminAt(double freq_ghz, double core_ipc) const;

    /** Shared head of every run variant: argument validation. */
    void validateRun(const Program &prog, const ChipConfig &cfg,
                     const OperatingPoint &op) const;
    /** First-pass (uncontended) memory latency at @p lat_scale. */
    int firstPassMemLatency(double lat_scale) const;
    /**
     * Contention-adjusted memory latency for a rerun, or 0 when
     * the first-pass result needs none.
     */
    int contendedMemLatency(const CoreResult &core,
                            const ChipConfig &cfg,
                            double lat_scale) const;
    /** Shared tail of every run variant: power composition and
     * sensor readout from a finished core simulation. */
    RunResult finishRun(const Program &prog, const ChipConfig &cfg,
                        const OperatingPoint &op, uint64_t salt,
                        const CoreResult &core) const;
    /** The pre-batching reference engine (simulateCore). */
    RunResult runLegacy(const Program &prog, const ChipConfig &cfg,
                        const OperatingPoint &op,
                        uint64_t salt) const;
    /** Decode-once engine for a single run (thread-local scratch). */
    RunResult runDecoded(const Program &prog, const ChipConfig &cfg,
                         const OperatingPoint &op,
                         uint64_t salt) const;
};

/**
 * True when run()/Batch use the decoded fast path (the default).
 * The MPROBE_NO_BATCH environment variable (non-empty, not "0")
 * forces the legacy per-run engine everywhere — CI's batched-
 * identity smoke diffs the two paths byte for byte.
 */
bool simFastPathEnabled();

/** Test hook: override the fast-path choice for this process. */
void setSimFastPath(bool enabled);

} // namespace mprobe

#endif // SIM_MACHINE_HH
