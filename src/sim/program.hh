/**
 * @file
 * Executable program representation.
 *
 * A Program is the "binary" the simulated machine runs: the body of
 * one endless loop (the common skeleton of all the paper's
 * micro-benchmarks, Table 2) plus the memory streams its memory
 * instructions walk. MicroProbe's synthesizer produces Programs; the
 * simulator and the C-code emitter consume them.
 */

#ifndef SIM_PROGRAM_HH
#define SIM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace mprobe
{

/**
 * A rotating set of cache-line addresses accessed round-robin by the
 * memory instructions bound to it. The analytical cache model
 * constructs the line sets so that the steady-state hit level of
 * every access is known statically (paper Section 2.1.3).
 */
struct MemStream
{
    /** Byte addresses of line starts, visited round-robin. */
    std::vector<uint64_t> lines;
};

/** One static instruction of the loop body. */
struct ProgInst
{
    /** Opcode index into the Program's ISA. */
    int op = 0;
    /**
     * Register dependency distance: this instruction reads the
     * result of the instruction depDist slots earlier in program
     * order (0 = no register dependency). Wraps across loop
     * iterations.
     */
    int depDist = 0;
    /** Memory stream id for memory operations, -1 otherwise. */
    int stream = -1;
    /**
     * Data activity factor in [0,1] derived from the register /
     * immediate initialization policy: 0 for all-zero data, ~0.5 for
     * constant patterns, ~1 for random data. Consumed by the (hidden)
     * energy model to reproduce data-dependent switching power.
     */
    float toggle = 1.0f;
    /** Taken probability for conditional branches. */
    float takenRate = 1.0f;
};

/**
 * Structure-of-arrays form of a Program, decoded once per program
 * by ExecModel::decode and consumed by simulateCoreDecoded.
 *
 * Everything the simulator's inner loop derives per dispatched
 * instruction — the ExecInfo lookup, the dependency-source modulo,
 * the InstrDef branch test, the data-activity energy product — is
 * resolved here ahead of time, so a batched evaluation of many
 * CMP/SMT/frequency points over one program pays the decode exactly
 * once. The decoded form also bakes the two CoreSimOptions knobs
 * that feed per-instruction constants (mispredict penalty and
 * transition gate); the simulator cross-checks them so a decoded
 * program can never silently run under drifted options.
 */
struct DecodedProgram
{
    /** Program name (panic messages, sensor seeds). */
    std::string name;
    /** Static loop-body length. */
    size_t bodySize = 0;

    /** @name Per body slot (all vectors bodySize long) */
    /**@{*/
    /** Resolved dependency source slot, -1 when independent. */
    std::vector<int32_t> depSrc;
    /** Memory stream id, -1 for non-memory slots. */
    std::vector<int32_t> stream;
    /** Lowest allowed execution unit. */
    std::vector<int8_t> unitFirst;
    /** Alternate allowed unit (dual-issue integers), else -1. */
    std::vector<int8_t> unitSecond;
    /** Pipes occupied on the chosen unit. */
    std::vector<int8_t> pipesNeeded;
    /** Extra fixed-point micro-ops issued alongside. */
    std::vector<int8_t> extraFxuOps;
    /** kMem / kStore / kVsuSteer / kCondBranch bits. */
    std::vector<uint8_t> flags;
    /** Base energy at or above the transition gate. */
    std::vector<uint8_t> highEnergy;
    /** Pipe occupancy per op in cycles. */
    std::vector<double> issueInterval;
    /** Result latency in cycles (memory ops override per level). */
    std::vector<double> latency;
    /** energyNj scaled by the slot's data-activity factor. */
    std::vector<double> actEnergyNj;
    /** Mispredict-debt increment of a conditional branch. */
    std::vector<double> mispredictInc;
    /**@}*/

    /** @name Flattened memory streams */
    /**@{*/
    std::vector<uint64_t> streamLines;
    std::vector<uint32_t> streamOffset;
    std::vector<uint32_t> streamLen;
    /**@}*/

    /** @name Options baked into the per-slot constants */
    /**@{*/
    int mispredictPenalty = 0;
    double transitionGateNj = 0.0;
    /**@}*/

    static constexpr uint8_t kMem = 1;
    static constexpr uint8_t kStore = 2;
    static constexpr uint8_t kVsuSteer = 4;
    static constexpr uint8_t kCondBranch = 8;
};

/** A complete micro-benchmark: an endless loop plus its data. */
struct Program
{
    /** ISA the opcode indices refer to. */
    const Isa *isa = nullptr;
    /** Loop body in program order (the terminating branch included). */
    std::vector<ProgInst> body;
    /** Memory streams referenced by body[].stream. */
    std::vector<MemStream> streams;
    /** Human-readable benchmark name. */
    std::string name;

    /** Number of static instructions in the loop body. */
    size_t size() const { return body.size(); }

    /** Count body instructions satisfying a predicate on InstrDef. */
    template <typename Pred>
    size_t
    countIf(Pred pred) const
    {
        size_t n = 0;
        for (const auto &pi : body)
            if (pred(isa->at(pi.op)))
                ++n;
        return n;
    }
};

} // namespace mprobe

#endif // SIM_PROGRAM_HH
