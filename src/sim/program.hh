/**
 * @file
 * Executable program representation.
 *
 * A Program is the "binary" the simulated machine runs: the body of
 * one endless loop (the common skeleton of all the paper's
 * micro-benchmarks, Table 2) plus the memory streams its memory
 * instructions walk. MicroProbe's synthesizer produces Programs; the
 * simulator and the C-code emitter consume them.
 */

#ifndef SIM_PROGRAM_HH
#define SIM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace mprobe
{

/**
 * A rotating set of cache-line addresses accessed round-robin by the
 * memory instructions bound to it. The analytical cache model
 * constructs the line sets so that the steady-state hit level of
 * every access is known statically (paper Section 2.1.3).
 */
struct MemStream
{
    /** Byte addresses of line starts, visited round-robin. */
    std::vector<uint64_t> lines;
};

/** One static instruction of the loop body. */
struct ProgInst
{
    /** Opcode index into the Program's ISA. */
    int op = 0;
    /**
     * Register dependency distance: this instruction reads the
     * result of the instruction depDist slots earlier in program
     * order (0 = no register dependency). Wraps across loop
     * iterations.
     */
    int depDist = 0;
    /** Memory stream id for memory operations, -1 otherwise. */
    int stream = -1;
    /**
     * Data activity factor in [0,1] derived from the register /
     * immediate initialization policy: 0 for all-zero data, ~0.5 for
     * constant patterns, ~1 for random data. Consumed by the (hidden)
     * energy model to reproduce data-dependent switching power.
     */
    float toggle = 1.0f;
    /** Taken probability for conditional branches. */
    float takenRate = 1.0f;
};

/** A complete micro-benchmark: an endless loop plus its data. */
struct Program
{
    /** ISA the opcode indices refer to. */
    const Isa *isa = nullptr;
    /** Loop body in program order (the terminating branch included). */
    std::vector<ProgInst> body;
    /** Memory streams referenced by body[].stream. */
    std::vector<MemStream> streams;
    /** Human-readable benchmark name. */
    std::string name;

    /** Number of static instructions in the loop body. */
    size_t size() const { return body.size(); }

    /** Count body instructions satisfying a predicate on InstrDef. */
    template <typename Pred>
    size_t
    countIf(Pred pred) const
    {
        size_t n = 0;
        for (const auto &pi : body)
            if (pred(isa->at(pi.op)))
                ++n;
        return n;
    }
};

} // namespace mprobe

#endif // SIM_PROGRAM_HH
