/**
 * @file
 * UarchDef implementation: parser, queries and builtin definition.
 */

#include "uarch/uarch.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

UarchDef::UarchDef(std::string name) : uarchName(std::move(name)) {}

void
UarchDef::setChip(double clock_ghz, int max_cores, int max_smt,
                  int dispatch_width)
{
    clock = clock_ghz;
    cores = max_cores;
    smt = max_smt;
    dispatch = dispatch_width;
}

void
UarchDef::setIpcFormula(const std::string &expr)
{
    ipcExpr = expr;
}

void
UarchDef::addUnit(const UnitInfo &u)
{
    if (hasUnit(u.name))
        fatal(cat("duplicate unit '", u.name, "'"));
    unitList.push_back(u);
}

void
UarchDef::addCache(const CacheInfo &c)
{
    for (const auto &e : cacheList)
        if (e.name == c.name)
            fatal(cat("duplicate cache level '", c.name, "'"));
    cacheList.push_back(c);
}

void
UarchDef::setMemLatency(int cycles, const std::string &pmc)
{
    memLat = cycles;
    memCounter = pmc;
}

const UnitInfo &
UarchDef::unit(const std::string &name) const
{
    for (const auto &u : unitList)
        if (u.name == name)
            return u;
    fatal(cat("unknown functional unit '", name, "' in ",
              uarchName));
}

bool
UarchDef::hasUnit(const std::string &name) const
{
    for (const auto &u : unitList)
        if (u.name == name)
            return true;
    return false;
}

const CacheInfo &
UarchDef::cache(const std::string &name) const
{
    for (const auto &c : cacheList)
        if (c.name == name)
            return c;
    fatal(cat("unknown cache level '", name, "' in ", uarchName));
}

std::vector<CacheGeometry>
UarchDef::cacheGeometries() const
{
    std::vector<CacheGeometry> out;
    for (const auto &c : cacheList)
        out.push_back(c.geom);
    return out;
}

const InstrProps &
UarchDef::props(const std::string &mnemonic) const
{
    auto it = instrProps.find(mnemonic);
    return it == instrProps.end() ? emptyProps : it->second;
}

InstrProps &
UarchDef::propsMut(const std::string &mnemonic)
{
    return instrProps[mnemonic];
}

bool
UarchDef::stresses(const std::string &mnemonic,
                   const std::string &unit_name) const
{
    const InstrProps &p = props(mnemonic);
    for (const auto &u : p.units)
        if (u == unit_name)
            return true;
    return false;
}

size_t
UarchDef::bootstrappedCount() const
{
    size_t n = 0;
    for (const auto &[name, p] : instrProps)
        if (p.complete())
            ++n;
    return n;
}

UarchDef
UarchDef::fromText(const std::string &text, const std::string &origin)
{
    UarchDef def;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::string context = cat(origin, ":", lineno);
        std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        auto fields = splitWs(s);
        const std::string &kw = fields[0];
        auto need = [&](size_t k) {
            if (fields.size() < k + 1)
                fatal(cat("directive '", kw, "' needs ", k,
                          " arguments in ", context));
        };
        auto kv = [&](size_t from, auto &&fn) {
            for (size_t i = from; i < fields.size(); ++i) {
                auto parts = split(fields[i], '=');
                if (parts.size() != 2)
                    fatal(cat("expected key=value, got '",
                              fields[i], "' in ", context));
                fn(parts[0], parts[1]);
            }
        };
        if (kw == "uarch") {
            need(1);
            def.uarchName = fields[1];
        } else if (kw == "clock") {
            need(1);
            def.clock = parseDouble(fields[1], context);
        } else if (kw == "cores") {
            need(1);
            def.cores = static_cast<int>(
                parseInt(fields[1], context));
        } else if (kw == "smt") {
            need(1);
            def.smt = static_cast<int>(parseInt(fields[1], context));
        } else if (kw == "dispatch") {
            need(1);
            def.dispatch = static_cast<int>(
                parseInt(fields[1], context));
        } else if (kw == "ipc") {
            need(1);
            std::string expr;
            for (size_t i = 1; i < fields.size(); ++i)
                expr += (i == 1 ? "" : " ") + fields[i];
            def.ipcExpr = expr;
        } else if (kw == "unit") {
            need(1);
            UnitInfo u;
            u.name = fields[1];
            kv(2, [&](const std::string &k, const std::string &v) {
                if (k == "pipes")
                    u.pipes = static_cast<int>(parseInt(v, context));
                else if (k == "pmc")
                    u.pmc = v;
                else if (k == "area")
                    u.areaMm2 = parseDouble(v, context);
                else if (k == "desc")
                    u.desc = v;
                else
                    fatal(cat("unknown unit key '", k, "' in ",
                              context));
            });
            def.addUnit(u);
        } else if (kw == "cache") {
            need(1);
            CacheInfo c;
            c.name = fields[1];
            kv(2, [&](const std::string &k, const std::string &v) {
                if (k == "size")
                    c.geom.sizeBytes = static_cast<uint64_t>(
                        parseInt(v, context));
                else if (k == "assoc")
                    c.geom.assoc = static_cast<int>(
                        parseInt(v, context));
                else if (k == "line")
                    c.geom.lineBytes = static_cast<int>(
                        parseInt(v, context));
                else if (k == "latency")
                    c.loadToUse = static_cast<int>(
                        parseInt(v, context));
                else if (k == "pmc")
                    c.pmc = v;
                else
                    fatal(cat("unknown cache key '", k, "' in ",
                              context));
            });
            def.addCache(c);
        } else if (kw == "mem") {
            kv(1, [&](const std::string &k, const std::string &v) {
                if (k == "latency")
                    def.memLat = static_cast<int>(
                        parseInt(v, context));
                else if (k == "pmc")
                    def.memCounter = v;
                else
                    fatal(cat("unknown mem key '", k, "' in ",
                              context));
            });
        } else if (kw == "iprop") {
            need(1);
            InstrProps &p = def.propsMut(fields[1]);
            kv(2, [&](const std::string &k, const std::string &v) {
                if (k == "latency")
                    p.latency = parseDouble(v, context);
                else if (k == "throughput")
                    p.throughput = parseDouble(v, context);
                else if (k == "epi")
                    p.epi = parseDouble(v, context);
                else if (k == "power")
                    p.avgPower = parseDouble(v, context);
                else if (k == "units")
                    p.units = split(v, ',');
                else
                    fatal(cat("unknown iprop key '", k, "' in ",
                              context));
            });
        } else {
            fatal(cat("unknown directive '", kw, "' in ", context));
        }
    }
    return def;
}

UarchDef
UarchDef::fromFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(cat("cannot open uarch definition '", path, "'"));
    std::ostringstream os;
    os << f.rdbuf();
    return fromText(os.str(), path);
}

std::string
UarchDef::toText() const
{
    std::ostringstream os;
    os.precision(17);
    os << "uarch " << uarchName << "\n"
       << "clock " << clock << "\n"
       << "cores " << cores << "\n"
       << "smt " << smt << "\n"
       << "dispatch " << dispatch << "\n"
       << "ipc " << ipcExpr << "\n";
    for (const auto &u : unitList) {
        os << "unit " << u.name << " pipes=" << u.pipes
           << " pmc=" << u.pmc << " area=" << u.areaMm2;
        if (!u.desc.empty())
            os << " desc=" << u.desc;
        os << "\n";
    }
    for (const auto &c : cacheList) {
        os << "cache " << c.name << " size=" << c.geom.sizeBytes
           << " assoc=" << c.geom.assoc
           << " line=" << c.geom.lineBytes
           << " latency=" << c.loadToUse << " pmc=" << c.pmc
           << "\n";
    }
    os << "mem latency=" << memLat << " pmc=" << memCounter << "\n";
    for (const auto &[name, p] : instrProps) {
        os << "iprop " << name;
        if (p.latency >= 0)
            os << " latency=" << p.latency;
        if (p.throughput >= 0)
            os << " throughput=" << p.throughput;
        if (p.epi >= 0)
            os << " epi=" << p.epi;
        if (p.avgPower >= 0)
            os << " power=" << p.avgPower;
        if (!p.units.empty()) {
            os << " units=";
            for (size_t i = 0; i < p.units.size(); ++i)
                os << (i ? "," : "") << p.units[i];
        }
        os << "\n";
    }
    return os.str();
}

namespace
{

const char builtin_uarch_text[] = R"UARCH(
# Partial P7-like micro-architecture definition: the three bootstrap
# inputs (functional units + counters, IPC formula, chip shape).
# Per-instruction properties (iprop lines) are discovered by the
# automatic bootstrap process and re-serialized afterwards.
uarch POWER7-like
clock 3.0
cores 8
smt 4
dispatch 6
ipc PM_RUN_INST_CMPL / PM_RUN_CYC
unit FXU pipes=2 pmc=PM_FXU_FIN area=10.8 desc=fixed_point_unit
unit LSU pipes=2 pmc=PM_LSU_FIN area=14.2 desc=load_store_unit
unit VSU pipes=4 pmc=PM_VSU_FIN area=21.5 desc=vector_scalar_unit
unit BRU pipes=1 pmc=PM_BRU_FIN area=3.1 desc=branch_unit
unit CRU pipes=1 pmc=PM_CRU_FIN area=1.9 desc=condition_register_unit
cache L1 size=32768 assoc=8 line=128 latency=2 pmc=PM_DATA_FROM_L1
cache L2 size=262144 assoc=8 line=128 latency=8 pmc=PM_DATA_FROM_L2
cache L3 size=4194304 assoc=8 line=128 latency=26 pmc=PM_DATA_FROM_L3
mem latency=220 pmc=PM_DATA_FROM_MEM
)UARCH";

const char builtin_p7plus_text[] = R"UARCH(
# Partial P7+-like micro-architecture definition: same cores and
# units, higher clock, doubled per-core L3 (the POWER7+ shrink grew
# the L3 substantially). Used to demonstrate that generation
# policies retarget across architectures without modification.
uarch POWER7+-like
clock 3.6
cores 8
smt 4
dispatch 6
ipc PM_RUN_INST_CMPL / PM_RUN_CYC
unit FXU pipes=2 pmc=PM_FXU_FIN area=9.6 desc=fixed_point_unit
unit LSU pipes=2 pmc=PM_LSU_FIN area=12.6 desc=load_store_unit
unit VSU pipes=4 pmc=PM_VSU_FIN area=19.1 desc=vector_scalar_unit
unit BRU pipes=1 pmc=PM_BRU_FIN area=2.8 desc=branch_unit
unit CRU pipes=1 pmc=PM_CRU_FIN area=1.7 desc=condition_register_unit
cache L1 size=32768 assoc=8 line=128 latency=2 pmc=PM_DATA_FROM_L1
cache L2 size=262144 assoc=8 line=128 latency=8 pmc=PM_DATA_FROM_L2
cache L3 size=8388608 assoc=8 line=128 latency=28 pmc=PM_DATA_FROM_L3
mem latency=220 pmc=PM_DATA_FROM_MEM
)UARCH";

} // namespace

const std::string &
builtinP7PlusUarchText()
{
    static const std::string text(builtin_p7plus_text);
    return text;
}

UarchDef
builtinP7PlusUarch()
{
    return UarchDef::fromText(builtinP7PlusUarchText(),
                              "<builtin-p7plus>");
}

const std::string &
builtinP7UarchText()
{
    static const std::string text(builtin_uarch_text);
    return text;
}

UarchDef
builtinP7Uarch()
{
    return UarchDef::fromText(builtinP7UarchText(), "<builtin-p7>");
}

} // namespace mprobe
