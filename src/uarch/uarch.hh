/**
 * @file
 * Micro-architecture definition module (paper Section 2.1.2).
 *
 * Holds the information "related to the specific micro-architecture
 * implementation": functional units and their hierarchy, cache
 * geometry, floorplan areas, the performance counters associated with
 * each component, and — from the ISA point of view — per-instruction
 * latency, throughput, EPI and the mapping between instructions and
 * the components they stress.
 *
 * Like the ISA, the definition is supplied through readable text
 * files. A definition may be *partial*: the paper's automatic
 * bootstrap process (implemented in microprobe/bootstrap) fills in
 * the per-instruction properties by generating and measuring
 * micro-benchmarks, requiring only (a) the functional units and their
 * counters, (b) the IPC formula, and (c) the ISA.
 */

#ifndef UARCH_UARCH_HH
#define UARCH_UARCH_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/cache.hh"

namespace mprobe
{

/** One functional unit of the definition. */
struct UnitInfo
{
    std::string name;      //!< e.g. "FXU"
    int pipes = 1;         //!< execution pipes
    std::string pmc;       //!< associated counter, e.g. "PM_FXU_FIN"
    double areaMm2 = 0.0;  //!< floorplan area (layout information)
    std::string desc;
};

/** One cache level of the definition, with its counter and timing. */
struct CacheInfo
{
    std::string name;      //!< "L1", "L2", "L3"
    CacheGeometry geom;
    int loadToUse = 0;     //!< load-to-use latency in cycles
    std::string pmc;       //!< hit counter, e.g. "PM_DATA_FROM_L2"
};

/**
 * Per-instruction micro-architectural properties. A field below
 * zero means "unknown"; the bootstrap process fills them.
 */
struct InstrProps
{
    double latency = -1.0;     //!< result latency, cycles
    double throughput = -1.0;  //!< sustained IPC, one thread
    double epi = -1.0;         //!< energy per instruction (relative)
    double avgPower = -1.0;    //!< average sustained power (relative)
    /** Names of the units this instruction stresses. */
    std::vector<std::string> units;

    bool
    complete() const
    {
        return latency >= 0 && throughput >= 0 && epi >= 0 &&
               !units.empty();
    }
};

/** The queryable micro-architecture definition. */
class UarchDef
{
  public:
    explicit UarchDef(std::string name = "anonymous");

    /** Parse a definition from text; fatal() on malformed input. */
    static UarchDef fromText(const std::string &text,
                             const std::string &origin = "<string>");

    /** Parse a definition file. */
    static UarchDef fromFile(const std::string &path);

    /** Serialize (including bootstrapped properties). */
    std::string toText() const;

    /** @name Chip-level attributes */
    /**@{*/
    const std::string &name() const { return uarchName; }
    double clockGhz() const { return clock; }
    int maxCores() const { return cores; }
    int maxSmt() const { return smt; }
    int dispatchWidth() const { return dispatch; }
    const std::string &ipcFormula() const { return ipcExpr; }
    /**@}*/

    /** @name Functional units */
    /**@{*/
    const std::vector<UnitInfo> &units() const { return unitList; }
    /** Unit by name; fatal() when absent. */
    const UnitInfo &unit(const std::string &name) const;
    bool hasUnit(const std::string &name) const;
    /**@}*/

    /** @name Cache hierarchy */
    /**@{*/
    const std::vector<CacheInfo> &caches() const { return cacheList; }
    /** Cache level by name ("L1".."L3"); fatal() when absent. */
    const CacheInfo &cache(const std::string &name) const;
    /** Geometries ordered L1..L3 (for CacheHierarchy/model). */
    std::vector<CacheGeometry> cacheGeometries() const;
    /** Main-memory latency in cycles. */
    int memLatency() const { return memLat; }
    /**@}*/

    /** @name Per-instruction properties */
    /**@{*/
    /** Properties for a mnemonic (empty record when unknown). */
    const InstrProps &props(const std::string &mnemonic) const;
    /** Mutable access used by the bootstrap process. */
    InstrProps &propsMut(const std::string &mnemonic);
    /** True when the instruction stresses the named unit
     * (Figure 2, lines 14-16). */
    bool stresses(const std::string &mnemonic,
                  const std::string &unit) const;
    /** Number of instructions with complete properties. */
    size_t bootstrappedCount() const;
    /**@}*/

    /** @name Construction helpers (used by the builtin definition) */
    /**@{*/
    void setChip(double clock_ghz, int max_cores, int max_smt,
                 int dispatch_width);
    void setIpcFormula(const std::string &expr);
    void addUnit(const UnitInfo &u);
    void addCache(const CacheInfo &c);
    void setMemLatency(int cycles, const std::string &pmc);
    const std::string &memPmc() const { return memCounter; }
    /**@}*/

  private:
    std::string uarchName;
    double clock = 3.0;
    int cores = 8;
    int smt = 4;
    int dispatch = 6;
    std::string ipcExpr = "PM_RUN_INST_CMPL / PM_RUN_CYC";
    std::vector<UnitInfo> unitList;
    std::vector<CacheInfo> cacheList;
    int memLat = 220;
    std::string memCounter = "PM_DATA_FROM_MEM";
    std::map<std::string, InstrProps> instrProps;
    InstrProps emptyProps;
};

/**
 * The built-in *partial* P7-like definition: chip attributes, the
 * FXU/LSU/VSU/BRU/CRU units with their counters and areas, the cache
 * hierarchy and the IPC formula — i.e. exactly the three inputs the
 * paper's bootstrap process requires, with every per-instruction
 * property left for the bootstrap to discover.
 */
UarchDef builtinP7Uarch();

/** The raw text behind builtinP7Uarch(). */
const std::string &builtinP7UarchText();

/**
 * A second built-in definition — a P7+-like chip (higher clock,
 * doubled per-core L3) — demonstrating that generation policies
 * retarget across architectures without modification.
 */
UarchDef builtinP7PlusUarch();

/** The raw text behind builtinP7PlusUarch(). */
const std::string &builtinP7PlusUarchText();

} // namespace mprobe

#endif // UARCH_UARCH_HH
