/**
 * @file
 * Argument parser implementation.
 */

#include "util/args.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"
#include "util/str.hh"

namespace mprobe
{

void
ArgParser::addOption(const std::string &name,
                     const std::string &default_value,
                     const std::string &help)
{
    opts[name] = Opt{default_value, help, false, false};
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    opts[name] = Opt{"0", help, true, false};
}

std::string
ArgParser::usage(const std::string &tool_name,
                 const std::string &desc) const
{
    std::ostringstream os;
    os << "usage: " << tool_name << " [options] [args]\n\n"
       << desc << "\n\noptions:\n";
    for (const auto &[name, o] : opts) {
        os << "  --" << name;
        if (!o.isFlag)
            os << " <value> (default: "
               << (o.value.empty() ? "none" : o.value) << ")";
        os << "\n      " << o.help << "\n";
    }
    os << "  --help\n      print this message\n";
    return os.str();
}

void
ArgParser::parse(int argc, const char *const *argv,
                 const std::string &tool_desc)
{
    tool = argc > 0 ? argv[0] : "tool";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::fputs(usage(tool, tool_desc).c_str(), stdout);
            std::exit(0);
        }
        if (a.rfind("--", 0) != 0) {
            pos.push_back(a);
            continue;
        }
        std::string name = a.substr(2);
        std::string value;
        bool has_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = opts.find(name);
        if (it == opts.end())
            fatal(cat("unknown option '--", name, "'\n",
                      usage(tool, tool_desc)));
        if (it->second.isFlag) {
            if (has_value)
                fatal(cat("flag '--", name, "' takes no value"));
            it->second.value = "1";
            it->second.set = true;
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                fatal(cat("option '--", name, "' needs a value"));
            value = argv[++i];
        }
        it->second.value = value;
        it->second.set = true;
    }
}

const std::string &
ArgParser::get(const std::string &name) const
{
    auto it = opts.find(name);
    if (it == opts.end())
        panic(cat("undeclared option '", name, "'"));
    return it->second.value;
}

long
ArgParser::getInt(const std::string &name) const
{
    return parseInt(get(name), cat("--", name));
}

double
ArgParser::getDouble(const std::string &name) const
{
    return parseDouble(get(name), cat("--", name));
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return get(name) == "1";
}

} // namespace mprobe
