/**
 * @file
 * Minimal command-line argument parsing for the tools.
 *
 * Supports `--key value`, `--key=value` and boolean `--flag`
 * switches plus positional arguments, with self-generating usage
 * text. Deliberately tiny; not a general-purpose library.
 */

#ifndef UTIL_ARGS_HH
#define UTIL_ARGS_HH

#include <map>
#include <string>
#include <vector>

namespace mprobe
{

/** Parsed command line with typed accessors. */
class ArgParser
{
  public:
    /** Declare an option with a default value and help text. */
    void addOption(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);

    /** Declare a boolean flag (default false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Unknown options or missing values call fatal()
     * with the usage text; `--help` prints usage and exits 0.
     */
    void parse(int argc, const char *const *argv,
               const std::string &tool_desc);

    /** @name Accessors (after parse) */
    /**@{*/
    const std::string &get(const std::string &name) const;
    long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    const std::vector<std::string> &positional() const
    {
        return pos;
    }
    /**@}*/

    /** Usage text from the declared options. */
    std::string usage(const std::string &tool,
                      const std::string &desc) const;

  private:
    struct Opt
    {
        std::string value;
        std::string help;
        bool isFlag = false;
        bool set = false;
    };
    std::map<std::string, Opt> opts;
    std::vector<std::string> pos;
    std::string tool;
};

} // namespace mprobe

#endif // UTIL_ARGS_HH
