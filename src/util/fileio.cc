/**
 * @file
 * Filesystem helper implementation.
 */

#include "util/fileio.hh"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/logging.hh"

namespace mprobe
{

namespace fs = std::filesystem;

bool
atomicWriteFile(const std::string &path,
                const std::string &content,
                const std::string &what)
{
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp." << ::getpid() << "."
             << std::hash<std::thread::id>{}(
                    std::this_thread::get_id());
    {
        std::ofstream f(tmp_name.str());
        if (!f) {
            warn(cat(what, ": cannot write ", tmp_name.str()));
            return false;
        }
        f << content;
        f.close();
        if (!f) {
            warn(cat(what, ": short write, dropping ",
                     tmp_name.str()));
            std::error_code ec;
            fs::remove(tmp_name.str(), ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp_name.str(), path, ec);
    if (ec) {
        warn(cat(what, ": cannot publish ", path, ": ",
                 ec.message()));
        // The temp must not outlive the failure: shard runs share
        // cache directories, and leaked .tmp.<pid>.<tid> files
        // would accumulate across processes.
        std::error_code rm_ec;
        fs::remove(tmp_name.str(), rm_ec);
        return false;
    }
    return true;
}

} // namespace mprobe
