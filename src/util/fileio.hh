/**
 * @file
 * Small filesystem helpers shared across the framework.
 */

#ifndef UTIL_FILEIO_HH
#define UTIL_FILEIO_HH

#include <string>

namespace mprobe
{

/**
 * Atomically publish @p content at @p path: write to a unique
 * temporary name (pid + thread id, so concurrent writers in
 * different processes sharing one directory never collide), then
 * rename over the target. A short write (e.g. disk full) is
 * dropped, never published — a truncated-but-parseable file would
 * be worse than a missing one. Failures warn (tagged with @p what)
 * and return false; they are not fatal, since callers treat these
 * files as best-effort durability (cache entries, manifests).
 */
bool atomicWriteFile(const std::string &path,
                     const std::string &content,
                     const std::string &what);

} // namespace mprobe

#endif // UTIL_FILEIO_HH
