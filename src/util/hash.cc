/**
 * @file
 * FNV-1a hashing implementation.
 */

#include "util/hash.hh"

#include <cstring>

namespace mprobe
{

uint64_t
hashBytes(const void *data, size_t len, uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
hashStr(const std::string &s)
{
    return hashBytes(s.data(), s.size());
}

uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    // Feed b's bytes into a as an FNV continuation, then avalanche
    // (splitmix64 finalizer) so similar inputs spread apart.
    uint64_t h = hashBytes(&b, sizeof b, a ^ kFnvOffset);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

Hasher &
Hasher::add(uint64_t v)
{
    h = hashBytes(&v, sizeof v, h);
    return *this;
}

Hasher &
Hasher::add(double v)
{
    if (v == 0.0)
        v = 0.0; // collapse -0.0 and +0.0
    uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return add(bits);
}

Hasher &
Hasher::add(const std::string &s)
{
    add(static_cast<uint64_t>(s.size()));
    h = hashBytes(s.data(), s.size(), h);
    return *this;
}

} // namespace mprobe
