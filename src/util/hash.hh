/**
 * @file
 * Deterministic content hashing.
 *
 * One FNV-1a based hash used everywhere a stable 64-bit identity of
 * some content is needed: sensor-noise seeding, campaign result-cache
 * keys and parallel RNG stream derivation. Deliberately not
 * std::hash, whose values are unspecified across implementations —
 * cache files written on one platform must stay valid on another.
 */

#ifndef UTIL_HASH_HH
#define UTIL_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace mprobe
{

/** FNV-1a offset basis. */
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
/** FNV-1a prime. */
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** FNV-1a over a byte range, continuing from @p h. */
uint64_t hashBytes(const void *data, size_t len,
                   uint64_t h = kFnvOffset);

/** FNV-1a of a string. */
uint64_t hashStr(const std::string &s);

/** Mix two hashes into one (order-sensitive). */
uint64_t hashCombine(uint64_t a, uint64_t b);

/**
 * Incremental hasher for structured content. Every add() feeds the
 * value's canonical byte representation, so the digest identifies
 * the full sequence of fields:
 *
 *     Hasher h;
 *     h.add(prog.name).add(cfg.cores).add(cfg.smt);
 *     uint64_t key = h.digest();
 */
class Hasher
{
  public:
    Hasher &add(uint64_t v);
    Hasher &add(int64_t v) { return add(static_cast<uint64_t>(v)); }
    Hasher &add(int v) { return add(static_cast<int64_t>(v)); }
    Hasher &add(bool v) { return add(static_cast<uint64_t>(v)); }
    /** Doubles hash by bit pattern; -0.0 is canonicalized to 0.0. */
    Hasher &add(double v);
    Hasher &add(float v) { return add(static_cast<double>(v)); }
    /** Strings hash length-prefixed so field boundaries matter. */
    Hasher &add(const std::string &s);

    uint64_t digest() const { return h; }

  private:
    uint64_t h = kFnvOffset;
};

} // namespace mprobe

#endif // UTIL_HASH_HH
