/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <cstdio>
#include <exception>

namespace mprobe
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;
thread_local int fatalThrowDepth = 0;
} // namespace

ScopedFatalThrows::ScopedFatalThrows()
{
    ++fatalThrowDepth;
}

ScopedFatalThrows::~ScopedFatalThrows()
{
    --fatalThrowDepth;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    if (fatalThrowDepth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (globalLevel != LogLevel::Quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugTrace(const std::string &msg)
{
    if (globalLevel == LogLevel::Verbose)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace mprobe
