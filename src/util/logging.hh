/**
 * @file
 * Status-message and error-handling helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user errors that
 * make continuing impossible, warn()/inform() report conditions the
 * user should know about without stopping.
 */

#ifndef UTIL_LOGGING_HH
#define UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace mprobe
{

/** Verbosity levels for status messages. */
enum class LogLevel
{
    Quiet,   //!< suppress inform() output
    Normal,  //!< default: warnings and informational messages
    Verbose  //!< additionally print debug traces
};

/** Set the global verbosity level for inform()/debugTrace(). */
void setLogLevel(LogLevel level);

/** Current global verbosity level. */
LogLevel logLevel();

/**
 * Abort with a message. Use when an internal invariant is violated,
 * i.e. a bug in this library rather than bad user input.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error message. Use when user-supplied input (a
 * definition file, a script parameter, ...) makes continuing
 * impossible.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning; execution continues. */
void warn(const std::string &msg);

/** Print an informational status message (suppressed when Quiet). */
void inform(const std::string &msg);

/** Print a debug trace message (only when Verbose). */
void debugTrace(const std::string &msg);

/**
 * Format helper: streams all arguments into one string.
 * Example: panic(cat("bad unit id ", id, " for core ", core)).
 */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace mprobe

#endif // UTIL_LOGGING_HH
