/**
 * @file
 * Status-message and error-handling helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user errors that
 * make continuing impossible, warn()/inform() report conditions the
 * user should know about without stopping.
 */

#ifndef UTIL_LOGGING_HH
#define UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mprobe
{

/** Verbosity levels for status messages. */
enum class LogLevel
{
    Quiet,   //!< suppress inform() output
    Normal,  //!< default: warnings and informational messages
    Verbose  //!< additionally print debug traces
};

/** Set the global verbosity level for inform()/debugTrace(). */
void setLogLevel(LogLevel level);

/** Current global verbosity level. */
LogLevel logLevel();

/**
 * Abort with a message. Use when an internal invariant is violated,
 * i.e. a bug in this library rather than bad user input.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error message. Use when user-supplied input (a
 * definition file, a script parameter, ...) makes continuing
 * impossible. Inside a ScopedFatalThrows guard it throws
 * FatalError instead of exiting, so long-lived callers can survive
 * bad input they did not author.
 */
[[noreturn]] void fatal(const std::string &msg);

/** What fatal() throws while a ScopedFatalThrows guard is live. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard: while alive on a thread, fatal() on that thread
 * throws FatalError instead of exiting the process. The campaign
 * service wraps spec parsing and expansion in this so one
 * malformed dropped spec cannot kill a fleet serving other
 * campaigns — one-shot CLI tools keep the exit-with-message
 * behaviour. Thread-local and nestable; it does not affect
 * worker threads spawned inside the guarded region (run guarded
 * parsing/generation single-threaded).
 */
class ScopedFatalThrows
{
  public:
    ScopedFatalThrows();
    ~ScopedFatalThrows();
    ScopedFatalThrows(const ScopedFatalThrows &) = delete;
    ScopedFatalThrows &operator=(const ScopedFatalThrows &) = delete;
};

/** Print a warning; execution continues. */
void warn(const std::string &msg);

/** Print an informational status message (suppressed when Quiet). */
void inform(const std::string &msg);

/** Print a debug trace message (only when Verbose). */
void debugTrace(const std::string &msg);

/**
 * Format helper: streams all arguments into one string.
 * Example: panic(cat("bad unit id ", id, " for core ", core)).
 */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace mprobe

#endif // UTIL_LOGGING_HH
