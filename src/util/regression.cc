/**
 * @file
 * OLS solver implementation.
 */

#include "util/regression.hh"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "util/logging.hh"

namespace mprobe
{

double
RegressionResult::predict(const std::vector<double> &x) const
{
    if (x.size() != coeffs.size())
        panic(cat("predict: ", x.size(), " predictors for ",
                  coeffs.size(), " coefficients"));
    double y = intercept;
    for (size_t i = 0; i < x.size(); ++i)
        y += coeffs[i] * x[i];
    return y;
}

std::vector<double>
solveLinearSystem(std::vector<double> a, std::vector<double> b,
                  size_t n)
{
    if (a.size() != n * n || b.size() != n)
        panic("solveLinearSystem: bad dimensions");
    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t piv = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col]))
                piv = r;
        if (std::abs(a[piv * n + col]) < 1e-14)
            return {};
        if (piv != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(a[col * n + c], a[piv * n + c]);
            std::swap(b[col], b[piv]);
        }
        double d = a[col * n + col];
        for (size_t r = col + 1; r < n; ++r) {
            double f = a[r * n + col] / d;
            if (f == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a[r * n + c] -= f * a[col * n + c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (size_t ri = n; ri-- > 0;) {
        double s = b[ri];
        for (size_t c = ri + 1; c < n; ++c)
            s -= a[ri * n + c] * x[c];
        x[ri] = s / a[ri * n + ri];
    }
    return x;
}

namespace
{

/**
 * One unconstrained fit over the active predictor columns. Returns
 * coefficients indexed by original column (inactive columns zero)
 * plus the intercept.
 */
std::pair<std::vector<double>, double>
fitActive(const std::vector<std::vector<double>> &x,
          const std::vector<double> &y,
          const std::vector<size_t> &active, bool fit_intercept,
          double ridge)
{
    size_t p = active.size();
    size_t dim = p + (fit_intercept ? 1 : 0);
    size_t cols = x.empty() ? 0 : x[0].size();
    std::vector<double> coeffs(cols, 0.0);
    double intercept = 0.0;
    if (dim == 0)
        return {coeffs, intercept};

    // Normal equations: (A^T A + ridge*I) w = A^T y where A's columns
    // are the active predictors plus an optional all-ones column.
    std::vector<double> ata(dim * dim, 0.0);
    std::vector<double> aty(dim, 0.0);
    auto colval = [&](size_t i, size_t j) -> double {
        return j < p ? x[i][active[j]] : 1.0;
    };
    for (size_t i = 0; i < x.size(); ++i) {
        for (size_t j = 0; j < dim; ++j) {
            double vj = colval(i, j);
            aty[j] += vj * y[i];
            for (size_t k = j; k < dim; ++k)
                ata[j * dim + k] += vj * colval(i, k);
        }
    }
    for (size_t j = 0; j < dim; ++j) {
        for (size_t k = 0; k < j; ++k)
            ata[j * dim + k] = ata[k * dim + j];
        ata[j * dim + j] += ridge;
    }
    std::vector<double> w = solveLinearSystem(ata, aty, dim);
    if (w.empty()) {
        // Singular even with ridge; strengthen and retry once.
        for (size_t j = 0; j < dim; ++j)
            ata[j * dim + j] += 1e-6;
        w = solveLinearSystem(ata, aty, dim);
        if (w.empty())
            return {coeffs, intercept};
    }
    for (size_t j = 0; j < p; ++j)
        coeffs[active[j]] = w[j];
    if (fit_intercept)
        intercept = w[p];
    return {coeffs, intercept};
}

} // namespace

RegressionResult
fitLeastSquares(const std::vector<std::vector<double>> &x,
                const std::vector<double> &y,
                const RegressionOptions &opts)
{
    if (x.size() != y.size())
        panic(cat("fitLeastSquares: ", x.size(), " rows vs ",
                  y.size(), " targets"));
    if (x.empty())
        panic("fitLeastSquares: no samples");
    size_t cols = x[0].size();
    for (const auto &row : x)
        if (row.size() != cols)
            panic("fitLeastSquares: ragged predictor matrix");

    std::vector<size_t> active;
    for (size_t j = 0; j < cols; ++j)
        active.push_back(j);

    auto [coeffs, intercept] =
        fitActive(x, y, active, opts.fitIntercept, opts.ridge);

    if (opts.nonNegative) {
        // Active-set loop: drop the most negative coefficient and
        // refit until all remaining coefficients are non-negative.
        for (;;) {
            size_t worst = cols;
            double worst_val = -1e-12;
            for (size_t j : active) {
                if (coeffs[j] < worst_val) {
                    worst_val = coeffs[j];
                    worst = j;
                }
            }
            if (worst == cols)
                break;
            active.erase(
                std::find(active.begin(), active.end(), worst));
            std::tie(coeffs, intercept) = fitActive(
                x, y, active, opts.fitIntercept, opts.ridge);
        }
        for (auto &c : coeffs)
            if (c < 0.0)
                c = 0.0;
    }

    RegressionResult res;
    res.coeffs = std::move(coeffs);
    res.intercept = intercept;

    double ym = 0.0;
    for (double v : y)
        ym += v;
    ym /= static_cast<double>(y.size());
    double ss_tot = 0.0;
    double ss_res = 0.0;
    res.residuals.resize(y.size());
    for (size_t i = 0; i < y.size(); ++i) {
        double pred = res.predict(x[i]);
        res.residuals[i] = y[i] - pred;
        ss_res += res.residuals[i] * res.residuals[i];
        ss_tot += (y[i] - ym) * (y[i] - ym);
    }
    res.r2 = ss_tot > 1e-300 ? 1.0 - ss_res / ss_tot : 1.0;
    return res;
}

} // namespace mprobe
