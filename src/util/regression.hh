/**
 * @file
 * Ordinary least squares regression.
 *
 * The power-modelling methodology in the paper is built from "a
 * sequence of linear regressions" (Section 4.1). This module provides
 * the shared solver: multiple linear regression via the normal
 * equations with a small ridge fallback for near-singular systems,
 * plus an optional non-negativity constraint used when fitting power
 * weights (a functional unit cannot contribute negative power).
 */

#ifndef UTIL_REGRESSION_HH
#define UTIL_REGRESSION_HH

#include <cstddef>
#include <vector>

namespace mprobe
{

/** Result of a least-squares fit. */
struct RegressionResult
{
    /** Coefficients, one per predictor column. */
    std::vector<double> coeffs;
    /** Intercept term (0 when fitIntercept was false). */
    double intercept = 0.0;
    /** Coefficient of determination on the training data. */
    double r2 = 0.0;
    /** Per-sample residuals (real - predicted). */
    std::vector<double> residuals;

    /** Evaluate the fitted model on one sample. */
    double predict(const std::vector<double> &x) const;
};

/** Options controlling a fit. */
struct RegressionOptions
{
    /** Estimate an intercept term. */
    bool fitIntercept = true;
    /**
     * Clamp negative coefficients to zero and refit the remaining
     * columns (simple active-set NNLS). Used for power weights.
     */
    bool nonNegative = false;
    /** Ridge strength added to the normal-equation diagonal. */
    double ridge = 1e-9;
};

/**
 * Fit y ~ X. @p x is row-major: x[i] is sample i's predictor vector,
 * all rows the same length. Requires at least one sample; degenerate
 * (all-zero) columns receive a zero coefficient.
 */
RegressionResult fitLeastSquares(
    const std::vector<std::vector<double>> &x,
    const std::vector<double> &y,
    const RegressionOptions &opts = RegressionOptions());

/**
 * Solve the dense linear system a*x = b via Gaussian elimination with
 * partial pivoting. @p a is row-major n*n, @p b has n entries.
 * Returns an empty vector when the system is singular.
 */
std::vector<double> solveLinearSystem(std::vector<double> a,
                                      std::vector<double> b,
                                      size_t n);

} // namespace mprobe

#endif // UTIL_REGRESSION_HH
