/**
 * @file
 * xoshiro256** implementation.
 */

#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace mprobe
{

namespace
{

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
Rng::splitmix(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &w : s)
        w = splitmix(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with zero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic(cat("Rng::range with lo ", lo, " > hi ", hi));
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

double
Rng::gaussian()
{
    // Box-Muller; discard the second variate for simplicity.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

size_t
Rng::pick(size_t size)
{
    return static_cast<size_t>(below(size));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

Rng
Rng::fork(uint64_t stream_id) const
{
    // Compress the state and separate it from the stream id with an
    // extra splitmix round each, so ids 0,1,2,... land far apart.
    uint64_t x = s[0] ^ rotl(s[1], 13) ^ rotl(s[2], 29) ^
                 rotl(s[3], 43);
    uint64_t sid = stream_id;
    return Rng(splitmix(x) ^ splitmix(sid) ^
               0xd1b54a32d192ed03ull);
}

} // namespace mprobe
