/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic choices in the framework (random micro-benchmarks,
 * random initial data, GA mutation, sensor noise) flow through Rng so
 * that every experiment is reproducible from a seed.
 */

#ifndef UTIL_RNG_HH
#define UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mprobe
{

/**
 * Small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographic; chosen for speed and reproducibility across
 * platforms (unlike std::mt19937 distributions, whose outputs are not
 * specified identically across standard library implementations, all
 * derived draws here are implemented explicitly).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Standard normal draw (Box-Muller). */
    double gaussian();

    /** Gaussian with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Pick a uniformly random element index of a container size. */
    size_t pick(size_t size);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        if (v.empty())
            return;
        for (size_t i = v.size() - 1; i > 0; --i) {
            size_t j = below(i + 1);
            std::swap(v[i], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

    /**
     * Derive the @p stream_id'th independent child stream without
     * consuming any state: unlike fork(), the result depends only on
     * the generator's current state and the stream id, never on how
     * many other streams were split off first. Parallel campaign
     * jobs each take fork(jobIndex) of one parent so their draws are
     * reproducible regardless of worker count or scheduling order.
     */
    Rng fork(uint64_t stream_id) const;

  private:
    uint64_t s[4];

    static uint64_t splitmix(uint64_t &x);
};

} // namespace mprobe

#endif // UTIL_RNG_HH
