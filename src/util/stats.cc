/**
 * @file
 * Descriptive statistics implementations.
 */

#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mprobe
{

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    double m = mean(v);
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size()));
}

double
minOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return *std::min_element(v.begin(), v.end());
}

double
maxOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return *std::max_element(v.begin(), v.end());
}

double
pctAbsError(double predicted, double real)
{
    double denom = std::max(std::abs(real), 1e-12);
    return std::abs(predicted - real) / denom * 100.0;
}

double
paae(const std::vector<double> &predicted,
     const std::vector<double> &real)
{
    if (predicted.size() != real.size())
        panic(cat("paae: size mismatch ", predicted.size(), " vs ",
                  real.size()));
    if (predicted.empty())
        return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < predicted.size(); ++i)
        s += pctAbsError(predicted[i], real[i]);
    return s / static_cast<double>(predicted.size());
}

} // namespace mprobe
