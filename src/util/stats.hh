/**
 * @file
 * Descriptive statistics helpers shared by models and benches.
 */

#ifndef UTIL_STATS_HH
#define UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace mprobe
{

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Population standard deviation; 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &v);

/** Minimum; 0 for an empty vector. */
double minOf(const std::vector<double> &v);

/** Maximum; 0 for an empty vector. */
double maxOf(const std::vector<double> &v);

/**
 * Percentage absolute error of one prediction: |pred-real|/real*100.
 * The denominator is clamped away from zero.
 */
double pctAbsError(double predicted, double real);

/**
 * Percentage Average Absolute Prediction Error (PAAE), the accuracy
 * metric used throughout the paper's evaluation: the mean of
 * per-sample percentage absolute errors.
 */
double paae(const std::vector<double> &predicted,
            const std::vector<double> &real);

} // namespace mprobe

#endif // UTIL_STATS_HH
