/**
 * @file
 * String utility implementations.
 */

#include "util/str.hh"

#include <cctype>
#include <cstdlib>

#include "util/logging.hh"

namespace mprobe
{

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWs(const std::string &s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (auto &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

long
parseInt(const std::string &s, const std::string &context)
{
    char *end = nullptr;
    std::string t = trim(s);
    long v = std::strtol(t.c_str(), &end, 0);
    if (t.empty() || end == nullptr || *end != '\0')
        fatal(cat("expected integer, got '", s, "' in ", context));
    return v;
}

double
parseDouble(const std::string &s, const std::string &context)
{
    char *end = nullptr;
    std::string t = trim(s);
    double v = std::strtod(t.c_str(), &end);
    if (t.empty() || end == nullptr || *end != '\0')
        fatal(cat("expected number, got '", s, "' in ", context));
    return v;
}

} // namespace mprobe
