/**
 * @file
 * Small string utilities used by the definition-file parsers.
 */

#ifndef UTIL_STR_HH
#define UTIL_STR_HH

#include <string>
#include <vector>

namespace mprobe
{

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char delim);

/** Split on arbitrary whitespace; empty fields are dropped. */
std::vector<std::string> splitWs(const std::string &s);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** True when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Parse a decimal integer; calls fatal() with @p context on failure
 * so definition-file errors point at the offending field.
 */
long parseInt(const std::string &s, const std::string &context);

/** Parse a floating point number; fatal() with @p context on failure. */
double parseDouble(const std::string &s, const std::string &context);

} // namespace mprobe

#endif // UTIL_STR_HH
