/**
 * @file
 * TextTable implementation.
 */

#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace mprobe
{

TextTable::TextTable(std::vector<std::string> headers)
    : head(std::move(headers))
{
    if (head.empty())
        panic("TextTable: no columns");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != head.size())
        panic(cat("TextTable: row with ", row.size(),
                  " cells, expected ", head.size()));
    body.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> width(head.size());
    for (size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : body)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(width[c])) << row[c];
        }
        os << '\n';
    };
    emit(head);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : body)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string q = "\"";
        for (char c : s) {
            if (c == '"')
                q += '"';
            q += c;
        }
        q += '"';
        return q;
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << (c == 0 ? "" : ",") << quote(row[c]);
        os << '\n';
    };
    emit(head);
    for (const auto &row : body)
        emit(row);
}

} // namespace mprobe
