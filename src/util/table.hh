/**
 * @file
 * Fixed-width text table and CSV writers used by the bench harnesses
 * to print paper-style tables and figure series.
 */

#ifndef UTIL_TABLE_HH
#define UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mprobe
{

/**
 * Accumulates rows of strings and renders them as an aligned text
 * table with a header rule, in the spirit of the paper's tables.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render the table as CSV (comma-separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace mprobe

#endif // UTIL_TABLE_HH
