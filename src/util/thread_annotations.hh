/**
 * @file
 * Clang thread-safety analysis support.
 *
 * The concurrency in this codebase is deliberately small — a work
 * queue, a claim directory, a drop-directory service — but every
 * piece of it guards state that feeds bit-identical results, so a
 * forgotten lock is a silent correctness bug, not just a crash.
 * These macros let the lock protocol live in the type system:
 * `GUARDED_BY(mutex)` on the data, `REQUIRES(mutex)` on helpers
 * that assume the lock, and clang's `-Wthread-safety` turns any
 * violation into a compile error on the CI clang leg. On other
 * compilers everything expands to nothing.
 *
 * libstdc++'s std::mutex carries no annotations, so analyzable code
 * must lock through the annotated wrappers below (`Mutex` +
 * `MutexLock`) — a `std::lock_guard<std::mutex>` is invisible to
 * the analysis and would flag every guarded access as unlocked.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#ifndef UTIL_THREAD_ANNOTATIONS_HH
#define UTIL_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define MPROBE_THREAD_ATTR(x) __attribute__((x))
#else
#define MPROBE_THREAD_ATTR(x)
#endif

/** Marks a type as a lockable capability. */
#define CAPABILITY(x) MPROBE_THREAD_ATTR(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define SCOPED_CAPABILITY MPROBE_THREAD_ATTR(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define GUARDED_BY(x) MPROBE_THREAD_ATTR(guarded_by(x))

/** Pointer member whose pointee is guarded by @p x. */
#define PT_GUARDED_BY(x) MPROBE_THREAD_ATTR(pt_guarded_by(x))

/** Function that must be called with the capability held. */
#define REQUIRES(...) \
    MPROBE_THREAD_ATTR(requires_capability(__VA_ARGS__))

/** Function that must be called with the capability NOT held. */
#define EXCLUDES(...) \
    MPROBE_THREAD_ATTR(locks_excluded(__VA_ARGS__))

/** Function that acquires the capability. */
#define ACQUIRE(...) \
    MPROBE_THREAD_ATTR(acquire_capability(__VA_ARGS__))

/** Function that releases the capability. */
#define RELEASE(...) \
    MPROBE_THREAD_ATTR(release_capability(__VA_ARGS__))

/** Function that acquires the capability when returning @p b. */
#define TRY_ACQUIRE(b, ...) \
    MPROBE_THREAD_ATTR(try_acquire_capability(b, __VA_ARGS__))

/** Escape hatch: function checked by reviewers, not the analysis. */
#define NO_THREAD_SAFETY_ANALYSIS \
    MPROBE_THREAD_ATTR(no_thread_safety_analysis)

namespace mprobe
{

/**
 * std::mutex with thread-safety annotations. Same cost, same
 * semantics; exists only so `GUARDED_BY(mutex)` members are
 * actually analyzable (see file comment).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    void lock() ACQUIRE() { m.lock(); }
    void unlock() RELEASE() { m.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    std::mutex m;
};

/** std::lock_guard for Mutex, visible to the analysis. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mu(mutex)
    {
        mu.lock();
    }
    ~MutexLock() RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

} // namespace mprobe

#endif // UTIL_THREAD_ANNOTATIONS_HH
