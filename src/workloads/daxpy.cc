/**
 * @file
 * DAXPY kernel construction.
 *
 * DAXPY streams are sequential (the anti-thesis of the analytical
 * model's scattered streams), so the hardware prefetcher helps them
 * — as it does on the real machine.
 */

#include "workloads/daxpy.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mprobe
{

Program
generateDaxpy(Architecture &arch, size_t footprint_bytes,
              bool vectorized, size_t body_size)
{
    const Isa &isa = arch.isa();
    Program prog;
    prog.isa = &isa;
    prog.name = cat(vectorized ? "daxpy-vsx-" : "daxpy-",
                    footprint_bytes / 1024, "K");

    const int line = 128;
    size_t lines_total =
        std::max<size_t>(2, footprint_bytes / line);
    size_t lines_each = lines_total / 2;

    // Two sequential arrays: x at 1 MB, y at 2 MB (distinct L2/L3
    // sets, far from the analytical-model partitions).
    MemStream xs;
    MemStream ys;
    for (size_t i = 0; i < lines_each; ++i) {
        xs.lines.push_back((1u << 20) + i * line);
        ys.lines.push_back((2u << 20) + i * line);
    }
    prog.streams.push_back(std::move(xs));
    prog.streams.push_back(std::move(ys));

    Isa::OpIndex ld = isa.find(vectorized ? "lxvd2x" : "lfd");
    Isa::OpIndex fma =
        isa.find(vectorized ? "xvmaddadp" : "fmadd");
    Isa::OpIndex st = isa.find(vectorized ? "stxvd2x" : "stfd");
    Isa::OpIndex add = isa.find("addi");
    Isa::OpIndex bdnz = isa.find("bdnz");
    if (ld < 0 || fma < 0 || st < 0 || add < 0 || bdnz < 0)
        fatal("generateDaxpy: ISA misses a required instruction");

    // Unrolled element: lfd x; lfd y; fmadd (consumes the loads);
    // stfd y (consumes the fma); addi index.
    size_t elems = (body_size - 1) / 5;
    for (size_t e = 0; e < elems; ++e) {
        prog.body.push_back({ld, 0, 0, 1.0f, 1.0f});
        prog.body.push_back({ld, 0, 1, 1.0f, 1.0f});
        prog.body.push_back({fma, 1, -1, 1.0f, 1.0f});
        prog.body.push_back({st, 1, 1, 1.0f, 1.0f});
        prog.body.push_back({add, 0, -1, 0.6f, 1.0f});
    }
    prog.body.push_back({bdnz, 0, -1, 1.0f, 1.0f});
    return prog;
}

std::vector<Program>
generateDaxpySet(Architecture &arch, size_t body_size)
{
    std::vector<Program> out;
    for (size_t kb : {4, 8, 16}) {
        out.push_back(
            generateDaxpy(arch, kb * 1024, false, body_size));
        out.push_back(
            generateDaxpy(arch, kb * 1024, true, body_size));
    }
    return out;
}

} // namespace mprobe
