/**
 * @file
 * DAXPY kernels (paper Section 6).
 *
 * "Various DAXPY kernels with different L1 contained memory
 * foot-prints are also executed. This computational kernel is
 * commonly used as a stressmark." Each kernel is the classic
 * y[i] += a * x[i] loop: two loads, a fused multiply-add, a store
 * and the index update, unrolled across the 4K body, walking
 * sequential arrays whose total footprint fits in the L1.
 */

#ifndef WORKLOADS_DAXPY_HH
#define WORKLOADS_DAXPY_HH

#include <vector>

#include "microprobe/arch.hh"
#include "sim/program.hh"

namespace mprobe
{

/**
 * Build a DAXPY kernel with the given total footprint (x plus y
 * arrays, bytes). Footprints above the L1 capacity are allowed
 * (they spill), but the Section-6 kernels stay within it.
 *
 * @param vectorized use VSX vector loads/fma/stores instead of
 *                   scalar floating point.
 */
Program generateDaxpy(Architecture &arch, size_t footprint_bytes,
                      bool vectorized, size_t body_size = 4096);

/** The Section-6 set: scalar and vector kernels at 4/8/16 KB. */
std::vector<Program> generateDaxpySet(Architecture &arch,
                                      size_t body_size = 4096);

} // namespace mprobe

#endif // WORKLOADS_DAXPY_HH
