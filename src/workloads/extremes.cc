/**
 * @file
 * Extreme case construction.
 */

#include "workloads/extremes.hh"

#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"

namespace mprobe
{

namespace
{

Program
buildCase(Architecture &arch, const std::string &name,
          const std::vector<Isa::OpIndex> &cands, int dep,
          const MemDistribution *mem, size_t body, uint64_t seed)
{
    Synthesizer synth(arch, seed);
    synth.addPass<SkeletonPass>(body);
    synth.addPass<InstructionMixPass>(cands);
    if (mem)
        synth.addPass<MemoryModelPass>(*mem);
    synth.addPass<RegisterInitPass>(DataPattern::Random);
    synth.addPass<ImmediateInitPass>(DataPattern::Random);
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::fixed(dep)));
    return synth.synthesize(name);
}

} // namespace

std::vector<ExtremeCase>
generateExtremeCases(Architecture &arch, size_t body_size,
                     uint64_t seed)
{
    const Isa &isa = arch.isa();
    auto fxu_simple = isa.select([](const InstrDef &d) {
        return d.cls == InstrClass::IntSimple && !d.hasImm;
    });
    auto vsu_fast = isa.select([](const InstrDef &d) {
        return d.cls == InstrClass::Vector &&
               d.name.find("div") == std::string::npos &&
               d.name.find("sqrt") == std::string::npos;
    });
    auto l1_loads = isa.select([](const InstrDef &d) {
        return d.isLoad() && !d.update && !d.algebraic;
    });
    auto mem_ops = isa.select([](const InstrDef &d) {
        return d.isMemory() && !d.update && !d.algebraic;
    });

    MemDistribution all_l1{1, 0, 0, 0};
    MemDistribution all_mem{0, 0, 0, 1};

    std::vector<ExtremeCase> out;
    // High activity: independent instructions saturate the unit.
    out.push_back({"FXU High", buildCase(arch, "FXU-High",
                                         fxu_simple, 0, nullptr,
                                         body_size, seed ^ 1)});
    // Low activity: a serial chain trickles one op at a time.
    out.push_back({"FXU Low", buildCase(arch, "FXU-Low", fxu_simple,
                                        1, nullptr, body_size,
                                        seed ^ 2)});
    out.push_back({"L1 Loads", buildCase(arch, "L1-Loads", l1_loads,
                                         0, &all_l1, body_size,
                                         seed ^ 3)});
    out.push_back({"Main memory",
                   buildCase(arch, "Main-memory", mem_ops, 4,
                             &all_mem, body_size, seed ^ 4)});
    out.push_back({"VSU High", buildCase(arch, "VSU-High", vsu_fast,
                                         0, nullptr, body_size,
                                         seed ^ 5)});
    out.push_back({"VSU Low", buildCase(arch, "VSU-Low", vsu_fast, 1,
                                        nullptr, body_size,
                                        seed ^ 6)});
    return out;
}

} // namespace mprobe
