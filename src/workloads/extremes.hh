/**
 * @file
 * Extreme activity workloads (paper Section 4.1.3).
 *
 * "High and low integer (FXU) or vector activity (VSU), only L1
 * loads or only memory activity" — short-period behaviours that are
 * common inside real applications (a tight vector loop on the L1, a
 * memcpy from DRAM) but rare as whole-program averages, which is why
 * workload-trained top-down models mispredict them.
 */

#ifndef WORKLOADS_EXTREMES_HH
#define WORKLOADS_EXTREMES_HH

#include <string>
#include <vector>

#include "microprobe/arch.hh"
#include "sim/program.hh"

namespace mprobe
{

/** One extreme case: a name and its program. */
struct ExtremeCase
{
    std::string name;
    Program program;
};

/**
 * Build the six extreme cases: FXU High, FXU Low, L1 Loads,
 * Main memory, VSU High, VSU Low.
 */
std::vector<ExtremeCase> generateExtremeCases(Architecture &arch,
                                              size_t body_size = 4096,
                                              uint64_t seed =
                                                  0xe71e8e5ull);

} // namespace mprobe

#endif // WORKLOADS_EXTREMES_HH
