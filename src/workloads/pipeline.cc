/**
 * @file
 * Pipeline implementation.
 *
 * The pipeline no longer runs its own measurement loops: it expands
 * the whole training/validation corpus into one per-program
 * configuration plan, measures it with Campaign::measure (worker
 * pool + result cache), and scatters the samples back into the
 * model training sets. The plan reproduces the paper's corpus
 * exactly: every micro-benchmark at 1 core in all SMT modes, a
 * cross-configuration stride of micros and a subset of randoms
 * across all configurations, and every SPEC proxy everywhere.
 */

#include "workloads/pipeline.hh"

#include "campaign/campaign.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "workloads/spec_proxies.hh"

namespace mprobe
{

std::vector<Sample>
ModelExperiment::specAt(const ChipConfig &cfg) const
{
    std::vector<Sample> out;
    for (const auto &s : spec)
        if (s.config.cores == cfg.cores && s.config.smt == cfg.smt)
            out.push_back(s);
    return out;
}

ModelExperiment
runModelPipeline(Architecture &arch, const Machine &machine,
                 const PipelineOptions &opts)
{
    ModelExperiment ex;

    inform("pipeline: generating the Table-2 training suite");
    ex.suite = generateTable2Suite(arch, machine, opts.suite);

    ex.idleWatts = machine.idleWatts(ChipConfig{1, 1});
    ex.buSet.idleWatts = ex.idleWatts;

    auto proxies =
        generateSpecProxies(arch, opts.bodySize, opts.seed);
    if (opts.specCount > 0 &&
        static_cast<size_t>(opts.specCount) < proxies.size())
        proxies.resize(static_cast<size_t>(opts.specCount));

    auto is11 = [](const ChipConfig &c) {
        return c.cores == 1 && c.smt == 1;
    };

    // Plan phase: one config list per program.
    std::vector<Program> progs;
    std::vector<std::vector<ChipConfig>> plan;
    // Per suite entry: random benchmark measured across all
    // configurations (step 3 / TD_Random coverage).
    std::vector<char> random_cross_flag;

    int micro_idx = 0;
    int random_cross = 0;
    size_t cfg_rr = 0;
    for (const auto &gb : ex.suite) {
        std::vector<ChipConfig> cfgs;
        char cross = 0;
        if (gb.category != BenchCategory::Random) {
            // Steps 1 & 2: 1-core measurements in every SMT mode,
            // plus cross-configuration coverage for TD_Micro (one
            // benchmark in microConfigStride gets one rotating
            // non-1-core configuration).
            cfgs = {{1, 1}, {1, 2}, {1, 4}};
            if (opts.microConfigStride > 0 &&
                micro_idx % opts.microConfigStride == 0) {
                const ChipConfig &cfg =
                    opts.configs[cfg_rr++ % opts.configs.size()];
                if (cfg.cores != 1)
                    cfgs.push_back(cfg);
            }
            ++micro_idx;
        } else {
            // Random set: intercept calibration at 1-1, plus a
            // cross-configuration subset for step 3 / TD_Random.
            cfgs = {{1, 1}};
            if (random_cross < opts.randomCrossConfig) {
                ++random_cross;
                cross = 1;
                for (const auto &cfg : opts.configs)
                    if (!is11(cfg))
                        cfgs.push_back(cfg);
            }
        }
        progs.push_back(gb.program);
        plan.push_back(std::move(cfgs));
        random_cross_flag.push_back(cross);
    }
    for (const auto &p : proxies) {
        progs.push_back(p);
        plan.push_back(opts.configs);
    }

    inform("pipeline: measuring the corpus");
    CampaignSpec cspec =
        measurementSpec(opts.threads, opts.cacheDir, opts.salt);
    cspec.configs = opts.configs;
    cspec.shardIndex = opts.shardIndex;
    cspec.shardCount = opts.shardCount;
    // Tag the manifest with the knobs that shaped this corpus, so
    // two pipelines with different corpora (fast vs. full mode)
    // sharing one cache directory get separate manifests instead
    // of accumulating into one.
    {
        Hasher ct;
        ct.add(opts.suite.bodySize)
            .add(opts.suite.perMemoryGroup)
            .add(opts.suite.memoryCount)
            .add(opts.suite.randomCount)
            .add(opts.suite.ipcSearchBudget)
            .add(opts.suite.gaPopulation)
            .add(opts.suite.gaGenerations)
            .add(opts.suite.extendUnitMix)
            .add(opts.suite.seed);
        ct.add(opts.suite.categories.size());
        for (BenchCategory c : opts.suite.categories)
            ct.add(static_cast<int>(c));
        ct.add(opts.randomCrossConfig)
            .add(opts.microConfigStride)
            .add(opts.specCount)
            .add(opts.bodySize)
            .add(opts.seed);
        cspec.corpusTag = ct.digest();
    }
    Campaign campaign(machine, cspec);
    std::vector<Sample> samples = campaign.measure(progs, plan);

    // Scatter phase: samples come back program-major, each
    // program's configs in plan order.
    size_t si = 0;
    for (size_t w = 0; w < ex.suite.size(); ++w) {
        const GeneratedBench &gb = ex.suite[w];
        if (gb.category != BenchCategory::Random) {
            for (size_t k = 0; k < plan[w].size(); ++k) {
                const Sample &s = samples[si++];
                if (k == 0)
                    ex.buSet.microSmt1.push_back(s);
                else if (k <= 2)
                    ex.buSet.microSmtOn.push_back(s);
                ex.microAllConfigs.push_back(s);
            }
        } else {
            Sample s11 = samples[si++];
            ex.buSet.randomSmt1.push_back(s11);
            if (random_cross_flag[w]) {
                // The 1-1 sample serves double duty in the
                // cross-configuration sweep.
                size_t extra = si;
                for (const auto &cfg : opts.configs) {
                    const Sample &s =
                        is11(cfg) ? s11 : samples[extra++];
                    ex.buSet.randomAllConfigs.push_back(s);
                    ex.randomAllConfigs.push_back(s);
                }
                si = extra;
            } else {
                ex.randomAllConfigs.push_back(s11);
            }
        }
    }
    for (size_t p = 0; p < proxies.size(); ++p)
        for (size_t c = 0; c < opts.configs.size(); ++c)
            ex.spec.push_back(samples[si++]);
    if (si != samples.size())
        panic("pipeline: measurement plan / scatter mismatch");

    inform("pipeline: training the models");
    ex.bu = BottomUpModel::train(ex.buSet);
    ex.tdMicro = TopDownModel::train(ex.microAllConfigs, "TD_Micro");
    ex.tdRandom =
        TopDownModel::train(ex.randomAllConfigs, "TD_Random");
    ex.tdSpec = TopDownModel::train(ex.spec, "TD_SPEC");
    return ex;
}

} // namespace mprobe
