/**
 * @file
 * Pipeline implementation.
 */

#include "workloads/pipeline.hh"

#include "util/logging.hh"
#include "workloads/spec_proxies.hh"

namespace mprobe
{

std::vector<Sample>
ModelExperiment::specAt(const ChipConfig &cfg) const
{
    std::vector<Sample> out;
    for (const auto &s : spec)
        if (s.config.cores == cfg.cores && s.config.smt == cfg.smt)
            out.push_back(s);
    return out;
}

ModelExperiment
runModelPipeline(Architecture &arch, const Machine &machine,
                 const PipelineOptions &opts)
{
    ModelExperiment ex;

    inform("pipeline: generating the Table-2 training suite");
    ex.suite = generateTable2Suite(arch, machine, opts.suite);

    ex.idleWatts = machine.idleWatts(ChipConfig{1, 1});
    ex.buSet.idleWatts = ex.idleWatts;

    inform("pipeline: measuring the training corpus");
    int micro_idx = 0;
    int random_cross = 0;
    size_t cfg_rr = 0;
    for (const auto &gb : ex.suite) {
        bool is_random = gb.category == BenchCategory::Random;
        if (!is_random) {
            // Steps 1 & 2: 1-core measurements in every SMT mode.
            for (int smt : {1, 2, 4}) {
                Sample s = makeSample(
                    gb.program.name,
                    machine.run(gb.program, ChipConfig{1, smt}));
                if (smt == 1)
                    ex.buSet.microSmt1.push_back(s);
                else
                    ex.buSet.microSmtOn.push_back(s);
                ex.microAllConfigs.push_back(s);
            }
            // Cross-configuration coverage for TD_Micro.
            if (opts.microConfigStride > 0 &&
                micro_idx % opts.microConfigStride == 0) {
                const ChipConfig &cfg =
                    opts.configs[cfg_rr++ % opts.configs.size()];
                if (cfg.cores != 1) {
                    ex.microAllConfigs.push_back(makeSample(
                        gb.program.name,
                        machine.run(gb.program, cfg)));
                }
            }
            ++micro_idx;
        } else {
            // Random set: intercept calibration at 1-1, plus a
            // cross-configuration subset for step 3 / TD_Random.
            Sample s11 = makeSample(
                gb.program.name,
                machine.run(gb.program, ChipConfig{1, 1}));
            ex.buSet.randomSmt1.push_back(s11);
            if (random_cross < opts.randomCrossConfig) {
                ++random_cross;
                for (const auto &cfg : opts.configs) {
                    Sample s =
                        cfg.cores == 1 && cfg.smt == 1
                            ? s11
                            : makeSample(gb.program.name,
                                         machine.run(gb.program,
                                                     cfg));
                    ex.buSet.randomAllConfigs.push_back(s);
                    ex.randomAllConfigs.push_back(s);
                }
            } else {
                ex.randomAllConfigs.push_back(s11);
            }
        }
    }

    inform("pipeline: measuring the SPEC proxies");
    auto proxies =
        generateSpecProxies(arch, opts.bodySize, opts.seed);
    if (opts.specCount > 0 &&
        static_cast<size_t>(opts.specCount) < proxies.size())
        proxies.resize(static_cast<size_t>(opts.specCount));
    for (const auto &p : proxies)
        for (const auto &cfg : opts.configs)
            ex.spec.push_back(makeSample(p.name,
                                         machine.run(p, cfg)));

    inform("pipeline: training the models");
    ex.bu = BottomUpModel::train(ex.buSet);
    ex.tdMicro = TopDownModel::train(ex.microAllConfigs, "TD_Micro");
    ex.tdRandom =
        TopDownModel::train(ex.randomAllConfigs, "TD_Random");
    ex.tdSpec = TopDownModel::train(ex.spec, "TD_SPEC");
    return ex;
}

} // namespace mprobe
