/**
 * @file
 * The Section-4 experiment pipeline: generate the training suite,
 * measure it across configurations, train the bottom-up and
 * top-down models, and measure the validation workloads.
 *
 * Shared by the figure-regeneration benches and the integration
 * tests; every knob that bounds cost is exposed so tests can run a
 * reduced corpus.
 */

#ifndef WORKLOADS_PIPELINE_HH
#define WORKLOADS_PIPELINE_HH

#include <map>
#include <string>
#include <vector>

#include "power/bottomup.hh"
#include "power/topdown.hh"
#include "util/stats.hh"
#include "workloads/suite.hh"

namespace mprobe
{

/** Corpus-collection knobs. */
struct PipelineOptions
{
    SuiteOptions suite;
    /** Configurations measured (default: all 24). */
    std::vector<ChipConfig> configs = ChipConfig::all();
    /** Random micro-benchmarks measured across all configs. */
    int randomCrossConfig = 80;
    /** Micro (non-random) benches measured across all configs:
     * every benchmark is measured at 1-1/1-2/1-4; additionally one
     * in @p microConfigStride gets each remaining config. */
    int microConfigStride = 4;
    /** SPEC proxies to include (0 = all 28). */
    int specCount = 0;
    /** Loop body size for SPEC proxies / extremes. */
    size_t bodySize = 4096;
    uint64_t seed = 0x9e11e5ull;

    /**
     * @name Campaign execution
     * The pipeline routes every measurement through
     * Campaign::measure; these knobs configure the engine. Results
     * are thread-count-invariant (each job's measurement salt
     * derives from its content hash, not from scheduling).
     */
    /**@{*/
    /** Measurement worker threads (0 = auto, 1 = serial). */
    int threads = 0;
    /** On-disk result cache directory ("" = off). */
    std::string cacheDir;
    /** Extra salt mixed into each job's measurement seed. */
    uint64_t salt = 0;
    /**
     * Shard selection (see CampaignSpec): with shardCount > 1 the
     * pipeline measures only its slice of the corpus into the
     * shared cache; off-shard samples come from the cache or stay
     * zero placeholders, so a sharded run warms the cache and the
     * final unsharded run trains the models from all cache hits.
     * Needs cacheDir.
     */
    int shardIndex = 0;
    int shardCount = 1;
    /**@}*/
};

/** Everything measured and trained. */
struct ModelExperiment
{
    /** The generated Table-2 suite (programs + metadata). */
    std::vector<GeneratedBench> suite;

    /** Training samples. */
    BottomUpTrainingSet buSet;
    std::vector<Sample> microAllConfigs; //!< TD_Micro training
    std::vector<Sample> randomAllConfigs; //!< TD_Random training

    /** SPEC proxy samples for every (benchmark, config). */
    std::vector<Sample> spec;

    /** Trained models. */
    BottomUpModel bu;
    TopDownModel tdMicro;
    TopDownModel tdRandom;
    TopDownModel tdSpec;

    /** Measured idle power (workload-independent). */
    double idleWatts = 0.0;

    /** SPEC samples of one configuration. */
    std::vector<Sample> specAt(const ChipConfig &cfg) const;

    /** PAAE of a model over a set of samples. */
    template <typename Model>
    double
    paaeOf(const Model &m, const std::vector<Sample> &ss) const
    {
        std::vector<double> pred, real;
        for (const auto &s : ss) {
            pred.push_back(m.predict(s));
            real.push_back(s.powerWatts);
        }
        return paae(pred, real);
    }
};

/**
 * Run the full pipeline: generate, measure, train.
 * @p arch must already be bootstrapped when IPC-targeted generation
 * should use measured latencies (it falls back to ISA guesses
 * otherwise).
 */
ModelExperiment
runModelPipeline(Architecture &arch, const Machine &machine,
                 const PipelineOptions &opts = PipelineOptions());

} // namespace mprobe

#endif // WORKLOADS_PIPELINE_HH
