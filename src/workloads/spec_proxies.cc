/**
 * @file
 * SPEC proxy generation.
 */

#include "workloads/spec_proxies.hh"

#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "util/logging.hh"

namespace mprobe
{

const std::vector<SpecRecipe> &
specRecipes()
{
    // Class mixes and memory profiles follow the broad published
    // characterizations: e.g. mcf/lbm/libquantum memory-bound,
    // povray/namd/gamess FP-compute-bound, perlbench/gcc/gobmk/sjeng
    // branchy integer, bwaves/leslie3d/GemsFDTD vector codes with
    // large footprints.
    //        name        int  mul  fp   ld   st   br   l1   l2   l3   mem dLo dHi  taken
    static const std::vector<SpecRecipe> recipes = {
        {"perlbench", .34, .03, .01, .26, .12, .24, .92, .06, .02, .00, 2, 10, .65},
        {"bzip2",     .36, .04, .00, .28, .12, .20, .80, .14, .05, .01, 3, 14, .60},
        {"gcc",       .32, .03, .01, .26, .14, .24, .82, .10, .05, .03, 2, 10, .62},
        {"bwaves",    .12, .02, .46, .30, .08, .02, .62, .18, .12, .08, 6, 22, .95},
        {"gamess",    .20, .10, .40, .24, .03, .03, .94, .04, .02, .00, 10, 32, .92},
        {"mcf",       .30, .02, .00, .38, .08, .22, .48, .12, .14, .26, 2,  8, .55},
        {"milc",      .10, .02, .42, .32, .12, .02, .55, .15, .15, .15, 6, 22, .95},
        {"zeusmp",    .14, .03, .42, .28, .11, .02, .70, .14, .10, .06, 5, 20, .93},
        {"gromacs",   .20, .04, .42, .26, .06, .02, .90, .06, .03, .01, 8, 28, .90},
        {"cactusADM", .10, .02, .50, .26, .10, .02, .60, .18, .12, .10, 6, 22, .96},
        {"leslie3d",  .10, .02, .46, .30, .10, .02, .58, .18, .14, .10, 6, 22, .95},
        {"namd",      .16, .06, .48, .24, .03, .03, .93, .05, .02, .00, 8, 30, .92},
        {"gobmk",     .38, .03, .00, .26, .10, .23, .88, .08, .03, .01, 2,  9, .58},
        {"dealII",    .22, .03, .30, .26, .09, .10, .85, .09, .04, .02, 4, 16, .80},
        {"soplex",    .24, .03, .18, .32, .09, .14, .70, .14, .09, .07, 3, 14, .72},
        {"povray",    .20, .08, .40, .26, .03, .03, .95, .03, .02, .00, 8, 30, .85},
        {"calculix",  .16, .03, .44, .24, .09, .04, .88, .07, .04, .01, 5, 20, .90},
        {"hmmer",     .40, .05, .00, .32, .13, .10, .93, .05, .02, .00, 4, 18, .85},
        {"sjeng",     .38, .04, .00, .25, .10, .23, .90, .07, .02, .01, 2,  9, .58},
        {"GemsFDTD",  .10, .02, .44, .30, .12, .02, .52, .18, .16, .14, 6, 22, .96},
        {"libquantum",.26, .04, .04, .40, .10, .16, .40, .10, .14, .36, 4, 16, .88},
        {"h264ref",   .28, .06, .16, .32, .10, .08, .90, .07, .02, .01, 8, 26, .80},
        {"tonto",     .16, .03, .48, .22, .08, .03, .86, .08, .04, .02, 5, 20, .90},
        {"lbm",       .10, .02, .36, .30, .20, .02, .42, .12, .14, .32, 6, 24, .97},
        {"omnetpp",   .30, .02, .01, .34, .12, .21, .62, .16, .12, .10, 2, 10, .60},
        {"astar",     .34, .03, .01, .32, .10, .20, .68, .14, .10, .08, 2, 10, .60},
        {"sphinx3",   .18, .03, .36, .30, .09, .04, .72, .14, .09, .05, 4, 18, .88},
        {"xalancbmk", .30, .02, .00, .34, .12, .22, .72, .14, .08, .06, 2, 10, .62},
    };
    return recipes;
}

Program
generateSpecProxy(Architecture &arch, const SpecRecipe &r,
                  size_t body_size, uint64_t seed)
{
    const Isa &isa = arch.isa();
    auto by = [&](auto pred) { return isa.select(pred); };
    auto simple_int = by([](const InstrDef &d) {
        return d.cls == InstrClass::IntSimple;
    });
    auto complex_int = by([](const InstrDef &d) {
        return d.cls == InstrClass::IntComplex &&
               d.name.find("div") == std::string::npos;
    });
    auto fpvec = by([](const InstrDef &d) {
        return (d.cls == InstrClass::Float ||
                d.cls == InstrClass::Vector) &&
               d.name.find("div") == std::string::npos &&
               d.name.find("sqrt") == std::string::npos;
    });
    auto loads = isa.loads();
    auto stores = isa.stores();

    std::vector<Isa::OpIndex> cands;
    std::vector<double> w;
    auto push_group = [&](const std::vector<Isa::OpIndex> &g,
                          double weight) {
        if (g.empty() || weight <= 0.0)
            return;
        // Scientific FP codes are dominated by fused multiply-adds
        // and wide vector loads, not by moves/logicals: weight
        // 3-source compute and vector-data memory ops higher.
        double total = 0.0;
        std::vector<double> gw(g.size());
        for (size_t i = 0; i < g.size(); ++i) {
            const InstrDef &d = isa.at(g[i]);
            gw[i] = d.srcs >= 3 ? 3.0 : 1.0;
            if (d.isMemory() && d.vectorData)
                gw[i] = 2.5;
            total += gw[i];
        }
        for (size_t i = 0; i < g.size(); ++i) {
            cands.push_back(g[i]);
            w.push_back(weight * gw[i] / total);
        }
    };
    push_group(simple_int, r.wInt);
    push_group(complex_int, r.wMul);
    push_group(fpvec, r.wFp);
    push_group(loads, r.wLoad);
    push_group(stores, r.wStore);

    // Branch share is realized as a branch every 1/wBranch slots.
    size_t branch_period =
        r.wBranch > 0.01
            ? static_cast<size_t>(1.0 / r.wBranch)
            : body_size + 1;

    Synthesizer synth(arch, seed);
    synth.addPass<SkeletonPass>(body_size);
    synth.addPass<InstructionMixPass>(cands, w);
    synth.addPass<MemoryModelPass>(
        MemDistribution{r.l1, r.l2, r.l3, r.mem});
    synth.addPass<RegisterInitPass>(DataPattern::Random);
    synth.addPass<ImmediateInitPass>(DataPattern::Random);
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(r.depLo, r.depHi)));
    if (branch_period <= body_size)
        synth.addPass<BranchModelPass>(
            branch_period, static_cast<float>(r.branchTaken));
    return synth.synthesize(r.name);
}

std::vector<Program>
generateSpecProxies(Architecture &arch, size_t body_size,
                    uint64_t seed)
{
    std::vector<Program> out;
    uint64_t s = seed;
    for (const auto &r : specRecipes()) {
        out.push_back(generateSpecProxy(arch, r, body_size, s));
        s = s * 6364136223846793005ull + 1442695040888963407ull;
    }
    return out;
}

} // namespace mprobe
