/**
 * @file
 * SPEC CPU2006 proxy workloads.
 *
 * The paper validates its models against the 28 SPEC CPU2006
 * benchmarks run to completion on real hardware. SPEC itself is
 * proprietary and needs a full-system substrate, so the validation
 * role is filled by *proxies*: per-benchmark synthetic programs
 * generated through MicroProbe with instruction-class mixes, memory
 * behaviour and ILP profiles modelled on the published
 * characterizations of each benchmark (integer vs floating point,
 * branchy vs straight-line, cache-resident vs memory-bound). Each
 * proxy is a realistic heterogeneous workload that was *not* part of
 * the model training sets, which is the property the validation
 * experiments need.
 */

#ifndef WORKLOADS_SPEC_PROXIES_HH
#define WORKLOADS_SPEC_PROXIES_HH

#include <string>
#include <vector>

#include "microprobe/arch.hh"
#include "sim/program.hh"

namespace mprobe
{

/** Recipe describing one proxy's behaviour. */
struct SpecRecipe
{
    std::string name;
    /** Class weights: simple int, complex int, fp/vector scalar+simd,
     * loads, stores, branches (normalized internally). */
    double wInt = 0.0;
    double wMul = 0.0;
    double wFp = 0.0;
    double wLoad = 0.0;
    double wStore = 0.0;
    double wBranch = 0.0;
    /** Memory behaviour across L1/L2/L3/MEM. */
    double l1 = 1.0, l2 = 0.0, l3 = 0.0, mem = 0.0;
    /** ILP: dependency distances drawn from [depLo, depHi]. */
    int depLo = 2, depHi = 12;
    /** Taken rate of the inner conditional branches. */
    double branchTaken = 0.7;
};

/** The 28 benchmark recipes (12 SPECint + 16 SPECfp). */
const std::vector<SpecRecipe> &specRecipes();

/** Generate every proxy program over @p arch. */
std::vector<Program> generateSpecProxies(Architecture &arch,
                                         size_t body_size = 4096,
                                         uint64_t seed = 0x57ecull);

/** Generate one proxy from its recipe. */
Program generateSpecProxy(Architecture &arch, const SpecRecipe &r,
                          size_t body_size, uint64_t seed);

} // namespace mprobe

#endif // WORKLOADS_SPEC_PROXIES_HH
