/**
 * @file
 * Stressmark construction and exploration.
 */

#include "workloads/stressmarks.hh"

#include <algorithm>

#include "campaign/queue.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "util/logging.hh"

namespace mprobe
{

Program
buildStressmark(Architecture &arch,
                const std::vector<Isa::OpIndex> &seq,
                const std::string &name, size_t body_size)
{
    Synthesizer synth(arch, 0x57e55ull);
    synth.addPass<SkeletonPass>(body_size);
    synth.addPass<SequencePass>(seq);
    // Keep all memory accesses resident in the L1: no stalls.
    synth.addPass<MemoryModelPass>(MemDistribution{1, 0, 0, 0});
    synth.addPass<RegisterInitPass>(DataPattern::Random);
    synth.addPass<ImmediateInitPass>(DataPattern::Random);
    // No dependencies: maximum activity.
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::none()));
    return synth.synthesize(name);
}

std::vector<Isa::OpIndex>
expertPicks(const Architecture &arch)
{
    const Isa &isa = arch.isa();
    return {isa.find("mullw"), isa.find("xvmaddadp"),
            isa.find("lxvd2x")};
}

std::vector<Isa::OpIndex>
microprobePicks(const Architecture &arch)
{
    const Isa &isa = arch.isa();
    const UarchDef &ua = arch.uarch();
    const char *compute_units[] = {"FXU", "LSU", "VSU", "BRU",
                                   "CRU"};

    auto category_units =
        [&](const InstrProps &p) -> std::vector<std::string> {
        // Category membership ignores cache levels and unit
        // multiplicities ("2FXU" counts as FXU).
        std::vector<std::string> units;
        for (const auto &u : p.units) {
            for (const char *cu : compute_units) {
                if (u == cu || u == cat("2", cu) ||
                    u == cat("3", cu)) {
                    units.push_back(cu);
                    break;
                }
            }
        }
        return units;
    };

    std::vector<Isa::OpIndex> picks;
    for (const char *target : {"FXU", "LSU", "VSU"}) {
        Isa::OpIndex best = -1;
        double best_product = -1.0;
        for (size_t i = 0; i < isa.size(); ++i) {
            auto op = static_cast<Isa::OpIndex>(i);
            const InstrProps &p = ua.props(isa.at(op).name);
            if (!p.complete())
                continue;
            auto units = category_units(p);
            // Exactly the target unit: its pure category.
            if (units.size() != 1 || units[0] != target)
                continue;
            double product = p.throughput * p.epi;
            if (product > best_product) {
                best_product = product;
                best = op;
            }
        }
        if (best < 0)
            fatal(cat("microprobePicks: no characterized "
                      "instruction stresses only ", target,
                      "; run the bootstrap first"));
        picks.push_back(best);
    }
    return picks;
}

std::vector<Program>
expertManualSet(Architecture &arch, size_t body_size)
{
    auto p = expertPicks(arch);
    const Isa::OpIndex mul = p[0];
    const Isa::OpIndex fma = p[1];
    const Isa::OpIndex ld = p[2];

    // What a practiced stressmark writer reasons about: each unit
    // has (at least) two pipes, so issue its instruction in
    // back-to-back pairs to keep both pipes busy, rotating over the
    // units. Pair-granular orderings look optimal on paper; the
    // DSE later shows finer interleavings draw more power — the
    // non-obvious gap the paper reports between hand-crafted and
    // explored stressmarks.
    const std::vector<std::vector<Isa::OpIndex>> seqs = {
        {mul, mul, fma, fma, ld, ld},
        {fma, fma, ld, ld, mul, mul},
        {ld, ld, mul, mul, fma, fma},
        {mul, mul, ld, ld, fma, fma},
        {fma, fma, mul, mul, ld, ld},
        {ld, ld, fma, fma, mul, mul},
    };
    std::vector<Program> out;
    int i = 0;
    for (const auto &s : seqs)
        out.push_back(buildStressmark(
            arch, s, cat("expert-manual-", i++), body_size));
    return out;
}

StressmarkExploration
exploreSequences(Architecture &arch, Campaign &campaign,
                 const std::vector<Isa::OpIndex> &triple,
                 const ChipConfig &config, size_t seq_len,
                 size_t body_size, size_t max_points)
{
    if (triple.size() < 2)
        fatal("exploreSequences: need at least 2 candidates");
    for (auto op : triple)
        if (op < 0)
            fatal("exploreSequences: invalid candidate opcode");

    std::vector<ParamDomain> space(
        seq_len,
        ParamDomain{"slot", 0,
                    static_cast<int>(triple.size()) - 1});

    // Admissible = the sequence exercises every candidate at least
    // once (the paper's 540-point space for 6 slots over 3).
    auto filter = [&](const DesignPoint &pt) {
        for (size_t c = 0; c < triple.size(); ++c)
            if (std::find(pt.begin(), pt.end(),
                          static_cast<int>(c)) == pt.end())
                return false;
        return true;
    };

    // Enumerate first, then build and measure the whole batch
    // through the campaign engine: sequences are independent, so
    // the pool and the result cache apply; sample order is point
    // order.
    ExhaustiveSearch search(filter, max_points);
    std::vector<DesignPoint> points = search.enumerate(space);

    // Program construction fans out on the same work queue the
    // measurement phase uses (the campaign's resolved worker
    // count): each candidate synthesizes from its own point and
    // writes only its own pre-allocated slot, so the program list —
    // and everything downstream of it, job keys included — is
    // bit-identical at any worker count. Synthesis is pure per
    // point (fixed synthesizer seed, no shared mutable state).
    std::vector<Program> progs(points.size());
    parallelFor(
        campaign.specRef().threads, points.size(),
        [&](size_t i) {
            std::vector<Isa::OpIndex> seq;
            seq.reserve(seq_len);
            for (int g : points[i])
                seq.push_back(triple[static_cast<size_t>(g)]);
            progs[i] = buildStressmark(
                arch, seq, cat("stress-", config.label(), "-", i),
                body_size);
        },
        "stressmark synthesis");
    std::vector<Sample> samples = campaign.measure(progs, {config});

    StressmarkExploration out;
    out.truncated = search.truncated();
    out.evaluations = points.size();
    out.powers.reserve(samples.size());
    out.ipcs.reserve(samples.size());
    size_t best = 0;
    for (size_t i = 0; i < samples.size(); ++i) {
        out.powers.push_back(samples[i].powerWatts);
        out.ipcs.push_back(samples[i].coreIpc);
        if (samples[i].powerWatts > out.powers[best])
            best = i;
    }
    if (!samples.empty()) {
        out.bestPower = out.powers[best];
        for (int g : points[best])
            out.bestSeq.push_back(triple[static_cast<size_t>(g)]);
    }
    return out;
}

StressmarkExploration
exploreSequences(Architecture &arch, const Machine &machine,
                 const std::vector<Isa::OpIndex> &triple,
                 const ChipConfig &config, size_t seq_len,
                 size_t body_size, size_t max_points)
{
    Campaign campaign(machine, measurementSpec());
    return exploreSequences(arch, campaign, triple, config,
                            seq_len, body_size, max_points);
}

} // namespace mprobe
