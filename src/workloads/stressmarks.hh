/**
 * @file
 * Max-power stressmark generation (paper Section 6).
 *
 * Three candidate sets are compared against the SPEC maximum power:
 *
 *  - "Expert manual": hand-crafted interleavings of the instructions
 *    an expert would pick (mullw, xvmaddadp, lxvd2x — wide datapath,
 *    high throughput, one per unit);
 *  - "Expert DSE": the exhaustive exploration of every sequence of 6
 *    instructions over those three candidates that uses all of them
 *    — the paper's 540 combinations;
 *  - "MicroProbe": the same exploration, but over the instructions
 *    MicroProbe itself selects as having the highest IPC*EPI product
 *    within each functional-unit category, using the bootstrapped
 *    EPI/IPC/unit information (no expert required).
 *
 * Every stressmark is an endless 4K loop of the replicated sequence
 * with no dependencies and L1-resident memory accesses, deployed on
 * every hardware thread.
 */

#ifndef WORKLOADS_STRESSMARKS_HH
#define WORKLOADS_STRESSMARKS_HH

#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "microprobe/arch.hh"
#include "microprobe/dse.hh"
#include "sim/machine.hh"

namespace mprobe
{

/** Build one stressmark: @p seq replicated across a 4K loop. */
Program buildStressmark(Architecture &arch,
                        const std::vector<Isa::OpIndex> &seq,
                        const std::string &name,
                        size_t body_size = 4096);

/** The expert's three candidate instructions. */
std::vector<Isa::OpIndex> expertPicks(const Architecture &arch);

/**
 * MicroProbe's three candidates: the instruction with the highest
 * throughput*EPI product among those stressing exactly {FXU},
 * exactly {LSU} and exactly {VSU} (cache levels ignored for
 * category membership), from the bootstrapped properties.
 */
std::vector<Isa::OpIndex> microprobePicks(const Architecture &arch);

/** A small set of hand-crafted orderings over the expert picks. */
std::vector<Program> expertManualSet(Architecture &arch,
                                     size_t body_size = 4096);

/** Result of exploring one candidate triple exhaustively. */
struct StressmarkExploration
{
    /** Power of every admissible sequence (watts), one SMT mode. */
    std::vector<double> powers;
    /** Core IPC of every admissible sequence (parallel to powers);
     * the paper analyses the power spread among the sequences that
     * reach the maximum IPC — same mix, same activity, different
     * order. */
    std::vector<double> ipcs;
    /** Best sequence found. */
    std::vector<Isa::OpIndex> bestSeq;
    double bestPower = 0.0;
    /** Evaluations performed. */
    size_t evaluations = 0;
    /**
     * True when the enumeration hit its point budget before
     * covering every admissible sequence: powers/ipcs cover only a
     * prefix of the space, so min/mean/max reports over them are
     * partial. Figure-9 output marks such sets.
     */
    bool truncated = false;
};

/**
 * Exhaustively explore all sequences of @p seq_len over @p triple
 * that contain every candidate at least once (540 points for
 * seq_len 6 over 3 candidates), measuring power on @p config.
 *
 * The admissible sequences are enumerated up front and measured as
 * one batch through @p campaign — the engine's worker pool and
 * result cache replace the per-point serial loop, and a cached
 * exploration re-runs in milliseconds. Enumeration stops at
 * @p max_points, flagging `truncated` in the result.
 */
StressmarkExploration
exploreSequences(Architecture &arch, Campaign &campaign,
                 const std::vector<Isa::OpIndex> &triple,
                 const ChipConfig &config, size_t seq_len = 6,
                 size_t body_size = 4096,
                 size_t max_points = 2'000'000);

/**
 * Convenience overload: explore with a throwaway measurement-only
 * campaign (auto worker count, no cache) over @p machine.
 */
StressmarkExploration
exploreSequences(Architecture &arch, const Machine &machine,
                 const std::vector<Isa::OpIndex> &triple,
                 const ChipConfig &config, size_t seq_len = 6,
                 size_t body_size = 4096,
                 size_t max_points = 2'000'000);

} // namespace mprobe

#endif // WORKLOADS_STRESSMARKS_HH
