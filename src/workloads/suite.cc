/**
 * @file
 * Table-2 suite generation.
 */

#include "workloads/suite.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

#include "campaign/queue.hh"
#include "microprobe/dse.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "util/logging.hh"

namespace mprobe
{

const char *
benchCategoryName(BenchCategory c)
{
    switch (c) {
      case BenchCategory::SimpleInteger:  return "Simple Integer";
      case BenchCategory::ComplexInteger: return "Complex Integer";
      case BenchCategory::Integer:        return "Integer";
      case BenchCategory::FloatVector:    return "Float/Vector";
      case BenchCategory::UnitMix:        return "Unit Mix";
      case BenchCategory::MemoryGroup:    return "Memory group";
      case BenchCategory::Random:         return "Random";
    }
    panic("benchCategoryName: bad category");
}

namespace
{

/** Bootstrapped latency with a class-based fallback. */
double
knownLatency(const Architecture &arch, Isa::OpIndex op)
{
    const InstrDef &d = arch.isa().at(op);
    const InstrProps &p = arch.uarch().props(d.name);
    if (p.latency > 0)
        return p.latency;
    // ISA-only fallback guesses by class.
    switch (d.cls) {
      case InstrClass::IntSimple:  return 1.0;
      case InstrClass::IntComplex: return 4.0;
      case InstrClass::Load:       return 2.0;
      case InstrClass::Store:      return 1.0;
      case InstrClass::Float:
      case InstrClass::Vector:     return 6.0;
      case InstrClass::Decimal:    return 15.0;
      default:                     return 1.0;
    }
}

double
avgLatency(const Architecture &arch,
           const std::vector<Isa::OpIndex> &ops)
{
    if (ops.empty())
        return 1.0;
    double s = 0.0;
    for (auto op : ops)
        s += knownLatency(arch, op);
    return s / static_cast<double>(ops.size());
}

/** Build the (d, slow%)-parameterized mix benchmark. */
Program
buildMixBench(Architecture &arch,
              const std::vector<Isa::OpIndex> &fast,
              const std::vector<Isa::OpIndex> &slow, int dep,
              int slow_pct, size_t body, const std::string &name,
              uint64_t seed)
{
    std::vector<Isa::OpIndex> cands;
    std::vector<double> weights;
    double q = slow_pct / 100.0;
    for (auto op : fast) {
        cands.push_back(op);
        weights.push_back((1.0 - q) /
                          static_cast<double>(fast.size()));
    }
    if (!slow.empty() && q > 0.0) {
        for (auto op : slow) {
            cands.push_back(op);
            weights.push_back(q / static_cast<double>(slow.size()));
        }
    }
    Synthesizer synth(arch, seed);
    synth.addPass<SkeletonPass>(body);
    synth.addPass<InstructionMixPass>(cands, weights);
    synth.addPass<RegisterInitPass>(DataPattern::Random);
    synth.addPass<ImmediateInitPass>(DataPattern::Random);
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::fixed(dep)));
    return synth.synthesize(name);
}

} // namespace

GeneratedBench
generateIpcTargeted(Architecture &arch, const Machine &machine,
                    const std::vector<Isa::OpIndex> &fast,
                    const std::vector<Isa::OpIndex> &slow,
                    double target_ipc, const std::string &name,
                    const SuiteOptions &opts)
{
    if (fast.empty())
        fatal(cat("generateIpcTargeted(", name,
                  "): empty fast candidate set"));
    const double lat_f = avgLatency(arch, fast);
    const double lat_s = slow.empty() ? lat_f : avgLatency(arch, slow);

    // Analytical first guess from the bootstrapped latencies: with
    // dependency distance d the body forms d interleaved chains, so
    // IPC ~ d / avg-latency until the pipes saturate.
    auto analytic = [&](double t) {
        int best_d = 1;
        int best_q = 0;
        double best_err = 1e300;
        for (int d = 1; d <= 48; ++d) {
            double want_lat = d / t;
            double q = lat_s > lat_f + 1e-9
                           ? (want_lat - lat_f) / (lat_s - lat_f)
                           : 0.0;
            q = std::clamp(q, 0.0, 1.0);
            double got =
                d / (lat_f * (1.0 - q) + lat_s * q);
            double err = std::abs(got - t);
            if (err < best_err) {
                best_err = err;
                best_d = d;
                best_q = static_cast<int>(std::lround(q * 100.0));
            }
        }
        return DesignPoint{best_d, best_q};
    };

    std::vector<ParamDomain> space = {
        {"dep-distance", 1, 48},
        {"slow-percent", 0, 100},
    };

    int iteration = 0;
    int builds = 0;
    Program best_prog;
    double best_err = 1e300;
    double best_ipc = 0.0;
    double last_ipc = 0.0;

    auto propose = [&](const std::vector<Evaluated> &hist,
                       DesignPoint &p) -> bool {
        if (iteration++ >= opts.ipcSearchBudget)
            return false;
        if (hist.empty()) {
            p = analytic(target_ipc);
            return true;
        }
        // Stop early once close enough.
        if (best_err < 0.03)
            return false;
        // Measured effective latency per chain step steers the next
        // candidate (micro-architecture-guided refinement).
        DesignPoint last = hist.back().point;
        double achieved = std::max(last_ipc, 0.05);
        double eff_lat = last[0] / achieved;
        int d2 = std::clamp(static_cast<int>(std::lround(
                                target_ipc * eff_lat)),
                            1, 48);
        int q_delta = achieved > target_ipc ? 12 : -12;
        int d_delta = achieved > target_ipc ? -1 : 1;
        // Try the derived point first, then nearby alternatives,
        // skipping anything already evaluated.
        const DesignPoint candidates[] = {
            {d2, last[1]},
            {last[0], std::clamp(last[1] + q_delta, 0, 100)},
            {std::clamp(last[0] + d_delta, 1, 48), last[1]},
            {d2, std::clamp(last[1] + q_delta, 0, 100)},
            {std::clamp(d2 + d_delta, 1, 48), last[1]},
        };
        for (const auto &cand : candidates) {
            bool seen = false;
            for (const auto &h : hist)
                seen |= h.point == cand;
            if (!seen) {
                p = cand;
                return true;
            }
        }
        return false;
    };

    auto eval = [&](const DesignPoint &p) {
        Program prog = buildMixBench(
            arch, fast, slow, p[0], p[1], opts.bodySize,
            cat(name, "#try", builds++), opts.seed);
        RunResult r = machine.run(prog, ChipConfig{1, 1});
        last_ipc = r.coreIpc;
        double err = std::abs(r.coreIpc - target_ipc);
        if (err < best_err) {
            best_err = err;
            best_prog = std::move(prog);
            best_prog.name = name;
            best_ipc = r.coreIpc;
        }
        return -err;
    };

    UserGuidedSearch search(propose);
    search.search(space, eval);

    GeneratedBench gb;
    gb.program = std::move(best_prog);
    gb.targetIpc = target_ipc;
    gb.achievedIpc = best_ipc;
    return gb;
}

namespace
{

/** Category candidate sets (ISA + bootstrapped-uarch queries). */
struct CandidateSets
{
    std::vector<Isa::OpIndex> simpleInt;
    std::vector<Isa::OpIndex> simpleIntSlow; //!< record/compare forms
    std::vector<Isa::OpIndex> complexMul;
    std::vector<Isa::OpIndex> complexDiv;
    std::vector<Isa::OpIndex> fpVec;
    std::vector<Isa::OpIndex> fpVecSlow;     //!< divides/sqrt
    std::vector<Isa::OpIndex> loads;
    std::vector<Isa::OpIndex> loadsStores;
};

CandidateSets
collectCandidates(const Architecture &arch)
{
    const Isa &isa = arch.isa();
    CandidateSets cs;
    for (size_t i = 0; i < isa.size(); ++i) {
        auto op = static_cast<Isa::OpIndex>(i);
        const InstrDef &d = isa.at(op);
        if (d.privileged)
            continue;
        bool slow_name =
            d.name.find("div") != std::string::npos ||
            (d.name.find("sqrt") != std::string::npos &&
             d.name.find("tsqrt") == std::string::npos);
        switch (d.cls) {
          case InstrClass::IntSimple:
            if (!d.name.empty() &&
                (d.name.back() == '.' ||
                 d.name.rfind("cmp", 0) == 0 || d.name == "isel"))
                cs.simpleIntSlow.push_back(op);
            else
                cs.simpleInt.push_back(op);
            break;
          case InstrClass::IntComplex:
            if (slow_name)
                cs.complexDiv.push_back(op);
            else
                cs.complexMul.push_back(op);
            break;
          case InstrClass::Float:
          case InstrClass::Vector:
            if (slow_name)
                cs.fpVecSlow.push_back(op);
            else
                cs.fpVec.push_back(op);
            break;
          case InstrClass::Load:
            cs.loads.push_back(op);
            cs.loadsStores.push_back(op);
            break;
          case InstrClass::Store:
            cs.loadsStores.push_back(op);
            break;
          default:
            break;
        }
    }
    return cs;
}

/** One memory-group benchmark. */
Program
buildMemoryBench(Architecture &arch,
                 const std::vector<Isa::OpIndex> &cands,
                 const MemDistribution &dist, size_t body,
                 const std::string &name, uint64_t seed)
{
    Rng rng(seed);
    // Random per-variant weights over the candidates ("random mix").
    std::vector<double> w(cands.size());
    for (auto &x : w)
        x = 0.2 + rng.uniform();
    Synthesizer synth(arch, seed);
    synth.addPass<SkeletonPass>(body);
    synth.addPass<InstructionMixPass>(cands, w);
    synth.addPass<MemoryModelPass>(dist);
    synth.addPass<RegisterInitPass>(DataPattern::Random);
    synth.addPass<ImmediateInitPass>(DataPattern::Random);
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(4, 16)));
    return synth.synthesize(name);
}

} // namespace

std::vector<GeneratedBench>
generateTable2Suite(Architecture &arch, const Machine &machine,
                    const SuiteOptions &opts)
{
    std::vector<GeneratedBench> out;
    CandidateSets cs = collectCandidates(arch);
    Rng rng(opts.seed);

    auto fmt_ipc = [](double v) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%.1f", v);
        return std::string(buf);
    };

    // Every suite benchmark is generated by an independent task:
    // each derives every random draw from the suite seed and its
    // own category/index (seeds for the memory/random builds are
    // pre-drawn serially below, before anything runs), and measures
    // only through the thread-safe Machine::run. The tasks queue up
    // here and fan out on the campaign work queue at the end; each
    // writes only its own pre-allocated slot, so the suite is
    // bit-identical at any worker count — construction order is
    // never observable, only task order is.
    std::vector<std::function<GeneratedBench()>> tasks;

    auto targeted = [&](BenchCategory category, std::string prefix,
                        const std::vector<Isa::OpIndex> &fast,
                        const std::vector<Isa::OpIndex> &slow,
                        double ipc, const char *units) {
        tasks.push_back([&, category, prefix, ipc, units]() {
            GeneratedBench gb = generateIpcTargeted(
                arch, machine, fast, slow, ipc,
                cat(prefix, "-ipc", fmt_ipc(ipc)), opts);
            gb.category = category;
            gb.unitsStressed = units;
            return gb;
        });
    };

    // Simple Integer: 35 benchmarks, IPC 0.5..3.9.
    if (opts.wants(BenchCategory::SimpleInteger))
        for (int i = 0; i < 35; ++i)
            targeted(BenchCategory::SimpleInteger, "simpleint",
                     cs.simpleInt, cs.simpleIntSlow, 0.5 + 0.1 * i,
                     "FXU or LSU");
    // Complex Integer: 11 benchmarks, IPC 0.1..1.1.
    if (opts.wants(BenchCategory::ComplexInteger))
        for (int i = 0; i < 11; ++i)
            targeted(BenchCategory::ComplexInteger, "complexint",
                     cs.complexMul, cs.complexDiv, 0.1 + 0.1 * i,
                     "FXU");
    // Integer: 12 benchmarks, IPC 0.1..1.2.
    if (opts.wants(BenchCategory::Integer))
        for (int i = 0; i < 12; ++i)
            targeted(BenchCategory::Integer, "integer", cs.simpleInt,
                     cs.complexDiv, 0.1 + 0.1 * i, "FXU, LSU");
    // Float/Vector: 14 benchmarks, IPC 0.1..1.4.
    if (opts.wants(BenchCategory::FloatVector))
        for (int i = 0; i < 14; ++i)
            targeted(BenchCategory::FloatVector, "floatvector",
                     cs.fpVec, cs.fpVecSlow, 0.1 + 0.1 * i, "VSU");

    // Unit Mix: 20 benchmarks, IPC 0.1..2.0, searched with the GA
    // driver over (dep distance, class weights).
    std::vector<std::vector<Isa::OpIndex>> mix_groups = {
        cs.simpleInt, cs.complexMul, cs.fpVec, cs.fpVecSlow,
        cs.complexDiv};
    int unit_mix_count = opts.extendUnitMix ? 30 : 20;
    if (!opts.wants(BenchCategory::UnitMix))
        unit_mix_count = 0;
    for (int i = 0; i < unit_mix_count; ++i) {
        // 0.1..2.0 in 0.1 steps (the paper's range), then 2.2..4.0
        // in 0.2 steps when the extended sweep is enabled.
        double target =
            i < 20 ? 0.1 + 0.1 * i : 2.0 + 0.2 * (i - 19);
        tasks.push_back([&, i, target]() {
            std::vector<ParamDomain> space = {
                {"dep-distance", 1, 48}, {"w-simple", 0, 10},
                {"w-mul", 0, 10},        {"w-fpvec", 0, 10},
                {"w-fpdiv", 0, 10},      {"w-intdiv", 0, 10},
            };
            int builds = 0;
            Program best_prog;
            double best_err = 1e300;
            double best_ipc = 0.0;
            auto eval = [&](const DesignPoint &p) {
                std::vector<Isa::OpIndex> cands;
                std::vector<double> w;
                for (size_t g = 0; g < mix_groups.size(); ++g) {
                    double wg = p[g + 1];
                    if (wg <= 0.0 || mix_groups[g].empty())
                        continue;
                    for (auto op : mix_groups[g]) {
                        cands.push_back(op);
                        w.push_back(
                            wg / static_cast<double>(
                                     mix_groups[g].size()));
                    }
                }
                if (cands.empty())
                    return -1e3;
                Synthesizer synth(arch, opts.seed ^ (0xabcu + i));
                synth.addPass<SkeletonPass>(opts.bodySize);
                synth.addPass<InstructionMixPass>(cands, w);
                synth.addPass<RegisterInitPass>(
                    DataPattern::Random);
                synth.addPass<ImmediateInitPass>(
                    DataPattern::Random);
                synth.add(std::make_unique<DependencyDistancePass>(
                    DependencyDistancePass::fixed(p[0])));
                Program prog = synth.synthesize(cat(
                    "unitmix-ipc", fmt_ipc(target), "#", builds++));
                RunResult r = machine.run(prog, ChipConfig{1, 1});
                double err = std::abs(r.coreIpc - target);
                if (err < best_err) {
                    best_err = err;
                    best_prog = std::move(prog);
                    best_prog.name =
                        cat("unitmix-ipc", fmt_ipc(target));
                    best_ipc = r.coreIpc;
                }
                return -err;
            };
            GaOptions ga;
            ga.population = opts.gaPopulation;
            ga.generations = opts.gaGenerations;
            ga.seed = opts.seed ^ (0x6a0ull + i);
            GeneticSearch search(ga);
            search.search(space, eval);
            GeneratedBench gb;
            gb.program = std::move(best_prog);
            gb.category = BenchCategory::UnitMix;
            gb.targetIpc = target;
            gb.achievedIpc = best_ipc;
            gb.unitsStressed = "VSU, FXU, LSU";
            return gb;
        });
    }

    // Memory groups (Table 2's 14 distribution rows).
    struct MemGroup
    {
        const char *name;
        MemDistribution dist;
        bool loads_only;
        const char *units;
    };
    const MemGroup groups[] = {
        {"L1ld", {1.00, 0.00, 0.00, 0}, true, "LSU, L1"},
        {"L1ldst", {1.00, 0.00, 0.00, 0}, false, "LSU, L1, L2"},
        {"L1L2a", {0.75, 0.25, 0.00, 0}, false, "LSU, L1, L2"},
        {"L1L2b", {0.50, 0.50, 0.00, 0}, false, "LSU, L1, L2"},
        {"L1L2c", {0.25, 0.75, 0.00, 0}, false, "LSU, L1, L2"},
        {"L1L3a", {0.75, 0.00, 0.25, 0}, false, "LSU, L1, L2, L3"},
        {"L1L3b", {0.50, 0.00, 0.50, 0}, false, "LSU, L1, L2, L3"},
        {"L1L3c", {0.25, 0.00, 0.75, 0}, false, "LSU, L1, L2, L3"},
        {"L2", {0.00, 1.00, 0.00, 0}, false, "LSU, L1, L2"},
        {"L2L3a", {0.00, 0.75, 0.25, 0}, false, "LSU, L1, L2, L3"},
        {"L2L3b", {0.00, 0.50, 0.50, 0}, false, "LSU, L1, L2, L3"},
        {"L2L3c", {0.00, 0.25, 0.75, 0}, false, "LSU, L1, L2, L3"},
        {"L3", {0.00, 0.00, 1.00, 0}, false, "LSU, L1, L2, L3"},
        {"Caches", {0.33, 0.33, 0.34, 0}, false, "LSU, L1, L2, L3"},
    };
    // Per-benchmark seeds come from order-independent fork streams
    // so a category-restricted generation (campaign specs) yields
    // exactly the benchmarks of the full suite. The seeds are drawn
    // serially *here*, at task-queue time; the builds they feed run
    // on the pool, so construction scheduling can never perturb the
    // stream.
    Rng mem_rng = rng.fork(0x3e3);
    if (opts.wants(BenchCategory::MemoryGroup)) {
        int g_idx = 0;
        for (const auto &g : groups) {
            Rng group_rng = mem_rng.fork(
                static_cast<uint64_t>(g_idx++));
            for (int v = 0; v < opts.perMemoryGroup; ++v) {
                uint64_t s = opts.seed ^ group_rng.next();
                tasks.push_back([&, g, v, s]() {
                    GeneratedBench gb;
                    gb.program = buildMemoryBench(
                        arch,
                        g.loads_only ? cs.loads : cs.loadsStores,
                        g.dist, opts.bodySize, cat(g.name, "-", v),
                        s);
                    gb.category = BenchCategory::MemoryGroup;
                    gb.group = g.name;
                    gb.unitsStressed = g.units;
                    return gb;
                });
            }
        }
        // Memory: misses in every level.
        Rng miss_rng = mem_rng.fork(0xffff);
        for (int v = 0; v < opts.memoryCount; ++v) {
            uint64_t s = opts.seed ^ miss_rng.next();
            tasks.push_back([&, v, s]() {
                GeneratedBench gb;
                gb.program = buildMemoryBench(
                    arch, cs.loadsStores,
                    MemDistribution{0, 0, 0, 1}, opts.bodySize,
                    cat("Memory-", v), s);
                gb.category = BenchCategory::MemoryGroup;
                gb.group = "Memory";
                gb.unitsStressed = "LSU, L1, L2, L3, MEM";
                return gb;
            });
        }
    }

    // Random micro-benchmarks. Branches are included — and
    // over-represented relative to their opcode count — because the
    // random set also calibrates the model intercept, which must
    // absorb activity (branch/CR power, speculation) that the unit
    // counters do not cover; real workloads are up to ~25% branches.
    std::vector<Isa::OpIndex> pool;
    for (size_t i = 0; i < arch.isa().size(); ++i) {
        const InstrDef &d = arch.isa().at(
            static_cast<Isa::OpIndex>(i));
        if (d.privileged)
            continue;
        int copies = d.isBranch() ? 8 : 1;
        for (int c = 0; c < copies; ++c)
            pool.push_back(static_cast<Isa::OpIndex>(i));
    }
    Rng rand_rng = rng.fork(0x7a4d);
    int random_count =
        opts.wants(BenchCategory::Random) ? opts.randomCount : 0;
    for (int v = 0; v < random_count; ++v) {
        uint64_t s = opts.seed ^ rand_rng.next();
        // Every draw below comes from vr(s): the benchmark is a
        // pure function of its pre-drawn seed, so the build can run
        // on any worker.
        tasks.push_back([&, v, s]() {
            Rng vr(s);
            size_t k = 5 + vr.pick(14);
            std::vector<Isa::OpIndex> cands;
            for (size_t j = 0; j < k; ++j)
                cands.push_back(pool[vr.pick(pool.size())]);
            std::vector<double> w(cands.size());
            for (auto &x : w)
                x = 0.1 + vr.uniform();
            MemDistribution dist;
            double l1 = 0.4 + 0.6 * vr.uniform();
            double rest = 1.0 - l1;
            double l2 = rest * vr.uniform();
            double l3 = (rest - l2) * vr.uniform();
            dist = {l1, l2, l3, rest - l2 - l3};
            DataPattern pats[] = {DataPattern::Zero,
                                  DataPattern::Alt01,
                                  DataPattern::Random};
            DataPattern pat = pats[vr.pick(3)];

            Synthesizer synth(arch, s);
            synth.addPass<SkeletonPass>(opts.bodySize);
            synth.addPass<InstructionMixPass>(cands, w);
            synth.addPass<MemoryModelPass>(dist);
            synth.addPass<RegisterInitPass>(pat);
            synth.addPass<ImmediateInitPass>(pat);
            synth.add(std::make_unique<DependencyDistancePass>(
                DependencyDistancePass::random(
                    1, 4 + static_cast<int>(vr.pick(28)))));
            GeneratedBench gb;
            gb.program = synth.synthesize(cat("random-", v));
            // Conditional branches take random taken-rates so the
            // random set spans speculation behaviours too.
            for (auto &pi : gb.program.body) {
                const InstrDef &d = arch.isa().at(pi.op);
                if (d.isBranch() && d.conditional)
                    pi.takenRate = static_cast<float>(
                        0.55 + 0.45 * vr.uniform());
            }
            gb.program.body.back().takenRate = 1.0f;
            gb.category = BenchCategory::Random;
            gb.unitsStressed = "Unknown";
            return gb;
        });
    }

    // Fan every queued generation task out on the campaign work
    // queue; slot-indexed writes keep the suite order (and content)
    // identical to a serial run at any worker count. On a worker
    // failure parallelFor reports how many builds were abandoned —
    // the partially-built slots never reach the caller (the
    // exception propagates), but the log keeps an interrupted
    // generation from reading like a complete one.
    int gen_threads = resolveThreads(opts.threads, "suite");
    if (!tasks.empty())
        inform(cat("suite: running ", tasks.size(),
                   " generation tasks on ", gen_threads,
                   gen_threads == 1 ? " thread" : " threads"));
    std::vector<GeneratedBench> built(tasks.size());
    parallelFor(
        gen_threads, tasks.size(),
        [&](size_t i) { built[i] = tasks[i](); },
        "suite generation");
    for (auto &gb : built)
        out.push_back(std::move(gb));

    inform(cat("generated Table-2 suite: ", out.size(),
               " micro-benchmarks"));
    return out;
}

} // namespace mprobe
