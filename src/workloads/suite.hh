/**
 * @file
 * The Table-2 training suite generator.
 *
 * Reproduces the micro-benchmark suite of the paper's Table 2: unit
 * stressing sets swept over IPC targets (via the integrated DSE),
 * fourteen memory-activity groups built with the analytical cache
 * model, and random micro-benchmarks — all sharing the common 4K
 * endless-loop skeleton.
 */

#ifndef WORKLOADS_SUITE_HH
#define WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "microprobe/arch.hh"
#include "sim/machine.hh"

namespace mprobe
{

/** Suite categories, mirroring Table 2's rows. */
enum class BenchCategory
{
    SimpleInteger,
    ComplexInteger,
    Integer,
    FloatVector,
    UnitMix,
    MemoryGroup, //!< the 14 L1/L2/L3/MEM distribution groups
    Random
};

/** Name of a category as printed in Table 2. */
const char *benchCategoryName(BenchCategory c);

/** One generated micro-benchmark with its generation metadata. */
struct GeneratedBench
{
    Program program;
    BenchCategory category = BenchCategory::Random;
    /** Sub-group label, e.g. "L1L2a" for memory groups. */
    std::string group;
    /** IPC target of the DSE (unit-stressing sets; <0 otherwise). */
    double targetIpc = -1.0;
    /** IPC measured during generation (unit-stressing sets). */
    double achievedIpc = -1.0;
    /** Units the generation policy intended to stress. */
    std::string unitsStressed;
};

/** Knobs bounding the suite's generation cost. */
struct SuiteOptions
{
    /** Loop body size (the paper's common skeleton is 4K). */
    size_t bodySize = 4096;
    /** Benchmarks per memory group (Table 2 uses 10). */
    int perMemoryGroup = 10;
    /** Memory benchmarks (miss-everywhere group; Table 2 uses 20). */
    int memoryCount = 20;
    /** Random micro-benchmarks (Table 2 uses 331). */
    int randomCount = 331;
    /** Max evaluations per IPC-target search. */
    int ipcSearchBudget = 6;
    /** GA budget for the Unit Mix category. */
    int gaPopulation = 8;
    int gaGenerations = 3;
    /**
     * Worker threads for generation. The per-IPC-target searches
     * (unit-stressing sweeps, Unit Mix GA runs) are independent —
     * each derives its randomness from the suite seed and its own
     * index, never from generation order — so they dispatch onto
     * the campaign work queue. Any thread count produces the
     * bit-identical suite; 0 = one worker per hardware thread,
     * 1 = serial reference.
     */
    int threads = 0;
    /**
     * Extend the Unit Mix sweep beyond the paper's 0.1-2.0 IPC
     * range up to the machine's full width (2.2-4.0). The paper's
     * rule of thumb — "use a very broad range of power contexts
     * for training" — needs the high-IPC multi-unit contexts on
     * this machine, whose SPEC peak runs close to IPC 4.
     */
    bool extendUnitMix = true;
    /** Generation seed. */
    uint64_t seed = 0x7ab1e2ull;
    /**
     * Restrict generation to these categories (empty = the whole
     * Table-2 suite). Used by campaign specs that only need part of
     * the suite; skipped categories cost no generation time.
     */
    std::vector<BenchCategory> categories;

    /** True when @p c should be generated under this option set. */
    bool
    wants(BenchCategory c) const
    {
        if (categories.empty())
            return true;
        for (BenchCategory k : categories)
            if (k == c)
                return true;
        return false;
    }
};

/**
 * Generate the full Table-2 suite. IPC-targeted sets are tuned by
 * measuring candidates on @p machine at the 1-core SMT-1
 * configuration, using the bootstrapped latencies in @p arch to seed
 * the search analytically (the "user-guided driver" of Section 2.3);
 * the Unit Mix category uses the GA driver.
 */
std::vector<GeneratedBench>
generateTable2Suite(Architecture &arch, const Machine &machine,
                    const SuiteOptions &opts = SuiteOptions());

/**
 * Generate a single IPC-targeted micro-benchmark over the candidate
 * split (slow/fast), used by the suite and directly by tests.
 */
GeneratedBench
generateIpcTargeted(Architecture &arch, const Machine &machine,
                    const std::vector<Isa::OpIndex> &fast,
                    const std::vector<Isa::OpIndex> &slow,
                    double target_ipc, const std::string &name,
                    const SuiteOptions &opts);

} // namespace mprobe

#endif // WORKLOADS_SUITE_HH
