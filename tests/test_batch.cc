/**
 * @file
 * Tests for the decode-once batched execution engine: the arena
 * allocator, Machine::Batch / runBatch bit-identity against the
 * legacy per-run engine, and campaigns routed through the batched
 * path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>

#include "campaign/campaign.hh"
#include "microprobe/cache_model.hh"
#include "power/sample.hh"
#include "sim/arena.hh"
#include "sim/machine.hh"
#include "uarch/uarch.hh"

using namespace mprobe;

namespace
{

const Isa &isa = builtinP7Isa();

Program
loopOf(const std::string &op, size_t n, int dep, int stream = -1)
{
    Program p;
    p.isa = &isa;
    p.name = "b-" + op;
    Isa::OpIndex o = isa.find(op);
    for (size_t i = 0; i + 1 < n; ++i)
        p.body.push_back({o, dep, stream, 1.0f, 1.0f});
    p.body.push_back({isa.find("bdnz"), 0, -1, 1.0f, 1.0f});
    return p;
}

Program
memLoop(HitLevel lvl)
{
    Program p = loopOf("ld", 512, 6, 0);
    UarchDef u = builtinP7Uarch();
    AnalyticalCacheModel m(u);
    p.streams.push_back(m.makeStream(lvl, 0).stream);
    p.name = "b-mem-loop";
    return p;
}

/** Restore the default engine choice when a test returns. */
struct FastPathGuard
{
    ~FastPathGuard() { setSimFastPath(true); }
};

/** Every field of two RunResults must match to the bit. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.config.cores, b.config.cores);
    EXPECT_EQ(a.config.smt, b.config.smt);
    EXPECT_EQ(a.chip.cycles, b.chip.cycles);
    EXPECT_EQ(a.chip.instrs, b.chip.instrs);
    EXPECT_EQ(a.chip.fxuOps, b.chip.fxuOps);
    EXPECT_EQ(a.chip.lsuOps, b.chip.lsuOps);
    EXPECT_EQ(a.chip.vsuOps, b.chip.vsuOps);
    EXPECT_EQ(a.chip.bruOps, b.chip.bruOps);
    EXPECT_EQ(a.chip.cruOps, b.chip.cruOps);
    EXPECT_EQ(a.chip.loads, b.chip.loads);
    EXPECT_EQ(a.chip.stores, b.chip.stores);
    EXPECT_EQ(a.chip.l1Hits, b.chip.l1Hits);
    EXPECT_EQ(a.chip.l2Hits, b.chip.l2Hits);
    EXPECT_EQ(a.chip.l3Hits, b.chip.l3Hits);
    EXPECT_EQ(a.chip.memAcc, b.chip.memAcc);
    EXPECT_EQ(a.chip.energyNj, b.chip.energyNj);
    EXPECT_EQ(a.chip.overlapNj, b.chip.overlapNj);
    EXPECT_EQ(a.chip.transitionNj, b.chip.transitionNj);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.sensorWatts, b.sensorWatts);
    EXPECT_EQ(a.coreIpc, b.coreIpc);
    EXPECT_EQ(a.freqGhz, b.freqGhz);
    EXPECT_EQ(a.voltage, b.voltage);
    EXPECT_EQ(a.gtDynamicWatts, b.gtDynamicWatts);
    EXPECT_EQ(a.gtSmtWatts, b.gtSmtWatts);
    EXPECT_EQ(a.gtCmpWatts, b.gtCmpWatts);
    EXPECT_EQ(a.gtUncoreWatts, b.gtUncoreWatts);
    EXPECT_EQ(a.gtIdleWatts, b.gtIdleWatts);
}

bool
samplesEqual(const Sample &a, const Sample &b)
{
    return a.workload == b.workload &&
           a.config.cores == b.config.cores &&
           a.config.smt == b.config.smt && a.rates == b.rates &&
           a.powerWatts == b.powerWatts &&
           a.instrGips == b.instrGips && a.coreIpc == b.coreIpc &&
           a.freqGhz == b.freqGhz;
}

/** Fresh per-test cache directory. */
std::string
freshCacheDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "mprobe-batch-" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

size_t
sampleFileCount(const std::string &dir)
{
    size_t n = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".sample")
            ++n;
    return n;
}

} // namespace

// ---------------------------------------------------------------
// Arena allocator

TEST(SimArena, ResetReusesMemory)
{
    SimArena arena;
    double *p1 = arena.alloc<double>(1000);
    p1[0] = 1.0;
    p1[999] = 2.0;
    size_t cap = arena.capacityBytes();
    EXPECT_GT(cap, 0u);
    arena.reset();
    // Same request after reset: same memory, no new chunk.
    double *p2 = arena.alloc<double>(1000);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(arena.capacityBytes(), cap);
}

TEST(SimArena, AlignsEveryAllocation)
{
    SimArena arena;
    arena.alloc<char>(3);
    double *d = arena.alloc<double>(4);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double),
              0u);
    arena.alloc<char>(1);
    uint32_t *u = arena.alloc<uint32_t>(2);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(u) % alignof(uint32_t),
              0u);
}

TEST(SimArena, GrowsAcrossChunksKeepingOldPointersValid)
{
    SimArena arena;
    char *small = arena.alloc<char>(16);
    small[0] = 'x';
    // Force a second chunk well past the first chunk's size.
    char *big = arena.alloc<char>(1 << 20);
    big[0] = 'y';
    EXPECT_EQ(small[0], 'x'); // growth never moved the old chunk
    size_t cap = arena.capacityBytes();
    arena.reset();
    arena.alloc<char>(16);
    arena.alloc<char>(1 << 20);
    EXPECT_EQ(arena.capacityBytes(), cap);
}

// ---------------------------------------------------------------
// Machine::Batch vs the legacy engine

TEST(Batch, MatchesLegacyOnEveryConfig)
{
    FastPathGuard guard;
    Machine m(isa);
    Program p = loopOf("add", 256, 0);
    const uint64_t salt = 7;

    for (double f : {0.0, 2.0, 3.5}) {
        OperatingPoint op = m.operatingPoint(f);
        std::vector<RunResult> ref;
        setSimFastPath(false);
        for (const ChipConfig &cfg : ChipConfig::all())
            ref.push_back(m.run(p, cfg, op, salt));
        setSimFastPath(true);
        Machine::Batch batch(m, p);
        auto cfgs = ChipConfig::all();
        for (size_t i = 0; i < cfgs.size(); ++i) {
            SCOPED_TRACE(cfgs[i].label() + " @ " +
                         std::to_string(f));
            expectSameResult(batch.run(cfgs[i], op, salt),
                             ref[i]);
        }
        // 24 configs span only 3 SMT modes; without memory
        // accesses there is no contention rerun, so the memo
        // holds one core simulation per mode.
        EXPECT_EQ(batch.simCount(), 3u);
    }
}

TEST(Batch, MatchesLegacyWithMemoryContention)
{
    FastPathGuard guard;
    Machine m(isa);
    Program p = memLoop(HitLevel::Mem);
    const uint64_t salt = 11;
    std::vector<ChipConfig> cfgs = {
        {1, 1}, {2, 2}, {4, 2}, {8, 4}};

    for (double f : {0.0, 2.0, 3.5}) {
        OperatingPoint op = m.operatingPoint(f);
        setSimFastPath(false);
        std::vector<RunResult> ref;
        for (const ChipConfig &cfg : cfgs)
            ref.push_back(m.run(p, cfg, op, salt));
        setSimFastPath(true);
        Machine::Batch batch(m, p);
        for (size_t i = 0; i < cfgs.size(); ++i) {
            SCOPED_TRACE(cfgs[i].label() + " @ " +
                         std::to_string(f));
            expectSameResult(batch.run(cfgs[i], op, salt),
                             ref[i]);
        }
    }
}

TEST(Batch, RunBatchMatchesPerRun)
{
    Machine m(isa);
    Program p = memLoop(HitLevel::L3);
    std::vector<RunRequest> points;
    uint64_t salt = 100;
    for (const ChipConfig &cfg :
         {ChipConfig{1, 1}, ChipConfig{4, 2}, ChipConfig{8, 4}})
        for (double f : {0.0, 2.5})
            points.push_back({cfg, m.operatingPoint(f), salt++});

    std::vector<RunResult> batched = m.runBatch(p, points);
    ASSERT_EQ(batched.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        SCOPED_TRACE(i);
        expectSameResult(batched[i],
                         m.run(p, points[i].config, points[i].op,
                               points[i].salt));
    }
}

TEST(Batch, ReuseAcrossRunsIsIdentical)
{
    Machine m(isa);
    Program p = memLoop(HitLevel::Mem);
    Machine::Batch batch(m, p);
    OperatingPoint op = m.operatingPoint(2.0);
    RunResult first = batch.run({4, 2}, op, 3);
    size_t sims = batch.simCount();
    // The repeat reuses the memoized core simulations and the
    // reset arena/cache scratch; bits must not drift.
    expectSameResult(batch.run({4, 2}, op, 3), first);
    EXPECT_EQ(batch.simCount(), sims);
}

TEST(Batch, NominalOperatingPointCollapses)
{
    FastPathGuard guard;
    Machine m(isa);
    Program p = loopOf("xvmaddadp", 256, 0);
    setSimFastPath(false);
    RunResult legacy = m.run(p, {6, 2}, 42); // two-arg nominal
    setSimFastPath(true);
    Machine::Batch batch(m, p);
    // Explicit nominal operating point through the batched
    // engine: bit-identical to the legacy nominal run, so cache
    // entries keyed before DVFS (or before batching) keep
    // hitting.
    expectSameResult(batch.run({6, 2}, m.operatingPoint(), 42),
                     legacy);
}

// ---------------------------------------------------------------
// Campaigns through the batched path

namespace
{

CampaignSpec
batchSpec()
{
    CampaignSpec spec;
    spec.categories = {BenchCategory::Random};
    spec.suite.randomCount = 2;
    spec.suite.bodySize = 128;
    spec.bootstrap = false;
    spec.threads = 1;
    spec.configs = {{1, 1}, {2, 2}, {8, 4}};
    return spec;
}

} // namespace

TEST(CampaignBatch, LegacyColdThenBatchedWarmHitsCache)
{
    FastPathGuard guard;
    Machine m(isa);
    std::vector<Program> progs = {loopOf("add", 128, 0),
                                  memLoop(HitLevel::L2)};
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 2}, {4, 1}};

    CampaignSpec spec = batchSpec();
    spec.cacheDir = freshCacheDir("xengine");
    spec.freqs = {2.0, 3.0};

    // Cold legacy-engine campaign populates the cache...
    setSimFastPath(false);
    Campaign cold(m, spec);
    auto legacy = cold.measure(progs, cfgs);
    size_t files = sampleFileCount(spec.cacheDir);
    EXPECT_EQ(files, legacy.size());

    // ... and the batched engine replays it entirely from cache:
    // identical samples, not one new cache key.
    setSimFastPath(true);
    Campaign warm(m, spec);
    auto batched = warm.measure(progs, cfgs);
    ASSERT_EQ(batched.size(), legacy.size());
    for (size_t i = 0; i < legacy.size(); ++i)
        EXPECT_TRUE(samplesEqual(legacy[i], batched[i])) << i;
    EXPECT_EQ(sampleFileCount(spec.cacheDir), files);
}

TEST(CampaignBatch, ThreadCountInvariantThroughBatchedPath)
{
    Machine m(isa);
    std::vector<Program> progs = {loopOf("subf", 128, 0),
                                  memLoop(HitLevel::Mem)};
    std::vector<ChipConfig> cfgs = {{1, 1}, {8, 4}, {2, 2}};

    CampaignSpec serial = batchSpec();
    serial.freqs = {2.0, 3.5};
    Campaign c1(m, serial);
    auto s1 = c1.measure(progs, cfgs);

    CampaignSpec wide = batchSpec();
    wide.freqs = {2.0, 3.5};
    wide.threads = 8;
    Campaign c8(m, wide);
    auto s8 = c8.measure(progs, cfgs);

    ASSERT_EQ(s1.size(),
              progs.size() * cfgs.size() * serial.freqs.size());
    ASSERT_EQ(s1.size(), s8.size());
    for (size_t i = 0; i < s1.size(); ++i)
        EXPECT_TRUE(samplesEqual(s1[i], s8[i])) << i;
}
