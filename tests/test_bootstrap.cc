/**
 * @file
 * Tests for the automatic bootstrap process (paper Section 2.1.2):
 * latency, throughput, stressed-unit and EPI discovery through
 * measurement only.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "microprobe/bootstrap.hh"

using namespace mprobe;

namespace
{

struct Fixture
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};
    BootstrapOptions opts;

    Fixture()
    {
        opts.bodySize = 1024; // faster than 4K, same steady state
    }

    BootstrapEntry
    probe(const std::string &name)
    {
        return bootstrapInstruction(arch, machine,
                                    arch.isa().find(name), opts);
    }
};

bool
hasUnit(const BootstrapEntry &e, const std::string &u)
{
    return std::find(e.units.begin(), e.units.end(), u) !=
           e.units.end();
}

} // namespace

TEST(Bootstrap, AddDiscovered)
{
    Fixture f;
    auto e = f.probe("add");
    EXPECT_NEAR(e.latency, 1.0, 0.1);
    EXPECT_NEAR(e.throughput, 3.5, 0.15);
    EXPECT_TRUE(hasUnit(e, "FXU"));
    EXPECT_TRUE(hasUnit(e, "LSU")); // dual-issue simple integer
    EXPECT_GT(e.epiNj, 0.0);
    EXPECT_GT(e.powerWatts, 0.0);
}

TEST(Bootstrap, MulldoDiscovered)
{
    Fixture f;
    auto e = f.probe("mulldo");
    EXPECT_NEAR(e.latency, 4.0, 0.3);
    EXPECT_NEAR(e.throughput, 1.4, 0.1);
    EXPECT_TRUE(hasUnit(e, "FXU"));
    EXPECT_FALSE(hasUnit(e, "LSU"));
    EXPECT_FALSE(hasUnit(e, "VSU"));
}

TEST(Bootstrap, LoadDiscoveredWithCacheLevel)
{
    Fixture f;
    auto e = f.probe("lbz");
    EXPECT_NEAR(e.latency, 2.0, 0.2);
    EXPECT_NEAR(e.throughput, 1.68, 0.1);
    EXPECT_TRUE(hasUnit(e, "LSU"));
    EXPECT_TRUE(hasUnit(e, "L1"));
    EXPECT_FALSE(hasUnit(e, "FXU"));
}

TEST(Bootstrap, UpdateFormsReportExtraFxu)
{
    Fixture f;
    auto ldux = f.probe("ldux");
    EXPECT_TRUE(hasUnit(ldux, "LSU"));
    EXPECT_TRUE(hasUnit(ldux, "FXU"));

    // Algebraic + update: two FXU micro-ops -> "2FXU".
    auto lhaux = f.probe("lhaux");
    EXPECT_TRUE(hasUnit(lhaux, "LSU"));
    EXPECT_TRUE(hasUnit(lhaux, "2FXU"));
}

TEST(Bootstrap, VectorStoreStressesLsuAndVsu)
{
    Fixture f;
    auto e = f.probe("stxvw4x");
    EXPECT_TRUE(hasUnit(e, "LSU"));
    EXPECT_TRUE(hasUnit(e, "VSU"));
    EXPECT_NEAR(e.throughput, 0.48, 0.08);
}

TEST(Bootstrap, VsuComputeDiscovered)
{
    Fixture f;
    auto e = f.probe("xvmaddadp");
    EXPECT_NEAR(e.latency, 6.0, 0.4);
    EXPECT_NEAR(e.throughput, 2.0, 0.1);
    EXPECT_TRUE(hasUnit(e, "VSU"));
    EXPECT_FALSE(hasUnit(e, "FXU"));
}

TEST(Bootstrap, EpiOrderingWithinFxuCategory)
{
    // Table 3, FXU category: EPI(mulldo) > EPI(subf) > EPI(addic).
    Fixture f;
    double mulldo = f.probe("mulldo").epiNj;
    double subf = f.probe("subf").epiNj;
    double addic = f.probe("addic").epiNj;
    EXPECT_GT(mulldo, subf);
    EXPECT_GT(subf, addic);
}

TEST(Bootstrap, EpiVariationWithinSameIpcPair)
{
    // xvmaddadp vs xstsqrtdp: same IPC, notably different EPI
    // (the Section-5 within-category variation).
    Fixture f;
    auto a = f.probe("xvmaddadp");
    auto b = f.probe("xstsqrtdp");
    EXPECT_NEAR(a.throughput, b.throughput, 0.1);
    EXPECT_GT(a.epiNj, 1.3 * b.epiNj);
}

TEST(Bootstrap, PropsWrittenIntoUarch)
{
    Fixture f;
    f.probe("nor");
    const InstrProps &p = f.arch.uarch().props("nor");
    EXPECT_TRUE(p.complete());
    EXPECT_NEAR(p.throughput, 3.5, 0.2);
    EXPECT_TRUE(f.arch.uarch().stresses("nor", "FXU"));
}

TEST(Bootstrap, FullSweepSkipsPrivileged)
{
    Fixture f;
    f.opts.bodySize = 256;
    auto entries = bootstrapArchitecture(f.arch, f.machine, f.opts);
    size_t priv = 0;
    for (size_t i = 0; i < f.arch.isa().size(); ++i)
        priv += f.arch.isa()
                    .at(static_cast<Isa::OpIndex>(i))
                    .privileged;
    EXPECT_EQ(entries.size(), f.arch.isa().size() - priv);
    EXPECT_EQ(f.arch.uarch().bootstrappedCount(), entries.size());
    for (const auto &e : entries) {
        EXPECT_GT(e.throughput, 0.0) << e.mnemonic;
        EXPECT_GT(e.epiNj, 0.0) << e.mnemonic;
        EXPECT_FALSE(e.units.empty()) << e.mnemonic;
    }
}

TEST(Bootstrap, SerializedUarchReloadsProps)
{
    Fixture f;
    f.probe("lxvw4x");
    std::string text = f.arch.uarch().toText();
    UarchDef reloaded = UarchDef::fromText(text, "<t>");
    EXPECT_TRUE(reloaded.props("lxvw4x").complete());
    EXPECT_NEAR(reloaded.props("lxvw4x").throughput,
                f.arch.uarch().props("lxvw4x").throughput, 1e-9);
}
