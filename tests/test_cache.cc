/**
 * @file
 * Unit tests for the set-associative cache simulator.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

using namespace mprobe;

namespace
{

CacheGeometry
smallGeom()
{
    // 8 sets x 4 ways x 64 B lines = 2 KB.
    return {2048, 4, 64};
}

} // namespace

TEST(CacheGeometry, SetsComputed)
{
    EXPECT_EQ(smallGeom().sets(), 8u);
    CacheGeometry p7{32 * 1024, 8, 128};
    EXPECT_EQ(p7.sets(), 32u);
}

TEST(CacheLevel, MissThenHit)
{
    CacheLevel c(smallGeom());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000 + 63)); // same line
    EXPECT_FALSE(c.access(0x1000 + 64)); // next line
}

TEST(CacheLevel, ProbeDoesNotFill)
{
    CacheLevel c(smallGeom());
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_FALSE(c.access(0x2000));
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(CacheLevel, SetIndexExtraction)
{
    CacheLevel c(smallGeom());
    // 64 B lines, 8 sets: set bits are addr[8:6].
    EXPECT_EQ(c.setIndex(0), 0u);
    EXPECT_EQ(c.setIndex(64), 1u);
    EXPECT_EQ(c.setIndex(64 * 8), 0u);
}

TEST(CacheLevel, LruEvictsOldest)
{
    CacheLevel c(smallGeom());
    // 4-way set 0: fill with lines A..D, touch A, insert E ->
    // eviction must hit B (the least recently used).
    uint64_t stride = 64 * 8; // same set
    uint64_t a = 0, b = stride, d3 = 2 * stride, d4 = 3 * stride;
    uint64_t e = 4 * stride;
    c.access(a);
    c.access(b);
    c.access(d3);
    c.access(d4);
    EXPECT_TRUE(c.access(a)); // refresh A
    EXPECT_FALSE(c.access(e)); // evicts B
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d3));
    EXPECT_TRUE(c.probe(d4));
    EXPECT_TRUE(c.probe(e));
}

TEST(CacheLevel, MoreLinesThanWaysAlwaysMiss)
{
    CacheLevel c(smallGeom());
    uint64_t stride = 64 * 8;
    // 5 lines in a 4-way set accessed round-robin: steady state
    // is all misses.
    for (int warm = 0; warm < 2; ++warm)
        for (uint64_t i = 0; i < 5; ++i)
            c.access(i * stride);
    for (int it = 0; it < 10; ++it)
        for (uint64_t i = 0; i < 5; ++i)
            EXPECT_FALSE(c.access(i * stride));
}

TEST(CacheLevel, AtMostWaysAlwaysHit)
{
    CacheLevel c(smallGeom());
    uint64_t stride = 64 * 8;
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * stride);
    for (int it = 0; it < 10; ++it)
        for (uint64_t i = 0; i < 4; ++i)
            EXPECT_TRUE(c.access(i * stride));
}

TEST(CacheLevel, ResetInvalidates)
{
    CacheLevel c(smallGeom());
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
}

TEST(CacheLevelDeath, BadGeometryFatal)
{
    CacheGeometry g{1000, 3, 64}; // not consistent
    EXPECT_EXIT(CacheLevel c(g), testing::ExitedWithCode(1),
                "inconsistent cache geometry");
}

TEST(CacheHierarchy, P7GeometryShape)
{
    auto g = CacheHierarchy::p7Geometry();
    ASSERT_EQ(g.size(), 3u);
    EXPECT_EQ(g[0].sets(), 32u);
    EXPECT_EQ(g[1].sets(), 256u);
    EXPECT_EQ(g[2].sets(), 4096u);
}

TEST(CacheHierarchy, InclusiveFills)
{
    CacheHierarchy h(CacheHierarchy::p7Geometry(), false);
    EXPECT_EQ(h.access(0x100000), HitLevel::Mem);
    // Now resident everywhere.
    EXPECT_TRUE(h.level(0).probe(0x100000));
    EXPECT_TRUE(h.level(1).probe(0x100000));
    EXPECT_TRUE(h.level(2).probe(0x100000));
    EXPECT_EQ(h.access(0x100000), HitLevel::L1);
}

TEST(CacheHierarchy, ServedByOuterLevelAfterL1Eviction)
{
    CacheHierarchy h(CacheHierarchy::p7Geometry(), false);
    // 9 lines aliasing in one L1 set (32-set L1, 128 B lines:
    // stride 32*128) but distinct L2 sets would need different
    // bits; use the full L2-aliasing stride (256 sets * 128) so
    // both L1 and L2 alias, then expect L3 service.
    uint64_t l1_stride = 32ull * 128;
    for (int r = 0; r < 3; ++r)
        for (uint64_t i = 0; i < 9; ++i)
            h.access(i * 256ull * 128 + 0);
    (void)l1_stride;
    // 9 lines in one L2 set (and one L1 set): L1 and L2 miss,
    // L3 hit in steady state.
    for (uint64_t i = 0; i < 9; ++i)
        EXPECT_EQ(h.access(i * 256ull * 128), HitLevel::L3);
}

TEST(CacheHierarchy, PrefetcherDetectsSequentialStream)
{
    CacheHierarchy h(CacheHierarchy::p7Geometry(), true);
    // Sequential line walk: after two consecutive misses the
    // next-line prefetcher starts filling ahead.
    int mem_hits = 0;
    for (uint64_t i = 0; i < 64; ++i)
        mem_hits += h.access(0x40000000ull + i * 128) ==
                    HitLevel::Mem;
    EXPECT_GT(h.prefetchFills(), 30u);
    EXPECT_LT(mem_hits, 40);
}

TEST(CacheHierarchy, PrefetcherOffMissesEverything)
{
    CacheHierarchy h(CacheHierarchy::p7Geometry(), false);
    int mem_hits = 0;
    for (uint64_t i = 0; i < 64; ++i)
        mem_hits += h.access(0x40000000ull + i * 128) ==
                    HitLevel::Mem;
    EXPECT_EQ(mem_hits, 64);
    EXPECT_EQ(h.prefetchFills(), 0u);
}

TEST(CacheHierarchy, ResetClearsEverything)
{
    CacheHierarchy h(CacheHierarchy::p7Geometry(), true);
    h.access(0x1234500);
    h.reset();
    EXPECT_FALSE(h.level(0).probe(0x1234500));
    EXPECT_FALSE(h.level(2).probe(0x1234500));
    EXPECT_EQ(h.prefetchFills(), 0u);
}

TEST(CacheHierarchyDeath, NeedsThreeLevels)
{
    std::vector<CacheGeometry> g = {smallGeom()};
    EXPECT_EXIT(CacheHierarchy h(g), testing::ExitedWithCode(1),
                "3 levels");
}

// Property sweep: with K lines round-robin in one set of every
// level, steady-state service level is determined by K alone.
class AliasSweep : public testing::TestWithParam<int>
{
};

TEST_P(AliasSweep, SteadyStateLevelByLineCount)
{
    int k = GetParam();
    CacheHierarchy h(CacheHierarchy::p7Geometry(), false);
    // Stride aliasing every level: L3 has 4096 sets * 128 B lines.
    uint64_t stride = 4096ull * 128;
    for (int warm = 0; warm < 3; ++warm)
        for (int i = 0; i < k; ++i)
            h.access(static_cast<uint64_t>(i) * stride);
    HitLevel expect =
        k <= 8 ? HitLevel::L1 : HitLevel::Mem;
    for (int i = 0; i < k; ++i)
        EXPECT_EQ(h.access(static_cast<uint64_t>(i) * stride),
                  expect)
            << "k=" << k << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(LineCounts, AliasSweep,
                         testing::Values(1, 2, 4, 8, 9, 12, 16));
