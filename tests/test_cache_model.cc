/**
 * @file
 * Tests for the analytical set-associative cache model: the static
 * hit-level guarantees must hold on the simulated hierarchy — this
 * is the core property behind paper Figure 3 / Section 2.1.3.
 */

#include <gtest/gtest.h>

#include <set>

#include "microprobe/cache_model.hh"
#include "uarch/uarch.hh"

using namespace mprobe;

namespace
{

AnalyticalCacheModel
model()
{
    UarchDef u = builtinP7Uarch();
    return AnalyticalCacheModel(u);
}

/** Run a stream round-robin to steady state and report the level
 * every access is served from (asserting they all agree). */
HitLevel
steadyStateLevel(const MemStream &s, CacheHierarchy &h)
{
    for (int warm = 0; warm < 4; ++warm)
        for (uint64_t a : s.lines)
            h.access(a);
    HitLevel lvl = h.access(s.lines[0]);
    for (size_t i = 1; i < s.lines.size(); ++i)
        EXPECT_EQ(h.access(s.lines[i]), lvl);
    for (int it = 0; it < 3; ++it)
        for (uint64_t a : s.lines)
            EXPECT_EQ(h.access(a), lvl);
    return lvl;
}

} // namespace

TEST(CacheModel, SetFieldsMatchFigure3b)
{
    auto m = model();
    // 128 B lines: offset bits 0-6; 32/256/4096 sets.
    EXPECT_EQ(m.setField(0), std::make_pair(7, 5));
    EXPECT_EQ(m.setField(1), std::make_pair(7, 8));
    EXPECT_EQ(m.setField(2), std::make_pair(7, 12));
    EXPECT_EQ(m.tagShift(), 19);
}

TEST(CacheModel, LineCountsFollowAssociativity)
{
    auto m = model();
    EXPECT_EQ(m.linesFor(HitLevel::L1), 4);
    EXPECT_EQ(m.linesFor(HitLevel::L2), 9);
    EXPECT_EQ(m.linesFor(HitLevel::L3), 9);
    EXPECT_EQ(m.linesFor(HitLevel::Mem), 9);
}

TEST(CacheModel, StreamLinesAreDistinct)
{
    auto m = model();
    for (HitLevel lvl : {HitLevel::L1, HitLevel::L2, HitLevel::L3,
                         HitLevel::Mem}) {
        auto ts = m.makeStream(lvl, 0);
        std::set<uint64_t> uniq(ts.stream.lines.begin(),
                                ts.stream.lines.end());
        EXPECT_EQ(uniq.size(), ts.stream.lines.size());
    }
}

TEST(CacheModel, L2StreamAliasesInL1)
{
    auto m = model();
    auto ts = m.makeStream(HitLevel::L2, 0);
    UarchDef u = builtinP7Uarch();
    CacheHierarchy h(u.cacheGeometries(), false);
    std::set<uint64_t> l1_sets;
    for (uint64_t a : ts.stream.lines)
        l1_sets.insert(h.level(0).setIndex(a));
    EXPECT_EQ(l1_sets.size(), 1u);
    // But spreads over several L2 sets.
    std::set<uint64_t> l2_sets;
    for (uint64_t a : ts.stream.lines)
        l2_sets.insert(h.level(1).setIndex(a));
    EXPECT_GT(l2_sets.size(), 4u);
}

TEST(CacheModel, MemStreamAliasesEverywhere)
{
    auto m = model();
    auto ts = m.makeStream(HitLevel::Mem, 0);
    UarchDef u = builtinP7Uarch();
    CacheHierarchy h(u.cacheGeometries(), false);
    for (int lvl = 0; lvl < 3; ++lvl) {
        std::set<uint64_t> sets;
        for (uint64_t a : ts.stream.lines)
            sets.insert(h.level(lvl).setIndex(a));
        EXPECT_EQ(sets.size(), 1u) << "level " << lvl;
    }
}

TEST(CacheModel, DisjointPartitionsAcrossTargets)
{
    auto m = model();
    // Streams with different target levels never share an L1 set.
    std::set<uint64_t> used;
    UarchDef u = builtinP7Uarch();
    CacheHierarchy h(u.cacheGeometries(), false);
    for (HitLevel lvl : {HitLevel::L1, HitLevel::L2, HitLevel::L3,
                         HitLevel::Mem}) {
        for (int idx = 0; idx < 2; ++idx) {
            auto ts = m.makeStream(lvl, idx);
            for (uint64_t a : ts.stream.lines) {
                uint64_t set = h.level(0).setIndex(a);
                // Sets 0-7 partitioned 2 per level.
                EXPECT_EQ(set / 2,
                          static_cast<uint64_t>(lvl))
                    << "level partition violated";
                used.insert(set);
            }
        }
    }
    EXPECT_LE(used.size(), 8u);
}

TEST(CacheModel, ThreadStripeBitsClear)
{
    auto m = model();
    // Bits 10-11 are reserved for thread striping: every generated
    // address must leave them zero.
    for (HitLevel lvl : {HitLevel::L1, HitLevel::L2, HitLevel::L3,
                         HitLevel::Mem})
        for (int idx = 0; idx < 2; ++idx)
            for (uint64_t a : m.makeStream(lvl, idx).stream.lines)
                EXPECT_EQ(a & (3ull << 10), 0u);
}

TEST(CacheModel, VisitOrderIsScattered)
{
    auto m = model();
    auto ts = m.makeStream(HitLevel::Mem, 0);
    // No two consecutive visits touch adjacent cache lines (the
    // prefetcher-defeating property).
    for (size_t i = 1; i < ts.stream.lines.size(); ++i) {
        uint64_t prev = ts.stream.lines[i - 1] / 128;
        uint64_t cur = ts.stream.lines[i] / 128;
        EXPECT_NE(prev + 1, cur);
    }
}

// The headline guarantee: a stream targeting level X is served by
// level X on the simulated hierarchy, for every target and stream
// index.
class StreamGuarantee
    : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(StreamGuarantee, SteadyStateHitsTargetLevel)
{
    auto [lvl_i, idx] = GetParam();
    auto target = static_cast<HitLevel>(lvl_i);
    auto m = model();
    auto ts = m.makeStream(target, idx);
    EXPECT_EQ(ts.target, target);

    UarchDef u = builtinP7Uarch();
    CacheHierarchy h(u.cacheGeometries(), false);
    EXPECT_EQ(steadyStateLevel(ts.stream, h), target);
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, StreamGuarantee,
    testing::Combine(testing::Values(0, 1, 2, 3),
                     testing::Values(0, 1, 2, 3)));

TEST(CacheModel, ConcurrentStreamsKeepGuarantees)
{
    // Interleave one stream of every target level (shared
    // hierarchy): each must still be served at its target.
    auto m = model();
    UarchDef u = builtinP7Uarch();
    CacheHierarchy h(u.cacheGeometries(), false);
    TargetedStream ss[4] = {
        m.makeStream(HitLevel::L1, 0),
        m.makeStream(HitLevel::L2, 0),
        m.makeStream(HitLevel::L3, 0),
        m.makeStream(HitLevel::Mem, 0),
    };
    size_t cur[4] = {0, 0, 0, 0};
    auto step = [&](int s) {
        const auto &lines = ss[s].stream.lines;
        HitLevel lvl = h.access(lines[cur[s] % lines.size()]);
        ++cur[s];
        return lvl;
    };
    for (int warm = 0; warm < 60; ++warm)
        for (int s = 0; s < 4; ++s)
            step(s);
    for (int it = 0; it < 30; ++it)
        for (int s = 0; s < 4; ++s)
            EXPECT_EQ(step(s), ss[s].target) << "stream " << s;
}

TEST(CacheModel, GuaranteesHoldWithPrefetcherOn)
{
    // The scattered visit order must defeat the next-line
    // prefetcher, preserving the miss guarantees.
    auto m = model();
    UarchDef u = builtinP7Uarch();
    CacheHierarchy h(u.cacheGeometries(), true);
    auto ts = m.makeStream(HitLevel::Mem, 0);
    EXPECT_EQ(steadyStateLevel(ts.stream, h), HitLevel::Mem);
    EXPECT_EQ(h.prefetchFills(), 0u);
}

TEST(CacheModelDeath, RejectsTwoLevelHierarchies)
{
    UarchDef u;
    u.addCache({"L1", {32768, 8, 128}, 2, "PMC_A"});
    u.addCache({"L2", {262144, 8, 128}, 8, "PMC_B"});
    EXPECT_EXIT(AnalyticalCacheModel m(u),
                testing::ExitedWithCode(1), "3 cache levels");
}
