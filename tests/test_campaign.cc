/**
 * @file
 * Tests for the campaign subsystem: spec parsing, job expansion,
 * cache hit/miss behaviour, thread-count invariance of results and
 * the structured exporters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "campaign/campaign.hh"
#include "campaign/export.hh"
#include "campaign/manifest.hh"
#include "campaign/queue.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "workloads/pipeline.hh"

using namespace mprobe;

namespace
{

struct Fixture
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};

    /** A few tiny distinct workloads for measurement tests. */
    std::vector<Program>
    programs(int n, size_t body = 128)
    {
        std::vector<Program> out;
        for (int i = 0; i < n; ++i) {
            Synthesizer synth(arch,
                              0xbeefull + static_cast<uint64_t>(i));
            synth.addPass<SkeletonPass>(body);
            synth.addPass<InstructionMixPass>(
                arch.isa().integerOps());
            synth.addPass<RegisterInitPass>(DataPattern::Random);
            out.push_back(synth.synthesize(cat("tiny-", i)));
        }
        return out;
    }
};

/** Fresh per-test cache directory. */
std::string
freshCacheDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "mprobe-cache-" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Tiny spec measuring a handful of random workloads. */
CampaignSpec
tinySpec()
{
    CampaignSpec spec;
    // categories alone must be enough: the engine syncs it into
    // suite.categories itself.
    spec.categories = {BenchCategory::Random};
    spec.suite.randomCount = 3;
    spec.suite.bodySize = 128;
    spec.bootstrap = false;
    spec.threads = 2;
    spec.configs = {{1, 1}, {2, 1}, {1, 2}};
    return spec;
}

bool
samplesEqual(const Sample &a, const Sample &b)
{
    return a.workload == b.workload &&
           a.config.cores == b.config.cores &&
           a.config.smt == b.config.smt && a.rates == b.rates &&
           a.powerWatts == b.powerWatts &&
           a.instrGips == b.instrGips && a.coreIpc == b.coreIpc &&
           a.freqGhz == b.freqGhz && a.vddVolts == b.vddVolts &&
           a.reliable == b.reliable;
}

} // namespace

// ---------------------------------------------------------------
// parallelFor

TEST(ParallelFor, CoversEveryIndexOnce)
{
    for (int threads : {1, 2, 7}) {
        std::vector<std::atomic<int>> seen(100);
        parallelFor(threads, seen.size(),
                    [&](size_t i) { ++seen[i]; });
        for (const auto &s : seen)
            EXPECT_EQ(s.load(), 1) << threads;
    }
}

TEST(ParallelFor, MoreThreadsThanWork)
{
    std::atomic<int> count{0};
    parallelFor(16, 3, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, EmptyRange)
{
    parallelFor(4, 0, [](size_t) { FAIL(); });
}

// ---------------------------------------------------------------
// Spec parsing

TEST(CampaignSpec, ParsesFullExample)
{
    CampaignSpec spec = parseCampaignSpecText(
        "# training corpus\n"
        "categories = memory, random\n"
        "configs = 1-1, 2-2, 8-4\n"
        "random_count = 12\n"
        "per_memory_group = 2\n"
        "body_size = 1024\n"
        "threads = 4\n"
        "cache_dir = /tmp/c\n"
        "salt = 7\n"
        "bootstrap = 0\n"
        "seed = 0x123\n",
        "<test>");
    ASSERT_EQ(spec.categories.size(), 2u);
    EXPECT_EQ(spec.categories[0], BenchCategory::MemoryGroup);
    EXPECT_EQ(spec.categories[1], BenchCategory::Random);
    EXPECT_TRUE(spec.suiteEnabled);
    ASSERT_EQ(spec.configs.size(), 3u);
    EXPECT_EQ(spec.configs[2].cores, 8);
    EXPECT_EQ(spec.configs[2].smt, 4);
    EXPECT_EQ(spec.suite.randomCount, 12);
    EXPECT_EQ(spec.suite.perMemoryGroup, 2);
    EXPECT_EQ(spec.suite.bodySize, 1024u);
    EXPECT_EQ(spec.threads, 4);
    EXPECT_EQ(spec.cacheDir, "/tmp/c");
    EXPECT_EQ(spec.salt, 7u);
    EXPECT_FALSE(spec.bootstrap);
    EXPECT_EQ(spec.suite.seed, 0x123u);
    // The restriction reaches the suite generator when a Campaign
    // is constructed (covered by CampaignRun tests), not at parse
    // time.
}

TEST(CampaignSpec, EmptyTextIsFullDefaultCampaign)
{
    CampaignSpec spec = parseCampaignSpecText("", "<test>");
    EXPECT_TRUE(spec.suiteEnabled);
    EXPECT_TRUE(spec.categories.empty());
    EXPECT_EQ(spec.configs.size(), 24u);
    EXPECT_EQ(spec.threads, 0); // auto
}

TEST(CampaignSpec, ExtraSourcesParse)
{
    CampaignSpec spec = parseCampaignSpecText(
        "categories = none\n"
        "spec_proxies = 1\n"
        "daxpy = 1\n"
        "extremes = 1\n",
        "<test>");
    EXPECT_FALSE(spec.suiteEnabled);
    EXPECT_TRUE(spec.specProxies);
    EXPECT_TRUE(spec.daxpy);
    EXPECT_TRUE(spec.extremes);
}

TEST(CampaignSpec, ValueMayContainEquals)
{
    CampaignSpec spec = parseCampaignSpecText(
        "cache_dir = /scratch/run=3/cache\n", "<test>");
    EXPECT_EQ(spec.cacheDir, "/scratch/run=3/cache");
}

TEST(CampaignSpecDeath, UnknownKeyFatal)
{
    EXPECT_EXIT(parseCampaignSpecText("bogus = 1\n", "<test>"),
                testing::ExitedWithCode(1), "unknown campaign key");
}

TEST(CampaignSpecDeath, NoWorkloadsFatal)
{
    EXPECT_EXIT(
        parseCampaignSpecText("categories = none\n", "<test>"),
        testing::ExitedWithCode(1), "selects no workloads");
}

TEST(CampaignSpecDeath, BadConfigFatal)
{
    EXPECT_EXIT(
        parseCampaignSpecText("configs = 4x2\n", "<test>"),
        testing::ExitedWithCode(1), "bad config");
}

// ---------------------------------------------------------------
// Job keys

TEST(CampaignJobKey, DistinguishesContent)
{
    Fixture f;
    auto progs = f.programs(2);
    uint64_t fp = f.machine.fingerprint();
    uint64_t k0 = campaignJobKey(progs[0], {1, 1}, fp, 0);
    EXPECT_EQ(k0, campaignJobKey(progs[0], {1, 1}, fp, 0));
    EXPECT_NE(k0, campaignJobKey(progs[1], {1, 1}, fp, 0));
    EXPECT_NE(k0, campaignJobKey(progs[0], {2, 1}, fp, 0));
    EXPECT_NE(k0, campaignJobKey(progs[0], {1, 2}, fp, 0));
    EXPECT_NE(k0, campaignJobKey(progs[0], {1, 1}, fp ^ 1, 0));
    EXPECT_NE(k0, campaignJobKey(progs[0], {1, 1}, fp, 1));
}

TEST(MachineFingerprint, SensitiveToKnobs)
{
    Fixture f;
    GroundTruthParams p;
    p.idleWatts += 1.0;
    Machine other(f.arch.isa(), p);
    EXPECT_NE(f.machine.fingerprint(), other.fingerprint());
    Machine same(f.arch.isa());
    EXPECT_EQ(f.machine.fingerprint(), same.fingerprint());
}

// ---------------------------------------------------------------
// Sample serialization

TEST(SampleText, RoundTrips)
{
    Sample s;
    s.workload = "bench with spaces";
    s.config = {4, 2};
    s.rates = {1.5, 0, 2.25, 3, 4, 5e-3, 6.125};
    s.powerWatts = 91.625;
    s.instrGips = 12.5;
    s.coreIpc = 1.75;
    Sample t;
    ASSERT_TRUE(sampleFromText(sampleToText(s), t));
    EXPECT_TRUE(samplesEqual(s, t));
}

TEST(SampleText, RejectsGarbage)
{
    Sample t;
    EXPECT_FALSE(sampleFromText("", t));
    EXPECT_FALSE(sampleFromText("workload x\n", t));
    EXPECT_FALSE(sampleFromText("nonsense 1 2 3\n", t));
    EXPECT_FALSE(sampleFromText(
        "workload x\nconfig 1-1\nrates 1 2\npower 3\n", t));
}

TEST(SampleText, RejectsTruncatedEntry)
{
    // A file torn right after the power line must be a corrupt
    // entry (-> miss), not a hit with zeroed gips/ipc.
    Sample s;
    s.workload = "w";
    s.config = {1, 1};
    s.rates = {1, 2, 3, 4, 5, 6, 7};
    s.powerWatts = 70.0;
    std::string text = sampleToText(s);
    std::string torn = text.substr(0, text.find("gips"));
    Sample t;
    EXPECT_FALSE(sampleFromText(torn, t));
}

// ---------------------------------------------------------------
// Measurement: determinism and cache behaviour

TEST(CampaignMeasure, ThreadCountDoesNotChangeResults)
{
    Fixture f;
    auto progs = f.programs(4);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 2}, {4, 1}};

    CampaignSpec serial = tinySpec();
    serial.threads = 1;
    Campaign c1(f.machine, serial);
    auto s1 = c1.measure(progs, cfgs);

    CampaignSpec parallel_spec = tinySpec();
    parallel_spec.threads = 4;
    Campaign cn(f.machine, parallel_spec);
    auto sn = cn.measure(progs, cfgs);

    ASSERT_EQ(s1.size(), progs.size() * cfgs.size());
    ASSERT_EQ(s1.size(), sn.size());
    for (size_t i = 0; i < s1.size(); ++i)
        EXPECT_TRUE(samplesEqual(s1[i], sn[i])) << i;
}

TEST(CampaignMeasure, WorkloadMajorOrder)
{
    Fixture f;
    auto progs = f.programs(2);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 1}};
    Campaign c(f.machine, tinySpec());
    auto samples = c.measure(progs, cfgs);
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[0].workload, "tiny-0");
    EXPECT_EQ(samples[0].config.cores, 1);
    EXPECT_EQ(samples[1].workload, "tiny-0");
    EXPECT_EQ(samples[1].config.cores, 2);
    EXPECT_EQ(samples[2].workload, "tiny-1");
    EXPECT_EQ(samples[3].workload, "tiny-1");
}

TEST(CampaignCache, SecondRunHitsEverything)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("hits");
    spec.threads = 2;

    Campaign first(f.machine, spec);
    CampaignResult r1 = first.run(f.arch);
    EXPECT_EQ(r1.cacheHits, 0u);
    EXPECT_EQ(r1.cacheMisses, r1.samples.size());
    ASSERT_EQ(r1.samples.size(),
              r1.workloads.size() * spec.configs.size());

    Campaign second(f.machine, spec);
    CampaignResult r2 = second.run(f.arch);
    EXPECT_EQ(r2.cacheMisses, 0u);
    EXPECT_EQ(r2.cacheHits, r2.samples.size());

    ASSERT_EQ(r1.samples.size(), r2.samples.size());
    for (size_t i = 0; i < r1.samples.size(); ++i)
        EXPECT_TRUE(samplesEqual(r1.samples[i], r2.samples[i]))
            << i;
}

TEST(CampaignCache, SaltChangesKeysAndMisses)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("salt");
    Campaign first(f.machine, spec);
    CampaignResult r1 = first.run(f.arch);
    EXPECT_EQ(r1.cacheHits, 0u);

    spec.salt = 99;
    Campaign salted(f.machine, spec);
    CampaignResult r2 = salted.run(f.arch);
    EXPECT_EQ(r2.cacheHits, 0u)
        << "a different salt must not reuse cached results";
}

TEST(CampaignCache, CorruptEntryIsAMiss)
{
    Fixture f;
    auto progs = f.programs(1);
    std::vector<ChipConfig> cfgs = {{1, 1}};
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("corrupt");

    Campaign c(f.machine, spec);
    auto s1 = c.measure(progs, cfgs);

    // Clobber the single cache entry.
    uint64_t key = campaignJobKey(progs[0], cfgs[0],
                                  f.machine.fingerprint(), 0);
    ResultCache cache(spec.cacheDir);
    {
        std::ofstream out(cache.pathOf(key));
        out << "not a sample\n";
    }
    Campaign c2(f.machine, spec);
    auto s2 = c2.measure(progs, cfgs);
    EXPECT_EQ(c2.cacheMisses(), 1u);
    ASSERT_EQ(s2.size(), 1u);
    EXPECT_TRUE(samplesEqual(s1[0], s2[0]));
}

TEST(CampaignCache, DisabledCacheStillWorks)
{
    Fixture f;
    Campaign c(f.machine, tinySpec());
    CampaignResult r = c.run(f.arch);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(r.samples.size(),
              r.workloads.size() * tinySpec().configs.size());
}

// ---------------------------------------------------------------
// Per-workload configuration plans

TEST(CampaignMeasure, PerWorkloadConfigLists)
{
    Fixture f;
    auto progs = f.programs(2);

    // Reference: the cross-product overload.
    Campaign ref(f.machine, tinySpec());
    auto cross =
        ref.measure(progs, {ChipConfig{1, 1}, ChipConfig{2, 1}});
    ASSERT_EQ(cross.size(), 4u);

    // Plan: program 0 at 1-1 only, program 1 at 1-1 and 2-1.
    Campaign c(f.machine, tinySpec());
    auto samples = c.measure(
        progs, std::vector<std::vector<ChipConfig>>{
                   {ChipConfig{1, 1}},
                   {ChipConfig{1, 1}, ChipConfig{2, 1}}});
    ASSERT_EQ(samples.size(), 3u);
    // Program-major, per-program config order — and each sample is
    // exactly the cross-product sample of the same pair (job keys
    // are content hashes, independent of the plan shape).
    EXPECT_TRUE(samplesEqual(samples[0], cross[0]));
    EXPECT_TRUE(samplesEqual(samples[1], cross[2]));
    EXPECT_TRUE(samplesEqual(samples[2], cross[3]));
}

// ---------------------------------------------------------------
// Manifest and resume

TEST(CampaignManifest, RoundTrips)
{
    CampaignManifest m;
    m.spec = "campaign: full Table-2 suite x 24 configs";
    m.fingerprint = 0xfeedface12345678ull;
    m.entries.push_back(
        {0x0123456789abcdefull, {8, 4}, "Simple Integer",
         "simpleint-ipc0.5"});
    m.entries.push_back(
        {0xffffffffffffffffull, {1, 1}, "adhoc",
         "name with spaces"});
    CampaignManifest t;
    ASSERT_TRUE(manifestFromText(manifestToText(m), t));
    EXPECT_EQ(t.spec, m.spec);
    EXPECT_EQ(t.fingerprint, m.fingerprint);
    ASSERT_EQ(t.entries.size(), 2u);
    for (size_t i = 0; i < t.entries.size(); ++i) {
        EXPECT_EQ(t.entries[i].key, m.entries[i].key) << i;
        EXPECT_EQ(t.entries[i].config.cores,
                  m.entries[i].config.cores)
            << i;
        EXPECT_EQ(t.entries[i].config.smt, m.entries[i].config.smt)
            << i;
        EXPECT_EQ(t.entries[i].source, m.entries[i].source) << i;
        EXPECT_EQ(t.entries[i].workload, m.entries[i].workload)
            << i;
    }
}

TEST(CampaignManifest, RejectsGarbageAndTruncation)
{
    CampaignManifest t;
    EXPECT_FALSE(manifestFromText("", t));
    EXPECT_FALSE(manifestFromText("nonsense\n", t));
    // Declared job count mismatching the entries = torn manifest.
    CampaignManifest m;
    m.spec = "s";
    m.entries.push_back({1, {1, 1}, "adhoc", "w"});
    m.entries.push_back({2, {2, 1}, "adhoc", "w2"});
    std::string text = manifestToText(m);
    std::string torn = text.substr(0, text.rfind("job "));
    EXPECT_FALSE(manifestFromText(torn, t));
}

TEST(CampaignResume, CompletesOnlyRemainingJobs)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("resume");

    // Uninterrupted reference run (fresh cache -> all misses).
    Campaign full(f.machine, spec);
    CampaignResult ref = full.run(f.arch);
    std::ostringstream ref_csv;
    exportSamplesCsv(ref_csv, ref.samples);

    // The manifest was persisted next to the cache and covers
    // every job.
    CampaignManifest m;
    ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m));
    EXPECT_EQ(m.spec, spec.contentSummary());
    // The fingerprint identifies job-key-relevant content: stable
    // across worker counts, different for a different salt.
    EXPECT_EQ(m.fingerprint,
              campaignFingerprint(spec, f.machine.fingerprint()));
    CampaignSpec salted = spec;
    salted.salt = 99;
    EXPECT_NE(m.fingerprint,
              campaignFingerprint(salted,
                                  f.machine.fingerprint()));
    CampaignSpec rethreaded = spec;
    rethreaded.threads = 7;
    EXPECT_EQ(m.fingerprint,
              campaignFingerprint(rethreaded,
                                  f.machine.fingerprint()));
    ASSERT_EQ(m.entries.size(), ref.jobs.size());
    for (size_t i = 0; i < m.entries.size(); ++i)
        EXPECT_EQ(m.entries[i].key, ref.jobs[i].key) << i;

    // Simulate an interrupt after N jobs: drop the cache entries
    // of everything after the first N.
    const size_t done = 3;
    ResultCache cache(spec.cacheDir);
    for (size_t i = done; i < ref.jobs.size(); ++i)
        std::filesystem::remove(cache.pathOf(ref.jobs[i].key));

    // Resume reporting sees exactly the dropped jobs.
    auto rem = remainingJobs(m, cache);
    ASSERT_EQ(rem.size(), ref.jobs.size() - done);
    for (size_t i = 0; i < rem.size(); ++i)
        EXPECT_EQ(rem[i].key, ref.jobs[done + i].key) << i;

    // The resumed run touches only the unfinished jobs...
    Campaign resumed(f.machine, spec);
    CampaignResult res = resumed.run(f.arch);
    EXPECT_EQ(res.cacheHits, done);
    EXPECT_EQ(res.cacheMisses, ref.jobs.size() - done);

    // ...and its export is identical to the uninterrupted run's.
    std::ostringstream res_csv;
    exportSamplesCsv(res_csv, res.samples);
    EXPECT_EQ(res_csv.str(), ref_csv.str());

    // Nothing is left afterwards.
    EXPECT_TRUE(remainingJobs(m, cache).empty());
}

// ---------------------------------------------------------------
// Campaign-powered model pipeline

TEST(CampaignPipeline, ThreadCountDoesNotChangeResults)
{
    // The pipeline routes all measurement through
    // Campaign::measure; a 2-thread and a 1-thread run must
    // produce identical samples everywhere (the acceptance bar for
    // the bench migrations).
    Fixture f;
    PipelineOptions po;
    // FloatVector supplies the compute-bound SMT-1 samples the
    // bottom-up training steps need; memory + random cover the
    // rest. Small budgets keep the corpus cheap.
    po.suite.categories = {BenchCategory::FloatVector,
                           BenchCategory::MemoryGroup,
                           BenchCategory::Random};
    po.suite.bodySize = 256;
    po.suite.perMemoryGroup = 1;
    po.suite.memoryCount = 1;
    po.suite.randomCount = 6;
    po.suite.ipcSearchBudget = 2;
    po.suite.threads = 1;
    po.configs = {{1, 1}, {2, 2}, {8, 4}};
    po.randomCrossConfig = 3;
    po.microConfigStride = 2;
    po.specCount = 4;
    po.bodySize = 256;

    po.threads = 1;
    ModelExperiment serial = runModelPipeline(f.arch, f.machine, po);
    po.threads = 2;
    ModelExperiment parallel_ex =
        runModelPipeline(f.arch, f.machine, po);

    auto expect_same = [](const std::vector<Sample> &a,
                          const std::vector<Sample> &b,
                          const char *what) {
        ASSERT_EQ(a.size(), b.size()) << what;
        for (size_t i = 0; i < a.size(); ++i)
            EXPECT_TRUE(samplesEqual(a[i], b[i]))
                << what << "[" << i << "]";
    };
    expect_same(serial.buSet.microSmt1,
                parallel_ex.buSet.microSmt1, "microSmt1");
    expect_same(serial.buSet.microSmtOn,
                parallel_ex.buSet.microSmtOn, "microSmtOn");
    expect_same(serial.buSet.randomSmt1,
                parallel_ex.buSet.randomSmt1, "randomSmt1");
    expect_same(serial.buSet.randomAllConfigs,
                parallel_ex.buSet.randomAllConfigs,
                "randomAllConfigs");
    expect_same(serial.microAllConfigs,
                parallel_ex.microAllConfigs, "microAllConfigs");
    expect_same(serial.randomAllConfigs,
                parallel_ex.randomAllConfigs, "randomAllConfigs");
    expect_same(serial.spec, parallel_ex.spec, "spec");
}

// ---------------------------------------------------------------
// Full-run expansion

TEST(CampaignRun, CategoryRestrictionHonoured)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    Campaign c(f.machine, spec);
    CampaignResult r = c.run(f.arch);
    ASSERT_EQ(r.workloads.size(), 3u);
    for (const auto &w : r.workloads)
        EXPECT_EQ(w.source, "Random");
    // Jobs cover every (workload, config) pair exactly once.
    std::set<std::pair<size_t, std::string>> pairs;
    for (const auto &j : r.jobs)
        pairs.insert({j.workload, j.config.label()});
    EXPECT_EQ(pairs.size(), r.jobs.size());
}

TEST(CampaignRun, SampleMatchesDirectMeasurement)
{
    // A campaign sample must be exactly what Machine::run yields
    // for the same job salt: the engine adds no distortion.
    Fixture f;
    CampaignSpec spec = tinySpec();
    Campaign c(f.machine, spec);
    CampaignResult r = c.run(f.arch);
    const CampaignJob &job = r.jobs[0];
    const Program &prog = r.workloads[job.workload].program;
    Sample direct = makeSample(
        prog.name,
        f.machine.run(prog, job.config,
                      hashCombine(job.key, 0x5a17ull)));
    EXPECT_TRUE(samplesEqual(direct, r.samples[0]));
}

// ---------------------------------------------------------------
// Exporters

TEST(Export, CsvShapeAndQuoting)
{
    Sample s;
    s.workload = "weird,\"name\"";
    s.config = {8, 4};
    s.rates = {1, 2, 3, 4, 5, 6, 7};
    s.powerWatts = 100.5;
    std::ostringstream os;
    exportSamplesCsv(os, {s});
    std::istringstream in(os.str());
    std::string header, row, extra;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_FALSE(std::getline(in, extra));
    EXPECT_EQ(header,
              "workload,cores,smt,fxu_gevps,vsu_gevps,lsu_gevps,"
              "l1_gevps,l2_gevps,l3_gevps,mem_gevps,power_watts,"
              "instr_gips,core_ipc,freq_ghz,epi_j,edp,vdd_volts,"
              "reliable");
    EXPECT_NE(row.find("\"weird,\"\"name\"\"\""),
              std::string::npos);
    EXPECT_NE(row.find("100.5"), std::string::npos);
}

TEST(Export, JsonEscapingAndFields)
{
    Sample s;
    s.workload = "a\"b\\c\n";
    s.config = {2, 1};
    s.rates = {0, 0, 0, 0, 0, 0, 0};
    s.powerWatts = 60.0;
    std::ostringstream os;
    exportSamplesJson(os, {s});
    std::string j = os.str();
    EXPECT_NE(j.find("\"a\\\"b\\\\c\\n\""), std::string::npos);
    EXPECT_NE(j.find("\"cores\": 2"), std::string::npos);
    EXPECT_NE(j.find("\"FXU\": 0"), std::string::npos);
    EXPECT_NE(j.find("\"power_watts\": 60"), std::string::npos);
}

TEST(Export, FileExtensionSelectsFormat)
{
    Sample s;
    s.workload = "w";
    s.config = {1, 1};
    s.rates = {0, 0, 0, 0, 0, 0, 0};
    s.powerWatts = 1.0;
    std::string base = testing::TempDir() + "mprobe-export";
    exportSamples(base + ".json", {s});
    exportSamples(base + ".csv", {s});
    std::ifstream fj(base + ".json"), fc(base + ".csv");
    std::string first_json, first_csv;
    std::getline(fj, first_json);
    std::getline(fc, first_csv);
    EXPECT_EQ(first_json, "[");
    EXPECT_EQ(first_csv.rfind("workload,", 0), 0u);
}

// ---------------------------------------------------------------
// Worker failure paths

TEST(ParallelFor, WorkerExceptionRethrownOnCaller)
{
    // An uncaught exception inside std::thread would terminate the
    // process; parallelFor must surface it on the calling thread.
    for (int threads : {1, 4}) {
        try {
            parallelFor(threads, 100, [](size_t i) {
                if (i == 37)
                    throw std::runtime_error("job 37 failed");
            });
            FAIL() << "no exception at " << threads << " threads";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 37 failed") << threads;
        }
    }
}

TEST(ParallelFor, FirstExceptionWinsAndWorkersStop)
{
    // Every index throws; exactly one exception must surface, and
    // the pool must still join cleanly.
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(4, 1000,
                             [&](size_t) {
                                 ++ran;
                                 throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // Workers stop pulling indices once a failure is recorded.
    EXPECT_LT(ran.load(), 1000);
}

TEST(CampaignMeasure, WorkerExceptionDoesNotTerminate)
{
    // The acceptance bar: an exception thrown inside a campaign
    // job surfaces on the caller's thread. Simulate a job failure
    // via parallelFor with the campaign's own thread resolution.
    int threads = resolveThreads(0, "test");
    EXPECT_THROW(
        parallelFor(threads, 64,
                    [](size_t i) {
                        if (i % 7 == 3)
                            throw std::runtime_error("probe died");
                    }),
        std::runtime_error);
}

// ---------------------------------------------------------------
// Corrupt-entry rejection (non-positive configurations)

TEST(SampleText, RejectsNonPositiveConfig)
{
    Sample s;
    s.workload = "w";
    s.config = {1, 1};
    s.rates = {1, 2, 3, 4, 5, 6, 7};
    s.powerWatts = 70.0;
    s.instrGips = 1.0;
    s.coreIpc = 1.0;
    std::string good = sampleToText(s);
    Sample t;
    ASSERT_TRUE(sampleFromText(good, t));
    // A corrupt "config 0-0" (or any non-positive pair) must parse
    // as a miss, never feed ChipConfig{0,0} downstream.
    for (const char *bad : {"0-0", "0-1", "1-0", "-1-1", "1--2"}) {
        std::string text = good;
        auto at = text.find("config 1-1");
        ASSERT_NE(at, std::string::npos);
        text.replace(at, 10, cat("config ", bad));
        EXPECT_FALSE(sampleFromText(text, t)) << bad;
    }
}

TEST(CampaignManifest, RejectsNonPositiveConfig)
{
    CampaignManifest m;
    m.spec = "s";
    m.fingerprint = 1;
    m.entries.push_back({1, {1, 1}, "adhoc", "w"});
    std::string good = manifestToText(m);
    CampaignManifest t;
    ASSERT_TRUE(manifestFromText(good, t));
    for (const char *bad : {"0-0", "0-1", "1-0"}) {
        std::string text = good;
        auto at = text.find(" 1-1 ");
        ASSERT_NE(at, std::string::npos);
        text.replace(at, 5, cat(" ", bad, " "));
        CampaignManifest u;
        EXPECT_FALSE(manifestFromText(text, u)) << bad;
    }
}

// ---------------------------------------------------------------
// Shard parsing and partitioning

TEST(CampaignSpec, ShardAndProgressKeysParse)
{
    CampaignSpec spec = parseCampaignSpecText(
        "shard = 2/5\n"
        "progress_seconds = 0.5\n",
        "<test>");
    EXPECT_EQ(spec.shardIndex, 2);
    EXPECT_EQ(spec.shardCount, 5);
    EXPECT_TRUE(spec.sharded());
    EXPECT_EQ(spec.progressSeconds, 0.5);
    // Defaults: unsharded.
    CampaignSpec def = parseCampaignSpecText("", "<test>");
    EXPECT_FALSE(def.sharded());
    EXPECT_EQ(def.shardIndex, 0);
    EXPECT_EQ(def.shardCount, 1);
}

TEST(CampaignSpecDeath, BadShardFatal)
{
    EXPECT_EXIT(parseCampaignSpecText("shard = 3\n", "<test>"),
                testing::ExitedWithCode(1), "bad shard");
    EXPECT_EXIT(parseCampaignSpecText("shard = 2/2\n", "<test>"),
                testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(parseCampaignSpecText("shard = 0/0\n", "<test>"),
                testing::ExitedWithCode(1), "count must be >= 1");
    EXPECT_EXIT(parseCampaignSpecText("shard = -1/2\n", "<test>"),
                testing::ExitedWithCode(1), "out of range");
}

TEST(CampaignShard, IndicesPartitionStably)
{
    for (int count : {1, 2, 3, 5}) {
        std::vector<char> seen(17, 0);
        for (int index = 0; index < count; ++index)
            for (size_t i : shardIndices(17, index, count)) {
                EXPECT_EQ(i % static_cast<size_t>(count),
                          static_cast<size_t>(index));
                EXPECT_EQ(seen[i], 0) << "overlap at " << i;
                seen[i] = 1;
            }
        for (size_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i], 1) << "hole at " << i;
    }
}

// ---------------------------------------------------------------
// Sharded execution: union == unsharded, merge bit-identity

TEST(CampaignShard, UnionEqualsUnshardedAndMergeIsBitIdentical)
{
    Fixture f;

    // Serial unsharded reference.
    CampaignSpec ref_spec = tinySpec();
    ref_spec.threads = 1;
    ref_spec.cacheDir = freshCacheDir("shard-ref");
    Campaign ref(f.machine, ref_spec);
    CampaignResult r = ref.run(f.arch);
    EXPECT_EQ(r.totalJobs, r.jobs.size());
    std::ostringstream ref_csv;
    exportSamplesCsv(ref_csv, r.samples);

    for (int count : {2, 3}) {
        CampaignSpec spec = tinySpec();
        spec.cacheDir =
            freshCacheDir(cat("shard-", count, "way"));
        spec.shardCount = count;

        std::set<uint64_t> seen;
        size_t slice_total = 0;
        for (int index = 0; index < count; ++index) {
            spec.shardIndex = index;
            Campaign shard(f.machine, spec);
            CampaignResult sr = shard.run(f.arch);
            EXPECT_EQ(sr.totalJobs, r.jobs.size()) << index;
            // Fresh cache: every slice job is measured here, and
            // no slice overlaps another.
            EXPECT_EQ(sr.cacheHits, 0u) << index;
            slice_total += sr.jobs.size();
            for (size_t i = 0; i < sr.jobs.size(); ++i) {
                EXPECT_TRUE(seen.insert(sr.jobs[i].key).second)
                    << "key measured twice in shard " << index;
                EXPECT_EQ(sr.samples[i].workload,
                          r.workloads[sr.jobs[i].workload]
                              .program.name);
            }
        }
        // Union of the slices is exactly the unsharded job list.
        EXPECT_EQ(slice_total, r.jobs.size());
        for (const auto &job : r.jobs)
            EXPECT_EQ(seen.count(job.key), 1u);

        // Merge: manifest + cache reassemble the full campaign,
        // and its export is byte-identical to the unsharded run.
        CampaignManifest m;
        ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m));
        ASSERT_EQ(m.entries.size(), r.jobs.size());
        ResultCache cache(spec.cacheDir);
        ManifestCollection col = collectManifestSamples(m, cache);
        EXPECT_TRUE(col.missing.empty());
        std::ostringstream merged_csv;
        exportSamplesCsv(merged_csv, col.samples);
        EXPECT_EQ(merged_csv.str(), ref_csv.str())
            << count << "-way merge not bit-identical";
    }
}

TEST(CampaignShard, IncompleteMergeReportsMissing)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("shard-partial");
    spec.shardCount = 2;
    spec.shardIndex = 0;
    Campaign shard0(f.machine, spec);
    CampaignResult sr = shard0.run(f.arch);

    CampaignManifest m;
    ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m));
    ResultCache cache(spec.cacheDir);
    ManifestCollection col = collectManifestSamples(m, cache);
    // Exactly the other shard's jobs are missing.
    EXPECT_EQ(col.missing.size(),
              sr.totalJobs - sr.jobs.size());
    EXPECT_EQ(col.samples.size(), sr.jobs.size());
    for (const auto &e : col.missing)
        EXPECT_TRUE(cache.contains(e.key) == false);
}

TEST(CampaignShardDeath, ShardWithoutCacheFatal)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    spec.shardCount = 2;
    EXPECT_EXIT(Campaign(f.machine, spec),
                testing::ExitedWithCode(1),
                "needs a cache directory");
}

// ---------------------------------------------------------------
// Manifest coverage of measure()

TEST(CampaignMeasure, WritesAndAccumulatesManifest)
{
    Fixture f;
    auto progs = f.programs(3);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 1}};
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("measure-manifest");

    Campaign c(f.machine, spec);
    auto s1 = c.measure(progs, cfgs);

    CampaignManifest m;
    ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m));
    EXPECT_EQ(m.entries.size(), progs.size() * cfgs.size());
    for (const auto &e : m.entries)
        EXPECT_EQ(e.source, "adhoc");
    // Everything measured: resume has nothing left.
    ResultCache cache(spec.cacheDir);
    EXPECT_TRUE(remainingJobs(m, cache).empty());

    // A second measure() call with new programs accumulates into
    // the same manifest (the model pipeline issues several calls).
    auto more = f.programs(2, 96);
    Campaign c2(f.machine, spec);
    c2.measure(more, cfgs);
    CampaignManifest m2;
    ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m2));
    EXPECT_EQ(m2.entries.size(),
              (progs.size() + more.size()) * cfgs.size());
    // Existing entries keep their order at the front.
    for (size_t i = 0; i < m.entries.size(); ++i)
        EXPECT_EQ(m2.entries[i].key, m.entries[i].key) << i;
}

TEST(CampaignMeasure, ShardedMeasureFillsOffShardFromCache)
{
    Fixture f;
    auto progs = f.programs(3);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 1}};

    // Unsharded reference (no cache: pure measurement).
    Campaign ref(f.machine, tinySpec());
    auto want = ref.measure(progs, cfgs);

    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("measure-shard");
    spec.shardCount = 2;

    // Which slots shard 0 owns is the cost-striped partition — a
    // pure function of the expanded job list, reproducible here
    // with the same default cost model the engine uses.
    JobCostModel model;
    std::vector<double> costs;
    for (const auto &p : progs)
        for (const auto &cfg : cfgs)
            costs.push_back(model.estimate(cfg, p.body.size()));
    std::set<size_t> mine;
    for (size_t i : costStripedShard(costs, 0, 2))
        mine.insert(i);
    EXPECT_FALSE(mine.empty());
    EXPECT_LT(mine.size(), costs.size());

    // Shard 0 on a cold cache: its slice matches the reference,
    // off-shard slots are placeholders (nothing measured them yet)
    // with the right workload/config.
    spec.shardIndex = 0;
    Campaign c0(f.machine, spec);
    auto got0 = c0.measure(progs, cfgs);
    ASSERT_EQ(got0.size(), want.size());
    for (size_t i = 0; i < got0.size(); ++i) {
        EXPECT_EQ(got0[i].workload, want[i].workload) << i;
        EXPECT_EQ(got0[i].config.cores, want[i].config.cores) << i;
        if (mine.count(i))
            EXPECT_TRUE(samplesEqual(got0[i], want[i])) << i;
        else
            EXPECT_EQ(got0[i].powerWatts, 0.0) << i;
    }

    // Shard 1 completes the cache; an unsharded all-hit pass now
    // reproduces the reference everywhere.
    spec.shardIndex = 1;
    Campaign c1(f.machine, spec);
    c1.measure(progs, cfgs);

    CampaignSpec full = tinySpec();
    full.cacheDir = spec.cacheDir;
    Campaign cf(f.machine, full);
    auto got = cf.measure(progs, cfgs);
    EXPECT_EQ(cf.cacheMisses(), 0u);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(samplesEqual(got[i], want[i])) << i;

    // ...and shard 0 re-run against the warm cache returns the
    // reference everywhere too (off-shard slots fill from cache).
    spec.shardIndex = 0;
    Campaign c0b(f.machine, spec);
    auto got0b = c0b.measure(progs, cfgs);
    for (size_t i = 0; i < got0b.size(); ++i)
        EXPECT_TRUE(samplesEqual(got0b[i], want[i])) << i;
}

// ---------------------------------------------------------------
// Progress reporting

TEST(CampaignProgress, DisabledEmitsNoProgressLines)
{
    Fixture f;
    auto progs = f.programs(2);
    CampaignSpec spec = tinySpec();
    spec.progressSeconds = 0;
    Campaign c(f.machine, spec);
    testing::internal::CaptureStderr();
    c.measure(progs, {ChipConfig{1, 1}, ChipConfig{2, 1}});
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("jobs done"), std::string::npos);
}

TEST(CampaignProgress, PeriodicLinesReportCounts)
{
    Fixture f;
    // Large-ish serial batch with a (practically) zero reporting
    // interval: every job past the first elapsed millisecond
    // reports, except the final one (the completion line covers
    // it).
    auto progs = f.programs(4, 768);
    CampaignSpec spec = tinySpec();
    spec.threads = 1;
    spec.progressSeconds = 0.001;
    Campaign c(f.machine, spec);
    testing::internal::CaptureStderr();
    c.measure(progs, {ChipConfig{1, 1}, ChipConfig{2, 2},
                      ChipConfig{4, 2}});
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("of 12 jobs done"), std::string::npos)
        << err;
}

// ---------------------------------------------------------------
// Job cost model and cost-striped sharding

TEST(JobCost, ScalesWithDeployedThreadsAndBody)
{
    JobCostModel m;
    // An 8-4 deployment simulates 32 hardware-thread contexts; the
    // estimate must dominate 1-1 accordingly, and grow with the
    // loop body.
    EXPECT_GT(m.estimate({8, 4}, 4096), m.estimate({1, 1}, 4096));
    EXPECT_GT(m.estimate({1, 1}, 4096), m.estimate({1, 1}, 128));
    EXPECT_GT(m.estimate({1, 1}, 1), 0.0);
    // Ratios reflect the thread count once the body dwarfs the
    // fixed per-job overhead.
    EXPECT_NEAR(m.estimate({8, 4}, 1 << 20) /
                    m.estimate({1, 1}, 1 << 20),
                32.0, 0.1);
}

TEST(CostStripe, PartitionsDisjointlyAndDeterministically)
{
    std::vector<double> costs = {32, 1, 1, 1, 16, 2, 8, 1, 4, 1};
    for (int count : {1, 2, 3, 4}) {
        auto shards = costStripedPartition(costs, count);
        ASSERT_EQ(shards.size(), static_cast<size_t>(count));
        std::vector<char> seen(costs.size(), 0);
        for (const auto &s : shards) {
            // Ascending index order within a shard.
            for (size_t k = 1; k < s.size(); ++k)
                EXPECT_LT(s[k - 1], s[k]);
            for (size_t i : s) {
                EXPECT_EQ(seen[i], 0) << "overlap at " << i;
                seen[i] = 1;
            }
        }
        for (size_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i], 1) << "hole at " << i;
        // Pure function of the costs: recomputing (as every shard
        // of a campaign does independently) yields the identical
        // partition, and the single-shard accessor agrees.
        EXPECT_EQ(shards, costStripedPartition(costs, count));
        for (int s = 0; s < count; ++s)
            EXPECT_EQ(shards[static_cast<size_t>(s)],
                      costStripedShard(costs, s, count));
    }
}

TEST(CostStripe, BalancesSkewedCostsBetterThanRoundRobin)
{
    // The adversarial round-robin case: every sixth job is heavy
    // (an 8-4 config, ~32x a 1-1 job) — index-residue striping
    // piles every heavy job onto one shard for both 2 and 3 shards
    // (6 is divisible by both).
    JobCostModel m;
    std::vector<double> costs;
    for (int i = 0; i < 24; ++i)
        costs.push_back(i % 6 == 0 ? m.estimate({8, 4}, 4096)
                                   : m.estimate({1, 1}, 4096));
    for (int count : {2, 3}) {
        auto striped = costStripedPartition(costs, count);
        std::vector<std::vector<size_t>> rr;
        for (int s = 0; s < count; ++s)
            rr.push_back(shardIndices(costs.size(), s, count));
        double striped_ratio = costImbalance(costs, striped);
        double rr_ratio = costImbalance(costs, rr);
        EXPECT_LT(striped_ratio, rr_ratio) << count;
        // LPT is essentially perfect at 2 shards (heavies split
        // evenly); at 3 shards the 4th heavy job forces ~1.5, the
        // optimum for this instance — while round-robin piles all
        // four onto one shard (ratio > 10).
        EXPECT_LT(striped_ratio, count == 2 ? 1.1 : 2.0) << count;
        EXPECT_GT(rr_ratio, 10.0) << count;
    }
}

TEST(CostStripe, ImbalanceEdgeCases)
{
    EXPECT_EQ(costImbalance({}, {}), 1.0);
    // Fewer jobs than shards: an empty shard is infinitely
    // imbalanced (the planner must surface that, not hide it).
    std::vector<double> one = {5.0};
    auto shards = costStripedPartition(one, 3);
    EXPECT_TRUE(std::isinf(costImbalance(one, shards)));
    // All-empty shards (no jobs at all) are "balanced".
    std::vector<double> none;
    EXPECT_EQ(costImbalance(none, costStripedPartition(none, 2)),
              1.0);
}

TEST(CampaignShard, SkewedConfigUnionAndMergeBitIdentical)
{
    // The satellite acceptance case: deliberately skewed configs
    // (8-4 jobs cost ~32x the 1-1 jobs) still union to exactly the
    // unsharded campaign, and the merged export is byte-identical
    // to the serial unsharded reference.
    Fixture f;
    // Six configs with the heavy 8-4 first: in the workload-major
    // job list the heavy jobs land at indices = 0 mod 6, the
    // residue class round-robin striping dumps onto a single shard
    // at both 2 and 3 shards.
    auto skewed = [&]() {
        CampaignSpec spec = tinySpec();
        spec.configs = {{8, 4}, {1, 1}, {1, 2},
                        {2, 1}, {1, 4}, {2, 2}};
        return spec;
    };

    CampaignSpec ref_spec = skewed();
    ref_spec.threads = 1;
    ref_spec.cacheDir = freshCacheDir("skew-ref");
    Campaign ref(f.machine, ref_spec);
    CampaignResult r = ref.run(f.arch);
    std::ostringstream ref_csv;
    exportSamplesCsv(ref_csv, r.samples);

    for (int count : {2, 3}) {
        CampaignSpec spec = skewed();
        spec.cacheDir = freshCacheDir(cat("skew-", count, "way"));
        spec.shardCount = count;

        std::set<uint64_t> seen;
        size_t slice_total = 0;
        double min_cost = 1e300, max_cost = 0.0;
        for (int index = 0; index < count; ++index) {
            spec.shardIndex = index;
            Campaign shard(f.machine, spec);
            CampaignResult sr = shard.run(f.arch);
            EXPECT_EQ(sr.totalJobs, r.jobs.size()) << index;
            EXPECT_EQ(sr.cacheHits, 0u) << index;
            slice_total += sr.jobs.size();
            double cost = 0.0;
            for (const auto &job : sr.jobs) {
                cost += job.cost;
                EXPECT_TRUE(seen.insert(job.key).second)
                    << "key measured twice in shard " << index;
            }
            min_cost = std::min(min_cost, cost);
            max_cost = std::max(max_cost, cost);
        }
        EXPECT_EQ(slice_total, r.jobs.size());
        for (const auto &job : r.jobs)
            EXPECT_EQ(seen.count(job.key), 1u);

        // Cost balance: the striped shards must beat round-robin
        // on this skew, by construction of the config order.
        std::vector<double> costs;
        for (const auto &job : r.jobs)
            costs.push_back(job.cost);
        std::vector<std::vector<size_t>> rr;
        for (int s = 0; s < count; ++s)
            rr.push_back(shardIndices(costs.size(), s, count));
        EXPECT_LT(max_cost / min_cost, costImbalance(costs, rr))
            << count;

        // Merge: byte-identical to the unsharded serial export.
        CampaignManifest m;
        ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m));
        ASSERT_EQ(m.entries.size(), r.jobs.size());
        ResultCache cache(spec.cacheDir);
        ManifestCollection col = collectManifestSamples(m, cache);
        EXPECT_TRUE(col.missing.empty());
        std::ostringstream merged_csv;
        exportSamplesCsv(merged_csv, col.samples);
        EXPECT_EQ(merged_csv.str(), ref_csv.str())
            << count << "-way skewed merge not bit-identical";
    }
}

TEST(CampaignMeasure, LongestFirstDrainKeepsExportBytes)
{
    // runJobs executes its local queue longest-job-first; the
    // export must not notice (samples are slot-indexed). Compare
    // export bytes of a serial run (in-order reference) against a
    // pooled run over a cost-skewed plan.
    Fixture f;
    auto progs = f.programs(3);
    std::vector<ChipConfig> cfgs = {{1, 1}, {8, 4}, {1, 2},
                                    {8, 2}};
    CampaignSpec serial = tinySpec();
    serial.threads = 1;
    Campaign c1(f.machine, serial);
    std::ostringstream a;
    exportSamplesCsv(a, c1.measure(progs, cfgs));

    CampaignSpec pooled = tinySpec();
    pooled.threads = 4;
    Campaign c4(f.machine, pooled);
    std::ostringstream b;
    exportSamplesCsv(b, c4.measure(progs, cfgs));
    EXPECT_EQ(a.str(), b.str());
}

TEST(CampaignPlan, DryRunPartitionsWithoutMeasuring)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    spec.configs = {{8, 4}, {1, 1}, {4, 2}};
    Campaign c(f.machine, spec);
    CampaignPlan plan = c.plan(f.arch, 3);

    EXPECT_EQ(plan.totalJobs,
              plan.workloads.size() * spec.configs.size());
    ASSERT_EQ(plan.shards.size(), 3u);
    ASSERT_EQ(plan.roundRobin.size(), 3u);
    // Shards cover the job list disjointly; costs add up.
    std::vector<char> seen(plan.totalJobs, 0);
    double shard_cost = 0.0;
    for (const auto &sp : plan.shards) {
        shard_cost += sp.cost;
        for (size_t i : sp.jobs) {
            EXPECT_EQ(seen[i], 0);
            seen[i] = 1;
        }
    }
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << i;
    EXPECT_DOUBLE_EQ(shard_cost, plan.totalCost);
    // The skewed config mix is exactly what round-robin balances
    // poorly and LPT balances well.
    EXPECT_LE(plan.stripedImbalance, plan.roundRobinImbalance);
    // Dry run: nothing measured, nothing cached.
    EXPECT_EQ(c.cacheHits() + c.cacheMisses(), 0u);
}

// ---------------------------------------------------------------
// parallelFor abandonment reporting

TEST(ParallelFor, AbandonedIndicesAreLoggedWithLabel)
{
    // Construction callers pass a label; a worker failure must say
    // how much of the range was abandoned before the rethrow, so
    // partial synthesis never reads like a complete suite.
    for (int threads : {1, 4}) {
        testing::internal::CaptureStderr();
        EXPECT_THROW(
            parallelFor(
                threads, 64,
                [](size_t i) {
                    if (i == 10)
                        throw std::runtime_error("builder died");
                },
                "test synthesis"),
            std::runtime_error);
        std::string err = testing::internal::GetCapturedStderr();
        EXPECT_NE(err.find("test synthesis"), std::string::npos)
            << threads << ": " << err;
        EXPECT_NE(err.find("abandoned"), std::string::npos)
            << threads << ": " << err;
    }
    // Without a label (pure measurement), nothing is logged.
    testing::internal::CaptureStderr();
    EXPECT_THROW(parallelFor(2, 8,
                             [](size_t) {
                                 throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    EXPECT_EQ(testing::internal::GetCapturedStderr().find(
                  "abandoned"),
              std::string::npos);
}

// ---------------------------------------------------------------
// DVFS frequency axis

TEST(CampaignSpec, FreqsKeyParses)
{
    CampaignSpec spec = parseCampaignSpecText(
        "freqs = 2.0, 2.5,3.0,3.5\n", "<test>");
    ASSERT_EQ(spec.freqs.size(), 4u);
    EXPECT_EQ(spec.freqs[0], 2.0);
    EXPECT_EQ(spec.freqs[3], 3.5);
    // Default: no axis.
    EXPECT_TRUE(parseCampaignSpecText("", "<test>").freqs.empty());
}

TEST(CampaignSpecDeath, BadFreqsFatal)
{
    EXPECT_EXIT(parseCampaignSpecText("freqs = 0\n", "<test>"),
                testing::ExitedWithCode(1), "must be > 0");
    EXPECT_EXIT(parseCampaignSpecText("freqs = 2.0,-1\n", "<test>"),
                testing::ExitedWithCode(1), "must be > 0");
    EXPECT_EXIT(
        parseCampaignSpecText("freqs = 2.0,2.0\n", "<test>"),
        testing::ExitedWithCode(1), "duplicate frequency");
}

TEST(CampaignJobKey, FrequencyJoinsTheKeyOnlyWhenSwept)
{
    Fixture f;
    auto progs = f.programs(1);
    uint64_t fp = f.machine.fingerprint();
    uint64_t legacy = campaignJobKey(progs[0], {1, 1}, fp, 0);
    // The nominal sentinel (0) is the pre-DVFS key: a cache
    // written before the frequency axis existed keeps hitting.
    EXPECT_EQ(legacy, campaignJobKey(progs[0], {1, 1}, fp, 0, 0.0));
    // Swept points get their own keys, distinct per frequency.
    uint64_t k25 = campaignJobKey(progs[0], {1, 1}, fp, 0, 2.5);
    uint64_t k35 = campaignJobKey(progs[0], {1, 1}, fp, 0, 3.5);
    EXPECT_NE(legacy, k25);
    EXPECT_NE(legacy, k35);
    EXPECT_NE(k25, k35);
}

TEST(CampaignFreqs, ExpansionCrossProductsAndNominalCollapses)
{
    Fixture f;
    auto progs = f.programs(2);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 1}};

    // Reference: the axis-free measurement.
    Campaign ref(f.machine, tinySpec());
    auto nominal = ref.measure(progs, cfgs);

    CampaignSpec spec = tinySpec();
    spec.freqs = {2.0, f.machine.clockGhz(), 3.5};
    Campaign c(f.machine, spec);
    auto swept = c.measure(progs, cfgs);

    // Workload-major, config then frequency innermost.
    ASSERT_EQ(swept.size(),
              progs.size() * cfgs.size() * spec.freqs.size());
    for (size_t w = 0; w < progs.size(); ++w) {
        for (size_t cfg = 0; cfg < cfgs.size(); ++cfg) {
            size_t base =
                (w * cfgs.size() + cfg) * spec.freqs.size();
            for (size_t fi = 0; fi < spec.freqs.size(); ++fi) {
                const Sample &s = swept[base + fi];
                EXPECT_EQ(s.workload, progs[w].name);
                EXPECT_EQ(s.config.cores, cfgs[cfg].cores);
                EXPECT_EQ(s.freqGhz, spec.freqs[fi]);
            }
            // The sweep point at the nominal clock is exactly the
            // axis-free measurement (same key, same salt, same
            // sensor noise).
            EXPECT_TRUE(samplesEqual(
                swept[base + 1], nominal[w * cfgs.size() + cfg]));
        }
    }

    // Physics across the samples: the sweep must not be a rename —
    // power moves with the operating point.
    EXPECT_NE(swept[0].powerWatts, swept[1].powerWatts);
    EXPECT_NE(swept[1].powerWatts, swept[2].powerWatts);
}

TEST(CampaignFreqs, SweptCampaignSharesNominalCacheEntries)
{
    // The miss-free upgrade: a cache populated by an axis-free
    // campaign serves the nominal slice of a later sweep.
    Fixture f;
    auto progs = f.programs(2);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 1}};
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("freq-upgrade");

    Campaign legacy(f.machine, spec);
    legacy.measure(progs, cfgs);
    EXPECT_EQ(legacy.cacheMisses(), progs.size() * cfgs.size());

    CampaignSpec sweep_spec = spec;
    sweep_spec.freqs = {2.0, f.machine.clockGhz()};
    Campaign sweep(f.machine, sweep_spec);
    sweep.measure(progs, cfgs);
    // Half the sweep (the nominal points) hits the legacy entries.
    EXPECT_EQ(sweep.cacheHits(), progs.size() * cfgs.size());
    EXPECT_EQ(sweep.cacheMisses(), progs.size() * cfgs.size());
}

TEST(SampleText, MissingFreqLoadsAsNominalDefault)
{
    // Pre-DVFS cache entries carry no freq line: they must load as
    // the 3.0 GHz default (a hit, not a cold re-run).
    Sample s;
    s.workload = "w";
    s.config = {1, 1};
    s.rates = {1, 2, 3, 4, 5, 6, 7};
    s.powerWatts = 70.0;
    s.instrGips = 1.0;
    s.coreIpc = 1.0;
    s.freqGhz = 2.5;
    std::string text = sampleToText(s);
    auto at = text.find("freq ");
    ASSERT_NE(at, std::string::npos);
    // Erase the freq line (pre-DVFS writers never emitted one).
    std::string legacy =
        text.substr(0, at) + text.substr(text.find('\n', at) + 1);
    Sample t;
    t.freqGhz = 99.0; // stale state must not leak through
    ASSERT_TRUE(sampleFromText(legacy, t));
    EXPECT_EQ(t.freqGhz, kNominalFreqGhz);
    // While an explicit non-positive frequency is corrupt.
    for (const char *bad : {"freq 0\n", "freq -2.5\n", "freq x\n"}) {
        Sample u;
        EXPECT_FALSE(sampleFromText(legacy + bad, u)) << bad;
    }
    // And the full round-trip preserves a swept frequency.
    Sample v;
    ASSERT_TRUE(sampleFromText(text, v));
    EXPECT_EQ(v.freqGhz, 2.5);
}

TEST(CampaignCache, LegacyEntryWithoutFreqIsAHit)
{
    // End to end: strip the freq line off a real cache entry (as a
    // pre-DVFS run would have written it) and re-measure — the
    // entry must stay a hit.
    Fixture f;
    auto progs = f.programs(1);
    std::vector<ChipConfig> cfgs = {{1, 1}};
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("freq-legacy");

    Campaign c(f.machine, spec);
    auto s1 = c.measure(progs, cfgs);

    uint64_t key = campaignJobKey(progs[0], cfgs[0],
                                  f.machine.fingerprint(), 0);
    ResultCache cache(spec.cacheDir);
    std::string text;
    {
        std::ifstream in(cache.pathOf(key));
        std::ostringstream os;
        os << in.rdbuf();
        text = os.str();
    }
    auto at = text.find("freq ");
    ASSERT_NE(at, std::string::npos);
    {
        std::ofstream out(cache.pathOf(key));
        out << text.substr(0, at)
            << text.substr(text.find('\n', at) + 1);
    }
    Campaign c2(f.machine, spec);
    auto s2 = c2.measure(progs, cfgs);
    EXPECT_EQ(c2.cacheHits(), 1u);
    EXPECT_EQ(c2.cacheMisses(), 0u);
    EXPECT_TRUE(samplesEqual(s1[0], s2[0]));
}

TEST(CampaignManifest, FreqSuffixRoundTripsAndRejectsCorrupt)
{
    CampaignManifest m;
    m.spec = "s";
    m.fingerprint = 7;
    m.entries.push_back({1, {1, 1}, "adhoc", "nominal", 0.0});
    m.entries.push_back({2, {8, 4}, "adhoc", "swept", 2.5});
    std::string text = manifestToText(m);
    // Nominal entries keep the pre-DVFS token; swept ones gain @.
    EXPECT_NE(text.find(" 1-1 "), std::string::npos);
    EXPECT_NE(text.find(" 8-4@2.5 "), std::string::npos);
    CampaignManifest t;
    ASSERT_TRUE(manifestFromText(text, t));
    EXPECT_EQ(t.entries[0].freqGhz, 0.0);
    EXPECT_EQ(t.entries[1].freqGhz, 2.5);
    // A non-positive swept frequency is corrupt, like a
    // non-positive config.
    for (const char *bad : {"8-4@0", "8-4@-1", "8-4@"}) {
        std::string broken = text;
        auto at = broken.find("8-4@2.5");
        broken.replace(at, 7, bad);
        CampaignManifest u;
        EXPECT_FALSE(manifestFromText(broken, u)) << bad;
    }
}

TEST(CampaignShard, ShardedFreqSweepMergesBitIdentical)
{
    // The acceptance bar: a sharded frequency-sweep campaign
    // assembles byte-identically to the unsharded run.
    Fixture f;
    auto sweep_spec = []() {
        CampaignSpec spec = tinySpec();
        spec.configs = {{1, 1}, {2, 2}};
        spec.freqs = {2.0, 3.0, 3.5};
        return spec;
    };

    CampaignSpec ref_spec = sweep_spec();
    ref_spec.threads = 1;
    ref_spec.cacheDir = freshCacheDir("freq-shard-ref");
    Campaign ref(f.machine, ref_spec);
    CampaignResult r = ref.run(f.arch);
    EXPECT_EQ(r.totalJobs, r.workloads.size() * 2 * 3);
    std::ostringstream ref_csv;
    exportSamplesCsv(ref_csv, r.samples);

    CampaignSpec spec = sweep_spec();
    spec.cacheDir = freshCacheDir("freq-shard");
    spec.shardCount = 2;
    std::set<uint64_t> seen;
    for (int index = 0; index < 2; ++index) {
        spec.shardIndex = index;
        Campaign shard(f.machine, spec);
        CampaignResult sr = shard.run(f.arch);
        EXPECT_EQ(sr.cacheHits, 0u) << index;
        for (const auto &job : sr.jobs)
            EXPECT_TRUE(seen.insert(job.key).second);
    }
    EXPECT_EQ(seen.size(), r.jobs.size());

    CampaignManifest m;
    ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m));
    ResultCache cache(spec.cacheDir);
    ManifestCollection col = collectManifestSamples(m, cache);
    EXPECT_TRUE(col.missing.empty());
    std::ostringstream merged_csv;
    exportSamplesCsv(merged_csv, col.samples);
    EXPECT_EQ(merged_csv.str(), ref_csv.str());
}

// ---------------------------------------------------------------
// Undervolting (vdd) axis

TEST(CampaignSpec, VddsKeyParses)
{
    CampaignSpec spec = parseCampaignSpecText(
        "vdds = 0.85, 0.9,0.95,1.0\n", "<test>");
    ASSERT_EQ(spec.vdds.size(), 4u);
    EXPECT_EQ(spec.vdds[0], 0.85);
    EXPECT_EQ(spec.vdds[3], 1.0);
    // Default: no axis.
    EXPECT_TRUE(parseCampaignSpecText("", "<test>").vdds.empty());
}

TEST(CampaignSpecDeath, BadVddsFatal)
{
    EXPECT_EXIT(parseCampaignSpecText("vdds = 0\n", "<test>"),
                testing::ExitedWithCode(1), "must be > 0 V");
    EXPECT_EXIT(
        parseCampaignSpecText("vdds = 0.9,-1\n", "<test>"),
        testing::ExitedWithCode(1), "must be > 0 V");
    EXPECT_EXIT(
        parseCampaignSpecText("vdds = 0.9,0.9\n", "<test>"),
        testing::ExitedWithCode(1), "duplicate voltage");
}

TEST(CampaignJobKey, VddJoinsTheKeyOnlyWhenOffCurve)
{
    Fixture f;
    auto progs = f.programs(1);
    uint64_t fp = f.machine.fingerprint();
    uint64_t legacy = campaignJobKey(progs[0], {1, 1}, fp, 0);
    // The on-curve sentinel (0) is the pre-undervolting key.
    EXPECT_EQ(legacy,
              campaignJobKey(progs[0], {1, 1}, fp, 0, 0.0, 0.0));
    // Off-curve voltages get their own keys, distinct per volt.
    uint64_t k90 =
        campaignJobKey(progs[0], {1, 1}, fp, 0, 0.0, 0.90);
    uint64_t k95 =
        campaignJobKey(progs[0], {1, 1}, fp, 0, 0.0, 0.95);
    EXPECT_NE(legacy, k90);
    EXPECT_NE(legacy, k95);
    EXPECT_NE(k90, k95);
    // Domain separation: a vdd-only job must not collide with a
    // freq-only job sweeping the same numeric value.
    EXPECT_NE(campaignJobKey(progs[0], {1, 1}, fp, 0, 2.5, 0.0),
              campaignJobKey(progs[0], {1, 1}, fp, 0, 0.0, 2.5));
}

TEST(CampaignVdds, ExpansionCrossProductsAndOnCurveCollapses)
{
    Fixture f;
    auto progs = f.programs(2);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 1}};

    // Reference: the axis-free (on-curve nominal) measurement.
    Campaign ref(f.machine, tinySpec());
    auto nominal = ref.measure(progs, cfgs);

    double curve_v = f.machine.voltageAt(f.machine.clockGhz());
    CampaignSpec spec = tinySpec();
    spec.vdds = {0.90, curve_v};
    Campaign c(f.machine, spec);
    auto swept = c.measure(progs, cfgs);

    // Workload-major, config then frequency then vdd innermost.
    ASSERT_EQ(swept.size(),
              progs.size() * cfgs.size() * spec.vdds.size());
    for (size_t w = 0; w < progs.size(); ++w)
        for (size_t cfg = 0; cfg < cfgs.size(); ++cfg) {
            size_t base =
                (w * cfgs.size() + cfg) * spec.vdds.size();
            EXPECT_EQ(swept[base].vddVolts, 0.90);
            // The on-curve sweep point is exactly the axis-free
            // measurement (collapsed key, same sensor noise).
            EXPECT_TRUE(samplesEqual(
                swept[base + 1], nominal[w * cfgs.size() + cfg]));
            // Undervolting at fixed frequency saves power.
            EXPECT_LT(swept[base].powerWatts,
                      swept[base + 1].powerWatts);
        }
}

TEST(CampaignVdds, BelowVminComesBackFlaggedUnreliable)
{
    Fixture f;
    auto progs = f.programs(1);
    std::vector<ChipConfig> cfgs = {{1, 1}};
    CampaignSpec spec = tinySpec();
    // At 3 GHz the hidden Vmin is at least 0.60 + 0.04*3 = 0.72 V
    // (plus the IPC term): 0.70 V is always below it, 1.0 V (the
    // nominal curve point) always above.
    spec.vdds = {0.70, 1.0};
    Campaign c(f.machine, spec);
    auto swept = c.measure(progs, cfgs);
    ASSERT_EQ(swept.size(), 2u);
    EXPECT_FALSE(swept[0].reliable);
    EXPECT_TRUE(swept[1].reliable);
    // The unreliable point still carries its measured numbers.
    EXPECT_GT(swept[0].powerWatts, 0.0);
}

TEST(SampleText, MissingVddLoadsAsCurveDefault)
{
    // Pre-undervolting cache entries carry no vdd/reliable lines:
    // they must load as the on-curve voltage at their frequency,
    // reliable.
    Sample s;
    s.workload = "w";
    s.config = {1, 1};
    s.rates = {1, 2, 3, 4, 5, 6, 7};
    s.powerWatts = 70.0;
    s.instrGips = 1.0;
    s.coreIpc = 1.0;
    s.freqGhz = 2.5;
    s.vddVolts = 0.9;
    s.reliable = false;
    std::string text = sampleToText(s);
    // Erase the vdd and reliable lines (pre-undervolting writers
    // never emitted them).
    std::string legacy = text;
    for (const char *key : {"vdd ", "reliable "}) {
        auto at = legacy.find(key);
        ASSERT_NE(at, std::string::npos) << key;
        legacy = legacy.substr(0, at) +
                 legacy.substr(legacy.find('\n', at) + 1);
    }
    Sample t;
    t.vddVolts = 99.0; // stale state must not leak through
    t.reliable = false;
    ASSERT_TRUE(sampleFromText(legacy, t));
    EXPECT_EQ(t.vddVolts, nominalCurveVoltage(2.5));
    EXPECT_TRUE(t.reliable);
    // While explicit corrupt lines must fail the parse.
    for (const char *bad : {"vdd 0\n", "vdd -1\n", "vdd x\n",
                            "reliable 2\n", "reliable x\n",
                            "reliable \n"}) {
        Sample u;
        EXPECT_FALSE(sampleFromText(legacy + bad, u)) << bad;
    }
    // And the full round-trip preserves voltage and flag.
    Sample v;
    ASSERT_TRUE(sampleFromText(text, v));
    EXPECT_EQ(v.vddVolts, 0.9);
    EXPECT_FALSE(v.reliable);
}

TEST(CampaignCache, LegacyEntryWithoutVddIsAHit)
{
    // End to end: strip the vdd and reliable lines off a real
    // cache entry (as a pre-undervolting run would have written
    // it) and re-measure — the entry must stay a hit with the
    // exact on-curve voltage.
    Fixture f;
    auto progs = f.programs(1);
    std::vector<ChipConfig> cfgs = {{1, 1}};
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("vdd-legacy");

    Campaign c(f.machine, spec);
    auto s1 = c.measure(progs, cfgs);

    uint64_t key = campaignJobKey(progs[0], cfgs[0],
                                  f.machine.fingerprint(), 0);
    ResultCache cache(spec.cacheDir);
    std::string text;
    {
        std::ifstream in(cache.pathOf(key));
        std::ostringstream os;
        os << in.rdbuf();
        text = os.str();
    }
    for (const char *k : {"vdd ", "reliable "}) {
        auto at = text.find(k);
        ASSERT_NE(at, std::string::npos) << k;
        text = text.substr(0, at) +
               text.substr(text.find('\n', at) + 1);
    }
    {
        std::ofstream out(cache.pathOf(key));
        out << text;
    }
    Campaign c2(f.machine, spec);
    auto s2 = c2.measure(progs, cfgs);
    EXPECT_EQ(c2.cacheHits(), 1u);
    EXPECT_EQ(c2.cacheMisses(), 0u);
    EXPECT_TRUE(samplesEqual(s1[0], s2[0]));
}

TEST(CampaignManifest, VddSuffixRoundTripsAndRejectsCorrupt)
{
    CampaignManifest m;
    m.spec = "s";
    m.fingerprint = 7;
    m.entries.push_back({1, {1, 1}, "adhoc", "nominal", 0.0, 0.0});
    m.entries.push_back({2, {8, 4}, "adhoc", "uv", 0.0, 0.875});
    m.entries.push_back({3, {8, 4}, "adhoc", "both", 2.5, 0.875});
    std::string text = manifestToText(m);
    // On-curve entries keep the bare token; off-curve ones gain a
    // V-terminated @vdd segment, after the @freq one when both.
    EXPECT_NE(text.find(" 1-1 "), std::string::npos);
    EXPECT_NE(text.find(" 8-4@0.875V "), std::string::npos);
    EXPECT_NE(text.find(" 8-4@2.5@0.875V "), std::string::npos);
    CampaignManifest t;
    ASSERT_TRUE(manifestFromText(text, t));
    EXPECT_EQ(t.entries[0].vdd, 0.0);
    EXPECT_EQ(t.entries[1].freqGhz, 0.0);
    EXPECT_EQ(t.entries[1].vdd, 0.875);
    EXPECT_EQ(t.entries[2].freqGhz, 2.5);
    EXPECT_EQ(t.entries[2].vdd, 0.875);
    // Non-positive voltages, a missing trailing V on the second
    // segment and torn suffixes are corrupt.
    for (const char *bad :
         {"8-4@0V", "8-4@-1V", "8-4@2.5@0.92", "8-4@2.5@V",
          "8-4@2.5@0.92V@1V"}) {
        std::string broken = text;
        auto at = broken.find("8-4@0.875V");
        broken.replace(at, 10, bad);
        CampaignManifest u;
        EXPECT_FALSE(manifestFromText(broken, u)) << bad;
    }
}

TEST(CampaignShard, ShardedVddFreqSweepMergesBitIdentical)
{
    // The acceptance bar: a sharded vdd x freq cross-product
    // campaign assembles byte-identically to the unsharded run —
    // including the on-curve collapse (1.0 V is the curve voltage
    // at 3.0 GHz but off-curve at 2.5 GHz) and any unreliable
    // flags.
    Fixture f;
    auto sweep_spec = []() {
        CampaignSpec spec = tinySpec();
        spec.configs = {{1, 1}, {2, 2}};
        spec.freqs = {2.5, 3.0};
        spec.vdds = {0.90, 1.0};
        return spec;
    };

    CampaignSpec ref_spec = sweep_spec();
    ref_spec.threads = 1;
    ref_spec.cacheDir = freshCacheDir("vdd-shard-ref");
    Campaign ref(f.machine, ref_spec);
    CampaignResult r = ref.run(f.arch);
    EXPECT_EQ(r.totalJobs, r.workloads.size() * 2 * 2 * 2);
    std::ostringstream ref_csv;
    exportSamplesCsv(ref_csv, r.samples);

    CampaignSpec spec = sweep_spec();
    spec.cacheDir = freshCacheDir("vdd-shard");
    spec.shardCount = 2;
    std::set<uint64_t> seen;
    for (int index = 0; index < 2; ++index) {
        spec.shardIndex = index;
        Campaign shard(f.machine, spec);
        CampaignResult sr = shard.run(f.arch);
        EXPECT_EQ(sr.cacheHits, 0u) << index;
        for (const auto &job : sr.jobs)
            EXPECT_TRUE(seen.insert(job.key).second);
    }
    EXPECT_EQ(seen.size(), r.jobs.size());

    CampaignManifest m;
    ASSERT_TRUE(loadManifest(manifestPath(spec.cacheDir), m));
    ResultCache cache(spec.cacheDir);
    ManifestCollection col = collectManifestSamples(m, cache);
    EXPECT_TRUE(col.missing.empty());
    std::ostringstream merged_csv;
    exportSamplesCsv(merged_csv, col.samples);
    EXPECT_EQ(merged_csv.str(), ref_csv.str());
}

// ---------------------------------------------------------------
// Progress ETA and cost-model calibration

TEST(CampaignProgress, LinesIncludeCostWeightedEta)
{
    Fixture f;
    auto progs = f.programs(4, 768);
    CampaignSpec spec = tinySpec();
    spec.threads = 1;
    spec.progressSeconds = 0.001;
    Campaign c(f.machine, spec);
    testing::internal::CaptureStderr();
    c.measure(progs, {ChipConfig{1, 1}, ChipConfig{2, 2},
                      ChipConfig{4, 2}});
    std::string err = testing::internal::GetCapturedStderr();
    ASSERT_NE(err.find("jobs done"), std::string::npos) << err;
    EXPECT_NE(err.find("s left"), std::string::npos) << err;
}

TEST(CampaignRun, RecordsPerJobWallSeconds)
{
    Fixture f;
    CampaignSpec spec = tinySpec();
    Campaign c(f.machine, spec);
    CampaignResult r = c.run(f.arch);
    ASSERT_EQ(r.jobSeconds.size(), r.jobs.size());
    ASSERT_EQ(r.jobCached.size(), r.jobs.size());
    for (size_t i = 0; i < r.jobs.size(); ++i) {
        EXPECT_GT(r.jobSeconds[i], 0.0) << i;
        EXPECT_EQ(r.jobCached[i], 0) << i; // no cache dir: all cold
    }
}

TEST(JobCost, CalibrationRecoversKnownConstants)
{
    // Synthetic timings from known constants: seconds =
    // a + b * threads * body. The fit must recover them and the
    // normalized model must land at perJob = a/b.
    const double a = 3e-4, b = 2e-8;
    std::vector<JobTiming> timings;
    for (int cores : {1, 2, 4, 8})
        for (int smt : {1, 2, 4})
            for (size_t body : {256u, 1024u, 4096u})
                timings.push_back(
                    {{cores, smt}, body,
                     a + b * cores * smt *
                             static_cast<double>(body),
                     false});
    // Cache hits must be ignored, not fitted.
    timings.push_back({{8, 4}, 4096, 1e-6, true});

    CostCalibration cal = calibrateJobCostModel(timings);
    ASSERT_TRUE(cal.ok);
    EXPECT_EQ(cal.used, timings.size() - 1);
    EXPECT_NEAR(cal.perJobSeconds, a, a * 1e-6);
    EXPECT_NEAR(cal.perSlotThreadSeconds, b, b * 1e-6);
    EXPECT_NEAR(cal.fitted.perJob, a / b, a / b * 1e-6);
    EXPECT_EQ(cal.fitted.perSlotThread, 1.0);
    EXPECT_GT(cal.r2, 0.999);
}

TEST(JobCost, CalibrationRefusesDegenerateInput)
{
    // All-cached, empty, or single-size inputs cannot support a
    // fit.
    EXPECT_FALSE(calibrateJobCostModel({}).ok);
    std::vector<JobTiming> cached = {{{1, 1}, 256, 0.1, true},
                                     {{8, 4}, 4096, 0.9, true}};
    EXPECT_FALSE(calibrateJobCostModel(cached).ok);
    std::vector<JobTiming> flat = {{{1, 1}, 256, 0.1, false},
                                   {{1, 1}, 256, 0.2, false}};
    EXPECT_FALSE(calibrateJobCostModel(flat).ok);
}

TEST(CampaignFingerprint, CorpusTagSeparatesManifests)
{
    // measure()-provided corpora are invisible to the fingerprint;
    // the corpus tag stands in for them, so differently-shaped
    // corpora (fast vs. full bench modes) sharing one cache
    // directory keep separate manifests. Job keys never include
    // it: cache entries are shared freely.
    Fixture f;
    CampaignSpec a = tinySpec();
    CampaignSpec b = tinySpec();
    b.corpusTag = 0xfa57ull;
    uint64_t fp = f.machine.fingerprint();
    EXPECT_NE(campaignFingerprint(a, fp),
              campaignFingerprint(b, fp));
    auto progs = f.programs(1);
    EXPECT_EQ(campaignJobKey(progs[0], {1, 1}, fp, 0),
              campaignJobKey(progs[0], {1, 1}, fp, 0));
}
