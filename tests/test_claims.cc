/**
 * @file
 * Tests for claim-based work stealing: atomic claim acquisition,
 * TTL expiry and theft, the ClaimedQueue pool semantics, and the
 * end-to-end guarantee that a --serve campaign (including one with
 * a dead peer's stale claims) exports byte-identically to a plain
 * run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/claims.hh"
#include "campaign/export.hh"
#include "util/logging.hh"

using namespace mprobe;

namespace
{

namespace fs = std::filesystem;

/** Fresh per-test directory. */
std::string
freshDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "mprobe-claims-" + tag;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Backdate a claim file's heartbeat by @p seconds. */
void
backdateClaim(const std::string &path, double seconds)
{
    auto stamp = fs::file_time_type::clock::now() -
                 std::chrono::duration_cast<
                     fs::file_time_type::duration>(
                     std::chrono::duration<double>(seconds));
    fs::last_write_time(path, stamp);
}

TEST(Claims, AcquireReleaseReacquire)
{
    std::string dir = freshDir("acquire");
    ClaimDir claims(dir, "w1", 60.0);
    EXPECT_TRUE(claims.enabled());
    EXPECT_TRUE(claims.tryAcquire(42));
    EXPECT_TRUE(fs::exists(claims.pathOf(42)));
    // A fresh claim is not re-acquirable, not even by its holder
    // (pool entries are never handed out twice locally, so a
    // self-re-acquire attempt means a bug).
    EXPECT_FALSE(claims.tryAcquire(42));
    claims.release(42);
    EXPECT_FALSE(fs::exists(claims.pathOf(42)));
    EXPECT_TRUE(claims.tryAcquire(42));
    EXPECT_EQ(claims.acquired(), 2u);
    EXPECT_EQ(claims.stolen(), 0u);
}

TEST(Claims, ClaimFileCarriesWorkerId)
{
    std::string dir = freshDir("id");
    ClaimDir claims(dir, "host-a:123", 60.0);
    ASSERT_TRUE(claims.tryAcquire(7));
    ClaimInfo info;
    ASSERT_TRUE(claims.info(7, info));
    EXPECT_EQ(info.worker, "host-a:123");
    EXPECT_GE(info.ageSeconds, 0.0);
    EXPECT_LT(info.ageSeconds, 30.0);
}

TEST(Claims, RaceExactlyOneWinner)
{
    std::string dir = freshDir("race");
    const int n = 8;
    std::vector<std::unique_ptr<ClaimDir>> dirs;
    for (int i = 0; i < n; ++i)
        dirs.push_back(std::make_unique<ClaimDir>(
            dir, cat("w", i), 60.0));
    // All threads spin on a flag so the open(O_EXCL) calls land as
    // close together as the scheduler allows.
    std::atomic<bool> go{false};
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i)
        threads.emplace_back([&, i]() {
            while (!go.load())
                std::this_thread::yield();
            if (dirs[static_cast<size_t>(i)]->tryAcquire(99))
                ++winners;
        });
    go.store(true);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(winners.load(), 1);
}

TEST(Claims, FreshClaimNotStolen)
{
    std::string dir = freshDir("fresh");
    ClaimDir a(dir, "alive", 60.0);
    ClaimDir b(dir, "thief", 60.0);
    ASSERT_TRUE(a.tryAcquire(1));
    EXPECT_FALSE(b.tryAcquire(1));
    EXPECT_EQ(b.stolen(), 0u);
    // The holder's identity survived the failed theft.
    ClaimInfo info;
    ASSERT_TRUE(b.info(1, info));
    EXPECT_EQ(info.worker, "alive");
}

TEST(Claims, ExpiredClaimStolen)
{
    std::string dir = freshDir("steal");
    ClaimDir dead(dir, "dead", 60.0);
    ClaimDir thief(dir, "thief", 60.0);
    ASSERT_TRUE(dead.tryAcquire(5));
    backdateClaim(dead.pathOf(5), 120.0);
    EXPECT_TRUE(thief.tryAcquire(5));
    EXPECT_EQ(thief.stolen(), 1u);
    ClaimInfo info;
    ASSERT_TRUE(thief.info(5, info));
    EXPECT_EQ(info.worker, "thief");
}

TEST(Claims, HeartbeatPreventsTheft)
{
    std::string dir = freshDir("heartbeat");
    ClaimDir holder(dir, "holder", 60.0);
    ClaimDir thief(dir, "thief", 60.0);
    ASSERT_TRUE(holder.tryAcquire(3));
    backdateClaim(holder.pathOf(3), 120.0);
    // The heartbeat refreshes the mtime of every held claim, so
    // the backdated (otherwise stale) claim becomes fresh again.
    holder.heartbeatHeld();
    EXPECT_FALSE(thief.tryAcquire(3));
}

TEST(Claims, SweepRemovesOnlyStale)
{
    std::string dir = freshDir("sweep");
    ClaimDir claims(dir, "w", 60.0);
    ClaimDir other(dir, "o", 60.0);
    ASSERT_TRUE(claims.tryAcquire(1));
    EXPECT_FALSE(other.sweepIfStale(1));
    EXPECT_TRUE(fs::exists(claims.pathOf(1)));
    backdateClaim(claims.pathOf(1), 120.0);
    EXPECT_TRUE(other.sweepIfStale(1));
    EXPECT_FALSE(fs::exists(claims.pathOf(1)));
    // Sweeping a key with no claim is a no-op.
    EXPECT_FALSE(other.sweepIfStale(1));
}

TEST(Claims, DisabledDirAlwaysAcquires)
{
    ClaimDir claims("", "w", 60.0);
    EXPECT_FALSE(claims.enabled());
    EXPECT_TRUE(claims.tryAcquire(1));
    EXPECT_TRUE(claims.tryAcquire(1));
    claims.release(1);
}

/** A queue fixture: cache + claims over one fresh directory. */
struct QueueFixture
{
    std::string dir;
    ResultCache cache;
    ClaimDir claims;

    explicit QueueFixture(const std::string &tag,
                          double ttl = 60.0)
        : dir(freshDir(tag)), cache(dir), claims(dir, "me", ttl)
    {
    }

    Sample
    sample(uint64_t key) const
    {
        Sample s;
        s.workload = cat("wl-", key);
        s.config = {1, 1};
        s.powerWatts = static_cast<double>(key);
        return s;
    }
};

TEST(ClaimedQueue, DrainsInCostOrder)
{
    QueueFixture fx("order");
    ClaimedQueue queue(fx.cache, fx.claims,
                       {{1, 0, 1.0}, {2, 1, 8.0}, {3, 2, 4.0}});
    std::vector<size_t> order;
    size_t idx = 0;
    while (queue.next(idx) == ClaimedQueue::Pull::Job) {
        order.push_back(idx);
        fx.cache.store(static_cast<uint64_t>(idx) + 1,
                       fx.sample(static_cast<uint64_t>(idx) + 1));
        queue.complete(idx);
    }
    // Descending estimated cost: index 1 (cost 8), 2 (4), 0 (1).
    EXPECT_EQ(order, (std::vector<size_t>{1, 2, 0}));
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Drained);
}

TEST(ClaimedQueue, SkipsCachedJobs)
{
    QueueFixture fx("cached");
    fx.cache.store(10, fx.sample(10));
    fx.cache.store(11, fx.sample(11));
    ClaimedQueue queue(fx.cache, fx.claims,
                       {{10, 0, 1.0}, {11, 1, 1.0}});
    size_t idx = 0;
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Drained);
    EXPECT_EQ(queue.completedByPeers(), 2u);
    // No claims were taken for pre-cached work.
    EXPECT_FALSE(fs::exists(fx.claims.pathOf(10)));
    EXPECT_FALSE(fs::exists(fx.claims.pathOf(11)));
}

TEST(ClaimedQueue, CompletedJobNeverRetaken)
{
    QueueFixture fx("done", 0.05);
    ClaimedQueue queue(fx.cache, fx.claims, {{20, 0, 1.0}});
    size_t idx = 0;
    ASSERT_EQ(queue.next(idx), ClaimedQueue::Pull::Job);
    fx.cache.store(20, fx.sample(20));
    queue.complete(idx);
    // Even after every TTL has long expired, a completed job's
    // result is in the cache and the pool never hands it out
    // again — to this queue or a fresh one.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Drained);
    ClaimedQueue fresh(fx.cache, fx.claims, {{20, 0, 1.0}});
    EXPECT_EQ(fresh.next(idx), ClaimedQueue::Pull::Drained);
}

TEST(ClaimedQueue, WaitsOnFreshPeerThenStealsStale)
{
    QueueFixture fx("peer", 0.05);
    // A "peer" (separate ClaimDir, same directory) holds the only
    // job.
    ClaimDir peer(fx.dir, "peer", 0.05);
    ASSERT_TRUE(peer.tryAcquire(30));
    ClaimedQueue queue(fx.cache, fx.claims, {{30, 0, 1.0}});
    size_t idx = 0;
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Wait);
    // Once the peer's heartbeat goes stale, the same pull steals.
    backdateClaim(peer.pathOf(30), 1.0);
    ASSERT_EQ(queue.next(idx), ClaimedQueue::Pull::Job);
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(fx.claims.stolen(), 1u);
    fx.cache.store(30, fx.sample(30));
    queue.complete(idx);
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Drained);
}

TEST(ClaimedQueue, SweepsOrphanClaimOnCachedJob)
{
    // A worker that died after caching its result but before
    // releasing leaves an orphan claim; the pool must not only
    // skip the job but also clean the stale orphan up.
    QueueFixture fx("orphan", 0.05);
    ClaimDir dead(fx.dir, "dead", 0.05);
    ASSERT_TRUE(dead.tryAcquire(40));
    fx.cache.store(40, fx.sample(40));
    backdateClaim(dead.pathOf(40), 1.0);
    ClaimedQueue queue(fx.cache, fx.claims, {{40, 0, 1.0}});
    size_t idx = 0;
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Drained);
    EXPECT_FALSE(fs::exists(fx.claims.pathOf(40)));
}

TEST(ClaimedQueue, PushExtendsDrainedPool)
{
    QueueFixture fx("push");
    ClaimedQueue queue(fx.cache, fx.claims);
    size_t idx = 0;
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Drained);
    queue.push({{50, 0, 1.0}});
    ASSERT_EQ(queue.next(idx), ClaimedQueue::Pull::Job);
    fx.cache.store(50, fx.sample(50));
    queue.complete(idx);
    EXPECT_EQ(queue.next(idx), ClaimedQueue::Pull::Drained);
}

/** Tiny campaign spec (mirrors test_campaign.cc). */
CampaignSpec
tinySpec()
{
    CampaignSpec spec;
    spec.categories = {BenchCategory::Random};
    spec.suite.randomCount = 3;
    spec.suite.bodySize = 128;
    spec.bootstrap = false;
    spec.threads = 2;
    spec.configs = {{1, 1}, {2, 1}, {1, 2}};
    return spec;
}

std::string
csvOf(const std::vector<Sample> &samples)
{
    std::ostringstream os;
    exportSamplesCsv(os, samples);
    return os.str();
}

TEST(ServeCampaign, MatchesPlainRunByteForByte)
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa(), arch.uarch().cacheGeometries(),
                    arch.uarch().clockGhz());

    CampaignSpec plain = tinySpec();
    plain.cacheDir = freshDir("serve-plain");
    Campaign ref(machine, plain);
    Architecture arch1 = arch;
    CampaignResult refRes = ref.run(arch1);

    CampaignSpec serve = tinySpec();
    serve.serve = true;
    serve.cacheDir = freshDir("serve-pool");
    serve.claimPollSeconds = 0.05;
    Campaign campaign(machine, serve);
    Architecture arch2 = arch;
    CampaignResult res = campaign.run(arch2);

    ASSERT_EQ(res.samples.size(), refRes.samples.size());
    EXPECT_EQ(csvOf(res.samples), csvOf(refRes.samples));
}

TEST(ServeCampaign, StealsPlantedStaleClaimAndCompletes)
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa(), arch.uarch().cacheGeometries(),
                    arch.uarch().clockGhz());

    CampaignSpec plain = tinySpec();
    plain.cacheDir = freshDir("steal-plain");
    Campaign ref(machine, plain);
    Architecture arch1 = arch;
    CampaignResult refRes = ref.run(arch1);

    // Simulate a dead worker: every job of the pool is "claimed"
    // by a worker whose heartbeats stopped long ago.
    CampaignSpec serve = tinySpec();
    serve.serve = true;
    serve.cacheDir = freshDir("steal-pool");
    serve.claimTtlSeconds = 0.05;
    serve.claimPollSeconds = 0.05;
    ClaimDir dead(serve.cacheDir, "dead-worker", 0.05);
    for (const CampaignJob &job : refRes.jobs) {
        ASSERT_TRUE(dead.tryAcquire(job.key));
        backdateClaim(dead.pathOf(job.key), 1.0);
    }

    Campaign campaign(machine, serve);
    Architecture arch2 = arch;
    CampaignResult res = campaign.run(arch2);
    ASSERT_EQ(res.samples.size(), refRes.samples.size());
    EXPECT_EQ(csvOf(res.samples), csvOf(refRes.samples));
}

} // namespace
