/**
 * @file
 * Tests for the cycle-level SMT core model: IPC behaviour under
 * dependencies, unit contention, SMT sharing, memory latency and
 * the hidden energy accounting.
 */

#include <gtest/gtest.h>

#include "microprobe/cache_model.hh"
#include "sim/core.hh"
#include "uarch/uarch.hh"

using namespace mprobe;

namespace
{

const Isa &isa = builtinP7Isa();

/** Loop of @p n copies of one opcode plus the closing branch. */
Program
loopOf(const std::string &op, size_t n, int dep,
       int stream = -1)
{
    Program p;
    p.isa = &isa;
    p.name = "test-" + op;
    Isa::OpIndex o = isa.find(op);
    EXPECT_GE(o, 0) << op;
    for (size_t i = 0; i + 1 < n; ++i)
        p.body.push_back({o, dep, stream, 1.0f, 1.0f});
    p.body.push_back({isa.find("bdnz"), 0, -1, 1.0f, 1.0f});
    return p;
}

Program
withL1Stream(Program p)
{
    UarchDef u = builtinP7Uarch();
    AnalyticalCacheModel m(u);
    p.streams.push_back(m.makeStream(HitLevel::L1, 0).stream);
    return p;
}

double
ipcOf(const Program &p, int threads = 1,
      CoreSimOptions opts = CoreSimOptions())
{
    ExecModel exec(isa);
    CoreResult r = simulateCore(exec, p, threads, opts);
    return r.window.ipc();
}

} // namespace

TEST(CoreSim, DualIssueIntegerReaches3_5)
{
    EXPECT_NEAR(ipcOf(loopOf("add", 1024, 0)), 3.5, 0.1);
}

TEST(CoreSim, FxuOnlyIntegerReaches2)
{
    EXPECT_NEAR(ipcOf(loopOf("subf", 1024, 0)), 2.0, 0.05);
}

TEST(CoreSim, ChainSerializesToLatency)
{
    // Dependency chains expose latency: lat-1 adds -> IPC 1,
    // lat-4 multiplies -> IPC 0.25, lat-6 FMAs -> IPC ~0.167.
    EXPECT_NEAR(ipcOf(loopOf("add", 1024, 1)), 1.0, 0.03);
    EXPECT_NEAR(ipcOf(loopOf("mulldo", 1024, 1)), 0.25, 0.01);
    EXPECT_NEAR(ipcOf(loopOf("xvmaddadp", 1024, 1)), 1.0 / 6, 0.01);
}

TEST(CoreSim, DependencyDistanceScalesIpc)
{
    // d independent chains of lat-6 FMAs: IPC ~ d/6 up to the
    // 2-per-cycle pipe limit.
    double prev = 0.0;
    for (int d : {1, 2, 4, 8}) {
        double ipc = ipcOf(loopOf("xvmaddadp", 1024, d));
        EXPECT_GT(ipc, prev);
        EXPECT_NEAR(ipc, std::min(2.0, d / 6.0), 0.15);
        prev = ipc;
    }
}

TEST(CoreSim, ComplexIntegerThroughput)
{
    EXPECT_NEAR(ipcOf(loopOf("mulldo", 1024, 0)), 1.4, 0.05);
}

TEST(CoreSim, VmxLogicalSaturatesFourPipes)
{
    EXPECT_NEAR(ipcOf(loopOf("vand", 1024, 0)), 4.0, 0.1);
}

TEST(CoreSim, LoadThroughput)
{
    Program p = withL1Stream(loopOf("lbz", 1024, 0, 0));
    EXPECT_NEAR(ipcOf(p), 1.68, 0.05);
}

TEST(CoreSim, UpdateFormLoadsAreSlower)
{
    Program p = withL1Stream(loopOf("ldux", 1024, 0, 0));
    EXPECT_NEAR(ipcOf(p), 1.0, 0.05);
}

TEST(CoreSim, VectorStoreThroughput)
{
    Program p = withL1Stream(loopOf("stxvw4x", 1024, 0, 0));
    EXPECT_NEAR(ipcOf(p), 0.48, 0.06);
}

TEST(CoreSim, LoadChainExposesL1Latency)
{
    Program p = withL1Stream(loopOf("lbz", 1024, 1, 0));
    EXPECT_NEAR(ipcOf(p), 0.5, 0.02);
}

TEST(CoreSim, MemoryLatencyThrottlesMisses)
{
    // A stream missing everywhere is memory-latency bound.
    Program p = loopOf("lbz", 256, 4, 0);
    UarchDef u = builtinP7Uarch();
    AnalyticalCacheModel m(u);
    p.streams.push_back(m.makeStream(HitLevel::Mem, 0).stream);

    CoreSimOptions fast;
    fast.memLatency = 100;
    CoreSimOptions slow;
    slow.memLatency = 400;
    double ipc_fast = ipcOf(p, 1, fast);
    double ipc_slow = ipcOf(p, 1, slow);
    EXPECT_GT(ipc_fast, ipc_slow * 2.0);
}

TEST(CoreSim, CountersMatchMix)
{
    // Half adds, half FMAs: unit counters reflect the mix.
    Program p;
    p.isa = &isa;
    p.name = "mix";
    Isa::OpIndex a = isa.find("subf");
    Isa::OpIndex v = isa.find("xvmaddadp");
    for (int i = 0; i < 511; ++i)
        p.body.push_back({i % 2 ? a : v, 0, -1, 1.0f, 1.0f});
    p.body.push_back({isa.find("bdnz"), 0, -1, 1.0f, 1.0f});

    ExecModel exec(isa);
    CoreResult r = simulateCore(exec, p, 1);
    double fxu_share = r.window.fxuOps / r.window.instrs;
    double vsu_share = r.window.vsuOps / r.window.instrs;
    EXPECT_NEAR(fxu_share, 0.5, 0.03);
    EXPECT_NEAR(vsu_share, 0.5, 0.03);
    EXPECT_GT(r.window.bruOps, 0.0);
}

TEST(CoreSim, UpdateLoadsCountExtraFxuOps)
{
    Program p = withL1Stream(loopOf("lhaux", 512, 0, 0));
    ExecModel exec(isa);
    CoreResult r = simulateCore(exec, p, 1);
    // Algebraic + update: ~2 FXU micro-ops per load.
    double fxu_per_instr = r.window.fxuOps / r.window.instrs;
    EXPECT_NEAR(fxu_per_instr, 2.0, 0.15);
}

TEST(CoreSim, VsuSteeringCountedForVectorStores)
{
    Program p = withL1Stream(loopOf("stxvw4x", 512, 0, 0));
    ExecModel exec(isa);
    CoreResult r = simulateCore(exec, p, 1);
    double vsu_per_instr = r.window.vsuOps / r.window.instrs;
    EXPECT_NEAR(vsu_per_instr, 1.0, 0.1);
}

TEST(CoreSim, SmtSharesSaturatedPipes)
{
    Program p = loopOf("subf", 1024, 0);
    double ipc1 = ipcOf(p, 1);
    double ipc2 = ipcOf(p, 2);
    double ipc4 = ipcOf(p, 4);
    // Core-level IPC stays at the structural limit...
    EXPECT_NEAR(ipc1, 2.0, 0.05);
    EXPECT_NEAR(ipc2, 2.0, 0.05);
    EXPECT_NEAR(ipc4, 2.0, 0.05);
}

TEST(CoreSim, SmtHelpsLatencyBoundThreads)
{
    // A dependency chain leaves pipes idle; SMT fills them.
    Program p = loopOf("xvmaddadp", 1024, 1);
    double ipc1 = ipcOf(p, 1);
    double ipc4 = ipcOf(p, 4);
    EXPECT_GT(ipc4, ipc1 * 3.0);
}

TEST(CoreSim, SmtThreadsUseDisjointCacheSets)
{
    // An L1-resident stream must stay L1-resident for all 4
    // threads (thread striping prevents conflict misses).
    Program p = withL1Stream(loopOf("lbz", 512, 0, 0));
    ExecModel exec(isa);
    CoreResult r = simulateCore(exec, p, 4);
    double l1_share = r.window.l1Hits /
                      (r.window.l1Hits + r.window.l2Hits +
                       r.window.l3Hits + r.window.memAcc);
    EXPECT_GT(l1_share, 0.999);
}

TEST(CoreSim, EnergyScalesWithWork)
{
    Program p = loopOf("subf", 1024, 0);
    ExecModel exec(isa);
    CoreResult r1 = simulateCore(exec, p, 1);
    CoreResult r4 = simulateCore(exec, p, 4);
    // Same core-level throughput => similar energy per window
    // instruction count.
    double e1 = r1.window.energyNj / r1.window.instrs;
    double e4 = r4.window.energyNj / r4.window.instrs;
    EXPECT_NEAR(e1, e4, 0.15 * e1);
}

TEST(CoreSim, ZeroToggleReducesEnergy)
{
    Program hot = loopOf("xvmaddadp", 1024, 0);
    Program cold = hot;
    for (auto &pi : cold.body)
        pi.toggle = 0.0f;
    ExecModel exec(isa);
    double e_hot =
        simulateCore(exec, hot, 1).window.energyNj;
    double e_cold =
        simulateCore(exec, cold, 1).window.energyNj;
    // Vector ops have ~40% data-dependent energy.
    EXPECT_LT(e_cold, 0.75 * e_hot);
    EXPECT_GT(e_cold, 0.45 * e_hot);
}

TEST(CoreSim, InterleavingUnitsCostsOverlapEnergy)
{
    // Same instruction multiset, different order: grouped by unit
    // vs round-robin across units. The interleaved order co-issues
    // to several units per cycle and must consume more energy.
    Isa::OpIndex m = isa.find("mulldo");
    Isa::OpIndex v = isa.find("xvmaddadp");
    Isa::OpIndex l = isa.find("lbz");

    auto mk = [&](bool interleaved) {
        Program p;
        p.isa = &isa;
        p.name = interleaved ? "inter" : "grouped";
        UarchDef u = builtinP7Uarch();
        AnalyticalCacheModel cm(u);
        p.streams.push_back(
            cm.makeStream(HitLevel::L1, 0).stream);
        const int n = 900;
        for (int i = 0; i < n; ++i) {
            Isa::OpIndex op;
            if (interleaved)
                op = i % 3 == 0 ? m : (i % 3 == 1 ? v : l);
            else
                op = i < n / 3 ? m : (i < 2 * n / 3 ? v : l);
            p.body.push_back(
                {op, 0, isa.at(op).isMemory() ? 0 : -1, 1.0f,
                 1.0f});
        }
        p.body.push_back({isa.find("bdnz"), 0, -1, 1.0f, 1.0f});
        return p;
    };

    ExecModel exec(isa);
    CoreResult inter = simulateCore(exec, mk(true), 1);
    CoreResult grouped = simulateCore(exec, mk(false), 1);
    double pe_inter = inter.window.energyNj / inter.window.instrs;
    double pe_grouped =
        grouped.window.energyNj / grouped.window.instrs;
    EXPECT_GT(pe_inter, pe_grouped * 1.05);
    EXPECT_GT(inter.window.overlapNj, grouped.window.overlapNj);
}

TEST(CoreSim, MispredictionPenaltyAppears)
{
    // Conditional branches at 50% taken cost mispredict stalls.
    auto mk = [&](float taken) {
        Program p;
        p.isa = &isa;
        p.name = "br";
        Isa::OpIndex a = isa.find("add");
        Isa::OpIndex b = isa.find("bc");
        for (int i = 0; i < 511; ++i) {
            if (i % 8 == 7)
                p.body.push_back({b, 0, -1, 1.0f, taken});
            else
                p.body.push_back({a, 0, -1, 1.0f, 1.0f});
        }
        p.body.push_back({isa.find("bdnz"), 0, -1, 1.0f, 1.0f});
        return p;
    };
    double ipc_pred = ipcOf(mk(1.0f));
    double ipc_rand = ipcOf(mk(0.5f));
    EXPECT_LT(ipc_rand, 0.7 * ipc_pred);
}

TEST(CoreSimDeath, EmptyProgramFatal)
{
    Program p;
    p.isa = &isa;
    ExecModel exec(isa);
    EXPECT_EXIT(simulateCore(exec, p, 1),
                testing::ExitedWithCode(1), "empty program");
}

TEST(CoreSimDeath, BadThreadCountFatal)
{
    Program p = loopOf("add", 64, 0);
    ExecModel exec(isa);
    EXPECT_EXIT(simulateCore(exec, p, 3),
                testing::ExitedWithCode(1), "SMT thread count");
}

// Property sweep: IPC is monotone non-decreasing in dependency
// distance for several instruction families.
class DepMonotone : public testing::TestWithParam<const char *>
{
};

TEST_P(DepMonotone, IpcNonDecreasingInDistance)
{
    double prev = -1.0;
    for (int d : {1, 2, 3, 5, 8, 13, 21}) {
        double ipc = ipcOf(loopOf(GetParam(), 512, d));
        EXPECT_GE(ipc, prev - 0.05)
            << GetParam() << " at distance " << d;
        prev = std::max(prev, ipc);
    }
}

INSTANTIATE_TEST_SUITE_P(Families, DepMonotone,
                         testing::Values("add", "subf", "mulldo",
                                         "fadd", "xvmaddadp",
                                         "vand", "popcntd"));
