/**
 * @file
 * Tests for the integrated design-space-exploration module.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "microprobe/dse.hh"

using namespace mprobe;

TEST(ExhaustiveSearch, EnumeratesFullSpace)
{
    ExhaustiveSearch s;
    std::vector<ParamDomain> space = {{"a", 0, 3}, {"b", 1, 2}};
    auto best = s.search(space, [](const DesignPoint &p) {
        return static_cast<double>(p[0] * 10 + p[1]);
    });
    EXPECT_EQ(s.history().size(), 8u);
    EXPECT_EQ(best.point, (DesignPoint{3, 2}));
    EXPECT_DOUBLE_EQ(best.fitness, 32.0);
}

TEST(ExhaustiveSearch, FilterRestrictsSpace)
{
    // The paper's 540: sequences of 6 over 3 candidates containing
    // all three (inclusion-exclusion: 3^6 - 3*2^6 + 3 = 540).
    ExhaustiveSearch s([](const DesignPoint &p) {
        for (int c = 0; c < 3; ++c)
            if (std::find(p.begin(), p.end(), c) == p.end())
                return false;
        return true;
    });
    std::vector<ParamDomain> space(6, ParamDomain{"slot", 0, 2});
    s.search(space, [](const DesignPoint &) { return 0.0; });
    EXPECT_EQ(s.history().size(), 540u);
}

TEST(ExhaustiveSearch, ParallelEvaluationMatchesSerial)
{
    // Admissible points evaluate on the campaign work queue; the
    // history must keep the serial odometer order at any worker
    // count (slot-indexed writes, no racing appends).
    auto eval = [](const DesignPoint &p) {
        return static_cast<double>(p[0] * 100 + p[1] * 10 + p[2]);
    };
    std::vector<ParamDomain> space = {
        {"a", 0, 3}, {"b", 0, 3}, {"c", 0, 3}};

    ExhaustiveSearch serial(nullptr, 2'000'000, 1);
    Evaluated sb = serial.search(space, eval);
    ExhaustiveSearch parallel(nullptr, 2'000'000, 4);
    Evaluated pb = parallel.search(space, eval);

    EXPECT_EQ(sb.point, pb.point);
    EXPECT_DOUBLE_EQ(sb.fitness, pb.fitness);
    ASSERT_EQ(serial.history().size(), parallel.history().size());
    for (size_t i = 0; i < serial.history().size(); ++i) {
        EXPECT_EQ(serial.history()[i].point,
                  parallel.history()[i].point)
            << i;
        EXPECT_DOUBLE_EQ(serial.history()[i].fitness,
                         parallel.history()[i].fitness)
            << i;
    }
}

TEST(ExhaustiveSearch, EnumerateListsAdmissiblePoints)
{
    ExhaustiveSearch s([](const DesignPoint &p) {
        return (p[0] + p[1]) % 2 == 0;
    });
    auto points =
        s.enumerate({{"a", 0, 2}, {"b", 0, 2}});
    EXPECT_FALSE(s.truncated());
    ASSERT_EQ(points.size(), 5u);
    for (const auto &p : points)
        EXPECT_EQ((p[0] + p[1]) % 2, 0);

    ExhaustiveSearch capped(nullptr, 3);
    auto few = capped.enumerate({{"a", 0, 9}});
    EXPECT_TRUE(capped.truncated());
    EXPECT_EQ(few.size(), 3u);
}

TEST(ExhaustiveSearch, HistoryHasEveryEvaluation)
{
    ExhaustiveSearch s;
    std::vector<ParamDomain> space = {{"a", 0, 9}};
    s.search(space, [](const DesignPoint &p) {
        return static_cast<double>(-p[0]);
    });
    auto fits = s.fitnessValues();
    ASSERT_EQ(fits.size(), 10u);
    std::set<double> uniq(fits.begin(), fits.end());
    EXPECT_EQ(uniq.size(), 10u);
}

TEST(ExhaustiveSearchDeath, HugeSpaceFatal)
{
    ExhaustiveSearch s(nullptr, 100);
    std::vector<ParamDomain> space(12, ParamDomain{"x", 0, 9});
    EXPECT_EXIT(s.search(space,
                         [](const DesignPoint &) { return 0.0; }),
                testing::ExitedWithCode(1), "impractical");
}

TEST(ExhaustiveSearch, TruncationIsFlaggedNotSilent)
{
    // 100 points, budget 10: the search must stop at 10, keep the
    // evaluated prefix, and raise the truncated() flag.
    ExhaustiveSearch s(nullptr, 10);
    std::vector<ParamDomain> space = {{"a", 0, 9}, {"b", 0, 9}};
    auto best = s.search(space, [](const DesignPoint &p) {
        return static_cast<double>(p[0] + 10 * p[1]);
    });
    EXPECT_TRUE(s.truncated());
    EXPECT_EQ(s.history().size(), 10u);
    EXPECT_DOUBLE_EQ(best.fitness, 9.0); // best of the prefix
}

TEST(ExhaustiveSearch, CompleteSearchIsNotTruncated)
{
    ExhaustiveSearch s(nullptr, 100);
    std::vector<ParamDomain> space = {{"a", 0, 9}};
    s.search(space,
             [](const DesignPoint &p) { return 1.0 * p[0]; });
    EXPECT_FALSE(s.truncated());
    EXPECT_EQ(s.history().size(), 10u);
}

TEST(ExhaustiveSearch, ExactBudgetIsNotTruncated)
{
    ExhaustiveSearch s(nullptr, 10);
    std::vector<ParamDomain> space = {{"a", 0, 9}};
    s.search(space,
             [](const DesignPoint &p) { return 1.0 * p[0]; });
    EXPECT_FALSE(s.truncated());
    EXPECT_EQ(s.history().size(), 10u);
}

TEST(GeneticSearch, FindsOptimumOfSeparableProblem)
{
    GaOptions o;
    o.population = 20;
    o.generations = 30;
    o.seed = 42;
    GeneticSearch s(o);
    std::vector<ParamDomain> space(4, ParamDomain{"x", 0, 15});
    // Max at all-15s.
    auto best = s.search(space, [](const DesignPoint &p) {
        double v = 0;
        for (int x : p)
            v += x;
        return v;
    });
    EXPECT_GE(best.fitness, 56.0); // near 60
}

TEST(GeneticSearch, ConvergesOnUnimodalValley)
{
    GaOptions o;
    o.population = 16;
    o.generations = 25;
    o.seed = 7;
    GeneticSearch s(o);
    std::vector<ParamDomain> space = {{"x", 0, 100},
                                      {"y", 0, 100}};
    auto best = s.search(space, [](const DesignPoint &p) {
        double dx = p[0] - 37, dy = p[1] - 64;
        return -(dx * dx + dy * dy);
    });
    EXPECT_NEAR(best.point[0], 37, 6);
    EXPECT_NEAR(best.point[1], 64, 6);
}

TEST(GeneticSearch, DeterministicForSeed)
{
    auto run = [](uint64_t seed) {
        GaOptions o;
        o.population = 10;
        o.generations = 5;
        o.seed = seed;
        GeneticSearch s(o);
        std::vector<ParamDomain> space = {{"x", 0, 63}};
        return s.search(space, [](const DesignPoint &p) {
            return std::sin(p[0] * 0.1) * p[0];
        });
    };
    auto a = run(5);
    auto b = run(5);
    EXPECT_EQ(a.point, b.point);
    EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
}

TEST(GeneticSearch, ParallelPopulationEvaluationMatchesSerial)
{
    // Every population build draws its candidates serially before
    // any evaluation runs, so with a pure (thread-safe) evaluation
    // function the history must be bit-identical at any worker
    // count — order and content.
    auto run = [](int threads) {
        GaOptions o;
        o.population = 12;
        o.generations = 6;
        o.seed = 0xabcde;
        o.threads = threads;
        GeneticSearch s(o);
        std::vector<ParamDomain> space = {{"x", 0, 63},
                                          {"y", 0, 63}};
        s.search(space, [](const DesignPoint &p) {
            double dx = p[0] - 11, dy = p[1] - 50;
            return -(dx * dx) - std::abs(dy);
        });
        return s.history();
    };
    auto serial = run(1);
    for (int threads : {4, 8}) {
        auto parallel = run(threads);
        ASSERT_EQ(serial.size(), parallel.size()) << threads;
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].point, parallel[i].point)
                << threads << " @ " << i;
            EXPECT_DOUBLE_EQ(serial[i].fitness,
                             parallel[i].fitness)
                << threads << " @ " << i;
        }
    }
}

TEST(GeneticSearch, EvaluationBudgetBounded)
{
    GaOptions o;
    o.population = 8;
    o.generations = 4;
    GeneticSearch s(o);
    std::vector<ParamDomain> space = {{"x", 0, 9}};
    s.search(space,
             [](const DesignPoint &p) { return 1.0 * p[0]; });
    // population + generations * (population - elites)
    EXPECT_LE(s.history().size(), 8u + 4u * 8u);
    EXPECT_GE(s.history().size(), 8u);
}

TEST(GeneticSearchDeath, BadOptionsFatal)
{
    GaOptions o;
    o.population = 1;
    EXPECT_EXIT(GeneticSearch s(o), testing::ExitedWithCode(1),
                "population");
}

TEST(UserGuidedSearch, CallbackDrivesWalk)
{
    // Binary-search-like guided descent on |x - 42|.
    UserGuidedSearch s(
        [](const std::vector<Evaluated> &hist, DesignPoint &p) {
            if (hist.empty()) {
                p = {50};
                return true;
            }
            if (hist.size() >= 8)
                return false;
            int x = hist.back().point[0];
            double f = hist.back().fitness;
            // fitness = -|x-42|: move toward the optimum.
            p = {f < 0 ? (x > 42 ? x - 2 : x + 2) : x};
            return hist.back().fitness < 0.0;
        });
    std::vector<ParamDomain> space = {{"x", 0, 100}};
    auto best = s.search(space, [](const DesignPoint &p) {
        return -std::abs(p[0] - 42.0);
    });
    EXPECT_EQ(best.point[0], 42);
}

TEST(UserGuidedSearchDeath, OutOfDomainProposalFatal)
{
    UserGuidedSearch s(
        [](const std::vector<Evaluated> &, DesignPoint &p) {
            p = {999};
            return true;
        });
    std::vector<ParamDomain> space = {{"x", 0, 10}};
    EXPECT_EXIT(
        s.search(space,
                 [](const DesignPoint &) { return 0.0; }),
        testing::ExitedWithCode(1), "outside domain");
}

TEST(UserGuidedSearchDeath, NullCallbackFatal)
{
    EXPECT_EXIT(UserGuidedSearch s(nullptr),
                testing::ExitedWithCode(1), "callback");
}

TEST(SearchDriverDeath, EmptySpaceFatal)
{
    ExhaustiveSearch s;
    EXPECT_EXIT(s.search({}, [](const DesignPoint &) {
        return 0.0;
    }),
                testing::ExitedWithCode(1), "empty design space");
}

TEST(SearchDriverDeath, EmptyDomainFatal)
{
    ExhaustiveSearch s;
    std::vector<ParamDomain> space = {{"x", 3, 2}};
    EXPECT_EXIT(s.search(space, [](const DesignPoint &) {
        return 0.0;
    }),
                testing::ExitedWithCode(1), "empty domain");
}
