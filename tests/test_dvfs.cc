/**
 * @file
 * Tests for the DVFS operating-point subsystem: the machine's V/f
 * curve and power scaling, the compute-vs-memory frequency
 * response, the sweep analysis (energy-optimal points) and the
 * cross-frequency model validation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "campaign/campaign.hh"
#include "dvfs/sweep.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "power/bottomup.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/extremes.hh"

using namespace mprobe;

namespace
{

struct Fixture
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};

    /** Compute-bound loop: integer ops, no memory accesses. */
    Program
    computeBound(size_t body = 512)
    {
        Synthesizer synth(arch, 0xc0deull);
        synth.addPass<SkeletonPass>(body);
        synth.addPass<InstructionMixPass>(
            arch.isa().integerOps());
        synth.addPass<RegisterInitPass>(DataPattern::Random);
        return synth.synthesize("compute-bound");
    }

    /** Memory-bound loop: the Section-4.1.3 "Main memory" case. */
    Program
    memoryBound(size_t body = 512)
    {
        for (auto &c : generateExtremeCases(arch, body))
            if (c.name == "Main memory")
                return std::move(c.program);
        ADD_FAILURE() << "no Main memory extreme case";
        return Program();
    }

    /** A few distinct random workloads for model training. */
    std::vector<Program>
    randoms(int n, size_t body = 256)
    {
        std::vector<Program> out;
        for (int i = 0; i < n; ++i) {
            Synthesizer synth(arch,
                              0xd1ceull + static_cast<uint64_t>(i));
            synth.addPass<SkeletonPass>(body);
            synth.addPass<InstructionMixPass>(
                arch.isa().integerOps());
            synth.addPass<RegisterInitPass>(DataPattern::Random);
            out.push_back(synth.synthesize(cat("rand-", i)));
        }
        return out;
    }
};

/** Measurement-only campaign spec sweeping @p freqs. */
CampaignSpec
sweepSpec(std::vector<double> freqs)
{
    CampaignSpec spec = measurementSpec(2);
    spec.freqs = std::move(freqs);
    return spec;
}

} // namespace

// ---------------------------------------------------------------
// The V/f curve

TEST(VfCurve, LinearAboveTheFloor)
{
    Fixture f;
    const GroundTruthParams &p = f.machine.groundTruth();
    // Nominal frequency sits at the nominal voltage.
    EXPECT_DOUBLE_EQ(f.machine.voltageAt(p.clockGhz),
                     p.vddNominal);
    // Linear slope above the floor knee...
    EXPECT_DOUBLE_EQ(f.machine.voltageAt(p.clockGhz + 0.5),
                     p.vddNominal + 0.5 * p.vddSlopePerGhz);
    // ...and a hard floor below it.
    EXPECT_DOUBLE_EQ(f.machine.voltageAt(0.5), p.vddFloor);
    EXPECT_DOUBLE_EQ(f.machine.voltageAt(2.0), p.vddFloor);
    // operatingPoint ties frequency and curve voltage together;
    // non-positive selects the nominal clock.
    OperatingPoint op = f.machine.operatingPoint(3.5);
    EXPECT_EQ(op.freqGhz, 3.5);
    EXPECT_DOUBLE_EQ(op.voltage, f.machine.voltageAt(3.5));
    EXPECT_EQ(f.machine.operatingPoint().freqGhz, p.clockGhz);
    EXPECT_EQ(f.machine.operatingPoint(-1.0).freqGhz, p.clockGhz);
}

// ---------------------------------------------------------------
// Machine power/performance scaling

TEST(DvfsMachine, NominalPointIsBitIdenticalToLegacyRun)
{
    Fixture f;
    Program prog = f.computeBound();
    for (ChipConfig cfg : {ChipConfig{1, 1}, ChipConfig{4, 2}}) {
        RunResult legacy = f.machine.run(prog, cfg, 7);
        RunResult nominal = f.machine.run(
            prog, cfg, f.machine.operatingPoint(), 7);
        EXPECT_EQ(legacy.sensorWatts, nominal.sensorWatts);
        EXPECT_EQ(legacy.seconds, nominal.seconds);
        EXPECT_EQ(legacy.coreIpc, nominal.coreIpc);
        EXPECT_EQ(legacy.gtDynamicWatts, nominal.gtDynamicWatts);
        EXPECT_EQ(legacy.freqGhz,
                  f.machine.groundTruth().clockGhz);
    }
}

TEST(DvfsMachine, DynamicPowerScalesAsV2F)
{
    // A compute-bound loop never touches memory, so its cycle
    // count is frequency-invariant: dynamic power must scale
    // exactly as V^2 * f, static terms exactly as V.
    Fixture f;
    Program prog = f.computeBound();
    ChipConfig cfg{2, 1};
    RunResult base = f.machine.run(prog, cfg);
    double f0 = f.machine.groundTruth().clockGhz;
    double v0 = f.machine.voltageAt(f0);
    for (double freq : {2.0, 2.5, 3.5}) {
        RunResult r = f.machine.run(
            prog, cfg, f.machine.operatingPoint(freq));
        double vr = f.machine.voltageAt(freq) / v0;
        EXPECT_NEAR(r.gtDynamicWatts,
                    base.gtDynamicWatts * vr * vr * (freq / f0),
                    1e-9 * base.gtDynamicWatts)
            << freq;
        EXPECT_NEAR(r.gtIdleWatts, base.gtIdleWatts * vr,
                    1e-12 * base.gtIdleWatts)
            << freq;
        EXPECT_NEAR(r.gtCmpWatts, base.gtCmpWatts * vr,
                    1e-12 * base.gtCmpWatts)
            << freq;
        // Compute-bound instruction rate tracks the clock.
        EXPECT_NEAR(r.rate(r.chip.instrs),
                    base.rate(base.chip.instrs) * (freq / f0),
                    1e-9 * base.rate(base.chip.instrs))
            << freq;
    }
}

TEST(DvfsMachine, MemoryBoundThroughputIsSublinearInFrequency)
{
    // Main-memory latency is fixed in nanoseconds, so its cycle
    // cost grows with the clock: a memory-bound loop must gain far
    // less throughput from 2.0 -> 3.5 GHz than a compute-bound
    // one, while still not losing any.
    Fixture f;
    Program mem = f.memoryBound();
    Program cpu = f.computeBound();
    ChipConfig cfg{1, 1};
    auto rate_at = [&](const Program &p, double freq) {
        RunResult r =
            f.machine.run(p, cfg, f.machine.operatingPoint(freq));
        return r.rate(r.chip.instrs);
    };
    double cpu_gain = rate_at(cpu, 3.5) / rate_at(cpu, 2.0);
    double mem_gain = rate_at(mem, 3.5) / rate_at(mem, 2.0);
    EXPECT_NEAR(cpu_gain, 3.5 / 2.0, 1e-6);
    EXPECT_GE(mem_gain, 1.0);
    EXPECT_LT(mem_gain, 0.75 * cpu_gain);
}

TEST(DvfsMachine, IdleWattsScalesWithVoltage)
{
    Fixture f;
    ChipConfig cfg{8, 1};
    double nominal = f.machine.idleWatts(cfg);
    double low =
        f.machine.idleWatts(cfg, f.machine.operatingPoint(2.0));
    double v0 = f.machine.voltageAt(f.machine.clockGhz());
    double vr = f.machine.voltageAt(2.0) / v0;
    // Sensorized (noise + mW quantization): compare loosely.
    EXPECT_NEAR(low, nominal * vr, 0.02 * nominal);
    EXPECT_LT(low, nominal);
}

TEST(DvfsMachineDeath, BadOperatingPointFatal)
{
    Fixture f;
    Program prog = f.computeBound();
    EXPECT_EXIT(f.machine.run(prog, {1, 1},
                              OperatingPoint{0.0, 1.0}),
                testing::ExitedWithCode(1), "bad operating point");
    EXPECT_EXIT(f.machine.run(prog, {1, 1},
                              OperatingPoint{3.0, -0.1}),
                testing::ExitedWithCode(1), "bad operating point");
}

// ---------------------------------------------------------------
// Sweep analysis

TEST(DvfsSweep, MetricsAndPlaceholderSafety)
{
    Sample s;
    s.powerWatts = 80.0;
    s.instrGips = 10.0; // 1e10 instr/s
    EXPECT_DOUBLE_EQ(sampleEpiJoules(s), 8e-9);
    EXPECT_DOUBLE_EQ(sampleEdp(s), 8e-19);
    EXPECT_DOUBLE_EQ(sampleEd2p(s), 8e-29);
    // Placeholders (no instruction rate) yield 0, never inf.
    Sample zero;
    zero.powerWatts = 80.0;
    EXPECT_EQ(sampleEpiJoules(zero), 0.0);
    EXPECT_EQ(sampleEdp(zero), 0.0);
}

TEST(DvfsSweep, OptimaMatchExhaustiveEnumerationAndDiverge)
{
    Fixture f;
    std::vector<Program> corpus = {f.computeBound(),
                                   f.memoryBound()};
    std::vector<double> freqs = {2.0, 2.5, 3.0, 3.5};
    Campaign campaign(f.machine, sweepSpec(freqs));
    auto samples =
        campaign.measure(corpus, {ChipConfig{1, 1}});

    SweepAnalysis sweep = analyzeSweep(samples);
    ASSERT_EQ(sweep.series.size(), 2u);
    ASSERT_EQ(sweep.freqs, freqs);

    for (const auto &series : sweep.series) {
        ASSERT_EQ(series.points.size(), freqs.size());
        // The analysis' selection must match brute-force argmin
        // over the raw samples (the exhaustive enumeration).
        size_t brute_epi = 0, brute_edp = 0;
        std::vector<const Sample *> mine;
        for (const auto &s : samples)
            if (s.workload == series.workload)
                mine.push_back(&s);
        // Samples arrive frequency-ascending per workload, like
        // the sorted sweep points.
        ASSERT_EQ(mine.size(), freqs.size());
        for (size_t i = 1; i < mine.size(); ++i) {
            if (sampleEpiJoules(*mine[i]) <
                sampleEpiJoules(*mine[brute_epi]))
                brute_epi = i;
            if (sampleEdp(*mine[i]) < sampleEdp(*mine[brute_edp]))
                brute_edp = i;
        }
        EXPECT_EQ(series.bestEpi, brute_epi) << series.workload;
        EXPECT_EQ(series.bestEdp, brute_edp) << series.workload;
    }

    // The compute-bound stressmark runs cheapest per instruction
    // at a higher clock than the memory-bound one.
    auto best_freq = [&](const std::string &name) {
        for (const auto &series : sweep.series)
            if (series.workload == name)
                return series.points[series.bestEpi].freqGhz;
        ADD_FAILURE() << name;
        return 0.0;
    };
    EXPECT_GT(best_freq("compute-bound"),
              best_freq("Main-memory"));
}

TEST(DvfsSweep, SkipsPlaceholderSamples)
{
    Sample real;
    real.workload = "w";
    real.config = {1, 1};
    real.freqGhz = 2.0;
    real.instrGips = 5.0;
    real.powerWatts = 70.0;
    Sample real2 = real;
    real2.freqGhz = 2.5;
    Sample placeholder = real;
    placeholder.freqGhz = 3.0;
    placeholder.instrGips = 0.0;
    SweepAnalysis sweep =
        analyzeSweep({real, real2, placeholder});
    ASSERT_EQ(sweep.series.size(), 1u);
    EXPECT_EQ(sweep.series[0].points.size(), 2u);
    ASSERT_EQ(sweep.freqs.size(), 2u);
    EXPECT_EQ(sweep.freqs[0], 2.0);
    EXPECT_EQ(sweep.freqs[1], 2.5);
}

TEST(DvfsSweep, SkipsUnreliableSamples)
{
    Sample lo;
    lo.workload = "w";
    lo.config = {1, 1};
    lo.freqGhz = 2.0;
    lo.instrGips = 5.0;
    lo.powerWatts = 70.0;
    Sample hi = lo;
    hi.freqGhz = 3.0;
    hi.instrGips = 7.0;
    hi.powerWatts = 90.0;
    // An undervolted below-Vmin point with absurdly good numbers:
    // it must not enter the table, let alone win an optimum.
    Sample bogus = lo;
    bogus.freqGhz = 2.5;
    bogus.vddVolts = 0.5;
    bogus.reliable = false;
    bogus.powerWatts = 1.0;
    bogus.instrGips = 100.0;
    SweepAnalysis sweep = analyzeSweep({lo, hi, bogus});
    ASSERT_EQ(sweep.series.size(), 1u);
    EXPECT_EQ(sweep.series[0].points.size(), 2u);
    ASSERT_EQ(sweep.freqs.size(), 2u);
    EXPECT_EQ(sweep.freqs[0], 2.0);
    EXPECT_EQ(sweep.freqs[1], 3.0);
}

TEST(DvfsSweepDeathTest, SingleFrequencyIsFatal)
{
    Sample s;
    s.workload = "w";
    s.config = {1, 1};
    s.freqGhz = 2.0;
    s.instrGips = 5.0;
    s.powerWatts = 70.0;
    EXPECT_EXIT(analyzeSweep({s}),
                testing::ExitedWithCode(1),
                "need samples at >= 2 distinct frequencies");
}

TEST(DvfsSweepDeathTest, CrossFrequencySingleFrequencyIsFatal)
{
    Sample s;
    s.workload = "w";
    s.config = {1, 1};
    s.freqGhz = 3.0;
    s.instrGips = 5.0;
    s.powerWatts = 70.0;
    Sample s2 = s;
    s2.config = {2, 1};
    EXPECT_EXIT(crossFrequencyError({s, s2}, 3.0),
                testing::ExitedWithCode(1),
                "need samples at >= 2 distinct frequencies");
}

// ---------------------------------------------------------------
// Cross-frequency model validation

TEST(DvfsModels, NominalTrainedTopDownDegradesOffPoint)
{
    Fixture f;
    auto corpus = f.randoms(8);
    std::vector<ChipConfig> cfgs = {{1, 1}, {2, 1}, {4, 2},
                                    {8, 4}};
    Campaign campaign(f.machine, sweepSpec({2.0, 3.0, 3.5}));
    auto samples = campaign.measure(corpus, cfgs);

    CrossFreqReport report = crossFrequencyError(samples, 3.0);
    EXPECT_EQ(report.trainFreqGhz, 3.0);
    ASSERT_EQ(report.entries.size(), 3u);
    for (const auto &e : report.entries)
        EXPECT_EQ(e.count, corpus.size() * cfgs.size());
    // At the training frequency the cross model *is* the at-point
    // model (same training set, deterministic fit).
    EXPECT_DOUBLE_EQ(report.entries[1].paaeCross,
                     report.entries[1].paaeAtPoint);
    // Away from it, per-point training wins: the 3.0-GHz model
    // carries 3.0-GHz static power in its intercept, which is
    // simply wrong at 2.0 GHz / 0.85 V.
    EXPECT_GT(report.entries[0].paaeCross,
              2.0 * report.entries[0].paaeAtPoint);
    EXPECT_GT(report.entries[2].paaeCross,
              report.entries[2].paaeAtPoint);
}

TEST(DvfsModels, PerPointBottomUpBeatsCrossFrequencyBottomUp)
{
    // The bottom-up methodology trained per operating point: the
    // 3.0-GHz-trained model mispredicts 2.0-GHz samples worse than
    // a 2.0-GHz-trained model does.
    Fixture f;
    auto corpus = f.randoms(10);
    std::vector<ChipConfig> cfgs = {{1, 1}, {1, 2}, {2, 1},
                                    {4, 1}, {8, 4}};
    Campaign campaign(f.machine, sweepSpec({2.0, 3.0}));
    auto samples = campaign.measure(corpus, cfgs);

    auto train_at = [&](double freq) {
        auto at = samplesAtFreq(samples, freq);
        BottomUpTrainingSet t;
        t.idleWatts = f.machine.idleWatts(
            {1, 1}, f.machine.operatingPoint(freq));
        for (const auto &s : at) {
            if (s.config.cores == 1 && s.config.smt == 1) {
                t.microSmt1.push_back(s);
                t.randomSmt1.push_back(s);
            } else if (s.config.cores == 1) {
                t.microSmtOn.push_back(s);
            }
            t.randomAllConfigs.push_back(s);
        }
        return BottomUpModel::train(t);
    };
    BottomUpModel at30 = train_at(3.0);
    BottomUpModel at20 = train_at(2.0);

    auto paae_on = [&](const BottomUpModel &m, double freq) {
        std::vector<double> pred, real;
        for (const auto &s : samplesAtFreq(samples, freq)) {
            pred.push_back(m.predict(s));
            real.push_back(s.powerWatts);
        }
        return paae(pred, real);
    };
    double cross = paae_on(at30, 2.0);
    double at_point = paae_on(at20, 2.0);
    EXPECT_GT(cross, at_point);
    EXPECT_GT(cross, 5.0); // the nominal statics are ~15% off
    EXPECT_LT(at_point, 5.0);
}
