/**
 * @file
 * Tests for the C / assembly emitter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "microprobe/emitter.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"

using namespace mprobe;

namespace
{

Program
sampleProgram()
{
    Architecture a = Architecture::get("POWER7");
    Synthesizer s(a, 77);
    s.addPass<SkeletonPass>(32);
    s.addPass<InstructionMixPass>(
        std::vector<Isa::OpIndex>{a.isa().find("add"),
                                  a.isa().find("lbz"),
                                  a.isa().find("xvmaddadp")});
    s.addPass<MemoryModelPass>(MemDistribution{1, 0, 0, 0});
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::fixed(2)));
    return s.synthesize("emit-test");
}

} // namespace

TEST(Emitter, AsmHasOneLinePerInstruction)
{
    Program p = sampleProgram();
    std::string asm_text = emitAsm(p);
    size_t lines = 0;
    std::istringstream in(asm_text);
    std::string l;
    while (std::getline(in, l))
        ++lines;
    EXPECT_EQ(lines, p.body.size());
}

TEST(Emitter, AsmMentionsMnemonics)
{
    Program p = sampleProgram();
    std::string s = emitAsm(p);
    EXPECT_NE(s.find("bdnz"), std::string::npos);
    // At least one of the mix instructions appears.
    EXPECT_TRUE(s.find("add") != std::string::npos ||
                s.find("lbz") != std::string::npos ||
                s.find("xvmaddadp") != std::string::npos);
}

TEST(Emitter, VectorOpsUseVsrNames)
{
    Architecture a = Architecture::get("POWER7");
    Synthesizer s(a, 5);
    s.addPass<SkeletonPass>(8);
    s.addPass<SequencePass>(
        std::vector<Isa::OpIndex>{a.isa().find("xvmaddadp")});
    Program p = s.synthesize("v");
    EXPECT_NE(emitAsm(p).find("vs"), std::string::npos);
}

TEST(Emitter, MemoryOpsAnnotatedWithStream)
{
    Program p = sampleProgram();
    EXPECT_NE(emitAsm(p).find("# stream"), std::string::npos);
}

TEST(Emitter, CFileIsSelfContained)
{
    Program p = sampleProgram();
    std::string c = emitC(p);
    EXPECT_NE(c.find("#include <stdint.h>"), std::string::npos);
    EXPECT_NE(c.find("__asm__ volatile"), std::string::npos);
    EXPECT_NE(c.find("for (;;)"), std::string::npos);
    EXPECT_NE(c.find("emit-test"), std::string::npos);
    EXPECT_NE(c.find("stream0"), std::string::npos);
}

TEST(Emitter, SaveWritesFile)
{
    Program p = sampleProgram();
    std::string path = testing::TempDir() + "/emit-test.c";
    saveC(p, path);
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::ostringstream os;
    os << f.rdbuf();
    EXPECT_EQ(os.str(), emitC(p));
    std::remove(path.c_str());
}

TEST(Emitter, DependencyMaterializedAsRegisterReuse)
{
    // A chain (dep distance 1) must reuse the previous result
    // register as the first source.
    Architecture a = Architecture::get("POWER7");
    Synthesizer s(a, 6);
    s.addPass<SkeletonPass>(8);
    s.addPass<SequencePass>(
        std::vector<Isa::OpIndex>{a.isa().find("add")});
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::chain()));
    Program p = s.synthesize("chain");
    std::string asm_text = emitAsm(p);
    // add r<k+1>, r<k>, ... pattern: the dest of line k appears in
    // line k+1. Spot-check: "add r3, r2" appears for slots 0->1.
    EXPECT_NE(asm_text.find("add r3, r2"), std::string::npos)
        << asm_text;
}
