/**
 * @file
 * Tests for the extension features: heterogeneous SMT deployments,
 * the area-heuristic model, the unroll/substitution passes, the
 * random-search driver, binary codification, and retargeting to the
 * second (POWER7+-like) architecture.
 */

#include <gtest/gtest.h>

#include "microprobe/bootstrap.hh"
#include "microprobe/cache_model.hh"
#include "microprobe/dse.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "power/area_model.hh"
#include "util/stats.hh"
#include "sim/encoding.hh"
#include "workloads/stressmarks.hh"

using namespace mprobe;

namespace
{

struct Fixture
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};

    Program
    loopOf(const std::string &op, int dep, size_t n = 512)
    {
        Synthesizer s(arch, 99);
        s.addPass<SkeletonPass>(n);
        s.addPass<SequencePass>(
            std::vector<Isa::OpIndex>{arch.isa().find(op)});
        s.add(std::make_unique<DependencyDistancePass>(
            dep == 0 ? DependencyDistancePass::none()
                     : DependencyDistancePass::fixed(dep)));
        return s.synthesize(op + "-loop");
    }
};

} // namespace

// ---------------------------------------------------------------
// Heterogeneous SMT deployment

TEST(Hetero, MixedThreadsShareTheCore)
{
    Fixture f;
    Program fxu = f.loopOf("subf", 0);
    Program vsu = f.loopOf("xvmaddadp", 0);
    ExecModel exec(f.arch.isa());
    CoreResult r =
        simulateCoreHetero(exec, {&fxu, &vsu}, CoreSimOptions());
    // Both unit families active: FXU ~2/cycle and VSU ~2/cycle.
    EXPECT_GT(r.window.fxuOps / r.window.cycles, 1.5);
    EXPECT_GT(r.window.vsuOps / r.window.cycles, 1.5);
    EXPECT_NEAR(r.window.ipc(), 4.0, 0.4);
}

TEST(Hetero, ComplementaryThreadsBeatHomogeneousIpc)
{
    Fixture f;
    Program fxu = f.loopOf("subf", 0);
    Program vsu = f.loopOf("xvmaddadp", 0);
    ExecModel exec(f.arch.isa());
    double hom =
        simulateCore(exec, fxu, 2).window.ipc();
    double het = simulateCoreHetero(exec, {&fxu, &vsu})
                     .window.ipc();
    // Two subf threads fight for the 2 FXU pipes (IPC 2); mixing
    // units fills both (IPC ~4).
    EXPECT_GT(het, hom * 1.5);
}

TEST(Hetero, FourWayDeployment)
{
    Fixture f;
    Program fxu = f.loopOf("subf", 0);
    Program vsu = f.loopOf("xvmaddadp", 0);
    Program lsu = f.loopOf("lbz", 0);
    UarchDef u = builtinP7Uarch();
    AnalyticalCacheModel cm(u);
    lsu.streams.push_back(cm.makeStream(HitLevel::L1, 0).stream);
    for (auto &pi : lsu.body)
        if (f.arch.isa().at(pi.op).isMemory())
            pi.stream = 0;
    Program add = f.loopOf("add", 0);
    ExecModel exec(f.arch.isa());
    CoreResult r =
        simulateCoreHetero(exec, {&fxu, &vsu, &lsu, &add});
    EXPECT_GT(r.window.ipc(), 4.0);
    EXPECT_GT(r.window.l1Hits, 0.0);
}

TEST(HeteroDeath, MixedIsaFatal)
{
    Fixture f;
    Program a = f.loopOf("add", 0);
    Isa other = Isa::fromText("instr nop type=int\ninstr b2 "
                              "type=branch\n");
    Program alien;
    alien.isa = &other;
    alien.name = "alien";
    alien.body.push_back({0, 0, -1, 1.0f, 1.0f});
    alien.body.push_back({1, 0, -1, 1.0f, 1.0f});
    ExecModel exec(f.arch.isa());
    EXPECT_EXIT(simulateCoreHetero(exec, {&a, &alien}),
                testing::ExitedWithCode(1), "share one ISA");
}

TEST(HeteroDeath, ThreeThreadsFatal)
{
    Fixture f;
    Program a = f.loopOf("add", 0);
    ExecModel exec(f.arch.isa());
    EXPECT_EXIT(simulateCoreHetero(exec, {&a, &a, &a}),
                testing::ExitedWithCode(1), "thread count");
}

// ---------------------------------------------------------------
// Area-heuristic model

TEST(AreaModel, CalibratesAndPredictsDirectionally)
{
    Fixture f;
    Program hot = f.loopOf("xvmaddadp", 0, 1024);
    Sample cal = makeSample("hot", f.machine.run(hot, {8, 1}));
    double idle = f.machine.idleWatts({8, 1});
    AreaHeuristicModel m =
        AreaHeuristicModel::calibrate(f.arch.uarch(), cal, idle);

    // Exact on the calibration point by construction.
    EXPECT_NEAR(m.predict(cal), cal.powerWatts,
                0.01 * cal.powerWatts);

    // Directionally sane elsewhere: more activity, more power.
    Program cold = f.loopOf("addic", 1, 1024);
    Sample cs = makeSample("cold", f.machine.run(cold, {8, 1}));
    EXPECT_LT(m.predict(cs), m.predict(cal));
    EXPECT_GT(m.predict(cs), idle);
}

TEST(AreaModel, WeightsFollowAreas)
{
    Fixture f;
    Program hot = f.loopOf("xvmaddadp", 0, 1024);
    Sample cal = makeSample("hot", f.machine.run(hot, {8, 1}));
    AreaHeuristicModel m = AreaHeuristicModel::calibrate(
        f.arch.uarch(), cal, f.machine.idleWatts({8, 1}));
    // VSU is the largest unit; its weight must exceed the FXU's.
    EXPECT_GT(m.weights()[1], m.weights()[0]);
}

TEST(AreaModel, LessAccurateThanCounterTrainedBu)
{
    // The comparison the extension exists for: on a mixed workload
    // the area heuristic errs far more than a few percent.
    Fixture f;
    Program hot = f.loopOf("xvmaddadp", 0, 1024);
    Sample cal = makeSample("hot", f.machine.run(hot, {8, 1}));
    AreaHeuristicModel m = AreaHeuristicModel::calibrate(
        f.arch.uarch(), cal, f.machine.idleWatts({8, 1}));
    Synthesizer s(f.arch, 5);
    s.addPass<SkeletonPass>(1024);
    s.addPass<InstructionMixPass>(f.arch.isa().integerOps());
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 8)));
    Program mixed = s.synthesize("mixed");
    Sample ms = makeSample("mixed", f.machine.run(mixed, {8, 1}));
    double err = pctAbsError(m.predict(ms), ms.powerWatts);
    EXPECT_GT(err, 2.0);
}

// ---------------------------------------------------------------
// Unroll / substitution passes

TEST(UnrollPass, GrowsBodyPreservingSingleBranch)
{
    Fixture f;
    Synthesizer s(f.arch, 3);
    s.addPass<SkeletonPass>(64);
    s.addPass<InstructionMixPass>(
        std::vector<Isa::OpIndex>{f.arch.isa().find("add")});
    s.addPass<UnrollPass>(4);
    Program p = s.synthesize("unrolled");
    EXPECT_EQ(p.body.size(), 63u * 4 + 1);
    size_t branches = p.countIf(
        [](const InstrDef &d) { return d.isBranch(); });
    EXPECT_EQ(branches, 1u);
}

TEST(UnrollPass, AmortizesLoopOverheadForThroughput)
{
    // The Section-2.2 experiment: unrolling shrinks the closing
    // branch's share of the loop, so the *useful* (non-branch)
    // throughput rises.
    Fixture f;
    auto build = [&](bool unroll) {
        Synthesizer s(f.arch, 4);
        // vand + add saturate the 6-wide dispatch, so the loop
        // branch genuinely steals issue bandwidth here.
        s.addPass<SkeletonPass>(8);
        s.addPass<SequencePass>(std::vector<Isa::OpIndex>{
            f.arch.isa().find("vand"), f.arch.isa().find("add")});
        if (unroll)
            s.addPass<UnrollPass>(32);
        s.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::none()));
        return s.synthesize(unroll ? "u" : "b");
    };
    auto work_rate = [&](const Program &p) {
        RunResult r = f.machine.run(p, {1, 1});
        return (r.chip.instrs - r.chip.bruOps) / r.chip.cycles;
    };
    double base = work_rate(build(false));
    double unrolled = work_rate(build(true));
    EXPECT_GT(unrolled, base + 0.3);
    EXPECT_GT(unrolled, 5.5); // near the 6-wide dispatch limit
}

TEST(UnrollPassDeath, FactorBelowTwoFatal)
{
    EXPECT_EXIT(UnrollPass u(1), testing::ExitedWithCode(1),
                "factor");
}

TEST(SubstitutionPass, ReplacesWithSequence)
{
    // The Section-2.2 example: one addi becomes li + add (modeled
    // as ori + add here).
    Fixture f;
    Synthesizer s(f.arch, 6);
    s.addPass<SkeletonPass>(64);
    s.addPass<SequencePass>(
        std::vector<Isa::OpIndex>{f.arch.isa().find("addi")});
    s.addPass<SubstitutionPass>(
        "addi", std::vector<std::string>{"ori", "add"});
    Program p = s.synthesize("subst");
    EXPECT_EQ(p.body.size(), 63u * 2 + 1);
    EXPECT_EQ(p.countIf([](const InstrDef &d) {
                  return d.name == "addi";
              }),
              0u);
    EXPECT_EQ(p.countIf([](const InstrDef &d) {
                  return d.name == "ori";
              }),
              63u);
}

TEST(SubstitutionPass, ChangesPowerMeasurably)
{
    Fixture f;
    auto build = [&](bool subst) {
        Synthesizer s(f.arch, 7);
        s.addPass<SkeletonPass>(512);
        s.addPass<SequencePass>(
            std::vector<Isa::OpIndex>{f.arch.isa().find("addi")});
        if (subst)
            s.addPass<SubstitutionPass>(
                "addi", std::vector<std::string>{"ori", "add"});
        s.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::none()));
        return s.synthesize(subst ? "s" : "b");
    };
    double base =
        f.machine.run(build(false), {8, 1}).sensorWatts;
    double subst =
        f.machine.run(build(true), {8, 1}).sensorWatts;
    EXPECT_NE(base, subst);
}

TEST(SubstitutionPassDeath, UnknownMnemonicFatal)
{
    Fixture f;
    Synthesizer s(f.arch, 8);
    s.addPass<SkeletonPass>(16);
    s.addPass<SubstitutionPass>(
        "addi", std::vector<std::string>{"nonesuch"});
    EXPECT_EXIT(s.synthesize(), testing::ExitedWithCode(1),
                "unknown instruction");
}

// ---------------------------------------------------------------
// Random search driver

TEST(RandomSearch, RespectsBudgetAndDomains)
{
    RandomSearch s(64, 11);
    std::vector<ParamDomain> space = {{"a", -3, 3}, {"b", 0, 9}};
    auto best = s.search(space, [](const DesignPoint &p) {
        return static_cast<double>(p[0] + p[1]);
    });
    EXPECT_EQ(s.history().size(), 64u);
    for (const auto &e : s.history()) {
        EXPECT_GE(e.point[0], -3);
        EXPECT_LE(e.point[0], 3);
        EXPECT_GE(e.point[1], 0);
        EXPECT_LE(e.point[1], 9);
    }
    EXPECT_GE(best.fitness, 8.0);
}

TEST(RandomSearch, GaBeatsRandomOnStructuredProblem)
{
    auto objective = [](const DesignPoint &p) {
        double dx = p[0] - 52, dy = p[1] - 13;
        return -(dx * dx + dy * dy);
    };
    std::vector<ParamDomain> space = {{"x", 0, 127}, {"y", 0, 127}};
    RandomSearch rnd(120, 3);
    GaOptions go;
    go.population = 12;
    go.generations = 10;
    GeneticSearch ga(go);
    double r = rnd.search(space, objective).fitness;
    double g = ga.search(space, objective).fitness;
    EXPECT_GE(g, r);
}

// ---------------------------------------------------------------
// Binary codification

TEST(Encoding, RoundTripsBody)
{
    Fixture f;
    Synthesizer s(f.arch, 12);
    s.addPass<SkeletonPass>(128);
    s.addPass<InstructionMixPass>(f.arch.isa().loads());
    s.addPass<MemoryModelPass>(MemDistribution{0.5, 0.5, 0, 0});
    s.addPass<RegisterInitPass>(DataPattern::Alt01);
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 12)));
    Program p = s.synthesize("enc");

    auto words = encodeProgram(p);
    ASSERT_EQ(words.size(), p.body.size());
    Program q = decodeProgram(f.arch.isa(), words, "dec");
    ASSERT_EQ(q.body.size(), p.body.size());
    for (size_t i = 0; i < p.body.size(); ++i) {
        EXPECT_EQ(q.body[i].op, p.body[i].op) << i;
        EXPECT_EQ(q.body[i].depDist, p.body[i].depDist) << i;
        EXPECT_EQ(q.body[i].stream, p.body[i].stream) << i;
    }
    EXPECT_EQ(q.streams.size(), p.streams.size());
}

TEST(Encoding, ActivityClassesPreserved)
{
    Fixture f;
    ProgInst pi{f.arch.isa().find("add"), 3, -1, 0.02f, 1.0f};
    uint32_t w = encodeInstruction(f.arch.isa(), pi);
    ProgInst out = decodeInstruction(f.arch.isa(), w);
    EXPECT_LT(out.toggle, 0.1f);
    pi.toggle = 1.0f;
    out = decodeInstruction(
        f.arch.isa(), encodeInstruction(f.arch.isa(), pi));
    EXPECT_FLOAT_EQ(out.toggle, 1.0f);
}

TEST(EncodingDeath, UnknownOpcodeFieldFatal)
{
    Fixture f;
    EXPECT_EXIT(decodeInstruction(f.arch.isa(), 0xffff0000u),
                testing::ExitedWithCode(1), "unknown opcode");
}

// ---------------------------------------------------------------
// Portability: POWER7+ retarget

TEST(Portability, P7PlusDefinitionLoads)
{
    Architecture plus = Architecture::get("POWER7+");
    EXPECT_EQ(plus.uarch().name(), "POWER7+-like");
    EXPECT_DOUBLE_EQ(plus.uarch().clockGhz(), 3.6);
    EXPECT_EQ(plus.uarch().cache("L3").geom.sizeBytes,
              8u * 1024 * 1024);
}

TEST(Portability, SameScriptRetargetsToP7Plus)
{
    // The paper's portability claim: the very same generation
    // policy runs against another architecture definition, and the
    // analytical cache model still guarantees the distribution on
    // the retargeted machine.
    Architecture plus = Architecture::get("POWER7+");
    Machine machine(plus.isa(), plus.uarch().cacheGeometries(),
                    plus.uarch().clockGhz());

    Synthesizer synth(plus, 21);
    synth.addPass<SkeletonPass>(1024);
    synth.addPass<InstructionMixPass>(plus.isa().loads());
    synth.addPass<MemoryModelPass>(
        MemDistribution{0.33, 0.33, 0.34, 0.0});
    synth.addPass<RegisterInitPass>(DataPattern::Alt01);
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 32)));
    Program p = synth.synthesize("p7plus-figure2");

    RunResult r = machine.run(p, ChipConfig{1, 1});
    double tot = r.chip.l1Hits + r.chip.l2Hits + r.chip.l3Hits +
                 r.chip.memAcc;
    EXPECT_NEAR(r.chip.l1Hits / tot, 0.33, 0.02);
    EXPECT_NEAR(r.chip.l2Hits / tot, 0.33, 0.02);
    EXPECT_NEAR(r.chip.l3Hits / tot, 0.34, 0.02);
}

TEST(Portability, BootstrapWorksOnP7Plus)
{
    Architecture plus = Architecture::get("POWER7+");
    Machine machine(plus.isa(), plus.uarch().cacheGeometries(),
                    plus.uarch().clockGhz());
    BootstrapOptions bo;
    bo.bodySize = 512;
    auto e = bootstrapInstruction(plus, machine,
                                  plus.isa().find("xvmaddadp"), bo);
    EXPECT_NEAR(e.latency, 6.0, 0.5);
    EXPECT_NEAR(e.throughput, 2.0, 0.15);
    // Rates are measured at 3.6 GHz now; EPI remains positive.
    EXPECT_GT(e.epiNj, 0.0);
}

TEST(Portability, P7PlusLargerL3KeepsBiggerFootprintsResident)
{
    // A footprint that thrashes the P7's 4 MB slice but fits the
    // P7+'s 8 MB slice.
    Architecture p7 = Architecture::get("POWER7");
    Architecture plus = Architecture::get("POWER7+");
    Machine m7(p7.isa());
    Machine mp(plus.isa(), plus.uarch().cacheGeometries(),
               plus.uarch().clockGhz());

    // A 6 MB span of lines accessed round-robin (one line per
    // 2 KB), prefetcher off for a clean capacity experiment; the
    // measurement window must cover several passes of the stream.
    m7.simOptions().prefetch = false;
    m7.simOptions().warmupIters = 10;
    m7.simOptions().measureIters = 8;
    mp.simOptions().prefetch = false;
    mp.simOptions().warmupIters = 10;
    mp.simOptions().measureIters = 8;
    Program prog;
    prog.isa = &p7.isa();
    prog.name = "footprint-6M";
    MemStream s;
    for (uint64_t i = 0; i < 6 * 1024 * 1024 / 128; i += 16)
        s.lines.push_back((64ull << 20) + i * 128);
    prog.streams.push_back(std::move(s));
    Isa::OpIndex ld = p7.isa().find("ld");
    for (int i = 0; i < 511; ++i)
        prog.body.push_back({ld, 8, 0, 1.0f, 1.0f});
    prog.body.push_back(
        {p7.isa().find("bdnz"), 0, -1, 1.0f, 1.0f});

    RunResult r7 = m7.run(prog, {1, 1});
    RunResult rp = mp.run(prog, {1, 1});
    double l3_7 = r7.chip.l3Hits / (r7.chip.l3Hits +
                                    r7.chip.memAcc + 1e-9);
    double l3_p = rp.chip.l3Hits / (rp.chip.l3Hits +
                                    rp.chip.memAcc + 1e-9);
    EXPECT_GT(l3_p, 0.95);
    EXPECT_LT(l3_7, 0.10);
}

// ---------------------------------------------------------------
// Shipped definition files (defs/) stay in sync with the builtins

TEST(DefFiles, IsaFileMatchesBuiltin)
{
    Isa file = Isa::fromFile(
        std::string(MPROBE_SOURCE_DIR) + "/defs/power7.isa");
    const Isa &builtin = builtinP7Isa();
    ASSERT_EQ(file.size(), builtin.size());
    EXPECT_EQ(file.name(), builtin.name());
    for (size_t i = 0; i < builtin.size(); ++i) {
        const InstrDef &a = builtin.at(static_cast<Isa::OpIndex>(i));
        const InstrDef &b = file.at(static_cast<Isa::OpIndex>(i));
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_EQ(a.width, b.width);
        EXPECT_EQ(a.update, b.update);
    }
}

TEST(DefFiles, UarchFilesMatchBuiltins)
{
    UarchDef f7 = UarchDef::fromFile(
        std::string(MPROBE_SOURCE_DIR) + "/defs/power7.uarch");
    UarchDef b7 = builtinP7Uarch();
    EXPECT_EQ(f7.name(), b7.name());
    EXPECT_EQ(f7.units().size(), b7.units().size());
    EXPECT_EQ(f7.cache("L3").geom.sizeBytes,
              b7.cache("L3").geom.sizeBytes);

    UarchDef fp = UarchDef::fromFile(
        std::string(MPROBE_SOURCE_DIR) + "/defs/power7plus.uarch");
    EXPECT_EQ(fp.name(), builtinP7PlusUarch().name());
    EXPECT_EQ(fp.cache("L3").geom.sizeBytes, 8u * 1024 * 1024);
}
