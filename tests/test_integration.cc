/**
 * @file
 * End-to-end integration: a reduced Section-4 pipeline (suite
 * generation, measurement, model training, SPEC validation) and the
 * headline properties of the paper's three case studies.
 */

#include <gtest/gtest.h>

#include "microprobe/bootstrap.hh"
#include "workloads/extremes.hh"
#include "workloads/pipeline.hh"

using namespace mprobe;

namespace
{

/** One reduced pipeline, shared by all tests in this file. */
class PipelineTest : public testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        arch = new Architecture(Architecture::get("POWER7"));
        machine = new Machine(arch->isa());

        BootstrapOptions bo;
        bo.bodySize = 512;
        bootstrapArchitecture(*arch, *machine, bo);

        PipelineOptions po;
        po.suite.bodySize = 1024;
        po.suite.perMemoryGroup = 2;
        po.suite.memoryCount = 4;
        po.suite.randomCount = 40;
        po.suite.ipcSearchBudget = 3;
        po.suite.gaPopulation = 4;
        po.suite.gaGenerations = 1;
        po.configs = {{1, 1}, {1, 2}, {1, 4}, {2, 1}, {4, 2},
                      {4, 4}, {6, 2}, {8, 1}, {8, 4}};
        po.randomCrossConfig = 24;
        po.specCount = 10;
        po.bodySize = 1024;
        ex = new ModelExperiment(
            runModelPipeline(*arch, *machine, po));
    }

    static void
    TearDownTestSuite()
    {
        delete ex;
        delete machine;
        delete arch;
        ex = nullptr;
        machine = nullptr;
        arch = nullptr;
    }

    static Architecture *arch;
    static Machine *machine;
    static ModelExperiment *ex;
};

Architecture *PipelineTest::arch = nullptr;
Machine *PipelineTest::machine = nullptr;
ModelExperiment *PipelineTest::ex = nullptr;

} // namespace

TEST_F(PipelineTest, BottomUpAccurateOnSpec)
{
    // Paper: mean PAAE ~2.3%, max ~4%. Allow headroom on the
    // reduced corpus.
    double e = ex->paaeOf(ex->bu, ex->spec);
    EXPECT_LT(e, 5.0);
}

TEST_F(PipelineTest, PerConfigErrorsBounded)
{
    for (const auto &cfg :
         {ChipConfig{1, 1}, ChipConfig{4, 4}, ChipConfig{8, 4}}) {
        double e = ex->paaeOf(ex->bu, ex->specAt(cfg));
        EXPECT_LT(e, 7.0) << cfg.label();
    }
}

TEST_F(PipelineTest, TopDownModelsAlsoReasonableOnSpec)
{
    EXPECT_LT(ex->paaeOf(ex->tdMicro, ex->spec), 10.0);
    EXPECT_LT(ex->paaeOf(ex->tdRandom, ex->spec), 10.0);
    EXPECT_LT(ex->paaeOf(ex->tdSpec, ex->spec), 6.0);
}

TEST_F(PipelineTest, BottomUpCompetitiveWithOptimisticModel)
{
    // TD_SPEC is trained on the validation set itself; BU must be
    // within ~2.5 points of it (paper: "less than 2 percentage
    // points of difference", BU closest).
    double bu = ex->paaeOf(ex->bu, ex->spec);
    double td_spec = ex->paaeOf(ex->tdSpec, ex->spec);
    EXPECT_LT(bu, td_spec + 2.5);
}

TEST_F(PipelineTest, MicroTrainedModelsHandleExtremes)
{
    auto cases = generateExtremeCases(*arch, 1024);
    std::vector<Sample> samples;
    for (const auto &c : cases)
        for (const auto &cfg :
             {ChipConfig{1, 1}, ChipConfig{8, 1}, ChipConfig{8, 4}})
            samples.push_back(
                makeSample(c.name, machine->run(c.program, cfg)));

    double bu = ex->paaeOf(ex->bu, samples);
    double td_random = ex->paaeOf(ex->tdRandom, samples);
    // The paper's Figure-7 contrast: micro-benchmark-trained models
    // stay accurate, workload-trained ones degrade badly.
    EXPECT_LT(bu, 10.0);
    EXPECT_GT(td_random, bu);
}

TEST_F(PipelineTest, BreakdownComponentsSane)
{
    Sample s = ex->spec.front();
    PowerBreakdown b = ex->bu.breakdown(s);
    EXPECT_GT(b.workloadIndependent, 0.0);
    EXPECT_GT(b.dynamic, 0.0);
    EXPECT_GE(b.cmpEffect, 0.0);
    EXPECT_NEAR(b.total(), ex->bu.predict(s), 1e-9);
}

TEST_F(PipelineTest, SmtEffectSmall)
{
    // Paper: the SMT-enable overhead is minimal (<3% of power).
    EXPECT_GT(ex->bu.smtEffect(), 0.0);
    EXPECT_LT(ex->bu.smtEffect() * 8, 0.1 * 100.0);
}

TEST_F(PipelineTest, DynamicShareGrowsWithThreads)
{
    // Figure 8 trend: the dynamic share grows with hardware
    // threads; WI+uncore share shrinks.
    auto share = [&](const ChipConfig &cfg) {
        auto ss = ex->specAt(cfg);
        double dyn = 0, tot = 0;
        for (const auto &s : ss) {
            PowerBreakdown b = ex->bu.breakdown(s);
            dyn += b.dynamic;
            tot += b.total();
        }
        return dyn / tot;
    };
    EXPECT_GT(share({8, 4}), share({1, 1}) + 0.1);
}

TEST_F(PipelineTest, SuiteAchievedIpcsTrackTargets)
{
    int close = 0, targeted = 0;
    for (const auto &gb : ex->suite) {
        if (gb.targetIpc <= 0)
            continue;
        ++targeted;
        close += std::abs(gb.achievedIpc - gb.targetIpc) < 0.25;
    }
    ASSERT_GT(targeted, 0);
    // Most IPC-targeted benchmarks land near their target (the
    // 3.6-3.9 Simple-Integer targets sit above the machine's
    // structural limit and cannot be reached exactly).
    EXPECT_GT(close, targeted * 6 / 10);
}
