/**
 * @file
 * Unit tests for the ISA definition module.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/isa.hh"

using namespace mprobe;

TEST(IsaParser, ParsesMinimalDefinition)
{
    Isa isa = Isa::fromText("isa TEST\nversion 1.0\n"
                            "instr foo type=int width=32 srcs=1 "
                            "dsts=1 imm=1\n");
    EXPECT_EQ(isa.name(), "TEST");
    EXPECT_EQ(isa.version(), "1.0");
    ASSERT_EQ(isa.size(), 1u);
    const InstrDef &d = isa.byName("foo");
    EXPECT_EQ(d.cls, InstrClass::IntSimple);
    EXPECT_EQ(d.width, 32);
    EXPECT_TRUE(d.hasImm);
}

TEST(IsaParser, DefaultsApply)
{
    Isa isa = Isa::fromText("instr bar\n");
    const InstrDef &d = isa.byName("bar");
    EXPECT_EQ(d.cls, InstrClass::IntSimple);
    EXPECT_EQ(d.width, 64);
    EXPECT_EQ(d.srcs, 2);
    EXPECT_EQ(d.dsts, 1);
    EXPECT_FALSE(d.hasImm);
}

TEST(IsaParser, FlagsParsed)
{
    Isa isa = Isa::fromText(
        "instr stfdux type=store flags=float,update,indexed\n");
    const InstrDef &d = isa.byName("stfdux");
    EXPECT_TRUE(d.floatData);
    EXPECT_TRUE(d.update);
    EXPECT_TRUE(d.indexed);
    EXPECT_FALSE(d.vectorData);
}

TEST(IsaParser, CommentsAndBlanksIgnored)
{
    Isa isa = Isa::fromText("# comment\n\n  \ninstr a\n# x\ninstr b\n");
    EXPECT_EQ(isa.size(), 2u);
}

TEST(IsaParserDeath, DuplicateMnemonicFatal)
{
    EXPECT_EXIT(Isa::fromText("instr a\ninstr a\n"),
                testing::ExitedWithCode(1), "duplicate");
}

TEST(IsaParserDeath, UnknownDirectiveFatal)
{
    EXPECT_EXIT(Isa::fromText("bogus x\n"),
                testing::ExitedWithCode(1), "unknown directive");
}

TEST(IsaParserDeath, UnknownClassFatal)
{
    EXPECT_EXIT(Isa::fromText("instr a type=warp\n"),
                testing::ExitedWithCode(1), "unknown instruction");
}

TEST(IsaParserDeath, BadWidthFatal)
{
    EXPECT_EXIT(Isa::fromText("instr a width=0\n"),
                testing::ExitedWithCode(1), "bad width");
}

TEST(IsaParserDeath, UnknownFlagFatal)
{
    EXPECT_EXIT(Isa::fromText("instr a flags=wiggly\n"),
                testing::ExitedWithCode(1), "unknown instruction flag");
}

TEST(Isa, FindAndAt)
{
    const Isa &isa = builtinP7Isa();
    Isa::OpIndex idx = isa.find("add");
    ASSERT_GE(idx, 0);
    EXPECT_EQ(isa.at(idx).name, "add");
    EXPECT_EQ(isa.find("nonexistent"), -1);
}

TEST(Isa, RoundTripThroughText)
{
    const Isa &isa = builtinP7Isa();
    Isa again = Isa::fromText(isa.toText(), "<roundtrip>");
    ASSERT_EQ(again.size(), isa.size());
    for (size_t i = 0; i < isa.size(); ++i) {
        const InstrDef &a = isa.at(static_cast<Isa::OpIndex>(i));
        const InstrDef &b = again.at(static_cast<Isa::OpIndex>(i));
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_EQ(a.width, b.width);
        EXPECT_EQ(a.srcs, b.srcs);
        EXPECT_EQ(a.dsts, b.dsts);
        EXPECT_EQ(a.hasImm, b.hasImm);
        EXPECT_EQ(a.update, b.update);
        EXPECT_EQ(a.algebraic, b.algebraic);
        EXPECT_EQ(a.vectorData, b.vectorData);
    }
}

TEST(Isa, SelectQueriesArePredicates)
{
    const Isa &isa = builtinP7Isa();
    auto loads = isa.loads();
    EXPECT_FALSE(loads.empty());
    for (auto op : loads)
        EXPECT_TRUE(isa.at(op).isLoad());
    auto stores = isa.stores();
    for (auto op : stores)
        EXPECT_TRUE(isa.at(op).isStore());
    auto mem = isa.memoryOps();
    EXPECT_EQ(mem.size(), loads.size() + stores.size());
}

TEST(Isa, ClassNamesRoundTrip)
{
    for (InstrClass c :
         {InstrClass::IntSimple, InstrClass::IntComplex,
          InstrClass::Load, InstrClass::Store, InstrClass::Float,
          InstrClass::Vector, InstrClass::Decimal,
          InstrClass::Branch, InstrClass::CondReg,
          InstrClass::System})
        EXPECT_EQ(parseInstrClass(instrClassName(c)), c);
}

// Every instruction the paper names must exist in the builtin ISA.
class PaperInstr : public testing::TestWithParam<const char *>
{
};

TEST_P(PaperInstr, PresentInBuiltinIsa)
{
    EXPECT_GE(builtinP7Isa().find(GetParam()), 0)
        << GetParam() << " missing";
}

INSTANTIATE_TEST_SUITE_P(
    Table3, PaperInstr,
    testing::Values("mulldo", "subf", "addic", "lxvw4x", "lvewx",
                    "lbz", "xvnmsubmdp", "xvmaddadp", "xstsqrtdp",
                    "add", "nor", "and", "ldux", "lwax", "lfsu",
                    "lhaux", "lwaux", "lhau", "stxvw4x", "stxsdx",
                    "stfd", "stfsux", "stfdux", "stfdu", "mullw",
                    "lxvd2x", "dcbt", "bdnz"));

TEST(IsaBuiltin, HasBroadCoverage)
{
    const Isa &isa = builtinP7Isa();
    EXPECT_GE(isa.size(), 180u);
    EXPECT_GE(isa.loads().size(), 30u);
    EXPECT_GE(isa.stores().size(), 20u);
    EXPECT_GE(isa.fpVectorOps().size(), 40u);
    EXPECT_GE(isa.branches().size(), 5u);
}

TEST(IsaBuiltin, UpdateFormsAreMarked)
{
    const Isa &isa = builtinP7Isa();
    EXPECT_TRUE(isa.byName("ldux").update);
    EXPECT_TRUE(isa.byName("lhaux").algebraic);
    EXPECT_TRUE(isa.byName("lhaux").update);
    EXPECT_FALSE(isa.byName("lbz").update);
    EXPECT_TRUE(isa.byName("stfdu").update);
}

TEST(IsaBuiltin, VsuDataQueries)
{
    const Isa &isa = builtinP7Isa();
    EXPECT_TRUE(isa.byName("stxvw4x").movesVsuData());
    EXPECT_TRUE(isa.byName("lfd").movesVsuData());
    EXPECT_FALSE(isa.byName("std").movesVsuData());
    EXPECT_TRUE(isa.byName("xvmaddadp").isFpVector());
    EXPECT_FALSE(isa.byName("xvmaddadp").isMemory());
}

TEST(IsaBuiltin, PrivilegedMarked)
{
    const Isa &isa = builtinP7Isa();
    EXPECT_TRUE(isa.byName("mtmsr").privileged);
    EXPECT_TRUE(isa.byName("tlbie").privileged);
    EXPECT_FALSE(isa.byName("add").privileged);
}

TEST(IsaBuiltin, PrefetchMarked)
{
    EXPECT_TRUE(builtinP7Isa().byName("dcbt").prefetch);
    EXPECT_TRUE(builtinP7Isa().byName("dcbtst").prefetch);
}

TEST(IsaBuiltin, EncodingsAreUnique)
{
    const Isa &isa = builtinP7Isa();
    std::set<uint32_t> encs;
    for (const auto &d : isa.all())
        EXPECT_TRUE(encs.insert(d.encoding).second)
            << d.name << " shares an encoding";
}

TEST(Isa, AddRejectsDuplicates)
{
    Isa isa("x");
    InstrDef d;
    d.name = "dup";
    isa.add(d);
    EXPECT_EXIT(isa.add(d), testing::ExitedWithCode(1), "duplicate");
}
