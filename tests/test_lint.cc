/**
 * @file
 * Tests for the mprobe invariant linter (src/lint/).
 *
 * Each rule gets inline fixture snippets — one that must fire and a
 * clean/annotated twin that must not — plus the self-check that the
 * real tree (MPROBE_SOURCE_DIR) lints clean: the linter gates CI,
 * so a rule that fires on healthy code is itself a bug.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hh"
#include "lint/tokenize.hh"

using namespace mprobe;

namespace
{

bool
hasRule(const std::vector<LintFinding> &findings,
        const std::string &rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const LintFinding &f) {
                           return f.rule == rule;
                       });
}

} // namespace

// ----------------------------------------------------------------
// Tokenizer + annotations.

TEST(LintTokenize, StripsCommentsAndStrings)
{
    LintSource src = lintTokenize(
        "int a = 0; // steady_clock in a comment\n"
        "const char *s = \"rand()\";\n"
        "/* unordered_map in a block comment */\n");
    for (const LintToken &t : src.tokens) {
        EXPECT_NE(t.text, "steady_clock");
        EXPECT_NE(t.text, "rand");
        EXPECT_NE(t.text, "unordered_map");
    }
    // ...and the same names as code do tokenize.
    src = lintTokenize("auto x = rand();");
    bool saw = false;
    for (const LintToken &t : src.tokens)
        saw = saw || t.text == "rand";
    EXPECT_TRUE(saw);
}

TEST(LintTokenize, RawStringsAndEscapes)
{
    LintSource src = lintTokenize(
        "auto a = R\"(rand() time(nullptr))\";\n"
        "auto b = \"esc \\\" rand()\";\n"
        "char c = '\\'';\n"
        "int after = 1;\n");
    for (const LintToken &t : src.tokens)
        EXPECT_NE(t.text, "rand");
    // The token after all the literals still carries the right
    // line: literal handling must not desync line tracking.
    bool found = false;
    for (const LintToken &t : src.tokens)
        if (t.text == "after") {
            EXPECT_EQ(t.line, 4);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(LintTokenize, AnnotationsNeedTagAndReason)
{
    LintSource src = lintTokenize(
        "int a; // lint: wallclock-ok(progress only)\n"
        "int b; // lint: wallclock-ok\n" // no reason: ignored
        "/* lint: fingerprint-exempt(execution detail) */\n"
        "int c;\n");
    ASSERT_EQ(src.annotations.size(), 2u);
    EXPECT_EQ(src.annotations[0].tag, "wallclock-ok");
    EXPECT_EQ(src.annotations[0].reason, "progress only");
    EXPECT_EQ(src.annotations[0].line, 1);
    EXPECT_TRUE(src.exempt("wallclock-ok", 1));
    // Line-above coverage: the block annotation on line 3 covers
    // the declaration on line 4.
    EXPECT_TRUE(src.exempt("fingerprint-exempt", 4));
    // Line-above coverage reaches exactly one line down, no
    // further (line 1's annotation covers lines 1 and 2 only).
    EXPECT_FALSE(src.exempt("wallclock-ok", 3));
    EXPECT_FALSE(src.exempt("nonexistent-tag", 1));
}

// ----------------------------------------------------------------
// Rule: nondeterminism.

TEST(LintNondeterminism, FlagsClocksAndRng)
{
    const char *path = "src/campaign/anything.cc";
    EXPECT_TRUE(hasRule(
        lintSourceText(
            path, "auto t = std::chrono::steady_clock::now();\n"),
        "nondeterminism"));
    EXPECT_TRUE(hasRule(
        lintSourceText(path, "int r = rand();\n"),
        "nondeterminism"));
    EXPECT_TRUE(hasRule(
        lintSourceText(path, "std::random_device rd;\n"),
        "nondeterminism"));
    EXPECT_TRUE(hasRule(
        lintSourceText(path, "time_t t = time(nullptr);\n"),
        "nondeterminism"));
    EXPECT_TRUE(hasRule(
        lintSourceText(path, "long r = std::rand();\n"),
        "nondeterminism"));
}

TEST(LintNondeterminism, AnnotationSilences)
{
    const char *path = "src/campaign/anything.cc";
    EXPECT_TRUE(lintSourceText(
                    path,
                    "// lint: wallclock-ok(ETA reporting only)\n"
                    "using clock = std::chrono::steady_clock;\n")
                    .empty());
    EXPECT_TRUE(
        lintSourceText(path,
                       "auto t0 = std::chrono::steady_clock::now();"
                       " // lint: wallclock-ok(heartbeat)\n")
            .empty());
}

TEST(LintNondeterminism, ProjectNamesAreNotLibcCalls)
{
    const char *path = "src/microprobe/anything.cc";
    // A project-scoped static factory that happens to be called
    // "random" is not libc random(); same for member access and
    // declarations.
    EXPECT_TRUE(lintSourceText(
                    path, "auto p = DepPass::random(1, 8);\n")
                    .empty());
    EXPECT_TRUE(
        lintSourceText(path, "auto v = obj.time();\n").empty());
    EXPECT_TRUE(
        lintSourceText(path, "auto v = obj->clock();\n").empty());
    EXPECT_TRUE(lintSourceText(
                    path, "static DepPass random(int l, int h);\n")
                    .empty());
    // ...but "return rand();" is still a call.
    EXPECT_TRUE(hasRule(lintSourceText(path, "return rand();\n"),
                        "nondeterminism"));
}

TEST(LintNondeterminism, BenchAndTestsOutOfScope)
{
    // bench_fig3 legitimately times the DSE wall clock; tests build
    // TTL fixtures. Neither feeds results.
    const char *snippet =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(lintSourceText("bench/bench_fig3.cc", snippet)
                    .empty());
    EXPECT_TRUE(lintSourceText("tests/test_claims.cc", snippet)
                    .empty());
}

// ----------------------------------------------------------------
// Rule: unordered-iteration.

TEST(LintUnordered, FlagsInByteIdentityFiles)
{
    const char *snippet =
        "#include <unordered_map>\n"
        "std::unordered_map<std::string, int> m;\n";
    EXPECT_TRUE(hasRule(
        lintSourceText("src/campaign/export.cc", snippet),
        "unordered-iteration"));
    EXPECT_TRUE(hasRule(
        lintSourceText("src/sim/machine.cc", snippet),
        "unordered-iteration"));
    // Out of the byte-identity file set: allowed.
    EXPECT_TRUE(lintSourceText("src/microprobe/synth.cc", snippet)
                    .empty());
}

TEST(LintUnordered, AnnotationSilences)
{
    EXPECT_TRUE(
        lintSourceText(
            "src/campaign/cache.cc",
            "// lint: unordered-ok(lookup only, never iterated)\n"
            "std::unordered_set<uint64_t> seen;\n")
            .empty());
}

// ----------------------------------------------------------------
// Rule: obs-isolation.

TEST(LintObsIsolation, FlagsObsInByteIdentityFiles)
{
    const char *snippet =
        "#include \"obs/metrics.hh\"\n"
        "void f() { obs::counter(\"cache_hits\").add(); }\n";
    EXPECT_TRUE(hasRule(
        lintSourceText("src/campaign/cache.cc", snippet),
        "obs-isolation"));
    EXPECT_TRUE(hasRule(
        lintSourceText("src/campaign/export.cc", snippet),
        "obs-isolation"));
    EXPECT_TRUE(hasRule(
        lintSourceText("src/util/hash.hh", snippet),
        "obs-isolation"));
    // A span helper is as forbidden as a counter.
    EXPECT_TRUE(hasRule(
        lintSourceText("src/campaign/manifest.cc",
                       "void g() { obs::TraceSpan s(\"x\"); }\n"),
        "obs-isolation"));
}

TEST(LintObsIsolation, EngineFilesAndCleanCodePass)
{
    const char *snippet =
        "void f() { obs::counter(\"claims_stolen\").add(); }\n";
    // Orchestration files instrument legitimately: out of scope.
    EXPECT_TRUE(
        lintSourceText("src/campaign/campaign.cc", snippet)
            .empty());
    EXPECT_TRUE(
        lintSourceText("src/service/service.cc", snippet).empty());
    // In-scope files that never touch obs:: stay clean, even with
    // an unrelated identifier spelled "obs".
    EXPECT_TRUE(lintSourceText("src/campaign/cache.cc",
                               "int obs = 3; int y = obs + 1;\n")
                    .empty());
    // No exemption annotation exists for this rule: an annotated
    // violation still fires.
    EXPECT_TRUE(hasRule(
        lintSourceText("src/campaign/spec.cc",
                       "// lint: wallclock-ok(nice try)\n"
                       "void h() { obs::traceInstant(\"x\"); }\n"),
        "obs-isolation"));
}

// ----------------------------------------------------------------
// Rule: hot-path-alloc.

TEST(LintHotPath, FlagsHeapInSimulateCoreDecoded)
{
    const char *path = "src/sim/core.cc";
    EXPECT_TRUE(hasRule(
        lintSourceText(path,
                       "RunCounters simulateCoreDecoded(int n) {\n"
                       "    auto *p = new double[8];\n"
                       "    return {};\n"
                       "}\n"),
        "hot-path-alloc"));
    EXPECT_TRUE(hasRule(
        lintSourceText(path,
                       "RunCounters simulateCoreDecoded(int n) {\n"
                       "    std::vector<double> v;\n"
                       "    v.push_back(1.0);\n"
                       "    return {};\n"
                       "}\n"),
        "hot-path-alloc"));
}

TEST(LintHotPath, OutsideTheFunctionIsFine)
{
    // Allocation before/after the hot function is not the rule's
    // business; neither are annotated cold paths inside it.
    EXPECT_TRUE(lintSourceText(
                    "src/sim/core.cc",
                    "static double *table = new double[64];\n"
                    "RunCounters simulateCoreDecoded(int n) {\n"
                    "    double acc = 0;\n"
                    "    // lint: hotpath-alloc-ok(cold abort)\n"
                    "    if (n < 0) details.push_back(n);\n"
                    "    return {};\n"
                    "}\n"
                    "void after() { new int; }\n")
                    .empty());
}

TEST(LintHotPath, MissingFunctionIsAFinding)
{
    // core.cc without simulateCoreDecoded means the hot path moved
    // and the rule scope must move with it.
    EXPECT_TRUE(hasRule(
        lintSourceText("src/sim/core.cc", "int unrelated;\n"),
        "hot-path-alloc"));
}

// ----------------------------------------------------------------
// Rule: fingerprint-coverage.

namespace
{

const char *const kSpecStruct =
    "struct Spec {\n"
    "    uint64_t salt = 0;\n"
    "    std::vector<ChipConfig> configs = ChipConfig::all();\n"
    "    int threads = 0; // lint: fingerprint-exempt(exec detail)\n"
    "    bool sharded() const { return shardCount > 1; }\n"
    "    static int parse(const std::string &s);\n"
    "    double freqs[4] = {0, 0, 0, 0};\n"
    "};\n";

std::vector<LintFinding>
coverage(const std::string &fn_body)
{
    return lintFingerprintCoverage(
        "spec.hh", kSpecStruct, "Spec", "fp.cc",
        "uint64_t fingerprint(const Spec &s) {\n" + fn_body +
            "\n}\n",
        "fingerprint");
}

} // namespace

TEST(LintFingerprint, CleanWhenEveryFieldHashedOrExempt)
{
    auto findings = coverage("    return hash(s.salt, s.configs, "
                             "s.freqs);");
    EXPECT_TRUE(findings.empty());
}

TEST(LintFingerprint, DroppedFieldFails)
{
    // Exactly what must happen when someone deletes a hash line:
    // freqs is no longer referenced and carries no exemption.
    auto findings = coverage("    return hash(s.salt, s.configs);");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "fingerprint-coverage");
    EXPECT_NE(findings[0].message.find("freqs"),
              std::string::npos);
    EXPECT_EQ(findings[0].file, "spec.hh");
}

TEST(LintFingerprint, MemberFunctionsAndStaticsIgnored)
{
    // sharded()/parse() never show up as fields: hashing "sharded"
    // is not demanded even when nothing references it.
    auto findings = coverage("    return hash(s.salt, s.configs, "
                             "s.freqs);");
    for (const LintFinding &f : findings) {
        EXPECT_EQ(f.message.find("sharded"), std::string::npos);
        EXPECT_EQ(f.message.find("parse"), std::string::npos);
    }
}

TEST(LintFingerprint, MissingStructOrFunctionIsAFinding)
{
    EXPECT_TRUE(hasRule(
        lintFingerprintCoverage("a.hh", "int x;\n", "Spec", "b.cc",
                                "void fingerprint() {}\n",
                                "fingerprint"),
        "fingerprint-coverage"));
    EXPECT_TRUE(hasRule(
        lintFingerprintCoverage("a.hh", kSpecStruct, "Spec",
                                "b.cc", "int unrelated;\n",
                                "fingerprint"),
        "fingerprint-coverage"));
}

// ----------------------------------------------------------------
// Self-check on the real machine sources: the coverage rule must
// see the GroundTruthParams Vmin-margin fields (the undervolting
// additions), so deleting their hash lines from fingerprint()
// cannot pass silently.

namespace
{

std::string
readRepoFile(const std::string &rel)
{
    std::ifstream f(std::string(MPROBE_SOURCE_DIR) + "/" + rel);
    EXPECT_TRUE(f.is_open()) << rel;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

} // namespace

TEST(LintFingerprint, RealMachineVminFieldsAreCovered)
{
    std::string hh = readRepoFile("src/sim/machine.hh");
    std::string cc = readRepoFile("src/sim/machine.cc");
    // Clean today: every GroundTruthParams field (including
    // vminBase/vminPerGhz/vminPerIpc) is hashed or exempt.
    EXPECT_TRUE(lintFingerprintCoverage(
                    "src/sim/machine.hh", hh, "GroundTruthParams",
                    "src/sim/machine.cc", cc, "fingerprint")
                    .empty());
    // And the rule is actually watching the Vmin fields: a
    // fingerprint() with their references renamed away must fail
    // on exactly those names.
    std::string stripped = cc;
    for (const std::string field :
         {"vminBase", "vminPerGhz", "vminPerIpc"}) {
        size_t at;
        while ((at = stripped.find(field)) != std::string::npos)
            stripped.replace(at, field.size(), "gone");
        auto findings = lintFingerprintCoverage(
            "src/sim/machine.hh", hh, "GroundTruthParams",
            "src/sim/machine.cc", stripped, "fingerprint");
        EXPECT_TRUE(std::any_of(
            findings.begin(), findings.end(),
            [&](const LintFinding &f) {
                return f.rule == "fingerprint-coverage" &&
                       f.message.find(field) != std::string::npos;
            }))
            << field;
    }
}

// ----------------------------------------------------------------
// The real tree must lint clean: this is the same check CI runs
// via mprobe_lint, kept in-suite so a plain `ctest` catches a
// violation before the push.

TEST(LintTree, RepoIsClean)
{
    auto findings = lintTree(MPROBE_SOURCE_DIR);
    for (const LintFinding &f : findings)
        ADD_FAILURE() << f.format();
    EXPECT_TRUE(findings.empty());
}
