/**
 * @file
 * Tests for the chip-level machine model and its power sensor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "microprobe/cache_model.hh"
#include "sim/machine.hh"
#include "uarch/uarch.hh"

using namespace mprobe;

namespace
{

const Isa &isa = builtinP7Isa();

Program
loopOf(const std::string &op, size_t n, int dep, int stream = -1)
{
    Program p;
    p.isa = &isa;
    p.name = "m-" + op;
    Isa::OpIndex o = isa.find(op);
    for (size_t i = 0; i + 1 < n; ++i)
        p.body.push_back({o, dep, stream, 1.0f, 1.0f});
    p.body.push_back({isa.find("bdnz"), 0, -1, 1.0f, 1.0f});
    return p;
}

Program
memLoop(HitLevel lvl)
{
    Program p = loopOf("ld", 512, 6, 0);
    UarchDef u = builtinP7Uarch();
    AnalyticalCacheModel m(u);
    p.streams.push_back(m.makeStream(lvl, 0).stream);
    p.name = "mem-loop";
    return p;
}

} // namespace

TEST(Machine, ConfigLabels)
{
    EXPECT_EQ((ChipConfig{4, 2}.label()), "4-2");
    EXPECT_EQ((ChipConfig{8, 4}.threads()), 32);
    EXPECT_EQ(ChipConfig::all().size(), 24u);
}

TEST(Machine, SensorIsDeterministicPerRun)
{
    Machine m(isa);
    Program p = loopOf("add", 512, 0);
    RunResult a = m.run(p, {4, 2});
    RunResult b = m.run(p, {4, 2});
    EXPECT_DOUBLE_EQ(a.sensorWatts, b.sensorWatts);
}

TEST(Machine, SaltPerturbsSensorOnly)
{
    Machine m(isa);
    Program p = loopOf("add", 512, 0);
    RunResult a = m.run(p, {4, 2}, 1);
    RunResult b = m.run(p, {4, 2}, 2);
    EXPECT_NE(a.sensorWatts, b.sensorWatts);
    EXPECT_DOUBLE_EQ(a.coreIpc, b.coreIpc);
    // Noise is small (0.15%-ish).
    EXPECT_NEAR(a.sensorWatts, b.sensorWatts,
                0.02 * a.sensorWatts);
}

TEST(Machine, SensorQuantizedToMilliwatts)
{
    Machine m(isa);
    Program p = loopOf("add", 256, 0);
    double w = m.run(p, {2, 1}).sensorWatts;
    EXPECT_NEAR(w * 1000.0, std::round(w * 1000.0), 1e-9);
}

TEST(Machine, IdleBelowAnyWorkload)
{
    Machine m(isa);
    Program p = loopOf("add", 512, 0);
    for (int cores : {1, 4, 8}) {
        ChipConfig cfg{cores, 1};
        EXPECT_LT(m.idleWatts(cfg),
                  m.run(p, cfg).sensorWatts);
    }
}

TEST(Machine, PowerGrowsWithCores)
{
    Machine m(isa);
    Program p = loopOf("xvmaddadp", 1024, 0);
    double prev = 0.0;
    for (int cores = 1; cores <= 8; ++cores) {
        double w = m.run(p, {cores, 1}).sensorWatts;
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(Machine, SmtEnableAddsPower)
{
    Machine m(isa);
    // Saturated workload: same dynamic activity at SMT-1/2/4, so
    // the difference is the SMT-enable effect.
    Program p = loopOf("subf", 1024, 0);
    double w1 = m.run(p, {8, 1}).sensorWatts;
    double w2 = m.run(p, {8, 2}).sensorWatts;
    double w4 = m.run(p, {8, 4}).sensorWatts;
    EXPECT_GT(w2, w1 + 2.0);
    // Nearly independent of 2-way vs 4-way (Section 4.1).
    EXPECT_NEAR(w4, w2, 1.5);
}

TEST(Machine, CmpEffectIsConvex)
{
    // The hidden CMP term grows super-linearly: successive
    // increments must increase.
    Machine m(isa);
    GroundTruthParams gt = m.groundTruth();
    auto cmp = [&](int n) {
        return gt.cmpLin * n + gt.cmpCurve * std::pow(n, gt.cmpPow);
    };
    double prev_inc = 0.0;
    for (int n = 2; n <= 8; ++n) {
        double inc = cmp(n) - cmp(n - 1);
        EXPECT_GT(inc, prev_inc);
        prev_inc = inc;
    }
}

TEST(Machine, OracleBreakdownSumsToSensor)
{
    Machine m(isa);
    Program p = loopOf("add", 512, 0);
    RunResult r = m.run(p, {6, 2});
    double total = r.gtDynamicWatts + r.gtSmtWatts + r.gtCmpWatts +
                   r.gtUncoreWatts + r.gtIdleWatts;
    // Sensor adds only noise + quantization.
    EXPECT_NEAR(total, r.sensorWatts, 0.02 * total);
}

TEST(Machine, ChipCountersScaleWithCores)
{
    Machine m(isa);
    Program p = loopOf("add", 512, 0);
    RunResult r1 = m.run(p, {1, 1});
    RunResult r8 = m.run(p, {8, 1});
    EXPECT_NEAR(r8.chip.instrs, 8.0 * r1.chip.instrs,
                0.01 * r8.chip.instrs);
    EXPECT_NEAR(r8.coreIpc, r1.coreIpc, 0.02);
}

TEST(Machine, MemoryContentionSlowsManyCores)
{
    Machine m(isa);
    Program p = memLoop(HitLevel::Mem);
    RunResult r1 = m.run(p, {1, 1});
    RunResult r8 = m.run(p, {8, 1});
    // Per-core memory throughput drops when 8 cores share DRAM.
    EXPECT_LT(r8.coreIpc, 0.85 * r1.coreIpc);
}

TEST(Machine, NoContentionReRunForCacheResident)
{
    Machine m(isa);
    Program p = memLoop(HitLevel::L2);
    RunResult r1 = m.run(p, {1, 1});
    RunResult r8 = m.run(p, {8, 1});
    EXPECT_NEAR(r8.coreIpc, r1.coreIpc, 0.02 * r1.coreIpc);
}

TEST(Machine, RatesArePerSecond)
{
    Machine m(isa);
    Program p = loopOf("add", 1024, 0);
    RunResult r = m.run(p, {1, 1});
    // IPC 3.5 at 3 GHz: ~10.5e9 instructions/s.
    EXPECT_NEAR(r.rate(r.chip.instrs), 3.5 * 3e9,
                0.15e9 * 3.5);
}

TEST(Machine, MemLevelCountersExclusive)
{
    Machine m(isa);
    for (HitLevel lvl : {HitLevel::L1, HitLevel::L2, HitLevel::L3,
                         HitLevel::Mem}) {
        Program p = memLoop(lvl);
        RunResult r = m.run(p, {1, 1});
        double tot = r.chip.l1Hits + r.chip.l2Hits +
                     r.chip.l3Hits + r.chip.memAcc;
        double at[4] = {r.chip.l1Hits, r.chip.l2Hits,
                        r.chip.l3Hits, r.chip.memAcc};
        EXPECT_GT(at[static_cast<int>(lvl)] / tot, 0.98)
            << "level " << static_cast<int>(lvl);
    }
}

TEST(MachineDeath, WrongIsaFatal)
{
    Machine m(isa);
    Isa other = Isa::fromText("instr nop type=int\n");
    Program p;
    p.isa = &other;
    p.name = "alien";
    p.body.push_back({0, 0, -1, 1.0f, 1.0f});
    p.body.push_back({0, 0, -1, 1.0f, 1.0f});
    EXPECT_EXIT(m.run(p, {1, 1}), testing::ExitedWithCode(1),
                "different ISA");
}

TEST(MachineDeath, BadConfigFatal)
{
    Machine m(isa);
    Program p = loopOf("add", 64, 0);
    EXPECT_EXIT(m.run(p, {9, 1}), testing::ExitedWithCode(1),
                "bad core count");
    EXPECT_EXIT(m.run(p, {4, 3}), testing::ExitedWithCode(1),
                "bad SMT mode");
}

// Property sweep: sensor power is finite, positive and above idle
// for every configuration.
class ConfigSweep : public testing::TestWithParam<int>
{
};

TEST_P(ConfigSweep, SensorSaneEverywhere)
{
    auto cfgs = ChipConfig::all();
    ChipConfig cfg = cfgs[static_cast<size_t>(GetParam())];
    Machine m(isa);
    Program p = loopOf("lbz", 256, 2, 0);
    UarchDef u = builtinP7Uarch();
    AnalyticalCacheModel cm(u);
    p.streams.push_back(cm.makeStream(HitLevel::L1, 0).stream);

    RunResult r = m.run(p, cfg);
    EXPECT_TRUE(std::isfinite(r.sensorWatts));
    EXPECT_GT(r.sensorWatts, m.idleWatts(cfg));
    EXPECT_GT(r.coreIpc, 0.0);
    EXPECT_GT(r.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All24, ConfigSweep,
                         testing::Range(0, 24));
