/**
 * @file
 * Tests for the observability subsystem (src/obs/): the trace
 * recorder (well-formed Chrome trace JSON, B/E pairing, per-thread
 * timestamp monotonicity, drop-oldest overflow, zero footprint when
 * disabled), the metrics registry (counter/gauge/histogram
 * semantics, deterministic name-sorted JSON), the fleet telemetry
 * file grammar round-trip, and the load-bearing end-to-end
 * guarantee: a traced campaign run produces byte-identical exports
 * to an untraced one.
 *
 * obs state is process-global (rings and the registry live for the
 * process); every test starts from obs::traceReset() /
 * obs::metricsReset() so ordering cannot leak between tests.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/export.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

using namespace mprobe;

namespace
{

/** Fresh per-test cache directory. */
std::string
freshCacheDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "mprobe-obs-" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Tiny spec measuring a handful of random workloads. */
CampaignSpec
tinySpec()
{
    CampaignSpec spec;
    spec.categories = {BenchCategory::Random};
    spec.suite.randomCount = 3;
    spec.suite.bodySize = 128;
    spec.bootstrap = false;
    spec.threads = 2;
    spec.configs = {{1, 1}, {2, 1}, {1, 2}};
    return spec;
}

/** One parsed trace event (enough of it for assertions). */
struct ParsedEvent
{
    std::string name;
    char phase = '?';
    long long ts = 0;
    int tid = 0;
    std::string args; ///< raw text inside "args": {...}, or empty
};

/** Pull one quoted/numeric field out of an event line. */
std::string
fieldAfter(const std::string &line, const std::string &key)
{
    size_t at = line.find(key);
    if (at == std::string::npos)
        return "";
    at += key.size();
    size_t end = at;
    while (end < line.size() && line[end] != ',' &&
           line[end] != '}' && line[end] != '"')
        ++end;
    return line.substr(at, end - at);
}

/**
 * Parse traceWriteJson output. The writer emits one event per
 * line, so a line scanner is enough — this also pins the output
 * format itself (one trailing comma or unquoted name and the test
 * fails to parse, which is the point).
 */
std::vector<ParsedEvent>
parseTrace(const std::string &json)
{
    std::vector<ParsedEvent> out;
    std::istringstream is(json);
    std::string line;
    while (std::getline(is, line)) {
        size_t name_at = line.find("{\"name\": \"");
        if (name_at == std::string::npos)
            continue;
        ParsedEvent e;
        name_at += 10;
        e.name = line.substr(name_at,
                             line.find('"', name_at) - name_at);
        std::string ph = fieldAfter(line, "\"ph\": \"");
        if (ph.size() != 1) {
            ADD_FAILURE() << "unparseable event line: " << line;
            continue;
        }
        e.phase = ph[0];
        e.ts = std::stoll(fieldAfter(line, "\"ts\": "));
        e.tid = std::stoi(fieldAfter(line, "\"tid\": "));
        size_t args_at = line.find("\"args\": {");
        if (args_at != std::string::npos) {
            size_t close = line.rfind('}');
            e.args = line.substr(args_at + 9,
                                 close - (args_at + 9));
        }
        out.push_back(e);
    }
    return out;
}

std::string
traceJson()
{
    std::ostringstream os;
    obs::traceWriteJson(os);
    return os.str();
}

long long
droppedFrom(const std::string &json)
{
    std::string v = fieldAfter(json, "\"dropped_events\": ");
    return v.empty() ? -1 : std::stoll(v);
}

} // namespace

// ---------------------------------------------------------------
// Trace recorder

TEST(Trace, DisabledRecordsNothing)
{
    obs::traceReset();
    ASSERT_FALSE(obs::traceEnabled());
    {
        obs::TraceSpan span("should-not-appear");
        span.note("x", 1.0);
    }
    obs::traceInstant("also-not", "k", 2.0);
    std::string json = traceJson();
    EXPECT_TRUE(parseTrace(json).empty()) << json;
    EXPECT_EQ(droppedFrom(json), 0);
    EXPECT_FALSE(obs::traceEverEnabled());
}

TEST(Trace, SpansPairAndTimestampsAreMonotonePerThread)
{
    obs::traceReset();
    obs::traceEnable();
    {
        obs::TraceSpan outer("outer");
        outer.note("jobs", 9);
        {
            obs::TraceSpan inner("inner");
            obs::traceInstant("tick", "i", 1.0);
        }
    }
    obs::traceDisable();
    EXPECT_TRUE(obs::traceEverEnabled());

    std::string json = traceJson();
    // Perfetto/chrome://tracing requirements: top-level object with
    // a traceEvents array, every event carrying name/ph/ts/pid/tid.
    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);

    std::vector<ParsedEvent> evs = parseTrace(json);
    ASSERT_EQ(evs.size(), 5u) << json;

    // Every B has a matching E per (tid, name), never negative
    // depth; instants don't affect nesting.
    std::map<int, std::vector<std::string>> open;
    std::map<int, long long> last_ts;
    for (const ParsedEvent &e : evs) {
        if (last_ts.count(e.tid))
            EXPECT_GE(e.ts, last_ts[e.tid]) << e.name;
        last_ts[e.tid] = e.ts;
        if (e.phase == 'B') {
            open[e.tid].push_back(e.name);
        } else if (e.phase == 'E') {
            ASSERT_FALSE(open[e.tid].empty()) << e.name;
            EXPECT_EQ(open[e.tid].back(), e.name);
            open[e.tid].pop_back();
        } else {
            EXPECT_EQ(e.phase, 'i') << e.name;
        }
    }
    for (const auto &kv : open)
        EXPECT_TRUE(kv.second.empty()) << kv.first;

    // note() annotations land on the end event.
    bool saw_note = false;
    for (const ParsedEvent &e : evs)
        if (e.name == "outer" && e.phase == 'E') {
            saw_note = true;
            EXPECT_NE(e.args.find("\"jobs\": 9"),
                      std::string::npos)
                << e.args;
        }
    EXPECT_TRUE(saw_note);
}

TEST(Trace, OverflowDropsOldestEvents)
{
    obs::traceReset();
    obs::traceEnable();
    const size_t extra = 100;
    for (size_t i = 0; i < obs::kTraceRingCapacity + extra; ++i)
        obs::traceInstant("seq", "i", static_cast<double>(i));
    obs::traceDisable();

    EXPECT_EQ(obs::traceDroppedEvents(), extra);
    std::string json = traceJson();
    EXPECT_EQ(droppedFrom(json),
              static_cast<long long>(extra));

    std::vector<ParsedEvent> evs = parseTrace(json);
    ASSERT_EQ(evs.size(), obs::kTraceRingCapacity);
    // Drop-oldest: the first kept event is #extra, the last is the
    // final one recorded, and order is preserved in between.
    EXPECT_NE(evs.front().args.find(cat("\"i\": ", extra)),
              std::string::npos)
        << evs.front().args;
    EXPECT_NE(
        evs.back().args.find(
            cat("\"i\": ", obs::kTraceRingCapacity + extra - 1)),
        std::string::npos)
        << evs.back().args;
}

TEST(Trace, ResetClearsBufferedEvents)
{
    obs::traceReset();
    obs::traceEnable();
    obs::traceInstant("gone");
    obs::traceReset();
    EXPECT_FALSE(obs::traceEnabled());
    EXPECT_FALSE(obs::traceEverEnabled());
    EXPECT_TRUE(parseTrace(traceJson()).empty());
    EXPECT_EQ(obs::traceDroppedEvents(), 0u);
}

TEST(Trace, FlushWritesLoadableFile)
{
    obs::traceReset();
    obs::traceEnable();
    {
        obs::TraceSpan span("flushed");
    }
    obs::traceDisable();
    std::string dir = freshCacheDir("traceflush");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/out.trace.json";
    ASSERT_TRUE(obs::traceFlush(path));
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), traceJson());
    EXPECT_NE(ss.str().find("\"flushed\""), std::string::npos);
}

// ---------------------------------------------------------------
// Metrics registry

TEST(Metrics, CounterGaugeHistogramSemantics)
{
    obs::metricsReset();

    obs::Counter &c = obs::counter("test_events");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // Same-name lookup returns the same instance.
    EXPECT_EQ(&obs::counter("test_events"), &c);

    obs::Gauge &g = obs::gauge("test_level");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.max(1.0); // below: no change
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.max(7.0); // ratchets up
    EXPECT_DOUBLE_EQ(g.value(), 7.0);

    obs::Histogram &h =
        obs::histogram("test_seconds", {0.1, 1.0, 10.0});
    h.observe(0.05); // bucket 0 (<= 0.1)
    h.observe(0.5);  // bucket 1
    h.observe(0.5);  // bucket 1
    h.observe(99.0); // overflow bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.5 + 0.5 + 99.0);
    std::vector<uint64_t> counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // bounds + overflow
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[3], 1u);
    // Re-registration under the same name keeps the instance (and
    // its original bounds).
    EXPECT_EQ(&obs::histogram("test_seconds", {5.0}), &h);
    EXPECT_EQ(h.bucketBounds().size(), 3u);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations)
{
    obs::counter("reset_check").add(3);
    obs::gauge("reset_gauge").set(4.0);
    obs::histogram("reset_hist", {1.0}).observe(0.5);
    obs::metricsReset();
    EXPECT_EQ(obs::counter("reset_check").value(), 0u);
    EXPECT_DOUBLE_EQ(obs::gauge("reset_gauge").value(), 0.0);
    EXPECT_EQ(obs::histogram("reset_hist", {1.0}).count(), 0u);
    EXPECT_DOUBLE_EQ(obs::histogram("reset_hist", {1.0}).sum(),
                     0.0);
}

TEST(Metrics, JsonIsDeterministicAndNameSorted)
{
    obs::metricsReset();
    obs::counter("zebra").add(1);
    obs::counter("apple").add(2);
    obs::gauge("mid").set(3.5);
    obs::histogram("lat", {1.0, 2.0}).observe(1.5);

    std::ostringstream a, b;
    obs::metricsWriteJson(a);
    obs::metricsWriteJson(b);
    EXPECT_EQ(a.str(), b.str()); // structurally identical runs

    const std::string json = a.str();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    // Name-sorted within a section.
    EXPECT_LT(json.find("\"apple\""), json.find("\"zebra\""));
    EXPECT_NE(json.find("\"apple\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"mid\": 3.5"), std::string::npos);
    // Histogram shape: bounds, counts (bounds+1), count, sum.
    EXPECT_NE(json.find("\"bounds\": [1, 2]"), std::string::npos);
    EXPECT_NE(json.find("\"counts\": [0, 1, 0]"),
              std::string::npos);

    // The indent variant embeds into an enclosing document without
    // breaking line structure: every line after the first starts
    // with the indent.
    std::ostringstream ind;
    obs::metricsWriteJson(ind, "    ");
    std::istringstream lines(ind.str());
    std::string line;
    std::getline(lines, line); // "{" — caller-placed, un-indented
    while (std::getline(lines, line))
        EXPECT_EQ(line.rfind("    ", 0), 0u) << line;
}

// ---------------------------------------------------------------
// Fleet telemetry

TEST(Telemetry, TextRoundTrip)
{
    obs::WorkerTelemetry t;
    t.worker = "host:1234";
    t.jobs = 42;
    t.hits = 17;
    t.acquired = 40;
    t.stolen = 2;
    t.seconds = 12.5;
    t.jobsPerSecond = 3.36;
    t.hitRate = 0.405;

    std::string text = obs::telemetryToText(t);
    EXPECT_EQ(text.rfind("mprobe-telemetry v1", 0), 0u) << text;

    obs::WorkerTelemetry back;
    ASSERT_TRUE(obs::telemetryFromText(text, back));
    EXPECT_EQ(back.worker, t.worker);
    EXPECT_EQ(back.jobs, t.jobs);
    EXPECT_EQ(back.hits, t.hits);
    EXPECT_EQ(back.acquired, t.acquired);
    EXPECT_EQ(back.stolen, t.stolen);
    EXPECT_DOUBLE_EQ(back.seconds, t.seconds);
    EXPECT_DOUBLE_EQ(back.jobsPerSecond, t.jobsPerSecond);
    EXPECT_DOUBLE_EQ(back.hitRate, t.hitRate);
    EXPECT_DOUBLE_EQ(back.ageSeconds, -1.0); // reader fills this
}

TEST(Telemetry, RejectsMalformedAcceptsUnknownKeys)
{
    obs::WorkerTelemetry out;
    EXPECT_FALSE(obs::telemetryFromText("", out));
    EXPECT_FALSE(obs::telemetryFromText("not a header\n", out));
    // Header but no worker line.
    EXPECT_FALSE(obs::telemetryFromText(
        "mprobe-telemetry v1\njobs 3\n", out));
    // Unknown keys are forward-compatible noise.
    ASSERT_TRUE(obs::telemetryFromText(
        "mprobe-telemetry v1\nworker w1\njobs 3\n"
        "future_key whatever\n",
        out));
    EXPECT_EQ(out.worker, "w1");
    EXPECT_EQ(out.jobs, 3u);
}

TEST(Telemetry, PathSanitizesWorkerId)
{
    std::string p =
        obs::telemetryPath("/tmp/pool", "host:12/..weird id");
    EXPECT_EQ(p.rfind("/tmp/pool/", 0), 0u) << p;
    std::string base = p.substr(p.rfind('/') + 1);
    EXPECT_NE(base.find(".telemetry"), std::string::npos);
    EXPECT_EQ(base.find('/'), std::string::npos);
    EXPECT_EQ(base.find(':'), std::string::npos);
    EXPECT_EQ(base.find(' '), std::string::npos);
}

TEST(Telemetry, FleetReadSortsByWorkerAndFillsAge)
{
    std::string dir = freshCacheDir("fleet");

    obs::WorkerTelemetry b;
    b.worker = "bravo:2";
    b.jobs = 7;
    obs::WorkerTelemetry a;
    a.worker = "alpha:1";
    a.jobs = 5;
    ASSERT_TRUE(obs::writeWorkerTelemetry(dir, b));
    ASSERT_TRUE(obs::writeWorkerTelemetry(dir, a));

    // A malformed file degrades to absence, never an error.
    std::ofstream(dir + "/junk.telemetry") << "not telemetry\n";

    std::vector<obs::WorkerTelemetry> fleet =
        obs::readFleetTelemetry(dir);
    ASSERT_EQ(fleet.size(), 2u);
    EXPECT_EQ(fleet[0].worker, "alpha:1");
    EXPECT_EQ(fleet[1].worker, "bravo:2");
    EXPECT_EQ(fleet[0].jobs, 5u);
    EXPECT_GE(fleet[0].ageSeconds, 0.0);
    EXPECT_GE(fleet[1].ageSeconds, 0.0);

    // Republishing overwrites in place: still one entry per worker.
    a.jobs = 6;
    ASSERT_TRUE(obs::writeWorkerTelemetry(dir, a));
    fleet = obs::readFleetTelemetry(dir);
    ASSERT_EQ(fleet.size(), 2u);
    EXPECT_EQ(fleet[0].jobs, 6u);

    EXPECT_TRUE(obs::readFleetTelemetry(dir + "-missing").empty());
}

// ---------------------------------------------------------------
// End-to-end: traced campaigns

TEST(TracedCampaign, SpansPresentAndExportsByteIdentical)
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};

    // Reference run: tracing never enabled.
    obs::traceReset();
    obs::metricsReset();
    CampaignSpec spec = tinySpec();
    spec.cacheDir = freshCacheDir("untraced");
    Campaign untraced(machine, spec);
    CampaignResult ref = untraced.run(arch);
    std::ostringstream ref_csv, ref_json;
    exportSamplesCsv(ref_csv, ref.samples);
    exportSamplesJson(ref_json, ref.samples);

    // Cold traced run against a fresh cache.
    obs::traceReset();
    obs::metricsReset();
    spec.cacheDir = freshCacheDir("traced");
    obs::traceEnable();
    Campaign cold(machine, spec);
    CampaignResult r1 = cold.run(arch);
    obs::traceDisable();

    // The result path is untouched by tracing: exports are
    // byte-identical to the untraced reference.
    std::ostringstream csv1, json1;
    exportSamplesCsv(csv1, r1.samples);
    exportSamplesJson(json1, r1.samples);
    EXPECT_EQ(ref_csv.str(), csv1.str());
    EXPECT_EQ(ref_json.str(), json1.str());

    std::string cold_json = traceJson();
    // Phase spans and one campaign.job span per executed job.
    for (const char *name :
         {"campaign.generate", "campaign.expand",
          "campaign.measure", "campaign.job", "sim.decode",
          "sim.core", "sim.power"})
        EXPECT_NE(cold_json.find(cat("\"", name, "\"")),
                  std::string::npos)
            << name;
    size_t job_ends = 0;
    for (const ParsedEvent &e : parseTrace(cold_json))
        if (e.name == "campaign.job" && e.phase == 'E') {
            ++job_ends;
            // A cold run never hits the cache.
            EXPECT_NE(e.args.find("\"cached\": 0"),
                      std::string::npos)
                << e.args;
        }
    EXPECT_EQ(job_ends, r1.samples.size());

    // Cold-run counters landed in the registry.
    EXPECT_EQ(obs::counter("cache_misses").value(),
              r1.samples.size());
    EXPECT_EQ(obs::counter("cache_hits").value(), 0u);

    // Warm traced run: every job is a cache hit and the spans say
    // so.
    obs::traceReset();
    obs::metricsReset();
    obs::traceEnable();
    Campaign warm(machine, spec);
    CampaignResult r2 = warm.run(arch);
    obs::traceDisable();
    EXPECT_EQ(r2.cacheHits, r2.samples.size());
    size_t warm_ends = 0;
    for (const ParsedEvent &e : parseTrace(traceJson()))
        if (e.name == "campaign.job" && e.phase == 'E') {
            ++warm_ends;
            EXPECT_NE(e.args.find("\"cached\": 1"),
                      std::string::npos)
                << e.args;
        }
    EXPECT_EQ(warm_ends, r2.samples.size());
    EXPECT_EQ(obs::counter("cache_hits").value(),
              r2.samples.size());

    // Leave the global recorder clean for any later test.
    obs::traceReset();
    obs::metricsReset();
}
