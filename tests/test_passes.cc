/**
 * @file
 * Tests for the synthesizer passes.
 */

#include <gtest/gtest.h>

#include <map>

#include "microprobe/arch.hh"
#include "microprobe/passes.hh"

using namespace mprobe;

namespace
{

Architecture
arch()
{
    return Architecture::get("POWER7");
}

Program
skeleton(const Architecture &a, size_t n = 256)
{
    Program p;
    Rng rng(1);
    SkeletonPass sp(n);
    sp.apply(p, a, rng);
    return p;
}

} // namespace

TEST(SkeletonPass, BuildsEndlessLoop)
{
    auto a = arch();
    Program p = skeleton(a, 128);
    ASSERT_EQ(p.body.size(), 128u);
    const InstrDef &last = a.isa().at(p.body.back().op);
    EXPECT_TRUE(last.isBranch());
    EXPECT_EQ(p.body.back().takenRate, 1.0f);
    for (size_t i = 0; i + 1 < p.body.size(); ++i)
        EXPECT_FALSE(a.isa().at(p.body[i].op).isBranch());
}

TEST(SkeletonPassDeath, TinyBodyFatal)
{
    EXPECT_EXIT(SkeletonPass sp(1), testing::ExitedWithCode(1),
                "at least 2");
}

TEST(InstructionMixPass, FillsAllSlots)
{
    auto a = arch();
    Program p = skeleton(a);
    auto loads = a.isa().loads();
    InstructionMixPass mix(loads);
    Rng rng(2);
    mix.apply(p, a, rng);
    for (size_t i = 0; i + 1 < p.body.size(); ++i)
        EXPECT_TRUE(a.isa().at(p.body[i].op).isLoad());
}

TEST(InstructionMixPass, WeightsRespected)
{
    auto a = arch();
    Program p = skeleton(a, 4096);
    std::vector<Isa::OpIndex> cands = {a.isa().find("add"),
                                       a.isa().find("subf")};
    InstructionMixPass mix(cands, {3.0, 1.0});
    Rng rng(3);
    mix.apply(p, a, rng);
    size_t adds = p.countIf([&](const InstrDef &d) {
        return d.name == "add";
    });
    double share = static_cast<double>(adds) /
                   static_cast<double>(p.body.size() - 1);
    EXPECT_NEAR(share, 0.75, 0.04);
}

TEST(InstructionMixPassDeath, EmptyCandidatesFatal)
{
    EXPECT_EXIT(InstructionMixPass mix({}),
                testing::ExitedWithCode(1), "empty candidate");
}

TEST(InstructionMixPassDeath, WeightArityFatal)
{
    EXPECT_EXIT(InstructionMixPass mix({0, 1}, {1.0}),
                testing::ExitedWithCode(1), "weights");
}

TEST(SequencePass, ReplicatesExactSequence)
{
    auto a = arch();
    Program p = skeleton(a, 128);
    std::vector<Isa::OpIndex> seq = {a.isa().find("mullw"),
                                     a.isa().find("xvmaddadp"),
                                     a.isa().find("lxvd2x")};
    SequencePass sp(seq);
    Rng rng(4);
    sp.apply(p, a, rng);
    for (size_t i = 0; i + 1 < p.body.size(); ++i)
        EXPECT_EQ(p.body[i].op, seq[i % 3]);
}

TEST(MemoryModelPass, AssignsStreamsToMemorySlots)
{
    auto a = arch();
    Program p = skeleton(a, 512);
    InstructionMixPass mix(a.isa().loads());
    Rng rng(5);
    mix.apply(p, a, rng);
    MemoryModelPass mm(MemDistribution{0.5, 0.5, 0, 0});
    mm.apply(p, a, rng);
    EXPECT_EQ(p.streams.size(), 2u);
    for (size_t i = 0; i + 1 < p.body.size(); ++i)
        EXPECT_GE(p.body[i].stream, 0);
}

TEST(MemoryModelPass, ApportionmentMatchesDistribution)
{
    auto a = arch();
    Program p = skeleton(a, 4096);
    InstructionMixPass mix(a.isa().loads());
    Rng rng(6);
    mix.apply(p, a, rng);
    MemoryModelPass mm(MemDistribution{0.25, 0.25, 0.25, 0.25});
    mm.apply(p, a, rng);
    ASSERT_EQ(p.streams.size(), 4u);
    std::map<int, int> counts;
    for (const auto &pi : p.body)
        if (pi.stream >= 0)
            ++counts[pi.stream];
    double total = 0;
    for (auto &[s, c] : counts)
        total += c;
    for (auto &[s, c] : counts)
        EXPECT_NEAR(c / total, 0.25, 0.01);
}

TEST(MemoryModelPass, InterleavesLevels)
{
    // Assignments must alternate rather than cluster: inspect a
    // window for both streams.
    auto a = arch();
    Program p = skeleton(a, 512);
    InstructionMixPass mix(a.isa().loads());
    Rng rng(7);
    mix.apply(p, a, rng);
    MemoryModelPass mm(MemDistribution{0.5, 0.5, 0, 0});
    mm.apply(p, a, rng);
    std::set<int> seen;
    for (size_t i = 0; i < 8; ++i)
        seen.insert(p.body[i].stream);
    EXPECT_EQ(seen.size(), 2u);
}

TEST(MemoryModelPass, NonMemorySlotsUntouched)
{
    auto a = arch();
    Program p = skeleton(a, 256);
    InstructionMixPass mix({a.isa().find("add")});
    Rng rng(8);
    mix.apply(p, a, rng);
    MemoryModelPass mm(MemDistribution{1, 0, 0, 0});
    mm.apply(p, a, rng);
    EXPECT_TRUE(p.streams.empty());
    for (const auto &pi : p.body)
        EXPECT_EQ(pi.stream, -1);
}

TEST(MemoryModelPassDeath, BadDistributionFatal)
{
    EXPECT_EXIT(MemoryModelPass mm(MemDistribution{0.5, 0, 0, 0}),
                testing::ExitedWithCode(1), "sums to");
}

TEST(RegisterInitPass, TogglesByPattern)
{
    auto a = arch();
    Program p = skeleton(a);
    Rng rng(9);
    RegisterInitPass(DataPattern::Zero).apply(p, a, rng);
    EXPECT_LT(p.body[0].toggle, 0.1f);
    RegisterInitPass(DataPattern::Random).apply(p, a, rng);
    EXPECT_FLOAT_EQ(p.body[0].toggle, 1.0f);
    RegisterInitPass(DataPattern::Alt01).apply(p, a, rng);
    EXPECT_NEAR(p.body[0].toggle, 0.55f, 0.01f);
}

TEST(ImmediateInitPass, OnlyTouchesImmediateForms)
{
    auto a = arch();
    Program p = skeleton(a, 64);
    std::vector<Isa::OpIndex> cands = {a.isa().find("add"),
                                       a.isa().find("addi")};
    InstructionMixPass mix(cands);
    Rng rng(10);
    mix.apply(p, a, rng);
    RegisterInitPass(DataPattern::Random).apply(p, a, rng);
    ImmediateInitPass(DataPattern::Zero).apply(p, a, rng);
    for (size_t i = 0; i + 1 < p.body.size(); ++i) {
        const InstrDef &d = a.isa().at(p.body[i].op);
        if (d.hasImm)
            EXPECT_LT(p.body[i].toggle, 0.6f);
        else
            EXPECT_FLOAT_EQ(p.body[i].toggle, 1.0f);
    }
}

TEST(DependencyDistancePass, FixedAndRandomModes)
{
    auto a = arch();
    Program p = skeleton(a, 512);
    InstructionMixPass mix({a.isa().find("add")});
    Rng rng(11);
    mix.apply(p, a, rng);

    auto fixed = DependencyDistancePass::fixed(7);
    fixed.apply(p, a, rng);
    for (size_t i = 0; i + 1 < p.body.size(); ++i)
        EXPECT_EQ(p.body[i].depDist, 7);

    auto rnd = DependencyDistancePass::random(2, 9);
    rnd.apply(p, a, rng);
    bool varied = false;
    for (size_t i = 0; i + 1 < p.body.size(); ++i) {
        EXPECT_GE(p.body[i].depDist, 2);
        EXPECT_LE(p.body[i].depDist, 9);
        varied |= p.body[i].depDist != p.body[0].depDist;
    }
    EXPECT_TRUE(varied);
}

TEST(DependencyDistancePass, BranchesLeftIndependent)
{
    auto a = arch();
    Program p = skeleton(a, 64);
    Rng rng(12);
    auto chain = DependencyDistancePass::chain();
    chain.apply(p, a, rng);
    EXPECT_EQ(p.body.back().depDist, 0);
}

TEST(DependencyDistancePassDeath, NegativeRangeFatal)
{
    EXPECT_EXIT(DependencyDistancePass::random(5, 2),
                testing::ExitedWithCode(1), "bad range");
}

TEST(BranchModelPass, InsertsPeriodicBranches)
{
    auto a = arch();
    Program p = skeleton(a, 256);
    InstructionMixPass mix({a.isa().find("add")});
    Rng rng(13);
    mix.apply(p, a, rng);
    BranchModelPass bp(8, 0.5f);
    bp.apply(p, a, rng);
    size_t branches = 0;
    for (size_t i = 0; i + 1 < p.body.size(); ++i) {
        const InstrDef &d = a.isa().at(p.body[i].op);
        if (d.isBranch()) {
            ++branches;
            EXPECT_FLOAT_EQ(p.body[i].takenRate, 0.5f);
        }
    }
    EXPECT_NEAR(branches, 256 / 8, 2);
}

TEST(BranchModelPassDeath, BadRateFatal)
{
    EXPECT_EXIT(BranchModelPass bp(8, 1.5f),
                testing::ExitedWithCode(1), "taken rate");
}

TEST(Arch, RegistryAndQueries)
{
    auto a = arch();
    EXPECT_EQ(a.isa().name(), "POWER7-like");
    EXPECT_EQ(a.uarch().name(), "POWER7-like");
    // stressing() consults bootstrapped properties.
    a.uarchMut().propsMut("lxvw4x").units = {"LSU", "L1"};
    auto vsu_loads = a.stressing(a.isa().loads(), "VSU");
    EXPECT_TRUE(vsu_loads.empty());
    auto lsu_loads = a.stressing(a.isa().loads(), "LSU");
    ASSERT_EQ(lsu_loads.size(), 1u);
    EXPECT_EQ(a.isa().at(lsu_loads[0]).name, "lxvw4x");
}

TEST(ArchDeath, UnknownArchitectureFatal)
{
    EXPECT_EXIT(Architecture::get("Alpha21264"),
                testing::ExitedWithCode(1), "unknown architecture");
}
