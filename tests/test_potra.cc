/**
 * @file
 * Tests for the POTRA-role trace collection and analysis module:
 * phased-workload tracing, smoothing, phase segmentation and
 * sparkline rendering.
 */

#include <gtest/gtest.h>

#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "potra/analysis.hh"
#include "power/sample.hh"
#include "potra/trace.hh"

using namespace mprobe;

namespace
{

struct Fixture
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};
    Program hot;
    Program cold;
    Program memory;

    Fixture()
    {
        hot = make({arch.isa().find("xvmaddadp"),
                    arch.isa().find("mulldo")},
                   0, nullptr, "hot");
        cold = make({arch.isa().find("addic")}, 1, nullptr, "cold");
        MemDistribution mem{0, 0, 0, 1};
        memory = make(arch.isa().loads(), 6, &mem, "memory");
    }

    Program
    make(std::vector<Isa::OpIndex> cands, int dep,
         const MemDistribution *mem, const std::string &name)
    {
        Synthesizer s(arch, 0xf00d);
        s.addPass<SkeletonPass>(512);
        s.addPass<InstructionMixPass>(std::move(cands));
        if (mem)
            s.addPass<MemoryModelPass>(*mem);
        s.add(std::make_unique<DependencyDistancePass>(
            dep == 0 ? DependencyDistancePass::none()
                     : DependencyDistancePass::fixed(dep)));
        return s.synthesize(name);
    }

    PhasedWorkload
    threePhase()
    {
        PhasedWorkload w;
        w.name = "three-phase";
        w.phases = {{&hot, 20.0}, {&memory, 30.0}, {&cold, 25.0}};
        return w;
    }
};

} // namespace

TEST(Potra, TraceHasOneSamplePerMillisecond)
{
    Fixture f;
    PhasedWorkload w = f.threePhase();
    PowerTrace t = tracePhased(f.machine, w, {4, 1});
    EXPECT_EQ(t.samples.size(), 75u);
    EXPECT_DOUBLE_EQ(t.sampleMs, 1.0);
    EXPECT_EQ(t.workload, "three-phase");
    // Timestamps are monotone with the sampling period.
    for (size_t i = 1; i < t.samples.size(); ++i)
        EXPECT_NEAR(t.samples[i].timeMs -
                        t.samples[i - 1].timeMs,
                    1.0, 1e-9);
}

TEST(Potra, SamplesCarryNoiseButTrackPhasePower)
{
    Fixture f;
    PhasedWorkload w;
    w.name = "flat";
    w.phases = {{&f.hot, 50.0}};
    PowerTrace t = tracePhased(f.machine, w, {4, 1});
    RunResult r = f.machine.run(f.hot, {4, 1});
    bool varied = false;
    for (const auto &s : t.samples) {
        EXPECT_NEAR(s.watts, r.sensorWatts,
                    0.02 * r.sensorWatts);
        varied |= s.watts != t.samples[0].watts;
    }
    EXPECT_TRUE(varied); // per-sample sensor noise
}

TEST(Potra, PhasePowersDiffer)
{
    Fixture f;
    PowerTrace t =
        tracePhased(f.machine, f.threePhase(), {4, 1});
    // Hot phase (first 20 samples) draws more than cold (last 25).
    double hot = 0, cold = 0;
    for (size_t i = 0; i < 20; ++i)
        hot += t.samples[i].watts;
    for (size_t i = 50; i < 75; ++i)
        cold += t.samples[i].watts;
    EXPECT_GT(hot / 20, cold / 25 + 5.0);
}

TEST(Potra, SmoothingReducesVariance)
{
    Fixture f;
    PowerTrace t =
        tracePhased(f.machine, f.threePhase(), {8, 2});
    auto sm = smoothPower(t, 5);
    ASSERT_EQ(sm.size(), t.samples.size());
    // Variance of the smoothed series within the first phase is
    // below the raw variance.
    auto var_of = [&](auto get) {
        double m = 0;
        for (size_t i = 2; i < 18; ++i)
            m += get(i);
        m /= 16;
        double v = 0;
        for (size_t i = 2; i < 18; ++i)
            v += (get(i) - m) * (get(i) - m);
        return v / 16;
    };
    double raw = var_of(
        [&](size_t i) { return t.samples[i].watts; });
    double smooth = var_of([&](size_t i) { return sm[i]; });
    EXPECT_LE(smooth, raw + 1e-12);
}

TEST(Potra, SegmentationRecoversThreePhases)
{
    Fixture f;
    PowerTrace t =
        tracePhased(f.machine, f.threePhase(), {4, 1});
    auto phases = segmentPhases(t);
    ASSERT_EQ(phases.size(), 3u);
    // Boundaries near 20 ms and 50 ms.
    EXPECT_NEAR(phases[0].lastSample, 19, 4);
    EXPECT_NEAR(phases[1].lastSample, 49, 4);
    EXPECT_EQ(phases[2].lastSample, 74u);
    // Phase means ordered: hot > memory-phase?? power of memory
    // phase is low (stalled), cold chain is low too; check hot is
    // the maximum.
    EXPECT_GT(phases[0].meanWatts, phases[1].meanWatts);
    EXPECT_GT(phases[0].meanWatts, phases[2].meanWatts);
    // Durations recover the script.
    EXPECT_NEAR(phases[0].durationMs(t), 20.0, 4.0);
    EXPECT_NEAR(phases[1].durationMs(t), 30.0, 6.0);
}

TEST(Potra, SegmentationSinglePhaseForFlatTrace)
{
    Fixture f;
    PhasedWorkload w;
    w.name = "flat";
    w.phases = {{&f.hot, 40.0}};
    PowerTrace t = tracePhased(f.machine, w, {4, 1});
    auto phases = segmentPhases(t);
    EXPECT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].firstSample, 0u);
    EXPECT_EQ(phases[0].lastSample, 39u);
}

TEST(Potra, PhaseMeanRatesExposedForModeling)
{
    // The abstract's "phase-specific power projection": detected
    // phases carry mean activity rates a power model can consume.
    Fixture f;
    PowerTrace t =
        tracePhased(f.machine, f.threePhase(), {4, 1});
    auto phases = segmentPhases(t);
    ASSERT_GE(phases.size(), 2u);
    for (const auto &ph : phases)
        ASSERT_EQ(ph.meanRates.size(),
                  dynamicFeatureNames().size());
    // The memory phase shows MEM activity; the hot phase does not.
    EXPECT_GT(phases[1].meanRates[6], 1e-3);
    EXPECT_LT(phases[0].meanRates[6], 1e-3);
}

TEST(Potra, SparklineSpansLevels)
{
    std::vector<double> v;
    for (int i = 0; i < 128; ++i)
        v.push_back(i % 2 ? 10.0 : i / 16.0);
    std::string s = sparkline(v, 32);
    EXPECT_EQ(s.size(), 32u);
    // Both low and high glyphs appear.
    EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Potra, SparklineEmptyAndTiny)
{
    EXPECT_EQ(sparkline({}, 10), "");
    EXPECT_EQ(sparkline({1.0}, 10).size(), 1u);
}

TEST(PotraDeath, EmptyWorkloadFatal)
{
    Fixture f;
    PhasedWorkload w;
    w.name = "empty";
    EXPECT_EXIT(tracePhased(f.machine, w, {1, 1}),
                testing::ExitedWithCode(1), "no phases");
}

TEST(PotraDeath, BadSamplePeriodFatal)
{
    Fixture f;
    PhasedWorkload w = f.threePhase();
    EXPECT_EXIT(tracePhased(f.machine, w, {1, 1}, 0.0),
                testing::ExitedWithCode(1), "sampling period");
}

TEST(Potra, TotalMs)
{
    Fixture f;
    EXPECT_DOUBLE_EQ(f.threePhase().totalMs(), 75.0);
}
