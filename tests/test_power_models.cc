/**
 * @file
 * Tests for the bottom-up and top-down power models on synthetic
 * sample sets with known structure (fast, no simulation), plus
 * small measured corpora.
 */

#include <gtest/gtest.h>

#include "power/bottomup.hh"
#include "util/stats.hh"
#include "power/topdown.hh"
#include "util/rng.hh"

using namespace mprobe;

namespace
{

/**
 * Synthetic ground truth mirroring the machine's structure:
 * P = sum(w*rates) + smt*cores*smtOn + cmp*cores + base (+ noise).
 */
struct SynthWorld
{
    std::vector<double> w = {3.0, 2.5, 2.0, 0.5, 1.5, 2.5, 6.0};
    double smt = 0.6;
    double cmp = 1.2;
    double base = 45.0;
    Rng rng{99};

    Sample
    sample(const ChipConfig &cfg, double act, double noise = 0.05)
    {
        Sample s;
        s.workload = "synth";
        s.config = cfg;
        s.rates.resize(7);
        double p = base + cmp * cfg.cores +
                   (cfg.smt > 1 ? smt * cfg.cores : 0.0);
        for (size_t i = 0; i < 7; ++i) {
            s.rates[i] = act * rng.uniform(0.0, 2.0) * cfg.cores;
            p += w[i] * s.rates[i];
        }
        s.powerWatts = p + rng.gaussian(0, noise);
        return s;
    }

    /** Compute-only sample (no L2/L3/MEM activity). */
    Sample
    computeSample(const ChipConfig &cfg, double act)
    {
        Sample s = sample(cfg, act);
        double p = s.powerWatts;
        for (size_t i = 4; i < 7; ++i) {
            p -= w[i] * s.rates[i];
            s.rates[i] = 0.0;
        }
        s.powerWatts = p;
        return s;
    }

    BottomUpTrainingSet
    trainingSet()
    {
        BottomUpTrainingSet t;
        t.idleWatts = 40.0;
        for (int i = 0; i < 40; ++i)
            t.microSmt1.push_back(
                computeSample({1, 1}, 0.2 + 0.1 * (i % 10)));
        for (int i = 0; i < 30; ++i)
            t.microSmt1.push_back(
                sample({1, 1}, 0.2 + 0.1 * (i % 10)));
        for (int i = 0; i < 20; ++i)
            t.microSmtOn.push_back(
                sample({1, i % 2 ? 2 : 4}, 0.3 + 0.1 * (i % 8)));
        for (int i = 0; i < 25; ++i)
            t.randomSmt1.push_back(sample({1, 1}, 0.5));
        for (const auto &cfg : ChipConfig::all())
            for (int i = 0; i < 4; ++i)
                t.randomAllConfigs.push_back(
                    sample(cfg, 0.2 + 0.2 * i));
        return t;
    }
};

} // namespace

TEST(BottomUp, RecoversPlantedStructure)
{
    SynthWorld w;
    BottomUpModel m = BottomUpModel::train(w.trainingSet());
    // Dynamic weights close to planted.
    for (size_t i = 0; i < 7; ++i)
        EXPECT_NEAR(m.weights()[i], w.w[i], 0.35) << "weight " << i;
    EXPECT_NEAR(m.smtEffect(), w.smt, 0.25);
    EXPECT_NEAR(m.cmpEffect(), w.cmp, 0.3);
    // uncore + WI together recover the base.
    EXPECT_NEAR(m.uncore() + m.workloadIndependent(), w.base, 1.5);
}

TEST(BottomUp, PredictsHeldOutSamples)
{
    SynthWorld w;
    BottomUpModel m = BottomUpModel::train(w.trainingSet());
    std::vector<double> pred, real;
    for (const auto &cfg : ChipConfig::all()) {
        Sample s = w.sample(cfg, 0.7);
        pred.push_back(m.predict(s));
        real.push_back(s.powerWatts);
    }
    EXPECT_LT(paae(pred, real), 1.5);
}

TEST(BottomUp, BreakdownSumsToPrediction)
{
    SynthWorld w;
    BottomUpModel m = BottomUpModel::train(w.trainingSet());
    Sample s = w.sample({6, 4}, 0.5);
    PowerBreakdown b = m.breakdown(s);
    EXPECT_NEAR(b.total(), m.predict(s), 1e-9);
    EXPECT_GT(b.dynamic, 0.0);
    EXPECT_GT(b.smtEffect, 0.0);
    EXPECT_GT(b.cmpEffect, 0.0);
    EXPECT_DOUBLE_EQ(b.workloadIndependent, 40.0);
}

TEST(BottomUp, SmtComponentZeroWhenDisabled)
{
    SynthWorld w;
    BottomUpModel m = BottomUpModel::train(w.trainingSet());
    Sample s = w.sample({8, 1}, 0.5);
    EXPECT_DOUBLE_EQ(m.breakdown(s).smtEffect, 0.0);
}

TEST(BottomUp, WeightsNonNegative)
{
    SynthWorld w;
    BottomUpModel m = BottomUpModel::train(w.trainingSet());
    for (double c : m.weights())
        EXPECT_GE(c, 0.0);
}

TEST(BottomUpDeath, IncompleteTrainingSetFatal)
{
    BottomUpTrainingSet t;
    EXPECT_EXIT(BottomUpModel::train(t),
                testing::ExitedWithCode(1), "incomplete training");
}

TEST(TopDown, FitsSameWorld)
{
    SynthWorld w;
    std::vector<Sample> train;
    for (const auto &cfg : ChipConfig::all())
        for (int i = 0; i < 6; ++i)
            train.push_back(w.sample(cfg, 0.2 + 0.15 * i));
    TopDownModel m = TopDownModel::train(train, "TD_Test");
    EXPECT_EQ(m.name(), "TD_Test");
    std::vector<double> pred, real;
    for (const auto &cfg : ChipConfig::all()) {
        Sample s = w.sample(cfg, 0.9);
        pred.push_back(m.predict(s));
        real.push_back(s.powerWatts);
    }
    EXPECT_LT(paae(pred, real), 2.0);
}

TEST(TopDown, StepwiseSelectsInformativePredictors)
{
    SynthWorld w;
    std::vector<Sample> train;
    for (const auto &cfg : ChipConfig::all())
        for (int i = 0; i < 6; ++i)
            train.push_back(w.sample(cfg, 0.2 + 0.15 * i));
    TopDownModel m = TopDownModel::train(train, "TD_Sel");
    // MEM (weight 6) is the strongest rate; it must be selected.
    bool has_mem = false;
    for (const auto &n : m.selected())
        has_mem |= n == "MEM";
    EXPECT_TRUE(has_mem);
    EXPECT_GE(m.selected().size(), 5u);
}

TEST(TopDown, AblationWithoutCmpSmtVariablesIsWorse)
{
    // The paper's point: models without the #cores/SMT inputs show
    // large errors across configurations.
    SynthWorld w;
    std::vector<Sample> train;
    for (const auto &cfg : ChipConfig::all())
        for (int i = 0; i < 6; ++i)
            train.push_back(w.sample(cfg, 0.2 + 0.15 * i));
    TopDownOptions no_vars;
    no_vars.useCores = false;
    no_vars.useSmt = false;
    TopDownModel base = TopDownModel::train(train, "TD_Full");
    TopDownModel ablated =
        TopDownModel::train(train, "TD_NoVars", no_vars);

    std::vector<double> pb, pa, real;
    for (const auto &cfg : ChipConfig::all()) {
        // Low-activity probes expose the static terms.
        Sample s = w.sample(cfg, 0.05);
        pb.push_back(base.predict(s));
        pa.push_back(ablated.predict(s));
        real.push_back(s.powerWatts);
    }
    EXPECT_LT(paae(pb, real), paae(pa, real));
}

TEST(TopDownDeath, TooFewSamplesFatal)
{
    std::vector<Sample> tiny(3);
    EXPECT_EXIT(TopDownModel::train(tiny, "x"),
                testing::ExitedWithCode(1), "too few");
}

TEST(Sample, MakeSampleExtractsRates)
{
    RunResult r;
    r.config = {2, 4};
    r.seconds = 0.5;
    r.chip.fxuOps = 1e9;
    r.chip.vsuOps = 2e9;
    r.chip.lsuOps = 0.5e9;
    r.chip.l1Hits = 0.4e9;
    r.chip.l2Hits = 0.3e9;
    r.chip.l3Hits = 0.2e9;
    r.chip.memAcc = 0.1e9;
    r.sensorWatts = 77.5;
    Sample s = makeSample("w", r);
    ASSERT_EQ(s.rates.size(), 7u);
    EXPECT_DOUBLE_EQ(s.rates[0], 2.0);  // 1e9 / 0.5s in Gev/s
    EXPECT_DOUBLE_EQ(s.rates[1], 4.0);
    EXPECT_DOUBLE_EQ(s.rates[6], 0.2);
    EXPECT_DOUBLE_EQ(s.powerWatts, 77.5);
    EXPECT_DOUBLE_EQ(s.coresVar(), 2.0);
    EXPECT_DOUBLE_EQ(s.smtVar(), 1.0);
}

TEST(Sample, SmtVarZeroForSt)
{
    Sample s;
    s.config = {4, 1};
    EXPECT_DOUBLE_EQ(s.smtVar(), 0.0);
}
