/**
 * @file
 * Tests for the drop-directory campaign service: spec ingestion,
 * multi-campaign multiplexing over one pool, streamed status and
 * exports, async submission while workers run, and survival of
 * malformed dropped specs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "campaign/campaign.hh"
#include "campaign/export.hh"
#include "service/service.hh"
#include "util/logging.hh"

using namespace mprobe;

namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "mprobe-service-" + tag;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Spec-file text of a tiny random-workload campaign. */
std::string
tinySpecText(int random_count)
{
    std::ostringstream os;
    os << "categories = random\n"
       << "random_count = " << random_count << "\n"
       << "body_size = 128\n"
       << "bootstrap = 0\n"
       << "configs = 1-1,2-1\n";
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    ASSERT_TRUE(f.is_open()) << path;
    f << content;
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.is_open()) << path;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** Fast-cadence options over fresh directories. */
ServiceOptions
testOptions(const std::string &tag)
{
    ServiceOptions opts;
    opts.dropDir = freshDir(tag + "-drop");
    opts.cacheDir = freshDir(tag + "-cache");
    opts.resultsDir = freshDir(tag + "-results");
    opts.threads = 2;
    opts.pollSeconds = 0.05;
    opts.statusSeconds = 0.05;
    opts.exitWhenIdle = true;
    return opts;
}

/** The reference export: the same spec text run standalone. */
std::string
referenceCsv(const std::string &spec_text, const std::string &tag)
{
    std::string dir = freshDir(tag + "-ref");
    std::string path = dir + "/ref.spec";
    writeFile(path, spec_text);
    CampaignSpec spec = loadCampaignSpec(path);
    spec.cacheDir = dir + "/cache";
    Architecture arch = Architecture::get("POWER7");
    Machine machine(arch.isa(), arch.uarch().cacheGeometries(),
                    arch.uarch().clockGhz());
    Campaign campaign(machine, spec);
    CampaignResult res = campaign.run(arch);
    std::ostringstream os;
    exportSamplesCsv(os, res.samples);
    return os.str();
}

TEST(Service, CompletesDroppedCampaigns)
{
    ServiceOptions opts = testOptions("basic");
    writeFile(opts.dropDir + "/alpha.spec", tinySpecText(2));
    writeFile(opts.dropDir + "/beta.spec", tinySpecText(3));

    CampaignService service(opts);
    EXPECT_EQ(service.run(), 2u);

    for (const std::string name : {"alpha", "beta"}) {
        std::string base = opts.resultsDir + "/" + name;
        EXPECT_TRUE(fs::exists(base + "/samples.csv")) << name;
        EXPECT_TRUE(fs::exists(base + "/samples.json")) << name;
        EXPECT_TRUE(fs::exists(base + "/campaign.manifest"))
            << name;
        std::string status = readFile(base + "/status.json");
        EXPECT_NE(status.find("\"state\": \"complete\""),
                  std::string::npos)
            << status;
        EXPECT_NE(status.find(cat("\"campaign\": \"", name, "\"")),
                  std::string::npos)
            << status;
    }

    auto statuses = service.statuses();
    ASSERT_EQ(statuses.size(), 2u);
    for (const auto &s : statuses) {
        EXPECT_TRUE(s.complete) << s.name;
        EXPECT_EQ(s.doneJobs, s.totalJobs) << s.name;
    }
}

TEST(Service, ExportMatchesStandaloneRun)
{
    ServiceOptions opts = testOptions("match");
    std::string text = tinySpecText(3);
    writeFile(opts.dropDir + "/sweep.spec", text);

    CampaignService service(opts);
    ASSERT_EQ(service.run(), 1u);

    EXPECT_EQ(readFile(opts.resultsDir + "/sweep/samples.csv"),
              referenceCsv(text, "match"));
}

TEST(Service, SurvivesMalformedSpec)
{
    ServiceOptions opts = testOptions("malformed");
    writeFile(opts.dropDir + "/broken.spec",
              "categories = no-such-category\n");
    writeFile(opts.dropDir + "/good.spec", tinySpecText(2));

    CampaignService service(opts);
    // The broken spec is rejected with a warning; the good one
    // still completes and the process survives.
    EXPECT_EQ(service.run(), 1u);
    EXPECT_TRUE(
        fs::exists(opts.resultsDir + "/good/samples.csv"));
    EXPECT_FALSE(
        fs::exists(opts.resultsDir + "/broken/samples.csv"));
}

TEST(Service, IngestsSpecsWhileRunning)
{
    ServiceOptions opts = testOptions("async");
    opts.exitWhenIdle = false;

    CampaignService service(opts);
    std::thread runner([&]() { service.run(); });

    auto waitFor = [&](const std::string &path) {
        for (int i = 0; i < 1000; ++i) {
            if (fs::exists(path))
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        return false;
    };

    // Submit the first campaign only after the service is already
    // running, then a second after the first completed — true
    // async ingestion, not a pre-seeded directory.
    writeFile(opts.dropDir + "/first.spec", tinySpecText(2));
    EXPECT_TRUE(
        waitFor(opts.resultsDir + "/first/samples.csv"));
    writeFile(opts.dropDir + "/second.spec", tinySpecText(3));
    EXPECT_TRUE(
        waitFor(opts.resultsDir + "/second/samples.csv"));

    service.requestStop();
    runner.join();

    auto statuses = service.statuses();
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_TRUE(statuses[0].complete);
    EXPECT_TRUE(statuses[1].complete);
}

} // namespace
