/**
 * @file
 * Tests for the pass-driven synthesizer.
 */

#include <gtest/gtest.h>

#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"

using namespace mprobe;

namespace
{

Architecture
arch()
{
    return Architecture::get("POWER7");
}

} // namespace

TEST(Synthesizer, AppliesPassesInOrder)
{
    auto a = arch();
    Synthesizer s(a);
    s.addPass<SkeletonPass>(128);
    s.addPass<InstructionMixPass>(a.isa().loads());
    s.addPass<MemoryModelPass>(MemDistribution{1, 0, 0, 0});
    s.addPass<RegisterInitPass>(DataPattern::Random);
    EXPECT_EQ(s.passCount(), 4u);
    Program p = s.synthesize("x");
    EXPECT_EQ(p.name, "x");
    EXPECT_EQ(p.body.size(), 128u);
    EXPECT_FALSE(p.streams.empty());
}

TEST(Synthesizer, PassNamesReadable)
{
    auto a = arch();
    Synthesizer s(a);
    s.addPass<SkeletonPass>(4096);
    s.addPass<RegisterInitPass>(DataPattern::Alt01);
    auto names = s.passNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_NE(names[0].find("4096"), std::string::npos);
    EXPECT_EQ(names[1], "init-registers");
}

TEST(Synthesizer, RepeatedCallsDifferUnderRandomPasses)
{
    // Figure 2 lines 31-33: ten invocations produce ten different
    // micro-benchmarks under one policy.
    auto a = arch();
    Synthesizer s(a);
    s.addPass<SkeletonPass>(256);
    s.addPass<InstructionMixPass>(a.isa().loads());
    s.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 16)));
    Program p1 = s.synthesize();
    Program p2 = s.synthesize();
    bool differs = false;
    for (size_t i = 0; i < p1.body.size(); ++i)
        differs |= p1.body[i].op != p2.body[i].op ||
                   p1.body[i].depDist != p2.body[i].depDist;
    EXPECT_TRUE(differs);
}

TEST(Synthesizer, SameSeedSameOutput)
{
    auto a = arch();
    auto make = [&]() {
        Synthesizer s(a, 999);
        s.addPass<SkeletonPass>(256);
        s.addPass<InstructionMixPass>(a.isa().loads());
        s.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::random(1, 16)));
        return s.synthesize("same");
    };
    Program p1 = make();
    Program p2 = make();
    ASSERT_EQ(p1.body.size(), p2.body.size());
    for (size_t i = 0; i < p1.body.size(); ++i) {
        EXPECT_EQ(p1.body[i].op, p2.body[i].op);
        EXPECT_EQ(p1.body[i].depDist, p2.body[i].depDist);
    }
}

TEST(Synthesizer, AutoNamesCount)
{
    auto a = arch();
    Synthesizer s(a);
    s.addPass<SkeletonPass>(64);
    EXPECT_EQ(s.synthesize().name, "ubench-1");
    EXPECT_EQ(s.synthesize().name, "ubench-2");
}

TEST(SynthesizerDeath, NoPassesFatal)
{
    auto a = arch();
    Synthesizer s(a);
    EXPECT_EXIT(s.synthesize(), testing::ExitedWithCode(1),
                "no passes");
}

TEST(Synthesizer, Figure2PolicyEndToEnd)
{
    // The paper's Figure-2 script: 4K loop of VSU loads hitting
    // L1/L2/L3 equally, constant data, random dependencies.
    auto a = arch();
    // The VSU-stress query needs bootstrapped unit info; stand in
    // for the bootstrap with the ISA's vector-data attribute here.
    auto loads = a.isa().select([](const InstrDef &d) {
        return d.isLoad() && d.vectorData;
    });
    ASSERT_FALSE(loads.empty());

    Synthesizer synth(a);
    synth.addPass<SkeletonPass>(4096);
    synth.addPass<InstructionMixPass>(loads);
    synth.addPass<MemoryModelPass>(
        MemDistribution{0.33, 0.33, 0.34, 0.0});
    synth.addPass<RegisterInitPass>(DataPattern::Alt01);
    synth.addPass<ImmediateInitPass>(DataPattern::Alt01);
    synth.add(std::make_unique<DependencyDistancePass>(
        DependencyDistancePass::random(1, 32)));

    for (int i = 0; i < 10; ++i) {
        Program p = synth.synthesize();
        EXPECT_EQ(p.body.size(), 4096u);
        EXPECT_EQ(p.streams.size(), 3u);
    }
}
