/**
 * @file
 * Unit tests for the micro-architecture definition module.
 */

#include <gtest/gtest.h>

#include "uarch/uarch.hh"

using namespace mprobe;

TEST(UarchParser, ParsesBuiltin)
{
    UarchDef u = builtinP7Uarch();
    EXPECT_EQ(u.name(), "POWER7-like");
    EXPECT_DOUBLE_EQ(u.clockGhz(), 3.0);
    EXPECT_EQ(u.maxCores(), 8);
    EXPECT_EQ(u.maxSmt(), 4);
    EXPECT_EQ(u.dispatchWidth(), 6);
    EXPECT_EQ(u.ipcFormula(), "PM_RUN_INST_CMPL / PM_RUN_CYC");
}

TEST(UarchParser, UnitsHaveCountersAndAreas)
{
    UarchDef u = builtinP7Uarch();
    ASSERT_EQ(u.units().size(), 5u);
    EXPECT_EQ(u.unit("FXU").pipes, 2);
    EXPECT_EQ(u.unit("LSU").pmc, "PM_LSU_FIN");
    EXPECT_EQ(u.unit("VSU").pipes, 4);
    EXPECT_GT(u.unit("VSU").areaMm2, u.unit("BRU").areaMm2);
    EXPECT_TRUE(u.hasUnit("CRU"));
    EXPECT_FALSE(u.hasUnit("XYZ"));
}

TEST(UarchParser, CacheHierarchyMatchesP7)
{
    UarchDef u = builtinP7Uarch();
    ASSERT_EQ(u.caches().size(), 3u);
    EXPECT_EQ(u.cache("L1").geom.sizeBytes, 32u * 1024);
    EXPECT_EQ(u.cache("L2").geom.sizeBytes, 256u * 1024);
    EXPECT_EQ(u.cache("L3").geom.sizeBytes, 4u * 1024 * 1024);
    for (const auto &c : u.caches()) {
        EXPECT_EQ(c.geom.assoc, 8);
        EXPECT_EQ(c.geom.lineBytes, 128);
    }
    EXPECT_EQ(u.cache("L1").loadToUse, 2);
    EXPECT_GT(u.memLatency(), u.cache("L3").loadToUse);
}

TEST(UarchParser, GeometriesOrdered)
{
    UarchDef u = builtinP7Uarch();
    auto g = u.cacheGeometries();
    ASSERT_EQ(g.size(), 3u);
    EXPECT_LT(g[0].sizeBytes, g[1].sizeBytes);
    EXPECT_LT(g[1].sizeBytes, g[2].sizeBytes);
}

TEST(UarchParser, PartialDefinitionHasNoInstrProps)
{
    UarchDef u = builtinP7Uarch();
    EXPECT_EQ(u.bootstrappedCount(), 0u);
    EXPECT_FALSE(u.props("add").complete());
}

TEST(Uarch, PropsMutateAndQuery)
{
    UarchDef u = builtinP7Uarch();
    InstrProps &p = u.propsMut("add");
    p.latency = 1;
    p.throughput = 3.5;
    p.epi = 0.9;
    p.units = {"FXU", "LSU"};
    EXPECT_TRUE(u.props("add").complete());
    EXPECT_TRUE(u.stresses("add", "FXU"));
    EXPECT_TRUE(u.stresses("add", "LSU"));
    EXPECT_FALSE(u.stresses("add", "VSU"));
    EXPECT_EQ(u.bootstrappedCount(), 1u);
}

TEST(Uarch, RoundTripWithProps)
{
    UarchDef u = builtinP7Uarch();
    InstrProps &p = u.propsMut("lbz");
    p.latency = 2;
    p.throughput = 1.68;
    p.epi = 1.65;
    p.avgPower = 20.5;
    p.units = {"LSU", "L1"};

    UarchDef v = UarchDef::fromText(u.toText(), "<roundtrip>");
    EXPECT_EQ(v.name(), u.name());
    EXPECT_EQ(v.units().size(), u.units().size());
    EXPECT_EQ(v.caches().size(), u.caches().size());
    EXPECT_EQ(v.memLatency(), u.memLatency());
    const InstrProps &q = v.props("lbz");
    EXPECT_DOUBLE_EQ(q.latency, 2);
    EXPECT_DOUBLE_EQ(q.throughput, 1.68);
    EXPECT_DOUBLE_EQ(q.epi, 1.65);
    EXPECT_DOUBLE_EQ(q.avgPower, 20.5);
    ASSERT_EQ(q.units.size(), 2u);
    EXPECT_EQ(q.units[0], "LSU");
    EXPECT_EQ(q.units[1], "L1");
}

TEST(UarchDeath, UnknownUnitFatal)
{
    UarchDef u = builtinP7Uarch();
    EXPECT_EXIT(u.unit("QPU"), testing::ExitedWithCode(1),
                "unknown functional unit");
}

TEST(UarchDeath, UnknownCacheFatal)
{
    UarchDef u = builtinP7Uarch();
    EXPECT_EXIT(u.cache("L4"), testing::ExitedWithCode(1),
                "unknown cache level");
}

TEST(UarchDeath, DuplicateUnitFatal)
{
    EXPECT_EXIT(UarchDef::fromText("unit FXU pipes=2 pmc=A\n"
                                   "unit FXU pipes=2 pmc=B\n"),
                testing::ExitedWithCode(1), "duplicate unit");
}

TEST(UarchDeath, MalformedKeyValueFatal)
{
    EXPECT_EXIT(UarchDef::fromText("unit FXU pipes\n"),
                testing::ExitedWithCode(1), "key=value");
}

TEST(UarchDeath, UnknownDirectiveFatal)
{
    EXPECT_EXIT(UarchDef::fromText("wibble 3\n"),
                testing::ExitedWithCode(1), "unknown directive");
}

TEST(UarchParser, IpcFormulaPreservesSpaces)
{
    UarchDef u =
        UarchDef::fromText("ipc PM_A / PM_B\n", "<t>");
    EXPECT_EQ(u.ipcFormula(), "PM_A / PM_B");
}

TEST(Uarch, CachePmcNames)
{
    UarchDef u = builtinP7Uarch();
    EXPECT_EQ(u.cache("L1").pmc, "PM_DATA_FROM_L1");
    EXPECT_EQ(u.cache("L3").pmc, "PM_DATA_FROM_L3");
    EXPECT_EQ(u.memPmc(), "PM_DATA_FROM_MEM");
}
