/**
 * @file
 * Tests for the undervolting axis and its analyses: the hidden Vmin
 * margin model (edge cases at and below the threshold), the
 * undervolt-margin discovery over a vdds sweep, unreliable samples
 * surviving export/cache round-trips flagged, and the per-phase
 * DVFS schedule beating every static operating point.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "campaign/campaign.hh"
#include "campaign/export.hh"
#include "dvfs/schedule.hh"
#include "dvfs/undervolt.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "util/logging.hh"
#include "workloads/extremes.hh"

using namespace mprobe;

namespace
{

struct Fixture
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};

    /** Compute-bound loop: integer ops, no memory accesses. */
    Program
    computeBound(size_t body = 512)
    {
        Synthesizer synth(arch, 0xc0deull);
        synth.addPass<SkeletonPass>(body);
        synth.addPass<InstructionMixPass>(
            arch.isa().integerOps());
        synth.addPass<RegisterInitPass>(DataPattern::Random);
        return synth.synthesize("compute-bound");
    }

    /** Memory-bound loop: the Section-4.1.3 "Main memory" case. */
    Program
    memoryBound(size_t body = 512)
    {
        for (auto &c : generateExtremeCases(arch, body))
            if (c.name == "Main memory")
                return std::move(c.program);
        ADD_FAILURE() << "no Main memory extreme case";
        return Program();
    }
};

} // namespace

// ---------------------------------------------------------------
// The hidden Vmin margin model

TEST(VminModel, ExactlyAtVminStaysReliable)
{
    Fixture f;
    Program prog = f.computeBound();
    ChipConfig cfg{1, 1};
    OperatingPoint nominal = f.machine.operatingPoint();
    RunResult at_nominal = f.machine.run(prog, cfg, nominal);
    EXPECT_TRUE(at_nominal.reliable);
    EXPECT_FALSE(at_nominal.offCurve);
    EXPECT_GT(at_nominal.gtVminVolts, 0.0);
    EXPECT_LT(at_nominal.gtVminVolts, nominal.voltage);

    // Voltage does not change timing, so re-running at exactly the
    // reported Vmin reproduces the same IPC — and the same Vmin —
    // making "exactly at the threshold" well-defined. At Vmin the
    // result is still reliable (the margin is inclusive)...
    OperatingPoint at_vmin = nominal;
    at_vmin.voltage = at_nominal.gtVminVolts;
    RunResult r = f.machine.run(prog, cfg, at_vmin);
    EXPECT_EQ(r.gtVminVolts, at_nominal.gtVminVolts);
    EXPECT_TRUE(r.reliable);
    EXPECT_TRUE(r.offCurve);

    // ...while any voltage strictly below it is not.
    OperatingPoint below = at_vmin;
    below.voltage = std::nextafter(at_vmin.voltage, 0.0);
    RunResult b = f.machine.run(prog, cfg, below);
    EXPECT_FALSE(b.reliable);
    // The unreliable run still reports its (untrustworthy)
    // numbers, like a real margin-compromised part.
    EXPECT_GT(b.sensorWatts, 0.0);
}

TEST(VminModel, GrowsWithFrequencyAndActivity)
{
    Fixture f;
    ChipConfig cfg{1, 1};
    Program compute = f.computeBound();
    Program memory = f.memoryBound();

    RunResult lo = f.machine.run(compute, cfg,
                                 f.machine.operatingPoint(2.0));
    RunResult hi = f.machine.run(compute, cfg,
                                 f.machine.operatingPoint(3.5));
    EXPECT_GT(hi.gtVminVolts, lo.gtVminVolts);

    // The high-IPC kernel needs more margin than the stalled one
    // at the same point.
    RunResult busy = f.machine.run(compute, cfg,
                                   f.machine.operatingPoint());
    RunResult stalled = f.machine.run(memory, cfg,
                                      f.machine.operatingPoint());
    EXPECT_GT(busy.coreIpc, stalled.coreIpc);
    EXPECT_GT(busy.gtVminVolts, stalled.gtVminVolts);
}

TEST(VminModel, DefaultCurvePointsAreAlwaysReliable)
{
    // The defaults guarantee every on-curve point is reliable —
    // margin loss is an undervolting phenomenon, not something a
    // plain freqs sweep can trip over.
    Fixture f;
    Program prog = f.computeBound();
    for (double ghz : {0.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
        RunResult r = f.machine.run(
            prog, ChipConfig{8, 4}, f.machine.operatingPoint(ghz));
        EXPECT_TRUE(r.reliable) << ghz;
        EXPECT_LT(r.gtVminVolts, r.voltage) << ghz;
    }
}

// ---------------------------------------------------------------
// Unreliable samples survive round trips flagged

TEST(Undervolt, UnreliableSampleRoundTripsFlagged)
{
    Fixture f;
    Program prog = f.computeBound();
    // 0.70 V at 3 GHz is always below Vmin (>= 0.72 V).
    OperatingPoint op = f.machine.operatingPoint();
    op.voltage = 0.70;
    Sample s = makeSample(prog.name,
                          f.machine.run(prog, {1, 1}, op));
    ASSERT_FALSE(s.reliable);
    EXPECT_EQ(s.vddVolts, 0.70);

    // Cache text round-trip keeps the flag and the voltage.
    Sample t;
    ASSERT_TRUE(sampleFromText(sampleToText(s), t));
    EXPECT_FALSE(t.reliable);
    EXPECT_EQ(t.vddVolts, 0.70);

    // Exports carry the flag: CSV as a 0/1 column, JSON as a bool.
    std::ostringstream csv;
    exportSamplesCsv(csv, {s});
    EXPECT_NE(csv.str().find(",vdd_volts,reliable"),
              std::string::npos);
    EXPECT_NE(csv.str().find(",0.69999999999999996,0\n"),
              std::string::npos);
    std::ostringstream json;
    exportSamplesJson(json, {s});
    EXPECT_NE(json.str().find("\"reliable\": false"),
              std::string::npos);
}

// ---------------------------------------------------------------
// Undervolt-margin discovery

TEST(Undervolt, FindsSafeMarginAcrossAVddSweep)
{
    Fixture f;
    Program prog = f.computeBound();
    CampaignSpec spec = measurementSpec(2);
    // Bracket the hidden Vmin (roughly 0.72-0.80 V at 3 GHz):
    // clearly below, clearly above, and the nominal curve point.
    spec.vdds = {0.60, 0.90, 0.95, 1.00};
    Campaign c(f.machine, spec);
    auto samples = c.measure({prog}, {ChipConfig{1, 1}});
    ASSERT_EQ(samples.size(), spec.vdds.size());

    auto margins = findUndervoltMargin(samples);
    ASSERT_EQ(margins.size(), 1u);
    const UndervoltMargin &m = margins[0];
    EXPECT_EQ(m.workload, prog.name);
    EXPECT_EQ(m.freqGhz, f.machine.clockGhz());
    EXPECT_EQ(m.pointsProbed, 4u);
    EXPECT_EQ(m.unreliablePoints, 1u); // 0.60 V is below Vmin
    EXPECT_EQ(m.nominalVdd, 1.00);
    EXPECT_EQ(m.safeVdd, 0.90);
    // Power (== energy at fixed f) drops at the safe point.
    EXPECT_LT(m.safePowerWatts, m.nominalPowerWatts);
    EXPECT_GT(m.powerSavedFrac, 0.0);
    EXPECT_LT(m.powerSavedFrac, 1.0);
}

TEST(Undervolt, DropsSeriesWithNoReliablePointAndPlaceholders)
{
    Sample dead;
    dead.workload = "w";
    dead.config = {1, 1};
    dead.freqGhz = 3.0;
    dead.instrGips = 5.0;
    dead.powerWatts = 50.0;
    dead.vddVolts = 0.6;
    dead.reliable = false;
    Sample placeholder;
    placeholder.workload = "p";
    placeholder.config = {1, 1};
    placeholder.instrGips = 0.0;
    EXPECT_TRUE(findUndervoltMargin({dead, placeholder}).empty());

    // One reliable point makes a (degenerate) margin: safe ==
    // nominal, nothing saved.
    Sample ok = dead;
    ok.vddVolts = 1.0;
    ok.reliable = true;
    auto margins = findUndervoltMargin({dead, placeholder, ok});
    ASSERT_EQ(margins.size(), 1u);
    EXPECT_EQ(margins[0].pointsProbed, 2u);
    EXPECT_EQ(margins[0].unreliablePoints, 1u);
    EXPECT_EQ(margins[0].safeVdd, 1.0);
    EXPECT_EQ(margins[0].powerSavedFrac, 0.0);
}

TEST(Undervolt, GroupsPerFrequencySeries)
{
    // The same (workload, config) at two frequencies is two
    // series: margins are per operating point.
    Sample a;
    a.workload = "w";
    a.config = {1, 1};
    a.freqGhz = 2.0;
    a.instrGips = 5.0;
    a.powerWatts = 40.0;
    a.vddVolts = 0.92;
    Sample a2 = a;
    a2.vddVolts = 0.85;
    a2.powerWatts = 35.0;
    Sample b = a;
    b.freqGhz = 3.0;
    b.vddVolts = 1.0;
    b.powerWatts = 60.0;
    auto margins = findUndervoltMargin({a, a2, b});
    ASSERT_EQ(margins.size(), 2u);
    EXPECT_EQ(margins[0].freqGhz, 2.0);
    EXPECT_EQ(margins[0].safeVdd, 0.85);
    EXPECT_EQ(margins[0].nominalVdd, 0.92);
    EXPECT_EQ(margins[1].freqGhz, 3.0);
}

// ---------------------------------------------------------------
// Per-phase DVFS schedules

TEST(Schedule, BeatsEveryStaticPointOnMixedPhases)
{
    // The acceptance bar: a workload mixing compute- and
    // memory-bound phases schedules strictly better (whole-run
    // EDP) than every static operating point of the sweep. One
    // core keeps the memory kernel latency-bound (time flat in f,
    // so low f is nearly free there); a lean idle floor keeps the
    // single-core compute/memory power contrast above the phase
    // segmentation threshold.
    Fixture f;
    GroundTruthParams gt;
    gt.idleWatts = 5.0;
    Machine machine(f.arch.isa(), gt);
    Program compute = f.computeBound();
    Program memory = f.memoryBound();
    PhasedWorkload w;
    w.name = "mixed";
    w.phases = {{&compute, 40.0}, {&memory, 40.0},
                {&compute, 40.0}};
    std::vector<double> freqs = {2.0, 2.5, 3.0, 3.5};
    DvfsSchedule sched = scheduleFromPhases(
        machine, w, ChipConfig{1, 1}, freqs);

    ASSERT_EQ(sched.staticPoints.size(), freqs.size());
    EXPECT_GT(sched.edp, 0.0);
    for (size_t k = 0; k < sched.staticPoints.size(); ++k)
        EXPECT_LT(sched.edp, sched.staticPoints[k].edp) << k;
    EXPECT_GT(sched.edpGainVsBestStatic, 0.0);

    // The schedule's phase assignments split: the memory phase
    // runs no faster than the compute phases.
    ASSERT_GE(sched.phases.size(), 2u);
    double min_f = sched.phases[0].op.freqGhz;
    double max_f = min_f;
    for (const auto &p : sched.phases) {
        min_f = std::min(min_f, p.op.freqGhz);
        max_f = std::max(max_f, p.op.freqGhz);
    }
    EXPECT_LT(min_f, max_f);
    // Totals are consistent.
    double t = 0.0, e = 0.0;
    for (const auto &p : sched.phases) {
        t += p.seconds;
        e += p.energyJ;
    }
    EXPECT_DOUBLE_EQ(sched.seconds, t);
    EXPECT_DOUBLE_EQ(sched.energyJ, e);
    EXPECT_DOUBLE_EQ(sched.edp, e * t);
}

TEST(Schedule, UniformWorkloadMatchesBestStatic)
{
    // A single-kernel workload has nothing to schedule: the
    // per-phase assignment degenerates to the best static point.
    Fixture f;
    Program compute = f.computeBound();
    PhasedWorkload w;
    w.name = "uniform";
    w.phases = {{&compute, 60.0}};
    DvfsSchedule sched = scheduleFromPhases(
        f.machine, w, ChipConfig{1, 1}, {2.0, 3.0, 3.5});
    EXPECT_DOUBLE_EQ(
        sched.edp, sched.staticPoints[sched.bestStatic].edp);
    EXPECT_EQ(sched.edpGainVsBestStatic, 0.0);
}

TEST(ScheduleDeathTest, SinglePointSweepIsFatal)
{
    Fixture f;
    Program compute = f.computeBound();
    PhasedWorkload w;
    w.name = "u";
    w.phases = {{&compute, 10.0}};
    EXPECT_EXIT(scheduleFromPhases(f.machine, w, ChipConfig{1, 1},
                                   {3.0}),
                testing::ExitedWithCode(1),
                "need >= 2 swept frequencies");
}
